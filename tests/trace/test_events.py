"""Unit tests for trace record types and the buffer."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.events import (
    MLP_UNBOUNDED,
    Barrier,
    ScalarBlock,
    TraceBuffer,
    VectorInstr,
    VMemPattern,
    VOpClass,
)


class TestScalarBlock:
    def test_basic(self):
        b = ScalarBlock(n_alu_ops=3, mem_addrs=np.array([1, 2]),
                        mem_is_write=np.array([False, True]))
        assert b.n_mem_ops == 2
        assert b.n_insns == 5
        assert b.mlp_hint == MLP_UNBOUNDED

    def test_shape_mismatch(self):
        with pytest.raises(TraceError):
            ScalarBlock(n_alu_ops=0, mem_addrs=np.array([1]),
                        mem_is_write=np.array([False, True]))

    def test_negative_alu(self):
        with pytest.raises(TraceError):
            ScalarBlock(n_alu_ops=-1, mem_addrs=np.empty(0, dtype=np.int64),
                        mem_is_write=np.empty(0, dtype=bool))

    def test_bad_mlp(self):
        with pytest.raises(TraceError):
            ScalarBlock(n_alu_ops=0, mem_addrs=np.empty(0, dtype=np.int64),
                        mem_is_write=np.empty(0, dtype=bool), mlp_hint=0)

    def test_dtype_coercion(self):
        b = ScalarBlock(n_alu_ops=0, mem_addrs=[1, 2], mem_is_write=[0, 1])
        assert b.mem_addrs.dtype == np.int64
        assert b.mem_is_write.dtype == bool


class TestVectorInstr:
    def test_mem_requires_pattern_and_addrs(self):
        with pytest.raises(TraceError):
            VectorInstr(op=VOpClass.MEM, vl=4, opcode="vle")

    def test_mem_addr_count_must_match_active(self):
        with pytest.raises(TraceError):
            VectorInstr(op=VOpClass.MEM, vl=4, opcode="vle",
                        pattern=VMemPattern.UNIT,
                        addrs=np.array([1, 2]))

    def test_masked_mem_uses_active(self):
        v = VectorInstr(op=VOpClass.MEM, vl=4, opcode="vle",
                        pattern=VMemPattern.UNIT,
                        addrs=np.array([1, 2]), masked=True, active=2)
        assert v.active == 2 and v.is_mem

    def test_non_mem_with_addrs_rejected(self):
        with pytest.raises(TraceError):
            VectorInstr(op=VOpClass.ARITH, vl=4, opcode="vfadd",
                        addrs=np.array([1]))

    def test_active_defaults_to_vl(self):
        v = VectorInstr(op=VOpClass.ARITH, vl=8, opcode="vfadd")
        assert v.active == 8

    def test_negative_vl_rejected(self):
        with pytest.raises(TraceError):
            VectorInstr(op=VOpClass.ARITH, vl=-1, opcode="x")


class TestTraceBuffer:
    def test_append_iterate(self):
        t = TraceBuffer()
        t.append(Barrier("a"))
        t.append(Barrier("b"))
        assert len(t) == 2
        assert [r.label for r in t] == ["a", "b"]
        assert t[1].label == "b"

    def test_seal_blocks_append(self):
        t = TraceBuffer()
        t.seal()
        with pytest.raises(TraceError):
            t.append(Barrier())

    def test_rejects_non_records(self):
        t = TraceBuffer()
        with pytest.raises(TraceError):
            t.append("not a record")

    def test_seal_returns_self(self):
        t = TraceBuffer()
        assert t.seal() is t
        assert t.sealed
