"""Unit tests for trace summary statistics."""

import numpy as np

from repro.trace.events import (
    Barrier,
    ScalarBlock,
    TraceBuffer,
    VectorInstr,
    VMemPattern,
    VOpClass,
)
from repro.trace.stats import summarize_trace


def test_empty_trace():
    s = summarize_trace(TraceBuffer())
    assert s.total_dynamic_insns == 0
    assert s.avg_vl == 0.0


def test_mixed_trace():
    t = TraceBuffer()
    t.append(ScalarBlock(n_alu_ops=5, mem_addrs=np.array([0, 8]),
                         mem_is_write=np.array([False, True])))
    t.append(VectorInstr(op=VOpClass.ARITH, vl=16, opcode="vfadd"))
    t.append(VectorInstr(op=VOpClass.MEM, vl=8, opcode="vle",
                         pattern=VMemPattern.UNIT,
                         addrs=np.arange(8) * 8))
    t.append(Barrier())
    s = summarize_trace(t)
    assert s.scalar_blocks == 1
    assert s.scalar_alu_ops == 5
    assert s.scalar_mem_ops == 2
    assert s.scalar_mem_bytes == 16
    assert s.vector_instrs == 2
    assert s.vector_mem_instrs == 1
    assert s.vector_elems == 24
    assert s.vector_mem_elems == 8
    assert s.vector_mem_bytes == 64
    assert s.barriers == 1
    assert s.avg_vl == 12.0
    assert s.total_dynamic_insns == 9
    assert s.total_mem_bytes == 80
    assert s.by_opclass == {"arith": 1, "mem": 1}


def test_masked_mem_counts_active_elements():
    t = TraceBuffer()
    t.append(VectorInstr(op=VOpClass.MEM, vl=8, opcode="vle",
                         pattern=VMemPattern.UNIT, addrs=np.arange(3) * 8,
                         masked=True, active=3))
    s = summarize_trace(t)
    assert s.vector_mem_elems == 3
    assert s.vector_elems == 8  # vl is occupancy, active is traffic
