"""Property tests: ``TraceTemplate.replicate`` ≡ the per-iteration object path.

The templated generation path exists purely for speed — its contract is
that ``replicate(n)`` appends *exactly* the records an equivalent
per-iteration emission loop would have appended, bit for bit: same column
values, same address arena, same interned strings. Hypothesis drives
random loop bodies (record kinds, address modes, dep shapes, const vs
per-iteration fields) through both paths and compares the sealed columns.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.trace.events import (
    MLP_UNBOUNDED,
    Barrier,
    ScalarBlock,
    TraceBuffer,
    VectorInstr,
    VMemPattern,
    VOpClass,
)
from repro.trace.template import (
    _D_ABS,
    _D_LOCAL,
    _D_NONE,
    _D_PREV,
    Dep,
    TraceTemplate,
)

_COLS = ("kind", "n_alu", "mlp", "mem_bytes", "vl", "active", "opclass",
         "pattern", "is_write", "masked", "dep", "scalar_dest",
         "opcode_id", "label_id", "addr_off", "addrs", "writes")


def assert_traces_identical(a: TraceBuffer, b: TraceBuffer) -> None:
    ca, cb = a.cols, b.cols
    assert ca.strings == cb.strings
    for name in _COLS:
        np.testing.assert_array_equal(
            getattr(ca, name), getattr(cb, name), err_msg=name)


# ------------------------------------------------------------- strategies

def _arr(draw, n, lo, hi):
    return np.array(
        draw(st.lists(st.integers(lo, hi), min_size=n, max_size=n)),
        dtype=np.int64)


def _draw_dep(draw, t, n_slots):
    choices = ["none", "prev", "prev_first", "at"]
    if t > 0:
        choices += ["local", "int"]
    c = draw(st.sampled_from(choices))
    if c == "none":
        return None
    if c == "int":           # bare local index, the _normalize_dep path
        return draw(st.integers(0, t - 1))
    if c == "local":
        return Dep.local(draw(st.integers(0, t - 1)))
    if c == "prev":
        return Dep.prev(draw(st.integers(0, n_slots - 1)))
    if c == "prev_first":    # iteration 0 falls back to the preamble record
        return Dep.prev(draw(st.integers(0, n_slots - 1)), first=0)
    return Dep.at(0)


@st.composite
def cases(draw):
    n = draw(st.integers(0, 4))
    n_slots = draw(st.integers(1, 4))
    slots = []
    for t in range(n_slots):
        k = draw(st.sampled_from(("arith", "mem", "csr", "scalar",
                                  "barrier")))
        s = {"kind": k}
        if k == "barrier":
            s["label"] = draw(st.sampled_from(("", "sync")))
        elif k == "scalar":
            s["n_alu"] = (_arr(draw, n, 0, 9) if draw(st.booleans())
                          else draw(st.integers(0, 9)))
            mode = draw(st.sampled_from(("none", "affine", "explicit")))
            s["mode"] = mode
            if mode == "affine":
                p = draw(st.integers(1, 3))
                s["base"] = _arr(draw, p, 0, 1 << 20) * 8
                s["ioff"] = _arr(draw, n, 0, 1 << 10) * 8
                if draw(st.booleans()):
                    s["writes"] = np.array(
                        draw(st.lists(st.booleans(), min_size=p,
                                      max_size=p)))
            elif mode == "explicit":
                counts = _arr(draw, n, 0, 3)
                s["counts"] = counts
                s["flat"] = _arr(draw, int(counts.sum()), 0, 1 << 20) * 8
            s["mlp"] = draw(st.sampled_from((1, 2, 4, MLP_UNBOUNDED)))
            s["mem_bytes"] = draw(st.sampled_from((4, 8)))
            s["label"] = draw(st.sampled_from(("blk", "update")))
        else:
            op = {"arith": VOpClass.ARITH, "mem": VOpClass.MEM,
                  "csr": VOpClass.CSR}[k]
            s["op"] = op
            s["opcode"] = draw(st.sampled_from(("vfadd", "vle", "vsxe")))
            s["elem_bytes"] = draw(st.sampled_from((4, 8)))
            s["masked"] = draw(st.booleans())
            s["scalar_dest"] = (draw(st.booleans()) if k != "mem"
                                else False)
            s["dep"] = _draw_dep(draw, t, n_slots)
            if k == "mem":
                s["pattern"] = draw(st.sampled_from(list(VMemPattern)))
                s["is_write"] = draw(st.booleans())
                mode = draw(st.sampled_from(("affine", "explicit")))
                s["mode"] = mode
                if mode == "affine":
                    p = draw(st.integers(1, 4))
                    s["base"] = _arr(draw, p, 0, 1 << 20) * 8
                    s["ioff"] = _arr(draw, n, 0, 1 << 10) * 8
                    s["active"] = p
                    s["vl"] = draw(st.integers(p, p + 4))
                else:
                    counts = _arr(draw, n, 1, 4)
                    s["counts"] = counts
                    s["flat"] = _arr(draw, int(counts.sum()), 0,
                                     1 << 20) * 8
                    s["active"] = counts
                    s["vl"] = draw(st.integers(4, 8))
            else:
                s["vl"] = (_arr(draw, n, 1, 16) if draw(st.booleans())
                           else draw(st.integers(1, 16)))
                s["active"] = None
        slots.append(s)
    return n, slots


# --------------------------------------------------------- the two paths

def _preamble(trace):
    """Record 0 of both traces: the target of Dep.at / Dep.prev(first=0)."""
    trace.append(VectorInstr(op=VOpClass.ARITH, vl=4, opcode="vpre"))


def expand_template(trace, slots, n):
    tpl = TraceTemplate(trace)
    for s in slots:
        if s["kind"] == "barrier":
            tpl.barrier(label=s["label"])
        elif s["kind"] == "scalar":
            akw = {}
            if s["mode"] == "affine":
                akw = {"base_addrs": s["base"], "iter_offsets": s["ioff"]}
                if "writes" in s:
                    akw["writes"] = s["writes"]
            elif s["mode"] == "explicit":
                akw = {"flat_addrs": s["flat"], "counts": s["counts"]}
            tpl.scalar_block(s["n_alu"], mem_bytes=s["mem_bytes"],
                             mlp_hint=s["mlp"], label=s["label"], **akw)
        else:
            akw = {}
            if s["kind"] == "mem":
                if s["mode"] == "affine":
                    akw = {"base_addrs": s["base"],
                           "iter_offsets": s["ioff"]}
                else:
                    akw = {"flat_addrs": s["flat"], "counts": s["counts"]}
            tpl.vector(s["op"], s["vl"], s["opcode"],
                       pattern=s.get("pattern"),
                       is_write=s.get("is_write", False),
                       elem_bytes=s["elem_bytes"], masked=s["masked"],
                       active=s["active"], dep=s["dep"],
                       scalar_dest=s["scalar_dest"], **akw)
    return tpl.replicate(n), tpl


def _resolve_dep(d, i, t, n_slots, start):
    if d is None:
        return -1
    if isinstance(d, int):
        d = Dep.local(d)
    if d.mode == _D_NONE:
        return -1
    if d.mode == _D_LOCAL:
        return start + i * n_slots + d.slot
    if d.mode == _D_PREV:
        return (start + (i - 1) * n_slots + d.slot) if i > 0 else d.first
    assert d.mode == _D_ABS
    return d.first


def expand_reference(trace, slots, n):
    """The semantics replicate() promises: one object append per record."""
    n_slots = len(slots)
    start = len(trace)
    pos = [0] * n_slots  # flat-address cursor per explicit-mode slot
    for i in range(n):
        for t, s in enumerate(slots):
            if s["kind"] == "barrier":
                trace.append(Barrier(label=s["label"]))
                continue
            addrs = None
            if s.get("mode") == "affine":
                addrs = s["base"] + s["ioff"][i]
            elif s.get("mode") == "explicit":
                c = int(s["counts"][i])
                addrs = s["flat"][pos[t]:pos[t] + c]
                pos[t] += c
            if s["kind"] == "scalar":
                if addrs is None:
                    addrs = np.empty(0, dtype=np.int64)
                writes = s.get("writes")
                if writes is None:
                    writes = np.zeros(addrs.shape[0], dtype=bool)
                n_alu = s["n_alu"]
                if isinstance(n_alu, np.ndarray):
                    n_alu = int(n_alu[i])
                trace.append(ScalarBlock(
                    n_alu_ops=n_alu, mem_addrs=addrs, mem_is_write=writes,
                    mem_bytes=s["mem_bytes"], mlp_hint=s["mlp"],
                    label=s["label"]))
                continue
            vl = s["vl"]
            if isinstance(vl, np.ndarray):
                vl = int(vl[i])
            active = s["active"]
            if isinstance(active, np.ndarray):
                active = int(active[i])
            trace.append(VectorInstr(
                op=s["op"], vl=vl, opcode=s["opcode"],
                pattern=s.get("pattern"), addrs=addrs,
                is_write=s.get("is_write", False),
                elem_bytes=s["elem_bytes"], masked=s["masked"],
                active=active,
                dep=_resolve_dep(s["dep"], i, t, n_slots, start),
                scalar_dest=s["scalar_dest"]))
    for t, s in enumerate(slots):
        if s.get("mode") == "explicit":
            assert pos[t] == s["flat"].shape[0]


# -------------------------------------------------------------- properties

class TestReplicateEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(cases())
    def test_replicate_matches_object_path(self, case):
        n, slots = case
        templated, reference = TraceBuffer(), TraceBuffer()
        _preamble(templated)
        _preamble(reference)
        start, _ = expand_template(templated, slots, n)
        assert start == 1
        expand_reference(reference, slots, n)
        assert_traces_identical(templated.seal(), reference.seal())

    @settings(max_examples=25, deadline=None)
    @given(cases())
    def test_replicate_twice_matches_two_object_loops(self, case):
        """The body stays recorded; deps rebase onto the new start."""
        n, slots = case
        templated, reference = TraceBuffer(), TraceBuffer()
        _preamble(templated)
        _preamble(reference)
        _, tpl = expand_template(templated, slots, n)
        tpl.replicate(n)
        expand_reference(reference, slots, n)
        expand_reference(reference, slots, n)
        assert_traces_identical(templated.seal(), reference.seal())


# ------------------------------------------------------------- error paths

class TestRecordingValidation:
    def test_mem_needs_exactly_one_address_mode(self):
        tpl = TraceTemplate(TraceBuffer())
        a = np.zeros(2, dtype=np.int64)
        with pytest.raises(TraceError):
            tpl.vector(VOpClass.MEM, 4, "vle")
        with pytest.raises(TraceError):
            tpl.vector(VOpClass.MEM, 4, "vle", base_addrs=a,
                       iter_offsets=a, flat_addrs=a, counts=a)

    def test_affine_needs_iter_offsets(self):
        tpl = TraceTemplate(TraceBuffer())
        with pytest.raises(TraceError):
            tpl.vector(VOpClass.MEM, 4, "vle",
                       base_addrs=np.zeros(2, dtype=np.int64))

    def test_explicit_needs_counts(self):
        tpl = TraceTemplate(TraceBuffer())
        with pytest.raises(TraceError):
            tpl.vector(VOpClass.MEM, 4, "vle",
                       flat_addrs=np.zeros(2, dtype=np.int64))

    def test_non_mem_rejects_addresses(self):
        tpl = TraceTemplate(TraceBuffer())
        with pytest.raises(TraceError):
            tpl.vector(VOpClass.ARITH, 4, "vfadd",
                       base_addrs=np.zeros(2, dtype=np.int64),
                       iter_offsets=np.zeros(1, dtype=np.int64))

    def test_scalar_writes_true_is_ambiguous(self):
        tpl = TraceTemplate(TraceBuffer())
        with pytest.raises(TraceError):
            tpl.scalar_block(1, writes=True)


class TestReplicateValidation:
    def test_negative_iteration_count(self):
        tpl = TraceTemplate(TraceBuffer())
        tpl.barrier()
        with pytest.raises(TraceError):
            tpl.replicate(-1)

    def test_iter_offsets_shape_checked_at_replicate(self):
        tpl = TraceTemplate(TraceBuffer())
        tpl.vector(VOpClass.MEM, 2, "vle", pattern=VMemPattern.UNIT,
                   base_addrs=np.zeros(2, dtype=np.int64),
                   iter_offsets=np.zeros(3, dtype=np.int64))
        with pytest.raises(TraceError):
            tpl.replicate(4)

    def test_counts_sum_must_match_flat_addrs(self):
        tpl = TraceTemplate(TraceBuffer())
        tpl.vector(VOpClass.MEM, 2, "vlxe", pattern=VMemPattern.INDEXED,
                   flat_addrs=np.zeros(5, dtype=np.int64),
                   counts=np.array([2, 2], dtype=np.int64))
        with pytest.raises(TraceError):
            tpl.replicate(2)

    def test_per_iteration_vl_shape_checked(self):
        tpl = TraceTemplate(TraceBuffer())
        tpl.vector(VOpClass.ARITH, np.array([4, 4], dtype=np.int64),
                   "vfadd")
        with pytest.raises(TraceError):
            tpl.replicate(3)

    def test_local_dep_out_of_range(self):
        tpl = TraceTemplate(TraceBuffer())
        tpl.vector(VOpClass.ARITH, 4, "vfadd", dep=Dep.local(3))
        with pytest.raises(TraceError):
            tpl.replicate(1)

    def test_replicate_zero_appends_nothing(self):
        trace = TraceBuffer()
        tpl = TraceTemplate(trace)
        tpl.barrier()
        assert tpl.replicate(0) == 0
        assert len(trace) == 0

    def test_empty_template_appends_nothing(self):
        trace = TraceBuffer()
        assert TraceTemplate(trace).replicate(5) == 0
        assert len(trace) == 0
