"""Tests for trace save/load round-tripping."""

import numpy as np
import pytest

from repro.config import SdvConfig
from repro.engine import simulate_fast
from repro.errors import TraceError
from repro.memory.classify import classify_trace
from repro.soc import FpgaSdv
from repro.trace.events import (
    Barrier,
    ScalarBlock,
    TraceBuffer,
    VectorInstr,
    VMemPattern,
    VOpClass,
)
from repro.trace.serialize import FORMAT_VERSION, load_trace, save_trace


def make_mixed_trace():
    t = TraceBuffer()
    t.append(ScalarBlock(n_alu_ops=7, mem_addrs=np.array([0x1000, 0x1008]),
                         mem_is_write=np.array([False, True]),
                         mlp_hint=3, label="blk"))
    t.append(VectorInstr(op=VOpClass.CSR, vl=8, opcode="vsetvl",
                         scalar_dest=True))
    t.append(VectorInstr(op=VOpClass.MEM, vl=8, opcode="vle",
                         pattern=VMemPattern.UNIT,
                         addrs=0x2000 + 8 * np.arange(8)))
    t.append(VectorInstr(op=VOpClass.ARITH, vl=8, opcode="vfadd", dep=2))
    t.append(VectorInstr(op=VOpClass.MEM, vl=8, opcode="vsxe",
                         pattern=VMemPattern.INDEXED,
                         addrs=0x3000 + 64 * np.arange(3),
                         is_write=True, masked=True, active=3, dep=3))
    t.append(Barrier(label="end"))
    return t.seal()


class TestRoundTrip:
    def test_record_fidelity(self, tmp_path):
        path = tmp_path / "t.npz"
        orig = make_mixed_trace()
        save_trace(orig, path)
        back = load_trace(path)
        assert len(back) == len(orig)
        for a, b in zip(orig, back):
            assert type(a) is type(b)
        blk = back[0]
        assert blk.n_alu_ops == 7 and blk.mlp_hint == 3 and blk.label == "blk"
        assert np.array_equal(blk.mem_addrs, orig[0].mem_addrs)
        assert np.array_equal(blk.mem_is_write, orig[0].mem_is_write)
        mem = back[2]
        assert mem.opcode == "vle" and mem.pattern is VMemPattern.UNIT
        assert np.array_equal(mem.addrs, orig[2].addrs)
        arith = back[3]
        assert arith.dep == 2
        scat = back[4]
        assert scat.is_write and scat.masked and scat.active == 3
        assert back[1].scalar_dest
        assert back[5].label == "end"

    def test_loaded_trace_is_sealed(self, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(make_mixed_trace(), path)
        assert load_trace(path).sealed

    def test_unsealed_rejected(self, tmp_path):
        t = TraceBuffer()
        with pytest.raises(TraceError):
            save_trace(t, tmp_path / "x.npz")

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "e.npz"
        save_trace(TraceBuffer().seal(), path)
        assert len(load_trace(path)) == 0

    def test_version_check(self, tmp_path):
        path = tmp_path / "v.npz"
        save_trace(make_mixed_trace(), path)
        data = dict(np.load(path, allow_pickle=True))
        data["version"] = np.int64(FORMAT_VERSION + 1)
        np.savez_compressed(path, **data)
        with pytest.raises(TraceError):
            load_trace(path)


class TestTimingEquivalence:
    def test_retiming_loaded_trace_matches_original(self, tmp_path):
        """The record-once / re-time-later workflow end to end."""
        from repro.kernels.fft import fft_vector
        from repro.workloads.signals import make_signal

        sdv = FpgaSdv()
        sess = sdv.session()
        fft_vector(sess, make_signal(256, seed=3))
        orig = sess.seal()
        path = tmp_path / "fft.npz"
        save_trace(orig, path)
        back = load_trace(path)

        for extra in (0, 512):
            cfg = SdvConfig().with_extra_latency(extra)
            a = simulate_fast(classify_trace(orig, cfg)).cycles
            b = simulate_fast(classify_trace(back, cfg)).cycles
            assert a == b


class TestFormatVersions:
    def test_v2_has_no_pickled_arrays(self, tmp_path):
        """v2 must stay loadable with allow_pickle=False (plain arrays)."""
        path = tmp_path / "t.npz"
        save_trace(make_mixed_trace(), path)
        with np.load(path, allow_pickle=False) as z:
            assert int(z["version"]) == FORMAT_VERSION
            for name in z.files:
                z[name]  # raises if any member needs pickle

    def test_v1_file_loads_identically(self, tmp_path):
        """Traces written by the old record-loop writer still load."""
        from repro.trace.serialize import _save_v1

        orig = make_mixed_trace()
        p1, p2 = tmp_path / "v1.npz", tmp_path / "v2.npz"
        _save_v1(orig, p1)
        save_trace(orig, p2)
        via_v1, via_v2 = load_trace(p1), load_trace(p2)
        c1, c2 = via_v1.cols, via_v2.cols
        assert c1.strings == c2.strings
        for name in ("kind", "n_alu", "mlp", "mem_bytes", "vl", "active",
                     "opclass", "pattern", "is_write", "masked", "dep",
                     "scalar_dest", "opcode_id", "label_id", "addr_off",
                     "addrs", "writes"):
            np.testing.assert_array_equal(
                getattr(c1, name), getattr(c2, name), err_msg=name)

    def test_v1_timing_matches_v2(self, tmp_path):
        orig = make_mixed_trace()
        from repro.trace.serialize import _save_v1

        p1, p2 = tmp_path / "v1.npz", tmp_path / "v2.npz"
        _save_v1(orig, p1)
        save_trace(orig, p2)
        cfg = SdvConfig()
        a = simulate_fast(classify_trace(load_trace(p1), cfg)).cycles
        b = simulate_fast(classify_trace(load_trace(p2), cfg)).cycles
        assert a == b

    def test_nul_in_string_table_rejected(self, tmp_path):
        t = TraceBuffer()
        t.append(Barrier(label="bad\0label"))
        with pytest.raises(TraceError):
            save_trace(t.seal(), tmp_path / "x.npz")
