"""Template hazard analysis + columnar invariants, on planted defects."""

import numpy as np
import pytest

from repro.lint.findings import Severity
from repro.lint.trace_rules import (
    MAX_DIST,
    analyze_snapshot,
    check_trace_buffer,
)
from repro.trace.events import (
    OPCLASS_ID,
    PATTERN_ID,
    TraceBuffer,
    VMemPattern,
    VOpClass,
)
from repro.trace.template import Dep
from tests.lint.util import (
    STRIDE,
    STRIP,
    error_rules,
    lane_block,
    mem,
    offsets,
    replicate,
    rules_of,
)

A = 0x10000   # stream written by the planted store
B = 0x40000   # independent stream, far from A
N = 8


class TestHazardDetection:
    def test_disjoint_streams_are_clean(self):
        def build(tpl, n):
            mem(tpl, B, n, write=False)
            mem(tpl, A, n, write=True)
        snap, _ = replicate(build, N)
        assert analyze_snapshot(snap) == []

    def test_undeclared_cross_iteration_raw(self):
        # the store writes strip i; the load reads strip i-1's addresses
        def build(tpl, n):
            mem(tpl, A, n, write=True)
            mem(tpl, A - STRIDE, n, write=False)
        snap, _ = replicate(build, N)
        errs = [f for f in analyze_snapshot(snap)
                if f.severity is Severity.ERROR]
        assert error_rules(errs) == ["T001"]
        assert "iteration distance 1" in errs[0].message

    def test_declared_prev_dep_covers_the_raw(self):
        def build(tpl, n):
            mem(tpl, A, n, write=True)
            mem(tpl, A - STRIDE, n, write=False, dep=Dep.prev(0))
        snap, _ = replicate(build, N)
        assert error_rules(analyze_snapshot(snap)) == []

    def test_same_iteration_raw_needs_local_dep(self):
        def build(tpl, n):
            mem(tpl, A, n, write=True)
            mem(tpl, A, n, write=False)
        snap, _ = replicate(build, N)
        errs = [f for f in analyze_snapshot(snap)
                if f.severity is Severity.ERROR]
        assert error_rules(errs) == ["T001"]
        assert "same iteration" in errs[0].message

        def fixed(tpl, n):
            mem(tpl, A, n, write=True)
            mem(tpl, A, n, write=False, dep=Dep.local(0))
        snap, _ = replicate(fixed, N)
        assert error_rules(analyze_snapshot(snap)) == []

    def test_undeclared_war(self):
        # the load reads strip i; the later store overwrites it at i+1
        def build(tpl, n):
            mem(tpl, A, n, write=False)
            mem(tpl, A - STRIDE, n, write=True)
        snap, _ = replicate(build, N)
        assert "T002" in error_rules(analyze_snapshot(snap))

    def test_undeclared_waw(self):
        def build(tpl, n):
            mem(tpl, A, n, write=True)
            mem(tpl, A - STRIDE, n, write=True)
        snap, _ = replicate(build, N)
        assert error_rules(analyze_snapshot(snap)) == ["T003"]

    def test_barrier_orders_instead_of_dep(self):
        def build(tpl, n):
            mem(tpl, A, n, write=True)
            tpl.barrier("fence")
            mem(tpl, A - STRIDE, n, write=False)
        snap, _ = replicate(build, N)
        assert error_rules(analyze_snapshot(snap)) == []

    def test_explicit_stream_raw_is_sampled(self):
        # reader uses flat per-iteration gather addresses that trail the
        # affine store by one strip: caught by the sampled explicit path
        def build(tpl, n):
            mem(tpl, A, n, write=True)
            flat = np.concatenate(
                [lane_block(A - STRIDE) + i * STRIDE for i in range(n)])
            tpl.vector(VOpClass.MEM, STRIP, "vlxe",
                       pattern=VMemPattern.INDEXED, flat_addrs=flat,
                       counts=np.full(n, STRIP, dtype=np.int64))
        snap, _ = replicate(build, N)
        assert "T001" in error_rules(analyze_snapshot(snap))

    def test_far_field_overlap_is_warning_not_error(self):
        # overlap only at iteration distance MAX_DIST+2: outside the
        # proven window, reported as a bounded WARNING
        gap = MAX_DIST + 2

        def build(tpl, n):
            mem(tpl, A, n, write=True)
            mem(tpl, A - gap * STRIDE, n, write=False)
        snap, _ = replicate(build, gap + 4)
        found = analyze_snapshot(snap)
        assert error_rules(found) == []
        warns = [f for f in found if f.rule == "T001"]
        assert warns and all(f.severity is Severity.WARNING
                             for f in warns)
        assert "beyond" in warns[0].message


class TestDepValidity:
    def test_forward_local_dep(self):
        def build(tpl, n):
            mem(tpl, B, n, write=False, dep=Dep.local(1))
            mem(tpl, A, n, write=True)
        snap, _ = replicate(build, N)
        assert "T004" in rules_of(analyze_snapshot(snap))

    def test_dep_slot_out_of_range(self):
        # replicate() refuses this template outright, so the analyzer
        # sees it the way an offline consumer would: as a raw snapshot
        from tests.lint.util import snapshot_of

        def build(tpl, n):
            mem(tpl, B, n, write=False, dep=Dep.local(5))
        snap = snapshot_of(build, N)
        assert "T004" in rules_of(analyze_snapshot(snap))

    def test_dep_on_barrier_slot(self):
        def build(tpl, n):
            tpl.barrier("fence")
            mem(tpl, B, n, write=False, dep=Dep.local(0))
        snap, _ = replicate(build, N)
        assert "T004" in rules_of(analyze_snapshot(snap))

    def test_prev_first_must_precede_template(self):
        def build(tpl, n):
            mem(tpl, A, n, write=True)
            mem(tpl, A - STRIDE, n, write=False, dep=Dep.prev(0, first=7))
        snap, _ = replicate(build, N)  # template starts at record 0
        assert "T004" in rules_of(analyze_snapshot(snap))

    def test_absolute_dep_must_precede_template(self):
        def build(tpl, n):
            mem(tpl, B, n, write=False, dep=Dep.at(3))
        snap, _ = replicate(build, N)
        assert "T004" in rules_of(analyze_snapshot(snap))

    def test_dead_dep_on_non_aliasing_store(self):
        def build(tpl, n):
            mem(tpl, A, n, write=True)
            mem(tpl, B, n, write=False, dep=Dep.prev(0))
        snap, _ = replicate(build, N)
        found = analyze_snapshot(snap)
        assert error_rules(found) == []
        assert "T005" in rules_of(found)


class TestScalarVectorOrdering:
    def test_aliasing_scalar_block_warns_without_barrier(self):
        def build(tpl, n):
            mem(tpl, A, n, write=True)
            tpl.scalar_block(4, base_addrs=lane_block(A),
                             iter_offsets=offsets(n), label="drain")
        snap, _ = replicate(build, N)
        found = analyze_snapshot(snap)
        assert "T006" in rules_of(found)
        assert error_rules(found) == []

    def test_barrier_silences_the_pair(self):
        def build(tpl, n):
            mem(tpl, A, n, write=True)
            tpl.barrier("fence")
            tpl.scalar_block(4, base_addrs=lane_block(A),
                             iter_offsets=offsets(n), label="drain")
        snap, _ = replicate(build, N)
        assert rules_of(analyze_snapshot(snap)) == []


# ---------------------------------------------------------- columnar checks

def _sealed_trace() -> TraceBuffer:
    tr = TraceBuffer()
    mem_id = OPCLASS_ID[VOpClass.MEM]
    unit = PATTERN_ID[VMemPattern.UNIT]
    op = tr.intern("vle")
    tr.emit_vector(mem_id, STRIP, op, pattern_id=unit,
                   addrs=lane_block(A))
    tr.emit_vector(OPCLASS_ID[VOpClass.ARITH], STRIP, tr.intern("vfadd"),
                   dep=0)
    tr.emit_barrier()
    tr.emit_vector(mem_id, STRIP, tr.intern("vse"), pattern_id=unit,
                   addrs=lane_block(B), is_write=True, dep=1)
    return tr.seal()


class TestTraceBufferInvariants:
    def test_clean_trace_has_no_findings(self):
        assert check_trace_buffer(_sealed_trace()) == []

    @pytest.mark.parametrize("mutate,rule", [
        (lambda c: c.addr_off.__setitem__(1, 99), "T101"),
        (lambda c: c.addr_off.__setitem__(-1, int(c.addr_off[-1]) + 8),
         "T102"),
        (lambda c: c.kind.__setitem__(1, 7), "T104"),
        (lambda c: c.opclass.__setitem__(1, 200), "T104"),
        (lambda c: c.active.__setitem__(0, STRIP + 1), "T105"),
        (lambda c: c.vl.__setitem__(2, 1), "T106"),
        (lambda c: c.dep.__setitem__(0, 0), "T107"),
        (lambda c: c.vl.__setitem__(1, 10 ** 6), "T108"),
        (lambda c: c.vl.__setitem__(1, -3), "T108"),
    ])
    def test_planted_columnar_corruption(self, mutate, rule):
        tr = _sealed_trace()
        mutate(tr.cols)
        found = check_trace_buffer(tr)
        assert rule in rules_of(found), found

    def test_dtype_violation(self):
        tr = _sealed_trace()
        tr.cols.vl = tr.cols.vl.astype(np.int64)
        assert "T103" in rules_of(check_trace_buffer(tr))

    def test_string_table_must_lead_with_empty(self):
        tr = _sealed_trace()
        tr.cols.strings[0] = "oops"
        assert "T103" in rules_of(check_trace_buffer(tr))

    def test_vl_cap_scales_with_hw_max_vl(self):
        tr = _sealed_trace()
        tr.cols.vl[1] = 8 * 8 * 8 + 1  # legal under 256, not under 8
        assert check_trace_buffer(tr, hw_max_vl=256) == []
        assert "T108" in rules_of(check_trace_buffer(tr, hw_max_vl=8))
