"""Synthetic-template helpers shared by the lint tests.

Every test builds a tiny strip-mined loop the way the kernels do —
record one iteration on a :class:`TraceTemplate`, then ``replicate`` it
under :func:`capture_replications` — so the analyzer sees exactly the
artifact it sees in production, just with a planted (or deliberately
absent) hazard.
"""

import numpy as np

from repro.trace.events import TraceBuffer, VMemPattern, VOpClass
from repro.trace.template import (
    TemplateSnapshot,
    TraceTemplate,
    capture_replications,
)

D = 8        # bytes per double
STRIP = 8    # elements per strip iteration
STRIDE = STRIP * D  # bytes one iteration advances


def offsets(n_iters: int, stride: int = STRIDE) -> np.ndarray:
    """Per-iteration byte offsets of a dense strip-mined stream."""
    return np.arange(n_iters, dtype=np.int64) * stride


def lane_block(base: int) -> np.ndarray:
    """One iteration's lane addresses: STRIP consecutive doubles."""
    return base + np.arange(STRIP, dtype=np.int64) * D


def mem(tpl: TraceTemplate, base: int, n: int, *, write: bool,
        dep=None, stride: int = STRIDE) -> int:
    """Template slot: one affine unit-stride vector load/store."""
    return tpl.vector(
        VOpClass.MEM, STRIP, "vse" if write else "vle",
        pattern=VMemPattern.UNIT, base_addrs=lane_block(base),
        iter_offsets=offsets(n, stride), is_write=write, dep=dep)


def replicate(build, n_iters: int = 8):
    """Record one template via ``build(tpl, n_iters)`` and replicate it.

    Returns the captured :class:`TemplateSnapshot` and the trace buffer.
    """
    trace = TraceBuffer()
    tpl = TraceTemplate(trace)
    build(tpl, n_iters)
    with capture_replications() as snaps:
        tpl.replicate(n_iters)
    assert len(snaps) == 1
    return snaps[0], trace


def snapshot_of(build, n_iters: int = 8) -> TemplateSnapshot:
    """Freeze a template into a snapshot WITHOUT expanding it.

    ``replicate()`` validates deps eagerly and would refuse some of the
    malformed templates the analyzer must also diagnose offline (e.g. a
    snapshot deserialized from another run), so structural-dep tests
    build the snapshot directly.
    """
    tpl = TraceTemplate(TraceBuffer())
    build(tpl, n_iters)
    return TemplateSnapshot(tuple(tpl._scal), tuple(tpl._var),
                            tuple(tpl._strs), n_iters, 0)


def rules_of(findings) -> list[str]:
    return sorted(f.rule for f in findings)


def error_rules(findings) -> list[str]:
    from repro.lint.findings import Severity
    return sorted(f.rule for f in findings
                  if f.severity is Severity.ERROR)
