"""The runtime sanitizer: shadow tracking, R-rule semantics, dumps.

Every test installs a *test-local* :class:`ShadowTracker` by
monkeypatching the module hooks, so the scenarios stay invisible to an
environment-installed tracker (the CI ``sanitize`` job runs this very
suite under ``REPRO_SANITIZE=1``). All real segments are cleaned up
inside the monkeypatch window for the same reason.
"""

import json
import os

import pytest

import repro.core.parallel as parallel_mod
import repro.core.shm as shm_mod
from repro.core.shm import PlaneRef, TracePlane, plane_prefix, shm_available
from repro.lint.findings import Severity
from repro.lint.sanitize import (
    SANITIZE_SCHEMA,
    ShadowTracker,
    report_from_dir,
)

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="no usable shared memory on this platform")


@pytest.fixture
def tracker(monkeypatch):
    trk = ShadowTracker()
    monkeypatch.setattr(shm_mod, "_sanitizer", trk)
    monkeypatch.setattr(parallel_mod, "_sanitizer", trk)
    return trk


def _rules(findings):
    return sorted(f.rule for f in findings)


@needs_shm
class TestShadowLifecycle:
    def test_clean_round_trip_has_no_findings(self, tracker):
        plane = TracePlane()
        ref = plane.publish_bytes("k", b"payload", prefix=plane_prefix())
        assert ref is not None
        assert plane.attach_bytes(ref) == b"payload"
        plane.detach(ref)
        plane.release(ref)
        assert tracker.findings() == []
        tracker.begin_exit()
        assert tracker.findings() == []
        assert tracker.counters["publishes"] == 1
        assert tracker.counters["unlinks"] == 1

    def test_r101_owned_segment_leaked(self, tracker):
        plane = TracePlane()
        ref = plane.publish_bytes("leak", b"x" * 32, prefix=plane_prefix())
        tracker.begin_exit()
        found = tracker.findings()
        assert "R101" in _rules(found)
        assert all(f.severity == Severity.ERROR for f in found
                   if f.rule == "R101")
        plane.release(ref)

    def test_r101_snapshot_survives_exit_cleanup(self, tracker):
        # the leak snapshot is taken *before* cleanup runs, so atexit's
        # own unlink_all cannot retroactively hide the leak
        plane = TracePlane()
        ref = plane.publish_bytes("leak2", b"y" * 32, prefix=plane_prefix())
        tracker.begin_exit()
        plane.unlink_all()
        assert "R101" in _rules(tracker.findings())

    def test_r101_exit_purge_reclaims_own_prefix(self, tracker):
        # worker-style transfer publish that nobody ever adopted: only
        # the exit purge sweeps it, which is itself the finding
        plane = TracePlane()
        ref = plane.publish_bytes("handoff", b"z" * 32,
                                  prefix=plane_prefix(), transfer=True)
        assert ref is not None
        tracker.begin_exit()
        assert tracker.findings() == []  # not owned: no direct leak
        assert shm_mod.purge_prefix(plane_prefix()) >= 1
        assert "R101" in _rules(tracker.findings())
        assert ref.name in tracker.exit_reclaimed

    def test_r102_pinned_mapping(self, tracker):
        plane = TracePlane()
        ref = plane.publish_bytes("pin", b"p" * 32, prefix=plane_prefix())
        plane.attach_bytes(ref)  # never detached
        tracker.begin_exit()
        rules = _rules(tracker.findings())
        assert "R102" in rules
        plane.release(ref)

    def test_r102_settled_by_local_unlink(self, tracker):
        # owner unlinking the name settles the balance process-wide,
        # even when a *different* plane object held the attachment
        owner = TracePlane()
        ref = owner.publish_bytes("settle", b"s" * 32,
                                  prefix=plane_prefix())
        other = TracePlane()
        assert other.attach_bytes(ref) == b"s" * 32
        owner.release(ref)  # unlink settles; `other` never detached
        tracker.begin_exit()
        assert "R102" not in _rules(tracker.findings())

    def test_r103_double_unlink(self, tracker):
        plane = TracePlane()
        ref = plane.publish_bytes("dbl", b"d" * 32, prefix=plane_prefix())
        plane.release(ref)
        shm_mod._raw_unlink(ref.name)  # the seeded-mutation shape
        assert _rules(tracker.violations) == ["R103"]

    def test_r104_release_from_stranger(self, tracker):
        plane = TracePlane()
        ghost = PlaneRef(name="repro-plane-0-ghost00", key="g",
                         kind="bytes", size=8)
        plane.release(ghost)
        assert _rules(tracker.violations) == ["R104"]

    def test_failed_attach_then_detach_is_quiet(self, tracker):
        # the attached_* context managers detach unconditionally; a
        # failed attach must not count as anything
        plane = TracePlane()
        ghost = PlaneRef(name="repro-plane-0-gone000", key="g",
                         kind="bytes", size=8)
        with plane.attached_bytes(ghost) as data:
            assert data is None
        assert tracker.findings() == []
        assert tracker.counters["attaches"] == 0


class TestPoolShadow:
    def test_r105_short_drain(self, tracker):
        bid = tracker.note_batch_begin(jobs=2, tasks=5)
        tracker.note_batch_end(bid, "ok", completed=3, submitted=5)
        assert _rules(tracker.violations) == ["R105"]

    def test_broken_pool_drain_is_not_r105(self, tracker):
        bid = tracker.note_batch_begin(jobs=2, tasks=5)
        tracker.note_batch_end(bid, "broken", completed=3, submitted=5)
        assert tracker.violations == []

    def test_r105_batch_open_at_exit(self, tracker):
        tracker.note_batch_begin(jobs=2, tasks=4)
        tracker.begin_exit()
        assert "R105" in _rules(tracker.findings())

    def test_r106_foreign_pool_abandoned(self, tracker, monkeypatch):
        class _Dead:
            def shutdown(self, *a, **k):
                raise AssertionError("foreign pool must not be shut down")

        monkeypatch.setattr(parallel_mod, "_pool",
                            ((1, None, ()), _Dead()))
        monkeypatch.setattr(parallel_mod, "_pool_pid", os.getpid() + 1)
        pool = parallel_mod._get_pool(1, None, ())
        try:
            assert _rules(tracker.violations) == ["R106"]
        finally:
            parallel_mod.shutdown_pool()

    def test_run_tasks_batches_accounted(self, tracker, monkeypatch):
        class _Fake:
            def submit(self, fn, t):
                from concurrent.futures import Future

                f = Future()
                f.set_result(fn(t))
                return f

        monkeypatch.setattr(parallel_mod, "_get_pool",
                            lambda *a: _Fake())
        out = parallel_mod.run_tasks(_double, [1, 2, 3], jobs=2)
        assert out == [2, 4, 6]
        assert tracker.counters["pool_batches"] == 1
        assert tracker.counters["pool_batch_ok"] == 1
        assert tracker.open_batches == {}
        assert tracker.violations == []


def _double(x):
    return 2 * x


class TestForkSafety:
    def test_hooks_reset_inherited_state(self, tracker):
        tracker.note_publish("seg-a", "k", 16, False)
        assert tracker.segments
        # simulate "this object crossed a fork": pid no longer matches
        tracker.pid -= 1
        tracker.note_attach("seg-b", 8)
        assert "seg-a" not in tracker.segments  # parent state dropped
        assert tracker.pid == os.getpid()
        assert tracker.counters["attaches"] == 1


class TestDumpsAndAggregation:
    def test_dump_round_trip(self, tmp_path, tracker):
        tracker.note_release("never-seen", owned=False)  # R104
        path = tracker.dump(str(tmp_path))
        assert path is not None
        doc = json.loads(path.read_text())
        assert doc["schema"] == SANITIZE_SCHEMA
        assert doc["pid"] == os.getpid()
        found = report_from_dir(str(tmp_path))
        assert _rules(found) == ["R104"]
        assert found[0].pid == os.getpid()
        assert found[0].severity == Severity.ERROR

    def test_empty_dir_is_w003(self, tmp_path):
        assert _rules(report_from_dir(str(tmp_path))) == ["W003"]

    def test_missing_dir_is_w003(self, tmp_path):
        assert _rules(report_from_dir(str(tmp_path / "nope"))) == ["W003"]

    def test_bad_schema_is_w003(self, tmp_path):
        (tmp_path / "sanitize-1-bad.json").write_text(
            json.dumps({"schema": "repro.sanitize/99", "findings": []}))
        assert _rules(report_from_dir(str(tmp_path))) == ["W003"]

    def test_unreadable_dump_is_w003(self, tmp_path):
        (tmp_path / "sanitize-1-junk.json").write_text("{not json")
        assert _rules(report_from_dir(str(tmp_path))) == ["W003"]

    def test_clean_dump_aggregates_to_nothing(self, tmp_path, tracker):
        tracker.begin_exit()
        tracker.dump(str(tmp_path))
        assert report_from_dir(str(tmp_path)) == []

    def test_report_carries_counters(self, tracker):
        tracker.note_publish("seg", "k", 16, False)
        rep = tracker.report()
        assert rep.meta["sanitize"]["publishes"] == 1
        assert rep.meta["pid"] == os.getpid()
