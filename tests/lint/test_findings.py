"""The findings pipeline: severities, filtering, rendering, exit codes."""

import json

import pytest

from repro.lint.findings import (
    REPORT_SCHEMA,
    Finding,
    FindingsReport,
    Severity,
)
from repro.lint.rules import RULES, finding, get_rule, render_catalog


def _f(rule="T001", sev=Severity.ERROR, loc="x", msg="m", hint=""):
    return Finding(rule, sev, loc, msg, hint)


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert max(Severity.WARNING, Severity.ERROR) is Severity.ERROR

    def test_renders_bare_name(self):
        assert str(Severity.ERROR) == "ERROR"


class TestFinding:
    def test_render_carries_rule_location_and_hint(self):
        text = _f(hint="declare Dep.prev").render()
        assert "T001" in text and "x: m" in text
        assert "[hint: declare Dep.prev]" in text

    def test_to_dict_omits_empty_hint(self):
        assert "hint" not in _f().to_dict()
        assert _f(hint="h").to_dict()["hint"] == "h"


class TestReport:
    def test_exit_code_is_one_iff_error(self):
        assert FindingsReport().exit_code() == 0
        warn = FindingsReport([_f(sev=Severity.WARNING)])
        assert warn.exit_code() == 0
        assert FindingsReport([_f()]).exit_code() == 1

    def test_ignoring_drops_by_rule(self):
        rep = FindingsReport([_f("T001"), _f("T005", Severity.WARNING)])
        kept = rep.ignoring(["T001"])
        assert [f.rule for f in kept] == ["T005"]
        assert kept.exit_code() == 0
        # the original is untouched
        assert len(rep) == 2

    def test_render_text_orders_most_severe_first(self):
        rep = FindingsReport([_f("T005", Severity.WARNING),
                              _f("T001", Severity.ERROR)])
        lines = rep.render_text().splitlines()
        assert lines[0].startswith("ERROR")
        assert lines[1].startswith("WARNING")
        assert "2 findings" in lines[-1]

    def test_empty_report_renders_clean(self):
        assert "clean" in FindingsReport().render_text()

    def test_json_schema_and_counts(self):
        rep = FindingsReport([_f(), _f("T005", Severity.WARNING)])
        doc = json.loads(rep.to_json())
        assert doc["schema"] == REPORT_SCHEMA
        assert doc["counts"]["ERROR"] == 1
        assert doc["counts"]["WARNING"] == 1
        assert doc["exit_code"] == 1
        assert len(doc["findings"]) == 2


class TestCatalog:
    def test_every_rule_resolves(self):
        for rid, rule in RULES.items():
            assert get_rule(rid) is rule
            assert rule.severity in tuple(Severity)

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            get_rule("Z999")

    def test_finding_defaults_severity_from_catalog(self):
        f = finding("T005", "loc", "msg")
        assert f.severity is Severity.WARNING
        assert finding("T001", "loc", "msg").severity is Severity.ERROR

    def test_finding_severity_override(self):
        f = finding("T001", "loc", "msg", severity=Severity.WARNING)
        assert f.severity is Severity.WARNING

    def test_catalog_renders_every_id(self):
        text = render_catalog()
        for rid in RULES:
            assert rid in text
