"""Seeded-mutation validation of the whole gate.

Each mutation plants exactly the class of bug the linter exists to
catch — a dropped ordering Dep, a shifted address stream, a stale trace
cache entry — in *real* kernel artifacts, and asserts the finding comes
back at ERROR severity (i.e. would fail CI), not as a warning.
"""

import numpy as np

from repro.core.sweeps import run_implementation
from repro.kernels import KERNELS
from repro.lint.findings import Severity
from repro.lint.runner import LintOptions, run_lint
from repro.lint.trace_rules import analyze_snapshot
from repro.soc.sdv import FpgaSdv
from repro.trace.template import (
    _D_PREV,
    _DEP_NONE,
    _V_BASE,
    _V_DEP,
    TemplateSnapshot,
    capture_replications,
)
from repro.workloads import get_scale
from tests.lint.util import error_rules


def _bfs_snapshots(vl: int = 8):
    spec = KERNELS["bfs"]
    wl = spec.prepare(get_scale("smoke"), 7)
    session = FpgaSdv().configure(max_vl=vl).session()
    with capture_replications() as snaps:
        spec.vector(session, wl)
    return snaps


def _mutate_slot(snap: TemplateSnapshot, slot: int,
                 field: int, value) -> TemplateSnapshot:
    var = list(snap.var)
    v = list(var[slot])
    v[field] = value
    var[slot] = tuple(v)
    return TemplateSnapshot(snap.scal, tuple(var), snap.strs,
                            snap.n_iters, snap.start)


def _expansion_snaps():
    """BFS expansion templates whose scatter->gather Dep is load-bearing:
    slot 5 (levels gather) declares Dep.prev on slot 8 (levels scatter),
    and the scatter really does alias the gather across strips."""
    picked = []
    for snap in _bfs_snapshots():
        deps = [v[_V_DEP] for v in snap.var]
        if len(deps) > 8 and deps[5].mode == _D_PREV \
                and deps[5].slot == 8 \
                and analyze_snapshot(snap) == []:
            picked.append(snap)
    assert picked, "no clean BFS expansion snapshot found"
    return picked


class TestMissingDep:
    def test_dropping_the_ordering_dep_is_an_error(self):
        caught = 0
        for snap in _expansion_snaps():
            mutated = _mutate_slot(snap, 5, _V_DEP, _DEP_NONE)
            errs = [f for f in analyze_snapshot(mutated)
                    if f.severity is Severity.ERROR]
            if errs:
                assert error_rules(errs) == ["T001"] * len(errs)
                assert any("slot8" in f.location for f in errs)
                caught += 1
        # every snapshot that was clean only because of the declared dep
        # must now report the undeclared RAW
        assert caught > 0


class TestShiftedAddressStream:
    def test_shifting_the_stream_breaks_dep_coverage(self):
        # a single Dep.prev edge proves ordering at iteration distance 1
        # exactly; shifting the reader's stream one further strip back
        # moves the overlap to distance 2, which that dep no longer
        # covers — the declared dep must not be accepted as a blanket
        # waiver for the pair
        from repro.trace.template import Dep
        from tests.lint.util import STRIDE, mem, replicate

        A = 0x10000

        def build(tpl, n):
            mem(tpl, A, n, write=True)
            mem(tpl, A - STRIDE, n, write=False, dep=Dep.prev(0))
        snap, _ = replicate(build, 8)
        assert error_rules(analyze_snapshot(snap)) == []  # covered

        shifted = _mutate_slot(
            snap, 1, _V_BASE,
            np.asarray(snap.var[1][_V_BASE], dtype=np.int64) - STRIDE)
        errs = [f for f in analyze_snapshot(shifted)
                if f.severity is Severity.ERROR]
        assert error_rules(errs) == ["T001"]
        assert "distance 2" in errs[0].message

    def test_shifting_the_bfs_scatter_is_still_ordered_by_the_cycle(self):
        # control: BFS's gather<->scatter prev-edge cycle covers every
        # distance, so an in-array shift of the scatter must NOT produce
        # an error — the mutation detector has to discriminate, not
        # alarm on any change
        from repro.trace.template import _V_FLAT
        snap = _expansion_snaps()[0]
        mutated = _mutate_slot(
            snap, 8, _V_FLAT,
            np.asarray(snap.var[8][_V_FLAT], dtype=np.int64) + 8)
        assert error_rules(analyze_snapshot(mutated)) == []


class TestStaleTraceCache:
    def _warm(self, tmp_path):
        spec = KERNELS["fft"]
        wl = spec.prepare(get_scale("smoke"), 7)
        run_implementation(spec, wl, 8, trace_cache=tmp_path,
                           verify=False)
        return next(tmp_path.glob("*.npz"))

    def test_stale_fingerprint_fails_the_gate(self, tmp_path):
        entry = self._warm(tmp_path)
        stem, _ = entry.name.rsplit("-", 1)
        entry.rename(tmp_path / f"{stem}-{'0' * 12}.npz")
        report = run_lint(LintOptions(families=("cache",),
                                      trace_cache=str(tmp_path)))
        assert report.exit_code() == 1
        assert error_rules(report) == ["S002"]

    def test_stale_schema_version_fails_the_gate(self, tmp_path):
        entry = self._warm(tmp_path)
        entry.rename(tmp_path / entry.name.replace("-t", "-t9", 1))
        report = run_lint(LintOptions(families=("cache",),
                                      trace_cache=str(tmp_path)))
        assert report.exit_code() == 1
        assert error_rules(report) == ["S001"]

    def test_fresh_cache_passes_the_gate(self, tmp_path):
        self._warm(tmp_path)
        report = run_lint(LintOptions(families=("cache",),
                                      trace_cache=str(tmp_path)))
        assert report.exit_code() == 0
