"""Seeded lifecycle mutations: each one must be caught twice.

The acceptance contract of the concurrency analysis: three seeded
mutations of the real plane/scheduler source — a dropped detach, a
skipped adopt, a duplicated unlink — are each flagged as ERROR by the
*static* typestate pass on a mutated scratch copy, and the equivalent
runtime behavior is flagged by the *sanitizer*; while the clean tree
pins at zero P1xx findings and a full sharded sweep under
``REPRO_SANITIZE=1`` pins at zero R1xx findings (and zero leaked
``/dev/shm`` segments).
"""

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

import repro.core.shm as shm_mod
from repro.core.shm import TracePlane, plane_prefix, shm_available
from repro.lint.concurrency_rules import lint_concurrency
from repro.lint.findings import Severity
from repro.lint.sanitize import ShadowTracker, report_from_dir

SRC = Path(shm_mod.__file__).resolve().parents[1]  # src/repro
SWEEPS = SRC / "core" / "sweeps.py"
SHM = SRC / "core" / "shm.py"

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="no usable shared memory on this platform")


def _mutate(tmp_path, source: Path, old: str, new: str) -> Path:
    """Scratch copy of ``source`` with one textual mutation applied."""
    text = source.read_text(encoding="utf-8")
    assert old in text, f"mutation anchor drifted: {old!r}"
    out = tmp_path / source.name
    out.write_text(text.replace(old, new, 1), encoding="utf-8")
    return out


class TestStaticPassCatchesMutations:
    def test_m1_dropped_detach_is_p101(self, tmp_path):
        # _shard_task's finally no longer detaches the attached trace
        mut = _mutate(tmp_path, SWEEPS,
                      "        plane.detach(tref)", "        pass")
        found = [f for f in lint_concurrency([mut]) if f.rule == "P101"]
        assert found, "dropped detach not caught"
        assert all(f.severity == Severity.ERROR for f in found)

    def test_m2_skipped_adopt_is_p104(self, tmp_path):
        # the sweep parent collects phase-A refs without adopting them
        mut = _mutate(tmp_path, SWEEPS, "plane.adopt(ref) and ", "")
        found = [f for f in lint_concurrency([mut]) if f.rule == "P104"]
        assert found, "skipped adopt not caught"
        assert all(f.severity == Severity.ERROR for f in found)

    def test_m3_double_unlink_is_p103(self, tmp_path):
        # release() unlinks the same name twice
        mut = _mutate(tmp_path, SHM,
                      "        _raw_unlink(ref.name)\n",
                      "        _raw_unlink(ref.name)\n"
                      "        _raw_unlink(ref.name)\n")
        found = [f for f in lint_concurrency([mut]) if f.rule == "P103"]
        assert found, "double unlink not caught"
        assert all(f.severity == Severity.ERROR for f in found)

    def test_clean_copies_stay_clean(self, tmp_path):
        # the anchors above flag the mutation, not the original code
        for src in (SWEEPS, SHM):
            copy = tmp_path / src.name
            shutil.copyfile(src, copy)
            assert lint_concurrency([copy]) == [], src.name


@needs_shm
class TestSanitizerCatchesMutations:
    """The same three bugs, expressed as runtime behavior."""

    @pytest.fixture
    def tracker(self, monkeypatch):
        trk = ShadowTracker()
        monkeypatch.setattr(shm_mod, "_sanitizer", trk)
        return trk

    def test_m1_dropped_detach_is_r102(self, tracker):
        plane = TracePlane()
        ref = plane.publish_bytes("m1", b"m" * 32, prefix=plane_prefix())
        plane.attach_bytes(ref)  # the shard task that never detaches
        tracker.begin_exit()
        assert any(f.rule == "R102" for f in tracker.findings())
        plane.release(ref)

    def test_m2_skipped_adopt_is_r101(self, tracker):
        # a transfer-published segment nobody adopts survives until the
        # exit purge reclaims it under our own prefix — an R101
        plane = TracePlane()
        ref = plane.publish_bytes("m2", b"m" * 32, prefix=plane_prefix(),
                                  transfer=True)
        assert ref is not None
        tracker.begin_exit()
        assert shm_mod.purge_prefix(plane_prefix()) >= 1
        assert any(f.rule == "R101" for f in tracker.findings())

    def test_m3_double_unlink_is_r103(self, tracker):
        plane = TracePlane()
        ref = plane.publish_bytes("m3", b"m" * 32, prefix=plane_prefix())
        plane.release(ref)
        shm_mod._raw_unlink(ref.name)
        assert any(f.rule == "R103" for f in tracker.violations)


class TestCleanTreePins:
    def test_static_pass_pins_at_zero(self):
        report = lint_concurrency()
        assert report == [], "\n".join(f.render() for f in report)


_E2E = """
import repro.core.shm as shm
from repro.core.sweeps import latency_sweep
from repro.kernels import KERNELS
from repro.workloads import get_scale

spec = KERNELS["spmv"]
workload = spec.prepare(get_scale("smoke"), 7)
res = latency_sweep(spec, workload, latencies=(0, 128, 512), vls=(8, 32),
                    verify=False, engine="fast", jobs=2)
assert len(res.measurements) == 9
"""


@needs_shm
class TestSanitizedSweepEndToEnd:
    def test_sharded_sweep_pins_at_zero_findings(self, tmp_path):
        env = dict(os.environ,
                   REPRO_SANITIZE="1", REPRO_SANITIZE_DIR=str(tmp_path),
                   PYTHONPATH=str(SRC.parent))
        proc = subprocess.run([sys.executable, "-c", _E2E], env=env,
                              capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, proc.stderr
        dumps = sorted(tmp_path.glob("sanitize-*.json"))
        # parent + at least one pool worker dumped shadow state
        assert len(dumps) >= 2, [p.name for p in dumps]
        found = report_from_dir(str(tmp_path))
        assert found == [], "\n".join(f.render() for f in found)
        pids = {json.loads(p.read_text())["pid"] for p in dumps}
        assert len(pids) == len(dumps)  # one dump per process
        # and nothing was left behind in /dev/shm
        leftovers = [n for n in os.listdir("/dev/shm")
                     if n.startswith("repro-plane-")]
        assert leftovers == []
