"""AST emitter lint: determinism, hot-path emission, ISA legality."""

import textwrap

from repro.lint.emitter_rules import (
    default_emitter_paths,
    lint_paths,
    lint_source,
)
from tests.lint.util import rules_of

KPATH = "src/repro/kernels/fake/vector.py"  # triggers hot-path rules


def lint(code: str, path: str = KPATH) -> list[str]:
    return rules_of(lint_source(path, textwrap.dedent(code)))


class TestDeterminism:
    def test_clean_emitter(self):
        assert lint("""
            import numpy as np

            def build(session, workload):
                rng = np.random.default_rng(workload.seed)
                return rng.permutation(8)
        """) == []

    def test_wall_clock_is_flagged(self):
        assert "E001" in lint("""
            import time

            def build(session, workload):
                t0 = time.perf_counter()
                return t0
        """)

    def test_unseeded_rng_is_flagged(self):
        assert "E002" in lint("""
            import numpy as np

            def build(session, workload):
                return np.random.rand(8)
        """)

    def test_bare_default_rng_is_flagged_seeded_is_not(self):
        assert "E002" in lint("""
            import numpy as np
            rng = np.random.default_rng()
        """)
        assert lint("""
            import numpy as np
            rng = np.random.default_rng(7)
        """) == []

    def test_inline_suppression(self):
        assert lint("""
            import time
            t0 = time.time()  # repro-lint: disable=E001
        """) == []
        # suppressing a different rule does not silence it
        assert "E001" in lint("""
            import time
            t0 = time.time()  # repro-lint: disable=E002
        """)

    def test_syntax_error_maps_to_e000(self):
        assert lint("def build(:\n") == ["E000"]


class TestHotPath:
    def test_object_emission_in_loop(self):
        code = """
            def build(session, workload):
                trace = session.trace
                for i in range(8):
                    trace.append(make_record(i))
        """
        assert "E003" in lint(code)
        # the same code outside kernels/ is not a hot path
        assert lint(code, path="src/repro/isa/vector_ctx.py") == []

    def test_columnar_emission_is_clean(self):
        assert lint("""
            def build(session, workload):
                trace = session.trace
                for i in range(8):
                    trace.emit_vector(2, 64, 1)
        """) == []


class TestIsaLegality:
    def test_illegal_vl_literal(self):
        assert "E004" in lint("""
            def build(session, workload):
                session.configure(max_vl=300)
        """)
        assert "E004" in lint("""
            def build(session, workload):
                session.configure(max_vl=48)
        """)

    def test_legal_vl_literals(self):
        assert lint("""
            def build(session, workload):
                session.configure(max_vl=256)
                ctx = session.with_max_vl(8)
        """) == []

    def test_csr_state_outside_csr_module(self):
        code = """
            def poke(ctx):
                ctx._max_vl = 64
        """
        assert "E005" in lint(code)
        assert lint(code, path="src/repro/isa/csr.py") == []

    def test_raw_csr_address_literal(self):
        assert "E006" in lint("""
            VLENB = 0xC22 - 0x2
            addr = 0xC20
        """)
        # decimal coincidences stay silent
        assert lint("n_bytes = 3104\n") == []


class TestRepoSweep:
    def test_default_paths_cover_kernels_and_isa(self):
        paths = [p.as_posix() for p in default_emitter_paths()]
        assert any("/kernels/" in p for p in paths)
        assert any("/isa/" in p for p in paths)

    def test_the_real_emitters_are_clean(self):
        assert lint_paths() == []
