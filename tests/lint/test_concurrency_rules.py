"""The concurrency typestate pass (P1xx) and the suppression audit.

Each rule gets a minimal positive and negative source fragment; the
clean-tree pin (zero P findings over the real ``src/repro``) lives in
``test_concurrency_mutations.py`` next to the seeded-mutation checks.
"""

import textwrap

from repro.lint.concurrency_rules import (
    default_concurrency_paths,
    lint_concurrency,
)


def _lint(tmp_path, src, name="mod.py"):
    p = tmp_path / name
    p.write_text(textwrap.dedent(src))
    return lint_concurrency([p])


def _rules(findings):
    return sorted(f.rule for f in findings)


class TestP101AttachWithoutDetach:
    def test_bare_attach_flagged(self, tmp_path):
        fs = _lint(tmp_path, """
            def f(plane, ref):
                trace = plane.attach_trace(ref)
                return trace.cycles
        """)
        assert _rules(fs) == ["P101"]
        assert "attach_trace" in fs[0].message

    def test_try_finally_pairing_accepted(self, tmp_path):
        fs = _lint(tmp_path, """
            def f(plane, ref):
                trace = plane.attach_trace(ref)
                try:
                    return trace.cycles
                finally:
                    plane.detach(ref)
        """)
        assert fs == []

    def test_attach_inside_protected_try_accepted(self, tmp_path):
        fs = _lint(tmp_path, """
            def f(plane, ref):
                try:
                    data = plane.attach_bytes(ref)
                    return len(data)
                finally:
                    plane.detach(ref)
        """)
        assert fs == []

    def test_context_manager_form_accepted(self, tmp_path):
        fs = _lint(tmp_path, """
            def f(plane, ref):
                with plane.attached_trace(ref) as trace:
                    return trace.cycles
        """)
        assert fs == []

    def test_self_receiver_exempt(self, tmp_path):
        # the plane's own internals compose attach primitives freely
        fs = _lint(tmp_path, """
            class Plane:
                def helper(self, ref):
                    return self.attach_trace(ref)
        """)
        assert fs == []

    def test_finally_detaching_other_ref_still_flagged(self, tmp_path):
        fs = _lint(tmp_path, """
            def f(plane, ref, other):
                trace = plane.attach_trace(ref)
                try:
                    return trace.cycles
                finally:
                    plane.detach(other)
        """)
        assert _rules(fs) == ["P101"]


class TestP102UseAfterRelease:
    def test_use_after_release_flagged(self, tmp_path):
        fs = _lint(tmp_path, """
            def f(plane, ref):
                trace = plane.attach_trace(ref)
                try:
                    total = trace.cycles
                finally:
                    plane.detach(ref)
                plane.release(ref)
                return trace.cycles
        """)
        assert "P102" in _rules(fs)

    def test_use_before_release_clean(self, tmp_path):
        fs = _lint(tmp_path, """
            def f(plane, ref):
                trace = plane.attach_trace(ref)
                try:
                    total = trace.cycles
                finally:
                    plane.detach(ref)
                plane.release(ref)
                return total
        """)
        assert fs == []


class TestP103DoubleUnlink:
    def test_literal_duplicate_flagged(self, tmp_path):
        fs = _lint(tmp_path, """
            def f(name):
                _raw_unlink(name)
                _raw_unlink(name)
        """)
        assert _rules(fs) == ["P103"]

    def test_different_args_clean(self, tmp_path):
        fs = _lint(tmp_path, """
            def f(a, b):
                _raw_unlink(a)
                _raw_unlink(b)
        """)
        assert fs == []

    def test_separate_branches_clean(self, tmp_path):
        # one unlink per execution path is fine
        fs = _lint(tmp_path, """
            def f(name, fast):
                if fast:
                    _raw_unlink(name)
                else:
                    _raw_unlink(name)
        """)
        assert fs == []


_TRANSFER_WORKER = textwrap.dedent("""
    def _work(task):
        return plane.publish_trace("k", task, prefix=pfx,
                                   transfer=True)
""")


class TestP104HandoffWithoutAdopt:
    def test_missing_adopt_flagged(self, tmp_path):
        fs = _lint(tmp_path, _TRANSFER_WORKER + textwrap.dedent("""
            def sweep(tasks):
                return run_tasks(_work, tasks, jobs=2)
        """))
        assert _rules(fs) == ["P104"]

    def test_adopt_in_enclosing_function_accepted(self, tmp_path):
        fs = _lint(tmp_path, _TRANSFER_WORKER + textwrap.dedent("""
            def sweep(plane, tasks):
                outs = run_tasks(_work, tasks, jobs=2)
                for ref in outs:
                    plane.adopt(ref)
                return outs
        """))
        assert fs == []

    def test_tracer_adopt_does_not_count(self, tmp_path):
        # span adoption shares the method name but moves no segment
        fs = _lint(tmp_path, _TRANSFER_WORKER + textwrap.dedent("""
            def sweep(tracer, tasks):
                outs = run_tasks(_work, tasks, jobs=2)
                for out in outs:
                    tracer.adopt(out.spans)
                return outs
        """))
        assert _rules(fs) == ["P104"]

    def test_non_transfer_publish_clean(self, tmp_path):
        fs = _lint(tmp_path, """
            def _work(task):
                return plane.publish_trace("k", task, prefix=pfx)

            def sweep(tasks):
                return run_tasks(_work, tasks, jobs=2)
        """)
        assert fs == []


class TestP105NestedFanout:
    def test_worker_calling_run_tasks_flagged(self, tmp_path):
        fs = _lint(tmp_path, """
            def _leaf(t):
                return t

            def _nested(t):
                return run_tasks(_leaf, [t])

            def main(tasks):
                return run_tasks(_nested, tasks, jobs=2)
        """)
        assert _rules(fs) == ["P105"]

    def test_transitive_helper_flagged(self, tmp_path):
        fs = _lint(tmp_path, """
            def _leaf(t):
                return t

            def _helper(t):
                return run_tasks(_leaf, [t])

            def _worker(t):
                return _helper(t)

            def main(tasks):
                return run_tasks(_worker, tasks, jobs=2)
        """)
        assert _rules(fs) == ["P105"]

    def test_raw_submit_outside_parallel_flagged(self, tmp_path):
        fs = _lint(tmp_path, """
            def f(pool, fn):
                return pool.submit(fn, 1)
        """)
        assert _rules(fs) == ["P105"]
        assert "core/parallel.py" in fs[0].message


class TestP106UnscopedSpans:
    def test_bare_span_flagged(self, tmp_path):
        fs = _lint(tmp_path, """
            def f(tracer):
                tracer.span("phase")
        """)
        assert _rules(fs) == ["P106"]

    def test_with_span_clean(self, tmp_path):
        fs = _lint(tmp_path, """
            def f(tracer, runlog):
                with tracer.span("phase"):
                    with runlog.context("phase"):
                        pass
        """)
        assert fs == []

    def test_bare_runlog_context_flagged(self, tmp_path):
        fs = _lint(tmp_path, """
            def f(runlog):
                runlog.context("phase")
        """)
        assert _rules(fs) == ["P106"]


class TestSuppressionAudit:
    def test_used_suppression_silences_and_stays_quiet(self, tmp_path):
        fs = _lint(tmp_path, """
            def f(plane, ref):
                trace = plane.attach_trace(ref)  # repro-lint: disable=P101
                return trace.cycles
        """)
        assert fs == []

    def test_unknown_rule_is_w001(self, tmp_path):
        fs = _lint(tmp_path, """
            def f(name):
                _raw_unlink(name)
                _raw_unlink(name)  # repro-lint: disable=P999,P103
        """)
        assert _rules(fs) == ["W001"]

    def test_stale_suppression_is_w002(self, tmp_path):
        fs = _lint(tmp_path, """
            def f(name):
                _raw_unlink(name)  # repro-lint: disable=P103
        """)
        assert _rules(fs) == ["W002"]

    def test_disable_all(self, tmp_path):
        fs = _lint(tmp_path, """
            def f(plane, ref):
                trace = plane.attach_trace(ref)  # repro-lint: disable=all
                return trace.cycles
        """)
        assert fs == []


class TestDefaultPaths:
    def test_core_modules_always_covered(self):
        paths = [p.as_posix() for p in default_concurrency_paths()]
        assert any(p.endswith("core/shm.py") for p in paths)
        assert any(p.endswith("core/parallel.py") for p in paths)
        assert any(p.endswith("core/sweeps.py") for p in paths)

    def test_consumers_found_by_token_scan(self):
        paths = [p.as_posix() for p in default_concurrency_paths()]
        assert any(p.endswith("obs/profile.py") for p in paths)

    def test_lint_package_excluded(self):
        # the rule tables quote the very tokens the scan looks for
        assert not any("/lint/" in p.as_posix()
                       for p in default_concurrency_paths())

    def test_unparseable_source_is_p100(self, tmp_path):
        fs = _lint(tmp_path, "def broken(:\n")
        assert _rules(fs) == ["P100"]
