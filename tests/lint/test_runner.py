"""The lint orchestrator and its two CLI entry points."""

import json

import pytest

from repro.cli import main as cli_main
from repro.lint.runner import (
    DEFAULT_FAMILIES,
    FAMILIES,
    LintOptions,
    main as lint_main,
    run_lint,
)


class TestRunLint:
    def test_clean_tree_has_no_errors(self):
        opts = LintOptions(kernels=("spmv",), vls=(8,), scale="smoke")
        report = run_lint(opts)
        assert report.exit_code() == 0, report.render_text()
        assert opts.meta["templates"] > 0
        assert opts.meta["elapsed_s"] > 0

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError, match="unknown lint family"):
            run_lint(LintOptions(families=("vibes",)))

    def test_family_selection_skips_templates(self):
        opts = LintOptions(families=("config",))
        report = run_lint(opts)
        assert report.exit_code() == 0
        assert "templates" not in opts.meta

    def test_ignore_filters_rules(self):
        base = LintOptions(families=("template",), kernels=("bfs",),
                           vls=(8,), scale="smoke")
        with_warn = run_lint(base)
        without = run_lint(LintOptions(
            families=("template",), kernels=("bfs",), vls=(8,),
            scale="smoke", ignore=("T005",)))
        assert not any(f.rule == "T005" for f in without)
        assert len(without) <= len(with_warn)

    def test_default_families(self):
        assert set(DEFAULT_FAMILIES) <= set(FAMILIES)
        assert "cache" in FAMILIES and "cache" not in DEFAULT_FAMILIES


class TestCli:
    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "T001" in out and "E001" in out and "C001" in out

    def test_unknown_kernel_is_usage_error(self, capsys):
        rc = lint_main(["--kernel", "nope", "--family", "config"])
        assert rc == 2

    def test_json_output(self, capsys):
        rc = lint_main(["--family", "config", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.lint/2"
        assert doc["exit_code"] == 0
        assert doc["meta"]["families"] == ["config"]

    def test_json_v1_compat_format(self, capsys):
        rc = lint_main(["--family", "config", "--format", "json-v1"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.lint/1"
        assert "meta" not in doc
        assert all("category" not in f for f in doc["findings"])

    def test_text_output_and_summary(self, capsys):
        rc = lint_main(["--family", "template", "--kernel", "spmv",
                        "--vls", "8", "--scale", "smoke"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "clean" in captured.out or "findings" in captured.out
        assert "templates analyzed" in captured.err

    def test_repro_sdv_verb_matches_module_entry(self, capsys):
        assert cli_main(["lint", "--family", "config", "--json"]) == 0
        via_cli = json.loads(capsys.readouterr().out)
        assert lint_main(["--family", "config", "--json"]) == 0
        via_module = json.loads(capsys.readouterr().out)
        # wall-clock meta necessarily differs between the two runs
        via_cli["meta"].pop("elapsed_s")
        via_module["meta"].pop("elapsed_s")
        assert via_cli == via_module

    def test_cache_family_needs_directory_flag(self, tmp_path):
        # --all turns the cache family on; without --trace-cache it is
        # a silent no-op rather than an error
        rc = lint_main(["--all", "--kernel", "spmv", "--vls", "8",
                        "--scale", "smoke"])
        assert rc == 0
