"""Sweep-grid legality, SoC config checks, trace-cache staleness audit."""

import numpy as np
import pytest

from repro.config import SdvConfig
from repro.core.sweeps import run_implementation, trace_cache_path
from repro.errors import ConfigError
from repro.kernels import KERNELS
from repro.lint.config_rules import (
    check_bandwidth_axis,
    check_latency_axis,
    check_sweep,
    check_trace_cache,
    check_vls,
)
from repro.soc import FpgaSdv
from repro.workloads import get_scale
from tests.lint.util import error_rules, rules_of


class TestAxes:
    def test_default_grids_are_clean(self):
        from repro.core.sweeps import (
            DEFAULT_BANDWIDTHS,
            DEFAULT_LATENCIES,
            DEFAULT_VLS,
        )
        assert check_latency_axis(DEFAULT_LATENCIES) == []
        assert check_bandwidth_axis(DEFAULT_BANDWIDTHS) == []
        assert check_vls(DEFAULT_VLS) == []

    @pytest.mark.parametrize("points,rule", [
        ((0, -5), "C001"),
        ((0, 1.5), "C001"),
        ((), "C008"),
        ((0, 2000), "C007"),
        ((64, 0), "C006"),
        ((0, 0), "C006"),
    ])
    def test_latency_axis(self, points, rule):
        assert rule in rules_of(check_latency_axis(points))

    @pytest.mark.parametrize("points,rule", [
        ((0,), "C002"),            # zero B/cycle
        ((3,), "C002"),            # does not divide the 64 B line
        ((128,), "C002"),          # beyond the line: cannot divide it
        ((), "C008"),
    ])
    def test_bandwidth_axis(self, points, rule):
        assert rule in rules_of(check_bandwidth_axis(points))

    @pytest.mark.parametrize("vls,rule", [
        ((48,), "C003"),
        ((0,), "C003"),
        ((512,), "C007"),
        ((), "C008"),
    ])
    def test_vl_grid(self, vls, rule):
        assert rule in rules_of(check_vls(vls))

    def test_check_sweep_rolls_up_axis_vls_and_config(self):
        found = check_sweep("latency", (0, -1), (48,), SdvConfig())
        rules = rules_of(found)
        assert "C001" in rules and "C003" in rules

    def test_unknown_axis(self):
        assert "C005" in rules_of(check_sweep("voltage", (0,), (8,)))


class TestSweepGate:
    """The harness rejects illegal grids before generating any trace."""

    def test_latency_sweep_rejects_bad_grid(self):
        from repro.core.sweeps import latency_sweep
        spec = KERNELS["spmv"]
        wl = spec.prepare(get_scale("smoke"), 7)
        with pytest.raises(ConfigError, match="C001"):
            latency_sweep(spec, wl, latencies=(0, -5), vls=(64,))
        with pytest.raises(ConfigError, match="C003"):
            latency_sweep(spec, wl, latencies=(0,), vls=(48,))

    def test_bandwidth_sweep_rejects_bad_grid(self):
        from repro.core.sweeps import bandwidth_sweep
        spec = KERNELS["spmv"]
        wl = spec.prepare(get_scale("smoke"), 7)
        with pytest.raises(ConfigError, match="C002"):
            bandwidth_sweep(spec, wl, bandwidths=(3,), vls=(64,))


class TestTraceCacheAudit:
    def _warm(self, tmp_path):
        spec = KERNELS["fft"]
        wl = spec.prepare(get_scale("smoke"), 7)
        run_implementation(spec, wl, 8, trace_cache=tmp_path,
                           verify=False)
        return spec, wl

    def test_fresh_cache_is_clean(self, tmp_path):
        self._warm(tmp_path)
        assert check_trace_cache(tmp_path) == []

    def test_not_a_directory(self, tmp_path):
        f = tmp_path / "file"
        f.write_text("x")
        assert rules_of(check_trace_cache(f)) == ["S003"]

    def test_unrecognized_entry(self, tmp_path):
        self._warm(tmp_path)
        (tmp_path / "leftover.npz").write_bytes(b"x")
        assert rules_of(check_trace_cache(tmp_path)) == ["S003"]

    @staticmethod
    def _trace_entry(tmp_path):
        """The cached trace itself (not its classified sidecar)."""
        return next(f for f in tmp_path.glob("*.npz")
                    if ".cls" not in f.name)

    @staticmethod
    def _drop_sidecars(tmp_path):
        for side in tmp_path.glob("*.npz"):
            if ".cls" in side.name:
                side.unlink()

    def test_stale_schema_version(self, tmp_path):
        self._warm(tmp_path)
        self._drop_sidecars(tmp_path)
        entry = self._trace_entry(tmp_path)
        stale = entry.name.replace("-t", "-t9", 1)
        entry.rename(tmp_path / stale)
        assert rules_of(check_trace_cache(tmp_path)) == ["S001"]

    def test_stale_kernel_fingerprint(self, tmp_path):
        self._warm(tmp_path)
        self._drop_sidecars(tmp_path)
        entry = self._trace_entry(tmp_path)
        stem, src = entry.name.rsplit("-", 1)
        entry.rename(tmp_path / f"{stem}-{'0' * 12}.npz")
        found = check_trace_cache(tmp_path)
        assert rules_of(found) == ["S002"]
        assert error_rules(found) == ["S002"]

    # ---- S004: classified sidecars ------------------------------------

    def _sidecar(self, tmp_path):
        return next(f for f in tmp_path.glob("*.npz") if ".cls" in f.name)

    def test_fresh_sidecar_is_clean(self, tmp_path):
        self._warm(tmp_path)
        assert self._sidecar(tmp_path) is not None
        assert check_trace_cache(tmp_path) == []

    def test_orphaned_sidecar(self, tmp_path):
        self._warm(tmp_path)
        self._trace_entry(tmp_path).unlink()
        found = check_trace_cache(tmp_path)
        assert rules_of(found) == ["S004"]
        assert "orphaned" in found[0].message

    def test_stale_sidecar_schema(self, tmp_path):
        self._warm(tmp_path)
        side = self._sidecar(tmp_path)
        side.rename(tmp_path / side.name.replace(".cls", ".cls9", 1))
        assert rules_of(check_trace_cache(tmp_path)) == ["S004"]

    def test_geometry_mismatch(self, tmp_path):
        self._warm(tmp_path)
        side = self._sidecar(tmp_path)
        stem, tail = side.name.rsplit("-", 1)
        side.rename(tmp_path / f"{stem}-{'0' * 12}.npz")
        found = check_trace_cache(tmp_path)
        assert rules_of(found) == ["S004"]
        assert "disagrees" in found[0].message

    def test_unreadable_sidecar(self, tmp_path):
        self._warm(tmp_path)
        self._sidecar(tmp_path).write_bytes(b"not an npz")
        found = check_trace_cache(tmp_path)
        assert rules_of(found) == ["S004"]
        assert "unreadable" in found[0].message
