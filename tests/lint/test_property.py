"""Property suite: the hazard analyzer as a detector.

Two statistical guarantees the mutation tests cannot give:

* **zero false negatives** — for randomly drawn strip loops with one
  planted in-window hazard and no covering Dep, the analyzer must
  report an ERROR every single time;
* **bounded false positives** — randomly drawn *clean* loops (disjoint
  streams, or hazards properly covered by deps/barriers) must never
  produce an ERROR, and the real kernel x VL grid stays ERROR-free with
  only a small, bounded number of warnings.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import KERNELS
from repro.lint.findings import Severity
from repro.lint.runner import LintOptions, run_lint
from repro.lint.trace_rules import MAX_DIST, analyze_snapshot
from repro.trace.template import Dep
from tests.lint.util import STRIDE, mem, replicate

#: regions this far apart can never alias within the drawn loop sizes.
REGION = 1 << 20

_HAZARD_KINDS = [
    ("RAW", True, False, "T001"),
    ("WAR", False, True, "T002"),
    ("WAW", True, True, "T003"),
]


@st.composite
def loops(draw):
    return {
        "n_iters": draw(st.integers(MAX_DIST + 2, 12)),
        "k": draw(st.integers(1, MAX_DIST)),
        "kind": draw(st.sampled_from(_HAZARD_KINDS)),
        "n_extra": draw(st.integers(0, 3)),
        "extra_writes": draw(st.lists(st.booleans(), min_size=3,
                                      max_size=3)),
        "stride_mult": draw(st.integers(1, 3)),
    }


def _build_loop(shape, *, cover: str | None):
    """One strip loop with a planted hazard at distance ``k``.

    ``cover`` is None (undeclared), 'barrier', or 'prev' (only legal
    for k == 1: one Dep.prev edge steps exactly one iteration).
    """
    _, first_writes, second_writes, _ = shape["kind"]
    stride = STRIDE * shape["stride_mult"]

    def build(tpl, n):
        for j in range(shape["n_extra"]):
            mem(tpl, (j + 2) * REGION, n,
                write=shape["extra_writes"][j], stride=stride)
        first = mem(tpl, REGION, n, write=first_writes, stride=stride)
        if cover == "barrier":
            tpl.barrier("fence")
        dep = Dep.prev(first) if cover == "prev" else None
        mem(tpl, REGION - shape["k"] * stride, n,
            write=second_writes, dep=dep, stride=stride)
    return build


def _errors(snap):
    return [f for f in analyze_snapshot(snap)
            if f.severity is Severity.ERROR]


@given(loops())
@settings(max_examples=60, deadline=None)
def test_planted_hazards_are_always_caught(shape):
    snap, _ = replicate(_build_loop(shape, cover=None),
                        shape["n_iters"])
    errs = _errors(snap)
    assert errs, "false negative: planted hazard not reported"
    rule = shape["kind"][3]
    assert any(f.rule == rule for f in errs)


@given(loops())
@settings(max_examples=60, deadline=None)
def test_barrier_covered_loops_are_clean(shape):
    snap, _ = replicate(_build_loop(shape, cover="barrier"),
                        shape["n_iters"])
    assert _errors(snap) == []


@given(loops())
@settings(max_examples=40, deadline=None)
def test_prev_dep_covers_distance_one(shape):
    shape = dict(shape, k=1)
    snap, _ = replicate(_build_loop(shape, cover="prev"),
                        shape["n_iters"])
    assert _errors(snap) == []


@given(st.integers(2, 12), st.integers(1, 5),
       st.lists(st.booleans(), min_size=5, max_size=5))
@settings(max_examples=60, deadline=None)
def test_disjoint_loops_never_error(n_iters, n_slots, writes):
    def build(tpl, n):
        for j in range(n_slots):
            mem(tpl, (j + 1) * REGION, n, write=writes[j])
    snap, _ = replicate(build, n_iters)
    found = analyze_snapshot(snap)
    assert found == [], f"false positive on disjoint streams: {found}"


# ------------------------------------------------ the real kernel x VL grid

@pytest.mark.parametrize("vl", (8, 64))
@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_clean_kernel_grid_is_error_free(kernel, vl):
    report = run_lint(LintOptions(
        families=("template",), kernels=(kernel,), vls=(vl,),
        scale="smoke", include_scalar=False))
    assert report.errors == [], report.render_text()
    # false positives stay bounded: at most a handful of warnings per
    # (kernel, VL) cell, never a flood that would train users to ignore
    assert len(report.by_severity(Severity.WARNING)) <= 4
