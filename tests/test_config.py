"""Unit tests for the machine configuration layer."""

import dataclasses

import pytest

from repro.config import (
    CoreConfig,
    L2Config,
    MemConfig,
    NocConfig,
    SdvConfig,
    VpuConfig,
)
from repro.errors import ConfigError


class TestDefaultsMatchPaper:
    """The default build is the system of Section 2."""

    def test_vpu_is_vitruvius_like(self):
        cfg = SdvConfig().validate()
        assert cfg.vpu.lanes == 8                 # "eight lanes"
        assert cfg.vpu.max_vl == 256              # "256 double precision"
        assert cfg.vpu.register_bits == 16384     # "16384-bit wide"

    def test_noc_is_2x2_mesh(self):
        cfg = SdvConfig().validate()
        assert cfg.noc.nodes == 4

    def test_l2_has_four_banks(self):
        cfg = SdvConfig().validate()
        assert cfg.l2.banks == 4

    def test_min_dram_latency_about_50_cycles(self):
        cfg = SdvConfig().validate()
        assert 45 <= cfg.dram_latency <= 55       # "approximately 50"

    def test_peak_bandwidth_64_bytes_per_cycle(self):
        cfg = SdvConfig().validate()
        assert cfg.mem.bytes_per_cycle_limit == 64.0


class TestValidation:
    def test_core_rejects_bad_issue_width(self):
        with pytest.raises(ConfigError):
            CoreConfig(issue_width=0).validate()

    def test_core_rejects_misaligned_l1(self):
        with pytest.raises(ConfigError):
            CoreConfig(l1d_bytes=1000).validate()

    def test_vpu_rejects_non_pow2_vl(self):
        with pytest.raises(ConfigError):
            VpuConfig(max_vl=100).validate()

    def test_vpu_rejects_vl_below_lanes(self):
        with pytest.raises(ConfigError):
            VpuConfig(lanes=8, max_vl=4).validate()

    def test_vpu_rejects_bad_mshrs(self):
        with pytest.raises(ConfigError):
            VpuConfig(line_mshrs=0).validate()

    def test_l2_rejects_non_pow2_banks(self):
        with pytest.raises(ConfigError):
            L2Config(banks=3).validate()

    def test_mem_rejects_over_peak_fraction(self):
        with pytest.raises(ConfigError):
            MemConfig(bw_num=3, bw_den=2).validate()

    def test_noc_rejects_zero_dims(self):
        with pytest.raises(ConfigError):
            NocConfig(mesh_cols=0).validate()

    def test_sdv_rejects_more_banks_than_nodes(self):
        cfg = SdvConfig(l2=L2Config(banks=8, bank_bytes=64 * 1024, ways=8))
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_sdv_rejects_tiny_memory(self):
        with pytest.raises(ConfigError):
            SdvConfig(memory_bytes=16).validate()


class TestKnobCopies:
    def test_with_extra_latency(self):
        cfg = SdvConfig().validate()
        cfg2 = cfg.with_extra_latency(512)
        assert cfg2.mem.extra_latency_cycles == 512
        assert cfg.mem.extra_latency_cycles == 0  # original untouched
        assert cfg2.dram_latency == cfg.dram_latency + 512

    def test_with_bandwidth(self):
        cfg = SdvConfig().with_bandwidth(8)
        assert cfg.mem.bytes_per_cycle_limit == 8.0

    def test_with_max_vl(self):
        cfg = SdvConfig().with_max_vl(16)
        assert cfg.vpu.max_vl == 16

    def test_knobs_compose(self):
        cfg = (SdvConfig().with_max_vl(32).with_extra_latency(64)
               .with_bandwidth(4))
        assert cfg.vpu.max_vl == 32
        assert cfg.mem.extra_latency_cycles == 64
        assert cfg.mem.bytes_per_cycle_limit == 4.0

    def test_invalid_knob_values_rejected(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            SdvConfig().with_max_vl(7)
        with pytest.raises(ReproError):
            SdvConfig().with_bandwidth(3)
        with pytest.raises(ReproError):
            SdvConfig().with_extra_latency(-1)


class TestDerivedLatencies:
    def test_l2_hit_cheaper_than_dram(self):
        cfg = SdvConfig().validate()
        assert cfg.l2_hit_latency < cfg.dram_latency

    def test_frozen(self):
        cfg = SdvConfig().validate()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.memory_bytes = 1

    def test_hop_cycles_feed_latency(self):
        slow_noc = SdvConfig(noc=NocConfig(hop_cycles=20)).validate()
        fast_noc = SdvConfig(noc=NocConfig(hop_cycles=1)).validate()
        assert slow_noc.l2_hit_latency > fast_noc.l2_hit_latency
