"""End-to-end tests for the HTML run dashboard and the instrumented CLI
surfaces around it: ``repro-sdv dash``, ``--emit-runlog``,
``--engine-stats``, and the artifact checker's dashboard rule."""

import json

import pytest

from repro.cli import main
from repro.config import SdvConfig
from repro.obs.check import check_file, check_file_finding
from repro.obs.htmlreport import (
    DASH_MARKER,
    build_dashboard,
    render_dashboard,
    validate_dashboard,
)
from repro.obs.ledger import append_record, build_record
from repro.obs.manifest import build_manifest, write_manifest
from repro.obs.runlog import RunLog, set_logging, write_runlog
from repro.obs.spans import set_tracing


@pytest.fixture(autouse=True)
def _quiet_obs():
    yield
    set_tracing(False)
    set_logging(False)


def _manifest(**kwargs):
    return build_manifest(
        kernel="spmv", engine="fast", config=SdvConfig().validate(),
        runs=[{"impl": "vl8", "cycles": 10.0,
               "buckets": {"scalar issue": 4.0, "DRAM latency stall": 6.0}}],
        **kwargs,
    )


def _ledger(path, values, metric="speedup"):
    for v in values:
        append_record(path, build_record(
            bench="bench_x", metric=metric, value=v, unit="ratio",
            scale="ci", git_rev="deadbeef"))


def _runlog_lines():
    log = RunLog()
    with log.context("figure"):
        log.event("point", latency=64)
    from repro.obs.runlog import build_header
    return [build_header(log)] + log.merged_records()


class TestRenderDashboard:
    def test_empty_dashboard_is_valid(self):
        text = render_dashboard()
        validate_dashboard(text)
        assert text.startswith("<!DOCTYPE html>")
        assert DASH_MARKER in text[:256]

    def test_sections_follow_inputs(self, tmp_path):
        lpath = tmp_path / "ledger.jsonl"
        _ledger(lpath, [5.5, 5.4, 5.6, 5.5, 5.45, 5.5])
        from repro.obs.ledger import load_ledger
        text = render_dashboard(
            manifests=[("prof.json", _manifest())],
            runlog=_runlog_lines(),
            ledger=load_ledger(lpath),
            title="unit run",
        )
        validate_dashboard(text)
        assert "unit run" in text
        assert "Cycle attribution" in text
        assert "Run log" in text
        assert "Perf ledger trends" in text
        assert "DRAM latency stall" in text
        assert "no regressions" in text

    def test_regression_badge_has_text_not_just_color(self, tmp_path):
        lpath = tmp_path / "ledger.jsonl"
        _ledger(lpath, [5.5, 5.4, 5.6, 5.5, 5.45, 5.5, 2.0])
        from repro.obs.ledger import load_ledger
        text = render_dashboard(ledger=load_ledger(lpath))
        # status is never color alone: icon + word in the badge
        assert "REGRESSED" in text

    def test_dark_mode_and_table_views_present(self):
        text = render_dashboard(manifests=[("m.json", _manifest())],
                                runlog=_runlog_lines())
        assert "prefers-color-scheme: dark" in text
        assert "<table>" in text  # every chart ships a table view

    def test_validator_rejects_external_content(self):
        good = render_dashboard()
        validate_dashboard(good)
        bad = good.replace("</body>",
                           '<script src="http://evil"></script></body>')
        with pytest.raises(ValueError, match="self-contained"):
            validate_dashboard(bad)
        with pytest.raises(ValueError, match="DOCTYPE"):
            validate_dashboard("<html></html>")
        with pytest.raises(ValueError, match="truncated"):
            validate_dashboard(good[: len(good) // 2])


class TestBuildDashboard:
    def test_build_from_artifact_files(self, tmp_path):
        mpath = tmp_path / "run.manifest.json"
        write_manifest(mpath, _manifest())
        rpath = tmp_path / "run.jsonl"
        log = RunLog()
        log.event("x")
        write_runlog(rpath, log)
        lpath = tmp_path / "ledger.jsonl"
        _ledger(lpath, [5.5, 5.6])
        out = build_dashboard(tmp_path / "dash.html",
                              manifests=[str(mpath)], runlog=str(rpath),
                              ledger=str(lpath))
        assert check_file(str(out)) == "dashboard"

    def test_build_accepts_sweep_json_with_nested_manifest(self, tmp_path):
        sweep = {"schema": "repro.sweep/1",
                 "meta": {"manifest": _manifest()}}
        spath = tmp_path / "fig3.json"
        spath.write_text(json.dumps(sweep))
        out = build_dashboard(tmp_path / "dash.html",
                              manifests=[str(spath)])
        assert "Cycle attribution" in out.read_text()

    def test_invalid_input_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "repro.manifest/1"}))
        with pytest.raises(ValueError):
            build_dashboard(tmp_path / "dash.html", manifests=[str(bad)])

    def test_checker_flags_tampered_dashboard(self, tmp_path):
        out = build_dashboard(tmp_path / "dash.html")
        tampered = out.read_text().replace(
            "</body>", '<link href="http://cdn/x.css"></body>')
        out.write_text(tampered)
        kind, bad = check_file_finding(str(out))
        assert kind is None
        assert bad.rule == "O007"


class TestDashCli:
    def test_dash_verb_end_to_end(self, tmp_path, capsys):
        mpath = tmp_path / "prof.manifest.json"
        rpath = tmp_path / "prof.runlog.jsonl"
        rc = main(["profile", "--kernel", "fft", "--scale", "smoke",
                   "--vls", "8", "--engine-stats",
                   "--emit-json", str(mpath),
                   "--emit-runlog", str(rpath)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "engine introspection" in out
        assert check_file(str(rpath)) == "runlog"

        dpath = tmp_path / "dash.html"
        rc = main(["dash", "--output", str(dpath),
                   "--manifest", str(mpath), "--runlog", str(rpath),
                   "--title", "smoke profile"])
        assert rc == 0
        assert check_file(str(dpath)) == "dashboard"
        text = dpath.read_text()
        assert "smoke profile" in text
        # engine stats captured in the manifest surface on the dashboard
        assert "Engine introspection" in text

    def test_dash_verb_rejects_bad_input(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        rc = main(["dash", "--output", str(tmp_path / "dash.html"),
                   "--manifest", str(bad)])
        assert rc != 0


class TestEmitRunlogCli:
    def test_profile_runlog_covers_kernels(self, tmp_path):
        rpath = tmp_path / "run.jsonl"
        rc = main(["profile", "--kernel", "fft", "--scale", "smoke",
                   "--vls", "8", "--emit-runlog", str(rpath)])
        assert rc == 0
        from repro.obs.runlog import load_and_validate
        lines = load_and_validate(rpath)
        assert lines[0]["command"] == "profile"
        names = [r["name"] for r in lines[1:]]
        assert "profile.kernel" in names
