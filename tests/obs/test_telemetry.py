"""Unit tests for the telemetry plumbing: metrics registry, span tracer,
timeline recorder, Perfetto export, and run manifests."""

import json

import pytest

from repro.config import SdvConfig
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    config_hash,
    load_and_validate,
    validate_manifest,
    write_manifest,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.perfetto import (
    trace_events_from_spans,
    trace_events_from_timeline,
    validate_trace_events,
    write_trace,
)
from repro.obs.perfetto import load_and_validate as load_trace
from repro.obs.spans import SpanTracer
from repro.obs.timeline import TimelineRecorder


class TestMetrics:
    def test_counter_gauge_histogram(self):
        r = MetricsRegistry()
        r.counter("c").inc()
        r.counter("c").inc(2.5)
        r.gauge("g").set(7)
        for v in (1.0, 3.0, 2.0):
            r.histogram("h").observe(v)
        assert r.counter("c").value == 3.5
        assert r.gauge("g").value == 7.0
        h = r.histogram("h")
        assert h.count == 3 and h.mean == 2.0
        assert h.min == 1.0 and h.max == 3.0
        assert h.percentile(50) == 2.0

    def test_counter_cannot_decrease(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError):
            r.counter("c").inc(-1)

    def test_snapshot_merge_adds_counters_and_histograms(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("n").inc(1)
        worker.counter("n").inc(4)
        worker.histogram("h").observe(2.0)
        worker.gauge("g").set(9)
        snap = worker.snapshot()
        assert json.dumps(snap)  # picklable/serializable plain data
        parent.merge(snap)
        assert parent.counter("n").value == 5.0
        assert parent.histogram("h").values == [2.0]
        assert parent.gauge("g").value == 9.0


class TestSpans:
    def test_nested_spans_record_depth(self):
        t = SpanTracer(enabled=True)
        with t.span("outer", kernel="spmv"):
            with t.span("inner"):
                pass
        assert [s.name for s in t.spans] == ["outer", "inner"]
        assert t.spans[0].depth == 0 and t.spans[1].depth == 1
        assert t.spans[0].wall_s >= t.spans[1].wall_s
        assert t.spans[0].attrs == {"kernel": "spmv"}

    def test_disabled_tracer_records_nothing(self):
        t = SpanTracer(enabled=False)
        with t.span("x") as s:
            assert s is None
        assert t.spans == []

    def test_adopt_preserves_worker_spans(self):
        parent, worker = SpanTracer(enabled=True), SpanTracer(enabled=True)
        with worker.span("work"):
            pass
        parent.adopt(worker.spans, impl="vl8")
        assert parent.spans[0].name == "work"
        assert parent.spans[0].attrs["impl"] == "vl8"


class TestTimelineAndPerfetto:
    def _timeline(self):
        tl = TimelineRecorder(engine="fast")
        tl.add("scalar-core", "scalar[0]", 0.0, 10.0, issue=4)
        tl.add("vpu-mem", "vmem[1]", 5.0, 30.0, vl=64)
        tl.instant("scalar-core", "barrier[2]", 30.0)
        return tl

    def test_recorder_tracks_end_cycle(self):
        tl = self._timeline()
        assert tl.end_cycle == 30.0
        assert len(tl.events) == 3

    def test_timeline_export_validates(self):
        events = trace_events_from_timeline(self._timeline(), pid=3,
                                            label="unit")
        validate_trace_events({"traceEvents": events})
        names = {e["name"] for e in events}
        assert {"scalar[0]", "vmem[1]", "barrier[2]"} <= names
        meta = [e for e in events if e["ph"] == "M"]
        assert any(e["args"]["name"] == "unit" for e in meta)

    def test_span_export_validates(self):
        t = SpanTracer(enabled=True)
        with t.span("sweep:spmv:latency"):
            with t.span("re-time:spmv:vl8"):
                pass
        events = trace_events_from_spans(t.spans)
        validate_trace_events({"traceEvents": events})
        x = [e for e in events if e["ph"] == "X"]
        assert len(x) == 2 and all(e["ts"] >= 0 for e in x)

    def test_write_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        events = trace_events_from_timeline(self._timeline())
        write_trace(path, events, metadata={"kernel": "spmv"})
        obj = load_trace(path)
        assert obj["otherData"]["kernel"] == "spmv"

    def test_validator_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_trace_events({"traceEvents": [{"ph": "Z", "name": "x",
                                                    "pid": 0, "tid": 0}]})
        with pytest.raises(ValueError):
            validate_trace_events({"no_events": []})


class TestEngineTimelines:
    @pytest.fixture(scope="class")
    def classified(self):
        from repro.core.sweeps import run_implementation
        from repro.kernels import KERNELS
        from repro.workloads import get_scale

        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        sdv, trace = run_implementation(spec, workload, 8, verify=False)
        return sdv.classify(trace)

    def test_event_engine_timeline_exports_valid_trace(self, classified,
                                                       tmp_path):
        from repro.engine import simulate_events_fast

        tl = TimelineRecorder()
        report = simulate_events_fast(classified, timeline=tl)
        assert tl.engine == "event"
        assert tl.events  # the DES actually recorded its schedule
        assert tl.end_cycle <= report.cycles
        events = trace_events_from_timeline(tl, label="event engine")
        validate_trace_events({"traceEvents": events})
        tracks = {e.track for e in tl.events}
        assert "scalar-core" in tracks and "vpu-arith" in tracks
        path = tmp_path / "event.trace.json"
        write_trace(path, events)
        assert load_trace(path)["traceEvents"]

    def test_event_and_ref_timelines_identical(self, classified):
        # the bit-exactness contract extends to the recorded schedule:
        # both DES engines must dump the same machine-activity timeline,
        # event for event, in the same order
        from repro.engine import simulate_events, simulate_events_fast

        tl_fast, tl_ref = TimelineRecorder(), TimelineRecorder()
        fast = simulate_events_fast(classified, timeline=tl_fast)
        ref = simulate_events(classified, timeline=tl_ref)
        assert fast.cycles == ref.cycles
        assert (tl_fast.engine, tl_ref.engine) == ("event", "event-ref")
        key = [(e.track, e.name, e.start, e.dur, e.args)
               for e in tl_fast.events]
        assert key == [(e.track, e.name, e.start, e.dur, e.args)
                       for e in tl_ref.events]


class TestManifest:
    def _manifest(self, **kwargs):
        return build_manifest(
            kernel="spmv", engine="fast", config=SdvConfig().validate(),
            runs=[{"impl": "vl8", "cycles": 10.0,
                   "buckets": {"a": 4.0, "b": 6.0}}],
            **kwargs,
        )

    def test_build_and_validate(self):
        m = self._manifest(scale="ci", seed=7, axis="latency",
                           points=[0, 32])
        validate_manifest(m)
        assert m["schema"] == MANIFEST_SCHEMA
        assert m["points"] == [0, 32]

    def test_config_hash_tracks_knobs(self):
        base = SdvConfig().validate()
        assert config_hash(base) != config_hash(base.with_extra_latency(64))
        assert config_hash(base) == config_hash(SdvConfig().validate())

    def test_rejects_bucket_sum_mismatch(self):
        m = self._manifest()
        m["runs"][0]["buckets"]["a"] = 5.0
        with pytest.raises(ValueError, match="buckets sum"):
            validate_manifest(m)

    def test_rejects_wrong_schema_and_missing_keys(self):
        m = self._manifest()
        m["schema"] = "repro.manifest/999"
        with pytest.raises(ValueError, match="schema"):
            validate_manifest(m)
        m = self._manifest()
        del m["config_hash"]
        with pytest.raises(ValueError, match="config_hash"):
            validate_manifest(m)

    def test_write_and_reload(self, tmp_path):
        path = tmp_path / "run.manifest.json"
        m = self._manifest()
        write_manifest(path, m)
        again = load_and_validate(path)
        # float cycle totals survive the JSON round-trip bit-exactly
        assert again["runs"][0]["buckets"] == m["runs"][0]["buckets"]
