"""Perf-ledger unit tests: record schema, the median+MAD detector (a
synthetic 30% regression must trip it; its own noise must not), the
direction tag for lower-is-better series, the perf-diff CLI verb, and —
the keystone — the committed ledger must judge itself clean."""

from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.check import check_file
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    Verdict,
    append_record,
    build_record,
    check_series,
    detect_regression,
    load_and_validate,
    load_ledger,
    perf_diff,
    render_perf_diff,
    series,
    series_direction,
    series_keys,
    validate_record,
)

COMMITTED_LEDGER = (Path(__file__).resolve().parents[2] / "benchmarks" /
                    "results" / "ledger.jsonl")


def _rec(value, *, bench="bench_x", metric="speedup", scale="ci",
         attrs=None):
    return build_record(bench=bench, metric=metric, value=value,
                        unit="ratio", scale=scale, attrs=attrs,
                        git_rev="deadbeef")


class TestRecords:
    def test_build_validate_roundtrip(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        append_record(path, _rec(5.5))
        append_record(path, _rec(5.6, attrs={"records": 9}))
        records = load_and_validate(path)
        assert len(records) == 2
        assert records[0]["schema"] == LEDGER_SCHEMA
        assert records[1]["attrs"] == {"records": 9}
        assert check_file(str(path)) == "ledger"

    def test_single_record_file_sniffs_as_ledger(self, tmp_path):
        # one JSONL line parses as whole-file JSON; the checker must
        # still route it by its schema tag
        path = tmp_path / "one.jsonl"
        append_record(path, _rec(5.5))
        assert check_file(str(path)) == "ledger"

    def test_validate_rejects_drift(self):
        with pytest.raises(ValueError, match="schema"):
            validate_record(dict(_rec(1.0), schema="repro.ledger/999"))
        rec = _rec(1.0)
        del rec["machine"]
        with pytest.raises(ValueError, match="machine"):
            validate_record(rec)
        with pytest.raises(ValueError, match="non-empty"):
            validate_record(dict(_rec(1.0), bench=""))
        with pytest.raises(ValueError, match="number"):
            validate_record(dict(_rec(1.0), value="fast"))

    def test_machine_fingerprint_is_anonymized(self):
        m = _rec(1.0)["machine"]
        assert set(m) == {"id", "platform", "python", "cpus"}
        assert len(m["id"]) == 12  # hash prefix, not a raw host name

    def test_missing_ledger_loads_empty(self, tmp_path):
        assert load_ledger(tmp_path / "absent.jsonl") == []
        with pytest.raises(ValueError, match="empty or missing"):
            load_and_validate(tmp_path / "absent.jsonl")

    def test_series_helpers(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        for v in (1.0, 2.0):
            append_record(path, _rec(v))
        append_record(path, _rec(9.0, metric="other",
                                 attrs={"direction": "lower"}))
        records = load_ledger(path)
        assert series(records, "bench_x", "speedup", "ci") == [1.0, 2.0]
        assert series_keys(records) == [("bench_x", "speedup", "ci"),
                                        ("bench_x", "other", "ci")]
        assert series_direction(records, "bench_x", "speedup", "ci") == \
            "higher"
        assert series_direction(records, "bench_x", "other", "ci") == \
            "lower"


class TestDetector:
    def test_insufficient_history(self):
        v = detect_regression([5.5] * 4, 1.0)
        assert v.status == "insufficient"
        assert not v.is_regression

    def test_synthetic_30pct_regression_trips(self):
        # the acceptance scenario: a stable ~5.5x series, then an engine
        # change lands and throughput drops 30% — the detector must flag
        # it with no hand-set threshold anywhere
        history = [5.4, 5.6, 5.5, 5.45, 5.58, 5.52, 5.47, 5.55]
        v = detect_regression(history, 0.7 * 5.5)
        assert v.is_regression
        assert "below the trailing median" in v.reason

    def test_own_noise_passes(self):
        history = [5.4, 5.6, 5.5, 5.45, 5.58, 5.52, 5.47, 5.55]
        for value in history:
            assert detect_regression(history, value).status == "ok"

    def test_noisy_series_swing_is_not_material_failure(self):
        # MAD is large: a 15% swing is normal for this series, so the
        # materiality band alone (10%) must not fail it — the bar is
        # min(noise, material), both must be broken
        history = [30.0, 25.0, 33.0, 26.5, 31.0, 24.5, 32.0]
        med = sorted(history)[len(history) // 2]
        v = detect_regression(history, 0.85 * med)
        assert v.status == "ok"

    def test_tight_series_jitter_is_not_statistical_failure(self):
        # MAD ~ 0: any jitter is "statistically significant", so the
        # noise band alone must not fail a sub-material dip
        history = [5.5, 5.5, 5.5, 5.5, 5.5, 5.5]
        v = detect_regression(history, 5.5 * 0.95)
        assert v.status == "ok"
        v = detect_regression(history, 5.5 * 0.7)
        assert v.is_regression

    def test_window_limits_history(self):
        history = [100.0] * 30 + [5.5] * 20
        v = detect_regression(history, 5.5, window=20)
        assert v.status == "ok" and v.median == 5.5

    def test_check_series_reads_ledger_records(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        for v in (5.5, 5.4, 5.6, 5.5, 5.45, 5.5):
            append_record(path, _rec(v))
        verdict = check_series(load_ledger(path), "bench_x", "speedup",
                               "ci", 2.0)
        assert verdict.is_regression


class TestPerfDiff:
    def _seed(self, path, values, **kwargs):
        for v in values:
            append_record(path, _rec(v, **kwargs))

    def test_latest_judged_against_prior(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        self._seed(path, [5.5, 5.4, 5.6, 5.5, 5.45, 5.5, 3.0])
        [(key, v)] = perf_diff(load_ledger(path))
        assert key == ("bench_x", "speedup", "ci")
        assert v.is_regression

    def test_lower_is_better_series_judged_negated(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        attrs = {"direction": "lower"}
        # an overhead series improving (dropping) must NOT regress ...
        self._seed(path, [4.0, 4.2, 3.9, 4.1, 4.0, 4.05, 1.0],
                   metric="overhead_pct", attrs=attrs)
        # ... and one blowing up 3x must
        self._seed(path, [4.0, 4.2, 3.9, 4.1, 4.0, 4.05, 12.0],
                   metric="worse_pct", attrs=attrs)
        results = dict(perf_diff(load_ledger(path)))
        good = results[("bench_x", "overhead_pct", "ci")]
        bad = results[("bench_x", "worse_pct", "ci")]
        assert good.status == "ok"
        assert bad.is_regression
        # verdict values map back to the original sign
        assert good.value == pytest.approx(1.0)
        assert bad.value == pytest.approx(12.0)

    def test_render_orders_worst_first(self):
        results = [
            (("b", "ok_metric", "ci"),
             Verdict("ok", 5.5, 5.5, 0.01, 5.0, 6, "fine")),
            (("b", "bad_metric", "ci"),
             Verdict("regression", 2.0, 5.5, 0.01, 5.0, 6, "dropped")),
        ]
        text = render_perf_diff(results)
        lines = text.splitlines()
        assert "REGRESSED" in lines[1] and "bad_metric" in lines[1]
        assert "ok" in lines[2]


class TestCommittedLedger:
    def test_committed_ledger_validates(self):
        records = load_and_validate(COMMITTED_LEDGER)
        assert len(records) >= 5

    def test_committed_ledger_judges_itself_clean(self):
        # perf-smoke's contract: the ledger as committed must not flag
        # its own latest records
        results = perf_diff(load_and_validate(COMMITTED_LEDGER))
        bad = {key: v.reason for key, v in results if v.is_regression}
        assert not bad


class TestPerfDiffCli:
    def _seed(self, path, values):
        for v in values:
            append_record(path, _rec(v))

    def test_ok_ledger_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        self._seed(path, [5.5, 5.4, 5.6, 5.5, 5.45, 5.5])
        rc = main(["perf-diff", "--ledger", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "perf-diff" in out and "bench_x:speedup" in out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        self._seed(path, [5.5, 5.4, 5.6, 5.5, 5.45, 5.5, 3.0])
        rc = main(["perf-diff", "--ledger", str(path)])
        assert rc == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_strict_fails_insufficient(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        self._seed(path, [5.5, 5.6])
        assert main(["perf-diff", "--ledger", str(path)]) == 0
        assert main(["perf-diff", "--ledger", str(path), "--strict"]) == 1

    def test_bad_ledger_exits_two(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"schema": "repro.ledger/1"}\n')
        assert main(["perf-diff", "--ledger", str(path)]) == 2
        assert main(["perf-diff", "--ledger",
                     str(tmp_path / "absent.jsonl")]) == 2
