"""End-to-end tests: the profile harness, the CLI verbs, the artifact
checker, and the instrumented sweep path."""

import json

import pytest

from repro.cli import main
from repro.core.sweeps import latency_sweep
from repro.kernels import KERNELS
from repro.obs.check import check_file
from repro.obs.check import main as check_main
from repro.obs.manifest import load_and_validate
from repro.obs.metrics import get_metrics
from repro.obs.perfetto import load_and_validate as load_trace
from repro.obs.profile import profile_kernel
from repro.obs.spans import set_tracing
from repro.workloads import get_scale


@pytest.fixture(autouse=True)
def _quiet_tracer():
    """Leave the process-wide tracer the way we found it (disabled)."""
    yield
    set_tracing(False)


class TestProfileKernel:
    def test_profile_attributes_every_impl(self):
        r = profile_kernel("fft", scale="smoke", vls=(8, 64), seed=7)
        assert [e.impl for e in r.entries] == ["scalar", "vl8", "vl64"]
        for e in r.entries:
            e.attribution.check()
            assert e.report.attribution is e.attribution
        table = r.render()
        assert "DRAM latency stall" in table and "vl64" in table
        assert "%" in r.render(fractions=True)

    def test_profile_manifest_and_trace(self):
        set_tracing(True)
        r = profile_kernel("fft", scale="smoke", vls=(8,), seed=7,
                           timelines=True)
        m = r.manifest()
        assert m["kernel"] == "fft" and len(m["runs"]) == 2
        assert all("buckets" in run for run in m["runs"])
        events = r.trace_events()
        # one timeline process per impl + the profile spans
        assert any(e.get("ph") == "X" for e in events)
        names = {e["name"] for e in events if e["ph"] == "M"}
        assert "process_name" in names


class TestProfileCli:
    def test_profile_verb_prints_table(self, capsys):
        rc = main(["profile", "--kernel", "fft", "--scale", "smoke",
                   "--vls", "8,64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cycle attribution — fft" in out
        assert "DRAM latency stall" in out

    def test_profile_emits_valid_artifacts(self, tmp_path, capsys):
        mpath = tmp_path / "fft.manifest.json"
        tpath = tmp_path / "fft.trace.json"
        rc = main(["profile", "--kernel", "fft", "--scale", "smoke",
                   "--vls", "8", "--emit-json", str(mpath),
                   "--emit-trace", str(tpath)])
        assert rc == 0
        assert check_file(str(mpath)) == "manifest"
        assert check_file(str(tpath)) == "trace"
        m = load_and_validate(mpath)
        assert m["scale"] == "smoke"

    def test_profile_all_kernels_suffixes_paths(self, tmp_path, capsys):
        rc = main(["profile", "--kernel", "all", "--scale", "smoke",
                   "--vls", "8", "--no-verify",
                   "--emit-json", str(tmp_path / "m.json")])
        assert rc == 0
        for name in KERNELS:
            assert (tmp_path / f"m-{name}.json").exists()


class TestFigureEmission:
    def test_fig3_emit_json_and_manifest(self, tmp_path, capsys):
        jpath = tmp_path / "fig3.json"
        rc = main(["fig3", "--kernel", "fft", "--scale", "smoke",
                   "--vls", "8", "--emit-json", str(jpath)])
        assert rc == 0
        data = json.loads(jpath.read_text())
        assert data["schema"] == "repro.sweep/1"
        manifest = data["meta"]["manifest"]
        sibling = load_and_validate(tmp_path / "fig3.manifest.json")
        assert sibling["axis"] == "latency"
        assert manifest["config_hash"] == sibling["config_hash"]
        # attribution riding along: every sweep point carries buckets
        assert all("buckets" in run for run in sibling["runs"])

    def test_fig5_emit_trace_contains_sweep_spans(self, tmp_path, capsys):
        tpath = tmp_path / "fig5.trace.json"
        rc = main(["fig5", "--kernel", "fft", "--scale", "smoke",
                   "--vls", "8", "--emit-trace", str(tpath)])
        assert rc == 0
        obj = load_trace(tpath)
        names = {e["name"] for e in obj["traceEvents"]}
        assert "sweep:fft:bandwidth" in names
        assert any(n.startswith("re-time:fft:") for n in names)


class TestChecker:
    def test_check_main_ok_and_fail(self, tmp_path, capsys):
        good = tmp_path / "t.json"
        good.write_text(json.dumps({"traceEvents": []}))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"nonsense": 1}))
        assert check_main([str(good)]) == 0
        assert check_main([str(good), str(bad)]) == 1
        assert check_main([]) == 2


class TestInstrumentedSweep:
    def test_sweep_attributions_and_metrics(self):
        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        before = get_metrics().counter("sweep.points_timed").value
        result = latency_sweep(spec, workload, latencies=[0, 256],
                               vls=(8,), verify=False, attributions=True)
        for m in result.measurements:
            m.attribution.check()
            assert m.attribution.total == m.cycles
        after = get_metrics().counter("sweep.points_timed").value
        assert after - before == len(result.measurements)

    def test_sweep_spans_when_tracing(self):
        tracer = set_tracing(True)
        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        latency_sweep(spec, workload, latencies=[0], vls=(8,), verify=False)
        names = [s.name for s in tracer.spans]
        assert "sweep:fft:latency" in names
        assert any(n.startswith("trace-gen:fft:") for n in names)

    def test_parallel_sweep_matches_serial(self, capsys):
        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        serial = latency_sweep(spec, workload, latencies=[0, 64],
                               vls=(8, 64), verify=False, jobs=1)
        parallel = latency_sweep(spec, workload, latencies=[0, 64],
                                 vls=(8, 64), verify=False, jobs=2)
        for impl in serial.impls:
            assert serial.series(impl) == parallel.series(impl)


class TestHeadlineAndCharacterize:
    def test_headline_shows_section32_counters(self, capsys):
        rc = main(["headline", "--scale", "smoke", "--vls", "256"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Section 3.2 counters" in out
        assert "vector instruction fraction" in out
        assert "cycle share: VPU busy" in out

    def test_characterize_shows_vector_fraction(self, capsys):
        rc = main(["characterize", "--kernel", "fft", "--scale", "smoke",
                   "--vls", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "vec frac" in out and "%" in out
