"""Cycle-attribution invariants: bit-exact closure, cross-engine
agreement, and the paper's latency-tolerance story.

The grid tests pin the central contract of :mod:`repro.obs.attribution`:
for every kernel, VL, and engine, the seven buckets sum *bit-exactly*
(left-to-right in ``BUCKET_ORDER``) to the run's cycle total. The event
engine is orders of magnitude slower per attribution (five DES runs), so
it gets the full grid at smoke scale and spot checks at CI scale while
the analytic engines cover the full CI grid.
"""

import functools
import math

import pytest

from repro.config import SdvConfig
from repro.core.sweeps import (
    DEFAULT_BANDWIDTHS,
    DEFAULT_LATENCIES,
    DEFAULT_VLS,
    run_implementation,
)
from repro.kernels import KERNELS
from repro.obs.attribution import (
    BUCKET_ORDER,
    attribute,
    attribute_many,
    attribution_ladder,
)
from repro.workloads import get_scale


@functools.lru_cache(maxsize=None)
def _workload(name, scale, seed=7):
    return KERNELS[name].prepare(get_scale(scale), seed)


@functools.lru_cache(maxsize=None)
def _classified(name, vl, scale, seed=7):
    """Trace generation dominates this suite's cost; every (kernel, vl)
    pair is generated once and its classification cache reused across the
    engine/axis parametrizations (classification is knob-independent)."""
    spec = KERNELS[name]
    sdv, trace = run_implementation(spec, _workload(name, scale, seed), vl,
                                    verify=False)
    return sdv, sdv.classify(trace), trace


def assert_exact(att):
    """The hard invariant: stored-order float sum equals the total."""
    att.check()
    total = 0.0
    for b in BUCKET_ORDER:
        total += att.buckets[b]
    assert total == att.total
    assert all(v >= 0.0 or math.isclose(v, 0.0, abs_tol=1e-9)
               for v in att.buckets.values())


class TestBitExactClosure:
    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    @pytest.mark.parametrize("vl", (None,) + DEFAULT_VLS)
    @pytest.mark.parametrize("engine", ["fast", "batch"])
    def test_ci_grid_analytic_engines(self, kernel, vl, engine):
        sdv, ct, _ = _classified(kernel, vl, "ci")
        att = attribute(ct, engine=engine)
        assert att.engine == engine
        assert_exact(att)

    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    @pytest.mark.parametrize("vl", (None,) + DEFAULT_VLS)
    def test_smoke_grid_event_engine(self, kernel, vl):
        sdv, ct, _ = _classified(kernel, vl, "smoke")
        assert_exact(attribute(ct, engine="event"))

    @pytest.mark.parametrize("kernel,vl", [("fft", 8), ("fft", 256),
                                           ("spmv", 64)])
    def test_ci_spot_event_engine(self, kernel, vl):
        sdv, ct, _ = _classified(kernel, vl, "ci")
        assert_exact(attribute(ct, engine="event"))

    def test_knobbed_configs_close_too(self):
        sdv, ct, trace = _classified("spmv", 64, "ci")
        saved = sdv.config
        try:
            for lat, bpc in [(1024, 64), (0, 1), (256, 4)]:
                sdv.configure(extra_latency=lat, bandwidth_bpc=bpc)
                assert_exact(attribute(sdv.classify(trace), engine="fast"))
        finally:
            sdv.config = saved


class TestCrossEngineAgreement:
    @pytest.mark.parametrize("kernel", ["spmv", "fft"])
    @pytest.mark.parametrize("vl", [None, 8, 256])
    def test_fast_and_batch_buckets_identical(self, kernel, vl):
        sdv, ct, _ = _classified(kernel, vl, "ci")
        fast = attribute(ct, engine="fast")
        batch = attribute(ct, engine="batch")
        assert fast.buckets == batch.buckets
        assert fast.total == batch.total

    @pytest.mark.parametrize("kernel", ["spmv", "fft"])
    @pytest.mark.parametrize("axis", ["latency", "bandwidth"])
    def test_attribute_many_matches_per_point_fast(self, kernel, axis):
        """Every Figure-3/Figure-5 sweep point: the vectorized multi-config
        path and a fresh per-config fast attribution agree to the bit."""
        sdv, ct, trace = _classified(kernel, 64, "ci")
        base = sdv.config
        if axis == "latency":
            configs = [base.with_extra_latency(p) for p in DEFAULT_LATENCIES]
        else:
            configs = [base.with_bandwidth(p) for p in DEFAULT_BANDWIDTHS]
        many = attribute_many(ct, configs, lowered=sdv.lower(trace))
        assert len(many) == len(configs)
        try:
            for cfg, att in zip(configs, many):
                assert_exact(att)
                sdv.config = cfg
                single = attribute(sdv.classify(trace), engine="fast")
                assert att.buckets == single.buckets
                assert att.total == single.total
        finally:
            sdv.config = base


class TestPaperStory:
    def test_spmv_dram_stall_shrinks_with_vl(self):
        """The acceptance criterion: exposed DRAM-latency stalls shrink
        monotonically as VL grows 8 -> 256 (longer vectors tolerate
        latency; the 'short reason' the paper measures)."""
        stalls = []
        for vl in DEFAULT_VLS:
            sdv, ct, _ = _classified("spmv", vl, "ci")
            att = attribute(ct, engine="fast")
            stalls.append(att.buckets["dram_stall"])
        assert stalls == sorted(stalls, reverse=True)
        assert stalls[0] > stalls[-1]

    def test_latency_demand_increasingly_hidden(self):
        """At long VL nearly all DRAM latency demand overlaps with VPU
        work instead of stalling the run."""
        cover = []
        for vl in (8, 256):
            sdv, ct, _ = _classified("spmv", vl, "ci")
            att = attribute(ct, engine="fast")
            assert att.dram_latency_demand > 0
            cover.append(att.dram_latency_hidden / att.dram_latency_demand)
        assert cover[1] >= cover[0]
        assert cover[1] > 0.99


class TestLadder:
    def test_ladder_levels_are_successively_idealized(self):
        base = SdvConfig().with_extra_latency(512).with_bandwidth(4)
        l0, l1, l2, l3, l4 = attribution_ladder(base)
        assert l0 is base
        assert l1.mem.bw_num == l1.mem.bw_den == 1
        assert l2.mem.extra_latency_cycles == 0
        assert l2.mem.dram_service_cycles == 0
        assert l2.dram_latency == l2.l2_hit_latency
        assert l3.noc.hop_cycles == 0 and l3.noc.inject_cycles == 0
        assert l4.l2.access_cycles == 1 and l4.core.l1_hit_cycles == 1

    def test_scalar_only_trace_attributes(self):
        """Scalar builds (no VPU records at all) still close exactly."""
        sdv, ct, _ = _classified("fft", None, "smoke")
        att = attribute(ct, engine="fast")
        assert_exact(att)
        assert att.buckets["vpu_busy"] == 0.0
