"""Property-based attribution invariants over random vector programs.

Same spirit as the engine-agreement property suite: hypothesis generates
small random programs; every one of them must attribute with bit-exact
closure on all engines' analytic paths, with fast/batch bucket equality,
under random knob settings.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import SdvConfig
from repro.engine.lower import lower_trace
from repro.isa import ScalarContext, VectorContext
from repro.memory.address_space import MemoryImage
from repro.memory.classify import classify_trace
from repro.obs.attribution import BUCKET_ORDER, attribute, attribute_many
from repro.trace.events import TraceBuffer

N_DATA = 1 << 11


@st.composite
def programs(draw):
    n_steps = draw(st.integers(2, 10))
    steps = []
    for _ in range(n_steps):
        op = draw(st.sampled_from(
            ["load", "store", "gather", "arith", "scalar", "barrier"]))
        steps.append((op, draw(st.integers(0, N_DATA - 512)),
                      draw(st.sampled_from([5, 8, 64, 256]))))
    return steps


def build_trace(steps, seed):
    rng = np.random.default_rng(seed)
    mem = MemoryImage(1 << 21)
    trace = TraceBuffer()
    vec = VectorContext(mem, trace, max_vl=256)
    scl = ScalarContext(mem, trace)
    data = mem.alloc("data", rng.random(N_DATA))
    out = mem.alloc("out", N_DATA, np.float64)
    idx = mem.alloc("idx", rng.integers(0, N_DATA, N_DATA))
    for op, off, avl in steps:
        vec.vsetvl(avl)
        if op == "load":
            vec.vle(data, off)
        elif op == "store":
            vec.vse(vec.vfmv(1.0), out, off)
        elif op == "gather":
            vec.vlxe(data, vec.vle(idx, off))
        elif op == "arith":
            vec.vfadd(vec.vfmv(2.0), 1.0)
        elif op == "scalar":
            scl.emit_block(data.addr(rng.integers(0, N_DATA, 32)), False, 64)
        elif op == "barrier":
            scl.barrier()
    scl.flush()
    return trace.seal()


def assert_exact(att):
    att.check()
    total = 0.0
    for b in BUCKET_ORDER:
        total += att.buckets[b]
    assert total == att.total


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs(), st.integers(0, 2 ** 31),
       st.sampled_from([(0, 64), (512, 64), (0, 4), (1024, 1)]))
def test_property_attribution_closes_bit_exactly(steps, seed, knobs):
    extra_latency, bpc = knobs
    trace = build_trace(steps, seed)
    config = (SdvConfig().with_extra_latency(extra_latency)
              .with_bandwidth(bpc))
    ct = classify_trace(trace, config)
    fast = attribute(ct, engine="fast")
    batch = attribute(ct, engine="batch")
    assert_exact(fast)
    assert_exact(batch)
    assert fast.buckets == batch.buckets
    assert fast.total == batch.total
    assert fast.total == pytest.approx(
        sum(fast.buckets.values()), rel=1e-12)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs(), st.integers(0, 2 ** 31))
def test_property_attribute_many_matches_singles(steps, seed):
    trace = build_trace(steps, seed)
    base = SdvConfig().validate()
    configs = ([base.with_extra_latency(l) for l in (0, 256, 1024)]
               + [base.with_bandwidth(b) for b in (1, 64)])
    ct = classify_trace(trace, base)
    lowered = lower_trace(ct)
    many = attribute_many(ct, configs, lowered=lowered)
    for cfg, att in zip(configs, many):
        assert_exact(att)
        single = attribute(
            classify_trace(trace, cfg), engine="fast")
        assert att.buckets == single.buckets
