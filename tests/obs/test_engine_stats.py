"""Engine-introspection collector unit tests plus the live hooks: a real
event-engine run must fill the counters when introspection is on and
record nothing when it is off, and the figure-boundary reset must repair
dangling telemetry state without losing completed records."""

import json

import pytest

from repro.core.sweeps import run_implementation
from repro.engine import simulate_events_fast, simulate_fast
from repro.kernels import KERNELS
from repro.obs.engine_stats import (
    EngineStats,
    get_engine_stats,
    introspection_enabled,
    set_introspection,
    snapshot_delta,
)
from repro.obs.lifecycle import reset_figure_state
from repro.obs.metrics import get_metrics
from repro.obs.runlog import get_runlog, set_logging
from repro.obs.spans import get_tracer, set_tracing
from repro.workloads import get_scale


@pytest.fixture(autouse=True)
def _introspection_off():
    """Leave the process-wide collector the way we found it (disabled)."""
    yield
    set_introspection(False)
    set_tracing(False)
    set_logging(False)


@pytest.fixture(scope="module")
def classified():
    spec = KERNELS["fft"]
    workload = spec.prepare(get_scale("smoke"), 7)
    sdv, trace = run_implementation(spec, workload, 8, verify=False)
    return sdv.classify(trace)


class TestEngineStats:
    def test_count_and_high(self):
        s = EngineStats()
        s.count("a")
        s.count("a", 4)
        s.high("h", 3)
        s.high("h", 2)
        assert s.counters["a"] == 5
        assert s.highs["h"] == 3

    def test_snapshot_merge(self):
        parent, worker = EngineStats(), EngineStats()
        parent.count("n", 1)
        worker.count("n", 4)
        worker.high("depth", 9)
        snap = worker.snapshot()
        assert json.dumps(snap)  # plain data, serializable
        parent.merge(snap)
        assert parent.counters["n"] == 5
        assert parent.highs["depth"] == 9

    def test_snapshot_delta_subtracts_counters_keeps_highs(self):
        s = EngineStats()
        s.count("n", 10)
        s.high("depth", 4)
        before = s.snapshot()
        s.count("n", 3)
        s.count("fresh", 2)
        s.high("depth", 7)
        delta = snapshot_delta(before, s.snapshot())
        # only the work between the snapshots ships; zero deltas drop
        assert delta["counters"] == {"n": 3, "fresh": 2}
        assert delta["highs"] == {"depth": 7}

    def test_ratios_derived_only_with_data(self):
        s = EngineStats()
        assert s.ratios() == {}
        s.count("event.line_spawns", 10)
        s.count("event.lines_recycled", 8)
        s.count("event.timestamps", 4)
        s.count("event.tokens", 12)
        r = s.ratios()
        assert r["event.slab_recycle_rate"] == pytest.approx(0.8)
        assert r["event.tokens_per_timestamp"] == pytest.approx(3.0)

    def test_render_mentions_counters(self):
        s = EngineStats()
        s.count("event.runs", 2)
        s.high("event.max_drain_depth", 5)
        text = s.render()
        assert "event.runs" in text
        assert "event.max_drain_depth (max)" in text


class TestLiveIntrospection:
    def test_event_engine_fills_counters_when_enabled(self, classified):
        stats = set_introspection(True)
        simulate_events_fast(classified)
        c = stats.counters
        assert c["event.runs"] == 1
        assert c["event.timestamps"] > 0
        assert c["event.tokens"] >= c["event.timestamps"]
        assert c["event.line_spawns"] > 0
        assert stats.highs["event.slab_high_water"] > 0
        # recycling never exceeds spawning
        assert c["event.lines_recycled"] <= c["event.line_spawns"]

    def test_reference_engine_fills_counters_when_enabled(self, classified):
        from repro.engine import simulate_events

        stats = set_introspection(True)
        simulate_events(classified)
        assert stats.counters.get("event_ref.timestamps", 0) > 0
        assert stats.counters.get("event_ref.events", 0) > 0

    def test_disabled_engines_record_nothing(self, classified):
        set_introspection(True)   # clear any prior state
        set_introspection(False)
        assert not introspection_enabled()
        simulate_events_fast(classified)
        simulate_fast(classified)
        stats = get_engine_stats()
        assert stats.counters == {} and stats.highs == {}

    def test_enable_clears_only_on_off_to_on_edge(self):
        stats = set_introspection(True)
        stats.count("sticky", 1)
        assert set_introspection(True).counters.get("sticky") == 1
        set_introspection(False)
        assert set_introspection(True).counters == {}


class TestFigureReset:
    def test_reset_clears_metrics_and_repairs_nesting(self):
        get_metrics().counter("sweep.points_timed").inc(5)
        tracer = set_tracing(True)
        log = set_logging(True)
        with tracer.span("done"):
            pass
        log.event("keep.me")
        # simulate a figure aborted mid-span / mid-context: the tracer
        # appends a span at open, so a crash leaves it on both lists
        open_span = tracer.spans[0].__class__(name="dangling", t0=0.0)
        tracer.spans.append(open_span)
        tracer._stack.append(open_span)
        log._ctx.append("figure")

        dangling = reset_figure_state()

        assert dangling == 1
        assert get_metrics().counter("sweep.points_timed").value == 0
        assert tracer._stack == []
        assert log._ctx == []
        # completed telemetry survives the boundary
        assert [s.name for s in tracer.spans] == ["done", "dangling"]
        names = [r["name"] for r in log.records]
        assert "keep.me" in names
        assert "figure.dangling_spans" in names

    def test_clean_reset_is_quiet(self):
        set_logging(True)
        assert reset_figure_state() == 0
        assert [r for r in get_runlog().records
                if r["name"] == "figure.dangling_spans"] == []

    def test_keep_metrics_option(self):
        get_metrics().counter("n").inc(3)
        reset_figure_state(clear_metrics=False)
        assert get_metrics().counter("n").value == 3
        reset_figure_state()
        assert get_metrics().counter("n").value == 0
