"""Unit tests for the structured JSONL run log: record shape, context
scoping, cross-process merge ordering, and the on-disk round trip."""

import json

import pytest

from repro.obs.check import check_file
from repro.obs.runlog import (
    RUNLOG_SCHEMA,
    RunLog,
    build_header,
    load_and_validate,
    new_trace_id,
    set_logging,
    validate_runlog_lines,
    write_runlog,
)


@pytest.fixture(autouse=True)
def _quiet_runlog():
    """Leave the process-wide log the way we found it (disabled)."""
    yield
    set_logging(False)


class TestRunLog:
    def test_event_records_required_keys(self):
        log = RunLog()
        rec = log.event("sweep.start", kernel="fft", points=9)
        assert rec["name"] == "sweep.start"
        assert rec["level"] == "info"
        assert rec["trace"] == log.trace_id
        assert rec["attrs"] == {"kernel": "fft", "points": 9}
        assert log.records == [rec]

    def test_disabled_log_records_nothing(self):
        log = RunLog(enabled=False)
        assert log.event("x") is None
        assert log.records == []

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="level"):
            RunLog().event("x", level="fatal")

    def test_seq_increments_per_record(self):
        log = RunLog()
        a = log.event("a")
        b = log.event("b")
        assert (a["seq"], b["seq"]) == (0, 1)

    def test_context_scopes_ctx_path(self):
        log = RunLog()
        with log.context("figure", fig="fig3"):
            with log.context("kernel"):
                log.event("point")
        names = [r["name"] for r in log.records]
        assert names == ["figure.begin", "kernel.begin", "point",
                         "kernel.end", "figure.end"]
        point = log.records[2]
        assert point["ctx"] == "figure/kernel"
        # begin/end of the inner scope sit under the outer one only
        assert log.records[1]["ctx"] == "figure"
        assert log.records[0].get("ctx") is None

    def test_context_unwinds_on_exception(self):
        log = RunLog()
        with pytest.raises(RuntimeError):
            with log.context("figure"):
                raise RuntimeError
        assert log.records[-1]["name"] == "figure.end"
        assert log._ctx == []

    def test_adopt_preserves_worker_identity(self):
        parent = RunLog()
        worker = RunLog(trace_id=parent.trace_id)
        worker.event("worker.task")
        parent.event("parent.dispatch")
        parent.adopt(worker.records)
        pids = {r["pid"] for r in parent.records}
        assert len(parent.records) == 2
        assert all(r["trace"] == parent.trace_id for r in parent.records)
        assert pids  # worker pid preserved (same process here, still set)

    def test_merged_records_ordered_by_ts_pid_seq(self):
        log = RunLog()
        # hand-build out-of-order records across two fake pids
        log.records = [
            {"ts": 2.0, "pid": 9, "seq": 0, "trace": log.trace_id,
             "name": "c", "level": "info"},
            {"ts": 1.0, "pid": 9, "seq": 1, "trace": log.trace_id,
             "name": "b", "level": "info"},
            {"ts": 1.0, "pid": 3, "seq": 5, "trace": log.trace_id,
             "name": "a", "level": "info"},
        ]
        assert [r["name"] for r in log.merged_records()] == ["a", "b", "c"]


class TestRunlogFile:
    def test_write_load_roundtrip(self, tmp_path):
        log = RunLog()
        with log.context("figure"):
            log.event("point", latency=64)
        path = write_runlog(tmp_path / "run.jsonl", log, command="fig3")
        lines = load_and_validate(path)
        header = lines[0]
        assert header["schema"] == RUNLOG_SCHEMA
        assert header["command"] == "fig3"
        assert header["records"] == len(lines) - 1 == 3
        assert check_file(str(path)) == "runlog"

    def test_header_only_log_is_valid_and_sniffable(self, tmp_path):
        # a single-line JSONL file parses as whole-file JSON; the checker
        # must still route it by its schema tag
        path = write_runlog(tmp_path / "empty.jsonl", RunLog())
        assert load_and_validate(path)[0]["records"] == 0
        assert check_file(str(path)) == "runlog"

    def test_validator_rejects_drift(self):
        log = RunLog()
        log.event("a")
        good = [build_header(log)] + log.merged_records()

        bad_schema = [dict(good[0], schema="repro.runlog/999")] + good[1:]
        with pytest.raises(ValueError, match="schema"):
            validate_runlog_lines(bad_schema)

        bad_count = [dict(good[0], records=7)] + good[1:]
        with pytest.raises(ValueError, match="advertises"):
            validate_runlog_lines(bad_count)

        bad_trace = good[:1] + [dict(good[1], trace="deadbeef")]
        with pytest.raises(ValueError, match="trace"):
            validate_runlog_lines(bad_trace)

        bad_level = good[:1] + [dict(good[1], level="fatal")]
        with pytest.raises(ValueError, match="level"):
            validate_runlog_lines(bad_level)

        with pytest.raises(ValueError, match="empty"):
            validate_runlog_lines([])

    def test_validator_rejects_disorder(self, tmp_path):
        log = RunLog()
        log.event("a")
        log.event("b")
        first, second = log.records
        header = build_header(log)
        path = tmp_path / "bad.jsonl"
        path.write_text("\n".join(json.dumps(line) for line in
                                  [header, second, first]) + "\n")
        with pytest.raises(ValueError, match="order"):
            load_and_validate(path)


class TestProcessWideLog:
    def test_set_logging_clears_and_rekeys_on_enable(self):
        log = set_logging(True)
        log.event("stale")
        old_trace = log.trace_id
        set_logging(False)
        log = set_logging(True)
        assert log.records == []
        assert log.trace_id != old_trace

    def test_explicit_trace_id_propagates(self):
        tid = new_trace_id()
        log = set_logging(True, trace_id=tid)
        assert log.trace_id == tid
        assert log.event("x")["trace"] == tid
