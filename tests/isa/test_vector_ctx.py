"""Unit tests for the RVV intrinsics layer: functional semantics + trace
records."""

import numpy as np
import pytest

from repro.errors import IsaError
from repro.isa import ScalarContext, VectorContext, VMask, VReg
from repro.memory.address_space import MemoryImage
from repro.trace.events import TraceBuffer, VMemPattern, VOpClass


@pytest.fixture
def env():
    mem = MemoryImage(1 << 20)
    trace = TraceBuffer()
    vec = VectorContext(mem, trace, max_vl=16)
    return mem, trace, vec


class TestVsetvl:
    def test_strip_mining_sequence(self, env):
        _, _, vec = env
        granted = []
        remaining = 40
        while remaining:
            vl = vec.vsetvl(remaining)
            granted.append(vl)
            remaining -= vl
        assert granted == [16, 16, 8]

    def test_ops_require_vsetvl(self, env):
        _, _, vec = env
        with pytest.raises(IsaError):
            vec.vfmv(0.0)

    def test_operand_vl_mismatch_detected(self, env):
        _, _, vec = env
        vec.vsetvl(8)
        a = vec.vfmv(1.0)
        vec.vsetvl(4)
        b = vec.vfmv(2.0)
        with pytest.raises(IsaError):
            vec.vfadd(a, b)

    def test_emits_csr_record(self, env):
        _, trace, vec = env
        vec.vsetvl(8)
        assert trace[0].op is VOpClass.CSR


class TestLoadsStores:
    def test_vle_vse_roundtrip(self, env):
        mem, _, vec = env
        a = mem.alloc("x", np.arange(16, dtype=np.float64))
        b = mem.alloc("y", 16, np.float64)
        vec.vsetvl(16)
        v = vec.vle(a)
        vec.vse(v, b)
        assert (b.view == a.view).all()

    def test_vle_offset(self, env):
        mem, _, vec = env
        a = mem.alloc("x", np.arange(32, dtype=np.float64))
        vec.vsetvl(8)
        v = vec.vle(a, offset=10)
        assert (v.data == np.arange(10, 18)).all()

    def test_vlse_strided(self, env):
        mem, _, vec = env
        a = mem.alloc("x", np.arange(64, dtype=np.float64))
        vec.vsetvl(8)
        v = vec.vlse(a, offset=1, stride=4)
        assert (v.data == 1 + 4 * np.arange(8)).all()

    def test_vsse_strided_store(self, env):
        mem, _, vec = env
        a = mem.alloc("x", 64, np.float64)
        vec.vsetvl(8)
        v = vec.vfmv(3.0)
        vec.vsse(v, a, offset=0, stride=8)
        assert (a.view[::8] == 3.0).all()
        assert (a.view[1::8] == 0.0).all()

    def test_vlxe_gather(self, env):
        mem, _, vec = env
        a = mem.alloc("x", np.arange(100, dtype=np.float64))
        vec.vsetvl(4)
        idx = VReg(np.array([3, 1, 99, 0], dtype=np.int64))
        v = vec.vlxe(a, idx)
        assert (v.data == [3, 1, 99, 0]).all()

    def test_vsxe_scatter(self, env):
        mem, _, vec = env
        a = mem.alloc("x", 100, np.float64)
        vec.vsetvl(3)
        idx = VReg(np.array([5, 50, 99], dtype=np.int64))
        vec.vsxe(vec.vfmv(2.5), a, idx)
        assert a.view[5] == a.view[50] == a.view[99] == 2.5

    def test_vsxe_duplicate_last_wins(self, env):
        mem, _, vec = env
        a = mem.alloc("x", 8, np.float64)
        vec.vsetvl(2)
        idx = VReg(np.array([3, 3], dtype=np.int64))
        val = VReg(np.array([1.0, 2.0]))
        vec.vsxe(val, a, idx)
        assert a.view[3] == 2.0

    def test_masked_load_zeros_inactive(self, env):
        mem, _, vec = env
        a = mem.alloc("x", np.arange(8, dtype=np.float64) + 1)
        vec.vsetvl(8)
        m = VMask(np.array([1, 0, 1, 0, 1, 0, 1, 0], dtype=bool))
        v = vec.vle(a, mask=m)
        assert (v.data[::2] == a.view[::2]).all()
        assert (v.data[1::2] == 0).all()

    def test_masked_load_records_active_addresses_only(self, env):
        mem, trace, vec = env
        a = mem.alloc("x", np.arange(8, dtype=np.float64))
        vec.vsetvl(8)
        m = VMask(np.array([1, 1, 0, 0, 0, 0, 0, 0], dtype=bool))
        vec.vle(a, mask=m)
        rec = trace[-1]
        assert rec.active == 2
        assert rec.addrs.shape == (2,)

    def test_masked_store_preserves_inactive(self, env):
        mem, _, vec = env
        a = mem.alloc("x", np.full(4, 9.0))
        vec.vsetvl(4)
        m = VMask(np.array([1, 0, 0, 1], dtype=bool))
        vec.vse(vec.vfmv(1.0), a, mask=m)
        assert list(a.view) == [1.0, 9.0, 9.0, 1.0]

    def test_float_index_rejected(self, env):
        mem, _, vec = env
        a = mem.alloc("x", np.arange(8, dtype=np.float64))
        vec.vsetvl(4)
        with pytest.raises(IsaError):
            vec.vlxe(a, vec.vfmv(1.0))

    def test_zero_stride_rejected(self, env):
        mem, _, vec = env
        a = mem.alloc("x", np.arange(8, dtype=np.float64))
        vec.vsetvl(4)
        with pytest.raises(IsaError):
            vec.vlse(a, 0, 0)

    def test_trace_patterns(self, env):
        mem, trace, vec = env
        a = mem.alloc("x", np.arange(64, dtype=np.float64))
        vec.vsetvl(8)
        vec.vle(a)
        vec.vlse(a, 0, 2)
        vec.vlxe(a, vec.vid())
        patterns = [r.pattern for r in trace if getattr(r, "is_mem", False)]
        assert patterns == [VMemPattern.UNIT, VMemPattern.STRIDED,
                            VMemPattern.INDEXED]


class TestArithmetic:
    def test_vv_and_vf_forms(self, env):
        _, _, vec = env
        vec.vsetvl(4)
        a = VReg(np.array([1.0, 2.0, 3.0, 4.0]))
        b = VReg(np.array([10.0, 20.0, 30.0, 40.0]))
        assert (vec.vfadd(a, b).data == [11, 22, 33, 44]).all()
        assert (vec.vfadd(a, 1.0).data == [2, 3, 4, 5]).all()

    def test_vfmacc(self, env):
        _, _, vec = env
        vec.vsetvl(2)
        acc = VReg(np.array([1.0, 1.0]))
        a = VReg(np.array([2.0, 3.0]))
        b = VReg(np.array([4.0, 5.0]))
        assert (vec.vfmacc(acc, a, b).data == [9.0, 16.0]).all()

    def test_masked_arith_keeps_inactive(self, env):
        _, _, vec = env
        vec.vsetvl(4)
        a = VReg(np.array([1.0, 2.0, 3.0, 4.0]))
        m = VMask(np.array([True, False, True, False]))
        out = vec.vfmul(a, 10.0, mask=m)
        assert list(out.data) == [10.0, 2.0, 30.0, 4.0]

    def test_integer_ops(self, env):
        _, _, vec = env
        vec.vsetvl(3)
        a = VReg(np.array([1, 2, 3], dtype=np.int64))
        assert (vec.vadd(a, 1).data == [2, 3, 4]).all()
        assert (vec.vsll(a, 2).data == [4, 8, 12]).all()
        assert (vec.vsrl(vec.vsll(a, 2), 2).data == a.data).all()
        assert (vec.vand(a, 1).data == [1, 0, 1]).all()

    def test_heavy_ops_classified(self, env):
        _, trace, vec = env
        vec.vsetvl(2)
        a = VReg(np.array([4.0, 9.0]))
        out = vec.vfsqrt(a)
        assert (out.data == [2.0, 3.0]).all()
        assert trace[-1].op is VOpClass.ARITH_HEAVY

    def test_vid_and_vmv(self, env):
        _, _, vec = env
        vec.vsetvl(5)
        assert (vec.vid().data == np.arange(5)).all()
        assert (vec.vmv(7).data == 7).all()
        assert vec.vmv(7).data.dtype == np.int64
        assert vec.vfmv(7.0).data.dtype == np.float64


class TestMasksAndPermutes:
    def test_compares(self, env):
        _, _, vec = env
        vec.vsetvl(4)
        a = VReg(np.array([1, 5, 3, 7], dtype=np.int64))
        assert list(vec.vmsgt(a, 3).bits) == [False, True, False, True]
        assert list(vec.vmseq(a, 3).bits) == [False, False, True, False]

    def test_mask_logic(self, env):
        _, _, vec = env
        vec.vsetvl(3)
        a = VMask(np.array([1, 1, 0], dtype=bool))
        b = VMask(np.array([1, 0, 0], dtype=bool))
        assert list(vec.vmand(a, b).bits) == [True, False, False]
        assert list(vec.vmor(a, b).bits) == [True, True, False]
        assert list(vec.vmnot(b).bits) == [False, True, True]
        assert list(vec.vmandnot(a, b).bits) == [False, True, False]

    def test_vpopc_vfirst(self, env):
        _, _, vec = env
        vec.vsetvl(4)
        m = VMask(np.array([0, 1, 0, 1], dtype=bool))
        assert vec.vpopc(m) == 2
        assert vec.vfirst(m) == 1
        assert vec.vfirst(VMask(np.zeros(4, dtype=bool))) == -1

    def test_viota(self, env):
        _, _, vec = env
        vec.vsetvl(5)
        m = VMask(np.array([1, 0, 1, 1, 0], dtype=bool))
        assert list(vec.viota(m).data) == [0, 1, 1, 2, 3]

    def test_vcompress(self, env):
        _, _, vec = env
        vec.vsetvl(5)
        src = VReg(np.array([10, 20, 30, 40, 50], dtype=np.int64))
        m = VMask(np.array([0, 1, 0, 1, 1], dtype=bool))
        out = vec.vcompress(src, m)
        assert list(out.data) == [20, 40, 50, 0, 0]

    def test_vrgather(self, env):
        _, _, vec = env
        vec.vsetvl(4)
        src = VReg(np.array([10.0, 20.0, 30.0, 40.0]))
        idx = VReg(np.array([3, 3, 0, 9], dtype=np.int64))
        out = vec.vrgather(src, idx)
        assert list(out.data) == [40.0, 40.0, 10.0, 0.0]  # OOB gives 0

    def test_slides(self, env):
        _, _, vec = env
        vec.vsetvl(4)
        src = VReg(np.array([1.0, 2.0, 3.0, 4.0]))
        assert list(vec.vslideup(src, 1).data) == [0.0, 1.0, 2.0, 3.0]
        assert list(vec.vslidedown(src, 2).data) == [3.0, 4.0, 0.0, 0.0]

    def test_vmerge(self, env):
        _, _, vec = env
        vec.vsetvl(3)
        m = VMask(np.array([1, 0, 1], dtype=bool))
        a = VReg(np.array([1.0, 2.0, 3.0]))
        assert list(vec.vmerge(m, a, 9.0).data) == [1.0, 9.0, 3.0]


class TestReductions:
    def test_vfredsum(self, env):
        _, _, vec = env
        vec.vsetvl(4)
        v = VReg(np.array([1.0, 2.0, 3.0, 4.0]))
        assert vec.vfredsum(v) == 10.0
        assert vec.vfredsum(v, init=1.0) == 11.0

    def test_vredsum_int(self, env):
        _, _, vec = env
        vec.vsetvl(3)
        v = VReg(np.array([1, 2, 3], dtype=np.int64))
        assert vec.vredsum(v) == 6

    def test_masked_reduction(self, env):
        _, _, vec = env
        vec.vsetvl(4)
        v = VReg(np.array([1.0, 2.0, 3.0, 4.0]))
        m = VMask(np.array([1, 0, 0, 1], dtype=bool))
        assert vec.vfredsum(v, mask=m) == 5.0

    def test_empty_mask_returns_init(self, env):
        _, _, vec = env
        vec.vsetvl(2)
        v = VReg(np.array([1.0, 2.0]))
        m = VMask(np.zeros(2, dtype=bool))
        assert vec.vfredsum(v, init=7.0, mask=m) == 7.0

    def test_vredmax_min(self, env):
        _, _, vec = env
        vec.vsetvl(3)
        v = VReg(np.array([5, 1, 9], dtype=np.int64))
        assert vec.vredmax(v, 0) == 9
        assert vec.vredmin(v, 100) == 1

    def test_reduce_is_scalar_dest(self, env):
        _, trace, vec = env
        vec.vsetvl(2)
        vec.vfredsum(VReg(np.array([1.0, 2.0])))
        assert trace[-1].scalar_dest


class TestDependencyTracking:
    def test_load_produces_src(self, env):
        mem, trace, vec = env
        a = mem.alloc("x", np.arange(8, dtype=np.float64))
        vec.vsetvl(8)
        v = vec.vle(a)
        assert v.src == len(trace) - 1

    def test_consumer_records_dep(self, env):
        mem, trace, vec = env
        a = mem.alloc("x", np.arange(8, dtype=np.float64))
        vec.vsetvl(8)
        v = vec.vle(a)
        out = vec.vfmul(v, 2.0)
        assert trace[out.src].dep == v.src

    def test_dep_is_newest_operand(self, env):
        _, trace, vec = env
        vec.vsetvl(2)
        a = vec.vfmv(1.0)
        b = vec.vfmv(2.0)
        out = vec.vfadd(a, b)
        assert trace[out.src].dep == b.src

    def test_gather_dep_on_index(self, env):
        mem, trace, vec = env
        a = mem.alloc("x", np.arange(8, dtype=np.float64))
        vec.vsetvl(4)
        idx = vec.vid()
        vec.vlxe(a, idx)
        assert trace[-1].dep == idx.src

    def test_store_dep_on_value(self, env):
        mem, trace, vec = env
        a = mem.alloc("x", 8, np.float64)
        vec.vsetvl(4)
        v = vec.vfmv(1.0)
        vec.vse(v, a)
        assert trace[-1].dep == v.src

    def test_scalar_sourced_reg_has_no_dep(self, env):
        mem, trace, vec = env
        a = mem.alloc("x", 8, np.float64)
        vec.vsetvl(4)
        raw = VReg(np.zeros(4))
        vec.vse(raw, a)
        assert trace[-1].dep == -1


class TestWithVl:
    def test_truncate(self, env):
        _, _, vec = env
        vec.vsetvl(8)
        v = vec.vfmv(3.0)
        vec.vsetvl(4)
        out = vec.with_vl(v)
        assert out.vl == 4 and (out.data == 3.0).all()

    def test_extend_zero_fills(self, env):
        _, _, vec = env
        vec.vsetvl(2)
        v = vec.vfmv(3.0)
        vec.vsetvl(4)
        out = vec.with_vl(v)
        assert list(out.data) == [3.0, 3.0, 0.0, 0.0]

    def test_emits_no_instruction(self, env):
        _, trace, vec = env
        vec.vsetvl(4)
        v = vec.vfmv(1.0)
        n = len(trace)
        vec.with_vl(v)
        assert len(trace) == n
