"""Tests for the RVV extension instructions: segment loads/stores,
fault-only-first loads, and widening arithmetic."""

import numpy as np
import pytest

from repro.errors import IsaError
from repro.isa import VectorContext, VReg
from repro.memory.address_space import MemoryImage
from repro.trace.events import TraceBuffer, VMemPattern


@pytest.fixture
def env():
    mem = MemoryImage(1 << 20)
    trace = TraceBuffer()
    return mem, trace, VectorContext(mem, trace, max_vl=16)


class TestSegmentLoads:
    def test_vlseg2_deinterleaves_complex(self, env):
        mem, _, vec = env
        inter = np.empty(32)
        inter[0::2] = np.arange(16)          # re
        inter[1::2] = 100 + np.arange(16)    # im
        a = mem.alloc("z", inter)
        vec.vsetvl(16)
        re, im = vec.vlseg(a, 2)
        assert (re.data == np.arange(16)).all()
        assert (im.data == 100 + np.arange(16)).all()

    def test_vlseg3_field_order(self, env):
        mem, _, vec = env
        data = np.arange(12, dtype=np.float64)   # 4 records of 3 fields
        a = mem.alloc("rgb", data)
        vec.vsetvl(4)
        r, g, b = vec.vlseg(a, 3)
        assert list(r.data) == [0, 3, 6, 9]
        assert list(g.data) == [1, 4, 7, 10]
        assert list(b.data) == [2, 5, 8, 11]

    def test_vlseg_offset_in_records(self, env):
        mem, _, vec = env
        a = mem.alloc("z", np.arange(40, dtype=np.float64))
        vec.vsetvl(4)
        f0, f1 = vec.vlseg(a, 2, offset=3)
        assert list(f0.data) == [6, 8, 10, 12]

    def test_single_instruction_covers_all_fields(self, env):
        mem, trace, vec = env
        a = mem.alloc("z", np.arange(32, dtype=np.float64))
        vec.vsetvl(16)
        vec.vlseg(a, 2)
        recs = [r for r in trace if getattr(r, "is_mem", False)]
        assert len(recs) == 1
        assert recs[0].active == 32          # vl*fields elements of traffic
        assert recs[0].pattern is VMemPattern.UNIT

    def test_bad_field_count(self, env):
        mem, _, vec = env
        a = mem.alloc("z", np.arange(32, dtype=np.float64))
        vec.vsetvl(4)
        with pytest.raises(IsaError):
            vec.vlseg(a, 1)
        with pytest.raises(IsaError):
            vec.vlseg(a, 9)

    def test_vsseg_roundtrip(self, env):
        mem, _, vec = env
        a = mem.alloc("z", 32, np.float64)
        vec.vsetvl(16)
        re = VReg(np.arange(16, dtype=np.float64))
        im = VReg(np.arange(16, dtype=np.float64) + 100)
        vec.vsseg([re, im], a)
        back_re, back_im = vec.vlseg(a, 2)
        assert (back_re.data == re.data).all()
        assert (back_im.data == im.data).all()

    def test_vsseg_dep_on_values(self, env):
        mem, trace, vec = env
        a = mem.alloc("z", 32, np.float64)
        vec.vsetvl(16)
        v1 = vec.vfmv(1.0)
        v2 = vec.vfmv(2.0)
        vec.vsseg([v1, v2], a)
        assert trace[-1].dep == v2.src


class TestFaultOnlyFirst:
    def test_full_grant_when_in_bounds(self, env):
        mem, _, vec = env
        a = mem.alloc("x", np.arange(64, dtype=np.float64))
        vec.vsetvl(16)
        reg, granted = vec.vleff(a, 0)
        assert granted == 16
        assert (reg.data == np.arange(16)).all()

    def test_truncates_at_allocation_end(self, env):
        mem, _, vec = env
        a = mem.alloc("x", np.arange(10, dtype=np.float64))
        vec.vsetvl(16)
        reg, granted = vec.vleff(a, 4)
        assert granted == 6                 # elements 4..9 exist
        assert vec.vl == 6                  # architectural vl updated
        assert (reg.data == np.arange(4, 10)).all()

    def test_first_element_fault_raises(self, env):
        mem, _, vec = env
        a = mem.alloc("x", np.arange(4, dtype=np.float64))
        vec.vsetvl(8)
        with pytest.raises(IsaError):
            vec.vleff(a, 4)

    def test_strlen_style_scan(self, env):
        """The canonical vleff loop: walk until the data runs out."""
        mem, _, vec = env
        n = 37
        a = mem.alloc("s", np.arange(n, dtype=np.int64))
        seen = 0
        off = 0
        while off < n:
            vec.vsetvl(16)
            reg, granted = vec.vleff(a, off)
            seen += granted
            off += granted
        assert seen == n


class TestWidening:
    def test_vwadd_semantics(self, env):
        _, _, vec = env
        vec.vsetvl(4)
        a = VReg(np.array([1, 2, 3, 4], dtype=np.int64))
        out = vec.vwadd(a, 10)
        assert list(out.data) == [11, 12, 13, 14]

    def test_vwmul_semantics(self, env):
        _, _, vec = env
        vec.vsetvl(3)
        a = VReg(np.array([2, 3, 4], dtype=np.int64))
        b = VReg(np.array([5, 6, 7], dtype=np.int64))
        assert list(vec.vwmul(a, b).data) == [10, 18, 28]

    def test_widening_costed_as_two_groups(self, env):
        """Widening ops occupy two destination groups (PERMUTE class)."""
        from repro.config import SdvConfig
        from repro.engine.vpu_model import arith_occupancy
        from repro.trace.events import VOpClass
        _, trace, vec = env
        vec.vsetvl(16)
        a = VReg(np.zeros(16, dtype=np.int64))
        vec.vwadd(a, 1)
        rec = trace[-1]
        assert rec.op is VOpClass.PERMUTE
        cfg = SdvConfig().validate()
        assert (arith_occupancy(cfg, rec.op, 16)
                > arith_occupancy(cfg, VOpClass.ARITH, 16))


class TestLmulKernels:
    def test_lmul_strips_execute_correctly(self, env):
        mem, _, vec = env  # max_vl=16
        a = mem.alloc("x", np.arange(128, dtype=np.float64))
        b = mem.alloc("y", 128, np.float64)
        i, n = 0, 128
        while i < n:
            vl = vec.vsetvl(n - i, lmul=4)   # strips of up to 64
            assert vl <= 64
            vec.vse(vec.vfmul(vec.vle(a, i), 2.0), b, i)
            i += vl
        assert (b.view == 2.0 * a.view).all()

    def test_lmul_reduces_instruction_count(self, env):
        from repro.trace.stats import summarize_trace
        mem, trace, vec = env
        a = mem.alloc("x", np.arange(128, dtype=np.float64))
        i = 0
        while i < 128:
            vl = vec.vsetvl(128 - i, lmul=8)
            vec.vle(a, i)
            i += vl
        stats = summarize_trace(trace)
        assert stats.vector_mem_instrs == 1  # one grouped load covers all

    def test_lmul_speeds_up_latency_bound_short_vl(self):
        """At max VL 8, LMUL=8 strips recover much of the long-vector
        latency tolerance — the RVV antidote the paper's VPU supports."""
        import numpy as np
        from repro.soc import FpgaSdv

        def stream(session, lmul):
            mem, vec = session.mem, session.vector
            a = mem.alloc("x", np.arange(1 << 13, dtype=np.float64))
            i, n = 0, 1 << 13
            while i < n:
                vl = vec.vsetvl(n - i, lmul=lmul)
                vec.vle(a, i)
                i += vl
            return None

        times = {}
        for lmul in (1, 8):
            sdv = FpgaSdv().configure(max_vl=8, extra_latency=1024)
            sess = sdv.session()
            stream(sess, lmul)
            times[lmul] = sdv.time(sess.seal()).cycles
        assert times[8] < times[1]
