"""Property-based tests: vector intrinsics vs. plain NumPy semantics."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.isa import VectorContext, VMask, VReg
from repro.memory.address_space import MemoryImage
from repro.trace.events import TraceBuffer

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


def fresh_vec(max_vl=64):
    return VectorContext(MemoryImage(1 << 16), TraceBuffer(), max_vl=max_vl)


@st.composite
def float_pair(draw, max_len=32):
    n = draw(st.integers(1, max_len))
    a = draw(hnp.arrays(np.float64, n, elements=floats))
    b = draw(hnp.arrays(np.float64, n, elements=floats))
    return a, b


@settings(max_examples=50, deadline=None)
@given(float_pair())
def test_vfadd_matches_numpy(pair):
    a, b = pair
    vec = fresh_vec()
    vec.vsetvl(a.shape[0])
    out = vec.vfadd(VReg(a), VReg(b))
    assert np.array_equal(out.data, a + b)


@settings(max_examples=50, deadline=None)
@given(float_pair())
def test_vfmacc_matches_numpy(pair):
    a, b = pair
    vec = fresh_vec()
    vec.vsetvl(a.shape[0])
    acc = VReg(np.ones_like(a))
    out = vec.vfmacc(acc, VReg(a), VReg(b))
    assert np.allclose(out.data, 1.0 + a * b)


@settings(max_examples=50, deadline=None)
@given(hnp.arrays(np.bool_, st.integers(1, 64)))
def test_viota_is_exclusive_prefix_count(bits):
    vec = fresh_vec()
    vec.vsetvl(bits.shape[0])
    out = vec.viota(VMask(bits))
    expected = np.concatenate([[0], np.cumsum(bits)[:-1]])
    assert np.array_equal(out.data, expected)


@settings(max_examples=50, deadline=None)
@given(hnp.arrays(np.bool_, st.integers(1, 64)))
def test_vcompress_then_popc_reconstructs_selection(bits):
    vec = fresh_vec()
    n = bits.shape[0]
    vec.vsetvl(n)
    src = VReg(np.arange(1, n + 1, dtype=np.int64))
    packed = vec.vcompress(src, VMask(bits))
    cnt = vec.vpopc(VMask(bits))
    assert np.array_equal(packed.data[:cnt], src.data[bits])
    assert (packed.data[cnt:] == 0).all()


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 64), st.integers(0, 70))
def test_slideup_slidedown_roundtrip(n, k):
    vec = fresh_vec()
    vec.vsetvl(n)
    src = VReg(np.arange(1, n + 1, dtype=np.int64))
    up = vec.vslideup(src, k)
    back = vec.vslidedown(up, k)
    if k < n:
        assert np.array_equal(back.data[: n - k], src.data[: n - k])
    else:
        assert (back.data == 0).all()


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_gather_scatter_roundtrip_via_memory(data):
    n = data.draw(st.integers(1, 32))
    perm = np.random.default_rng(
        data.draw(st.integers(0, 2 ** 31))
    ).permutation(n).astype(np.int64)
    mem = MemoryImage(1 << 16)
    src = mem.alloc("src", np.arange(n, dtype=np.float64) + 1)
    dst = mem.alloc("dst", n, np.float64)
    vec = VectorContext(mem, TraceBuffer(), max_vl=64)
    vec.vsetvl(n)
    v = vec.vlxe(src, VReg(perm))
    vec.vsxe(v, dst, VReg(perm))
    # scatter through the same permutation restores the identity layout
    assert np.array_equal(dst.view, src.view)


@settings(max_examples=50, deadline=None)
@given(hnp.arrays(np.float64, st.integers(1, 48), elements=floats))
def test_vfredsum_matches_numpy_sum(a):
    vec = fresh_vec()
    vec.vsetvl(a.shape[0])
    assert np.isclose(vec.vfredsum(VReg(a)), a.sum())


@settings(max_examples=50, deadline=None)
@given(hnp.arrays(np.int64, st.integers(1, 48),
                  elements=st.integers(-1000, 1000)))
def test_compare_partitions_elements(a):
    vec = fresh_vec()
    vec.vsetvl(a.shape[0])
    reg = VReg(a)
    gt = vec.vmsgt(reg, 0)
    le = vec.vmsle(reg, 0)
    assert not (gt.bits & le.bits).any()
    assert (gt.bits | le.bits).all()


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 200), st.integers(1, 64))
def test_strip_mining_covers_exactly_avl(avl, max_vl):
    from repro.util.mathx import is_pow2
    if not is_pow2(max_vl):
        max_vl = 1 << (max_vl.bit_length() - 1)
    vec = fresh_vec(max_vl=max_vl)
    total = 0
    remaining = avl
    while remaining:
        vl = vec.vsetvl(remaining)
        assert 0 < vl <= max_vl
        total += vl
        remaining -= vl
    assert total == avl
