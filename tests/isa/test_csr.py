"""Unit tests for the CSR file (including the custom max-VL CSR)."""

import pytest

from repro.errors import IsaError, VectorLengthError
from repro.isa.csr import CSR_CYCLE, CSR_MAXVL, CSR_VL, CSR_VTYPE, CsrFile


class TestMaxVl:
    def test_defaults_to_hardware_limit(self):
        c = CsrFile(256)
        assert c.hw_max_vl == 256
        assert c.max_vl == 256

    def test_lowering_at_runtime(self):
        c = CsrFile(256)
        c.write_max_vl(8)
        assert c.max_vl == 8
        assert c.hw_max_vl == 256  # silicon limit unchanged

    def test_restore(self):
        c = CsrFile(256)
        c.write_max_vl(8)
        c.write_max_vl(256)
        assert c.max_vl == 256

    def test_cannot_exceed_hardware(self):
        c = CsrFile(256)
        with pytest.raises(VectorLengthError):
            c.write_max_vl(512)

    def test_must_be_pow2(self):
        c = CsrFile(256)
        with pytest.raises(VectorLengthError):
            c.write_max_vl(100)

    def test_hw_limit_must_be_pow2(self):
        with pytest.raises(VectorLengthError):
            CsrFile(100)


class TestVsetvl:
    def test_grants_min_of_avl_and_vlmax(self):
        c = CsrFile(256)
        assert c.vsetvl(1000) == 256
        assert c.vsetvl(100) == 100
        assert c.vl == 100

    def test_respects_lowered_max(self):
        c = CsrFile(256)
        c.write_max_vl(16)
        assert c.vsetvl(1000) == 16

    def test_sew_scaling(self):
        c = CsrFile(256)
        # VLMAX is defined in DP elements; SEW=32 doubles it
        assert c.vsetvl(10_000, sew=32) == 512

    def test_bad_sew(self):
        with pytest.raises(IsaError):
            CsrFile(256).vsetvl(10, sew=10)

    def test_negative_avl(self):
        with pytest.raises(IsaError):
            CsrFile(256).vsetvl(-1)

    def test_zero_avl(self):
        assert CsrFile(256).vsetvl(0) == 0


class TestReadWrite:
    def test_read_registers(self):
        c = CsrFile(256)
        c.vsetvl(40)
        assert c.read(CSR_VL) == 40
        assert c.read(CSR_MAXVL) == 256
        assert c.read(CSR_VTYPE) == 64 | (1 << 16)
        assert c.read(CSR_CYCLE) == 0

    def test_write_maxvl_via_address(self):
        c = CsrFile(256)
        c.write(CSR_MAXVL, 32)
        assert c.max_vl == 32

    def test_unknown_csr(self):
        with pytest.raises(IsaError):
            CsrFile(256).read(0x123)
        with pytest.raises(IsaError):
            CsrFile(256).write(CSR_VL, 1)


class TestLmul:
    def test_lmul_scales_vlmax(self):
        c = CsrFile(256)
        assert c.vsetvl(10_000, lmul=8) == 2048
        assert c.lmul == 8

    def test_lmul_composes_with_sew(self):
        c = CsrFile(256)
        assert c.vsetvl(10_000, sew=32, lmul=2) == 1024

    def test_lmul_respects_lowered_max_vl(self):
        c = CsrFile(256)
        c.write_max_vl(8)
        assert c.vsetvl(10_000, lmul=4) == 32

    def test_default_lmul_one(self):
        c = CsrFile(256)
        c.vsetvl(100)
        assert c.lmul == 1

    def test_bad_lmul(self):
        with pytest.raises(IsaError):
            CsrFile(256).vsetvl(10, lmul=3)

    def test_vtype_packs_lmul(self):
        c = CsrFile(256)
        c.vsetvl(10, lmul=4)
        assert c.read(CSR_VTYPE) == 64 | (4 << 16)
