"""Unit tests for the scalar context (interpreter + columnar emission)."""

import numpy as np
import pytest

from repro.errors import AccessError, TraceError
from repro.isa.scalar_ctx import ScalarContext, interleave_streams
from repro.memory.address_space import MemoryImage
from repro.trace.events import Barrier, ScalarBlock, TraceBuffer


@pytest.fixture
def env():
    mem = MemoryImage(1 << 20)
    trace = TraceBuffer()
    return mem, trace, ScalarContext(mem, trace)


class TestInterleave:
    def test_two_streams(self):
        a = np.array([1, 3, 5])
        b = np.array([2, 4, 6])
        assert list(interleave_streams(a, b)) == [1, 2, 3, 4, 5, 6]

    def test_single_stream_identity(self):
        a = np.array([1, 2, 3])
        assert list(interleave_streams(a)) == [1, 2, 3]

    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceError):
            interleave_streams(np.array([1]), np.array([1, 2]))

    def test_no_streams_rejected(self):
        with pytest.raises(TraceError):
            interleave_streams()


class TestColumnarEmission:
    def test_emit_block(self, env):
        mem, trace, scl = env
        a = mem.alloc("x", 8, np.float64)
        scl.emit_block(a.addr(np.arange(4)), False, 10, label="t")
        blk = trace[0]
        assert isinstance(blk, ScalarBlock)
        assert blk.n_mem_ops == 4
        assert blk.n_alu_ops == 10
        assert not blk.mem_is_write.any()

    def test_emit_block_scalar_write_flag_broadcast(self, env):
        mem, trace, scl = env
        a = mem.alloc("x", 4, np.float64)
        scl.emit_block(a.addr(np.arange(4)), True, 0)
        assert trace[0].mem_is_write.all()

    def test_emit_block_validates_addresses(self, env):
        _, _, scl = env
        with pytest.raises(AccessError):
            scl.emit_block(np.array([0]), False, 0)

    def test_emit_alu_only(self, env):
        _, trace, scl = env
        scl.emit_alu(42)
        assert trace[0].n_alu_ops == 42
        assert trace[0].n_mem_ops == 0

    def test_emit_alu_zero_is_noop(self, env):
        _, trace, scl = env
        scl.emit_alu(0)
        assert len(trace) == 0

    def test_instret_counts(self, env):
        mem, _, scl = env
        a = mem.alloc("x", 4, np.float64)
        scl.emit_block(a.addr(np.arange(4)), False, 6)
        assert scl.instret == 10


class TestInterpreter:
    def test_load_store_roundtrip(self, env):
        mem, trace, scl = env
        a = mem.alloc("x", np.array([1.5, 2.5]))
        v = scl.load_f64(a, 0)
        scl.store_f64(a, 1, v * 2)
        scl.alu(2)
        scl.flush(label="loop")
        assert a.view[1] == 3.0
        blk = trace[0]
        assert blk.n_mem_ops == 2
        assert list(blk.mem_is_write) == [False, True]
        assert blk.n_alu_ops == 2

    def test_int_accessors(self, env):
        mem, _, scl = env
        a = mem.alloc("x", np.array([7, 8], dtype=np.int64))
        assert scl.load_i64(a, 1) == 8
        scl.store_i64(a, 0, 42)
        assert a.view[0] == 42

    def test_flush_empty_is_noop(self, env):
        _, trace, scl = env
        scl.flush()
        assert len(trace) == 0

    def test_barrier_flushes_pending(self, env):
        mem, trace, scl = env
        a = mem.alloc("x", np.zeros(2))
        scl.load_f64(a, 0)
        scl.barrier("sync")
        assert isinstance(trace[0], ScalarBlock)
        assert isinstance(trace[1], Barrier)
        assert scl.pending_accesses == 0

    def test_negative_alu_rejected(self, env):
        _, _, scl = env
        with pytest.raises(TraceError):
            scl.alu(-1)

    def test_interpreter_addresses_match_columnar(self, env):
        """The two frontends must produce identical address streams."""
        mem, _, _ = env
        a = mem.alloc("x", np.arange(8, dtype=np.float64))

        t1 = TraceBuffer()
        s1 = ScalarContext(mem, t1)
        for i in range(4):
            s1.load_f64(a, i)
            s1.store_f64(a, i + 4, float(i))
        s1.flush()

        t2 = TraceBuffer()
        s2 = ScalarContext(mem, t2)
        loads = a.addr(np.arange(4))
        stores = a.addr(np.arange(4, 8))
        addrs = interleave_streams(loads, stores)
        writes = np.tile([False, True], 4)
        s2.emit_block(addrs, writes, 0)

        b1, b2 = t1[0], t2[0]
        assert np.array_equal(b1.mem_addrs, b2.mem_addrs)
        assert np.array_equal(b1.mem_is_write, b2.mem_is_write)
