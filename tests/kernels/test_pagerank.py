"""Correctness + trace-shape tests for the PageRank kernel."""

import networkx as nx
import numpy as np
import pytest

from repro.kernels.pagerank import (
    DAMPING,
    pagerank_reference,
    pagerank_scalar,
    pagerank_vector,
)
from repro.soc import FpgaSdv
from repro.trace.stats import summarize_trace
from repro.workloads.graphs import graph_to_networkx, rmat_graph


@pytest.fixture(scope="module")
def g():
    return rmat_graph(2 ** 9, edge_factor=4, seed=11)


@pytest.fixture(scope="module")
def ref2(g):
    return pagerank_reference(g, iters=2, damping=DAMPING)


class TestReference:
    def test_converges_to_networkx(self, g):
        r = pagerank_reference(g, iters=120, damping=DAMPING)
        G = graph_to_networkx(g)
        nxpr = nx.pagerank(G, alpha=DAMPING, max_iter=300, tol=1e-13)
        nxv = np.array([nxpr[i] for i in range(g.n)])
        assert np.abs(r - nxv).max() < 1e-9

    def test_mass_conserved(self, g):
        for iters in (1, 3, 10):
            r = pagerank_reference(g, iters=iters)
            assert r.sum() == pytest.approx(1.0, abs=1e-12)

    def test_all_positive(self, g):
        assert (pagerank_reference(g, iters=3) > 0).all()


class TestScalar:
    def test_matches_reference(self, g, ref2):
        out, _ = FpgaSdv().run(
            lambda sess, wl: pagerank_scalar(sess, wl, iters=2), g)
        assert np.allclose(out.value, ref2, rtol=1e-12)

    def test_trace_scales_with_iterations(self, g):
        def mem_ops(iters):
            sess = FpgaSdv().session()
            pagerank_scalar(sess, g, iters=iters)
            return summarize_trace(sess.seal()).scalar_mem_ops

        assert mem_ops(4) == pytest.approx(2 * mem_ops(2), rel=0.01)


class TestVector:
    @pytest.mark.parametrize("vl", [8, 32, 128, 256])
    def test_matches_reference_at_all_vls(self, g, ref2, vl):
        sdv = FpgaSdv().configure(max_vl=vl)
        out, _ = sdv.run(lambda sess, wl: pagerank_vector(sess, wl, iters=2),
                         g)
        assert np.allclose(out.value, ref2, rtol=1e-10, atol=1e-14)

    def test_computed_through_isa_not_reference(self, g):
        """The vector kernel must produce its result via simulated memory."""
        sdv = FpgaSdv().configure(max_vl=64)
        sess = sdv.session()
        out = pagerank_vector(sess, g, iters=1)
        # r after one iteration from uniform start differs from the start
        assert not np.allclose(out.value, np.full(g.n, 1.0 / g.n))

    def test_dangling_mass_redistributed(self):
        g2 = rmat_graph(128, edge_factor=2, seed=3, symmetric=False)
        assert (g2.out_degrees == 0).any(), "fixture needs dangling nodes"
        ref = pagerank_reference(g2, iters=3)
        out, _ = FpgaSdv().run(
            lambda sess, wl: pagerank_vector(sess, wl, iters=3), g2)
        assert np.allclose(out.value, ref, rtol=1e-10)
        assert out.value.sum() == pytest.approx(1.0, abs=1e-12)

    def test_uses_fp_heavy_ops(self, g):
        sess = FpgaSdv().session()
        pagerank_vector(sess, g, iters=1)
        stats = summarize_trace(sess.seal())
        assert stats.by_opclass.get("heavy", 0) > 0  # the vfdiv normalize
        assert stats.by_opclass.get("reduce", 0) >= 1  # dangling mass


class TestPerformanceShape:
    def test_vector_beats_scalar_at_vl256(self, g):
        _, rs = FpgaSdv().run(
            lambda sess, wl: pagerank_scalar(sess, wl, iters=2), g)
        _, rv = FpgaSdv().configure(max_vl=256).run(
            lambda sess, wl: pagerank_vector(sess, wl, iters=2), g)
        assert rv.cycles < rs.cycles

    def test_pr_more_fp_work_than_bfs(self, g):
        """Paper: 'PR presents slightly more computational intensity'."""
        from repro.kernels.bfs import bfs_vector
        s1 = FpgaSdv().session()
        pagerank_vector(s1, g, iters=1)
        pr_stats = summarize_trace(s1.seal())
        s2 = FpgaSdv().session()
        bfs_vector(s2, g)
        bfs_stats = summarize_trace(s2.seal())
        pr_fp = pr_stats.by_opclass.get("arith", 0) + \
            pr_stats.by_opclass.get("heavy", 0)
        bfs_fp = bfs_stats.by_opclass.get("heavy", 0)
        assert pr_fp > bfs_fp
