"""Equality grid: the three trace-generation paths are bit-identical.

The columnar buffer and the strip-mine templates exist purely for speed;
correctness is defined by the validated object path. For every kernel ×
VL this grid regenerates the trace under all three modes (templated —
the default, columnar without templating, and full object emission) and
checks the sealed column sets match bit for bit, every engine reports
identical cycles, and the attribution buckets agree exactly.
"""

import numpy as np
import pytest

from repro.core.sweeps import run_implementation
from repro.engine import ENGINES
from repro.kernels import KERNELS
from repro.memory.classify import classify_trace
from repro.obs import attribute
from repro.trace import modes
from repro.workloads import get_scale

# opcode_id/label_id are compared decoded: the templated emitters intern
# their opcodes up front (closure setup), so table *order* may differ
# between paths while every record still carries the same string
_COLS = ("kind", "n_alu", "mlp", "mem_bytes", "vl", "active", "opclass",
         "pattern", "is_write", "masked", "dep", "scalar_dest",
         "addr_off", "addrs", "writes")


def _generate(spec, workload, vl, *, object_path, templated):
    with modes.object_emission(object_path), modes.templating(templated):
        return run_implementation(spec, workload, vl, verify=False)


@pytest.mark.parametrize("vl", [None, 8, 64],
                         ids=["scalar", "vl8", "vl64"])
@pytest.mark.parametrize("name", sorted(KERNELS))
def test_generation_paths_bit_identical(name, vl):
    spec = KERNELS[name]
    workload = spec.prepare(get_scale("smoke"), 7)
    sdv, templated = _generate(spec, workload, vl,
                               object_path=False, templated=True)
    _, columnar = _generate(spec, workload, vl,
                            object_path=False, templated=False)
    _, objects = _generate(spec, workload, vl,
                           object_path=True, templated=False)

    for label, other in (("columnar", columnar), ("object", objects)):
        ct, co = templated.cols, other.cols
        for col in _COLS:
            np.testing.assert_array_equal(
                getattr(ct, col), getattr(co, col),
                err_msg=f"{label}: column {col}")
        for col in ("opcode_id", "label_id"):
            np.testing.assert_array_equal(
                np.array(ct.strings)[getattr(ct, col)],
                np.array(co.strings)[getattr(co, col)],
                err_msg=f"{label}: column {col} (decoded)")

    # identical traces must also time and attribute identically — this
    # pins the full path from the emitters through every engine
    ct_t = classify_trace(templated, sdv.config)
    ct_o = classify_trace(objects, sdv.config)
    for engine, fn in sorted(ENGINES.items()):
        assert fn(ct_t).cycles == fn(ct_o).cycles, engine
    at, ao = attribute(ct_t), attribute(ct_o)
    assert at.total == ao.total
    assert at.buckets == ao.buckets
