"""Tests for the direction-optimizing BFS extension."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.bfs import (
    bfs_reference,
    bfs_vector,
    bfs_vector_directopt,
)
from repro.soc import FpgaSdv
from repro.workloads.graphs import rmat_graph


@pytest.fixture(scope="module")
def g():
    return rmat_graph(2 ** 10, edge_factor=8, seed=11)


@pytest.fixture(scope="module")
def ref(g):
    return bfs_reference(g)


class TestCorrectness:
    @pytest.mark.parametrize("vl", [8, 64, 256])
    def test_levels_match_reference(self, g, ref, vl):
        out, _ = FpgaSdv().configure(max_vl=vl).run(bfs_vector_directopt, g)
        assert np.array_equal(out.value, ref)

    def test_explicit_source(self, g):
        src = int(np.argsort(g.out_degrees)[-3])
        out, _ = FpgaSdv().run(bfs_vector_directopt, g, src)
        assert np.array_equal(out.value, bfs_reference(g, src))

    def test_isolated_source(self):
        g2 = rmat_graph(128, edge_factor=2, seed=5)
        isolated = int(np.flatnonzero(g2.out_degrees == 0)[0])
        out, _ = FpgaSdv().run(bfs_vector_directopt, g2, isolated)
        expected = np.full(128, -1, dtype=np.int64)
        expected[isolated] = 0
        assert np.array_equal(out.value, expected)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 2 ** 31))
    def test_property_random_graphs(self, seed):
        g2 = rmat_graph(256, edge_factor=4, seed=seed)
        out, _ = FpgaSdv().run(bfs_vector_directopt, g2)
        assert np.array_equal(out.value, bfs_reference(g2))


class TestHeuristic:
    def test_uses_bottom_up_on_dense_middle_levels(self, g):
        out, _ = FpgaSdv().run(bfs_vector_directopt, g)
        assert out.meta["bottom_up_steps"] >= 1
        assert out.meta["steps"][0] == "top-down"  # tiny initial frontier

    def test_larger_alpha_switches_down_more_eagerly(self, g):
        # Beamer: bottom-up when m_frontier > m_unvisited / alpha,
        # so a larger alpha lowers the switching threshold
        lazy, _ = FpgaSdv().run(
            lambda s, wl: bfs_vector_directopt(s, wl, alpha=1), g)
        eager, _ = FpgaSdv().run(
            lambda s, wl: bfs_vector_directopt(s, wl, alpha=10 ** 6), g)
        assert eager.meta["bottom_up_steps"] >= lazy.meta["bottom_up_steps"]

    def test_beta_one_degenerates_to_top_down(self, g, ref):
        # beta=1 requires frontier > n, which never holds
        out, _ = FpgaSdv().run(
            lambda s, wl: bfs_vector_directopt(s, wl, beta=1), g)
        assert out.meta["bottom_up_steps"] == 0
        assert np.array_equal(out.value, ref)


class TestPerformance:
    def test_beats_pure_top_down_on_rmat(self, g):
        _, dopt = FpgaSdv().run(bfs_vector_directopt, g)
        _, td = FpgaSdv().run(bfs_vector, g)
        assert dopt.cycles < td.cycles

    def test_still_latency_tolerant(self, g):
        sdv = FpgaSdv()
        sess = sdv.session()
        bfs_vector_directopt(sess, g)
        trace = sess.seal()
        t0 = sdv.time(trace).cycles
        sdv.configure(extra_latency=1024)
        t1 = sdv.time(trace).cycles
        # the direction-optimized traversal keeps the long-vector latency
        # tolerance (well under the scalar ~8x)
        assert t1 / t0 < 8.0
