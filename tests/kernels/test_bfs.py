"""Correctness + trace-shape tests for the BFS kernel."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.bfs import (
    bfs_reference,
    bfs_scalar,
    bfs_vector,
    default_source,
)
from repro.soc import FpgaSdv
from repro.trace.stats import summarize_trace
from repro.workloads.graphs import graph_to_networkx, rmat_graph


@pytest.fixture(scope="module")
def g():
    return rmat_graph(2 ** 9, edge_factor=4, seed=11)


@pytest.fixture(scope="module")
def ref(g):
    return bfs_reference(g)


class TestReference:
    def test_matches_networkx(self, g, ref):
        src = default_source(g)
        G = graph_to_networkx(g)
        nx_levels = nx.single_source_shortest_path_length(G, src)
        for v, d in nx_levels.items():
            assert ref[v] == d
        assert int((ref >= 0).sum()) == len(nx_levels)

    def test_source_is_level_zero(self, g, ref):
        assert ref[default_source(g)] == 0

    def test_default_source_has_max_degree(self, g):
        s = default_source(g)
        assert g.out_degrees[s] == g.out_degrees.max()


class TestScalar:
    def test_levels_match_reference(self, g, ref):
        out, _ = FpgaSdv().run(bfs_scalar, g)
        assert np.array_equal(out.value, ref)

    def test_explicit_source(self, g):
        src = int(np.argsort(g.out_degrees)[-2])
        out, _ = FpgaSdv().run(bfs_scalar, g, src)
        assert np.array_equal(out.value, bfs_reference(g, src))

    def test_trace_scalar_only(self, g):
        sess = FpgaSdv().session()
        bfs_scalar(sess, g)
        assert summarize_trace(sess.seal()).vector_instrs == 0


class TestVector:
    @pytest.mark.parametrize("vl", [8, 32, 128, 256])
    def test_levels_match_reference_at_all_vls(self, g, ref, vl):
        out, _ = FpgaSdv().configure(max_vl=vl).run(bfs_vector, g)
        assert np.array_equal(out.value, ref)

    def test_explicit_source(self, g):
        src = int(np.argsort(g.out_degrees)[-2])
        out, _ = FpgaSdv().run(bfs_vector, g, src)
        assert np.array_equal(out.value, bfs_reference(g, src))

    def test_uses_gathers_and_scatters(self, g):
        sess = FpgaSdv().session()
        bfs_vector(sess, g)
        stats = summarize_trace(sess.seal())
        assert stats.by_opclass.get("mem", 0) > 0
        assert stats.by_opclass.get("permute", 0) > 0  # vcompress rebuild
        assert stats.by_opclass.get("mask", 0) > 0

    def test_level_count_in_meta(self, g, ref):
        out, _ = FpgaSdv().run(bfs_vector, g)
        assert out.meta["levels"] == ref.max() + 1

    def test_isolated_source(self):
        g2 = rmat_graph(64, edge_factor=2, seed=5)
        isolated = int(np.flatnonzero(g2.out_degrees == 0)[0])
        out, _ = FpgaSdv().run(bfs_vector, g2, isolated)
        expected = np.full(64, -1, dtype=np.int64)
        expected[isolated] = 0
        assert np.array_equal(out.value, expected)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2 ** 31), st.sampled_from([8, 64]))
    def test_property_random_graphs(self, seed, vl):
        g2 = rmat_graph(128, edge_factor=3, seed=seed)
        ref2 = bfs_reference(g2)
        out, _ = FpgaSdv().configure(max_vl=vl).run(bfs_vector, g2)
        assert np.array_equal(out.value, ref2)


class TestPerformanceShape:
    def test_time_decreases_with_vl(self, g):
        times = []
        for vl in (8, 256):
            _, r = FpgaSdv().configure(max_vl=vl).run(bfs_vector, g)
            times.append(r.cycles)
        assert times[1] < times[0]

    def test_scalar_degrades_more_with_latency(self, g):
        def slowdown(build, vl=None):
            sdv = FpgaSdv()
            if vl:
                sdv.configure(max_vl=vl)
            sess = sdv.session()
            build(sess, g)
            tr = sess.seal()
            t0 = sdv.time(tr).cycles
            sdv.configure(extra_latency=1024)
            return sdv.time(tr).cycles / t0

        assert slowdown(bfs_vector, vl=256) < slowdown(bfs_scalar)
