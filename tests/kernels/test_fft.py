"""Correctness + trace-shape tests for the Stockham FFT kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KernelError
from repro.kernels.fft import FFT_SPEC, fft_scalar, fft_vector, make_plan
from repro.soc import FpgaSdv
from repro.trace.stats import summarize_trace
from repro.workloads.signals import make_signal


@pytest.fixture(scope="module")
def sig():
    return make_signal(512, kind="tones", seed=3)


@pytest.fixture(scope="module")
def ref(sig):
    return np.fft.fft(sig[0] + 1j * sig[1])


class TestPlan:
    def test_stage_count(self):
        assert make_plan(2048).n_stages == 11

    def test_stage_geometry(self):
        plan = make_plan(16)
        assert [(s.l, s.m) for s in plan.stages] == [
            (8, 1), (4, 2), (2, 4), (1, 8)
        ]

    def test_half_offset_constant(self):
        plan = make_plan(64)
        assert all(s.half_offset == 32 for s in plan.stages)

    def test_twiddle_values(self):
        plan = make_plan(8)
        s0 = plan.stages[0]
        w = plan.twiddle_re[0] + 1j * plan.twiddle_im[0]
        expected = np.exp(-2j * np.pi * np.arange(s0.l) / (2 * s0.l))
        assert np.allclose(w, expected)

    def test_non_pow2_rejected(self):
        with pytest.raises(KernelError):
            make_plan(100)
        with pytest.raises(KernelError):
            make_plan(1)


class TestScalar:
    def test_matches_numpy(self, sig, ref):
        out, _ = FpgaSdv().run(fft_scalar, sig)
        assert np.allclose(out.value, ref, rtol=1e-9, atol=1e-9)

    def test_impulse(self):
        s = make_signal(64, kind="impulse")
        out, _ = FpgaSdv().run(fft_scalar, s)
        assert np.allclose(out.value, 1.0)

    def test_trace_scalar_only(self, sig):
        sess = FpgaSdv().session()
        fft_scalar(sess, sig)
        stats = summarize_trace(sess.seal())
        assert stats.vector_instrs == 0
        # 8 accesses per butterfly + 2 per twiddle group
        n = 512
        expected = int(np.log2(n)) * (n // 2) * 8 + 2 * (n - 1)
        assert stats.scalar_mem_ops == expected


class TestVector:
    @pytest.mark.parametrize("vl", [8, 16, 32, 64, 128, 256])
    def test_matches_numpy_at_all_vls(self, sig, ref, vl):
        out, _ = FpgaSdv().configure(max_vl=vl).run(fft_vector, sig)
        assert np.allclose(out.value, ref, rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("kind", ["tones", "noise", "impulse"])
    def test_signal_kinds(self, kind):
        s = make_signal(256, kind=kind, seed=5)
        ref_ = np.fft.fft(s[0] + 1j * s[1])
        out, _ = FpgaSdv().run(fft_vector, s)
        assert np.allclose(out.value, ref_, rtol=1e-9, atol=1e-9)

    def test_small_sizes(self):
        for n in (2, 4, 8, 16):
            s = make_signal(n, kind="noise", seed=1)
            ref_ = np.fft.fft(s[0] + 1j * s[1])
            out, _ = FpgaSdv().configure(max_vl=8).run(fft_vector, s)
            assert np.allclose(out.value, ref_, rtol=1e-9, atol=1e-9)

    def test_early_stages_use_index_scatter(self, sig):
        sess = FpgaSdv().configure(max_vl=256).session()
        fft_vector(sess, sig)
        trace = sess.seal()
        from repro.trace.events import VectorInstr, VMemPattern
        patterns = {r.pattern for r in trace
                    if isinstance(r, VectorInstr) and r.is_mem}
        assert VMemPattern.INDEXED in patterns  # batched early stages
        assert VMemPattern.UNIT in patterns     # late stages / loads

    def test_at_vl8_mostly_unit_stride(self, sig):
        # with VL=8, stages with m>=8 use the unit-stride path
        sess = FpgaSdv().configure(max_vl=8).session()
        fft_vector(sess, sig)
        trace = sess.seal()
        from repro.trace.events import VectorInstr, VMemPattern
        mem = [r for r in trace if isinstance(r, VectorInstr) and r.is_mem]
        unit = sum(1 for r in mem if r.pattern is VMemPattern.UNIT)
        assert unit / len(mem) > 0.7

    def test_spec_roundtrip(self, sig):
        ref_ = FFT_SPEC.reference(sig)
        out = FFT_SPEC.vector(FpgaSdv().session(), sig)
        assert FFT_SPEC.check(out, ref_)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2 ** 31))
    def test_property_linearity(self, seed):
        """FFT(a + b) == FFT(a) + FFT(b), computed through the machine."""
        rng = np.random.default_rng(seed)
        n = 64
        a = rng.standard_normal(n), rng.standard_normal(n)
        b = rng.standard_normal(n), rng.standard_normal(n)
        ab = (a[0] + b[0], a[1] + b[1])
        fa, _ = FpgaSdv().run(fft_vector, a)
        fb, _ = FpgaSdv().run(fft_vector, b)
        fab, _ = FpgaSdv().run(fft_vector, ab)
        assert np.allclose(fab.value, fa.value + fb.value,
                           rtol=1e-9, atol=1e-9)


class TestPerformanceShape:
    def test_vector_beats_scalar(self, sig):
        _, rs = FpgaSdv().run(fft_scalar, sig)
        _, rv = FpgaSdv().configure(max_vl=256).run(fft_vector, sig)
        assert rv.cycles < rs.cycles

    def test_time_decreases_with_vl(self, sig):
        t8 = FpgaSdv().configure(max_vl=8).run(fft_vector, sig)[1].cycles
        t256 = FpgaSdv().configure(max_vl=256).run(fft_vector, sig)[1].cycles
        assert t256 < t8
