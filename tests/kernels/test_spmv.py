"""Correctness + trace-shape tests for the SpMV kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import scipy.sparse as sp

from repro.kernels.spmv import SPMV_SPEC, build_sell, sell_to_dense, \
    spmv_scalar, spmv_vector
from repro.soc import FpgaSdv
from repro.trace.stats import summarize_trace
from repro.workloads.cage import scaled_cage_like


@pytest.fixture(scope="module")
def mat():
    return scaled_cage_like(384, seed=7)


@pytest.fixture(scope="module")
def ref(mat):
    return mat @ np.linspace(0.5, 1.5, mat.shape[0])


class TestScalarCorrectness:
    def test_matches_scipy(self, mat, ref):
        out, _ = FpgaSdv().run(spmv_scalar, mat)
        assert np.allclose(out.value, ref, rtol=1e-12)

    def test_custom_x(self, mat):
        x = np.random.default_rng(0).random(mat.shape[0])
        out, _ = FpgaSdv().run(spmv_scalar, mat, x)
        assert np.allclose(out.value, mat @ x, rtol=1e-12)

    def test_trace_is_scalar_only(self, mat):
        sdv = FpgaSdv()
        sess = sdv.session()
        spmv_scalar(sess, mat)
        stats = summarize_trace(sess.seal())
        assert stats.vector_instrs == 0
        assert stats.scalar_mem_ops == 3 * mat.nnz + 2 * mat.shape[0]


class TestVectorCorrectness:
    @pytest.mark.parametrize("vl", [8, 16, 32, 64, 128, 256])
    def test_matches_scipy_at_all_vls(self, mat, ref, vl):
        sdv = FpgaSdv().configure(max_vl=vl)
        out, _ = sdv.run(spmv_vector, mat)
        assert np.allclose(out.value, ref, rtol=1e-12)

    def test_avg_vl_tracks_machine_vl(self, mat):
        for vl in (8, 64):
            sdv = FpgaSdv().configure(max_vl=vl)
            sess = sdv.session()
            spmv_vector(sess, mat)
            stats = summarize_trace(sess.seal())
            assert stats.avg_vl <= vl
            assert stats.avg_vl > vl * 0.5

    def test_identity_matrix(self):
        n = 64
        eye = sp.identity(n, format="csr")
        x = np.arange(n, dtype=np.float64)
        out, _ = FpgaSdv().run(spmv_vector, eye, x)
        assert np.allclose(out.value, x)

    def test_empty_rows_handled(self):
        m = sp.csr_matrix((np.array([1.0]), (np.array([2]), np.array([3]))),
                          shape=(8, 8))
        x = np.ones(8)
        out, _ = FpgaSdv().configure(max_vl=8).run(spmv_vector, m, x)
        expected = np.zeros(8)
        expected[2] = 1.0
        assert np.allclose(out.value, expected)

    def test_spec_check_passes(self, mat):
        wl = mat
        ref_ = SPMV_SPEC.reference(wl)
        sdv = FpgaSdv()
        out = SPMV_SPEC.vector(sdv.session(), wl)
        assert SPMV_SPEC.check(out, ref_)


class TestSellFormat:
    def test_reconstruction(self, mat):
        small = scaled_cage_like(128, seed=3)
        sell = build_sell(small, chunk=16, sigma=64)
        assert np.allclose(sell_to_dense(sell), small.toarray())

    def test_compact_has_no_padding(self, mat):
        sell = build_sell(mat, chunk=64, sigma=mat.shape[0], compact=True)
        assert sell.padding_overhead == 1.0
        assert sell.padded_nnz == mat.nnz

    def test_padded_layout_overhead_bounded_with_sigma_sort(self, mat):
        sell = build_sell(mat, chunk=64, sigma=mat.shape[0], compact=False)
        assert 1.0 <= sell.padding_overhead < 1.6

    def test_sigma_sort_reduces_padding(self, mat):
        unsorted = build_sell(mat, chunk=64, sigma=64, compact=False)
        globally = build_sell(mat, chunk=64, sigma=mat.shape[0],
                              compact=False)
        assert globally.padded_nnz <= unsorted.padded_nnz

    def test_padded_layout_spmv_matches_scipy(self, mat, ref):
        from repro.kernels.spmv import spmv_vector as sv
        sdv = FpgaSdv().configure(max_vl=64)
        out, _ = sdv.run(lambda sess, m: sv(sess, m, compact=False), mat)
        assert np.allclose(out.value, ref, rtol=1e-12)

    def test_compact_faster_than_padded_on_skewed_input(self):
        """The jagged layout is the right call for power-law structure."""
        import scipy.sparse as sp
        from repro.workloads.graphs import rmat_graph
        g = rmat_graph(2 ** 10, edge_factor=8, seed=3)
        m = sp.csr_matrix(
            (np.ones(g.indices.shape[0]), g.indices, g.indptr),
            shape=(g.n, g.n),
        )
        from repro.kernels.spmv import spmv_vector as sv
        _, r_c = FpgaSdv().configure(max_vl=256).run(
            lambda sess, mm: sv(sess, mm, compact=True), m)
        _, r_p = FpgaSdv().configure(max_vl=256).run(
            lambda sess, mm: sv(sess, mm, compact=False), m)
        assert r_c.cycles < r_p.cycles

    def test_perm_is_permutation(self, mat):
        sell = build_sell(mat, chunk=32, sigma=128)
        assert sorted(sell.perm.tolist()) == list(range(mat.shape[0]))

    def test_rowlen_descending_within_sigma_window(self, mat):
        sigma = 128
        sell = build_sell(mat, chunk=32, sigma=sigma)
        for w0 in range(0, mat.shape[0], sigma):
            w = sell.rowlen[w0: w0 + sigma]
            assert (np.diff(w) <= 0).all()

    def test_chunk_ptr_consistent_compact(self, mat):
        sell = build_sell(mat, chunk=32, sigma=128, compact=True)
        assert sell.chunk_ptr[-1] == sell.vals.shape[0] == mat.nnz
        assert (np.diff(sell.slot_off) >= 0).all()
        assert (np.diff(sell.slot_off) <= 32).all()

    def test_chunk_ptr_consistent_padded(self, mat):
        sell = build_sell(mat, chunk=32, sigma=128, compact=False)
        assert sell.chunk_ptr[-1] == sell.vals.shape[0]
        assert (np.diff(sell.chunk_ptr) == sell.widths * 32).all()

    def test_slot_counts_non_increasing_within_chunk(self, mat):
        sell = build_sell(mat, chunk=32, sigma=128, compact=True)
        for c in range(sell.n_chunks):
            cnts = [sell.slot_count(c, j) for j in range(int(sell.widths[c]))]
            assert all(a >= b for a, b in zip(cnts, cnts[1:]))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2 ** 31), st.sampled_from([8, 16, 64]))
    def test_property_sell_spmv_matches_scipy(self, seed, chunk):
        rng = np.random.default_rng(seed)
        n = 48
        dense = rng.random((n, n))
        dense[dense < 0.8] = 0.0
        m = sp.csr_matrix(dense)
        if m.nnz == 0:
            return
        x = rng.random(n)
        sdv = FpgaSdv().configure(max_vl=chunk)
        out, _ = sdv.run(spmv_vector, m, x)
        assert np.allclose(out.value, m @ x, rtol=1e-10, atol=1e-12)


class TestPerformanceShape:
    def test_vector_beats_scalar_at_vl256(self, mat):
        _, rs = FpgaSdv().run(spmv_scalar, mat)
        _, rv = FpgaSdv().configure(max_vl=256).run(spmv_vector, mat)
        assert rv.cycles < rs.cycles

    def test_time_decreases_with_vl(self, mat):
        times = []
        for vl in (8, 64, 256):
            _, r = FpgaSdv().configure(max_vl=vl).run(spmv_vector, mat)
            times.append(r.cycles)
        assert times[0] > times[1] > times[2]
