"""Validate the columnar scalar-trace assembly against a straightforward
interpreter.

The scalar kernels build their address streams with vectorized position
arithmetic (offsets, cumsums, interleaves) for speed; these tests rebuild
the same streams one access at a time with the ScalarContext interpreter
and require byte-identical address/write sequences. Any off-by-one in the
columnar assembly shows up here immediately.
"""

import numpy as np
import pytest

from repro.isa.scalar_ctx import ScalarContext
from repro.kernels.spmv.scalar import spmv_scalar
from repro.kernels.pagerank.scalar import pagerank_scalar
from repro.memory.address_space import MemoryImage
from repro.soc import FpgaSdv
from repro.trace.events import ScalarBlock, TraceBuffer
from repro.workloads.cage import scaled_cage_like
from repro.workloads.graphs import rmat_graph


def scalar_blocks(trace):
    return [r for r in trace if isinstance(r, ScalarBlock)]


class TestSpmvStream:
    def test_columnar_matches_interpreter(self):
        mat = scaled_cage_like(96, seed=7)
        n, nnz = mat.shape[0], mat.nnz

        # columnar (the production path)
        sess = FpgaSdv().session()
        spmv_scalar(sess, mat)
        columnar = scalar_blocks(sess.seal())[0]

        # interpreter: replay the loop using the *same* allocation layout
        mem = MemoryImage(1 << 22)
        trace = TraceBuffer()
        scl = ScalarContext(mem, trace)
        a_indptr = mem.alloc("spmv.indptr", np.asarray(mat.indptr,
                                                       dtype=np.int64))
        a_indices = mem.alloc("spmv.indices", np.asarray(mat.indices,
                                                         dtype=np.int64))
        a_vals = mem.alloc("spmv.vals", np.asarray(mat.data,
                                                   dtype=np.float64))
        a_x = mem.alloc("spmv.x", np.linspace(0.5, 1.5, n))
        a_y = mem.alloc("spmv.y", n, np.float64)
        for i in range(n):
            hi = scl.load_i64(a_indptr, i + 1)
            lo = int(mat.indptr[i])
            acc = 0.0
            for k in range(lo, hi):
                col = scl.load_i64(a_indices, k)
                v = scl.load_f64(a_vals, k)
                acc += v * scl.load_f64(a_x, col)
            scl.store_f64(a_y, i, acc)
        scl.flush()
        interp = scalar_blocks(trace.seal())[0]

        assert np.array_equal(columnar.mem_addrs, interp.mem_addrs)
        assert np.array_equal(columnar.mem_is_write, interp.mem_is_write)

    def test_stream_length_formula(self):
        mat = scaled_cage_like(128, seed=3)
        sess = FpgaSdv().session()
        spmv_scalar(sess, mat)
        blk = scalar_blocks(sess.seal())[0]
        assert blk.n_mem_ops == 3 * mat.nnz + 2 * mat.shape[0]


class TestPagerankStreams:
    def test_accumulate_pass_matches_interpreter(self):
        g = rmat_graph(64, edge_factor=3, seed=5)
        n = g.n

        sess = FpgaSdv().session()
        pagerank_scalar(sess, g, iters=1)
        blocks = scalar_blocks(sess.seal())
        columnar = next(b for b in blocks if b.label == "pr-accumulate")

        mem = MemoryImage(1 << 22)
        trace = TraceBuffer()
        scl = ScalarContext(mem, trace)
        a_tptr = mem.alloc("pr.t_indptr", g.t_indptr)
        a_tidx = mem.alloc("pr.t_indices", g.t_indices)
        mem.alloc("pr.outdeg", g.out_degrees.astype(np.float64))
        mem.alloc("pr.r", np.full(n, 1.0 / n))
        a_rnorm = mem.alloc("pr.rnorm", n, np.float64)
        a_y = mem.alloc("pr.y", n, np.float64)
        for i in range(n):
            hi = scl.load_i64(a_tptr, i + 1)
            for k in range(int(g.t_indptr[i]), hi):
                src = scl.load_i64(a_tidx, k)
                scl.load_f64(a_rnorm, src)
            scl.store_f64(a_y, i, 0.0)
        scl.flush()
        interp = scalar_blocks(trace.seal())[0]

        assert np.array_equal(columnar.mem_addrs, interp.mem_addrs)
        assert np.array_equal(columnar.mem_is_write, interp.mem_is_write)

    def test_pass_structure_per_iteration(self):
        g = rmat_graph(64, edge_factor=3, seed=5)
        sess = FpgaSdv().session()
        pagerank_scalar(sess, g, iters=2)
        labels = [b.label for b in scalar_blocks(sess.seal())]
        assert labels == ["pr-normalize", "pr-accumulate", "pr-damping"] * 2


class TestBfsStream:
    def test_level_blocks_cover_all_edges(self):
        from repro.kernels.bfs.scalar import bfs_scalar
        from repro.kernels.bfs.reference import bfs_reference, default_source
        g = rmat_graph(128, edge_factor=4, seed=9)
        sess = FpgaSdv().session()
        bfs_scalar(sess, g)
        blocks = scalar_blocks(sess.seal())
        levels = bfs_reference(g)
        # frontier nodes across all levels
        reached = int((levels >= 0).sum())
        # per node: 3 header loads; per traversed edge: 2 loads (+2 on
        # discovery); discoveries = reached-1
        total_mem = sum(b.n_mem_ops for b in blocks)
        src = default_source(g)
        traversed = int(g.out_degrees[levels >= 0].sum())
        expected = 3 * reached + 2 * traversed + 2 * (reached - 1)
        # the last frontier's nodes are enqueued but the loop ends when no
        # new nodes appear, so their header loads still occur
        assert total_mem == expected
