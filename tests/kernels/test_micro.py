"""Machine-characterization microkernels: the substrate self-consistency
proof — the machine must *measure* as the configuration describes it."""

import numpy as np
import pytest

from repro.kernels.micro import (
    characterize_machine,
    gather_probe,
    pointer_chase,
    scatter_probe,
    stream_add,
    stream_copy,
    stream_scale,
    stream_triad,
)
from repro.soc import FpgaSdv


@pytest.fixture(scope="module")
def probe():
    return characterize_machine(FpgaSdv())


class TestFunctional:
    def test_copy(self):
        out, _ = FpgaSdv().run(stream_copy, n=1024)
        assert (out.value == np.arange(1024)).all()

    def test_scale(self):
        out, _ = FpgaSdv().run(stream_scale, n=512, q=2.0)
        assert (out.value == 2.0 * np.arange(512)).all()

    def test_add(self):
        out, _ = FpgaSdv().run(stream_add, n=512)
        assert (out.value == 2.0 * np.arange(512)).all()

    def test_triad(self):
        out, _ = FpgaSdv().run(stream_triad, n=512, q=3.0)
        assert (out.value == 4.0 * np.arange(512)).all()

    def test_gather_scatter(self):
        g, _ = FpgaSdv().run(gather_probe, n=512)
        s, _ = FpgaSdv().run(scatter_probe, n=512)
        assert g.value.shape == s.value.shape == (512,)

    def test_pointer_chase_walks_ring(self):
        out, _ = FpgaSdv().run(pointer_chase, n=256, hops=64)
        assert 0 <= out.value < 256


class TestSelfConsistency:
    """Measured machine == configured machine."""

    def test_streams_achieve_near_peak_bandwidth(self, probe):
        # peak is 64 B/cycle; streaming should land within 15%
        assert probe.copy_bytes_per_cycle > 0.85 * 64
        assert probe.triad_bytes_per_cycle > 0.85 * 64

    def test_pointer_chase_reads_configured_latency(self, probe):
        cfg = FpgaSdv().config
        assert probe.chase_cycles_per_hop == pytest.approx(
            cfg.dram_latency, rel=0.1)

    def test_latency_controller_visible_in_chase(self):
        extra = 777
        p = characterize_machine(FpgaSdv().configure(extra_latency=extra))
        base = characterize_machine(FpgaSdv())
        assert (p.chase_cycles_per_hop - base.chase_cycles_per_hop
                == pytest.approx(extra, rel=0.02))

    def test_bandwidth_limiter_caps_streams(self):
        for bpc in (4, 16):
            p = characterize_machine(FpgaSdv().configure(bandwidth_bpc=bpc))
            # triad moves 3 bytes per 2 DRAM-read bytes, so the achieved
            # figure can exceed the limiter by that ratio but not more
            assert p.copy_bytes_per_cycle <= 2.1 * bpc

    def test_gather_slower_than_stream(self, probe):
        assert probe.gather_bytes_per_cycle < probe.copy_bytes_per_cycle

    def test_gather_rate_tracks_agu(self):
        # gather AGU does 2 elements/cycle -> 16 B/cycle of payload, i.e.
        # 24 B/cycle counting the index and result streams (3 arrays)
        p = characterize_machine(FpgaSdv())
        assert 16 <= p.gather_bytes_per_cycle <= 40

    def test_render(self, probe):
        out = probe.render()
        assert "triad" in out and "B/cycle" in out


class TestTransposeProbe:
    def test_functional(self):
        from repro.kernels.micro import transpose_probe
        out, _ = FpgaSdv().run(transpose_probe, side=16)
        assert (out.value == out.meta["expected"]).all()

    def test_strided_pattern_recorded(self):
        from repro.kernels.micro import transpose_probe
        from repro.trace.events import VectorInstr, VMemPattern
        sess = FpgaSdv().session()
        transpose_probe(sess, side=16)
        trace = sess.seal()
        patterns = {r.pattern for r in trace
                    if isinstance(r, VectorInstr) and r.is_mem}
        assert VMemPattern.STRIDED in patterns

    def test_strided_slower_than_streaming(self):
        """A strided walk touches vl lines per access — far below the
        unit-stride bandwidth."""
        from repro.kernels.micro import stream_copy, transpose_probe
        side = 64
        _, tr = FpgaSdv().run(transpose_probe, side=side)
        _, st = FpgaSdv().run(stream_copy, n=side * side)
        bw_tr = 16 * side * side / tr.cycles
        bw_st = 16 * side * side / st.cycles
        assert bw_tr < bw_st
