"""Tests for the interleaved-complex (AoS) FFT variant."""

import numpy as np
import pytest

from repro.kernels.fft import fft_vector, fft_vector_aos
from repro.soc import FpgaSdv
from repro.trace.stats import summarize_trace
from repro.workloads.signals import make_signal


@pytest.fixture(scope="module")
def sig():
    return make_signal(256, kind="tones", seed=3)


@pytest.fixture(scope="module")
def ref(sig):
    return np.fft.fft(sig[0] + 1j * sig[1])


class TestCorrectness:
    @pytest.mark.parametrize("vl", [8, 32, 128, 256])
    def test_matches_numpy(self, sig, ref, vl):
        out, _ = FpgaSdv().configure(max_vl=vl).run(fft_vector_aos, sig)
        assert np.allclose(out.value, ref, rtol=1e-9, atol=1e-9)

    def test_matches_soa_variant_exactly(self, sig):
        a, _ = FpgaSdv().run(fft_vector_aos, sig)
        b, _ = FpgaSdv().run(fft_vector, sig)
        assert np.allclose(a.value, b.value, rtol=1e-12)

    @pytest.mark.parametrize("kind", ["noise", "impulse"])
    def test_other_signals(self, kind):
        s = make_signal(128, kind=kind, seed=5)
        out, _ = FpgaSdv().run(fft_vector_aos, s)
        assert np.allclose(out.value, np.fft.fft(s[0] + 1j * s[1]),
                           rtol=1e-9, atol=1e-9)


class TestSegmentUsage:
    def test_uses_segment_instructions(self, sig):
        # at max_vl=8 most stages take the m >= VL path (segment stores)
        sess = FpgaSdv().configure(max_vl=8).session()
        fft_vector_aos(sess, sig)
        trace = sess.seal()
        opcodes = {r.opcode for r in trace if hasattr(r, "opcode")}
        assert "vlseg2e" in opcodes
        assert "vsseg2e" in opcodes

    def test_fewer_mem_instructions_than_soa(self, sig):
        """One segment access replaces two unit-stride accesses."""
        s1 = FpgaSdv().session()
        fft_vector_aos(s1, sig)
        aos = summarize_trace(s1.seal())
        s2 = FpgaSdv().session()
        fft_vector(s2, sig)
        soa = summarize_trace(s2.seal())
        assert aos.vector_mem_instrs < soa.vector_mem_instrs
        # ...while moving the same number of bytes
        assert aos.vector_mem_bytes == pytest.approx(soa.vector_mem_bytes,
                                                     rel=0.01)


class TestPerformance:
    def test_comparable_to_soa(self, sig):
        """Segment accesses keep AoS within a small factor of SoA."""
        _, aos = FpgaSdv().run(fft_vector_aos, sig)
        _, soa = FpgaSdv().run(fft_vector, sig)
        assert aos.cycles == pytest.approx(soa.cycles, rel=0.25)
