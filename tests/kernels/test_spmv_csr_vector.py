"""Tests for the naive CSR-vector SpMV ablation variant."""

import numpy as np
import pytest

from repro.kernels.spmv import spmv_vector, spmv_vector_csr
from repro.soc import FpgaSdv
from repro.trace.stats import summarize_trace
from repro.workloads.cage import scaled_cage_like


@pytest.fixture(scope="module")
def mat():
    return scaled_cage_like(384, seed=7)


@pytest.fixture(scope="module")
def ref(mat):
    return mat @ np.linspace(0.5, 1.5, mat.shape[0])


class TestCorrectness:
    @pytest.mark.parametrize("vl", [8, 64, 256])
    def test_matches_scipy(self, mat, ref, vl):
        out, _ = FpgaSdv().configure(max_vl=vl).run(spmv_vector_csr, mat)
        assert np.allclose(out.value, ref, rtol=1e-10)

    def test_custom_x(self, mat):
        x = np.random.default_rng(1).random(mat.shape[0])
        out, _ = FpgaSdv().run(spmv_vector_csr, mat, x)
        assert np.allclose(out.value, mat @ x, rtol=1e-10)

    def test_empty_rows(self):
        import scipy.sparse as sp
        m = sp.csr_matrix((np.array([2.0]), (np.array([5]), np.array([1]))),
                          shape=(8, 8))
        out, _ = FpgaSdv().run(spmv_vector_csr, m, np.ones(8))
        expected = np.zeros(8)
        expected[5] = 2.0
        assert np.allclose(out.value, expected)


class TestWhySellExists:
    def test_low_lane_occupancy_at_long_vl(self, mat):
        """Short rows leave a 256-lane machine nearly idle per strip."""
        sess = FpgaSdv().configure(max_vl=256).session()
        spmv_vector_csr(sess, mat)
        stats = summarize_trace(sess.seal())
        avg_row = mat.nnz / mat.shape[0]
        assert stats.avg_vl < 2 * avg_row  # row length caps the strip vl

    def test_one_reduction_sync_per_row(self, mat):
        sess = FpgaSdv().configure(max_vl=256).session()
        spmv_vector_csr(sess, mat)
        stats = summarize_trace(sess.seal())
        assert stats.by_opclass.get("reduce", 0) >= mat.shape[0]

    def test_sell_is_much_faster(self, mat):
        _, naive = FpgaSdv().configure(max_vl=256).run(spmv_vector_csr, mat)
        _, sell = FpgaSdv().configure(max_vl=256).run(spmv_vector, mat)
        assert sell.cycles < naive.cycles / 3

    def test_sell_advantage_grows_with_vl(self, mat):
        def ratio(vl):
            _, a = FpgaSdv().configure(max_vl=vl).run(spmv_vector_csr, mat)
            _, b = FpgaSdv().configure(max_vl=vl).run(spmv_vector, mat)
            return a.cycles / b.cycles
        assert ratio(256) > ratio(8)
