"""Unit tests for the hardware-counter facade."""

from repro.engine.results import CycleReport
from repro.soc.hwcounters import HwCounters


def report(cycles=100.0, reads=5, writes=2):
    return CycleReport(cycles=cycles, dram_reads=reads, dram_writes=writes)


def test_absorb_accumulates():
    c = HwCounters()
    c.absorb(report(100.0), scalar_instret=10, vector_instret=4)
    c.absorb(report(50.0))
    assert c.cycles == 150.0
    assert c.scalar_instret == 10
    assert c.vector_instret == 4
    assert c.dram_reads == 10
    assert c.dram_writes == 4
    assert c.history == [100.0, 50.0]


def test_snapshot_delta_discipline():
    c = HwCounters()
    before = c.snapshot()
    c.absorb(report(42.0))
    after = c.snapshot()
    assert HwCounters.delta(before, after) == 42.0
