"""Unit tests for the hardware-counter facade."""

import pytest

from repro.engine.results import CycleReport
from repro.soc.hwcounters import HwCounters
from repro.util.units import LINE_BYTES


def report(cycles=100.0, reads=5, writes=2):
    return CycleReport(cycles=cycles, dram_reads=reads, dram_writes=writes)


def test_absorb_accumulates():
    c = HwCounters()
    c.absorb(report(100.0), scalar_instret=10, vector_instret=4)
    c.absorb(report(50.0))
    assert c.cycles == 150.0
    assert c.scalar_instret == 10
    assert c.vector_instret == 4
    assert c.dram_reads == 10
    assert c.dram_writes == 4
    assert c.history == [100.0, 50.0]


def test_snapshot_delta_discipline():
    c = HwCounters()
    before = c.snapshot()
    c.absorb(report(42.0))
    after = c.snapshot()
    assert HwCounters.delta(before, after) == 42.0


def test_mean_uses_run_history():
    """The paper averages 5 runs; mean_cycles must divide by the number of
    absorbed runs, not return the raw accumulator."""
    c = HwCounters()
    for cycles in (100.0, 200.0, 300.0):
        c.absorb(report(cycles))
    assert c.runs == 3
    assert c.mean_cycles() == 200.0
    assert c.cycles == 600.0  # accumulator unchanged by the mean


def test_mean_and_stddev_of_empty_counters():
    c = HwCounters()
    assert c.runs == 0
    assert c.mean_cycles() == 0.0
    assert c.stddev() == 0.0


def test_stddev_sample_formula():
    c = HwCounters()
    c.absorb(report(10.0))
    assert c.stddev() == 0.0  # undefined below n=2
    c.absorb(report(20.0))
    c.absorb(report(30.0))
    assert c.stddev() == pytest.approx(10.0)


def test_vector_fraction_and_achieved_bandwidth():
    c = HwCounters()
    c.absorb(report(100.0, reads=3, writes=1), scalar_instret=60,
             vector_instret=40)
    assert c.instret == 100
    assert c.vector_fraction == pytest.approx(0.4)
    assert c.achieved_bytes_per_cycle == pytest.approx(4 * LINE_BYTES / 100)


def test_vector_fraction_with_no_instructions():
    assert HwCounters().vector_fraction == 0.0
    assert HwCounters().achieved_bytes_per_cycle == 0.0


class _FakeAttribution:
    buckets = {"vpu_busy": 70.0, "dram_stall": 30.0}


def test_absorb_folds_attribution_buckets():
    c = HwCounters()
    r = report(100.0)
    r.attribution = _FakeAttribution()
    c.absorb(r)
    c.record_attribution(_FakeAttribution())
    assert c.buckets == {"vpu_busy": 140.0, "dram_stall": 60.0}
    # fractions are relative to total absorbed cycles (one absorb only)
    assert c.bucket_fraction("vpu_busy") == pytest.approx(1.4)
    assert c.bucket_fraction("unknown") == 0.0
