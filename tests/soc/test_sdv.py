"""Unit tests for the FpgaSdv top level."""

import numpy as np
import pytest

from repro.config import SdvConfig
from repro.errors import ConfigError
from repro.soc import FpgaSdv


def stream_builder(session, n=2048):
    mem, vec = session.mem, session.vector
    a = mem.alloc("x", np.arange(n, dtype=np.float64))
    b = mem.alloc("y", n, np.float64)
    i = 0
    while i < n:
        vl = vec.vsetvl(n - i)
        v = vec.vle(a, i)
        vec.vse(v, b, i)
        i += vl
    return b.view.copy()


class TestConfigure:
    def test_defaults(self):
        sdv = FpgaSdv()
        assert sdv.max_vl == 256
        assert sdv.extra_latency == 0
        assert sdv.bandwidth_bpc == 64.0

    def test_knobs_apply(self):
        sdv = FpgaSdv().configure(max_vl=16, extra_latency=128,
                                  bandwidth_bpc=8)
        assert sdv.max_vl == 16
        assert sdv.extra_latency == 128
        assert sdv.bandwidth_bpc == 8.0

    def test_partial_reconfiguration(self):
        sdv = FpgaSdv().configure(max_vl=32)
        sdv.configure(extra_latency=64)
        assert sdv.max_vl == 32  # untouched

    def test_chainable(self):
        sdv = FpgaSdv()
        assert sdv.configure(max_vl=8) is sdv

    def test_invalid_engine(self):
        with pytest.raises(ConfigError):
            FpgaSdv(engine="magic")

    def test_invalid_vl(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            FpgaSdv().configure(max_vl=100)


class TestSessions:
    def test_session_respects_max_vl(self):
        sdv = FpgaSdv().configure(max_vl=16)
        sess = sdv.session()
        assert sess.vector.vsetvl(1000) == 16

    def test_sessions_are_isolated(self):
        sdv = FpgaSdv()
        s1 = sdv.session()
        s1.mem.alloc("x", 4, np.float64)
        s2 = sdv.session()
        assert "x" not in s2.mem

    def test_seal_flushes_scalar_state(self):
        sdv = FpgaSdv()
        sess = sdv.session()
        a = sess.mem.alloc("x", np.zeros(2))
        sess.scalar.load_f64(a, 0)
        trace = sess.seal()
        assert trace.sealed
        assert len(trace) == 1


class TestTiming:
    def test_run_returns_result_and_report(self):
        sdv = FpgaSdv()
        out, report = sdv.run(stream_builder)
        assert (out == np.arange(2048)).all()
        assert report.cycles > 0

    def test_counters_accumulate(self):
        sdv = FpgaSdv()
        sdv.run(stream_builder)
        first = sdv.counters.cycles
        sdv.run(stream_builder)
        assert sdv.counters.cycles > first
        assert len(sdv.counters.history) == 2

    def test_retiming_without_reclassification(self):
        sdv = FpgaSdv()
        sess = sdv.session()
        stream_builder(sess)
        trace = sess.seal()
        t0 = sdv.time(trace).cycles
        sdv.configure(extra_latency=512)
        t1 = sdv.time(trace).cycles
        assert t1 > t0
        # classification cached once for the geometry
        assert len(getattr(trace, "_classified_cache")) == 1

    def test_engine_selection_per_call(self):
        sdv = FpgaSdv()
        sess = sdv.session()
        stream_builder(sess, n=256)
        trace = sess.seal()
        fast = sdv.time(trace, engine="fast")
        event = sdv.time(trace, engine="event")
        assert fast.engine == "fast"
        assert event.engine == "event"

    def test_timing_deterministic(self):
        sdv = FpgaSdv()
        sess = sdv.session()
        stream_builder(sess)
        trace = sess.seal()
        assert sdv.time(trace).cycles == sdv.time(trace).cycles

    def test_vl_affects_time(self):
        t = {}
        for vl in (8, 256):
            sdv = FpgaSdv().configure(max_vl=vl)
            _, report = sdv.run(stream_builder)
            t[vl] = report.cycles
        assert t[256] < t[8]
