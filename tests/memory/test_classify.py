"""Unit tests for trace classification (the hit/miss labelling pass)."""

import numpy as np
import pytest

from repro.config import CoreConfig, L2Config, SdvConfig, VpuConfig
from repro.errors import TraceError
from repro.memory.classify import (
    AccessLevel,
    KIND_BARRIER,
    KIND_SCALAR,
    KIND_VARITH,
    KIND_VMEM,
    _coalesce_lines,
    classify_trace,
)
from repro.trace.events import (
    Barrier,
    ScalarBlock,
    TraceBuffer,
    VectorInstr,
    VMemPattern,
    VOpClass,
)

BASE = 0x10000


def tiny_cfg(**vpu_kwargs) -> SdvConfig:
    return SdvConfig(
        core=CoreConfig(l1d_bytes=4096, l1d_ways=4),
        l2=L2Config(banks=4, bank_bytes=16 * 1024, ways=4),
        vpu=VpuConfig(**vpu_kwargs),
    ).validate()


def scalar_block(addrs, writes=False, n_alu=0):
    addrs = np.asarray(addrs, dtype=np.int64)
    if isinstance(writes, bool):
        writes = np.full(addrs.shape[0], writes)
    return ScalarBlock(n_alu_ops=n_alu, mem_addrs=addrs,
                       mem_is_write=np.asarray(writes))


def vload(addrs, pattern=VMemPattern.UNIT, write=False):
    addrs = np.asarray(addrs, dtype=np.int64)
    return VectorInstr(op=VOpClass.MEM, vl=addrs.shape[0],
                       opcode="vse" if write else "vle", pattern=pattern,
                       addrs=addrs, is_write=write)


def build(*records) -> TraceBuffer:
    t = TraceBuffer()
    for r in records:
        t.append(r)
    return t.seal()


class TestScalarPath:
    def test_first_touch_misses_to_dram(self):
        ct = classify_trace(build(scalar_block([BASE])), tiny_cfg())
        assert ct.rows["dram_reads"][0] == 1
        assert ct.levels[0][0] == AccessLevel.DRAM

    def test_rereference_hits_l1(self):
        ct = classify_trace(build(scalar_block([BASE, BASE])), tiny_cfg())
        assert ct.rows["l1_hits"][0] == 1
        assert list(ct.levels[0]) == [AccessLevel.DRAM, AccessLevel.L1]

    def test_l1_evict_refill_hits_l2(self):
        cfg = tiny_cfg()
        # touch BASE, then blow the 4KB L1 with conflicting lines, re-touch
        conflicts = [BASE + 4096 * k for k in range(1, 8)]
        addrs = [BASE] + conflicts + [BASE]
        ct = classify_trace(build(scalar_block(addrs)), cfg)
        assert ct.levels[0][-1] == AccessLevel.L2

    def test_dirty_l1_victim_reaches_l2_not_dram(self):
        cfg = tiny_cfg()
        conflicts = [BASE + 4096 * k for k in range(1, 8)]
        addrs = [BASE] + conflicts
        writes = [True] + [False] * len(conflicts)
        ct = classify_trace(build(scalar_block(addrs, writes)), cfg)
        # the dirty victim lands in the (empty) L2 without a DRAM write
        assert ct.rows["dram_writes"][0] == 0

    def test_unsealed_trace_rejected(self):
        t = TraceBuffer()
        t.append(scalar_block([BASE]))
        with pytest.raises(TraceError):
            classify_trace(t, tiny_cfg())

    def test_row_metadata(self):
        blk = scalar_block([BASE, BASE + 8], n_alu=5)
        ct = classify_trace(build(blk), tiny_cfg())
        row = ct.rows[0]
        assert row["kind"] == KIND_SCALAR
        assert row["n_alu"] == 5
        assert row["n_mem"] == 2


class TestVectorPath:
    def test_unit_load_coalesces_to_lines(self):
        addrs = BASE + 8 * np.arange(16)  # 16 doubles = 2 lines
        ct = classify_trace(build(vload(addrs)), tiny_cfg())
        row = ct.rows[0]
        assert row["kind"] == KIND_VMEM
        assert row["n_line_reqs"] == 2
        assert row["dram_reads"] == 2

    def test_l2_hit_on_revisit(self):
        addrs = BASE + 8 * np.arange(8)
        ct = classify_trace(build(vload(addrs), vload(addrs)), tiny_cfg())
        assert ct.rows["dram_reads"][1] == 0
        assert ct.rows["l2_hits"][1] == 1

    def test_vector_bypasses_l1(self):
        addrs = BASE + 8 * np.arange(8)
        ct = classify_trace(
            build(scalar_block(addrs), vload(addrs)), tiny_cfg()
        )
        # the vector access is served by L2 (where the scalar miss filled),
        # never by L1
        assert ct.rows["l1_hits"][1] == 0
        assert ct.rows["l2_hits"][1] == 1

    def test_gather_coalescing_dedupes_lines(self):
        # 8 elements all within one line, duplicated lines across the instr
        addrs = np.array([BASE, BASE + 8, BASE + 16, BASE,
                          BASE + 24, BASE + 8, BASE + 32, BASE + 40])
        ct = classify_trace(build(vload(addrs, VMemPattern.INDEXED)),
                            tiny_cfg(coalesce_gathers=True))
        assert ct.rows["n_line_reqs"][0] == 1

    def test_gather_no_coalescing_ablation(self):
        addrs = np.array([BASE, BASE + 8, BASE, BASE + 8])
        ct = classify_trace(build(vload(addrs, VMemPattern.INDEXED)),
                            tiny_cfg(coalesce_gathers=False))
        assert ct.rows["n_line_reqs"][0] == 4

    def test_unit_store_allocates_without_fill(self):
        addrs = BASE + 8 * np.arange(8)
        ct = classify_trace(build(vload(addrs, write=True)), tiny_cfg())
        assert ct.rows["dram_reads"][0] == 0
        assert ct.rows["l2_hits"][0] == 1

    def test_indexed_store_miss_fetches_line(self):
        addrs = np.array([BASE])
        ct = classify_trace(
            build(vload(addrs, VMemPattern.INDEXED, write=True)), tiny_cfg()
        )
        assert ct.rows["dram_reads"][0] == 1

    def test_dirty_l1_line_recalled_on_vector_access(self):
        addrs = np.array([BASE])
        scalar_write = scalar_block(addrs, writes=True)
        ct = classify_trace(
            build(scalar_write, vload(BASE + 8 * np.arange(8))), tiny_cfg()
        )
        # the recalled dirty line makes the vector access an L2 hit
        assert ct.rows["l2_hits"][1] >= 1

    def test_varith_and_barrier_rows(self):
        arith = VectorInstr(op=VOpClass.ARITH, vl=8, opcode="vfadd")
        ct = classify_trace(build(arith, Barrier()), tiny_cfg())
        assert ct.rows["kind"][0] == KIND_VARITH
        assert ct.rows["kind"][1] == KIND_BARRIER

    def test_dep_and_scalar_dest_propagate(self):
        arith = VectorInstr(op=VOpClass.REDUCE, vl=8, opcode="vfredsum",
                            dep=0, scalar_dest=True)
        filler = VectorInstr(op=VOpClass.ARITH, vl=8, opcode="vfadd")
        ct = classify_trace(build(filler, arith), tiny_cfg())
        assert ct.rows["dep"][1] == 0
        assert ct.rows["scalar_dest"][1] == 1
        assert ct.rows["dep"][0] == -1


class TestCoalesceLines:
    def test_unit_consecutive_dupes_dropped(self):
        addrs = np.array([0, 8, 16, 64, 72], dtype=np.int64)
        lines = _coalesce_lines(addrs, VMemPattern.UNIT, True)
        assert list(lines) == [0, 1]

    def test_indexed_keeps_first_touch_order(self):
        addrs = np.array([128, 0, 64, 0, 128], dtype=np.int64)
        lines = _coalesce_lines(addrs, VMemPattern.INDEXED, True)
        assert list(lines) == [2, 0, 1]

    def test_empty(self):
        lines = _coalesce_lines(np.empty(0, dtype=np.int64),
                                VMemPattern.UNIT, True)
        assert lines.shape == (0,)


class TestTotals:
    def test_totals_aggregate(self):
        addrs = BASE + 8 * np.arange(8)
        ct = classify_trace(build(vload(addrs), vload(addrs)), tiny_cfg())
        assert ct.totals["dram_reads"] == 1
        assert ct.totals["l2_hits"] == 1
        assert ct.dram_transactions == 1
        assert ct.dram_bytes == 64

    def test_classification_independent_of_knobs(self):
        addrs = BASE + 8 * np.arange(64)
        trace = build(vload(addrs))
        a = classify_trace(trace, tiny_cfg())
        cfg2 = tiny_cfg().with_extra_latency(512).with_bandwidth(2)
        b = classify_trace(trace, cfg2)
        assert (a.rows["dram_reads"] == b.rows["dram_reads"]).all()
        assert (a.rows["l2_hits"] == b.rows["l2_hits"]).all()


class TestPrefetcher:
    def _stream_cfg(self, depth):
        return SdvConfig(
            core=CoreConfig(l1d_bytes=4096, l1d_ways=4,
                            l1_prefetch_depth=depth),
            l2=L2Config(banks=4, bank_bytes=16 * 1024, ways=4),
        ).validate()

    def test_prefetch_converts_stream_misses_to_l1_hits(self):
        addrs = BASE + 8 * np.arange(256)  # 32 sequential lines
        off = classify_trace(build(scalar_block(addrs)), self._stream_cfg(0))
        on = classify_trace(build(scalar_block(addrs)), self._stream_cfg(2))
        assert on.rows["l1_hits"][0] > off.rows["l1_hits"][0]
        assert on.rows["dram_reads"][0] < off.rows["dram_reads"][0]

    def test_prefetch_traffic_accounted_separately(self):
        addrs = BASE + 8 * np.arange(256)
        on = classify_trace(build(scalar_block(addrs)), self._stream_cfg(2))
        # demand + prefetch fills together still cover all 32 lines
        assert (on.rows["dram_reads"][0] + on.rows["pf_dram_reads"][0]
                >= 32)
        assert on.rows["pf_dram_reads"][0] > 0

    def test_prefetch_useless_on_random_accesses(self):
        rng = np.random.default_rng(0)
        addrs = BASE + 8 * rng.integers(0, 1 << 14, 256)
        off = classify_trace(build(scalar_block(addrs)), self._stream_cfg(0))
        on = classify_trace(build(scalar_block(addrs)), self._stream_cfg(2))
        # hit rate barely moves, but prefetch traffic is wasted bandwidth
        assert on.rows["l1_hits"][0] <= off.rows["l1_hits"][0] + 24
        assert on.rows["pf_dram_reads"][0] > 100

    def test_prefetch_depth_zero_emits_no_prefetch_traffic(self):
        addrs = BASE + 8 * np.arange(128)
        ct = classify_trace(build(scalar_block(addrs)), self._stream_cfg(0))
        assert ct.rows["pf_dram_reads"][0] == 0

    def test_prefetch_changes_geometry_key(self):
        from repro.soc import FpgaSdv
        a = FpgaSdv(self._stream_cfg(0))._geometry_key()
        b = FpgaSdv(self._stream_cfg(2))._geometry_key()
        assert a != b
