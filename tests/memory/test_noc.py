"""Unit tests for the 2x2 mesh NoC model."""

import pytest

from repro.config import NocConfig
from repro.errors import ConfigError
from repro.memory.noc import MeshNoc


def make(cols=2, rows=2, hop=4, inject=2):
    return MeshNoc(NocConfig(mesh_cols=cols, mesh_rows=rows,
                             hop_cycles=hop, inject_cycles=inject))


class TestTopology:
    def test_node_xy_row_major(self):
        noc = make()
        assert noc.node_xy(0) == (0, 0)
        assert noc.node_xy(1) == (1, 0)
        assert noc.node_xy(2) == (0, 1)
        assert noc.node_xy(3) == (1, 1)

    def test_node_out_of_range(self):
        with pytest.raises(ConfigError):
            make().node_xy(4)

    def test_hops_manhattan(self):
        noc = make()
        assert noc.hops(0, 0) == 0
        assert noc.hops(0, 1) == 1
        assert noc.hops(0, 2) == 1
        assert noc.hops(0, 3) == 2

    def test_hops_symmetric(self):
        noc = make(4, 4)
        for a in range(16):
            for b in range(16):
                assert noc.hops(a, b) == noc.hops(b, a)

    def test_bank_placement_2x2(self):
        noc = make()
        assert [noc.hops_to_bank(b, 4) for b in range(4)] == [0, 1, 1, 2]

    def test_too_many_banks_rejected(self):
        with pytest.raises(ConfigError):
            make().hops_to_bank(0, 5)

    def test_bank_out_of_range(self):
        with pytest.raises(ConfigError):
            make().hops_to_bank(4, 4)


class TestLatency:
    def test_one_way_latency(self):
        noc = make(hop=4, inject=2)
        assert noc.one_way_latency(0, 0) == 2
        assert noc.one_way_latency(0, 3) == 2 + 8

    def test_round_trip_latency(self):
        noc = make(hop=4, inject=2)
        assert noc.round_trip_latency(0, 4) == 4
        assert noc.round_trip_latency(3, 4) == 2 * (2 + 8)

    def test_bank_latencies_array(self):
        noc = make(hop=4, inject=2)
        lats = noc.bank_latencies(4)
        assert list(lats) == [4, 12, 12, 20]

    def test_avg_noc_hops_config_property(self):
        from repro.config import SdvConfig
        cfg = SdvConfig().validate()
        assert cfg.avg_noc_hops == pytest.approx(1.0)  # (0+1+1+2)/4
