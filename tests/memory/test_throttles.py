"""Unit + property tests for the Latency Controller and Bandwidth Limiter —
the paper's two Section 2.2/2.3 modules."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.memory.bandwidth_limiter import BandwidthLimiter
from repro.memory.latency_controller import LatencyController
from repro.util.units import LINE_BYTES


class TestLatencyController:
    def test_zero_by_default(self):
        lc = LatencyController()
        assert lc.delay(100.0) == 100.0

    def test_adds_configured_cycles(self):
        lc = LatencyController(32)
        assert lc.delay(100.0) == 132.0

    def test_runtime_reconfiguration(self):
        lc = LatencyController(0)
        lc.set_extra_cycles(1024)
        assert lc.extra_cycles == 1024
        assert lc.delay(0.0) == 1024.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            LatencyController(-1)

    def test_pipelined_no_serialization(self):
        # two back-to-back requests exit one cycle apart: delay only
        lc = LatencyController(500)
        assert lc.delay(11.0) - lc.delay(10.0) == 1.0

    @given(st.integers(0, 10_000), st.floats(0, 1e9))
    def test_property_exit_equals_entry_plus_extra(self, extra, t):
        lc = LatencyController(extra)
        assert lc.delay(t) == t + extra


class TestBandwidthLimiterConfig:
    def test_peak_is_64_bytes_per_cycle(self):
        bl = BandwidthLimiter(1, 1)
        assert bl.bytes_per_cycle == LINE_BYTES

    def test_paper_example_one_third(self):
        # Section 2.3: numerator 1, denominator 3 -> 33% of peak
        bl = BandwidthLimiter(1, 3)
        assert bl.requests_per_cycle == pytest.approx(1 / 3)
        assert bl.bytes_per_cycle == pytest.approx(LINE_BYTES / 3)

    def test_over_peak_rejected(self):
        with pytest.raises(ConfigError):
            BandwidthLimiter(2, 1)

    def test_zero_terms_rejected(self):
        with pytest.raises(ConfigError):
            BandwidthLimiter(0, 1)
        with pytest.raises(ConfigError):
            BandwidthLimiter(1, 0)

    def test_runtime_reconfiguration(self):
        bl = BandwidthLimiter(1, 1)
        bl.set_fraction(1, 4)
        assert bl.fraction == (1, 4)


class TestBandwidthLimiterAdmission:
    def test_peak_admits_every_cycle(self):
        bl = BandwidthLimiter(1, 1)
        assert [bl.admit(t) for t in (0, 1, 2)] == [0.0, 1.0, 2.0]

    def test_one_third_window_spacing(self):
        bl = BandwidthLimiter(1, 3)
        # 4 requests all arriving at t=0: windows [0,3),[3,6),[6,9),[9,12)
        assert [bl.admit(0) for _ in range(4)] == [0.0, 3.0, 6.0, 9.0]

    def test_quota_recovers_after_idle(self):
        bl = BandwidthLimiter(1, 4)
        assert bl.admit(0) == 0.0
        assert bl.admit(100) == 100.0  # new window, fresh quota

    def test_multi_request_window(self):
        bl = BandwidthLimiter(2, 4)
        # two requests fit in the first window, third slips to the next
        assert bl.admit(0) == 0.0
        assert bl.admit(0) == 0.0
        assert bl.admit(0) == 4.0

    def test_reset(self):
        bl = BandwidthLimiter(1, 8)
        bl.admit(0)
        bl.reset()
        assert bl.admit(0) == 0.0

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(1, 4), st.integers(1, 8),
        st.lists(st.integers(0, 50), min_size=1, max_size=60),
    )
    def test_property_window_quota_never_exceeded(self, num, den, gaps):
        num = min(num, den)
        bl = BandwidthLimiter(num, den)
        t = 0
        admissions = []
        for gap in gaps:
            t += gap
            admissions.append(bl.admit(t))
        # monotone, never before arrival
        t = 0
        for gap, a in zip(gaps, admissions):
            t += gap
            assert a >= t
        assert admissions == sorted(admissions)
        # count per window respects num
        from collections import Counter
        per_window = Counter(int(a) // den for a in admissions)
        assert max(per_window.values()) <= num


class TestClosedForms:
    def test_min_cycles_for_requests(self):
        bl = BandwidthLimiter(1, 3)
        assert bl.min_cycles_for_requests(0) == 0.0
        assert bl.min_cycles_for_requests(1) == 1.0
        assert bl.min_cycles_for_requests(4) == 10.0

    def test_min_cycles_for_bytes_rounds_to_lines(self):
        bl = BandwidthLimiter(1, 1)
        assert bl.min_cycles_for_bytes(1) == bl.min_cycles_for_requests(1)
        assert bl.min_cycles_for_bytes(65) == bl.min_cycles_for_requests(2)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 4), st.integers(1, 8), st.integers(1, 100))
    def test_property_closed_form_is_lower_bound_of_admission(self, num, den, n):
        num = min(num, den)
        bl = BandwidthLimiter(num, den)
        last = 0.0
        for _ in range(n):
            last = bl.admit(0)
        elapsed = last + 1  # the last request occupies its cycle
        assert bl.min_cycles_for_requests(n) <= elapsed
