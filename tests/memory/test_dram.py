"""Unit tests for the DRAM model with composed throttle modules."""

import pytest

from repro.config import MemConfig, bw_fraction_for_bytes_per_cycle
from repro.errors import ConfigError
from repro.memory.dram import DramModel


class TestService:
    def test_unthrottled_latency(self):
        d = DramModel(MemConfig(dram_service_cycles=30))
        assert d.service(0.0) == 30.0

    def test_extra_latency_added(self):
        d = DramModel(MemConfig(dram_service_cycles=30,
                                extra_latency_cycles=100))
        assert d.service(0.0) == 130.0
        assert d.unloaded_latency == 130

    def test_bandwidth_throttling_spaces_requests(self):
        d = DramModel(MemConfig(dram_service_cycles=30, bw_num=1, bw_den=4))
        first = d.service(0.0)
        second = d.service(0.0)
        assert second - first == 4.0

    def test_stats(self):
        d = DramModel(MemConfig())
        d.service(0.0)
        d.service(1.0, write=True)
        assert d.stats.reads == 1
        assert d.stats.writes == 1
        assert d.stats.transactions == 2
        assert d.stats.bytes_moved == 128

    def test_reset(self):
        d = DramModel(MemConfig(bw_num=1, bw_den=8))
        d.service(0.0)
        d.reset()
        assert d.stats.transactions == 0
        assert d.service(0.0) == d.unloaded_latency

    def test_latency_is_pipelined_with_bandwidth(self):
        # latency controller adds delay AFTER admission, so two admitted
        # requests keep their window spacing
        d = DramModel(MemConfig(dram_service_cycles=10,
                                extra_latency_cycles=1000,
                                bw_num=1, bw_den=2))
        a = d.service(0.0)
        b = d.service(0.0)
        assert b - a == 2.0


class TestBwFractionHelper:
    def test_known_values(self):
        assert bw_fraction_for_bytes_per_cycle(64) == (1, 1)
        assert bw_fraction_for_bytes_per_cycle(32) == (1, 2)
        assert bw_fraction_for_bytes_per_cycle(8) == (1, 8)
        assert bw_fraction_for_bytes_per_cycle(1) == (1, 64)

    def test_invalid_target(self):
        with pytest.raises(ConfigError):
            bw_fraction_for_bytes_per_cycle(3)
        with pytest.raises(ConfigError):
            bw_fraction_for_bytes_per_cycle(0)

    def test_config_roundtrip(self):
        cfg = MemConfig(bw_num=1, bw_den=2)
        assert cfg.bytes_per_cycle_limit == 32.0
