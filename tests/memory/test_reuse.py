"""Tests for reuse-distance analysis, cross-validated against the cache
simulator at full associativity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import SetAssocCache
from repro.memory.reuse import (
    INFINITE,
    ReuseProfile,
    line_stream,
    profile_trace,
    reuse_distances,
)
from repro.util.units import LINE_BYTES


class TestReuseDistances:
    def test_first_touches_are_infinite(self):
        d = reuse_distances(np.array([1, 2, 3]))
        assert list(d) == [INFINITE] * 3

    def test_immediate_reuse_is_zero(self):
        d = reuse_distances(np.array([7, 7]))
        assert d[1] == 0

    def test_textbook_example(self):
        # stream: a b c b a — distances: inf inf inf 1 2
        d = reuse_distances(np.array([0, 1, 2, 1, 0]))
        assert list(d) == [INFINITE, INFINITE, INFINITE, 1, 2]

    def test_repeated_scan(self):
        # two passes over 4 lines: second pass all distance 3
        stream = np.tile(np.arange(4), 2)
        d = reuse_distances(stream)
        assert list(d[4:]) == [3, 3, 3, 3]

    def test_duplicate_between_does_not_double_count(self):
        # a b b a: distinct lines between the two a's is 1, not 2
        d = reuse_distances(np.array([0, 1, 1, 0]))
        assert d[3] == 1

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=200))
    def test_property_matches_fully_associative_lru(self, lines):
        """Access hits an LRU cache of C lines iff distance < C — checked
        against the real cache model for several C."""
        lines = np.asarray(lines, dtype=np.int64)
        d = reuse_distances(lines)
        for c in (1, 2, 4, 8, 32):
            cache = SetAssocCache(c * LINE_BYTES, c)  # 1 set, c ways: full LRU
            hits_sim = np.array(
                [cache.access_line(int(l))[0] for l in lines])
            hits_pred = (d != INFINITE) & (d < c)
            assert (hits_sim == hits_pred).all()


class TestReuseProfile:
    def _profile(self, lines):
        lines = np.asarray(lines, dtype=np.int64)
        return ReuseProfile(distances=reuse_distances(lines),
                            n_lines=len(np.unique(lines)))

    def test_compulsory_count(self):
        p = self._profile([0, 1, 0, 2, 1])
        assert p.compulsory == 3
        assert p.accesses == 5

    def test_miss_ratio_monotone_in_size(self):
        rng = np.random.default_rng(0)
        p = self._profile(rng.integers(0, 100, 2000))
        ratios = [p.miss_ratio(c) for c in (1, 4, 16, 64, 256)]
        assert all(a >= b for a, b in zip(ratios, ratios[1:]))

    def test_footprint(self):
        p = self._profile([5, 6, 5])
        assert p.footprint_bytes == 2 * LINE_BYTES

    def test_infinite_cache_leaves_compulsory_only(self):
        p = self._profile([0, 1, 0, 1, 2])
        assert p.miss_ratio(10 ** 6) == pytest.approx(3 / 5)

    def test_working_set_of_small_loop(self):
        # loop over 8 lines many times: 8-line cache captures it
        stream = np.tile(np.arange(8), 50)
        p = self._profile(stream)
        ws = p.working_set_bytes(target_hit_rate=0.9)
        assert ws == 8 * LINE_BYTES

    def test_miss_ratio_curve_keys(self):
        p = self._profile([0, 1, 0])
        curve = p.miss_ratio_curve([64, 1024])
        assert set(curve) == {64, 1024}


class TestTraceProfiles:
    def test_line_stream_combines_scalar_and_vector(self):
        from repro.isa import ScalarContext, VectorContext
        from repro.memory.address_space import MemoryImage
        from repro.trace.events import TraceBuffer
        mem = MemoryImage(1 << 20)
        trace = TraceBuffer()
        scl = ScalarContext(mem, trace)
        vec = VectorContext(mem, trace, max_vl=16)
        a = mem.alloc("x", np.arange(64, dtype=np.float64))
        scl.emit_block(a.addr(np.arange(8)), False, 0)  # line 0
        vec.vsetvl(16)
        vec.vle(a, 16)                                  # lines 2,3
        stream = line_stream(trace.seal())
        assert stream.shape[0] == 8 + 2

    def test_kernel_working_sets_ordered(self):
        """SpMV's footprint exceeds FFT's at comparable element counts —
        the sparse indices and x vector cost real bytes."""
        from repro.kernels import KERNELS
        from repro.soc import FpgaSdv
        from repro.workloads import get_scale
        scale = get_scale("smoke")
        profiles = {}
        for name in ("spmv", "fft"):
            spec = KERNELS[name]
            sess = FpgaSdv().session()
            spec.vector(sess, spec.prepare(scale, 7))
            profiles[name] = profile_trace(sess.seal())
        assert profiles["spmv"].footprint_bytes > 0
        assert profiles["fft"].footprint_bytes > 0

    def test_l2_hit_rate_prediction_close_to_classifier(self):
        """The reuse profile's prediction for the L2-sized cache should be
        in the neighbourhood of the real (set-associative, banked)
        classification — same workload, same stream."""
        from repro.config import SdvConfig
        from repro.kernels import KERNELS
        from repro.soc import FpgaSdv
        from repro.workloads import get_scale
        spec = KERNELS["fft"]
        sess = FpgaSdv().session()
        spec.vector(sess, spec.prepare(get_scale("smoke"), 7))
        trace = sess.seal()
        profile = profile_trace(trace)
        cfg = SdvConfig().validate()
        predicted_miss = profile.miss_ratio(cfg.l2.total_bytes // LINE_BYTES)
        ct = FpgaSdv().classify(trace)
        t = ct.totals
        vec_total = t["vector_line_reqs"]
        actual_miss = (t["dram_reads"]) / max(1, vec_total
                                              + t["scalar_mem_ops"])
        assert predicted_miss == pytest.approx(actual_miss, abs=0.15)


class TestPerSetDistances:
    """set_mask partitioning — the classifier's set-associative view."""

    def test_single_set_mask_matches_plain(self):
        lines = np.array([0, 1, 2, 1, 0, 3, 0])
        assert np.array_equal(reuse_distances(lines, set_mask=0),
                              reuse_distances(lines))

    def test_partition_isolates_sets(self):
        # even/odd lines never interfere with a 2-set mask
        lines = np.array([0, 1, 0, 1])
        d = reuse_distances(lines, set_mask=1)
        assert list(d) == [INFINITE, INFINITE, 0, 0]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 60), min_size=1, max_size=300),
           st.sampled_from([(1, 4), (4, 2), (8, 4), (16, 1)]))
    def test_property_predicts_set_assoc_lru(self, lines, geom):
        """A W-way set-assoc LRU cache hits iff the per-set distance is
        < W — the same correspondence the plain histogram has for
        fully-associative caches."""
        n_sets, ways = geom
        lines = np.asarray(lines, dtype=np.int64)
        cache = SetAssocCache(n_sets * ways * LINE_BYTES, ways)
        assert cache.n_sets == n_sets
        hits_sim = np.array(
            [cache.access_line(int(l))[0] for l in lines])
        d = reuse_distances(lines, set_mask=n_sets - 1)
        hits_pred = (d != INFINITE) & (d < ways)
        assert np.array_equal(hits_sim, hits_pred)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 40), min_size=0, max_size=200))
    def test_property_curve_matches_direct_recount(self, lines):
        """The bisection-based curve equals the definitional per-size
        recount over the raw distance array."""
        d = reuse_distances(np.asarray(lines, dtype=np.int64))
        p = ReuseProfile(distances=d, n_lines=len(set(lines)))
        sizes = [LINE_BYTES, 4 * LINE_BYTES, 32 * LINE_BYTES]
        curve = p.miss_ratio_curve(sizes)
        for s in sizes:
            c = max(1, s // LINE_BYTES)
            if p.accesses == 0:
                assert curve[s] == 0.0
            else:
                direct = ((d == INFINITE) | (d >= c)).sum() / p.accesses
                assert curve[s] == pytest.approx(direct)
