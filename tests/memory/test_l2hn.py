"""Unit tests for the banked shared L2 + MESI home node."""

import numpy as np
import pytest

from repro.config import L2Config
from repro.memory.l2hn import L2HomeNode, MesiState


def make(banks=4, bank_bytes=16 * 1024, ways=4):
    return L2HomeNode(L2Config(banks=banks, bank_bytes=bank_bytes, ways=ways))


class TestBankMapping:
    def test_line_interleaving(self):
        l2 = make()
        assert [l2.bank_of_line(i) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_addr_mapping_uses_line_bits(self):
        l2 = make()
        assert l2.bank_of_addr(0x00) == 0
        assert l2.bank_of_addr(0x40) == 1
        assert l2.bank_of_addr(0x3F) == 0  # same line as 0x00

    def test_vectorized_mapping(self):
        l2 = make()
        lines = np.arange(16)
        assert (l2.banks_of_lines(lines) == lines % 4).all()

    def test_balanced_for_sequential_stream(self):
        l2 = make()
        for line in range(400):
            l2.access_line(line)
        assert l2.stats.bank_imbalance() == pytest.approx(1.0)


class TestCacheBehaviour:
    def test_miss_then_hit(self):
        l2 = make()
        hit, _ = l2.access_line(10)
        assert not hit
        hit, _ = l2.access_line(10)
        assert hit

    def test_dirty_eviction_to_dram(self):
        l2 = make(banks=1, bank_bytes=64, ways=1)  # single line capacity
        l2.access_line(0, write=True)
        hit, victim = l2.access_line(1)
        assert not hit and victim == 0

    def test_writeback_line_installs_without_fill(self):
        l2 = make()
        before = l2.cache_stats.accesses
        assert l2.writeback_line(7) is None
        assert l2.cache_stats.accesses == before
        hit, _ = l2.access_line(7)
        assert hit

    def test_writeback_line_can_evict_dirty(self):
        l2 = make(banks=1, bank_bytes=64, ways=1)
        l2.writeback_line(0)
        victim = l2.writeback_line(1)
        assert victim == 0

    def test_flush(self):
        l2 = make()
        l2.access_line(0, write=True)
        assert l2.flush() == 1
        hit, _ = l2.access_line(0)
        assert not hit

    def test_aggregate_stats(self):
        l2 = make()
        for line in range(8):
            l2.access_line(line)
        for line in range(8):
            l2.access_line(line)
        s = l2.cache_stats
        assert s.accesses == 16 and s.hits == 8 and s.misses == 8


class TestDirectory:
    def test_read_installs_exclusive(self):
        l2 = make()
        l2.access_line(3)
        assert l2.directory_state(3) is MesiState.EXCLUSIVE

    def test_write_upgrades_to_modified(self):
        l2 = make()
        l2.access_line(3)
        l2.access_line(3, write=True)
        assert l2.directory_state(3) is MesiState.MODIFIED

    def test_untouched_is_invalid(self):
        l2 = make()
        assert l2.directory_state(99) is MesiState.INVALID

    def test_eviction_invalidates_directory(self):
        l2 = make(banks=1, bank_bytes=64, ways=1)
        l2.access_line(0)
        l2.access_line(1)  # evicts 0
        assert l2.directory_state(0) is MesiState.INVALID

    def test_single_agent_invariant_holds(self):
        l2 = make()
        for line in range(32):
            l2.access_line(line, write=(line % 2 == 0))
        l2.validate_single_agent_invariant()

    def test_transitions_counted(self):
        l2 = make()
        l2.access_line(0)
        l2.access_line(0, write=True)
        assert l2.stats.directory_transitions >= 2
