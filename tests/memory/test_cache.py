"""Unit + property tests for the set-associative LRU cache model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.memory.cache import SetAssocCache


def make(size=4096, ways=4, line=64):
    return SetAssocCache(size, ways, line_bytes=line, name="t")


class TestGeometry:
    def test_set_count(self):
        c = make(4096, 4, 64)
        assert c.n_sets == 16

    def test_bad_size_rejected(self):
        with pytest.raises(ConfigError):
            SetAssocCache(1000, 4)

    def test_bad_ways_rejected(self):
        with pytest.raises(ConfigError):
            SetAssocCache(4096, 0)

    def test_non_pow2_sets_rejected(self):
        with pytest.raises(ConfigError):
            SetAssocCache(3 * 64 * 2, 2)

    def test_non_pow2_line_rejected(self):
        with pytest.raises(ConfigError):
            SetAssocCache(4096, 4, line_bytes=48)


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        c = make()
        hit, victim, dirty = c.access(0x1000)
        assert not hit and victim is None and not dirty
        hit, _, _ = c.access(0x1000)
        assert hit

    def test_same_line_different_bytes_hit(self):
        c = make()
        c.access(0x1000)
        hit, _, _ = c.access(0x103F)
        assert hit

    def test_adjacent_lines_are_different(self):
        c = make()
        c.access(0x1000)
        hit, _, _ = c.access(0x1040)
        assert not hit

    def test_lru_eviction_order(self):
        c = make(size=4 * 64, ways=4, line=64)  # 1 set, 4 ways
        for line in range(4):
            c.access_line(line)
        c.access_line(0)        # 0 becomes MRU; LRU is now 1
        c.access_line(4)        # evicts 1
        assert c.access_line(0)[0]      # still resident
        assert not c.access_line(1)[0]  # was evicted

    def test_dirty_eviction_reports_victim(self):
        c = make(size=1 * 64, ways=1, line=64)  # direct-mapped single set
        c.access_line(0, write=True)
        hit, victim, dirty = c.access_line(1)
        assert not hit and victim == 0 and dirty

    def test_clean_eviction_reports_clean_victim(self):
        c = make(size=1 * 64, ways=1, line=64)
        c.access_line(0)
        hit, victim, dirty = c.access_line(1)
        assert not hit and victim == 0 and not dirty

    def test_write_marks_dirty_later(self):
        c = make(size=1 * 64, ways=1, line=64)
        c.access_line(0)               # clean fill
        c.access_line(0, write=True)   # dirty it
        _, victim, dirty = c.access_line(1)
        assert victim == 0 and dirty

    def test_stats_counting(self):
        c = make()
        c.access_line(0)
        c.access_line(0)
        c.access_line(0, write=True)
        assert c.stats.accesses == 3
        assert c.stats.hits == 2
        assert c.stats.misses == 1
        assert c.stats.write_accesses == 1
        assert c.stats.hit_rate == pytest.approx(2 / 3)

    def test_flush_returns_dirty_count_and_empties(self):
        c = make()
        c.access_line(0, write=True)
        c.access_line(1)
        assert c.flush() == 1
        assert c.resident_lines == 0
        assert not c.access_line(0)[0]

    def test_contains_and_invalidate(self):
        c = make()
        c.access_line(5, write=True)
        assert c.contains_line(5)
        assert c.invalidate_line(5) is True       # dirty
        assert not c.contains_line(5)
        assert c.invalidate_line(5) is False      # already gone

    def test_install_line_no_access_count(self):
        c = make()
        before = c.stats.accesses
        c.install_line(3, dirty=True)
        assert c.stats.accesses == before
        assert c.contains_line(3)

    def test_install_line_eviction(self):
        c = make(size=1 * 64, ways=1, line=64)
        c.install_line(0, dirty=True)
        victim, dirty = c.install_line(1, dirty=True)
        assert victim == 0 and dirty


class TestBatch:
    def test_access_lines_matches_singles(self):
        lines = np.array([0, 1, 0, 2, 1, 64, 0], dtype=np.int64)
        c1, c2 = make(), make()
        hits1 = np.array([c1.access_line(int(l))[0] for l in lines])
        hits2, _ = c2.access_lines(lines)
        assert (hits1 == hits2).all()

    def test_access_lines_writes_broadcast(self):
        c = make(size=64, ways=1)
        hits, wbs = c.access_lines(np.array([0, 1]), writes=True)
        assert not hits.any()
        assert wbs[1]  # second access evicted dirty line 0

    def test_sequential_stream_hits_within_line(self):
        c = make()
        addrs = np.arange(0, 1024, 8)  # byte addresses, 8 per line
        lines = addrs >> 6
        hits, _ = c.access_lines(lines)
        assert hits.sum() == len(addrs) - len(np.unique(lines))


class _RefLru:
    """Reference fully-explicit LRU model for property testing."""

    def __init__(self, sets, ways):
        self.sets = sets
        self.ways = ways
        self.state = [[] for _ in range(sets)]

    def access(self, line):
        s = self.state[line % self.sets]
        hit = line in s
        if hit:
            s.remove(line)
        s.insert(0, line)
        if len(s) > self.ways:
            s.pop()
        return hit


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 63), min_size=1, max_size=300),
       st.sampled_from([1, 2, 4, 8]))
def test_property_matches_reference_lru(lines, ways):
    sets = 4
    cache = SetAssocCache(sets * ways * 64, ways)
    assert cache.n_sets == sets
    ref = _RefLru(sets, ways)
    for line in lines:
        got, _, _ = cache.access_line(line)
        want = ref.access(line)
        assert got == want


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 1023), min_size=1, max_size=500))
def test_property_resident_never_exceeds_capacity(lines):
    cache = make(size=2048, ways=2)
    for line in lines:
        cache.access_line(line)
    assert cache.resident_lines <= cache.n_sets * cache.ways


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 255), st.booleans()),
                min_size=1, max_size=300))
def test_property_stats_balance(ops):
    cache = make()
    for line, write in ops:
        cache.access_line(line, write=write)
    s = cache.stats
    assert s.hits + s.misses == s.accesses == len(ops)
    assert s.writebacks <= s.write_accesses


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_property_batch_kernel_matches_scalar_reference(data):
    """Long access_lines batches run the per-set stack-distance kernel;
    they must be bit-identical to looping access_line — per-access hits
    and writebacks, final tag/dirty state, and stats — including when
    batches interleave with scalar accesses that carry state across."""
    ways = data.draw(st.sampled_from([1, 2, 4, 8]))
    sets = data.draw(st.sampled_from([2, 4, 8]))
    ref = SetAssocCache(sets * ways * 64, ways)
    vec = SetAssocCache(sets * ways * 64, ways)
    floor = SetAssocCache._BATCH_MIN
    for _phase in range(data.draw(st.integers(1, 3))):
        n = data.draw(st.integers(floor, floor + 200))
        lines = np.asarray(
            data.draw(st.lists(st.integers(0, 100),
                               min_size=n, max_size=n)), dtype=np.int64)
        writes = np.asarray(
            data.draw(st.lists(st.booleans(), min_size=n, max_size=n)))
        want_h = np.empty(n, dtype=bool)
        want_w = np.empty(n, dtype=bool)
        for i in range(n):
            h, _v, d = ref.access_line(int(lines[i]), write=bool(writes[i]))
            want_h[i] = h
            want_w[i] = d
        got_h, got_w = vec.access_lines(lines, writes)
        assert np.array_equal(got_h, want_h)
        assert np.array_equal(got_w, want_w)
        # a few scalar accesses in between: state must round-trip
        for line in data.draw(st.lists(st.integers(0, 100), max_size=5)):
            assert (vec.access_line(line, write=True)
                    == ref.access_line(line, write=True))
    for a, b in zip(ref._sets, vec._sets):
        assert a.tags == b.tags and a.dirty == b.dirty
    assert ref.stats == vec.stats
