"""Equality suite for the vectorized classification engine.

The stack-distance engine (:func:`repro.memory.classify_fast.
classify_trace_fast`) must be **bit-identical** to the sequential walker
(:func:`repro.memory.classify.classify_trace`) — rows, per-record level
arrays and totals — on every trace and every cache geometry. These tests
pin that down three ways: a kernel x VL grid on real generated traces, a
directed geometry/feature ablation grid on random traces, and a
Hypothesis property suite on adversarial access streams.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CoreConfig, L2Config, SdvConfig, VpuConfig
from repro.errors import ConfigError, TraceError
from repro.memory.classify import classify_trace
from repro.memory.classify_fast import (
    CLASSIFIERS,
    classify_trace_fast,
    default_classifier,
    first_touch_mask,
    pack_levels,
    prev_occurrence,
    set_default_classifier,
    unpack_levels,
)
from repro.trace.events import (
    ScalarBlock,
    TraceBuffer,
    VectorInstr,
    VMemPattern,
    VOpClass,
)

BASE = 0x10000


def tiny_cfg(**vpu_kwargs) -> SdvConfig:
    return SdvConfig(
        core=CoreConfig(l1d_bytes=4096, l1d_ways=4),
        l2=L2Config(banks=4, bank_bytes=16 * 1024, ways=4),
        vpu=VpuConfig(**vpu_kwargs),
    ).validate()


def assert_identical(a, b):
    """rows, levels and totals all bit-identical."""
    assert np.array_equal(a.rows, b.rows)
    assert len(a.levels) == len(b.levels)
    for x, y in zip(a.levels, b.levels):
        assert (x is None) == (y is None)
        if x is not None:
            assert np.array_equal(x, y)
    assert a.totals == b.totals


def rand_trace(rng, n_rec, vl) -> TraceBuffer:
    """Random mixed scalar/vector trace exercising every pattern."""
    tb = TraceBuffer()
    for _ in range(n_rec):
        if rng.random() < 0.45:
            k = int(rng.integers(1, 12))
            addrs = (rng.integers(0, 1 << 14, size=k)) * 8
            writes = rng.random(k) < 0.35
            tb.append(ScalarBlock(n_alu_ops=0,
                                  mem_addrs=addrs.astype(np.int64),
                                  mem_is_write=writes))
        else:
            pat = [VMemPattern.UNIT, VMemPattern.STRIDED,
                   VMemPattern.INDEXED][int(rng.integers(0, 3))]
            base = int(rng.integers(0, 1 << 12)) * 8
            k = int(rng.integers(1, vl + 1))
            if pat == VMemPattern.UNIT:
                addrs = base + 8 * np.arange(k)
            elif pat == VMemPattern.STRIDED:
                addrs = base + int(rng.integers(1, 9)) * 8 * np.arange(k)
            else:
                addrs = (rng.integers(0, 1 << 12, size=k)) * 8
            w = bool(rng.random() < 0.4)
            tb.append(VectorInstr(op=VOpClass.MEM, vl=k,
                                  opcode="vse" if w else "vle", pattern=pat,
                                  addrs=addrs.astype(np.int64), is_write=w))
    return tb.seal()


class TestKernelGrid:
    """Real generated traces: every kernel, scalar + two VLs."""

    @pytest.mark.parametrize("kernel", ["spmv", "bfs", "pagerank", "fft"])
    @pytest.mark.parametrize("vl", [None, 64, 256])
    def test_bit_identical_on_kernel_traces(self, kernel, vl):
        from repro.core.sweeps import run_implementation
        from repro.kernels import KERNELS
        from repro.workloads import get_scale

        spec = KERNELS[kernel]
        workload = spec.prepare(get_scale("smoke"), 7)
        _sdv, trace = run_implementation(spec, workload, vl, verify=False,
                                         reference=None, trace_cache=None)
        cfg = SdvConfig().validate()
        assert_identical(classify_trace(trace, cfg),
                         classify_trace_fast(trace, cfg))


class TestAblationGrid:
    """Random traces across geometry / prefetch / coalescing ablations."""

    @pytest.mark.parametrize("depth", [0, 1, 2])
    @pytest.mark.parametrize("coalesce", [True, False])
    def test_prefetch_and_coalescing(self, depth, coalesce):
        cfg = SdvConfig(
            core=CoreConfig(l1d_bytes=4096, l1d_ways=4,
                            l1_prefetch_depth=depth),
            l2=L2Config(banks=4, bank_bytes=16 * 1024, ways=4),
            vpu=VpuConfig(coalesce_gathers=coalesce),
        ).validate()
        rng = np.random.default_rng(depth * 2 + coalesce)
        for _ in range(6):
            tr = rand_trace(rng, int(rng.integers(10, 80)), 32)
            assert_identical(classify_trace(tr, cfg),
                             classify_trace_fast(tr, cfg))

    @pytest.mark.parametrize("l1_bytes,l1_ways", [(4096, 2), (8192, 8)])
    @pytest.mark.parametrize("banks,bank_ways", [(1, 4), (4, 16)])
    def test_geometry_ablations(self, l1_bytes, l1_ways, banks, bank_ways):
        cfg = SdvConfig(
            core=CoreConfig(l1d_bytes=l1_bytes, l1d_ways=l1_ways),
            l2=L2Config(banks=banks, bank_bytes=64 * 1024, ways=bank_ways),
        ).validate()
        rng = np.random.default_rng(l1_bytes + l1_ways + banks + bank_ways)
        for _ in range(6):
            tr = rand_trace(rng, int(rng.integers(10, 80)),
                            int(rng.choice([8, 64])))
            assert_identical(classify_trace(tr, cfg),
                             classify_trace_fast(tr, cfg))


class TestPropertySuite:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_random_streams_identical(self, data):
        seed = data.draw(st.integers(0, 2**32 - 1))
        n_rec = data.draw(st.integers(1, 60))
        vl = data.draw(st.sampled_from([1, 8, 32, 64]))
        depth = data.draw(st.sampled_from([0, 2]))
        coalesce = data.draw(st.booleans())
        cfg = SdvConfig(
            core=CoreConfig(l1d_bytes=4096, l1d_ways=4,
                            l1_prefetch_depth=depth),
            l2=L2Config(banks=2, bank_bytes=16 * 1024, ways=4),
            vpu=VpuConfig(coalesce_gathers=coalesce),
        ).validate()
        tr = rand_trace(np.random.default_rng(seed), n_rec, vl)
        assert_identical(classify_trace(tr, cfg),
                         classify_trace_fast(tr, cfg))

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 40), max_size=120))
    def test_prev_occurrence_matches_dict_walk(self, vals):
        lines = np.asarray(vals, dtype=np.int64)
        prev = prev_occurrence(lines)
        last: dict[int, int] = {}
        for t, line in enumerate(vals):
            assert prev[t] == last.get(line, -1)
            last[line] = t
        assert np.array_equal(first_touch_mask(lines), prev < 0)


class TestSelector:
    def test_registry_has_both_engines(self):
        assert set(CLASSIFIERS) == {"stack", "walk"}
        assert default_classifier() in CLASSIFIERS

    def test_unknown_default_rejected(self):
        with pytest.raises(TraceError):
            set_default_classifier("bogus")

    def test_sdv_selector_and_cache_keying(self):
        from repro.soc import FpgaSdv

        tb = TraceBuffer()
        tb.append(ScalarBlock(n_alu_ops=0,
                              mem_addrs=np.array([BASE, BASE + 8, BASE]),
                              mem_is_write=np.zeros(3, dtype=bool)))
        trace = tb.seal()
        stack = FpgaSdv(classify="stack")
        walk = FpgaSdv(classify="walk")
        assert stack.classify_name == "stack"
        assert walk.classify_name == "walk"
        assert_identical(stack.classify(trace), walk.classify(trace))
        # each selector caches under its own key
        assert stack.has_classification(trace)
        assert walk.has_classification(trace)

    def test_unknown_selector_rejected(self):
        from repro.soc import FpgaSdv

        with pytest.raises(ConfigError):
            FpgaSdv(classify="bogus")

    def test_seed_classification_round_trip(self):
        from repro.soc import FpgaSdv

        tb = TraceBuffer()
        tb.append(ScalarBlock(n_alu_ops=0, mem_addrs=np.array([BASE]),
                              mem_is_write=np.zeros(1, dtype=bool)))
        trace = tb.seal()
        a = FpgaSdv()
        ct = a.classify(trace)
        # the cache lives on the trace, keyed by (engine, geometry): a
        # same-geometry peer already sees it ...
        assert FpgaSdv().has_classification(trace)
        # ... and a fresh trace object does not, until seeded
        tb2 = TraceBuffer()
        tb2.append(ScalarBlock(n_alu_ops=0, mem_addrs=np.array([BASE]),
                               mem_is_write=np.zeros(1, dtype=bool)))
        trace2 = tb2.seal()
        b = FpgaSdv()
        assert not b.has_classification(trace2)
        b.seed_classification(trace2, ct)
        assert b.has_classification(trace2)
        assert b.classify(trace2).totals == ct.totals


class TestLevelPacking:
    def test_round_trip(self):
        levels = [np.array([0, 1, 2], dtype=np.uint8), None,
                  np.zeros(0, dtype=np.uint8), np.array([3], dtype=np.uint8)]
        lens, flat = pack_levels(levels)
        assert lens.tolist() == [3, -1, 0, 1]
        back = unpack_levels(lens, flat)
        for x, y in zip(levels, back):
            assert (x is None) == (y is None)
            if x is not None:
                assert np.array_equal(x, y)

    def test_all_none(self):
        lens, flat = pack_levels([None, None])
        assert flat.shape == (0,)
        assert unpack_levels(lens, flat) == [None, None]

    def test_empty(self):
        lens, flat = pack_levels([])
        assert unpack_levels(lens, flat) == []
