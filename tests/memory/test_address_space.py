"""Unit tests for the simulated memory image and allocator."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import AccessError, AllocationError
from repro.memory.address_space import MemoryImage
from repro.util.units import LINE_BYTES


class TestAlloc:
    def test_alloc_by_shape(self):
        mem = MemoryImage(1 << 16)
        a = mem.alloc("x", 10, np.float64)
        assert a.nbytes == 80
        assert a.view.shape == (10,)
        assert a.view.dtype == np.float64

    def test_alloc_from_data_copies_values(self):
        mem = MemoryImage(1 << 16)
        data = np.arange(5, dtype=np.int64)
        a = mem.alloc("x", data)
        assert (a.view == data).all()

    def test_alloc_view_is_backed_by_image(self):
        mem = MemoryImage(1 << 16)
        a = mem.alloc("x", 4, np.float64)
        a.view[2] = 7.5
        b = mem["x"]
        assert b.view[2] == 7.5

    def test_line_alignment_default(self):
        mem = MemoryImage(1 << 16)
        a = mem.alloc("x", 3, np.float64)
        b = mem.alloc("y", 3, np.float64)
        assert a.base % LINE_BYTES == 0
        assert b.base % LINE_BYTES == 0

    def test_allocations_do_not_overlap(self):
        mem = MemoryImage(1 << 16)
        a = mem.alloc("x", 100, np.float64)
        b = mem.alloc("y", 100, np.float64)
        assert a.end <= b.base

    def test_duplicate_name_rejected(self):
        mem = MemoryImage(1 << 16)
        mem.alloc("x", 1, np.int64)
        with pytest.raises(AllocationError):
            mem.alloc("x", 1, np.int64)

    def test_exhaustion(self):
        mem = MemoryImage(1024)
        with pytest.raises(AllocationError):
            mem.alloc("big", 1 << 20, np.uint8)

    def test_dtype_required_for_shape(self):
        mem = MemoryImage(1024)
        with pytest.raises(AllocationError):
            mem.alloc("x", 4)

    def test_bad_alignment_rejected(self):
        mem = MemoryImage(1024)
        with pytest.raises(AllocationError):
            mem.alloc("x", 4, np.int64, align=3)

    def test_2d_shape(self):
        mem = MemoryImage(1 << 16)
        a = mem.alloc("m", (4, 8), np.float64)
        assert a.view.shape == (4, 8)
        assert a.nbytes == 4 * 8 * 8


class TestAddr:
    def test_scalar_addr(self):
        mem = MemoryImage(1 << 16)
        a = mem.alloc("x", 8, np.float64)
        assert a.addr(0) == a.base
        assert a.addr(3) == a.base + 24

    def test_vector_addr(self):
        mem = MemoryImage(1 << 16)
        a = mem.alloc("x", 8, np.float64)
        idx = np.array([0, 2, 7])
        assert (a.addr(idx) == a.base + idx * 8).all()

    def test_out_of_bounds_scalar(self):
        mem = MemoryImage(1 << 16)
        a = mem.alloc("x", 8, np.float64)
        with pytest.raises(AccessError):
            a.addr(8)

    def test_out_of_bounds_negative(self):
        mem = MemoryImage(1 << 16)
        a = mem.alloc("x", 8, np.float64)
        with pytest.raises(AccessError):
            a.addr(np.array([0, -1]))

    @given(st.integers(1, 256), st.integers(0, 255))
    def test_addr_always_inside_allocation(self, n, i):
        mem = MemoryImage(1 << 20)
        a = mem.alloc("x", max(n, i + 1), np.float64)
        addr = a.addr(i)
        assert a.base <= addr < a.end


class TestImage:
    def test_owner_of(self):
        mem = MemoryImage(1 << 16)
        a = mem.alloc("x", 8, np.float64)
        assert mem.owner_of(a.base + 8).name == "x"
        assert mem.owner_of(a.end + 1024) is None

    def test_contains(self):
        mem = MemoryImage(1 << 16)
        mem.alloc("x", 1, np.int64)
        assert "x" in mem and "y" not in mem

    def test_getitem_missing(self):
        mem = MemoryImage(1 << 16)
        with pytest.raises(AccessError):
            mem["nope"]

    def test_reset_clears_everything(self):
        mem = MemoryImage(1 << 16)
        a = mem.alloc("x", 4, np.float64)
        a.view[:] = 1.0
        mem.reset()
        assert "x" not in mem
        assert mem.used_bytes == 0
        b = mem.alloc("x", 4, np.float64)
        assert (b.view == 0).all()

    def test_check_addresses_in_range(self):
        mem = MemoryImage(1 << 16)
        a = mem.alloc("x", 8, np.float64)
        mem.check_addresses(np.array([a.base, a.end - 1]))

    def test_check_addresses_out_of_range(self):
        mem = MemoryImage(1 << 16)
        with pytest.raises(AccessError):
            mem.check_addresses(np.array([0]))

    def test_check_addresses_empty_ok(self):
        mem = MemoryImage(1 << 16)
        mem.check_addresses(np.empty(0, dtype=np.int64))

    def test_size_validation(self):
        with pytest.raises(AllocationError):
            MemoryImage(0)
