"""Shared fixtures.

Workload fixtures are session-scoped (generation is deterministic, and the
kernels never mutate their inputs); SDV fixtures are function-scoped since
tests reconfigure them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CoreConfig, L2Config, MemConfig, SdvConfig, VpuConfig
from repro.soc import FpgaSdv
from repro.workloads import get_scale
from repro.workloads.cage import scaled_cage_like
from repro.workloads.graphs import rmat_graph
from repro.workloads.signals import make_signal


@pytest.fixture
def sdv() -> FpgaSdv:
    """Default-configuration SDV."""
    return FpgaSdv()


@pytest.fixture
def tiny_config() -> SdvConfig:
    """A deliberately small machine: tiny caches so tests hit DRAM easily."""
    return SdvConfig(
        core=CoreConfig(l1d_bytes=4096, l1d_ways=4),
        l2=L2Config(banks=4, bank_bytes=16 * 1024, ways=4),
    ).validate()


@pytest.fixture(scope="session")
def smoke_scale():
    return get_scale("smoke")


@pytest.fixture(scope="session")
def small_matrix():
    """~400-row cage-profile CSR matrix."""
    return scaled_cage_like(384, seed=7)


@pytest.fixture(scope="session")
def small_graph():
    """2^8-node R-MAT graph."""
    return rmat_graph(2 ** 8, edge_factor=4, seed=11)


@pytest.fixture(scope="session")
def small_signal():
    """128-point complex signal."""
    return make_signal(128, kind="tones", seed=3)


@pytest.fixture(scope="session")
def x_vector(small_matrix):
    return np.linspace(0.5, 1.5, small_matrix.shape[0])
