"""Tests for the whole-study report generator."""

import pytest

from repro.core.suite import SuiteResult, render_report, run_suite


@pytest.fixture(scope="module")
def suite():
    return run_suite(scale_name="smoke", vls=(8, 256), kernels=["spmv",
                                                                "fft"])


class TestRunSuite:
    def test_covers_requested_kernels(self, suite):
        assert set(suite.latency) == {"spmv", "fft"}
        assert set(suite.bandwidth) == {"spmv", "fft"}

    def test_sweep_grids_complete(self, suite):
        from repro.core.sweeps import DEFAULT_BANDWIDTHS, DEFAULT_LATENCIES
        assert suite.latency["spmv"].points == list(DEFAULT_LATENCIES)
        assert suite.bandwidth["fft"].points == list(DEFAULT_BANDWIDTHS)

    def test_elapsed_recorded(self, suite):
        assert suite.elapsed_s > 0


class TestRenderReport:
    def test_contains_all_sections(self, suite):
        text = render_report(suite)
        for heading in ("# FPGA-SDV study report", "## Machine",
                        "## Headline numbers", "## Figure 3", "## Figure 4",
                        "## Figure 5", "## Plateau summary", "## Roofline",
                        "## Conclusions checked"):
            assert heading in text, heading

    def test_quotes_paper_values(self, suite):
        text = render_report(suite)
        assert "8.78x" in text  # the paper column of the headline table

    def test_skips_headline_without_spmv(self):
        s = run_suite(scale_name="smoke", vls=(8,), kernels=["fft"])
        text = render_report(s)
        assert "Headline numbers" not in text
        assert "Figure 3" in text


class TestCliReport:
    def test_end_to_end(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "r.md"
        rc = main(["report", "--kernel", "fft", "--scale", "smoke",
                   "--vls", "8", "--output", str(out)])
        assert rc == 0
        assert out.exists()
        assert "Figure 5" in out.read_text()
