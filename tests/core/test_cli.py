"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestInfo:
    def test_info_prints_machine(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "FPGA-SDV" in out
        assert "DRAM latency" in out


class TestFigures:
    def test_fig4_single_kernel(self, capsys):
        rc = main(["fig4", "--kernel", "fft", "--scale", "smoke",
                   "--vls", "8,64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "vl64" in out

    def test_fig3_csv_output(self, capsys):
        rc = main(["fig3", "--kernel", "fft", "--scale", "smoke",
                   "--vls", "8", "--csv"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("latency,scalar,vl8")

    def test_fig5(self, capsys):
        rc = main(["fig5", "--kernel", "fft", "--scale", "smoke",
                   "--vls", "8,64"])
        assert rc == 0
        assert "plateaus" in capsys.readouterr().out

    def test_headline(self, capsys):
        rc = main(["headline", "--scale", "smoke", "--vls", "256"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "measured" in out and "8.78x" in out

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig3", "--kernel", "nope", "--scale", "smoke"])

    def test_no_verify_flag(self, capsys):
        rc = main(["fig4", "--kernel", "fft", "--scale", "smoke",
                   "--vls", "8", "--no-verify"])
        assert rc == 0


class TestNewCommands:
    def test_fig3_plot_mode(self, capsys):
        rc = main(["fig3", "--kernel", "fft", "--scale", "smoke",
                   "--vls", "8,64", "--plot"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "log y" in out and "=scalar" in out

    def test_fig5_plot_mode(self, capsys):
        rc = main(["fig5", "--kernel", "fft", "--scale", "smoke",
                   "--vls", "8", "--plot", "--color"])
        assert rc == 0
        assert "t/t1" in capsys.readouterr().out

    def test_characterize(self, capsys):
        rc = main(["characterize", "--kernel", "spmv", "--scale", "smoke",
                   "--vls", "64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "AI (flop/B)" in out and "vl64" in out

    def test_validate(self, capsys):
        rc = main(["validate", "--kernel", "pagerank", "--scale", "smoke",
                   "--vls", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "all implementations verified" in out

    def test_probe(self, capsys):
        rc = main(["probe"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "triad" in out and "B/cycle" in out

    def test_probe_with_knobs(self, capsys):
        rc = main(["probe", "--max-vl", "8", "--extra-latency", "100",
                   "--bandwidth", "8"])
        assert rc == 0
        assert "max VL=8" in capsys.readouterr().out


class TestSweepInfraFlags:
    def test_engine_fast_matches_default_batch(self, capsys):
        args = ["fig3", "--kernel", "fft", "--scale", "smoke",
                "--vls", "8", "--csv"]
        assert main(args + ["--engine", "batch"]) == 0
        batch_out = capsys.readouterr().out
        assert main(args + ["--engine", "fast"]) == 0
        assert capsys.readouterr().out == batch_out

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig3", "--kernel", "fft", "--scale", "smoke",
                  "--engine", "warp"])

    def test_jobs_flag(self, capsys):
        rc = main(["fig5", "--kernel", "fft", "--scale", "smoke",
                   "--vls", "8", "--jobs", "2"])
        assert rc == 0
        assert "plateaus" in capsys.readouterr().out

    def test_trace_cache_flag(self, capsys, tmp_path):
        args = ["fig3", "--kernel", "fft", "--scale", "smoke",
                "--vls", "8", "--csv", "--trace-cache", str(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert list(tmp_path.glob("*.npz"))
        assert main(args) == 0  # second run re-times from the cache
        assert capsys.readouterr().out == first
