"""Unit tests for measurement containers."""

import pytest

from repro.core.measurements import Measurement, SweepResult


def meas(impl, lat=0, bpc=64, cycles=100.0):
    return Measurement(kernel="k", impl=impl, extra_latency=lat,
                       bandwidth_bpc=bpc, cycles=cycles)


class TestMeasurement:
    def test_scalar_properties(self):
        m = meas("scalar")
        assert m.is_scalar and m.vl is None

    def test_vector_properties(self):
        m = meas("vl128")
        assert not m.is_scalar and m.vl == 128


class TestSweepResult:
    @pytest.fixture
    def sweep(self):
        r = SweepResult(kernel="k", axis="latency", points=[0, 32],
                        impls=["scalar", "vl8"])
        r.add(meas("scalar", lat=0, cycles=100))
        r.add(meas("scalar", lat=32, cycles=150))
        r.add(meas("vl8", lat=0, cycles=50))
        r.add(meas("vl8", lat=32, cycles=60))
        return r

    def test_cycles_lookup(self, sweep):
        assert sweep.cycles("scalar", 32) == 150

    def test_missing_lookup(self, sweep):
        with pytest.raises(KeyError):
            sweep.cycles("vl256", 0)

    def test_series(self, sweep):
        assert sweep.series("scalar") == [100, 150]

    def test_normalized_series(self, sweep):
        assert sweep.normalized_series("scalar", baseline_point=0) == [1.0, 1.5]
        assert sweep.normalized_series("vl8", baseline_point=0) == [1.0, 1.2]

    def test_bandwidth_axis_keying(self):
        r = SweepResult(kernel="k", axis="bandwidth", points=[1, 64],
                        impls=["scalar"])
        r.add(meas("scalar", bpc=1, cycles=1000))
        r.add(meas("scalar", bpc=64, cycles=10))
        assert r.cycles("scalar", 1) == 1000
        assert r.cycles("scalar", 64) == 10

    def test_csv_shape(self, sweep):
        lines = sweep.to_csv().strip().splitlines()
        assert lines[0] == "latency,scalar,vl8"
        assert len(lines) == 3
        assert lines[1].startswith("0,100.0,50.0")


class TestJsonRoundtrip:
    def test_roundtrip(self):
        r = SweepResult(kernel="k", axis="latency", points=[0, 32],
                        impls=["scalar", "vl8"])
        r.add(meas("scalar", lat=0, cycles=100))
        r.add(meas("scalar", lat=32, cycles=150))
        r.add(meas("vl8", lat=0, cycles=50))
        r.add(meas("vl8", lat=32, cycles=60))
        back = SweepResult.from_json(r.to_json())
        assert back.kernel == "k"
        assert back.points == r.points
        for impl in r.impls:
            assert back.series(impl) == r.series(impl)

    def test_bandwidth_axis_keys(self):
        r = SweepResult(kernel="k", axis="bandwidth", points=[1, 64],
                        impls=["vl8"])
        r.add(meas("vl8", bpc=1, cycles=10))
        r.add(meas("vl8", bpc=64, cycles=5))
        back = SweepResult.from_json(r.to_json())
        assert back.cycles("vl8", 64) == 5

    def test_schema_checked(self):
        import json
        import pytest as _pytest
        with _pytest.raises(ValueError):
            SweepResult.from_json(json.dumps({"schema": "other/9"}))

    def test_real_sweep_roundtrips(self):
        from repro.core.sweeps import latency_sweep
        from repro.kernels import KERNELS
        from repro.workloads import get_scale
        spec = KERNELS["fft"]
        wl = spec.prepare(get_scale("smoke"), 3)
        r = latency_sweep(spec, wl, latencies=(0, 64), vls=(8,))
        back = SweepResult.from_json(r.to_json())
        from repro.core.figures import figure4_table
        assert figure4_table(back) == figure4_table(r)
