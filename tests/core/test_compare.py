"""Tests for the configuration-comparison ("what-if") tooling."""

import pytest

from repro.config import L2Config, SdvConfig, VpuConfig
from repro.core.compare import (
    ConfigComparison,
    WhatIf,
    compare_configs,
    compare_sweeps,
)
from repro.core.measurements import Measurement, SweepResult
from repro.errors import ReproError
from repro.kernels import KERNELS


def sweep(cycles_scale=1.0):
    r = SweepResult(kernel="k", axis="latency", points=[0, 32],
                    impls=["scalar"])
    for p, c in [(0, 100.0), (32, 200.0)]:
        r.add(Measurement(kernel="k", impl="scalar", extra_latency=p,
                          bandwidth_bpc=64, cycles=c * cycles_scale))
    return r


class TestCompareSweeps:
    def test_speedup_ratio(self):
        out = compare_sweeps(sweep(1.0), sweep(0.5))
        assert out["scalar"] == [2.0, 2.0]

    def test_grid_mismatch_rejected(self):
        a = sweep()
        b = SweepResult(kernel="k", axis="latency", points=[0],
                        impls=["scalar"])
        b.add(Measurement(kernel="k", impl="scalar", extra_latency=0,
                          bandwidth_bpc=64, cycles=1.0))
        with pytest.raises(ReproError):
            compare_sweeps(a, b)


class TestWhatIf:
    def test_vary_builds_valid_configs(self):
        cfgs = WhatIf().vary("vpu.lanes", [4, 16])
        assert [c.vpu.lanes for c in cfgs] == [4, 16]
        # the base is untouched
        assert SdvConfig().vpu.lanes == 8

    def test_vary_rejects_unknown_fields(self):
        with pytest.raises(ReproError):
            WhatIf().vary("vpu.flux_capacitor", [1])
        with pytest.raises(ReproError):
            WhatIf().vary("warp.lanes", [1])
        with pytest.raises(ReproError):
            WhatIf().vary("lanes", [1])

    def test_vary_validates_results(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            WhatIf().vary("vpu.max_vl", [7])

    def test_measure_runs_the_loop(self, smoke_scale):
        spec = KERNELS["fft"]
        wl = spec.prepare(smoke_scale, 3)
        out = WhatIf().measure("vpu.lanes", [4, 16], spec=spec, workload=wl)
        assert set(out) == {4, 16}
        assert out[16] < out[4]  # more lanes, fewer cycles

    def test_measure_custom_metric(self, smoke_scale):
        spec = KERNELS["fft"]
        wl = spec.prepare(smoke_scale, 3)
        out = WhatIf().measure("mem.dram_service_cycles", [10, 100],
                               spec=spec, workload=wl,
                               metric=lambda r: r.dram_reads)
        # traffic is latency-independent
        assert out[10] == out[100]


class TestCompareConfigs:
    def test_bigger_l2_helps_or_ties(self, smoke_scale):
        small = SdvConfig(
            l2=L2Config(banks=4, bank_bytes=16 * 1024, ways=4)).validate()
        big = SdvConfig().validate()
        cmp_ = compare_configs(
            small, big,
            kernels={"spmv": KERNELS["spmv"]},
            scale_name="smoke", vls=(256,),
        )
        assert cmp_.speedup("spmv", "vl256") >= 1.0

    def test_render_table(self, smoke_scale):
        a = SdvConfig().validate()
        b = SdvConfig(vpu=VpuConfig(lanes=16)).validate()
        cmp_ = compare_configs(a, b, kernels={"fft": KERNELS["fft"]},
                               scale_name="smoke", vls=(None, 256))
        out = cmp_.render()
        assert "fft" in out and "x" in out
        assert "vl256" in out

    def test_identity_comparison_is_all_ones(self, smoke_scale):
        cfg = SdvConfig().validate()
        cmp_ = compare_configs(cfg, cfg, kernels={"fft": KERNELS["fft"]},
                               scale_name="smoke", vls=(256,))
        assert cmp_.speedup("fft", "vl256") == pytest.approx(1.0)
