"""Tests for roofline characterization — including the paper's Section 3.1
claims about the kernels' characters."""

import numpy as np
import pytest

from repro.config import SdvConfig
from repro.core.analysis import (
    Characterization,
    characterize,
    count_fp_ops,
    peak_flops_per_cycle,
    roofline_bound,
    traffic_breakdown,
)
from repro.kernels import KERNELS
from repro.soc import FpgaSdv
from repro.workloads import get_scale


def run_and_characterize(kernel, impl="vector", vl=256):
    spec = KERNELS[kernel]
    wl = spec.prepare(get_scale("smoke"), 7)
    sdv = FpgaSdv()
    if impl == "vector":
        sdv.configure(max_vl=vl)
    sess = sdv.session()
    spec.build(impl)(sess, wl)
    trace = sess.seal()
    ct = sdv.classify(trace)
    report = sdv.time(trace)
    return characterize(ct, report, kernel=kernel, impl=impl)


class TestRooflineModel:
    def test_vpu_peak_is_lanes_fmas(self):
        cfg = SdvConfig().validate()
        assert peak_flops_per_cycle(cfg, vector=True) == 16.0

    def test_bound_is_min_of_roofs(self):
        cfg = SdvConfig().validate()
        # memory-bound region: low AI
        assert roofline_bound(cfg, 0.01, vector=True) == pytest.approx(0.64)
        # compute-bound region: high AI
        assert roofline_bound(cfg, 100.0, vector=True) == 16.0

    def test_bandwidth_knob_moves_the_roof(self):
        cfg = SdvConfig().with_bandwidth(1)
        assert roofline_bound(cfg, 1.0, vector=True) == pytest.approx(1.0)


class TestCharacterization:
    def test_properties(self):
        c = Characterization(kernel="k", impl="v", cycles=100.0,
                             fp_ops=200.0, dram_bytes=400.0,
                             l1_refs=1, l2_refs=2, dram_refs=3)
        assert c.arithmetic_intensity == 0.5
        assert c.flops_per_cycle == 2.0
        assert c.dram_bytes_per_cycle == 4.0

    def test_zero_traffic_is_infinite_ai(self):
        c = Characterization(kernel="k", impl="v", cycles=1.0, fp_ops=1.0,
                             dram_bytes=0.0, l1_refs=0, l2_refs=0,
                             dram_refs=0)
        assert c.arithmetic_intensity == float("inf")

    def test_achieved_below_roofline(self):
        """No run may beat the machine's roofline (sanity of the model)."""
        cfg = SdvConfig().validate()
        for kernel in KERNELS:
            c = run_and_characterize(kernel)
            bound = roofline_bound(cfg, c.arithmetic_intensity, vector=True)
            assert c.flops_per_cycle <= bound * 1.05, (kernel, c)


class TestPaperCharacterizations:
    """Section 3.1's qualitative descriptions, measured."""

    def test_spmv_is_memory_bound(self):
        c = run_and_characterize("spmv")
        assert c.arithmetic_intensity < 1.0  # well under the ridge point

    def test_pagerank_more_intense_than_bfs(self):
        pr = run_and_characterize("pagerank")
        bfs = run_and_characterize("bfs")
        assert pr.fp_ops > bfs.fp_ops

    def test_fft_most_arithmetically_intense(self):
        fft = run_and_characterize("fft")
        spmv = run_and_characterize("spmv")
        assert fft.arithmetic_intensity > spmv.arithmetic_intensity


class TestFpCounting:
    def test_fma_counts_double(self):
        from repro.isa import VectorContext, VReg
        from repro.memory.address_space import MemoryImage
        from repro.memory.classify import classify_trace
        from repro.trace.events import TraceBuffer

        mem = MemoryImage(1 << 16)
        trace = TraceBuffer()
        vec = VectorContext(mem, trace, max_vl=8)
        vec.vsetvl(8)
        a = vec.vfmv(1.0)
        vec.vfadd(a, 1.0)          # 8 flops
        vec.vfmacc(a, a, 2.0)      # 16 flops
        ct = classify_trace(trace.seal(), SdvConfig().validate())
        # vfmv contributes 8 as an ARITH op as well
        assert count_fp_ops(ct) == 8 + 8 + 16

    def test_integer_ops_do_not_count(self):
        from repro.isa import VectorContext
        from repro.memory.address_space import MemoryImage
        from repro.memory.classify import classify_trace
        from repro.trace.events import TraceBuffer

        mem = MemoryImage(1 << 16)
        trace = TraceBuffer()
        vec = VectorContext(mem, trace, max_vl=8)
        vec.vsetvl(8)
        v = vec.vid()
        vec.vadd(v, 1)
        vec.vsll(v, 2)
        ct = classify_trace(trace.seal(), SdvConfig().validate())
        assert count_fp_ops(ct) == 0


class TestTrafficBreakdown:
    def test_levels_sum_sensibly(self):
        spec = KERNELS["spmv"]
        wl = spec.prepare(get_scale("smoke"), 7)
        sdv = FpgaSdv()
        sess = sdv.session()
        spec.vector(sess, wl)
        ct = sdv.classify(sess.seal())
        t = traffic_breakdown(ct)
        assert t["dram_bytes"] > 0
        assert t["l2_bytes"] >= 0
        assert t["dram_bytes"] == ct.dram_bytes
