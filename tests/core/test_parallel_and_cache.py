"""Sweep-harness infrastructure: process fan-out + on-disk trace cache.

Covers the ``jobs=N`` worker-pool path (results identical to serial), the
``trace_cache=DIR`` path (a repeat run must not re-execute the kernel, and
an *edited* kernel must miss the cache), and the hoisted once-per-sweep
reference.
"""

import dataclasses

import pytest

import repro.core.parallel as parallel_mod
import repro.core.sweeps as sweeps_mod
from repro.core.parallel import (
    default_jobs,
    resolve_jobs,
    run_tasks,
    shutdown_pool,
)
from repro.core.sweeps import (
    bandwidth_sweep,
    latency_sweep,
    run_implementation,
    trace_cache_path,
    vl_sweep,
    workload_fingerprint,
)
from repro.kernels import KERNELS
from repro.soc import FpgaSdv
from repro.workloads import get_scale


def _square(x):
    return x * x


class TestRunTasks:
    def test_serial_matches_parallel(self):
        tasks = list(range(8))
        assert run_tasks(_square, tasks, jobs=1) == \
            run_tasks(_square, tasks, jobs=2) == [x * x for x in tasks]

    def test_resolve_jobs(self):
        assert resolve_jobs(0) == default_jobs()
        assert resolve_jobs(-3) == 1
        assert resolve_jobs(4) == 4

    def test_single_task_runs_inline(self):
        assert run_tasks(_square, [5], jobs=8) == [25]


def _init_marker(value):
    import os
    os.environ["_REPRO_TEST_POOL_INIT"] = value


def _read_marker(_):
    import os
    return os.environ.get("_REPRO_TEST_POOL_INIT")


class TestPersistentPool:
    def test_pool_survives_across_calls(self):
        shutdown_pool()
        try:
            run_tasks(_square, [1, 2, 3], jobs=2)
            first = parallel_mod._pool
            run_tasks(_square, [4, 5, 6], jobs=2)
            second = parallel_mod._pool
            if first is not None:  # pool came up on this platform
                assert second is first
        finally:
            shutdown_pool()
        assert parallel_mod._pool is None

    def test_pool_replaced_when_shape_changes(self):
        shutdown_pool()
        try:
            run_tasks(_square, [1, 2, 3], jobs=2)
            first = parallel_mod._pool
            run_tasks(_square, [1, 2, 3], jobs=3)
            second = parallel_mod._pool
            if first is not None and second is not None:
                assert second is not first
                assert second[0][0] == 3
        finally:
            shutdown_pool()

    def test_shape_change_waits_for_old_workers(self):
        # regression: the old pool was torn down with wait=False, leaving
        # orphaned workers that could race state the caller frees right
        # after (e.g. a shared-memory segment the sweep parent unlinks
        # while the orphan is still attaching it)
        shutdown_pool()
        calls = {}

        class _Recorder:
            def shutdown(self, wait=False, cancel_futures=False):
                calls["wait"] = wait
                calls["cancel_futures"] = cancel_futures

        parallel_mod._pool = ((99, None, ()), _Recorder())
        try:
            parallel_mod._get_pool(2, None, ())
            assert calls == {"wait": True, "cancel_futures": True}
        finally:
            shutdown_pool()

    def test_initializer_runs_in_workers_and_persists(self):
        shutdown_pool()
        try:
            seen = run_tasks(_read_marker, [0, 1], jobs=2,
                             initializer=_init_marker, initargs=("warm",))
            assert seen == ["warm", "warm"]
            # second call, same shape: same workers, initializer state kept
            seen = run_tasks(_read_marker, [0, 1], jobs=2,
                             initializer=_init_marker, initargs=("warm",))
            assert seen == ["warm", "warm"]
        finally:
            shutdown_pool()

    def test_serial_path_runs_initializer_inline(self, monkeypatch):
        monkeypatch.delenv("_REPRO_TEST_POOL_INIT", raising=False)
        out = run_tasks(_read_marker, [0], jobs=4,
                        initializer=_init_marker, initargs=("inline",))
        assert out == ["inline"]  # single task -> in-process + initializer


class _FakePool:
    """Stands in for a ProcessPoolExecutor with pre-resolved futures."""

    def __init__(self, futures):
        self._futures = list(futures)
        self._next = 0

    def submit(self, fn, task):
        f = self._futures[self._next]
        self._next += 1
        return f

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestBrokenPoolRebuild:
    def test_rebuild_reports_each_task_once(self, monkeypatch):
        # a worker dies mid-run: the first dispatch completes some tasks
        # then raises BrokenProcessPool; the retry completes everything.
        # on_result must fire exactly once per task (no duplicate
        # heartbeats / double-merged worker metrics) and the rebuild must
        # surface on the observability counters.
        from concurrent.futures import Future
        from concurrent.futures.process import BrokenProcessPool

        from repro.obs.metrics import get_metrics
        from repro.obs.runlog import set_logging

        tasks = [1, 2, 3]
        first = []
        for t in tasks[:-1]:
            f = Future()
            f.set_result(t * t)
            first.append(f)
        broken = Future()
        broken.set_exception(BrokenProcessPool("worker died"))
        first.append(broken)
        second = []
        for t in tasks:
            f = Future()
            f.set_result(t * t)
            second.append(f)

        pools = iter([_FakePool(first), _FakePool(second)])
        monkeypatch.setattr(parallel_mod, "_get_pool",
                            lambda workers, init, initargs: next(pools))

        log = set_logging(True)
        before = get_metrics().counter("parallel.pool_rebuilt").value
        reported = []
        try:
            out = run_tasks(_square, tasks, jobs=2,
                            on_result=lambda i, r: reported.append(i))
        finally:
            set_logging(False)

        assert out == [1, 4, 9]
        assert sorted(reported) == [0, 1, 2]  # each index exactly once
        after = get_metrics().counter("parallel.pool_rebuilt").value
        assert after - before == 1
        names = [r["name"] for r in log.records]
        assert "parallel.pool_rebuilt" in names

    def test_twice_broken_pool_falls_back_to_serial(self, monkeypatch):
        from concurrent.futures import Future
        from concurrent.futures.process import BrokenProcessPool

        from repro.obs.metrics import get_metrics

        def broken_pool(workers, init, initargs):
            futures = []
            for _ in range(3):
                f = Future()
                f.set_exception(BrokenProcessPool("worker died"))
                futures.append(f)
            return _FakePool(futures)

        monkeypatch.setattr(parallel_mod, "_get_pool", broken_pool)
        before = get_metrics().counter("parallel.serial_fallback").value
        reported = []
        out = run_tasks(_square, [1, 2, 3], jobs=2,
                        on_result=lambda i, r: reported.append(i))
        assert out == [1, 4, 9]  # serial fallback still computes
        assert sorted(reported) == [0, 1, 2]
        after = get_metrics().counter("parallel.serial_fallback").value
        assert after - before == 1


class TestWorkerTraceMemo:
    def test_cached_trace_loaded_once_per_process(self, tmp_path,
                                                  monkeypatch):
        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        run_implementation(spec, workload, 8, verify=False,
                           trace_cache=tmp_path)  # warm the disk cache
        monkeypatch.setattr(sweeps_mod, "_TRACE_MEMO", {})
        loads = []
        real_load = sweeps_mod.load_trace

        def counting_load(path):
            loads.append(str(path))
            return real_load(path)

        monkeypatch.setattr(sweeps_mod, "load_trace", counting_load)
        _, t1 = run_implementation(spec, workload, 8, verify=False,
                                   trace_cache=tmp_path)
        _, t2 = run_implementation(spec, workload, 8, verify=False,
                                   trace_cache=tmp_path)
        assert len(loads) == 1  # second hit served from the memo
        assert t2 is t1         # same object -> engine plan caches reused

    def test_memo_is_bounded(self, tmp_path, monkeypatch):
        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        monkeypatch.setattr(sweeps_mod, "_TRACE_MEMO", {})
        monkeypatch.setattr(sweeps_mod, "_TRACE_MEMO_CAP", 2)
        for vl in (8, 16, 32, 64):
            run_implementation(spec, workload, vl, verify=False,
                               trace_cache=tmp_path)   # record
            run_implementation(spec, workload, vl, verify=False,
                               trace_cache=tmp_path)   # load + memoize
        assert len(sweeps_mod._TRACE_MEMO) <= 2


class TestParallelSweeps:
    def test_latency_sweep_jobs2_matches_serial(self):
        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        serial = latency_sweep(spec, workload, vls=(8, 64))
        fanned = latency_sweep(spec, workload, vls=(8, 64), jobs=2)
        for impl in serial.impls:
            assert serial.series(impl) == fanned.series(impl)

    def test_bandwidth_sweep_jobs2_matches_serial(self):
        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        serial = bandwidth_sweep(spec, workload, vls=(8,))
        fanned = bandwidth_sweep(spec, workload, vls=(8,), jobs=2)
        for impl in serial.impls:
            assert serial.series(impl) == fanned.series(impl)


class _EmitterRan(Exception):
    """Raised by the edited-kernel stand-in to prove it executed."""


def _edited(session, workload):
    raise _EmitterRan


class TestTraceCache:
    def test_cache_files_written_and_results_identical(self, tmp_path):
        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        first = latency_sweep(spec, workload, vls=(8,),
                              trace_cache=tmp_path)
        traces = [f for f in tmp_path.glob("*.npz")
                  if ".cls" not in f.name]
        sidecars = [f for f in tmp_path.glob("*.npz") if ".cls" in f.name]
        assert len(traces) == 2  # scalar + vl8
        assert len(sidecars) == 2  # one classified sidecar per trace
        second = latency_sweep(spec, workload, vls=(8,),
                               trace_cache=tmp_path)
        for impl in first.impls:
            assert first.series(impl) == second.series(impl)

    def test_cache_hit_skips_kernel_execution(self, tmp_path):
        # wrappers keep the cache key stable across both runs (the key
        # fingerprints the emitters' defining module, which here is this
        # test file either way) while counting every actual execution
        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        calls = []

        def counting_scalar(session, w):
            calls.append("scalar")
            return spec.scalar(session, w)

        def counting_vector(session, w):
            calls.append("vector")
            return spec.vector(session, w)

        counted = dataclasses.replace(spec, scalar=counting_scalar,
                                      vector=counting_vector)
        latency_sweep(counted, workload, vls=(8,), trace_cache=tmp_path)
        assert calls  # the warming run did record the traces
        calls.clear()
        result = latency_sweep(counted, workload, vls=(8,),
                               trace_cache=tmp_path, verify=False)
        assert calls == []  # cache hit: no emitter re-executed
        assert len(result.measurements) == 2 * len(result.points)

    def test_changed_kernel_source_invalidates_cache(self, tmp_path):
        # the staleness guard: a spec whose emitter code differs from the
        # one that warmed the cache must re-record, not load a stale trace
        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        latency_sweep(spec, workload, vls=(8,), trace_cache=tmp_path)
        edited = dataclasses.replace(spec, scalar=_edited, vector=_edited)
        with pytest.raises(_EmitterRan):
            latency_sweep(edited, workload, vls=(8,),
                          trace_cache=tmp_path, verify=False)
        sdv = FpgaSdv().configure(max_vl=8)
        assert trace_cache_path(tmp_path, spec.name, workload, 8, sdv,
                                spec=spec) != \
            trace_cache_path(tmp_path, spec.name, workload, 8, sdv,
                             spec=edited)

    def test_template_machinery_edit_invalidates_cache(self, monkeypatch):
        # the cache key must cover the trace-template machinery (Dep
        # semantics, replicate fixups, emission mode), not just the
        # kernel emitters: an edit there changes every recorded dep and
        # address column without touching any kernels/ file
        import inspect as real_inspect

        import repro.core.sweeps as sweeps_mod
        from repro.core.sweeps import kernel_fingerprint

        spec = KERNELS["fft"]
        base = kernel_fingerprint(spec)
        assert base == kernel_fingerprint(spec)  # deterministic

        real_getsource = real_inspect.getsource

        def edited_getsource(obj):
            src = real_getsource(obj)
            if getattr(obj, "__name__", "") == "repro.trace.template":
                return src + "\n# Dep.prev now steps by 2 iterations\n"
            return src

        monkeypatch.setattr(sweeps_mod.inspect, "getsource",
                            edited_getsource)
        assert kernel_fingerprint(spec) != base

    def test_cache_key_distinguishes_vl_and_workload(self, tmp_path):
        spec = KERNELS["fft"]
        w7 = spec.prepare(get_scale("smoke"), 7)
        w8 = spec.prepare(get_scale("smoke"), 8)
        assert workload_fingerprint(w7) != workload_fingerprint(w8)
        assert workload_fingerprint(w7) == workload_fingerprint(w7)
        sdv8 = FpgaSdv().configure(max_vl=8)
        sdv64 = FpgaSdv().configure(max_vl=64)
        assert trace_cache_path(tmp_path, spec.name, w7, 8, sdv8) != \
            trace_cache_path(tmp_path, spec.name, w7, 64, sdv64)
        assert trace_cache_path(tmp_path, spec.name, w7, 8, sdv8) != \
            trace_cache_path(tmp_path, spec.name, w8, 8, sdv8)

    def test_cache_path_that_is_a_file_rejected(self, tmp_path):
        from repro.errors import TraceError
        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        not_a_dir = tmp_path / "cache.txt"
        not_a_dir.write_text("")
        with pytest.raises(TraceError):
            run_implementation(spec, workload, 8, verify=False,
                               trace_cache=not_a_dir)

    def test_vl_sweep_accepts_cache(self, tmp_path):
        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        first = vl_sweep(spec, workload, vls=(8,), trace_cache=tmp_path)
        second = vl_sweep(spec, workload, vls=(8,), trace_cache=tmp_path)
        assert first == second


class TestHoistedReference:
    def test_reference_computed_once_per_sweep(self):
        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        calls = []

        def counting_reference(w):
            calls.append(1)
            return spec.reference(w)

        counted = dataclasses.replace(spec, reference=counting_reference)
        latency_sweep(counted, workload, vls=(8, 64), verify=True)
        assert len(calls) == 1  # three implementations, one reference

    def test_explicit_reference_skips_recompute(self):
        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        ref = spec.reference(workload)
        poisoned = dataclasses.replace(
            spec, reference=lambda w: pytest.fail("reference recomputed"))
        sdv, trace = run_implementation(poisoned, workload, 8,
                                        verify=True, reference=ref)
        assert trace.sealed


class TestClassifiedSidecar:
    """The classified sidecar: reloads skip reclassification entirely."""

    def _warm(self, tmp_path):
        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        latency_sweep(spec, workload, vls=(8,), trace_cache=tmp_path)
        return spec, workload

    def test_reload_seeds_from_sidecar_without_reclassifying(self, tmp_path):
        from repro.core import sweeps as sweeps_mod
        from repro.obs import engine_stats as es_mod

        spec, workload = self._warm(tmp_path)
        first = latency_sweep(spec, workload, vls=(8,),
                              trace_cache=tmp_path, verify=False)
        # drop the in-process trace memo: memoized traces still carry
        # their classification, which would mask the sidecar path
        sweeps_mod._TRACE_MEMO.clear()
        was = es_mod.introspection_enabled()
        collector = es_mod.set_introspection(True)
        before = collector.snapshot()
        try:
            second = latency_sweep(spec, workload, vls=(8,),
                                   trace_cache=tmp_path, verify=False)
        finally:
            es_mod.set_introspection(was)
        delta = es_mod.snapshot_delta(
            before, collector.snapshot())["counters"]
        for impl in first.impls:
            assert first.series(impl) == second.series(impl)
        assert delta.get("classify.sidecar_hits") == 2  # scalar + vl8
        assert delta.get("classify.sidecar_misses", 0) == 0
        # sidecar seeding means zero classification runs on reload
        assert delta.get("classify.stack_runs", 0) \
            + delta.get("classify.walk_runs", 0) == 0

    def test_stale_geometry_sidecar_is_ignored(self, tmp_path):
        from repro.core import sweeps as sweeps_mod
        from repro.core.sweeps import run_implementation
        from repro.obs import engine_stats as es_mod

        spec, workload = self._warm(tmp_path)
        sweeps_mod._TRACE_MEMO.clear()
        for side in tmp_path.glob("*.npz"):
            if ".cls" in side.name:
                # keep the filename honest but corrupt the payload so the
                # embedded-fingerprint check rejects it on load
                side.write_bytes(b"not an npz")
        was = es_mod.introspection_enabled()
        collector = es_mod.set_introspection(True)
        before = collector.snapshot()
        try:
            sdv, trace = run_implementation(spec, workload, 8,
                                            verify=False,
                                            trace_cache=tmp_path)
            ct = sdv.classify(trace)
        finally:
            es_mod.set_introspection(was)
        delta = es_mod.snapshot_delta(
            before, collector.snapshot())["counters"]
        assert ct is not None
        assert delta.get("classify.sidecar_misses", 0) >= 1
        assert delta.get("classify.sidecar_hits", 0) == 0
