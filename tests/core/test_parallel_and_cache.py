"""Sweep-harness infrastructure: process fan-out + on-disk trace cache.

Covers the ``jobs=N`` worker-pool path (results identical to serial), the
``trace_cache=DIR`` path (second run must not re-execute the kernel — a
poisoned spec proves it), and the hoisted once-per-sweep reference.
"""

import dataclasses

import pytest

from repro.core.parallel import default_jobs, resolve_jobs, run_tasks
from repro.core.sweeps import (
    bandwidth_sweep,
    latency_sweep,
    run_implementation,
    trace_cache_path,
    vl_sweep,
    workload_fingerprint,
)
from repro.kernels import KERNELS
from repro.soc import FpgaSdv
from repro.workloads import get_scale


def _square(x):
    return x * x


class TestRunTasks:
    def test_serial_matches_parallel(self):
        tasks = list(range(8))
        assert run_tasks(_square, tasks, jobs=1) == \
            run_tasks(_square, tasks, jobs=2) == [x * x for x in tasks]

    def test_resolve_jobs(self):
        assert resolve_jobs(0) == default_jobs()
        assert resolve_jobs(-3) == 1
        assert resolve_jobs(4) == 4

    def test_single_task_runs_inline(self):
        assert run_tasks(_square, [5], jobs=8) == [25]


class TestParallelSweeps:
    def test_latency_sweep_jobs2_matches_serial(self):
        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        serial = latency_sweep(spec, workload, vls=(8, 64))
        fanned = latency_sweep(spec, workload, vls=(8, 64), jobs=2)
        for impl in serial.impls:
            assert serial.series(impl) == fanned.series(impl)

    def test_bandwidth_sweep_jobs2_matches_serial(self):
        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        serial = bandwidth_sweep(spec, workload, vls=(8,))
        fanned = bandwidth_sweep(spec, workload, vls=(8,), jobs=2)
        for impl in serial.impls:
            assert serial.series(impl) == fanned.series(impl)


def _boom(session, workload):  # pragma: no cover - must never run
    raise AssertionError("kernel executed despite a cache hit")


class TestTraceCache:
    def test_cache_files_written_and_results_identical(self, tmp_path):
        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        first = latency_sweep(spec, workload, vls=(8,),
                              trace_cache=tmp_path)
        files = list(tmp_path.glob("*.npz"))
        assert len(files) == 2  # scalar + vl8
        second = latency_sweep(spec, workload, vls=(8,),
                               trace_cache=tmp_path)
        for impl in first.impls:
            assert first.series(impl) == second.series(impl)

    def test_cache_hit_skips_kernel_execution(self, tmp_path):
        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        latency_sweep(spec, workload, vls=(8,), trace_cache=tmp_path)
        poisoned = dataclasses.replace(spec, scalar=_boom, vector=_boom)
        result = latency_sweep(poisoned, workload, vls=(8,),
                               trace_cache=tmp_path, verify=False)
        assert len(result.measurements) == 2 * len(result.points)

    def test_cache_key_distinguishes_vl_and_workload(self, tmp_path):
        spec = KERNELS["fft"]
        w7 = spec.prepare(get_scale("smoke"), 7)
        w8 = spec.prepare(get_scale("smoke"), 8)
        assert workload_fingerprint(w7) != workload_fingerprint(w8)
        assert workload_fingerprint(w7) == workload_fingerprint(w7)
        sdv8 = FpgaSdv().configure(max_vl=8)
        sdv64 = FpgaSdv().configure(max_vl=64)
        assert trace_cache_path(tmp_path, spec.name, w7, 8, sdv8) != \
            trace_cache_path(tmp_path, spec.name, w7, 64, sdv64)
        assert trace_cache_path(tmp_path, spec.name, w7, 8, sdv8) != \
            trace_cache_path(tmp_path, spec.name, w8, 8, sdv8)

    def test_cache_path_that_is_a_file_rejected(self, tmp_path):
        from repro.errors import TraceError
        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        not_a_dir = tmp_path / "cache.txt"
        not_a_dir.write_text("")
        with pytest.raises(TraceError):
            run_implementation(spec, workload, 8, verify=False,
                               trace_cache=not_a_dir)

    def test_vl_sweep_accepts_cache(self, tmp_path):
        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        first = vl_sweep(spec, workload, vls=(8,), trace_cache=tmp_path)
        second = vl_sweep(spec, workload, vls=(8,), trace_cache=tmp_path)
        assert first == second


class TestHoistedReference:
    def test_reference_computed_once_per_sweep(self):
        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        calls = []

        def counting_reference(w):
            calls.append(1)
            return spec.reference(w)

        counted = dataclasses.replace(spec, reference=counting_reference)
        latency_sweep(counted, workload, vls=(8, 64), verify=True)
        assert len(calls) == 1  # three implementations, one reference

    def test_explicit_reference_skips_recompute(self):
        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        ref = spec.reference(workload)
        poisoned = dataclasses.replace(
            spec, reference=lambda w: pytest.fail("reference recomputed"))
        sdv, trace = run_implementation(poisoned, workload, 8,
                                        verify=True, reference=ref)
        assert trace.sealed
