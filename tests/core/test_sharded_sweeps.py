"""The sharded sweep scheduler: bit-identity, fallbacks, no leaks.

The contract under test (see ``docs/parallelism.md``): running a sweep
through the two-phase sharded scheduler over the shared-memory trace
plane produces *exactly* the Measurement rows of the serial path — same
cycles, same reports, same attributions, same ordering — for every
kernel, axis and engine; and every fallback (``shm=False``,
``REPRO_NO_SHM``, a plane that refuses to publish) degrades to the
whole-implementation path without changing a row or leaking a segment.
"""

import os

import pytest

import repro.core.shm as shm_mod
import repro.core.sweeps as sweeps_mod
from repro.core.parallel import shutdown_pool
from repro.core.shm import plane_prefix, shm_available
from repro.core.sweeps import (
    _plan_shards,
    bandwidth_sweep,
    latency_sweep,
    workload_fingerprint,
)
from repro.kernels import KERNELS
from repro.workloads import get_scale

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="no usable shared memory on this platform")

# small-but-shardable grids: >1 point so the sharded path engages, cheap
# enough for the full kernel x engine matrix at smoke scale
LATS = (0, 128, 512)
BWS = (4, 32)
VLS = (8, 32)


def _workload(kernel):
    spec = KERNELS[kernel]
    return spec, spec.prepare(get_scale("smoke"), 7)


def _rows(result):
    """Every field that must survive sharding, in result order."""
    out = []
    for m in result.measurements:
        rep = None if m.report is None else m.report.cycles
        att = None if m.attribution is None else \
            (m.attribution.total, dict(m.attribution.buckets))
        out.append((m.kernel, m.impl, m.extra_latency, m.bandwidth_bpc,
                    m.cycles, rep, att))
    return out


def _no_leaked_segments():
    try:
        names = os.listdir("/dev/shm")
    except OSError:
        return True
    return not [n for n in names if n.startswith(plane_prefix())]


@needs_shm
class TestShardedBitIdentity:
    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    @pytest.mark.parametrize("engine", ["fast", "event"])
    def test_latency_grid(self, kernel, engine):
        spec, workload = _workload(kernel)
        serial = latency_sweep(spec, workload, latencies=LATS, vls=VLS,
                               verify=False, engine=engine)
        sharded = latency_sweep(spec, workload, latencies=LATS, vls=VLS,
                                verify=False, engine=engine, jobs=2)
        assert _rows(serial) == _rows(sharded)
        assert _no_leaked_segments()

    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    @pytest.mark.parametrize("engine", ["fast", "event"])
    def test_bandwidth_grid(self, kernel, engine):
        spec, workload = _workload(kernel)
        serial = bandwidth_sweep(spec, workload, bandwidths=BWS, vls=VLS,
                                 verify=False, engine=engine)
        sharded = bandwidth_sweep(spec, workload, bandwidths=BWS, vls=VLS,
                                  verify=False, engine=engine, jobs=2)
        assert _rows(serial) == _rows(sharded)
        assert _no_leaked_segments()

    def test_event_ref_engine(self):
        # the coroutine reference DES, the slowest and most stateful
        # engine, shards like the others
        spec, workload = _workload("fft")
        serial = latency_sweep(spec, workload, latencies=LATS, vls=(8,),
                               verify=False, engine="event-ref")
        sharded = latency_sweep(spec, workload, latencies=LATS, vls=(8,),
                                verify=False, engine="event-ref", jobs=2)
        assert _rows(serial) == _rows(sharded)

    def test_batch_engine_stays_fused(self):
        # the batch engine times the whole axis in one vectorized walk:
        # jobs>1 must keep it one task per impl (never sharded) and the
        # rows must still match the serial path exactly
        spec, workload = _workload("fft")
        serial = latency_sweep(spec, workload, latencies=LATS, vls=VLS,
                               verify=False, engine="batch")
        fanned = latency_sweep(spec, workload, latencies=LATS, vls=VLS,
                               verify=False, engine="batch", jobs=2)
        assert _rows(serial) == _rows(fanned)
        assert _no_leaked_segments()

    def test_keep_reports_survive_sharding(self):
        spec, workload = _workload("fft")
        serial = latency_sweep(spec, workload, latencies=LATS, vls=(8,),
                               verify=False, engine="fast",
                               keep_reports=True)
        sharded = latency_sweep(spec, workload, latencies=LATS, vls=(8,),
                                verify=False, engine="fast",
                                keep_reports=True, jobs=2)
        assert all(m.report is not None for m in sharded.measurements)
        assert _rows(serial) == _rows(sharded)

    def test_attributions_survive_sharding(self):
        spec, workload = _workload("fft")
        serial = latency_sweep(spec, workload, latencies=LATS, vls=(8,),
                               verify=False, engine="fast",
                               attributions=True)
        sharded = latency_sweep(spec, workload, latencies=LATS, vls=(8,),
                                verify=False, engine="fast",
                                attributions=True, jobs=2)
        assert all(m.attribution is not None for m in sharded.measurements)
        assert _rows(serial) == _rows(sharded)

    def test_shard_points_override(self):
        # one-point shards: maximum scheduler granularity, same rows
        spec, workload = _workload("fft")
        serial = latency_sweep(spec, workload, latencies=LATS, vls=VLS,
                               verify=False, engine="fast")
        sharded = latency_sweep(spec, workload, latencies=LATS, vls=VLS,
                                verify=False, engine="fast", jobs=2,
                                shard_points=1)
        assert _rows(serial) == _rows(sharded)

    def test_verified_sweep_shards_identically(self):
        spec, workload = _workload("fft")
        serial = latency_sweep(spec, workload, latencies=LATS, vls=(8,),
                               verify=True, engine="fast")
        sharded = latency_sweep(spec, workload, latencies=LATS, vls=(8,),
                                verify=True, engine="fast", jobs=2)
        assert _rows(serial) == _rows(sharded)


class TestFallbacks:
    def test_no_shm_flag_matches_serial_and_leaks_nothing(self):
        spec, workload = _workload("fft")
        serial = latency_sweep(spec, workload, latencies=LATS, vls=VLS,
                               verify=False, engine="fast")
        fanned = latency_sweep(spec, workload, latencies=LATS, vls=VLS,
                               verify=False, engine="fast", jobs=2,
                               shm=False)
        assert _rows(serial) == _rows(fanned)
        assert _no_leaked_segments()

    def test_repro_no_shm_env_matches_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        shutdown_pool()  # running workers predate the env change
        try:
            spec, workload = _workload("fft")
            serial = latency_sweep(spec, workload, latencies=LATS,
                                   vls=(8,), verify=False, engine="fast")
            fanned = latency_sweep(spec, workload, latencies=LATS,
                                   vls=(8,), verify=False, engine="fast",
                                   jobs=2)
            assert _rows(serial) == _rows(fanned)
        finally:
            shutdown_pool()  # don't leave REPRO_NO_SHM workers behind

    @needs_shm
    def test_publish_failure_falls_back_to_whole_impl(self, monkeypatch):
        # a plane that refuses every publish mid-sweep: every impl must
        # come back through the whole-implementation fallback task, rows
        # unchanged
        monkeypatch.setattr(shm_mod.TracePlane, "publish_trace",
                            lambda self, key, trace, *, prefix,
                            transfer=False: None)
        shutdown_pool()  # workers must see the patched plane... they
        # won't (separate processes), so force the serial in-process path
        # where the monkeypatch is visible
        spec, workload = _workload("fft")
        monkeypatch.setattr(sweeps_mod, "run_tasks",
                            lambda fn, tasks, jobs=1, on_result=None,
                            initializer=None, initargs=():
                            [_run_one(fn, t, i, on_result, initializer,
                                      initargs)
                             for i, t in enumerate(tasks)])
        serial_rows = _rows(latency_sweep(spec, workload, latencies=LATS,
                                          vls=(8,), verify=False,
                                          engine="fast"))
        sharded_rows = _rows(latency_sweep(spec, workload, latencies=LATS,
                                           vls=(8,), verify=False,
                                           engine="fast", jobs=2))
        assert serial_rows == sharded_rows


def _run_one(fn, task, i, on_result, initializer, initargs):
    if initializer is not None:
        initializer(*initargs)
    r = fn(task)
    if on_result is not None:
        on_result(i, r)
    return r


class TestShardPlanner:
    def test_override_wins(self):
        assert _plan_shards(7, 1000, 7000, 4, shard_points=2) == \
            [(0, 2), (2, 4), (4, 6), (6, 7)]

    def test_override_clamped_to_axis(self):
        assert _plan_shards(3, 10, 30, 4, shard_points=99) == [(0, 3)]

    def test_cost_model_scales_with_records(self):
        # heavy impl (many records) -> small chunks; light impl -> big
        heavy = _plan_shards(8, 10_000, 160_000, 4, None)
        light = _plan_shards(8, 100, 160_000, 4, None)
        assert len(heavy) > len(light)

    def test_covers_axis_exactly(self):
        for n in (1, 2, 5, 7, 13):
            for sp in (None, 1, 3, 100):
                shards = _plan_shards(n, 50, 50 * n * 3, 2, sp)
                covered = [p for lo, hi in shards for p in range(lo, hi)]
                assert covered == list(range(n))


class TestFingerprintHoist:
    def test_fingerprint_computed_once_per_sweep(self, monkeypatch):
        # the satellite fix: one pickle.dumps per (kernel, workload) in
        # the parent, not one per impl task
        spec, workload = _workload("fft")
        calls = []
        real = workload_fingerprint

        def counting(w, payload=None):
            calls.append(payload is not None)
            return real(w, payload)

        monkeypatch.setattr(sweeps_mod, "workload_fingerprint", counting)
        latency_sweep(spec, workload, latencies=LATS, vls=VLS,
                      verify=False, engine="fast")
        assert calls == [True]  # once, reusing the already-pickled blob

    def test_hoisted_fp_reaches_cache_path(self, tmp_path, monkeypatch):
        spec, workload = _workload("fft")
        calls = []
        real = workload_fingerprint

        def counting(w, payload=None):
            calls.append(1)
            return real(w, payload)

        monkeypatch.setattr(sweeps_mod, "workload_fingerprint", counting)
        latency_sweep(spec, workload, latencies=LATS, vls=(8,),
                      verify=False, engine="fast", trace_cache=tmp_path)
        # serial in-process run: the hoisted fp flows into every
        # trace_cache_path call, so the workload pickles exactly once
        assert len(calls) == 1


@needs_shm
class TestProfileParallel:
    def test_profile_jobs2_matches_serial(self):
        from repro.obs.profile import profile_kernel

        serial = profile_kernel("fft", scale="smoke", vls=(8, 32))
        fanned = profile_kernel("fft", scale="smoke", vls=(8, 32), jobs=2)
        assert [e.impl for e in serial.entries] == \
            [e.impl for e in fanned.entries]
        for a, b in zip(serial.entries, fanned.entries):
            assert a.attribution.total == b.attribution.total
            assert a.attribution.buckets == b.attribution.buckets
            assert a.report.cycles == b.report.cycles
        assert _no_leaked_segments()

    def test_profile_no_shm_matches(self):
        from repro.obs.profile import profile_kernel

        serial = profile_kernel("fft", scale="smoke", vls=(8,))
        fanned = profile_kernel("fft", scale="smoke", vls=(8,), jobs=2,
                                shm=False)
        for a, b in zip(serial.entries, fanned.entries):
            assert a.attribution.total == b.attribution.total


@needs_shm
class TestClassifiedPlaneHandoff:
    """Phase A classifies once and publishes; shards attach, never
    reclassify."""

    def test_shards_attach_published_classification(self):
        from repro.obs import engine_stats as es_mod

        spec, workload = _workload("spmv")
        serial = latency_sweep(spec, workload, latencies=LATS, vls=VLS,
                               verify=False, engine="event")
        was = es_mod.introspection_enabled()
        collector = es_mod.set_introspection(True)
        before = collector.snapshot()
        try:
            sharded = latency_sweep(spec, workload, latencies=LATS,
                                    vls=VLS, verify=False, engine="event",
                                    jobs=2)
        finally:
            es_mod.set_introspection(was)
        delta = es_mod.snapshot_delta(
            before, collector.snapshot())["counters"]
        assert _rows(serial) == _rows(sharded)
        assert _no_leaked_segments()
        n_impls = len(VLS) + 1  # scalar + each VL
        # every classification ran in phase A — one per implementation —
        # and no shard (phase B) ever reclassified
        assert delta.get("classify_cache.misses") == n_impls
        assert delta.get("classify.stack_runs", 0) \
            + delta.get("classify.walk_runs", 0) == n_impls
        # at least one shard landed on a non-publisher worker and pulled
        # the classification off the plane
        assert delta.get("classify.plane_attach_hits", 0) >= 1
        assert delta.get("classify.plane_attach_misses", 0) == 0
