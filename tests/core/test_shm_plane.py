"""The shared-memory trace plane: lifecycle, cleanup, bit-identity.

Covers the publish/attach/detach/release protocol (ordering, publish
idempotence per key, ownership transfer + adoption), the layered crash
cleanup (prefix purge for a crashed worker's orphans, dead-pid purge for
a SIGKILLed parent's), and the load-bearing invariant of the whole
design: a trace attached out of a segment is bit-identical to the one
that was published — for every column of every kernel.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

import repro.core.shm as shm_mod
from repro.core.shm import (
    _TRACE_ARRAYS,
    PlaneRef,
    TracePlane,
    plane_prefix,
    purge_prefix,
    purge_stale,
    shm_available,
)
from repro.core.sweeps import run_implementation
from repro.errors import TraceError
from repro.kernels import KERNELS
from repro.workloads import get_scale

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="no usable shared memory on this platform")

_PREFIX = "repro-plane-test-"


def _smoke_trace(kernel="fft", vl=8):
    spec = KERNELS[kernel]
    workload = spec.prepare(get_scale("smoke"), 7)
    _, trace = run_implementation(spec, workload, vl, verify=False)
    return trace


def _segment_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


def _assert_traces_equal(a, b):
    assert len(a) == len(b)
    assert list(a.cols.strings) == list(b.cols.strings)
    for col in _TRACE_ARRAYS:
        assert np.array_equal(getattr(a.cols, col), getattr(b.cols, col)), \
            f"column {col} differs"


@needs_shm
class TestPublishAttach:
    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_attached_trace_bit_identical(self, kernel):
        # the invariant everything else rests on: what a worker maps out
        # of the segment is byte-for-byte the trace that was published
        trace = _smoke_trace(kernel)
        plane = TracePlane()
        try:
            ref = plane.publish_trace(f"t:{kernel}", trace, prefix=_PREFIX)
            assert ref is not None and ref.records == len(trace)
            other = TracePlane()  # maps the segment like a worker would
            got = other.attach_trace(ref)
            assert got is not None and got is not trace
            _assert_traces_equal(trace, got)
            other.detach(ref)
        finally:
            plane.unlink_all()

    def test_publisher_attach_serves_original_object(self):
        trace = _smoke_trace()
        plane = TracePlane()
        try:
            ref = plane.publish_trace("t", trace, prefix=_PREFIX)
            assert plane.attach_trace(ref) is trace  # no self-remap
        finally:
            plane.unlink_all()

    def test_double_publish_is_idempotent(self):
        trace = _smoke_trace()
        plane = TracePlane()
        try:
            r1 = plane.publish_trace("same-key", trace, prefix=_PREFIX)
            r2 = plane.publish_trace("same-key", trace, prefix=_PREFIX)
            assert r1 is r2
            assert plane.stats["publishes"] == 1
        finally:
            plane.unlink_all()

    def test_bytes_round_trip(self):
        plane = TracePlane()
        try:
            blob = b"\x00\x01payload\xff" * 100
            ref = plane.publish_bytes("b", blob, prefix=_PREFIX)
            other = TracePlane()
            assert other.attach_bytes(ref) == blob
            other.detach(ref)
        finally:
            plane.unlink_all()

    def test_unsealed_trace_rejected(self):
        from repro.trace.events import TraceBuffer

        plane = TracePlane()
        with pytest.raises(TraceError):
            plane.publish_trace("k", TraceBuffer(), prefix=_PREFIX)

    def test_disabled_plane_publishes_none(self):
        plane = TracePlane(enabled=False)
        assert plane.publish_trace("k", _smoke_trace(),
                                   prefix=_PREFIX) is None
        assert plane.publish_bytes("k", b"x", prefix=_PREFIX) is None

    def test_repro_no_shm_disables_probe(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        assert not shm_available()
        assert not TracePlane().enabled


@needs_shm
class TestLifecycleOrdering:
    def test_release_unlinks_only_after_owner(self):
        # attach/detach/unlink ordering: a non-owner's release closes its
        # mapping but must never unlink — that is the owner's job
        trace = _smoke_trace()
        owner = TracePlane()
        worker = TracePlane()
        ref = owner.publish_trace("t", trace, prefix=_PREFIX)
        try:
            assert worker.attach_trace(ref) is not None
            worker.detach(ref)
            worker.release(ref)            # non-owner: close, not unlink
            assert _segment_exists(ref.name)
            again = TracePlane()
            assert again.attach_trace(ref) is not None  # still there
            again.release(ref)
        finally:
            owner.release(ref)             # owner: actually unlinks
        assert not _segment_exists(ref.name)
        assert TracePlane().attach_trace(ref) is None  # gone for good

    def test_detach_keeps_mapping_cached(self):
        # zero-ref mappings are evictable, not closed: the next attach of
        # the same segment must serve the identical object (and with it
        # the per-trace classification/plan caches)
        trace = _smoke_trace()
        owner = TracePlane()
        worker = TracePlane()
        try:
            ref = owner.publish_trace("t", trace, prefix=_PREFIX)
            first = worker.attach_trace(ref)
            worker.detach(ref)
            assert worker.attach_trace(ref) is first
            worker.detach(ref)
        finally:
            owner.unlink_all()

    def test_transfer_publish_is_adopted_not_owned(self):
        # phase-A protocol: the publisher disclaims the segment, the
        # parent adopts it and carries the unlink
        trace = _smoke_trace()
        publisher = TracePlane()
        parent = TracePlane()
        ref = publisher.publish_trace("t", trace, prefix=_PREFIX,
                                      transfer=True)
        try:
            assert ref.name not in publisher._owned
            publisher.unlink_all()               # publisher exit ...
            assert _segment_exists(ref.name)     # ... must not unlink
            assert parent.adopt(ref)
        finally:
            parent.release(ref)
        assert not _segment_exists(ref.name)

    def test_unlink_all_leaves_nothing(self):
        plane = TracePlane()
        refs = [plane.publish_trace(f"t{i}", _smoke_trace(vl=8),
                                    prefix=_PREFIX) for i in range(3)]
        refs.append(plane.publish_bytes("b", b"x" * 64, prefix=_PREFIX))
        plane.unlink_all()
        for ref in refs:
            assert not _segment_exists(ref.name)
        assert not [f for f in os.listdir("/dev/shm")
                    if f.startswith(_PREFIX)]

    def test_attach_cap_evicts_lru_zero_ref(self, monkeypatch):
        monkeypatch.setattr(shm_mod, "ATTACH_CAP", 2)
        owner = TracePlane()
        worker = TracePlane()
        try:
            refs = [owner.publish_trace(f"t{i}", _smoke_trace(vl=8),
                                        prefix=_PREFIX) for i in range(4)]
            for ref in refs:
                assert worker.attach_trace(ref) is not None
                worker.detach(ref)
            assert len(worker._attached) <= 2
        finally:
            owner.unlink_all()


@needs_shm
class TestCrashCleanup:
    def test_purge_prefix_reaps_orphans(self):
        # a worker published a segment then crashed before the parent saw
        # the ref: the owner's exit hook sweeps everything by prefix
        plane = TracePlane()
        ref = plane.publish_trace("orphan", _smoke_trace(), prefix=_PREFIX,
                                  transfer=True)
        plane._attached.clear()   # simulate the crash: nobody remembers it
        plane._by_key.clear()
        assert _segment_exists(ref.name)
        assert purge_prefix(_PREFIX) >= 1
        assert not _segment_exists(ref.name)

    def test_purge_stale_reaps_dead_pid_segments(self):
        # a SIGKILLed parent runs no atexit hook; the next plane sweeps
        # segments whose embedded owner pid no longer exists
        proc = subprocess.run([sys.executable, "-c",
                               "import os; print(os.getpid())"],
                              capture_output=True, text=True, check=True)
        dead_pid = int(proc.stdout.strip())
        from multiprocessing import shared_memory

        name = f"repro-plane-{dead_pid}-deadbeef0000"
        seg = shared_memory.SharedMemory(name=name, create=True, size=64)
        shm_mod._untrack(seg)
        seg.close()
        try:
            assert purge_stale() >= 1
            assert not _segment_exists(name)
        finally:
            if _segment_exists(name):  # in case the purge skipped it
                shm_mod._raw_unlink(name)

    def test_raw_unlink_is_idempotent(self, monkeypatch):
        # the already-released fast path: a second unlink of the same
        # name must be a quiet no-op, not an OS round trip or an error.
        # The deliberate duplicate would (rightly) be an R103 to an
        # installed sanitizer, so mask the hook for the exercise.
        from multiprocessing import shared_memory

        monkeypatch.setattr(shm_mod, "_sanitizer", None)
        name = f"{_PREFIX}idem0000"
        seg = shared_memory.SharedMemory(name=name, create=True, size=64)
        shm_mod._untrack(seg)
        seg.close()
        shm_mod._raw_unlink(name)
        assert not _segment_exists(name)
        assert name in shm_mod._UNLINKED
        shm_mod._raw_unlink(name)  # absorbed by the fast path
        assert not _segment_exists(name)

    def test_release_then_unlink_all_unlinks_once(self):
        plane = TracePlane()
        ref = plane.publish_trace("idem-rel", _smoke_trace(),
                                  prefix=_PREFIX)
        assert ref is not None
        before = plane.stats["unlinks"]
        plane.release(ref)
        plane.release(ref)      # idempotent: segment already gone
        plane.unlink_all()      # must not re-unlink the released name
        assert plane.stats["unlinks"] == before + 1
        assert not _segment_exists(ref.name)

    def test_purge_stale_spares_live_pids(self):
        from multiprocessing import shared_memory

        name = f"repro-plane-{os.getppid()}-cafecafe0000"
        seg = shared_memory.SharedMemory(name=name, create=True, size=64)
        shm_mod._untrack(seg)
        seg.close()
        try:
            purge_stale()
            assert _segment_exists(name)  # parent is alive: left alone
        finally:
            shm_mod._raw_unlink(name)

    def test_attach_gone_segment_returns_none(self):
        ref = PlaneRef(name=f"{_PREFIX}nonexistent", key="k",
                       kind="trace", size=64)
        assert TracePlane().attach_trace(ref) is None


@needs_shm
class TestWorkloadPlane:
    def test_workload_round_trip_and_memo(self):
        spec = KERNELS["fft"]
        workload = spec.prepare(get_scale("smoke"), 7)
        ref = shm_mod.publish_workload(workload, "test-fft-wl")
        assert ref is not None
        try:
            got = shm_mod.attach_workload(ref)
            assert got is not None
            assert shm_mod.attach_workload(ref) is got  # memo hit
        finally:
            shm_mod.get_plane().release(ref)
            shm_mod._WORKLOAD_MEMO.pop(ref.name, None)


@needs_shm
class TestClassifiedPlane:
    def _classified(self, kernel="fft", vl=8):
        from repro.config import SdvConfig
        from repro.memory.classify_fast import classify_trace_fast

        trace = _smoke_trace(kernel, vl)
        return trace, classify_trace_fast(trace, SdvConfig().validate())

    def test_round_trip_bit_identical(self):
        from repro.core.shm import TracePlane

        trace, ct = self._classified()
        plane = TracePlane()
        try:
            ref = plane.publish_classified("c:fft", ct, prefix=_PREFIX)
            assert ref is not None and ref.kind == "classified"
            other = TracePlane()
            got = other.attach_classified(ref, trace, ct.config)
            assert got is not None and got is not ct
            assert np.array_equal(got.rows, ct.rows)
            assert len(got.levels) == len(ct.levels)
            for x, y in zip(got.levels, ct.levels):
                assert (x is None) == (y is None)
                if x is not None:
                    assert np.array_equal(x, y)
            assert got.totals == ct.totals
            other.detach(ref)
        finally:
            plane.unlink_all()

    def test_publisher_attach_serves_original_object(self):
        from repro.core.shm import TracePlane

        trace, ct = self._classified()
        plane = TracePlane()
        try:
            ref = plane.publish_classified("c:memo", ct, prefix=_PREFIX)
            assert ref is not None
            assert plane.attach_classified(ref, trace, ct.config) is ct
            plane.detach(ref)
        finally:
            plane.unlink_all()

    def test_unlink_leaves_no_segment(self):
        from repro.core.shm import TracePlane

        _trace, ct = self._classified()
        plane = TracePlane()
        ref = plane.publish_classified("c:leak", ct, prefix=_PREFIX)
        assert ref is not None
        plane.unlink_all()
        assert not _segment_exists(ref.name)
