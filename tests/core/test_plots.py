"""Tests for the terminal plot renderer."""

import pytest

from repro.core.measurements import Measurement, SweepResult
from repro.core.plots import ascii_plot, plot_figure3, plot_figure5, \
    series_style
from repro.errors import ReproError


def sweep(axis="latency", points=(0, 32, 1024)):
    impls = ["scalar", "vl8", "vl256"]
    r = SweepResult(kernel="k", axis=axis, points=list(points), impls=impls)
    for impl_i, impl in enumerate(impls):
        for p_i, p in enumerate(points):
            cycles = 100.0 * (impl_i + 1) * (p_i + 1)
            r.add(Measurement(
                kernel="k", impl=impl,
                extra_latency=p if axis == "latency" else 0,
                bandwidth_bpc=p if axis == "bandwidth" else 64,
                cycles=cycles))
    return r


class TestAsciiPlot:
    def test_dimensions(self):
        out = ascii_plot([0, 1, 2], {"a": [1.0, 2.0, 3.0]},
                         width=40, height=8)
        rows = out.splitlines()
        # height rows + axis + x labels + legend
        assert len(rows) == 8 + 3
        assert all("|" in r for r in rows[:8])

    def test_title_and_labels(self):
        out = ascii_plot([0, 1], {"a": [1.0, 2.0]}, title="T", ylabel="y")
        assert out.splitlines()[0] == "T"
        assert "y" in out

    def test_markers_assigned_per_series(self):
        out = ascii_plot([0, 1], {"scalar": [1.0, 2.0], "vl8": [2.0, 4.0]})
        assert "*=scalar" in out
        assert "o=vl8" in out

    def test_color_mode_emits_ansi(self):
        out = ascii_plot([0, 1], {"scalar": [1.0, 2.0]}, color=True)
        assert "\x1b[38;5;33m" in out  # scalar is blue, as in the paper

    def test_extreme_points_plotted(self):
        out = ascii_plot([0, 1], {"a": [1.0, 100.0]}, width=10, height=5)
        rows = [r.split("|", 1)[1] for r in out.splitlines()[:5]]
        assert rows[0].rstrip().endswith("o")   # max at top right
        assert rows[-1].lstrip().startswith("o")  # min at bottom left

    def test_logy_handles_decades(self):
        out = ascii_plot([0, 1, 2], {"a": [1.0, 100.0, 10000.0]}, logy=True)
        assert "1e+04" in out or "10000" in out or "1e4" in out.lower()

    def test_rejects_short_axis(self):
        with pytest.raises(ReproError):
            ascii_plot([0], {"a": [1.0]})

    def test_rejects_ragged_series(self):
        with pytest.raises(ReproError):
            ascii_plot([0, 1], {"a": [1.0]})


class TestStyles:
    def test_scalar_is_blue_vectors_red_gradient(self):
        styles = series_style(["scalar", "vl8", "vl64", "vl256"])
        assert styles["scalar"][0] == "\x1b[38;5;33m"
        reds = [styles[i][0] for i in ("vl8", "vl64", "vl256")]
        assert len(set(reds)) == 3  # distinct ramp steps
        assert all(c != styles["scalar"][0] for c in reds)

    def test_single_vl(self):
        styles = series_style(["vl256"])
        assert styles["vl256"][0].startswith("\x1b[38;5;")


class TestFigureWrappers:
    def test_plot_figure3(self):
        out = plot_figure3(sweep("latency"))
        assert "Figure 3" in out and "kcyc" in out

    def test_plot_figure5(self):
        out = plot_figure5(sweep("bandwidth", points=(1, 8, 64)))
        assert "Figure 5" in out and "t/t1" in out

    def test_axis_mismatch_rejected(self):
        with pytest.raises(ReproError):
            plot_figure3(sweep("bandwidth", points=(1, 8, 64)))

    def test_end_to_end_plot_from_real_sweep(self):
        from repro.core.sweeps import latency_sweep
        from repro.kernels import KERNELS
        from repro.workloads import get_scale
        spec = KERNELS["fft"]
        wl = spec.prepare(get_scale("smoke"), 3)
        result = latency_sweep(spec, wl, latencies=(0, 128, 1024),
                               vls=(8, 256))
        out = plot_figure3(result, color=True)
        assert "scalar" in out and "vl256" in out
