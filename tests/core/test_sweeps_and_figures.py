"""Tests for the study harness: sweeps, figure extraction, rendering."""

import numpy as np
import pytest

from repro.core.figures import (
    figure3_series,
    figure4_table,
    figure5_series,
    headline_numbers,
    plateau_bandwidth,
)
from repro.core.measurements import Measurement, SweepResult
from repro.core.report import (
    render_figure3,
    render_figure4,
    render_figure5,
    render_headline,
)
from repro.core.sweeps import (
    bandwidth_sweep,
    impl_label,
    latency_sweep,
    run_implementation,
    vl_sweep,
)
from repro.errors import KernelError, ReproError
from repro.kernels import KERNELS
from repro.workloads import get_scale

SCALE = get_scale("smoke")
VLS = (8, 64)
LATS = (0, 128, 1024)
BWS = (1, 8, 64)


@pytest.fixture(scope="module")
def spmv_latency():
    spec = KERNELS["spmv"]
    wl = spec.prepare(SCALE, 7)
    return latency_sweep(spec, wl, latencies=LATS, vls=VLS)


@pytest.fixture(scope="module")
def spmv_bandwidth():
    spec = KERNELS["spmv"]
    wl = spec.prepare(SCALE, 7)
    return bandwidth_sweep(spec, wl, bandwidths=BWS, vls=VLS)


class TestRunImplementation:
    def test_scalar_and_vector_build(self):
        spec = KERNELS["fft"]
        wl = spec.prepare(SCALE, 3)
        for vl in (None, 8):
            sdv, trace = run_implementation(spec, wl, vl)
            assert trace.sealed and len(trace) > 0

    def test_verification_catches_broken_kernel(self):
        spec = KERNELS["spmv"]
        wl = spec.prepare(SCALE, 7)
        import dataclasses
        broken = dataclasses.replace(
            spec, check=lambda out, ref: False
        )
        with pytest.raises(KernelError):
            run_implementation(broken, wl, None)

    def test_impl_label(self):
        assert impl_label(None) == "scalar"
        assert impl_label(256) == "vl256"


class TestLatencySweep:
    def test_grid_complete(self, spmv_latency):
        r = spmv_latency
        assert r.points == list(LATS)
        assert r.impls == ["scalar", "vl8", "vl64"]
        assert len(r.measurements) == len(LATS) * 3

    def test_time_monotone_in_latency(self, spmv_latency):
        for impl in spmv_latency.impls:
            s = spmv_latency.series(impl)
            assert all(a < b for a, b in zip(s, s[1:]))

    def test_vl_reduces_time(self, spmv_latency):
        for i, lat in enumerate(LATS):
            assert (spmv_latency.series("vl64")[i]
                    < spmv_latency.series("vl8")[i])


class TestBandwidthSweep:
    def test_grid_complete(self, spmv_bandwidth):
        assert spmv_bandwidth.points == list(BWS)
        assert len(spmv_bandwidth.measurements) == len(BWS) * 3

    def test_time_monotone_nonincreasing_in_bandwidth(self, spmv_bandwidth):
        for impl in spmv_bandwidth.impls:
            s = spmv_bandwidth.series(impl)
            assert all(a >= b for a, b in zip(s, s[1:]))


class TestVlSweep:
    def test_returns_all_impls(self):
        spec = KERNELS["fft"]
        wl = spec.prepare(SCALE, 3)
        out = vl_sweep(spec, wl, vls=VLS)
        assert set(out) == {"scalar", "vl8", "vl64"}
        assert all(v > 0 for v in out.values())


class TestFigureExtraction:
    def test_figure3(self, spmv_latency):
        series = figure3_series(spmv_latency)
        assert set(series) == set(spmv_latency.impls)
        assert len(series["scalar"]) == len(LATS)

    def test_figure3_needs_latency_axis(self, spmv_bandwidth):
        with pytest.raises(ReproError):
            figure3_series(spmv_bandwidth)

    def test_figure4_normalizes_to_one(self, spmv_latency):
        table = figure4_table(spmv_latency)
        for impl in spmv_latency.impls:
            assert table[impl][0] == pytest.approx(1.0)
            assert all(v >= 1.0 for v in table[impl])

    def test_figure4_needs_zero_point(self):
        r = SweepResult(kernel="k", axis="latency", points=[32], impls=["x"])
        r.add(Measurement(kernel="k", impl="x", extra_latency=32,
                          bandwidth_bpc=64, cycles=1.0))
        with pytest.raises(ReproError):
            figure4_table(r)

    def test_figure5_normalizes_to_min_bandwidth(self, spmv_bandwidth):
        series = figure5_series(spmv_bandwidth)
        for impl in spmv_bandwidth.impls:
            assert series[impl][0] == pytest.approx(1.0)
            assert all(v <= 1.0 + 1e-9 for v in series[impl])

    def test_headline_numbers(self):
        spec = KERNELS["spmv"]
        wl = spec.prepare(SCALE, 7)
        r = latency_sweep(spec, wl, latencies=(0, 32, 1024), vls=(256,))
        h = headline_numbers(r)
        assert h.scalar_at_32 > h.vl256_at_32 >= 1.0
        assert h.scalar_at_1024 > h.vl256_at_1024 > 1.0
        assert len(h.rows()) == 4

    def test_plateau_detection_synthetic(self):
        r = SweepResult(kernel="k", axis="bandwidth", points=[1, 2, 4, 8],
                        impls=["a"])
        for bpc, cycles in [(1, 100), (2, 50), (4, 49), (8, 49)]:
            r.add(Measurement(kernel="k", impl="a", extra_latency=0,
                              bandwidth_bpc=bpc, cycles=cycles))
        assert plateau_bandwidth(r, "a") == 2

    def test_plateau_scalar_before_vl64(self, spmv_bandwidth):
        assert (plateau_bandwidth(spmv_bandwidth, "scalar")
                <= plateau_bandwidth(spmv_bandwidth, "vl64"))


class TestRendering:
    def test_figure3_text(self, spmv_latency):
        out = render_figure3(spmv_latency)
        assert "Figure 3" in out and "spmv" in out
        assert "scalar" in out and "vl64" in out

    def test_figure4_text(self, spmv_latency):
        out = render_figure4(spmv_latency)
        assert "Figure 4" in out
        assert "1.00" in out

    def test_figure4_color(self, spmv_latency):
        out = render_figure4(spmv_latency, color=True)
        assert "\x1b[48;5;" in out

    def test_figure5_text(self, spmv_bandwidth):
        out = render_figure5(spmv_bandwidth)
        assert "Figure 5" in out and "plateaus" in out

    def test_headline_text(self):
        spec = KERNELS["spmv"]
        wl = spec.prepare(SCALE, 7)
        r = latency_sweep(spec, wl, latencies=(0, 32, 1024), vls=(256,))
        out = render_headline(headline_numbers(r))
        assert "paper" in out and "8.78x" in out
