"""Run the doctest examples embedded in library docstrings."""

import doctest

import pytest

import repro.config
import repro.core.compare
import repro.util.mathx
import repro.util.prng
import repro.util.tables
import repro.util.units

MODULES = [
    repro.config,
    repro.core.compare,
    repro.util.mathx,
    repro.util.prng,
    repro.util.tables,
    repro.util.units,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda m: m.__name__)
def test_doctests(module):
    failures, tested = doctest.testmod(module).failed, \
        doctest.testmod(module).attempted
    assert failures == 0
    assert tested > 0, f"{module.__name__} should carry doctest examples"
