"""Unit tests for repro.util.prng."""

from hypothesis import given, strategies as st

from repro.util.prng import derive_seed, make_rng


def test_derive_seed_deterministic():
    assert derive_seed(42, "graph") == derive_seed(42, "graph")


def test_derive_seed_label_sensitivity():
    assert derive_seed(42, "graph") != derive_seed(42, "matrix")


def test_derive_seed_parent_sensitivity():
    assert derive_seed(1, "x") != derive_seed(2, "x")


def test_derive_seed_multiple_labels_order_matters():
    assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")


def test_derive_seed_no_concatenation_collision():
    # ("ab",) and ("a", "b") must differ (the separator byte)
    assert derive_seed(1, "ab") != derive_seed(1, "a", "b")


@given(st.integers(-2**63, 2**63 - 1), st.text(max_size=20))
def test_derive_seed_in_uint64_range(seed, label):
    v = derive_seed(seed, label)
    assert 0 <= v < 2 ** 64


def test_make_rng_reproducible():
    a = make_rng(7, "x").random(8)
    b = make_rng(7, "x").random(8)
    assert (a == b).all()


def test_make_rng_streams_independent():
    a = make_rng(7, "x").random(8)
    b = make_rng(7, "y").random(8)
    assert not (a == b).all()


def test_make_rng_without_labels():
    assert (make_rng(7).random(4) == make_rng(7).random(4)).all()
