"""Unit tests for repro.util.tables."""

import pytest

from repro.util.tables import TextTable, heat_cell, render_heat_table


class TestTextTable:
    def test_basic_render(self):
        t = TextTable(["a", "b"])
        t.add_row([1, 22])
        out = t.render()
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "22" in lines[2]

    def test_column_widths_expand(self):
        t = TextTable(["x"])
        t.add_row(["longvalue"])
        assert "longvalue" in t.render()

    def test_ragged_row_rejected(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_empty_table_renders_header(self):
        t = TextTable(["col"])
        assert "col" in t.render()


class TestHeatCell:
    def test_plain(self):
        assert heat_cell(1.5, 1.0, 2.0).strip() == "1.50"

    def test_color_contains_ansi(self):
        out = heat_cell(2.0, 1.0, 2.0, color=True)
        assert "\x1b[48;5;" in out and out.endswith("\x1b[0m")

    def test_color_gradient_ends(self):
        lo = heat_cell(0.0, 0.0, 1.0, color=True)
        hi = heat_cell(1.0, 0.0, 1.0, color=True)
        assert lo != hi

    def test_degenerate_range(self):
        # vmin == vmax must not divide by zero
        out = heat_cell(1.0, 1.0, 1.0, color=True)
        assert "1.00" in out


class TestRenderHeatTable:
    def test_structure(self):
        out = render_heat_table(
            [0, 32], ["scalar", "vl256"], [[1.0, 1.0], [1.3, 1.1]],
            title="t",
        )
        lines = out.splitlines()
        assert lines[0] == "t"
        assert "scalar" in lines[1]
        assert len(lines) == 4

    def test_values_formatted(self):
        out = render_heat_table([0], ["a"], [[2.345]])
        assert "2.35" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_heat_table([], [], [])

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            render_heat_table([0], ["a", "b"], [[1.0]])
