"""Unit tests for repro.util.units."""

import pytest

from repro.util.units import (
    FPGA_SDV_FREQ_HZ,
    GiB,
    KiB,
    LINE_BYTES,
    MiB,
    bytes_per_cycle,
    cycles_to_seconds,
    fmt_bytes,
    fmt_cycles,
)


def test_constants():
    assert KiB == 1024
    assert MiB == 1024 * KiB
    assert GiB == 1024 * MiB
    assert LINE_BYTES == 64
    assert FPGA_SDV_FREQ_HZ == 50_000_000


def test_cycles_to_seconds_at_paper_frequency():
    assert cycles_to_seconds(FPGA_SDV_FREQ_HZ) == 1.0
    assert cycles_to_seconds(25_000_000) == 0.5


def test_cycles_to_seconds_custom_frequency():
    assert cycles_to_seconds(100, freq_hz=100) == 1.0


def test_cycles_to_seconds_rejects_bad_frequency():
    with pytest.raises(ValueError):
        cycles_to_seconds(1, freq_hz=0)


def test_bytes_per_cycle():
    assert bytes_per_cycle(640, 10) == 64.0
    assert bytes_per_cycle(0, 10) == 0.0


def test_bytes_per_cycle_zero_cycles():
    assert bytes_per_cycle(100, 0) == 0.0


def test_fmt_bytes():
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(2 * KiB) == "2.0 KiB"
    assert fmt_bytes(3 * MiB) == "3.0 MiB"
    assert fmt_bytes(GiB) == "1.0 GiB"


def test_fmt_cycles():
    assert fmt_cycles(500) == "500 cyc"
    assert fmt_cycles(1500) == "1.5 kcyc"
    assert fmt_cycles(2_000_000) == "2.00 Mcyc"
