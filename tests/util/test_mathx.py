"""Unit tests for repro.util.mathx."""

import pytest
from hypothesis import given, strategies as st

from repro.util.mathx import ceil_div, is_pow2, log2_int, next_pow2


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(8, 4) == 2

    def test_round_up(self):
        assert ceil_div(9, 4) == 3

    def test_zero_dividend(self):
        assert ceil_div(0, 4) == 0

    def test_one_divisor(self):
        assert ceil_div(7, 1) == 7

    def test_negative_dividend_rejected(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 4)

    def test_zero_divisor_rejected(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    @given(st.integers(0, 10 ** 9), st.integers(1, 10 ** 6))
    def test_matches_float_ceiling(self, a, b):
        assert ceil_div(a, b) == -(-a // b)

    @given(st.integers(0, 10 ** 9), st.integers(1, 10 ** 6))
    def test_bounds(self, a, b):
        q = ceil_div(a, b)
        assert (q - 1) * b < a or a == 0
        assert q * b >= a


class TestIsPow2:
    def test_powers(self):
        for k in range(20):
            assert is_pow2(1 << k)

    def test_non_powers(self):
        for n in (0, 3, 5, 6, 7, 9, 12, 100, -4):
            assert not is_pow2(n)


class TestLog2Int:
    def test_values(self):
        assert log2_int(1) == 0
        assert log2_int(64) == 6
        assert log2_int(1 << 30) == 30

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            log2_int(48)

    @given(st.integers(0, 50))
    def test_roundtrip(self, k):
        assert log2_int(1 << k) == k


class TestNextPow2:
    def test_values(self):
        assert next_pow2(1) == 1
        assert next_pow2(5) == 8
        assert next_pow2(8) == 8

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            next_pow2(0)

    @given(st.integers(1, 10 ** 9))
    def test_is_smallest_pow2_geq(self, n):
        p = next_pow2(n)
        assert is_pow2(p) and p >= n and (p == 1 or p // 2 < n)
