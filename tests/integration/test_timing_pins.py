"""Exact-cycle regression pins.

The simulator is deterministic, so these canonical runs must reproduce to
the cycle. Any timing-model edit that moves them is either intentional
(re-pin here and re-examine EXPERIMENTS.md, whose headline numbers derive
from the same model) or a regression. Workloads are the 'smoke' scale with
seed 7; pins were recorded with the calibrated v1.0 configuration.
"""

import pytest

from repro.kernels import KERNELS
from repro.soc import FpgaSdv
from repro.workloads import get_scale

#: (kernel, impl) -> (cycles at default knobs, cycles at +1024 latency)
PINS = {
    ("spmv", "scalar"): (33680.0, 367760.0),
    ("spmv", "vl256"): (3914.0, 14290.5),
    ("bfs", "scalar"): (8962.0, 80130.0),
    ("bfs", "vl256"): (12287.0, 56879.234375),
    ("pagerank", "scalar"): (10865.5, 100721.5),
    ("pagerank", "vl256"): (2206.5, 13484.21875),
    ("fft", "scalar"): (5663.0, 31263.0),
    ("fft", "vl256"): (1758.0, 10102.5),
}


@pytest.mark.parametrize("kernel,impl", sorted(PINS))
def test_pinned_cycles(kernel, impl):
    spec = KERNELS[kernel]
    workload = spec.prepare(get_scale("smoke"), 7)
    sdv = FpgaSdv()
    if impl != "scalar":
        sdv.configure(max_vl=int(impl[2:]))
    session = sdv.session()
    spec.build("scalar" if impl == "scalar" else "vector")(session, workload)
    trace = session.seal()

    base_pin, plus_pin = PINS[(kernel, impl)]
    assert sdv.time(trace).cycles == pytest.approx(base_pin, abs=0.51)
    sdv.configure(extra_latency=1024)
    assert sdv.time(trace).cycles == pytest.approx(plus_pin, abs=0.51)


def test_pins_tell_the_papers_story():
    """Even the pinned snapshot encodes the headline contrast."""
    s0, s1 = PINS[("spmv", "scalar")]
    v0, v1 = PINS[("spmv", "vl256")]
    assert (s1 / s0) > 2 * (v1 / v0)   # scalar slowdown >> vl256 slowdown
    assert v0 < s0                     # and vl256 is faster outright
