"""Seed robustness: the paper's qualitative shapes must not depend on the
particular synthetic workload instance."""

import pytest

from repro.core.figures import figure4_table
from repro.core.sweeps import bandwidth_sweep, latency_sweep
from repro.kernels import KERNELS
from repro.workloads import get_scale

SCALE = get_scale("smoke")
SEEDS = (3, 7, 2024)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("kernel", list(KERNELS))
def test_latency_shape_across_seeds(kernel, seed):
    spec = KERNELS[kernel]
    wl = spec.prepare(SCALE, seed)
    result = latency_sweep(spec, wl, latencies=(0, 1024), vls=(64, 256))
    table = figure4_table(result)
    # scalar degrades more than (or, at smoke sizes where compulsory
    # misses dominate everything, within 10% of) the long vectors
    assert table["scalar"][-1] > table["vl64"][-1] * 0.9
    assert table["scalar"][-1] > table["vl256"][-1] * 0.9
    # vl256 wins outright under latency pressure; at base the tiny smoke
    # workloads leave it within strip-overhead distance of scalar (BFS
    # also pays the declared scatter->gather ordering per edge slot)
    assert result.series("vl256")[1] < result.series("scalar")[1]
    assert result.series("vl256")[0] < result.series("scalar")[0] * 1.5


@pytest.mark.parametrize("seed", SEEDS)
def test_bandwidth_shape_across_seeds(seed):
    spec = KERNELS["spmv"]
    wl = spec.prepare(SCALE, seed)
    result = bandwidth_sweep(spec, wl, bandwidths=(1, 8, 64), vls=(256,))
    scalar = result.normalized_series("scalar", baseline_point=1)
    vl256 = result.normalized_series("vl256", baseline_point=1)
    # the long vectors extract at least as much from extra bandwidth
    assert vl256[-1] <= scalar[-1] + 1e-9


@pytest.mark.parametrize("seed", SEEDS)
def test_functional_correctness_across_seeds(seed):
    for name, spec in KERNELS.items():
        wl = spec.prepare(SCALE, seed)
        ref = spec.reference(wl)
        from repro.soc import FpgaSdv
        out = spec.vector(FpgaSdv().session(), wl)
        assert spec.check(out, ref), (name, seed)
