"""Integration tests: the paper's qualitative results must hold.

These are the load-bearing assertions of the whole reproduction — each maps
to a sentence in Section 4 or 5 of the paper. They run at the 'ci' scale
(the structures, not absolute cycle counts, are scale-invariant; the
benchmark harness re-checks at paper scale).
"""

import numpy as np
import pytest

from repro.core.figures import figure4_table, figure5_series, \
    headline_numbers, plateau_bandwidth
from repro.core.sweeps import bandwidth_sweep, latency_sweep
from repro.kernels import KERNELS
from repro.workloads import get_scale

SCALE = get_scale("ci")
VLS = (8, 64, 256)
LATS = (0, 32, 1024)
BWS = (1, 2, 4, 8, 16, 32, 64)


@pytest.fixture(scope="module", params=list(KERNELS))
def kernel_name(request):
    return request.param


@pytest.fixture(scope="module")
def latency_results():
    out = {}
    for name, spec in KERNELS.items():
        wl = spec.prepare(SCALE, 7)
        out[name] = latency_sweep(spec, wl, latencies=LATS, vls=VLS)
    return out


@pytest.fixture(scope="module")
def bandwidth_results():
    out = {}
    for name, spec in KERNELS.items():
        wl = spec.prepare(SCALE, 7)
        out[name] = bandwidth_sweep(spec, wl, bandwidths=BWS, vls=VLS)
    return out


class TestSection41Latency:
    """'the vectorized implementations are less impaired than the scalar
    ones ... accentuated when the vector implementations use a large VL'."""

    def test_all_times_increase_with_latency(self, latency_results,
                                             kernel_name):
        r = latency_results[kernel_name]
        for impl in r.impls:
            s = r.series(impl)
            assert s[0] < s[1] < s[2], (kernel_name, impl)

    def test_scalar_slowdown_worse_than_long_vectors(self, latency_results,
                                                     kernel_name):
        """Scalar degrades more than the long-vector implementations.

        Note: at VL=8 two kernels (BFS, FFT) have dispatch/sync-bound base
        times in our model, which mutes their *relative* slowdown below the
        scalar one — a documented deviation (EXPERIMENTS.md); the paper's
        conclusion concerns long vectors, asserted here for VL>=64.
        """
        table = figure4_table(latency_results[kernel_name])
        at_1024 = {impl: table[impl][-1] for impl in table}
        assert at_1024["scalar"] > at_1024["vl64"], (kernel_name, at_1024)
        assert at_1024["scalar"] > at_1024["vl256"], (kernel_name, at_1024)

    def test_vl256_slowdown_best_of_long_vectors(self, latency_results,
                                                 kernel_name):
        table = figure4_table(latency_results[kernel_name])
        at_1024 = {impl: table[impl][-1] for impl in table}
        assert at_1024["vl256"] <= at_1024["vl64"], (kernel_name, at_1024)
        assert at_1024["vl256"] < at_1024["scalar"], (kernel_name, at_1024)

    def test_absolute_time_decreases_with_vl(self, latency_results,
                                             kernel_name):
        """Longer vectors run faster in absolute cycles at every latency
        (small tolerance between adjacent VLs for strip-count granularity
        effects at CI scale)."""
        r = latency_results[kernel_name]
        for i in range(len(LATS)):
            v = [r.series(f"vl{vl}")[i] for vl in VLS]
            assert v[2] < v[0], (kernel_name, LATS[i], v)      # strict 8->256
            assert v[1] < v[0] * 1.05, (kernel_name, LATS[i], v)
            assert v[2] < v[1] * 1.20, (kernel_name, LATS[i], v)

    def test_vector_vl256_faster_than_scalar_everywhere(self,
                                                        latency_results,
                                                        kernel_name):
        r = latency_results[kernel_name]
        for i in range(len(LATS)):
            assert r.series("vl256")[i] < r.series("scalar")[i]

    def test_spmv_slowdowns_monotone_across_all_vls(self, latency_results):
        """SpMV (the paper's worked example) gets the strict property."""
        table = figure4_table(latency_results["spmv"])
        order = ["scalar", "vl8", "vl64", "vl256"]
        at_1024 = [table[i][-1] for i in order]
        assert all(a > b for a, b in zip(at_1024, at_1024[1:])), at_1024


class TestSection41Headline:
    """SpMV: +32 -> scalar 1.22x vs vl256 1.05x; +1024 -> 8.78x vs 3.39x.

    Absolute matches are not expected (different substrate); the reproduced
    numbers must preserve the contrast and rough magnitude.
    """

    @pytest.fixture(scope="class")
    def numbers(self):
        spec = KERNELS["spmv"]
        wl = spec.prepare(SCALE, 7)
        return headline_numbers(
            latency_sweep(spec, wl, latencies=(0, 32, 1024), vls=(256,))
        )

    def test_contrast_at_32(self, numbers):
        assert numbers.vl256_at_32 < numbers.scalar_at_32

    def test_vl256_nearly_unaffected_at_32(self, numbers):
        assert numbers.vl256_at_32 < 1.10  # paper: 1.05

    def test_scalar_visibly_affected_at_32(self, numbers):
        assert 1.10 < numbers.scalar_at_32 < 1.60  # paper: 1.22

    def test_magnitudes_at_1024(self, numbers):
        assert 5.0 < numbers.scalar_at_1024 < 16.0      # paper: 8.78
        assert 1.5 < numbers.vl256_at_1024 < 6.0        # paper: 3.39

    def test_factor_between_scalar_and_vl256(self, numbers):
        ratio = numbers.scalar_at_1024 / numbers.vl256_at_1024
        paper_ratio = 8.78 / 3.39
        assert ratio > 1.5  # the win direction and rough size
        assert ratio == pytest.approx(paper_ratio, rel=1.0)


class TestSection42Bandwidth:
    """'scalar versions do not take advantage of bandwidths higher than 1-2
    B/cycle ... larger VL benefit more from higher bandwidth'."""

    def test_normalized_time_nonincreasing(self, bandwidth_results,
                                           kernel_name):
        series = figure5_series(bandwidth_results[kernel_name])
        for impl, s in series.items():
            assert all(a >= b - 1e-9 for a, b in zip(s, s[1:])), (impl, s)

    def test_scalar_plateaus_early(self, bandwidth_results, kernel_name):
        p = plateau_bandwidth(bandwidth_results[kernel_name], "scalar")
        assert p <= 4, (kernel_name, p)  # paper: 1-2 B/cycle

    def test_vl256_plateaus_at_or_after_scalar(self, bandwidth_results,
                                               kernel_name):
        r = bandwidth_results[kernel_name]
        assert (plateau_bandwidth(r, "vl256")
                >= plateau_bandwidth(r, "scalar")), kernel_name

    def test_spmv_vl256_uses_high_bandwidth(self, bandwidth_results):
        """The memory-bound kernel shows the full effect: VL=256 keeps
        benefiting up to 32-64 B/cycle."""
        assert plateau_bandwidth(bandwidth_results["spmv"], "vl256") >= 16

    def test_vl256_gains_more_than_scalar(self, bandwidth_results,
                                          kernel_name):
        series = figure5_series(bandwidth_results[kernel_name])
        # final normalized time: lower = benefited more from bandwidth
        assert series["vl256"][-1] <= series["scalar"][-1] + 1e-9
