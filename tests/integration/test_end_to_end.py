"""End-to-end workflows: the library as a downstream user drives it."""

import numpy as np
import pytest

from repro import (
    FpgaSdv,
    KERNELS,
    SdvConfig,
    get_scale,
    latency_sweep,
    simulate_events,
    simulate_fast,
)
from repro.workloads.mm_io import read_matrix_market, write_matrix_market


class TestFullWorkflow:
    def test_matrix_market_roundtrip_into_spmv(self, tmp_path):
        """Persist a matrix, reload it (as one would the real cage10.mtx),
        and run the whole SpMV comparison on it."""
        from repro.workloads.cage import scaled_cage_like
        mat = scaled_cage_like(256, seed=5)
        path = tmp_path / "cage.mtx"
        write_matrix_market(path, mat)
        loaded = read_matrix_market(path)

        spec = KERNELS["spmv"]
        ref = spec.reference(loaded)
        for vl in (None, 64):
            sdv = FpgaSdv()
            if vl:
                sdv.configure(max_vl=vl)
            build = spec.scalar if vl is None else spec.vector
            out = build(sdv.session(), loaded)
            assert spec.check(out, ref)

    def test_custom_machine_configuration_end_to_end(self):
        """A user studies a hypothetical 16-lane, small-L2 variant."""
        from repro.config import L2Config, VpuConfig
        cfg = SdvConfig(
            vpu=VpuConfig(lanes=16, max_vl=256),
            l2=L2Config(banks=4, bank_bytes=64 * 1024, ways=8),
        ).validate()
        spec = KERNELS["fft"]
        wl = spec.prepare(get_scale("smoke"), 3)
        result = latency_sweep(spec, wl, latencies=(0, 1024), vls=(256,),
                               config=cfg)
        assert result.cycles("vl256", 1024) > result.cycles("vl256", 0)

    def test_all_kernels_verify_on_both_engines(self):
        """Functional results are engine-independent (timing only)."""
        scale = get_scale("smoke")
        for name, spec in KERNELS.items():
            wl = spec.prepare(scale, 7)
            ref = spec.reference(wl)
            sdv = FpgaSdv()
            sess = sdv.session()
            out = spec.vector(sess, wl)
            assert spec.check(out, ref), name
            trace = sess.seal()
            ct = sdv.classify(trace)
            fast = simulate_fast(ct)
            event = simulate_events(ct)
            assert fast.dram_reads == event.dram_reads, name
            assert fast.cycles == pytest.approx(event.cycles, rel=0.6), name

    def test_sweep_determinism_across_runs(self):
        spec = KERNELS["spmv"]
        wl = spec.prepare(get_scale("smoke"), 7)
        a = latency_sweep(spec, wl, latencies=(0, 64), vls=(8, 64))
        b = latency_sweep(spec, wl, latencies=(0, 64), vls=(8, 64))
        for impl in a.impls:
            assert a.series(impl) == b.series(impl)

    def test_counters_track_a_whole_study(self):
        sdv = FpgaSdv()
        spec = KERNELS["fft"]
        wl = spec.prepare(get_scale("smoke"), 3)
        for _ in range(3):
            sdv.run(spec.vector, wl)
        assert len(sdv.counters.history) == 3
        assert sdv.counters.cycles == pytest.approx(
            sum(sdv.counters.history))

    def test_memory_budget_respected_at_paper_scale_sizes(self):
        """Paper-scale allocations fit the default simulated memory."""
        from repro.workloads.graphs import rmat_graph
        g = rmat_graph(2 ** 12, edge_factor=8, seed=1)
        sdv = FpgaSdv()
        sess = sdv.session()
        out = KERNELS["bfs"].vector(sess, g)
        assert sess.mem.used_bytes < sdv.config.memory_bytes
        assert out.value.shape == (g.n,)
