"""Unit tests for the VPU cost model."""

import pytest

from repro.config import SdvConfig, VpuConfig
from repro.engine.vpu_model import (
    HEAVY_CPE,
    arith_latency,
    arith_occupancy,
    vmem_cost,
)
from repro.trace.events import VMemPattern, VOpClass


def cfg(**vpu_kwargs):
    return SdvConfig(vpu=VpuConfig(**vpu_kwargs)).validate()


class TestArithOccupancy:
    def test_scales_with_vl_over_lanes(self):
        c = cfg(lanes=8)
        assert arith_occupancy(c, VOpClass.ARITH, 8) == 1
        assert arith_occupancy(c, VOpClass.ARITH, 256) == 32

    def test_partial_group_rounds_up(self):
        c = cfg(lanes=8)
        assert arith_occupancy(c, VOpClass.ARITH, 9) == 2

    def test_heavy_multiplier(self):
        c = cfg(lanes=8)
        assert arith_occupancy(c, VOpClass.ARITH_HEAVY, 8) == HEAVY_CPE

    def test_reduce_has_tree_overhead(self):
        c = cfg(lanes=8)
        assert (arith_occupancy(c, VOpClass.REDUCE, 8)
                > arith_occupancy(c, VOpClass.ARITH, 8))

    def test_permute_is_two_passes(self):
        c = cfg(lanes=8)
        assert arith_occupancy(c, VOpClass.PERMUTE, 64) == 16

    def test_mask_ops_cheap(self):
        c = cfg(lanes=8)
        assert arith_occupancy(c, VOpClass.MASK, 256) <= 4

    def test_mem_class_rejected(self):
        with pytest.raises(ValueError):
            arith_occupancy(cfg(), VOpClass.MEM, 8)

    def test_more_lanes_less_occupancy(self):
        assert (arith_occupancy(cfg(lanes=16), VOpClass.ARITH, 256)
                < arith_occupancy(cfg(lanes=8), VOpClass.ARITH, 256))

    def test_latency_includes_startup(self):
        assert arith_latency(cfg(startup_cycles=3)) > 3


class TestVmemCost:
    def test_unit_stride_addr_rate(self):
        c = cfg(stride_issue_per_cycle=1)
        cost = vmem_cost(c, pattern=VMemPattern.UNIT, vl=256, active=256,
                         n_lines=32, dram_reads=0, dram_writes=0)
        assert cost.addr_cycles == 32.0

    def test_gather_addr_rate_per_element(self):
        c = cfg(gather_issue_per_cycle=2)
        cost = vmem_cost(c, pattern=VMemPattern.INDEXED, vl=256, active=256,
                         n_lines=100, dram_reads=0, dram_writes=0)
        assert cost.addr_cycles == 128.0

    def test_masked_gather_uses_active(self):
        c = cfg(gather_issue_per_cycle=2)
        cost = vmem_cost(c, pattern=VMemPattern.INDEXED, vl=256, active=10,
                         n_lines=10, dram_reads=0, dram_writes=0)
        assert cost.addr_cycles == 5.0

    def test_first_latency_is_worst_touched_level(self):
        c = cfg()
        l2_only = vmem_cost(c, pattern=VMemPattern.UNIT, vl=8, active=8,
                            n_lines=1, dram_reads=0, dram_writes=0)
        dram = vmem_cost(c, pattern=VMemPattern.UNIT, vl=8, active=8,
                         n_lines=1, dram_reads=1, dram_writes=0)
        assert l2_only.first_latency == c.l2_hit_latency
        assert dram.first_latency == c.dram_latency

    def test_empty_instruction(self):
        cost = vmem_cost(cfg(), pattern=VMemPattern.UNIT, vl=0, active=0,
                         n_lines=0, dram_reads=0, dram_writes=0)
        assert cost.first_latency == 0.0
        assert cost.service_cycles == 0.0

    def test_bandwidth_stretches_service(self):
        throttled = SdvConfig().with_bandwidth(8)   # 1 line / 8 cycles
        cost = vmem_cost(throttled, pattern=VMemPattern.UNIT, vl=256,
                         active=256, n_lines=32, dram_reads=32,
                         dram_writes=0)
        assert cost.service_cycles == pytest.approx(32 * 8)

    def test_l2_resident_service_unthrottled(self):
        throttled = SdvConfig().with_bandwidth(1)
        cost = vmem_cost(throttled, pattern=VMemPattern.UNIT, vl=256,
                         active=256, n_lines=32, dram_reads=0,
                         dram_writes=0)
        assert cost.service_cycles == 32.0  # L2 hits bypass the limiter

    def test_extra_latency_in_first_latency(self):
        c = SdvConfig().with_extra_latency(500)
        cost = vmem_cost(c, pattern=VMemPattern.UNIT, vl=8, active=8,
                         n_lines=1, dram_reads=1, dram_writes=0)
        assert cost.first_latency == pytest.approx(c.dram_latency)
        assert cost.first_latency > 500

    def test_completion_after_start(self):
        cost = vmem_cost(cfg(), pattern=VMemPattern.UNIT, vl=64, active=64,
                         n_lines=8, dram_reads=8, dram_writes=0)
        assert cost.completion_after_start == pytest.approx(
            cost.first_latency + max(cost.addr_cycles, cost.service_cycles)
        )

    def test_writebacks_consume_channel(self):
        c = SdvConfig().with_bandwidth(8)
        without = vmem_cost(c, pattern=VMemPattern.UNIT, vl=64, active=64,
                            n_lines=8, dram_reads=8, dram_writes=0)
        with_wb = vmem_cost(c, pattern=VMemPattern.UNIT, vl=64, active=64,
                            n_lines=8, dram_reads=8, dram_writes=4)
        assert with_wb.service_cycles > without.service_cycles
