"""Cross-validation: the fast analytical engine against the discrete-event
reference.

The two engines share cost models but differ in queueing fidelity, so exact
equality is not expected; the tests pin (a) a quantitative envelope on small
real programs and (b) identical *qualitative* behaviour — the orderings the
paper's conclusions rest on.
"""

import numpy as np
import pytest

from repro.config import SdvConfig
from repro.engine.event_sim import simulate_events
from repro.engine.fast_sim import simulate_fast
from repro.isa import ScalarContext, VectorContext
from repro.memory.address_space import MemoryImage
from repro.memory.classify import classify_trace
from repro.trace.events import TraceBuffer

#: relative envelope between engines on mixed small programs
TOLERANCE = 0.5


def build_trace(build, max_vl=256):
    mem = MemoryImage(1 << 22)
    trace = TraceBuffer()
    vec = VectorContext(mem, trace, max_vl=max_vl)
    scl = ScalarContext(mem, trace)
    build(mem, scl, vec)
    scl.flush()
    return trace.seal()


def both(trace, config=None):
    config = (config or SdvConfig()).validate()
    ct = classify_trace(trace, config)
    return simulate_fast(ct).cycles, simulate_events(ct).cycles


def _axpy(mem, scl, vec):
    a = mem.alloc("x", np.arange(4096, dtype=np.float64))
    b = mem.alloc("y", np.arange(4096, dtype=np.float64))
    i, n = 0, 4096
    while i < n:
        vl = vec.vsetvl(n - i)
        xv = vec.vle(a, i)
        yv = vec.vle(b, i)
        yv = vec.vfmacc(yv, xv, 3.0)
        vec.vse(yv, b, i)
        i += vl


def _gather(mem, scl, vec):
    rng = np.random.default_rng(1)
    a = mem.alloc("x", rng.random(1 << 13))
    idx = mem.alloc("idx", rng.integers(0, 1 << 13, 2048))
    i, n = 0, 2048
    while i < n:
        vl = vec.vsetvl(n - i)
        iv = vec.vle(idx, i)
        vec.vlxe(a, iv)
        i += vl


def _scalar_walk(mem, scl, vec):
    rng = np.random.default_rng(2)
    a = mem.alloc("x", rng.random(1 << 13))
    idx = rng.integers(0, 1 << 13, 2048)
    scl.emit_block(a.addr(idx), False, 4 * 2048)


PROGRAMS = {"axpy": _axpy, "gather": _gather, "scalar": _scalar_walk}


class TestQuantitativeEnvelope:
    @pytest.mark.parametrize("name", list(PROGRAMS))
    def test_engines_agree_at_default_knobs(self, name):
        trace = build_trace(PROGRAMS[name])
        fast, event = both(trace)
        assert fast == pytest.approx(event, rel=TOLERANCE), (fast, event)

    @pytest.mark.parametrize("name", list(PROGRAMS))
    def test_engines_agree_under_latency(self, name):
        trace = build_trace(PROGRAMS[name])
        fast, event = both(trace, SdvConfig().with_extra_latency(512))
        assert fast == pytest.approx(event, rel=TOLERANCE), (fast, event)

    @pytest.mark.parametrize("name", list(PROGRAMS))
    def test_engines_agree_under_throttling(self, name):
        trace = build_trace(PROGRAMS[name])
        fast, event = both(trace, SdvConfig().with_bandwidth(4))
        assert fast == pytest.approx(event, rel=TOLERANCE), (fast, event)


class TestQualitativeAgreement:
    def test_latency_slope_ordering_matches(self):
        """Both engines must rank VL=256 as more latency-tolerant than VL=8."""
        def slope(engine_fn, max_vl):
            trace = build_trace(_gather, max_vl=max_vl)
            base_cfg = SdvConfig().validate()
            slow_cfg = SdvConfig().with_extra_latency(1024)
            t0 = engine_fn(classify_trace(trace, base_cfg)).cycles
            t1 = engine_fn(classify_trace(trace, slow_cfg)).cycles
            return t1 / t0

        assert slope(simulate_fast, 256) < slope(simulate_fast, 8)
        assert slope(simulate_events, 256) < slope(simulate_events, 8)

    def test_bandwidth_benefit_ordering_matches(self):
        """Both engines: VL=256 gains more from 64 B/c than VL=8 does."""
        def gain(engine_fn, max_vl):
            trace = build_trace(_axpy, max_vl=max_vl)
            t_lo = engine_fn(
                classify_trace(trace, SdvConfig().with_bandwidth(1))).cycles
            t_hi = engine_fn(
                classify_trace(trace, SdvConfig().with_bandwidth(64))).cycles
            return t_lo / t_hi

        assert gain(simulate_fast, 256) > gain(simulate_fast, 8)
        assert gain(simulate_events, 256) > gain(simulate_events, 8)

    def test_dram_accounting_identical(self):
        trace = build_trace(_axpy)
        ct = classify_trace(trace, SdvConfig().validate())
        fast = simulate_fast(ct)
        event = simulate_events(ct)
        assert fast.dram_reads == event.dram_reads
        assert fast.dram_writes == event.dram_writes
