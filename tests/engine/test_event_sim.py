"""Unit tests for the discrete-event reference engine."""

import numpy as np
import pytest

from repro.config import SdvConfig, VpuConfig
from repro.engine.event_sim import simulate_events
from repro.isa import ScalarContext, VectorContext
from repro.memory.address_space import MemoryImage
from repro.memory.classify import classify_trace
from repro.trace.events import TraceBuffer


def run_program(build, config=None, max_vl=256):
    config = (config or SdvConfig()).validate()
    mem = MemoryImage(1 << 22)
    trace = TraceBuffer()
    vec = VectorContext(mem, trace, max_vl=max_vl)
    scl = ScalarContext(mem, trace)
    build(mem, scl, vec)
    scl.flush()
    ct = classify_trace(trace.seal(), config)
    return simulate_events(ct)


class TestBasics:
    def test_empty_trace(self):
        ct = classify_trace(TraceBuffer().seal(), SdvConfig().validate())
        assert simulate_events(ct).cycles == 0.0

    def test_alu_only(self):
        r = run_program(lambda m, s, v: s.emit_alu(100))
        assert r.cycles == pytest.approx(50.0)

    def test_single_vector_load_latency(self):
        def build(mem, scl, vec):
            a = mem.alloc("x", np.arange(8, dtype=np.float64))
            vec.vsetvl(8)
            vec.vle(a)
        cfg = SdvConfig().validate()
        r = run_program(build, config=cfg)
        # one line from DRAM: dispatch + NoC + bank + DRAM + NoC back
        assert r.cycles >= cfg.mem.dram_service_cycles
        assert r.cycles < 3 * cfg.dram_latency

    def test_latency_knob_visible(self):
        def build(mem, scl, vec):
            a = mem.alloc("x", np.arange(8, dtype=np.float64))
            vec.vsetvl(8)
            vec.vle(a)
        base = run_program(build).cycles
        slow = run_program(build,
                           config=SdvConfig().with_extra_latency(1000)).cycles
        assert slow - base == pytest.approx(1000, rel=0.05)

    def test_bandwidth_knob_visible(self):
        def build(mem, scl, vec):
            a = mem.alloc("x", np.arange(4096, dtype=np.float64))
            i, n = 0, 4096
            while i < n:
                vl = vec.vsetvl(n - i)
                vec.vle(a, i)
                i += vl
        fast = run_program(build, config=SdvConfig().with_bandwidth(64))
        slow = run_program(build, config=SdvConfig().with_bandwidth(2))
        assert slow.cycles > 5 * fast.cycles

    def test_scalar_mlp_bound(self):
        def build_with_mlp(mlp):
            def build(mem, scl, vec):
                rng = np.random.default_rng(0)
                a = mem.alloc("x", rng.random(1 << 14))
                idx = rng.integers(0, 1 << 14, 256)
                scl.emit_block(a.addr(idx), False, 0, mlp_hint=mlp)
            return build

        serial = run_program(build_with_mlp(1)).cycles
        parallel = run_program(build_with_mlp(1 << 20)).cycles
        assert parallel < serial / 2

    def test_queue_full_stalls_dispatch(self):
        def stream(mem, scl, vec):
            a = mem.alloc("x", np.arange(1 << 12, dtype=np.float64))
            i, n = 0, 1 << 12
            while i < n:
                vl = vec.vsetvl(n - i)
                vec.vle(a, i)
                i += vl

        import dataclasses
        deep = SdvConfig(vpu=VpuConfig(mem_queue_depth=16)
                         ).with_extra_latency(800)
        shallow = SdvConfig(vpu=VpuConfig(mem_queue_depth=1)
                            ).with_extra_latency(800)
        assert (run_program(stream, config=deep, max_vl=8).cycles
                < run_program(stream, config=shallow, max_vl=8).cycles)

    def test_breakdown_populated(self):
        def build(mem, scl, vec):
            a = mem.alloc("x", np.arange(256, dtype=np.float64))
            vec.vsetvl(256)
            v = vec.vle(a)
            vec.vfadd(v, 1.0)
            scl.emit_alu(10)
        r = run_program(build)
        assert r.engine == "event-ref"
        assert r.vpu_arith_cycles > 0
        assert r.scalar_issue_cycles > 0
