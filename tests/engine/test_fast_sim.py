"""Unit tests for the fast (analytical) timing engine."""

import numpy as np
import pytest

from repro.config import SdvConfig, VpuConfig
from repro.engine.fast_sim import simulate_fast
from repro.isa import ScalarContext, VectorContext
from repro.memory.address_space import MemoryImage
from repro.memory.classify import classify_trace
from repro.trace.events import TraceBuffer


def run_program(build, config=None, max_vl=256):
    """Build a tiny program and time it with the fast engine."""
    config = (config or SdvConfig()).validate()
    mem = MemoryImage(1 << 22)
    trace = TraceBuffer()
    vec = VectorContext(mem, trace, max_vl=max_vl)
    scl = ScalarContext(mem, trace)
    build(mem, scl, vec)
    scl.flush()
    ct = classify_trace(trace.seal(), config)
    return simulate_fast(ct)


class TestBasics:
    def test_empty_trace_is_zero_cycles(self):
        ct = classify_trace(TraceBuffer().seal(), SdvConfig().validate())
        assert simulate_fast(ct).cycles == 0.0

    def test_alu_only_block(self):
        r = run_program(lambda m, s, v: s.emit_alu(100))
        assert r.cycles == pytest.approx(100 / 2)  # issue width 2

    def test_cycles_positive_for_any_memory_work(self):
        def build(mem, scl, vec):
            a = mem.alloc("x", np.arange(64, dtype=np.float64))
            scl.emit_block(a.addr(np.arange(64)), False, 0)
        r = run_program(build)
        assert r.cycles > 0
        assert r.dram_reads > 0

    def test_report_totals_match_classification(self):
        def build(mem, scl, vec):
            a = mem.alloc("x", np.arange(512, dtype=np.float64))
            vec.vsetvl(256)
            vec.vle(a)
            vec.vle(a, 256)
        r = run_program(build)
        assert r.dram_reads == 64  # 512 doubles = 64 lines
        assert r.dram_bytes == 64 * 64


class TestLatencyResponse:
    def _gather_heavy(self, mem, scl, vec):
        rng = np.random.default_rng(0)
        a = mem.alloc("x", rng.random(1 << 15))
        idx = mem.alloc("idx", rng.integers(0, 1 << 15, 1 << 12))
        i = 0
        n = 1 << 12
        while i < n:
            vl = vec.vsetvl(n - i)
            iv = vec.vle(idx, i)
            vec.vlxe(a, iv)
            i += vl

    def test_time_increases_with_latency(self):
        base = run_program(self._gather_heavy)
        slow = run_program(self._gather_heavy,
                           config=SdvConfig().with_extra_latency(512))
        assert slow.cycles > base.cycles

    def test_larger_vl_flatter_slope(self):
        def slope(max_vl):
            t0 = run_program(self._gather_heavy, max_vl=max_vl).cycles
            t1 = run_program(
                self._gather_heavy,
                config=SdvConfig().with_extra_latency(1024),
                max_vl=max_vl,
            ).cycles
            return t1 / t0

        assert slope(256) < slope(8)


class TestBandwidthResponse:
    def _stream(self, mem, scl, vec):
        a = mem.alloc("x", np.arange(1 << 14, dtype=np.float64))
        b = mem.alloc("y", 1 << 14, np.float64)
        i, n = 0, 1 << 14
        while i < n:
            vl = vec.vsetvl(n - i)
            v = vec.vle(a, i)
            vec.vse(v, b, i)
            i += vl

    def test_time_decreases_with_bandwidth(self):
        t1 = run_program(self._stream, config=SdvConfig().with_bandwidth(1))
        t64 = run_program(self._stream, config=SdvConfig().with_bandwidth(64))
        assert t64.cycles < t1.cycles

    def test_throttled_run_is_bandwidth_bound(self):
        r = run_program(self._stream, config=SdvConfig().with_bandwidth(1))
        # 2048 read lines at 1/64 requests/cycle dominates everything
        assert r.cycles >= (r.dram_reads - 1) * 64

    def test_achieved_bandwidth_respects_limit(self):
        for bpc in (1, 4, 64):
            r = run_program(self._stream,
                            config=SdvConfig().with_bandwidth(bpc))
            # the last in-flight line can round the average up slightly
            assert r.achieved_bytes_per_cycle <= bpc * 1.01


class TestDecoupling:
    def test_scalar_work_overlaps_vector_memory(self):
        def vector_only(mem, scl, vec):
            a = mem.alloc("x", np.arange(1 << 13, dtype=np.float64))
            i, n = 0, 1 << 13
            while i < n:
                vl = vec.vsetvl(n - i)
                vec.vle(a, i)
                i += vl

        def with_scalar(mem, scl, vec):
            a = mem.alloc("x", np.arange(1 << 13, dtype=np.float64))
            i, n = 0, 1 << 13
            while i < n:
                vl = vec.vsetvl(n - i)
                vec.vle(a, i)
                scl.emit_alu(20)  # decoupled core runs this for free
                i += vl

        t_a = run_program(vector_only).cycles
        t_b = run_program(with_scalar).cycles
        assert t_b < t_a * 1.3

    def test_reduction_synchronizes_scalar_core(self):
        def with_sync(mem, scl, vec):
            a = mem.alloc("x", np.arange(4096, dtype=np.float64))
            i, n = 0, 4096
            while i < n:
                vl = vec.vsetvl(n - i)
                v = vec.vle(a, i)
                vec.vfredsum(v)   # scalar destination: core waits
                i += vl

        def without_sync(mem, scl, vec):
            a = mem.alloc("x", np.arange(4096, dtype=np.float64))
            i, n = 0, 4096
            while i < n:
                vl = vec.vsetvl(n - i)
                v = vec.vle(a, i)
                vec.vfadd(v, 1.0)
                i += vl

        assert (run_program(with_sync).cycles
                > run_program(without_sync).cycles)

    def test_queue_depth_improves_latency_tolerance(self):
        def stream(mem, scl, vec):
            a = mem.alloc("x", np.arange(1 << 13, dtype=np.float64))
            i, n = 0, 1 << 13
            while i < n:
                vl = vec.vsetvl(n - i)
                vec.vle(a, i)
                i += vl

        def cycles(depth):
            cfg = SdvConfig(
                vpu=VpuConfig(mem_queue_depth=depth)
            ).with_extra_latency(1024)
            return run_program(stream, config=cfg, max_vl=8).cycles

        assert cycles(16) < cycles(1)

    def test_barrier_serializes(self):
        def with_barrier(mem, scl, vec):
            a = mem.alloc("x", np.arange(512, dtype=np.float64))
            vec.vsetvl(256)
            vec.vle(a)
            scl.barrier()
            vec.vle(a, 256)

        def without_barrier(mem, scl, vec):
            a = mem.alloc("x", np.arange(512, dtype=np.float64))
            vec.vsetvl(256)
            vec.vle(a)
            vec.vle(a, 256)

        assert (run_program(with_barrier).cycles
                >= run_program(without_barrier).cycles)


class TestChaining:
    def test_chaining_speeds_up_dependent_chains(self):
        def chain(mem, scl, vec):
            a = mem.alloc("x", np.arange(4096, dtype=np.float64))
            i, n = 0, 4096
            while i < n:
                vl = vec.vsetvl(n - i)
                v = vec.vle(a, i)
                v = vec.vfmul(v, 2.0)
                v = vec.vfadd(v, 1.0)
                vec.vse(v, a, i)
                i += vl

        chained = run_program(chain).cycles
        import dataclasses
        cfg = SdvConfig(vpu=VpuConfig(chaining=False)).validate()
        unchained = run_program(chain, config=cfg).cycles
        assert chained < unchained
