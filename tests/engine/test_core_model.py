"""Unit tests for the scalar-core cost model."""

import pytest

from repro.config import CoreConfig, MemConfig, SdvConfig
from repro.engine.core_model import scalar_block_time
from repro.trace.events import MLP_UNBOUNDED


def cfg(**mem_kwargs):
    return SdvConfig(mem=MemConfig(**mem_kwargs)).validate()


class TestIssue:
    def test_issue_width_divides(self):
        bt = scalar_block_time(cfg(), n_alu=10, n_mem=10, l2_hits=0,
                               dram_reads=0, dram_writes=0,
                               mlp_hint=MLP_UNBOUNDED)
        assert bt.issue == 10.0  # (10+10)/2
        assert bt.total == 10.0

    def test_alu_cpi_scales(self):
        config = SdvConfig(core=CoreConfig(alu_cpi=2.0)).validate()
        bt = scalar_block_time(config, n_alu=10, n_mem=0, l2_hits=0,
                               dram_reads=0, dram_writes=0, mlp_hint=1)
        assert bt.issue == 10.0


class TestStalls:
    def test_dram_stall_divided_by_mlp(self):
        config = cfg()
        p = config.core.mshrs
        bt = scalar_block_time(config, n_alu=0, n_mem=p, l2_hits=0,
                               dram_reads=p, dram_writes=0,
                               mlp_hint=MLP_UNBOUNDED)
        assert bt.stall_dram == pytest.approx(config.dram_latency)

    def test_mlp_hint_caps_parallelism(self):
        config = cfg()
        bt = scalar_block_time(config, n_alu=0, n_mem=4, l2_hits=0,
                               dram_reads=4, dram_writes=0, mlp_hint=1)
        assert bt.stall_dram == pytest.approx(4 * config.dram_latency)

    def test_extra_latency_raises_stall_linearly(self):
        base = scalar_block_time(cfg(), n_alu=0, n_mem=8, l2_hits=0,
                                 dram_reads=8, dram_writes=0, mlp_hint=8)
        plus = scalar_block_time(cfg(extra_latency_cycles=100), n_alu=0,
                                 n_mem=8, l2_hits=0, dram_reads=8,
                                 dram_writes=0, mlp_hint=8)
        # 8 misses at MLP min(8, mshrs=4)=4 -> 2 serialized groups
        assert plus.stall_dram - base.stall_dram == pytest.approx(200.0)

    def test_l2_hits_cheaper_than_dram(self):
        l2 = scalar_block_time(cfg(), n_alu=0, n_mem=4, l2_hits=4,
                               dram_reads=0, dram_writes=0, mlp_hint=4)
        dram = scalar_block_time(cfg(), n_alu=0, n_mem=4, l2_hits=0,
                                 dram_reads=4, dram_writes=0, mlp_hint=4)
        assert l2.stall < dram.stall

    def test_total_is_issue_plus_stall(self):
        bt = scalar_block_time(cfg(), n_alu=10, n_mem=2, l2_hits=0,
                               dram_reads=2, dram_writes=0, mlp_hint=2)
        assert bt.total == pytest.approx(bt.issue + bt.stall)


class TestBandwidthFloor:
    def test_floor_counts_reads_and_writes(self):
        config = cfg(bw_num=1, bw_den=8)
        bt = scalar_block_time(config, n_alu=0, n_mem=10, l2_hits=0,
                               dram_reads=6, dram_writes=4, mlp_hint=64)
        assert bt.bw_floor == pytest.approx(10 * 8)

    def test_floor_dominates_when_throttled_hard(self):
        config = cfg(bw_num=1, bw_den=64)
        bt = scalar_block_time(config, n_alu=0, n_mem=100, l2_hits=0,
                               dram_reads=100, dram_writes=0,
                               mlp_hint=MLP_UNBOUNDED)
        assert bt.total == bt.bw_floor

    def test_peak_bandwidth_floor_is_one_per_cycle(self):
        bt = scalar_block_time(cfg(), n_alu=0, n_mem=10, l2_hits=0,
                               dram_reads=10, dram_writes=0, mlp_hint=1)
        assert bt.bw_floor == 10.0
