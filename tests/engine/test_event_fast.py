"""Bit-exactness of the array-backed event engine against the reference.

The contract (``docs/engines.md``): ``simulate_events_fast`` is an
order-isomorphic reimplementation of the coroutine DES — same integer
cycle counts, same breakdown, same DRAM/NoC/limiter/latency accounting,
same timelines, same attribution buckets — on every kernel, VL, and knob
setting. These tests enforce *equality*, not an envelope: any drift
between the two engines is a bug in one of them.
"""

import dataclasses
import functools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import SdvConfig, VpuConfig
from repro.core.sweeps import run_implementation
from repro.engine import ENGINES
from repro.engine.batch_sim import simulate_batch_one
from repro.engine.event_fast import simulate_events_fast
from repro.engine.event_sim import simulate_events
from repro.isa import ScalarContext, VectorContext
from repro.kernels import KERNELS
from repro.memory.address_space import MemoryImage
from repro.memory.classify import classify_trace
from repro.obs.attribution import attribute
from repro.obs.timeline import TimelineRecorder
from repro.trace.events import TraceBuffer
from repro.workloads import get_scale

GRID_VLS = (8, 64, 256)

#: sampled sweep-knob points: the paper's latency axis (including the
#: off-grid 517 to catch quantization assumptions) and bandwidth axis
KNOB_CONFIGS = [
    SdvConfig().with_extra_latency(517),
    SdvConfig().with_extra_latency(1024),
    SdvConfig().with_bandwidth(1),
    SdvConfig().with_bandwidth(4),
    SdvConfig(vpu=VpuConfig(chaining=False)),
    SdvConfig(vpu=VpuConfig(mem_queue_depth=1)).with_extra_latency(800),
]


def assert_reports_identical(ref, fast):
    """Field-for-field equality of two CycleReports (labels aside)."""
    assert ref.engine == "event-ref" and fast.engine == "event"
    for f in ("cycles", "scalar_issue_cycles", "scalar_stall_cycles",
              "vpu_arith_cycles", "vpu_mem_cycles",
              "bandwidth_bound_cycles", "dram_reads", "dram_writes"):
        assert getattr(ref, f) == getattr(fast, f), (
            f, getattr(ref, f), getattr(fast, f))
    assert ref.meta == fast.meta


@functools.lru_cache(maxsize=None)
def _classified(name, vl, scale="smoke", seed=7):
    spec = KERNELS[name]
    wl = spec.prepare(get_scale(scale), seed)
    sdv, trace = run_implementation(spec, wl, vl, verify=False)
    return sdv.classify(trace)


class TestRegistry:
    def test_four_engines_registered(self):
        assert set(ENGINES) == {"fast", "batch", "event", "event-ref"}

    def test_event_resolves_to_fast_event_engine(self):
        assert ENGINES["event"] is simulate_events_fast
        assert ENGINES["event-ref"] is simulate_events


class TestKernelGrid:
    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    @pytest.mark.parametrize("vl", GRID_VLS)
    def test_smoke_grid_bit_identical(self, kernel, vl):
        ct = _classified(kernel, vl)
        assert_reports_identical(simulate_events(ct),
                                 simulate_events_fast(ct))

    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_scalar_impl_bit_identical(self, kernel):
        ct = _classified(kernel, None)
        assert_reports_identical(simulate_events(ct),
                                 simulate_events_fast(ct))


class TestKnobPoints:
    @pytest.mark.parametrize("kernel,vl", [("spmv", 64), ("fft", 8),
                                           ("pagerank", 256)])
    @pytest.mark.parametrize("cfg", KNOB_CONFIGS,
                             ids=["lat517", "lat1024", "bw1", "bw4",
                                  "nochain", "lat800-shallow"])
    def test_sampled_knobs_bit_identical(self, kernel, vl, cfg):
        base = _classified(kernel, vl)
        ct = classify_trace(base.trace, cfg.validate())
        assert_reports_identical(simulate_events(ct),
                                 simulate_events_fast(ct))

    @pytest.mark.parametrize("cfg", KNOB_CONFIGS[:4])
    def test_batch_engine_stays_in_envelope(self, cfg):
        """The analytic batch engine is not bit-identical to the DES, but
        the three-way story must hold at knob points too: identical DRAM
        traffic, cycles within the documented agreement envelope."""
        base = _classified("spmv", 64)
        ct = classify_trace(base.trace, cfg.validate())
        event = simulate_events_fast(ct)
        batch = simulate_batch_one(ct)
        assert batch.dram_reads == event.dram_reads
        assert batch.dram_writes == event.dram_writes
        assert batch.cycles == pytest.approx(event.cycles, rel=0.6)


class TestObservability:
    @pytest.mark.parametrize("kernel,vl", [("fft", 64), ("spmv", 256)])
    def test_timeline_parity(self, kernel, vl):
        ct = _classified(kernel, vl)
        tl_ref, tl_fast = TimelineRecorder(), TimelineRecorder()
        simulate_events(ct, timeline=tl_ref)
        simulate_events_fast(ct, timeline=tl_fast)
        assert tl_fast.engine == "event"
        ref = [(e.track, e.name, e.start, e.dur, e.args)
               for e in tl_ref.events]
        fast = [(e.track, e.name, e.start, e.dur, e.args)
                for e in tl_fast.events]
        assert ref == fast

    @pytest.mark.parametrize("kernel,vl", [("fft", 64), ("spmv", 8)])
    def test_attribution_parity(self, kernel, vl):
        ct = _classified(kernel, vl)
        ref = attribute(ct, engine="event-ref")
        fast = attribute(ct, engine="event")
        assert ref.total == fast.total
        assert ref.buckets == fast.buckets
        fast.check()


# ---------------------------------------------------------------- property

N_DATA = 1 << 12


@st.composite
def programs(draw):
    n_steps = draw(st.integers(2, 12))
    steps = []
    for _ in range(n_steps):
        op = draw(st.sampled_from(
            ["load", "store", "gather", "arith_chain", "reduce", "scalar",
             "barrier"]))
        params = {
            "off": draw(st.integers(0, N_DATA - 512)),
            "avl": draw(st.sampled_from([5, 8, 17, 64, 200, 256])),
            "chain": draw(st.integers(1, 4)),
        }
        steps.append((op, params))
    return steps


def build_trace(steps, seed):
    rng = np.random.default_rng(seed)
    mem = MemoryImage(1 << 22)
    trace = TraceBuffer()
    vec = VectorContext(mem, trace, max_vl=256)
    scl = ScalarContext(mem, trace)
    data = mem.alloc("data", rng.random(N_DATA))
    out = mem.alloc("out", N_DATA, np.float64)
    idx = mem.alloc("idx", rng.integers(0, N_DATA, N_DATA))

    last = None
    for op, p in steps:
        vl = vec.vsetvl(p["avl"])
        if op == "load":
            last = vec.vle(data, p["off"])
        elif op == "store":
            v = last if last is not None and last.vl == vl else vec.vfmv(1.0)
            vec.vse(v, out, p["off"])
        elif op == "gather":
            iv = vec.vle(idx, p["off"])
            last = vec.vlxe(data, iv)
        elif op == "arith_chain":
            v = last if last is not None and last.vl == vl else vec.vfmv(2.0)
            for _ in range(p["chain"]):
                v = vec.vfadd(v, 1.0)
            last = v
        elif op == "reduce":
            v = last if last is not None and last.vl == vl else vec.vfmv(3.0)
            vec.vfredsum(v)
        elif op == "scalar":
            addr_idx = rng.integers(0, N_DATA, 64)
            scl.emit_block(data.addr(addr_idx), False, 128)
        elif op == "barrier":
            scl.barrier()
        if last is not None and last.vl != vec.vl:
            last = None
    scl.flush()
    return trace.seal()


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs(), st.integers(0, 2 ** 31),
       st.sampled_from([(0, 64), (517, 64), (1024, 64), (0, 4), (800, 1)]))
def test_property_event_engines_bit_identical(steps, seed, knobs):
    """Random small traces: the two DES implementations never diverge."""
    extra_latency, bpc = knobs
    trace = build_trace(steps, seed)
    config = (SdvConfig().with_extra_latency(extra_latency)
              .with_bandwidth(bpc))
    ct = classify_trace(trace, config)
    assert_reports_identical(simulate_events(ct), simulate_events_fast(ct))


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs(), st.integers(0, 2 ** 31))
def test_property_no_chaining_bit_identical(steps, seed):
    trace = build_trace(steps, seed)
    config = dataclasses.replace(SdvConfig(),
                                 vpu=VpuConfig(chaining=False))
    ct = classify_trace(trace, config)
    assert_reports_identical(simulate_events(ct), simulate_events_fast(ct))
