"""Tests for the Section 3.2 measurement protocol."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.noise import (
    PAPER_RUNS,
    PAPER_VARIATION_BOUND,
    MeasuredValue,
    NoiseModel,
    measure,
)
from repro.errors import ConfigError


class TestNoiseModel:
    def test_noise_only_adds_cycles(self):
        nm = NoiseModel(sigma=0.05, seed=1)
        for _ in range(200):
            assert nm.perturb(1000.0) >= 1000.0

    def test_zero_sigma_is_identity(self):
        nm = NoiseModel(sigma=0.0)
        assert nm.perturb(1234.0) == 1234.0

    def test_deterministic_given_seed(self):
        a = [NoiseModel(seed=7).perturb(100.0) for _ in range(3)]
        b = [NoiseModel(seed=7).perturb(100.0) for _ in range(3)]
        assert a == b

    def test_seed_changes_stream(self):
        a = NoiseModel(seed=1)
        b = NoiseModel(seed=2)
        sa = [a.perturb(1e6) for _ in range(20)]
        sb = [b.perturb(1e6) for _ in range(20)]
        assert sa != sb

    def test_bad_sigma_rejected(self):
        with pytest.raises(ConfigError):
            NoiseModel(sigma=0.5)
        with pytest.raises(ConfigError):
            NoiseModel(sigma=-0.1)


class TestMeasureProtocol:
    def test_uses_paper_run_count(self):
        calls = []
        m = measure(lambda: calls.append(1) or 1000.0)
        assert len(calls) == PAPER_RUNS
        assert len(m.samples) == PAPER_RUNS

    def test_mean_close_to_truth(self):
        m = measure(lambda: 1_000_000.0, noise=NoiseModel(seed=3))
        assert m.mean == pytest.approx(1_000_000.0, rel=0.03)

    def test_spread_property(self):
        m = MeasuredValue(mean=100.0, samples=(99.0, 100.0, 101.0))
        assert m.spread == pytest.approx(0.02)

    def test_zero_runs_rejected(self):
        with pytest.raises(ConfigError):
            measure(lambda: 1.0, runs=0)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000), st.floats(1e3, 1e9))
    def test_property_default_noise_within_paper_bound(self, seed, cycles):
        """The calibrated default noise reproduces '<3% variation'."""
        m = measure(lambda: cycles, noise=NoiseModel(seed=seed))
        assert m.within_paper_bound, m.spread

    def test_on_a_real_simulation(self):
        """End to end: measure a kernel the way Section 3.2 describes."""
        import numpy as np
        from repro.soc import FpgaSdv
        from repro.kernels.fft import fft_vector
        from repro.workloads.signals import make_signal

        sdv = FpgaSdv()
        sess = sdv.session()
        fft_vector(sess, make_signal(128, seed=3))
        trace = sess.seal()
        m = measure(lambda: sdv.time(trace).cycles)
        assert m.within_paper_bound
        assert m.mean >= sdv.time(trace).cycles  # noise only adds
