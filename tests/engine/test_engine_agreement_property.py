"""Property-based cross-validation: random programs through both engines.

Hypothesis generates small random vector programs (strips of loads, stores,
gathers, arithmetic, reductions with random VLs); for every generated
program, the fast and event engines must stay within the agreement envelope
and produce identical DRAM accounting — a much broader net than the
hand-written agreement cases.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import SdvConfig
from repro.engine.batch_sim import batch_cycles
from repro.engine.event_sim import simulate_events
from repro.engine.fast_sim import simulate_fast
from repro.engine.lower import lower_trace
from repro.isa import ScalarContext, VectorContext
from repro.memory.address_space import MemoryImage
from repro.memory.classify import classify_trace
from repro.trace.events import TraceBuffer

N_DATA = 1 << 12


@st.composite
def programs(draw):
    """A list of (op, params) steps for the interpreter below."""
    n_steps = draw(st.integers(2, 14))
    steps = []
    for _ in range(n_steps):
        op = draw(st.sampled_from(
            ["load", "store", "gather", "arith_chain", "reduce", "scalar",
             "barrier"]))
        params = {
            "off": draw(st.integers(0, N_DATA - 512)),
            "avl": draw(st.sampled_from([5, 8, 17, 64, 200, 256])),
            "chain": draw(st.integers(1, 4)),
        }
        steps.append((op, params))
    return steps


def build_trace(steps, seed):
    rng = np.random.default_rng(seed)
    mem = MemoryImage(1 << 22)
    trace = TraceBuffer()
    vec = VectorContext(mem, trace, max_vl=256)
    scl = ScalarContext(mem, trace)
    data = mem.alloc("data", rng.random(N_DATA))
    out = mem.alloc("out", N_DATA, np.float64)
    idx = mem.alloc("idx", rng.integers(0, N_DATA, N_DATA))

    last = None
    for op, p in steps:
        vl = vec.vsetvl(p["avl"])
        if op == "load":
            last = vec.vle(data, p["off"])
        elif op == "store":
            v = last if last is not None and last.vl == vl else vec.vfmv(1.0)
            vec.vse(v, out, p["off"])
        elif op == "gather":
            iv = vec.vle(idx, p["off"])
            last = vec.vlxe(data, iv)
        elif op == "arith_chain":
            v = last if last is not None and last.vl == vl else vec.vfmv(2.0)
            for _ in range(p["chain"]):
                v = vec.vfadd(v, 1.0)
            last = v
        elif op == "reduce":
            v = last if last is not None and last.vl == vl else vec.vfmv(3.0)
            vec.vfredsum(v)
        elif op == "scalar":
            addr_idx = rng.integers(0, N_DATA, 64)
            scl.emit_block(data.addr(addr_idx), False, 128)
        elif op == "barrier":
            scl.barrier()
        if last is not None and last.vl != vec.vl:
            last = None
    scl.flush()
    return trace.seal()


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs(), st.integers(0, 2 ** 31),
       st.sampled_from([(0, 64), (512, 64), (0, 4), (1024, 1)]))
def test_property_engines_agree_on_random_programs(steps, seed, knobs):
    extra_latency, bpc = knobs
    trace = build_trace(steps, seed)
    config = (SdvConfig().with_extra_latency(extra_latency)
              .with_bandwidth(bpc))
    ct = classify_trace(trace, config)
    fast = simulate_fast(ct)
    event = simulate_events(ct)
    assert fast.dram_reads == event.dram_reads
    assert fast.dram_writes == event.dram_writes
    assert fast.cycles == pytest.approx(event.cycles, rel=0.6), (
        fast.cycles, event.cycles)
    assert fast.cycles > 0 and event.cycles > 0


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs(), st.integers(0, 2 ** 31))
def test_property_batch_matches_fast_exactly(steps, seed):
    """One lowering + one vectorized walk == N fast walks, to the bit."""
    trace = build_trace(steps, seed)
    base = SdvConfig().validate()
    configs = ([base.with_extra_latency(l) for l in (0, 32, 256, 1024)]
               + [base.with_bandwidth(b) for b in (1, 4, 64)])
    ct = classify_trace(trace, base)
    batch = batch_cycles(lower_trace(ct), configs)
    for k, cfg in enumerate(configs):
        fast = simulate_fast(dataclasses.replace(ct, config=cfg))
        assert batch[k] == fast.cycles, (k, batch[k], fast.cycles)
