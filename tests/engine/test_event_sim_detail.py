"""Detailed behavioural tests of the event engine's queueing components."""

import numpy as np
import pytest

from repro.config import SdvConfig, VpuConfig
from repro.engine.event_sim import simulate_events
from repro.isa import ScalarContext, VectorContext
from repro.memory.address_space import MemoryImage
from repro.memory.classify import classify_trace
from repro.trace.events import TraceBuffer


def run(build, config=None, max_vl=256):
    config = (config or SdvConfig()).validate()
    mem = MemoryImage(1 << 22)
    trace = TraceBuffer()
    vec = VectorContext(mem, trace, max_vl=max_vl)
    scl = ScalarContext(mem, trace)
    build(mem, scl, vec)
    scl.flush()
    return simulate_events(classify_trace(trace.seal(), config))


class TestLineMshrs:
    def _big_stream(self, mem, scl, vec):
        a = mem.alloc("x", np.arange(1 << 13, dtype=np.float64))
        i, n = 0, 1 << 13
        while i < n:
            vl = vec.vsetvl(n - i)
            vec.vle(a, i)
            i += vl

    def test_small_pool_throttles_under_latency(self):
        few = SdvConfig(vpu=VpuConfig(line_mshrs=4)).with_extra_latency(512)
        many = SdvConfig(vpu=VpuConfig(line_mshrs=256)).with_extra_latency(512)
        assert run(self._big_stream, few).cycles > run(self._big_stream,
                                                       many).cycles

    def test_pool_irrelevant_at_low_latency(self):
        # at the base ~50-cycle latency, 64 MSHRs already sustain the full
        # line rate, so quadrupling the pool changes nothing much
        few = SdvConfig(vpu=VpuConfig(line_mshrs=64)).validate()
        many = SdvConfig(vpu=VpuConfig(line_mshrs=256)).validate()
        a = run(self._big_stream, few).cycles
        b = run(self._big_stream, many).cycles
        assert a == pytest.approx(b, rel=0.35)


class TestOooIssue:
    def _dependent_gather(self, mem, scl, vec):
        rng = np.random.default_rng(0)
        a = mem.alloc("x", rng.random(1 << 12))
        idx = mem.alloc("idx", rng.integers(0, 1 << 12, 1024))
        i, n = 0, 1024
        while i < n:
            vl = vec.vsetvl(n - i)
            iv = vec.vle(idx, i)
            vec.vlxe(a, iv)
            i += vl

    def test_ooo_beats_in_order_on_gather_chains(self):
        ooo = SdvConfig(vpu=VpuConfig(ooo_mem_issue=True)
                        ).with_extra_latency(256)
        ino = SdvConfig(vpu=VpuConfig(ooo_mem_issue=False)
                        ).with_extra_latency(256)
        t_ooo = run(self._dependent_gather, ooo, max_vl=8).cycles
        t_ino = run(self._dependent_gather, ino, max_vl=8).cycles
        assert t_ooo < t_ino


class TestBankContention:
    def test_single_bank_hotspot_slower_than_spread(self):
        """All requests to one bank serialize on its port."""
        def hotspot(mem, scl, vec):
            # stride of 4 lines = always the same bank (4-bank interleave)
            a = mem.alloc("x", np.arange(1 << 14, dtype=np.float64))
            for _warm in range(2):  # second pass is all L2 hits
                vec.vsetvl(256)
                for rep in range(8):
                    vec.vlse(a, rep, 32)  # 32 doubles = 4 lines apart

        def spread(mem, scl, vec):
            a = mem.alloc("x", np.arange(1 << 14, dtype=np.float64))
            for _warm in range(2):
                vec.vsetvl(256)
                for rep in range(8):
                    vec.vle(a, rep * 256)

        cfg = SdvConfig().validate()
        assert run(hotspot, cfg).cycles > run(spread, cfg).cycles


class TestBarrierDrain:
    def test_barrier_waits_for_outstanding_loads(self):
        def with_barrier(mem, scl, vec):
            a = mem.alloc("x", np.arange(256, dtype=np.float64))
            vec.vsetvl(256)
            vec.vle(a)
            scl.barrier("drain")
            scl.emit_alu(2)

        cfg = SdvConfig().with_extra_latency(500)
        r = run(with_barrier, cfg)
        # the trailing ALU work cannot start before the load's ~550-cycle
        # round trip has drained
        assert r.cycles > 500


class TestScalarDestSync:
    def test_vpopc_result_blocks_scalar_progress(self):
        def build(mem, scl, vec):
            a = mem.alloc("x", np.arange(256, dtype=np.int64))
            vec.vsetvl(256)
            v = vec.vle(a)
            m = vec.vmsgt(v, 5)
            vec.vpopc(m)           # scalar core must wait for this
            scl.emit_alu(2)

        cfg = SdvConfig().with_extra_latency(400)
        r = run(build, cfg)
        assert r.cycles > 400
