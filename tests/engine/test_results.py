"""Tests for the CycleReport container."""

import pytest

from repro.engine.results import CycleReport


class TestCycleReport:
    def test_dram_accounting(self):
        r = CycleReport(cycles=100.0, dram_reads=3, dram_writes=2)
        assert r.dram_transactions == 5
        assert r.dram_bytes == 5 * 64

    def test_achieved_bandwidth(self):
        r = CycleReport(cycles=64.0, dram_reads=2, dram_writes=0)
        assert r.achieved_bytes_per_cycle == pytest.approx(2.0)

    def test_zero_cycles_safe(self):
        r = CycleReport(cycles=0.0)
        assert r.achieved_bytes_per_cycle == 0.0

    def test_summary_contains_components(self):
        r = CycleReport(cycles=12345.0, engine="fast",
                        scalar_issue_cycles=10.0,
                        vpu_mem_cycles=20.0, dram_reads=7)
        s = r.summary()
        assert "fast" in s and "12.3 kcyc" in s
        assert "DRAM 7 txns" in s

    def test_meta_dict_defaults_independent(self):
        a = CycleReport(cycles=1.0)
        b = CycleReport(cycles=2.0)
        a.meta["x"] = 1
        assert "x" not in b.meta
