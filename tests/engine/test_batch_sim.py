"""Batch engine: exact agreement with the fast engine, plus API contract.

The batch engine's promise is *bit-identical* cycles to ``simulate_fast``
at every sweep point — not "close", identical floats — so these tests use
exact equality across the full Figure-3 (latency) and Figure-5 (bandwidth)
grids on all four kernels.
"""

import dataclasses

import numpy as np
import pytest

from repro.config import SdvConfig
from repro.core.sweeps import (
    DEFAULT_BANDWIDTHS,
    DEFAULT_LATENCIES,
    run_implementation,
)
from repro.engine import ENGINES
from repro.engine.batch_sim import (
    batch_cycles,
    simulate_batch,
    simulate_batch_one,
)
from repro.engine.fast_sim import simulate_fast
from repro.engine.lower import knob_free_config, lower_trace
from repro.errors import EngineError
from repro.kernels import KERNELS
from repro.soc import FpgaSdv
from repro.trace.serialize import load_trace, save_trace
from repro.workloads import get_scale

# scalar is always included; the trace-heavy kernels get a VL subset to
# bound CI runtime (agreement is VL-independent — the lowered arrays just
# get longer)
GRID_VLS = {
    "spmv": (8, 64, 256),
    "fft": (8, 64, 256),
    "bfs": (8, 256),
    "pagerank": (8, 256),
}

REPORT_FIELDS = (
    "cycles", "scalar_issue_cycles", "scalar_stall_cycles",
    "vpu_arith_cycles", "vpu_mem_cycles", "bandwidth_bound_cycles",
    "dram_reads", "dram_writes",
)


def grid_configs(base: SdvConfig) -> list[SdvConfig]:
    """Full Figure-3 latency axis + full Figure-5 bandwidth axis."""
    return ([base.with_extra_latency(l) for l in DEFAULT_LATENCIES]
            + [base.with_bandwidth(b) for b in DEFAULT_BANDWIDTHS])


@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_batch_matches_fast_exactly_on_full_grids(kernel):
    spec = KERNELS[kernel]
    workload = spec.prepare(get_scale("ci"), 7)
    for vl in (None,) + GRID_VLS[kernel]:
        sdv, trace = run_implementation(spec, workload, vl, verify=False)
        configs = grid_configs(sdv.config)
        batch = sdv.time_many(trace, configs, engine="batch", reports=False)
        fast = sdv.time_many(trace, configs, engine="fast", reports=False)
        assert np.array_equal(batch, fast), (kernel, vl)


def test_batch_reports_match_fast_reports_field_for_field():
    spec = KERNELS["spmv"]
    workload = spec.prepare(get_scale("smoke"), 7)
    sdv, trace = run_implementation(spec, workload, 64, verify=False)
    configs = grid_configs(sdv.config)
    reports = simulate_batch(sdv.lower(trace), configs)
    for cfg, b in zip(configs, reports):
        f = simulate_fast(dataclasses.replace(sdv.classify(trace),
                                              config=cfg))
        for fld in REPORT_FIELDS:
            assert getattr(b, fld) == getattr(f, fld), fld
        assert b.engine == "batch"


def test_batch_cycles_equals_report_cycles():
    spec = KERNELS["fft"]
    workload = spec.prepare(get_scale("smoke"), 7)
    sdv, trace = run_implementation(spec, workload, 8, verify=False)
    configs = grid_configs(sdv.config)
    lowered = sdv.lower(trace)
    compact = batch_cycles(lowered, configs)
    full = [r.cycles for r in simulate_batch(lowered, configs)]
    assert compact.tolist() == full


def test_serialized_trace_retimes_identically(tmp_path):
    spec = KERNELS["spmv"]
    workload = spec.prepare(get_scale("smoke"), 7)
    sdv, trace = run_implementation(spec, workload, 64, verify=False)
    path = tmp_path / "spmv-vl64.npz"
    save_trace(trace, path)
    reloaded = load_trace(path)
    configs = grid_configs(sdv.config)
    original = sdv.time_many(trace, configs, engine="batch", reports=False)
    roundtrip = sdv.time_many(reloaded, configs, engine="batch",
                              reports=False)
    assert np.array_equal(original, roundtrip)


def test_engine_registry_has_batch_and_sdv_accepts_it():
    assert "batch" in ENGINES
    spec = KERNELS["fft"]
    workload = spec.prepare(get_scale("smoke"), 7)
    sdv_b = FpgaSdv(engine="batch").configure(max_vl=8)
    sdv_f = FpgaSdv(engine="fast").configure(max_vl=8)
    _, rb = sdv_b.run(spec.vector, workload)
    _, rf = sdv_f.run(spec.vector, workload)
    assert rb.cycles == rf.cycles
    assert rb.engine == "batch"
    # hardware counters absorbed the run like any other engine
    assert sdv_b.counters.snapshot() == rb.cycles


def test_simulate_batch_one_matches_fast():
    spec = KERNELS["pagerank"]
    workload = spec.prepare(get_scale("smoke"), 7)
    sdv, trace = run_implementation(spec, workload, 8, verify=False)
    ct = sdv.classify(trace)
    assert simulate_batch_one(ct).cycles == simulate_fast(ct).cycles


def test_empty_config_list_rejected():
    spec = KERNELS["fft"]
    workload = spec.prepare(get_scale("smoke"), 7)
    sdv, trace = run_implementation(spec, workload, 8, verify=False)
    with pytest.raises(EngineError):
        simulate_batch(sdv.lower(trace), [])


def test_non_knob_config_change_rejected():
    """A batch may only vary the latency/bandwidth knobs."""
    spec = KERNELS["fft"]
    workload = spec.prepare(get_scale("smoke"), 7)
    sdv, trace = run_implementation(spec, workload, 8, verify=False)
    lowered = sdv.lower(trace)
    other = sdv.config.with_max_vl(16)
    assert knob_free_config(other) != lowered.base_key
    with pytest.raises(EngineError):
        simulate_batch(lowered, [other])


def test_lowered_trace_is_cached_on_the_trace_object():
    spec = KERNELS["fft"]
    workload = spec.prepare(get_scale("smoke"), 7)
    sdv, trace = run_implementation(spec, workload, 8, verify=False)
    first = sdv.lower(trace)
    sdv.configure(extra_latency=512)  # knob changes must not re-lower
    assert sdv.lower(trace) is first


def test_lower_trace_validates_dependency_targets():
    spec = KERNELS["spmv"]
    workload = spec.prepare(get_scale("smoke"), 7)
    sdv, trace = run_implementation(spec, workload, 8, verify=False)
    ct = sdv.classify(trace)
    lowered = lower_trace(ct)
    assert lowered.n == len(ct.rows)
    assert lowered.total_dram_reads == int(
        ct.rows["dram_reads"].sum() + ct.rows["pf_dram_reads"].sum())
