"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.engine.des import AllOf, Environment, Event, Process, Resource
from repro.errors import EngineError


class TestTimeouts:
    def test_timeout_advances_clock(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(5)
            log.append(env.now)
            yield env.timeout(3)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [5.0, 8.0]

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(EngineError):
            env.timeout(-1)

    def test_zero_timeout_fires_same_time(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(0)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [0.0]

    def test_run_until_stops_early(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(10)
            log.append("late")

        env.process(proc())
        env.run(until=5)
        assert log == [] and env.now == 5
        env.run()
        assert log == ["late"]


class TestEvents:
    def test_manual_succeed_resumes_waiter(self):
        env = Environment()
        ev = env.event()
        log = []

        def waiter():
            val = yield ev
            log.append((env.now, val))

        def firer():
            yield env.timeout(7)
            ev.succeed("hello")

        env.process(waiter())
        env.process(firer())
        env.run()
        assert log == [(7.0, "hello")]

    def test_double_succeed_rejected(self):
        env = Environment()
        ev = env.event()
        ev.succeed()
        with pytest.raises(EngineError):
            ev.succeed()

    def test_succeed_at_future_time(self):
        env = Environment()
        ev = env.event()
        ev.succeed_at(12.0)
        log = []

        def waiter():
            yield ev
            log.append(env.now)

        env.process(waiter())
        env.run()
        assert log == [12.0]

    def test_succeed_at_past_rejected(self):
        env = Environment()

        def proc():
            yield env.timeout(10)
            env.event().succeed_at(5.0)

        env.process(proc())
        with pytest.raises(EngineError):
            env.run()


class TestProcesses:
    def test_process_is_event(self):
        env = Environment()
        log = []

        def child():
            yield env.timeout(4)
            return "result"

        def parent():
            value = yield env.process(child())
            log.append((env.now, value))

        env.process(parent())
        env.run()
        assert log == [(4.0, "result")]

    def test_yield_non_event_rejected(self):
        env = Environment()

        def bad():
            yield 42

        # processes start synchronously, so the bad yield trips at spawn
        with pytest.raises(EngineError):
            env.process(bad())

    def test_waiting_on_already_fired_event(self):
        env = Environment()
        ev = env.event()
        ev.succeed("v")
        log = []

        def late_waiter():
            yield env.timeout(5)   # event fires long before this
            value = yield ev
            log.append((env.now, value))

        env.process(late_waiter())
        env.run()
        assert log == [(5.0, "v")]


class TestAllOf:
    def test_waits_for_all(self):
        env = Environment()
        evs = [env.event() for _ in range(3)]
        log = []

        def waiter():
            yield env.all_of(evs)
            log.append(env.now)

        def firer():
            for i, ev in enumerate(evs):
                yield env.timeout(2)
                ev.succeed()

        env.process(waiter())
        env.process(firer())
        env.run()
        assert log == [6.0]

    def test_empty_list_fires_immediately(self):
        env = Environment()
        log = []

        def waiter():
            yield env.all_of([])
            log.append(env.now)

        env.process(waiter())
        env.run()
        assert log == [0.0]


class TestResource:
    def test_fifo_mutual_exclusion(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def worker(name, hold):
            grant = res.request()
            yield grant
            log.append((name, "start", env.now))
            yield env.timeout(hold)
            res.release()
            log.append((name, "end", env.now))

        env.process(worker("a", 5))
        env.process(worker("b", 3))
        env.run()
        assert log == [
            ("a", "start", 0.0), ("a", "end", 5.0),
            ("b", "start", 5.0), ("b", "end", 8.0),
        ]

    def test_capacity_two_overlaps(self):
        env = Environment()
        res = Resource(env, capacity=2)
        starts = []

        def worker(hold):
            yield res.request()
            starts.append(env.now)
            yield env.timeout(hold)
            res.release()

        for _ in range(3):
            env.process(worker(4))
        env.run()
        assert starts == [0.0, 0.0, 4.0]

    def test_release_without_request_rejected(self):
        env = Environment()
        res = Resource(env, capacity=1)
        with pytest.raises(EngineError):
            res.release()

    def test_queue_length(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder():
            yield res.request()
            yield env.timeout(10)
            res.release()

        def waiter():
            yield env.timeout(1)
            yield res.request()
            res.release()

        env.process(holder())
        env.process(waiter())
        env.run(until=2)
        assert res.queue_length == 1

    def test_bad_capacity(self):
        with pytest.raises(EngineError):
            Resource(Environment(), capacity=0)


class TestDeterminism:
    def test_tie_break_by_schedule_order(self):
        env = Environment()
        log = []

        def proc(name):
            yield env.timeout(5)
            log.append(name)

        env.process(proc("first"))
        env.process(proc("second"))
        env.run()
        assert log == ["first", "second"]
