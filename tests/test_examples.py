"""Smoke tests for the example scripts.

Each example must (a) import cleanly and (b) expose a ``main``; the fastest
one runs end to end as a subprocess so the on-disk entry points stay
healthy (the heavier studies are exercised through the library calls they
wrap, which the rest of the suite covers).
"""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def load(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "latency_tolerance_study",
            "bandwidth_provisioning", "custom_kernel",
            "codesign_study", "working_set_analysis"} <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    module = load(path)
    assert callable(getattr(module, "main", None)), path.stem


def test_custom_kernel_example_runs():
    path = next(p for p in EXAMPLES if p.stem == "custom_kernel")
    proc = subprocess.run([sys.executable, str(path)], capture_output=True,
                          text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    assert "slowdown" in proc.stdout
