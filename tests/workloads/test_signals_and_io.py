"""Unit tests for signal generation, MatrixMarket IO, and scale presets."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.mm_io import read_matrix_market, write_matrix_market
from repro.workloads.scales import get_scale
from repro.workloads.signals import make_signal


class TestSignals:
    def test_tones_shape_and_dtype(self):
        re, im = make_signal(256, kind="tones", seed=3)
        assert re.shape == im.shape == (256,)
        assert re.dtype == im.dtype == np.float64

    def test_tones_have_expected_peaks(self):
        re, im = make_signal(2048, kind="tones", seed=3)
        spec = np.abs(np.fft.fft(re + 1j * im))
        peaks = set(np.argsort(spec)[-3:])
        assert {5, 37, 2048 - 101} == peaks

    def test_impulse_spectrum_flat(self):
        re, im = make_signal(64, kind="impulse")
        spec = np.fft.fft(re + 1j * im)
        assert np.allclose(spec, 1.0)

    def test_noise_deterministic(self):
        a = make_signal(128, kind="noise", seed=9)
        b = make_signal(128, kind="noise", seed=9)
        assert np.array_equal(a[0], b[0])

    def test_non_pow2_rejected(self):
        with pytest.raises(WorkloadError):
            make_signal(100)

    def test_unknown_kind_rejected(self):
        with pytest.raises(WorkloadError):
            make_signal(64, kind="square")


class TestMatrixMarket:
    def test_roundtrip(self, tmp_path):
        import scipy.sparse as sp
        rng = np.random.default_rng(0)
        dense = rng.random((10, 10))
        dense[dense < 0.7] = 0
        mat = sp.csr_matrix(dense)
        path = tmp_path / "m.mtx"
        write_matrix_market(path, mat, comment="test matrix")
        back = read_matrix_market(path)
        assert (mat != back).nnz == 0

    def test_pattern_field(self, tmp_path):
        path = tmp_path / "p.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n1 1\n2 2\n"
        )
        m = read_matrix_market(path)
        assert m.nnz == 2
        assert m[0, 0] == 1.0

    def test_symmetric_mirrored(self, tmp_path):
        path = tmp_path / "s.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n2 1 5.0\n3 3 1.0\n"
        )
        m = read_matrix_market(path)
        assert m[1, 0] == 5.0 and m[0, 1] == 5.0
        assert m.nnz == 3  # diagonal entry not duplicated

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n% another\n"
            "1 1 1\n1 1 2.5\n"
        )
        assert read_matrix_market(path)[0, 0] == 2.5

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("not matrixmarket\n1 1 1\n")
        with pytest.raises(WorkloadError):
            read_matrix_market(path)

    def test_truncated_rejected(self, tmp_path):
        path = tmp_path / "t.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
        )
        with pytest.raises(WorkloadError):
            read_matrix_market(path)

    def test_out_of_bounds_rejected(self, tmp_path):
        path = tmp_path / "o.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n"
        )
        with pytest.raises(WorkloadError):
            read_matrix_market(path)


class TestScales:
    def test_paper_scale_matches_section_31(self):
        s = get_scale("paper")
        assert s.spmv_n is None            # exact cage10 statistics
        assert s.graph_nodes == 2 ** 15    # "2^15 nodes"
        assert s.fft_n == 2048             # "FFT size of 2048 elements"

    def test_ci_smaller_than_paper(self):
        paper, ci = get_scale("paper"), get_scale("ci")
        assert ci.graph_nodes < paper.graph_nodes
        assert ci.fft_n < paper.fft_n

    def test_unknown_rejected(self):
        with pytest.raises(WorkloadError):
            get_scale("huge")
