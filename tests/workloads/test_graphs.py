"""Unit tests for the R-MAT graph generator and CSR container."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.graphs import CsrGraph, graph_to_networkx, rmat_graph


class TestRmat:
    @pytest.fixture(scope="class")
    def g(self):
        return rmat_graph(2 ** 10, edge_factor=8, seed=11)

    def test_node_count(self, g):
        assert g.n == 1024

    def test_edge_count_near_target(self, g):
        # dedupe + self-loop removal shrinks it; symmetric doubles it
        assert 0.5 * 2 * 8 * 1024 < g.m <= 2 * 8 * 1024

    def test_csr_invariants(self, g):
        assert g.indptr[0] == 0
        assert (np.diff(g.indptr) >= 0).all()
        assert g.indptr[-1] == g.indices.shape[0]
        assert g.indices.min() >= 0 and g.indices.max() < g.n

    def test_sorted_and_deduped_rows(self, g):
        for u in range(0, g.n, 97):
            nbrs = g.neighbors(u)
            assert (np.diff(nbrs) > 0).all()  # strictly increasing

    def test_no_self_loops(self, g):
        src = np.repeat(np.arange(g.n), np.diff(g.indptr))
        assert (src != g.indices).all()

    def test_symmetric_by_default(self, g):
        # every edge exists in both directions
        for u in range(0, g.n, 131):
            for v in g.neighbors(u)[:5]:
                assert u in g.neighbors(int(v))

    def test_transpose_consistent(self, g):
        assert g.t_indices.shape[0] == g.m
        assert (g.in_degrees == g.out_degrees).all()  # symmetric graph

    def test_skewed_degrees(self, g):
        degs = g.out_degrees
        assert degs.max() > 4 * max(degs.mean(), 1)  # heavy tail

    def test_deterministic(self):
        a = rmat_graph(256, edge_factor=4, seed=3)
        b = rmat_graph(256, edge_factor=4, seed=3)
        assert np.array_equal(a.indices, b.indices)

    def test_directed_mode(self):
        g = rmat_graph(256, edge_factor=4, seed=3, symmetric=False)
        assert not (g.in_degrees == g.out_degrees).all()

    def test_non_pow2_rejected(self):
        with pytest.raises(WorkloadError):
            rmat_graph(1000)

    def test_bad_probabilities_rejected(self):
        with pytest.raises(WorkloadError):
            rmat_graph(256, a=0.5, b=0.4, c=0.2)


class TestCsrGraphValidation:
    def test_bad_indptr_shape(self):
        with pytest.raises(WorkloadError):
            CsrGraph(n=4, indptr=np.zeros(3, dtype=np.int64),
                     indices=np.empty(0, dtype=np.int64),
                     t_indptr=np.zeros(5, dtype=np.int64),
                     t_indices=np.empty(0, dtype=np.int64))

    def test_indptr_terminator_mismatch(self):
        with pytest.raises(WorkloadError):
            CsrGraph(n=2, indptr=np.array([0, 1, 5]),
                     indices=np.array([1]),
                     t_indptr=np.array([0, 0, 1]),
                     t_indices=np.array([0]))


class TestNetworkxBridge:
    def test_roundtrip_edges(self):
        g = rmat_graph(128, edge_factor=4, seed=5)
        G = graph_to_networkx(g)
        assert G.number_of_nodes() == g.n
        assert G.number_of_edges() == g.m
        u = int(np.argmax(g.out_degrees))
        assert sorted(G.successors(u)) == sorted(g.neighbors(u).tolist())


class TestGridGraph:
    def test_structure(self):
        from repro.workloads.graphs import grid_graph
        g = grid_graph(5)
        assert g.n == 25
        assert g.m == 2 * 2 * 5 * 4  # 40 undirected edges, both directions
        # corner has degree 2, interior degree 4
        assert g.out_degrees[0] == 2
        assert g.out_degrees[12] == 4

    def test_symmetric(self):
        from repro.workloads.graphs import grid_graph
        g = grid_graph(6)
        assert (g.in_degrees == g.out_degrees).all()

    def test_diameter_via_bfs(self):
        from repro.kernels.bfs import bfs_reference
        from repro.workloads.graphs import grid_graph
        side = 8
        g = grid_graph(side)
        levels = bfs_reference(g, source=0)
        assert levels.max() == 2 * (side - 1)  # Manhattan diameter
        assert (levels >= 0).all()             # fully connected

    def test_too_small_rejected(self):
        from repro.errors import WorkloadError
        from repro.workloads.graphs import grid_graph
        with pytest.raises(WorkloadError):
            grid_graph(1)

    def test_bfs_kernels_handle_high_diameter(self):
        """Many tiny frontiers: the worst case for per-level overheads."""
        from repro.kernels.bfs import bfs_reference, bfs_scalar, bfs_vector
        from repro.soc import FpgaSdv
        from repro.workloads.graphs import grid_graph
        g = grid_graph(12)
        ref = bfs_reference(g, source=0)
        for build in (bfs_scalar, bfs_vector):
            out, _ = FpgaSdv().run(lambda s, wl: build(s, wl, 0), g)
            assert np.array_equal(out.value, ref), build.__name__
