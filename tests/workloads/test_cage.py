"""Unit tests for the cage10-like matrix generator."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import WorkloadError
from repro.workloads.cage import (
    CAGE10_STATS,
    CageStats,
    cage10_like,
    cage_like,
    scaled_cage_like,
)


class TestCage10Like:
    @pytest.fixture(scope="class")
    def mat(self):
        return cage10_like(seed=7)

    def test_shape_matches_cage10(self, mat):
        assert mat.shape == (CAGE10_STATS.n, CAGE10_STATS.n)

    def test_nnz_close_to_cage10(self, mat):
        # unique-filtering may drop a few duplicates; stay within 2%
        assert abs(mat.nnz - CAGE10_STATS.nnz) / CAGE10_STATS.nnz < 0.02

    def test_row_degree_range(self, mat):
        degs = np.diff(mat.indptr)
        assert degs.min() >= 1
        assert degs.max() <= CAGE10_STATS.max_row + 1

    def test_avg_degree(self, mat):
        degs = np.diff(mat.indptr)
        assert degs.mean() == pytest.approx(CAGE10_STATS.avg_row, rel=0.05)

    def test_full_diagonal(self, mat):
        assert (mat.diagonal() != 0).all()

    def test_banded_structure_dominates(self, mat):
        coo = mat.tocoo()
        near = np.abs(coo.row - coo.col) <= 600
        assert near.mean() > 0.5

    def test_deterministic(self):
        a = cage10_like(seed=7)
        b = cage10_like(seed=7)
        assert (a != b).nnz == 0

    def test_seed_changes_matrix(self):
        a = cage10_like(seed=7)
        b = cage10_like(seed=8)
        assert (a != b).nnz > 0

    def test_sorted_indices(self, mat):
        assert mat.has_sorted_indices


class TestScaled:
    def test_preserves_degree_profile(self):
        m = scaled_cage_like(1024, seed=7)
        degs = np.diff(m.indptr)
        assert degs.mean() == pytest.approx(CAGE10_STATS.avg_row, rel=0.1)

    def test_too_small_rejected(self):
        with pytest.raises(WorkloadError):
            scaled_cage_like(16)


class TestCageLike:
    def test_custom_stats(self):
        stats = CageStats(n=500, nnz=5000, min_row=3, max_row=20)
        m = cage_like(stats, seed=1, bandwidth_rows=50)
        assert m.shape == (500, 500)
        assert abs(m.nnz - 5000) < 200

    def test_degenerate_rejected(self):
        with pytest.raises(WorkloadError):
            cage_like(CageStats(n=2, nnz=1, min_row=1, max_row=1))

    def test_is_csr(self):
        m = cage_like(CageStats(n=100, nnz=1000, min_row=3, max_row=20),
                      seed=1)
        assert sp.issparse(m) and m.format == "csr"
