"""Trace-generation throughput: columnar + templated emission vs objects.

Batch re-timing made generation the sweep's wall-clock bottleneck, so the
trace layer grew two fast paths on top of the validated object path: the
buffer's columnar emitters (no per-record dataclass) and strip-mine loop
templating (record one iteration, replicate vectorized). All three are
bit-identical — ``tests/kernels/test_trace_equality.py`` pins that — so
the only question left is speed.

This bench times one vector-trace generation per kernel on each path.
At ``paper`` scale (the default here — fixed per-run costs amortize and
it is the scale whose wall clock motivated the fast paths) it holds the
headline claim: the default (templated) path generates at least 10x the
object path's throughput on at least two kernels. At every scale it
also guards against regressions: each kernel's speedup must stay within
20% of the committed same-scale baseline ratio, a machine-independent
check (both paths run on the same interpreter, so their *ratio* is
stable where absolute times are not).
"""

import os
import time

from conftest import record_ledger, write_result

from repro.core.sweeps import run_implementation
from repro.kernels import KERNELS
from repro.trace import modes
from repro.workloads import get_scale

_VL = 64
_SEED = 7

#: committed min-of-3 speedup ratios (object / templated) per scale; a run
#: below 0.8x of these fails — that is a real regression, not timer noise
_BASELINE_SPEEDUP = {
    "ci": {"bfs": 9.5, "fft": 2.2, "pagerank": 6.5, "spmv": 2.8},
    "paper": {"bfs": 9.5, "fft": 5.0, "pagerank": 10.0, "spmv": 3.0},
}


def _gen_seconds(spec, workload, *, object_path, templated, repeats=3):
    best = float("inf")
    n_records = 0
    for _ in range(repeats):
        with modes.object_emission(object_path), \
                modes.templating(templated):
            t0 = time.perf_counter()
            _, trace = run_implementation(spec, workload, _VL,
                                          verify=False)
            best = min(best, time.perf_counter() - t0)
        n_records = len(trace)
    return best, n_records


def test_bench_trace_generation():
    scale_name = os.environ.get("REPRO_BENCH_SCALE", "paper")
    scale = get_scale(scale_name)
    workloads = {name: spec.prepare(scale, _SEED)
                 for name, spec in KERNELS.items()}

    # warm-up: imports, allocator, interpreter caches
    _gen_seconds(KERNELS["fft"], workloads["fft"],
                 object_path=False, templated=True, repeats=1)

    lines = [
        f"trace-generation throughput — vl={_VL} vector trace per kernel, "
        f"scale={scale_name} (min of 3)",
        f"{'kernel':<10} {'records':>9} {'object':>10} {'columnar':>10} "
        f"{'templated':>10} {'speedup':>8}",
    ]
    speedups = {}
    for name in sorted(KERNELS):
        spec, wl = KERNELS[name], workloads[name]
        t_obj, n = _gen_seconds(spec, wl, object_path=True,
                                templated=False)
        t_col, _ = _gen_seconds(spec, wl, object_path=False,
                                templated=False)
        t_tpl, _ = _gen_seconds(spec, wl, object_path=False,
                                templated=True)
        speedups[name] = t_obj / t_tpl
        lines.append(
            f"{name:<10} {n:>9} {t_obj * 1e3:>8.1f}ms {t_col * 1e3:>8.1f}ms "
            f"{t_tpl * 1e3:>8.1f}ms {speedups[name]:>7.1f}x"
        )
    lines.append("speedup = object path time / templated (default) path "
                 "time, same bit-identical trace")
    write_result("trace_gen_throughput", "\n".join(lines))

    # primary bar per kernel: the ledger detector over committed history;
    # the hand-set 0.8x-of-constant table only guards series that do not
    # have enough samples yet (fresh clone, new kernel)
    baseline = _BASELINE_SPEEDUP.get(scale_name, {})
    regressed = {}
    for name, s in speedups.items():
        verdict = record_ledger("bench_trace_gen", f"{name}_speedup", s,
                                scale=scale_name)
        if verdict.is_regression:
            regressed[name] = f"{s:.1f}x ({verdict.reason})"
        elif (verdict.status == "insufficient" and name in baseline
              and s < 0.8 * baseline[name]):
            regressed[name] = (f"{s:.1f}x (<0.8x of the fallback "
                               f"baseline {baseline[name]}x)")
    assert not regressed, (
        f"trace-generation speedup regressed at scale={scale_name}: "
        f"{regressed}"
    )

    if scale_name == "paper":
        fast_enough = [n for n, s in speedups.items() if s >= 10.0]
        assert len(fast_enough) >= 2, (
            f"templated generation is >=10x on only {fast_enough} "
            f"(speedups: { {k: round(v, 1) for k, v in speedups.items()} })"
        )
