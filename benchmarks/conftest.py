"""Benchmark fixtures.

Scale selection: ``REPRO_BENCH_SCALE=paper`` runs the exact Section 3.1
sizes (cage10-scale SpMV, 2^15-node graph, 2048-point FFT) — a few minutes
of wall clock; the default ``ci`` scale keeps the full benchmark suite
under a minute while preserving every qualitative shape.

Each figure benchmark regenerates its table/series, writes the rendered
text to ``benchmarks/results/`` and asserts the paper's qualitative claims;
the ``benchmark()`` timing target is the retiming step (one fast-engine
pass over a classified trace), the operation a sweep repeats per point.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.sweeps import bandwidth_sweep, latency_sweep
from repro.kernels import KERNELS
from repro.workloads import get_scale

RESULTS_DIR = Path(__file__).parent / "results"

VLS = (8, 16, 32, 64, 128, 256)
LATENCIES = (0, 32, 64, 128, 256, 512, 1024)
BANDWIDTHS = (1, 2, 4, 8, 16, 32, 64)


@pytest.fixture(scope="session")
def scale():
    return get_scale(os.environ.get("REPRO_BENCH_SCALE", "ci"))


@pytest.fixture(scope="session")
def workloads(scale):
    """One prepared workload per kernel (expensive; share across benches)."""
    return {name: spec.prepare(scale, seed=7)
            for name, spec in KERNELS.items()}


@pytest.fixture(scope="session")
def latency_sweeps(workloads):
    """Figure 3/4 data: full latency sweep for every kernel."""
    return {
        name: latency_sweep(KERNELS[name], workloads[name],
                            latencies=LATENCIES, vls=VLS)
        for name in KERNELS
    }


@pytest.fixture(scope="session")
def bandwidth_sweeps(workloads):
    """Figure 5 data: full bandwidth sweep for every kernel."""
    return {
        name: bandwidth_sweep(KERNELS[name], workloads[name],
                              bandwidths=BANDWIDTHS, vls=VLS)
        for name in KERNELS
    }


def write_result(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


LEDGER_PATH = RESULTS_DIR / "ledger.jsonl"


def record_ledger(bench: str, metric: str, value: float, *,
                  unit: str = "ratio", scale: str | None = None,
                  attrs: dict | None = None):
    """Judge ``value`` against the committed ledger history, then append
    it as a new record.

    Returns the detector :class:`repro.obs.ledger.Verdict` — the verdict
    is computed against the history *before* this run's record lands, so
    a bench cannot pass by comparing against itself. Callers that get an
    ``insufficient`` verdict (fresh clone, new series) fall back to their
    legacy fixed-constant baseline so there is always a perf bar.
    """
    from repro.obs.ledger import (
        append_record,
        build_record,
        check_series,
        load_ledger,
    )

    scale = scale or os.environ.get("REPRO_BENCH_SCALE", "ci")
    history = load_ledger(LEDGER_PATH)
    verdict = check_series(history, bench, metric, scale, value)
    append_record(LEDGER_PATH, build_record(
        bench=bench, metric=metric, value=value, unit=unit, scale=scale,
        attrs=attrs))
    print(f"[ledger] {bench}:{metric} [{scale}] = {value:.3g} "
          f"-> {verdict.status}: {verdict.reason}")
    return verdict
