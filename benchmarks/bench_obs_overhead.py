"""Observability overhead: instrumentation must not tax the sweep path.

The telemetry layer promises that when nobody asked for a trace, the sweep
fast path pays (almost) nothing: the process-wide tracer starts disabled,
metrics are a handful of counter increments per *implementation* (not per
sweep point), and attribution is strictly opt-in. This bench pins that
promise: a full latency sweep with tracing + metrics live must stay within
5% of the uninstrumented wall time. The opt-in attribution cost does
real extra work (ladder walks), so it gets its own, looser bar: the
fused ``attribute_many`` batch walks must keep it within 30% of the
plain sweep.
"""

import time

from conftest import LATENCIES, VLS, write_result

from repro.core.sweeps import latency_sweep
from repro.kernels import KERNELS
from repro.obs.spans import set_tracing


def _sweep_seconds(workload, *, repeats=3, attributions=False):
    spec = KERNELS["fft"]
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        latency_sweep(spec, workload, latencies=LATENCIES, vls=VLS,
                      verify=False, attributions=attributions)
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_instrumentation_overhead(workloads):
    wl = workloads["fft"]
    _sweep_seconds(wl, repeats=1)  # warm-up (imports, allocator)

    set_tracing(False)
    baseline = _sweep_seconds(wl)
    tracer = set_tracing(True)
    try:
        instrumented = _sweep_seconds(wl)
    finally:
        set_tracing(False)
    attributed = _sweep_seconds(wl, attributions=True)

    overhead_pct = (instrumented / baseline - 1.0) * 100.0
    attribution_pct = (attributed / baseline - 1.0) * 100.0
    assert tracer.spans, "instrumented run recorded no spans"

    write_result("obs_overhead", "\n".join([
        "observability overhead — fft latency sweep "
        f"({len(LATENCIES)} points x {len(VLS) + 1} impls, min of 3)",
        f"baseline (tracing off)   : {baseline * 1e3:8.1f} ms",
        f"instrumented (spans on)  : {instrumented * 1e3:8.1f} ms "
        f"({overhead_pct:+.1f}%)",
        f"with attribution buckets : {attributed * 1e3:8.1f} ms "
        f"({attribution_pct:+.1f}%, opt-in extra work)",
    ]))

    # the acceptance bars: instrumentation costs at most 5% of sweep wall
    # time; opt-in per-point attribution at most 30% on top of the sweep
    assert overhead_pct <= 5.0, (
        f"instrumentation overhead {overhead_pct:.1f}% exceeds 5%"
    )
    assert attribution_pct <= 30.0, (
        f"attribution overhead {attribution_pct:.1f}% exceeds 30%"
    )
