"""Observability overhead: instrumentation must not tax the sweep path.

The telemetry layer promises that when nobody asked for a trace, the sweep
fast path pays (almost) nothing: the process-wide tracer starts disabled,
metrics are a handful of counter increments per *implementation* (not per
sweep point), and attribution is strictly opt-in. This bench pins that
promise: a full latency sweep with tracing + metrics live must stay within
5% of the uninstrumented wall time. The opt-in attribution cost does
real extra work (ladder walks), so it gets its own, looser bar: the
fused ``attribute_many`` batch walks must keep it within 30% of the
plain sweep.
"""

import time

import pytest
from conftest import LATENCIES, VLS, record_ledger, write_result

import repro.core.shm as shm_mod
from repro.core.shm import TracePlane, plane_prefix, shm_available
from repro.core.sweeps import latency_sweep, run_implementation
from repro.engine import simulate_events_fast
from repro.kernels import KERNELS
from repro.lint.sanitize import ShadowTracker
from repro.obs.engine_stats import get_engine_stats, set_introspection
from repro.obs.spans import set_tracing


def _sweep_seconds(workload, *, repeats=3, attributions=False):
    spec = KERNELS["fft"]
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        latency_sweep(spec, workload, latencies=LATENCIES, vls=VLS,
                      verify=False, attributions=attributions)
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_instrumentation_overhead(workloads):
    wl = workloads["fft"]
    _sweep_seconds(wl, repeats=1)  # warm-up (imports, allocator)

    set_tracing(False)
    baseline = _sweep_seconds(wl)
    tracer = set_tracing(True)
    try:
        instrumented = _sweep_seconds(wl)
    finally:
        set_tracing(False)
    attributed = _sweep_seconds(wl, attributions=True)

    overhead_pct = (instrumented / baseline - 1.0) * 100.0
    attribution_pct = (attributed / baseline - 1.0) * 100.0
    assert tracer.spans, "instrumented run recorded no spans"

    write_result("obs_overhead", "\n".join([
        "observability overhead — fft latency sweep "
        f"({len(LATENCIES)} points x {len(VLS) + 1} impls, min of 3)",
        f"baseline (tracing off)   : {baseline * 1e3:8.1f} ms",
        f"instrumented (spans on)  : {instrumented * 1e3:8.1f} ms "
        f"({overhead_pct:+.1f}%)",
        f"with attribution buckets : {attributed * 1e3:8.1f} ms "
        f"({attribution_pct:+.1f}%, opt-in extra work)",
    ]))
    record_ledger("bench_obs_overhead", "spans_overhead_pct",
                  overhead_pct, unit="pct", attrs={"direction": "lower"})
    record_ledger("bench_obs_overhead", "attribution_overhead_pct",
                  attribution_pct, unit="pct",
                  attrs={"direction": "lower"})

    # the acceptance bars: instrumentation costs at most 5% of sweep wall
    # time; opt-in per-point attribution at most 30% on top of the sweep
    assert overhead_pct <= 5.0, (
        f"instrumentation overhead {overhead_pct:.1f}% exceeds 5%"
    )
    assert attribution_pct <= 30.0, (
        f"attribution overhead {attribution_pct:.1f}% exceeds 30%"
    )


def _des_once(ct) -> float:
    t0 = time.perf_counter()
    simulate_events_fast(ct)
    return time.perf_counter() - t0


def test_bench_engine_counter_overhead(workloads):
    """Engine introspection cost on the DES hot loop: <=5% with counters
    on, unmeasurable (<=1%) with them off.

    The counters-off bar cannot compare against "the code without the
    guard" (that code no longer exists), so it is measured as two
    disabled timings bracketing the enabled one *within every round* —
    interleaving cancels slow machine drift out of the off/off
    comparison. With the guard checked once per active timestamp the two
    disabled mins must agree to within timer noise; a drift beyond 1%
    would mean the disabled path acquired real per-token work.
    """
    spec = KERNELS["fft"]
    sdv, trace = run_implementation(spec, workloads["fft"], 64,
                                    verify=False)
    ct = sdv.classify(trace)
    simulate_events_fast(ct)  # warm-up: plan cache, allocator

    reps = 7
    off_a = on = off_b = float("inf")
    runs_counted = 0
    try:
        for _ in range(reps):
            set_introspection(False)
            off_a = min(off_a, _des_once(ct))
            set_introspection(True)  # clears the collector each round
            on = min(on, _des_once(ct))
            runs_counted += get_engine_stats().counters.get("event.runs", 0)
            set_introspection(False)
            off_b = min(off_b, _des_once(ct))
        assert runs_counted >= reps, (
            "counters-on runs recorded no engine stats")
    finally:
        set_introspection(False)

    off_best = min(off_a, off_b)
    on_pct = (on / off_best - 1.0) * 100.0
    off_drift_pct = abs(off_b / off_a - 1.0) * 100.0

    write_result("obs_engine_counter_overhead", "\n".join([
        "engine-counter overhead — fft vl64 DES run "
        f"(min of {reps}, off/on/off interleaved)",
        f"counters off (a)        : {off_a * 1e3:8.1f} ms",
        f"counters on             : {on * 1e3:8.1f} ms ({on_pct:+.1f}%)",
        f"counters off (b)        : {off_b * 1e3:8.1f} ms "
        f"(drift {off_drift_pct:.2f}%)",
    ]))
    record_ledger("bench_obs_overhead", "counters_on_overhead_pct",
                  on_pct, unit="pct", attrs={"direction": "lower"})
    record_ledger("bench_obs_overhead", "counters_off_drift_pct",
                  off_drift_pct, unit="pct", attrs={"direction": "lower"})

    assert on_pct <= 5.0, (
        f"engine-counter overhead {on_pct:.1f}% exceeds 5% with "
        f"introspection on")
    assert off_drift_pct <= 1.0, (
        f"disabled-introspection timings drift {off_drift_pct:.2f}% "
        f"(>1%): the counters-off path is paying measurable work")


_PLANE_OPS = 64
_PLANE_PAYLOAD = b"\xab" * (512 * 1024)  # a smoke-scale trace segment


def _plane_ops_once() -> float:
    """One timed round of the full segment lifecycle, publisher +
    attacher, the operation mix a sharded sweep repeats per shard."""
    owner = TracePlane()
    worker = TracePlane()
    t0 = time.perf_counter()
    for i in range(_PLANE_OPS):
        ref = owner.publish_bytes(f"bench:{i}", _PLANE_PAYLOAD,
                                  prefix=plane_prefix())
        worker.attach_bytes(ref)
        worker.detach(ref)
        owner.release(ref)
    return time.perf_counter() - t0


def test_bench_sanitizer_overhead():
    """Sanitizer shadow tracking on the plane hot path: <=5% with the
    hooks live.

    The ``REPRO_SANITIZE`` hooks are a ``None`` check per plane call when
    off and a handful of dict updates when on; like the engine-counter
    bench, each round brackets the tracked timing with two untracked ones
    so machine drift cancels out of the comparison. A fresh tracker per
    round keeps the shadow table from growing across rounds (a real run
    gets one tracker per process, not one per sweep).
    """
    if not shm_available():
        pytest.skip("no usable shared memory on this platform")
    _plane_ops_once()  # warm-up: allocator, /dev/shm dentries

    reps = 7
    off_a = on = off_b = float("inf")
    saved = shm_mod._sanitizer
    try:
        for _ in range(reps):
            shm_mod._sanitizer = None
            off_a = min(off_a, _plane_ops_once())
            shm_mod._sanitizer = ShadowTracker()
            on = min(on, _plane_ops_once())
            assert shm_mod._sanitizer.counters["publishes"] == _PLANE_OPS
            shm_mod._sanitizer = None
            off_b = min(off_b, _plane_ops_once())
    finally:
        shm_mod._sanitizer = saved

    off_best = min(off_a, off_b)
    on_pct = (on / off_best - 1.0) * 100.0
    off_drift_pct = abs(off_b / off_a - 1.0) * 100.0

    write_result("obs_sanitizer_overhead", "\n".join([
        "sanitizer overhead — publish/attach/detach/release x "
        f"{_PLANE_OPS}, {len(_PLANE_PAYLOAD) // 1024} KiB segments "
        f"(min of {reps}, off/on/off interleaved)",
        f"hooks off (a)           : {off_a * 1e3:8.1f} ms",
        f"shadow tracking on      : {on * 1e3:8.1f} ms ({on_pct:+.1f}%)",
        f"hooks off (b)           : {off_b * 1e3:8.1f} ms "
        f"(drift {off_drift_pct:.2f}%)",
    ]))
    record_ledger("bench_obs_overhead", "sanitizer_on_overhead_pct",
                  on_pct, unit="pct", attrs={"direction": "lower"})

    assert on_pct <= 5.0, (
        f"sanitizer overhead {on_pct:.1f}% exceeds 5% with shadow "
        f"tracking on")
