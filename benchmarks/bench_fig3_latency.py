"""Figure 3 — execution time vs. added memory latency, all four kernels.

Regenerates the four plots of Figure 3 as tables (rows = extra latency,
columns = scalar + VLs, cells = kilocycles) and checks the figure's visual
claims: every series grows with latency, and the scalar/low-VL series grow
steepest. The timed operation is one fast-engine retiming pass at the
worst-case knob setting — what each additional sweep point costs.
"""

import pytest

from conftest import write_result
from repro.core.report import render_figure3
from repro.core.sweeps import run_implementation
from repro.kernels import KERNELS


@pytest.mark.parametrize("kernel", list(KERNELS))
def test_fig3(kernel, latency_sweeps, workloads, benchmark):
    result = latency_sweeps[kernel]
    write_result(f"fig3_{kernel}", render_figure3(result))

    # -- shape assertions (what the plot shows) --------------------------
    for impl in result.impls:
        series = result.series(impl)
        assert all(a < b for a, b in zip(series, series[1:])), \
            f"{kernel}/{impl} must slow down with added latency"
    # slope comparison: absolute increase over the sweep
    slope = {impl: result.series(impl)[-1] - result.series(impl)[0]
             for impl in result.impls}
    assert slope["scalar"] > slope["vl256"], \
        "the scalar series must be the steepest vs the longest vectors"
    assert slope["vl64"] > slope["vl256"]

    # -- timed unit: one retiming pass -----------------------------------
    sdv, trace = run_implementation(KERNELS[kernel], workloads[kernel],
                                    256, verify=False)
    sdv.configure(extra_latency=1024)
    sdv.classify(trace)  # warm the classification cache
    benchmark(lambda: sdv.time(trace))
