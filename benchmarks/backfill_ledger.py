"""One-shot converter: existing ``results/*.txt`` dumps -> ledger records.

The perf ledger (``repro.obs.ledger``) starts life with whatever history
the repo already has: the committed throughput/overhead text dumps each
carry one headline number per series, and this script parses them into
schema-versioned ``ledger.jsonl`` records so the median+MAD detector has
a seed point per series before the benches themselves start appending.

Run from the repo root (idempotence is on the caller: records carry
``attrs.backfill: true`` so re-runs are detectable, but the script always
appends)::

    PYTHONPATH=src python benchmarks/backfill_ledger.py [--ledger PATH]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

_BACKFILL = {"backfill": True}


def _parse_des(text: str) -> list[dict]:
    scale = re.search(r"scale=(\w+)", text)
    speedup = re.search(r"speedup\s*:\s*([\d.]+)x", text)
    if not speedup:
        return []
    return [{"bench": "bench_engines", "metric": "des_speedup",
             "value": float(speedup.group(1)), "unit": "ratio",
             "scale": scale.group(1) if scale else "ci",
             "attrs": dict(_BACKFILL)}]


def _parse_retiming(text: str) -> list[dict]:
    speedup = re.search(r"speedup:\s*([\d.]+)x", text)
    if not speedup:
        return []
    # the retiming dump predates scale tagging; it was produced at the
    # default bench scale
    return [{"bench": "bench_engines", "metric": "batch_speedup",
             "value": float(speedup.group(1)), "unit": "ratio",
             "scale": "ci", "attrs": dict(_BACKFILL)}]


def _parse_trace_gen(text: str) -> list[dict]:
    scale = re.search(r"scale=(\w+)", text)
    out = []
    for m in re.finditer(
            r"^(\w+)\s+\d+\s+[\d.]+ms\s+[\d.]+ms\s+[\d.]+ms\s+([\d.]+)x",
            text, re.MULTILINE):
        out.append({"bench": "bench_trace_gen",
                    "metric": f"{m.group(1)}_speedup",
                    "value": float(m.group(2)), "unit": "ratio",
                    "scale": scale.group(1) if scale else "paper",
                    "attrs": dict(_BACKFILL)})
    return out


def _parse_obs_overhead(text: str) -> list[dict]:
    out = []
    pairs = (("spans_overhead_pct", r"spans on\)\s*:.*\(([+-][\d.]+)%\)"),
             ("attribution_overhead_pct",
              r"attribution buckets\s*:.*\(([+-][\d.]+)%"))
    for metric, pattern in pairs:
        m = re.search(pattern, text)
        if m:
            out.append({"bench": "bench_obs_overhead", "metric": metric,
                        "value": float(m.group(1)), "unit": "pct",
                        "scale": "ci",
                        "attrs": {**_BACKFILL, "direction": "lower"}})
    return out


_PARSERS = {
    "engine_des_throughput.txt": _parse_des,
    "engine_retiming_throughput.txt": _parse_retiming,
    "trace_gen_throughput.txt": _parse_trace_gen,
    "obs_overhead.txt": _parse_obs_overhead,
}


def backfill(ledger_path, results_dir=RESULTS_DIR) -> int:
    """Parse every recognized dump under ``results_dir`` and append the
    extracted records; returns how many records were written."""
    from repro.obs.ledger import append_record, build_record

    written = 0
    for filename, parse in _PARSERS.items():
        path = Path(results_dir) / filename
        if not path.exists():
            continue
        for fields in parse(path.read_text(encoding="utf-8")):
            append_record(ledger_path, build_record(**fields))
            print(f"  {filename}: {fields['bench']}:{fields['metric']} "
                  f"[{fields['scale']}] = {fields['value']}")
            written += 1
    return written


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ledger", default=str(RESULTS_DIR /
                                                "ledger.jsonl"))
    parser.add_argument("--results", default=str(RESULTS_DIR))
    args = parser.parse_args(argv)
    n = backfill(args.ledger, args.results)
    print(f"backfilled {n} record(s) into {args.ledger}")
    return 0 if n else 1


if __name__ == "__main__":
    sys.exit(main())
