"""Section 4.1 headline numbers — SpMV slowdowns quoted in the paper text.

    "adding 32 cycles of latency the scalar code runs 1.22x slower, while
    the vector implementation with vl=256 only runs 1.05x slower. This is
    even more pronounced when adding 1024 cycles of latency, with a
    slowdown of 8.78x compared to 3.39x."

Regenerates the measured-vs-paper table and asserts the contrast holds
with the right rough magnitudes. The timed unit is the whole headline
extraction from a cached sweep.
"""

from conftest import write_result
from repro.core.figures import headline_numbers
from repro.core.report import render_headline


def test_headline_numbers(latency_sweeps, benchmark):
    result = latency_sweeps["spmv"]
    numbers = headline_numbers(result)
    write_result("headline_spmv", render_headline(numbers))

    # direction and contrast
    assert numbers.vl256_at_32 < numbers.scalar_at_32
    assert numbers.vl256_at_1024 < numbers.scalar_at_1024
    # rough magnitudes (paper: 1.22 / 1.05 / 8.78 / 3.39)
    assert 1.05 < numbers.scalar_at_32 < 1.6
    assert numbers.vl256_at_32 < 1.15
    assert 5.0 < numbers.scalar_at_1024 < 16.0
    assert 1.1 < numbers.vl256_at_1024 < 6.0
    # the scalar-vs-vl256 win factor is in the paper's ballpark (2.6x)
    ratio = numbers.scalar_at_1024 / numbers.vl256_at_1024
    assert 1.5 < ratio < 8.0

    benchmark(headline_numbers, result)
