"""Figure 5 — normalized time vs. the Bandwidth Limiter setting.

Regenerates each kernel's normalized series (1..64 B/cycle, each
implementation divided by its own 1 B/cycle run) plus the plateau summary,
and checks Section 4.2's claims: the scalar curves flatten at a few
B/cycle, while larger VLs keep improving to higher bandwidths. The timed
unit is one retiming pass at the most throttled setting.
"""

import pytest

from conftest import write_result
from repro.core.figures import figure5_series, plateau_bandwidth
from repro.core.report import render_figure5
from repro.core.sweeps import run_implementation
from repro.kernels import KERNELS


@pytest.mark.parametrize("kernel", list(KERNELS))
def test_fig5(kernel, bandwidth_sweeps, workloads, benchmark):
    result = bandwidth_sweeps[kernel]
    write_result(f"fig5_{kernel}", render_figure5(result))

    series = figure5_series(result)
    # normalized time never increases with more bandwidth
    for impl, s in series.items():
        assert all(a >= b - 1e-9 for a, b in zip(s, s[1:])), (kernel, impl)

    # scalar plateaus at a few B/cycle (paper: 1-2)
    assert plateau_bandwidth(result, "scalar") <= 4, kernel
    # the longest vectors saturate at or beyond the scalar plateau, and gain
    # at least as much total benefit
    assert (plateau_bandwidth(result, "vl256")
            >= plateau_bandwidth(result, "scalar")), kernel
    assert series["vl256"][-1] <= series["scalar"][-1] + 1e-9, kernel

    sdv, trace = run_implementation(KERNELS[kernel], workloads[kernel],
                                    256, verify=False)
    sdv.configure(bandwidth_bpc=1)
    sdv.classify(trace)
    benchmark(lambda: sdv.time(trace))


def test_fig5_spmv_long_vectors_use_high_bandwidth(bandwidth_sweeps, benchmark):
    """Section 4.2/5: 'the long vector implementations can naturally use
    bandwidths of 32 or 64 Bytes/Cycle' — sharpest on the memory-bound
    SpMV."""
    result = bandwidth_sweeps["spmv"]
    assert plateau_bandwidth(result, "vl256") >= 16
    assert plateau_bandwidth(result, "vl128") >= 16
    benchmark(plateau_bandwidth, result, "vl256")
