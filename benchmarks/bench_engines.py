"""Simulator-performance benches: the four timing engines themselves.

Not a paper figure — these regression-anchor the tool: the fast engine must
stay orders of magnitude quicker than the DES pair (it is what makes
whole-paper sweeps practical), the batch engine must beat per-point fast
re-timing by a wide margin (it is what makes *paper-scale* sweeps cheap),
the array-backed event engine must hold its throughput lead over the
coroutine reference (it is what makes DES-grade timelines and attribution
spot checks routine), classification must amortize across sweep points,
and the engines must agree on the headline quantity.
"""

import os
import time

import pytest
from conftest import LATENCIES, record_ledger, write_result

from repro.core.sweeps import run_implementation
from repro.engine import simulate_events, simulate_events_fast, simulate_fast
from repro.engine.batch_sim import batch_cycles
from repro.kernels import KERNELS


@pytest.fixture(scope="module")
def classified(workloads):
    spec = KERNELS["fft"]
    sdv, trace = run_implementation(spec, workloads["fft"], 64, verify=False)
    return sdv.classify(trace)


def test_bench_fast_engine(classified, benchmark):
    report = benchmark(simulate_fast, classified)
    assert report.cycles > 0


def test_bench_event_engine(classified, benchmark):
    report = benchmark.pedantic(simulate_events, args=(classified,),
                                rounds=2, iterations=1)
    assert report.cycles > 0


def test_bench_classification(workloads, benchmark):
    spec = KERNELS["fft"]
    sdv, trace = run_implementation(spec, workloads["fft"], 64, verify=False)

    def classify_fresh():
        # bypass the cache: classification cost per geometry
        from repro.memory.classify import classify_trace
        return classify_trace(trace, sdv.config)

    benchmark.pedantic(classify_fresh, rounds=3, iterations=1)


def test_engines_agree_on_benchmark_trace(classified, benchmark):
    fast = benchmark(lambda: simulate_fast(classified).cycles)
    event = simulate_events(classified).cycles
    assert fast == pytest.approx(event, rel=0.5)


@pytest.fixture(scope="module")
def spmv_sweep_setup(workloads):
    """The re-timing half of a SpMV vl256 latency sweep, pre-lowered."""
    spec = KERNELS["spmv"]
    sdv, trace = run_implementation(spec, workloads["spmv"], 256,
                                    verify=False)
    lowered = sdv.lower(trace)  # also fills the classification cache
    configs = [sdv.config.with_extra_latency(l) for l in LATENCIES]
    return sdv, trace, lowered, configs


def test_bench_batch_engine(spmv_sweep_setup, benchmark):
    """One vectorized walk timing the whole Figure-3 latency axis."""
    _, _, lowered, configs = spmv_sweep_setup
    cycles = benchmark(batch_cycles, lowered, configs)
    assert cycles.shape == (len(configs),)
    assert (cycles > 0).all()


def test_bench_batch_vs_fast_retiming_throughput(spmv_sweep_setup):
    """Record the sweep-engine headline: records*points/sec, batch vs fast.

    This is the paper-sweep inner loop — re-time one already-classified
    trace at every latency point — so the ratio is the end-to-end speedup
    a full Figure 3/4/5 regeneration sees after trace generation.
    """
    sdv, trace, lowered, configs = spmv_sweep_setup
    work = lowered.n * len(configs)  # records * sweep points

    reps = 3
    t0 = time.perf_counter()
    for _ in range(reps):
        fast = sdv.time_many(trace, configs, engine="fast", reports=False)
    fast_s = (time.perf_counter() - t0) / reps

    t0 = time.perf_counter()
    for _ in range(reps):
        batch = batch_cycles(lowered, configs)
    batch_s = (time.perf_counter() - t0) / reps

    assert batch.tolist() == fast.tolist()  # same cycles, to the bit
    speedup = fast_s / batch_s
    lines = [
        "SpMV vl256 latency-sweep re-timing throughput "
        f"({lowered.n} records x {len(configs)} points)",
        f"  fast  : {fast_s * 1e3:9.2f} ms/sweep "
        f"({work / fast_s:12.0f} records*points/s)",
        f"  batch : {batch_s * 1e3:9.2f} ms/sweep "
        f"({work / batch_s:12.0f} records*points/s)",
        f"  speedup: {speedup:.1f}x",
    ]
    write_result("engine_retiming_throughput", "\n".join(lines))
    verdict = record_ledger("bench_engines", "batch_speedup", speedup,
                            attrs={"records": lowered.n,
                                   "points": len(configs)})
    assert not verdict.is_regression, (
        f"batch-engine speedup regressed: {verdict.reason}")
    # floor for fresh clones with no ledger history
    assert speedup >= 5.0, f"batch engine only {speedup:.1f}x over fast"


# Legacy fallback floor: minimum event/event-ref speedup per scale, used
# only when the perf ledger has too little committed history for the
# median+MAD detector (fresh clone, new series). Because both engines run
# on the same interpreter the ratio is machine-independent; below 0.8x of
# these fails. Baselines are observed min-of-3 ratios on the SpMV vl256
# trace, rounded down.
_DES_BASELINE_SPEEDUP = {"ci": 5.5, "paper": 10.0}


def test_bench_event_fast_vs_ref_throughput(spmv_sweep_setup):
    """Record the DES headline: the array-backed engine vs the coroutine ref.

    SpMV vl256 is the line-traffic-heavy case — gather/scatter misses keep
    the line-request pipeline (MSHR grants, bank arbitration, NoC hops,
    response fan-out) saturated, which is exactly the token stream the
    calendar-queue engine exists to make cheap. Both engines consume the
    same shared EventPlan and must return bit-identical reports, so the
    ratio isolates pure scheduling overhead.
    """
    sdv, trace, _, _ = spmv_sweep_setup
    ct = sdv.classify(trace)
    scale_name = os.environ.get("REPRO_BENCH_SCALE", "ci")

    ref = simulate_events(ct)            # also warms the shared plan cache
    fast = simulate_events_fast(ct)
    assert fast.cycles == ref.cycles     # the bit-exactness contract
    assert fast.meta == ref.meta

    reps = 3
    ref_s = min(_timed(simulate_events, ct) for _ in range(reps))
    fast_s = min(_timed(simulate_events_fast, ct) for _ in range(reps))

    speedup = ref_s / fast_s
    n = len(ct.trace)
    lines = [
        f"SpMV vl256 DES throughput ({n} records, scale={scale_name})",
        f"  event-ref : {ref_s * 1e3:9.2f} ms/run "
        f"({n / ref_s:10.0f} records/s)",
        f"  event     : {fast_s * 1e3:9.2f} ms/run "
        f"({n / fast_s:10.0f} records/s)",
        f"  speedup   : {speedup:.2f}x",
    ]
    write_result("engine_des_throughput", "\n".join(lines))

    # primary bar: the robust detector over the committed ledger history;
    # the hand-set 0.8x-of-constant check only guards fresh clones where
    # the series has too few samples for median+MAD to mean anything
    verdict = record_ledger("bench_engines", "des_speedup", speedup,
                            attrs={"records": n})
    if verdict.status == "insufficient":
        baseline = _DES_BASELINE_SPEEDUP.get(scale_name)
        if baseline is not None:
            assert speedup >= 0.8 * baseline, (
                f"event engine only {speedup:.2f}x over event-ref at "
                f"scale={scale_name}; fallback baseline is {baseline}x "
                f"(>20% regression; ledger: {verdict.reason})")
    else:
        assert not verdict.is_regression, (
            f"event-engine speedup regressed: {verdict.reason}")


def _timed(fn, ct):
    t0 = time.perf_counter()
    fn(ct)
    return time.perf_counter() - t0
