"""Simulator-performance benches: the two timing engines themselves.

Not a paper figure — these regression-anchor the tool: the fast engine must
stay orders of magnitude quicker than the event engine (it is what makes
whole-paper sweeps practical), classification must amortize across sweep
points, and the engines must agree on the headline quantity.
"""

import pytest

from repro.core.sweeps import run_implementation
from repro.engine import simulate_events, simulate_fast
from repro.kernels import KERNELS


@pytest.fixture(scope="module")
def classified(workloads):
    spec = KERNELS["fft"]
    sdv, trace = run_implementation(spec, workloads["fft"], 64, verify=False)
    return sdv.classify(trace)


def test_bench_fast_engine(classified, benchmark):
    report = benchmark(simulate_fast, classified)
    assert report.cycles > 0


def test_bench_event_engine(classified, benchmark):
    report = benchmark.pedantic(simulate_events, args=(classified,),
                                rounds=2, iterations=1)
    assert report.cycles > 0


def test_bench_classification(workloads, benchmark):
    spec = KERNELS["fft"]
    sdv, trace = run_implementation(spec, workloads["fft"], 64, verify=False)

    def classify_fresh():
        # bypass the cache: classification cost per geometry
        from repro.memory.classify import classify_trace
        return classify_trace(trace, sdv.config)

    benchmark.pedantic(classify_fresh, rounds=3, iterations=1)


def test_engines_agree_on_benchmark_trace(classified, benchmark):
    fast = benchmark(lambda: simulate_fast(classified).cycles)
    event = simulate_events(classified).cycles
    assert fast == pytest.approx(event, rel=0.5)
