"""Machine-characterization benches: the STREAM/gather/latency probes.

Not a paper figure — these pin the simulated machine's measured identity
(peak bandwidth, gather throughput, load-to-use latency) so any timing-
model change that shifts the substrate shows up here before it muddies the
paper figures.
"""

import pytest

from conftest import write_result
from repro.kernels.micro import characterize_machine, stream_triad
from repro.soc import FpgaSdv
from repro.util.tables import TextTable


def test_machine_probe_table(benchmark):
    rows = []
    for label, sdv in [
        ("default", FpgaSdv()),
        ("+1024 latency", FpgaSdv().configure(extra_latency=1024)),
        ("8 B/cycle", FpgaSdv().configure(bandwidth_bpc=8)),
        ("max VL 8", FpgaSdv().configure(max_vl=8)),
    ]:
        p = characterize_machine(sdv)
        rows.append((label, p))
    t = TextTable(["setting", "copy B/c", "triad B/c", "gather B/c",
                   "latency c/hop"])
    for label, p in rows:
        t.add_row([label, f"{p.copy_bytes_per_cycle:.1f}",
                   f"{p.triad_bytes_per_cycle:.1f}",
                   f"{p.gather_bytes_per_cycle:.1f}",
                   f"{p.chase_cycles_per_hop:.0f}"])
    write_result("machine_probe", "Machine characterization probes\n"
                 + t.render())

    default = rows[0][1]
    assert default.copy_bytes_per_cycle > 0.85 * 64
    assert rows[1][1].chase_cycles_per_hop > 1000
    assert rows[2][1].copy_bytes_per_cycle < default.copy_bytes_per_cycle

    sdv = FpgaSdv()
    sess = sdv.session()
    stream_triad(sess)
    trace = sess.seal()
    sdv.classify(trace)
    benchmark(lambda: sdv.time(trace))
