"""Classification-engine bench: the vectorized stack-distance kernel.

Three ledger series, measuring the same change at three honesty levels
(``docs/memory-model.md`` quotes all three):

``classify_throughput`` — the engine-alone ratio: the sequential
reference walker (:func:`repro.memory.classify.classify_trace`) against
the vectorized stack-distance engine (:func:`repro.memory.classify_fast.
classify_trace_fast`) on the record-heaviest kernel trace, identical
output bit-for-bit. The per-set LRU state update is irreducibly
sequential per set, so this ratio plateaus around 2-2.5x — real, but
modest, and the series records that number honestly.

``classify_shard_attach`` — the per-shard ratio the classified shm
plane delivers: what a phase-B shard pays to *obtain* its trace's
classification. Before this plane, a shard whose worker had not already
classified the trace reclassified it from scratch with the walker; now
it attaches the published columnar classification as a zero-copy view
plus a level-array unpack. This is the >=5x headline series (fresh-
clone floor 5x at paper scale).

``classify_sweep_total`` — the per-implementation total, the most
conservative accounting: old = one walker classification per worker
that touches the implementation's shards (PR 8's per-worker trace memo
already deduplicated beyond that), new = one stack classification in
phase A plus one attach per shard. The honest multiple here is ~4x at
paper scale — smaller than the per-shard ratio because the one
unavoidable phase-A classification amortizes over few shards.

Run at paper scale (``REPRO_BENCH_SCALE=paper``) for the quoted
numbers; the default ci scale keeps CI under a minute.
"""

import os
import time

import numpy as np
from conftest import LATENCIES, record_ledger, write_result

from repro.config import SdvConfig
from repro.core.shm import TracePlane, shm_available
from repro.core.sweeps import _plan_shards, run_implementation
from repro.kernels import KERNELS
from repro.memory.classify import classify_trace
from repro.memory.classify_fast import classify_trace_fast

KERNEL = "spmv"
#: the shortest-vector build has the most records by far, making it both
#: the dominant classification cost of a sweep and the steadiest timing
VL = 8
JOBS = 4

#: fresh-clone floors (ledger median+MAD is the bar once history exists).
#: The engine ratio grows with trace size — fixed per-run setup (round
#: scheduling, state load) amortizes — so the paper-scale floor is
#: higher than the small ci-scale one.
_ENGINE_FLOOR = {"paper": 1.5}  # default 1.1 below
_ENGINE_FLOOR_DEFAULT = 1.1
#: the >=5x acceptance bar lives on the per-shard attach series
_ATTACH_FLOOR = {"paper": 5.0}
_ATTACH_FLOOR_DEFAULT = 3.0
#: per-impl total: the phase-A classification amortizes over few shards
_SWEEP_FLOOR = {"paper": 3.0}
_SWEEP_FLOOR_DEFAULT = 2.0

_PREFIX = "repro-bench-classify-"


def _median_time(fn, repeats=5):
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return sorted(times)[len(times) // 2]


def _assert_identical(a, b):
    assert np.array_equal(a.rows, b.rows)
    for x, y in zip(a.levels, b.levels):
        assert (x is None) == (y is None)
        if x is not None:
            assert np.array_equal(x, y)
    assert a.totals == b.totals


def test_bench_classify_throughput(workloads):
    scale_name = os.environ.get("REPRO_BENCH_SCALE", "ci")
    cfg = SdvConfig().validate()
    spec = KERNELS[KERNEL]
    _sdv, trace = run_implementation(spec, workloads[KERNEL], VL,
                                     verify=False)

    walk_ct = classify_trace(trace, cfg)
    stack_ct = classify_trace_fast(trace, cfg)
    _assert_identical(walk_ct, stack_ct)

    t_walk = _median_time(lambda: classify_trace(trace, cfg))
    t_stack = _median_time(lambda: classify_trace_fast(trace, cfg))
    engine_ratio = t_walk / t_stack

    # -- the sweep-level total: per-shard reclassify vs classify-once +
    #    per-shard plane attach --------------------------------------------
    n_impls = 7  # scalar + the six paper VLs (fig3 grid)
    shards = _plan_shards(len(LATENCIES), len(trace),
                          n_impls * len(LATENCIES) * len(trace), JOBS, None)
    j = max(1, len(shards))
    t_attach = 0.0
    plane_up = shm_available()
    if plane_up:
        owner = TracePlane()
        try:
            ref = owner.publish_classified("bench", stack_ct,
                                           prefix=_PREFIX)
            plane_up = ref is not None
            if plane_up:
                def attach_once():
                    # a fresh plane per attach = what each shard worker
                    # process pays (map + dtype rebuild + level unpack)
                    worker = TracePlane()
                    got = worker.attach_classified(ref, trace, cfg)
                    assert got is not None
                    worker.detach(ref)
                t_attach = _median_time(attach_once)
        finally:
            owner.unlink_all()
    # old: one walker run per worker touching this impl's shards (the
    # PR 8 per-worker trace memo already deduplicated beyond that);
    # new: one phase-A stack run + one attach per shard
    n_walks = min(j, JOBS)
    old_total = n_walks * t_walk
    new_total = t_stack + j * t_attach
    sweep_ratio = old_total / new_total
    attach_ratio = t_walk / t_attach if t_attach else float("nan")

    lines = [
        f"classification engines — {KERNEL} vl{VL} ({scale_name} scale, "
        f"{len(trace)} records, {j} shards/impl at jobs={JOBS}, "
        f"shm={'up' if plane_up else 'unavailable'})",
        f"  walker (reference)   : {t_walk * 1e3:8.1f} ms",
        f"  stack-distance engine: {t_stack * 1e3:8.1f} ms",
        f"  engine-alone speedup : {engine_ratio:.2f}x",
        f"  plane attach (shard) : {t_attach * 1e3:8.2f} ms",
        f"  per-shard speedup    : {attach_ratio:.1f}x "
        f"(attach vs walker reclassify)",
        f"  per-impl total, old  : {old_total * 1e3:8.1f} ms "
        f"({n_walks} walker runs)",
        f"  per-impl total, new  : {new_total * 1e3:8.1f} ms "
        f"(stack once + {j} x attach)",
        f"  per-impl speedup     : {sweep_ratio:.1f}x",
    ]
    write_result("classify_throughput", "\n".join(lines))

    v_engine = record_ledger(
        "bench_classify", "classify_throughput", engine_ratio,
        attrs={"kernel": KERNEL, "vl": VL, "records": len(trace)})
    floor = _ENGINE_FLOOR.get(scale_name, _ENGINE_FLOOR_DEFAULT)
    if v_engine.status == "insufficient":
        assert engine_ratio >= floor, (
            f"stack engine only {engine_ratio:.2f}x over the walker "
            f"(floor {floor}x; ledger: {v_engine.reason})")
    else:
        assert not v_engine.is_regression, (
            f"classify throughput regressed: {v_engine.reason}")

    if not plane_up:
        # no shm: the attach comparisons have no attach leg; the engine
        # series above is the whole bench
        return
    v_attach = record_ledger(
        "bench_classify", "classify_shard_attach", attach_ratio,
        attrs={"kernel": KERNEL, "vl": VL, "records": len(trace)})
    attach_floor = _ATTACH_FLOOR.get(scale_name, _ATTACH_FLOOR_DEFAULT)
    if v_attach.status == "insufficient":
        assert attach_ratio >= attach_floor, (
            f"plane attach only {attach_ratio:.1f}x over walker "
            f"reclassify per shard (floor {attach_floor}x; "
            f"ledger: {v_attach.reason})")
    else:
        assert not v_attach.is_regression, (
            f"per-shard attach ratio regressed: {v_attach.reason}")

    v_sweep = record_ledger(
        "bench_classify", "classify_sweep_total", sweep_ratio,
        attrs={"kernel": KERNEL, "vl": VL, "shards": j, "jobs": JOBS})
    sweep_floor = _SWEEP_FLOOR.get(scale_name, _SWEEP_FLOOR_DEFAULT)
    if v_sweep.status == "insufficient":
        assert sweep_ratio >= sweep_floor, (
            f"classify-once + plane attach only {sweep_ratio:.1f}x over "
            f"per-shard reclassification (floor {sweep_floor}x; "
            f"ledger: {v_sweep.reason})")
    else:
        assert not v_sweep.is_regression, (
            f"sweep-level classification total regressed: "
            f"{v_sweep.reason}")
