"""Ablation benches for the design choices DESIGN.md calls out.

Beyond the paper's figures, these quantify how much each modeled mechanism
contributes — useful both as regression anchors for the simulator and as
the "why does the machine behave like this" companion to Figure 3/4:

* VPU lane count (8 in the paper; 4 and 16 for contrast),
* decoupled memory-queue depth (latency tolerance across instructions),
* line-MSHR pool size (sustained DRAM parallelism, the residual VL=256
  latency sensitivity),
* gather coalescing on/off,
* chaining on/off,
* out-of-order vs strict in-order memory issue,
* compact (jagged) vs padded SELL slots on a power-law input.
"""

import dataclasses

import numpy as np
import pytest

from conftest import write_result
from repro.config import SdvConfig, VpuConfig
from repro.core.sweeps import run_implementation
from repro.kernels import KERNELS
from repro.util.tables import TextTable


def _time(spec, workload, *, vl=256, config=None, extra_latency=0):
    sdv, trace = run_implementation(spec, workload, vl, config=config,
                                    verify=False)
    if extra_latency:
        sdv.configure(extra_latency=extra_latency)
    return sdv.time(trace).cycles


def test_ablation_lanes(workloads, benchmark):
    """More lanes shorten arithmetic occupancy (FFT is compute-rich)."""
    spec, wl = KERNELS["fft"], workloads["fft"]
    rows = []
    times = {}
    for lanes in (4, 8, 16):
        cfg = SdvConfig(vpu=VpuConfig(lanes=lanes)).validate()
        times[lanes] = _time(spec, wl, config=cfg)
        rows.append((lanes, times[lanes]))
    t = TextTable(["lanes", "kcycles"])
    for lanes, cyc in rows:
        t.add_row([lanes, f"{cyc / 1e3:.1f}"])
    write_result("ablation_lanes", "FFT vl256 vs lane count\n" + t.render())
    assert times[16] < times[4]
    benchmark(lambda: _time(spec, wl))


def test_ablation_queue_depth(workloads, benchmark):
    """A deeper decoupled queue buys latency tolerance at short VL."""
    spec, wl = KERNELS["spmv"], workloads["spmv"]
    times = {}
    for depth in (1, 4, 32):
        cfg = SdvConfig(vpu=VpuConfig(mem_queue_depth=depth)).validate()
        times[depth] = _time(spec, wl, vl=8, config=cfg, extra_latency=1024)
    t = TextTable(["queue depth", "kcycles @ +1024"])
    for d in (1, 4, 32):
        t.add_row([d, f"{times[d] / 1e3:.1f}"])
    write_result("ablation_queue",
                 "SpMV vl8 +1024 vs memory-queue depth\n" + t.render())
    assert times[32] < times[4] < times[1]
    benchmark(lambda: _time(spec, wl, vl=8, extra_latency=1024))


def test_ablation_line_mshrs(workloads, benchmark):
    """The line-MSHR pool bounds VL=256's residual latency sensitivity."""
    spec, wl = KERNELS["spmv"], workloads["spmv"]
    slow = {}
    for mshrs in (32, 128, 512):
        cfg = SdvConfig(vpu=VpuConfig(line_mshrs=mshrs)).validate()
        base = _time(spec, wl, config=cfg)
        plus = _time(spec, wl, config=cfg, extra_latency=1024)
        slow[mshrs] = plus / base
    t = TextTable(["line MSHRs", "vl256 slowdown @ +1024"])
    for m in (32, 128, 512):
        t.add_row([m, f"{slow[m]:.2f}x"])
    write_result("ablation_mshrs",
                 "SpMV vl256 slowdown vs line-MSHR pool\n" + t.render())
    assert slow[512] < slow[128] < slow[32]
    benchmark(lambda: _time(spec, wl, extra_latency=1024))


def test_ablation_gather_coalescing(workloads, benchmark):
    """Coalescing same-line gather elements saves DRAM transactions."""
    spec, wl = KERNELS["spmv"], workloads["spmv"]
    on = SdvConfig(vpu=VpuConfig(coalesce_gathers=True)).validate()
    off = SdvConfig(vpu=VpuConfig(coalesce_gathers=False)).validate()
    t_on = _time(spec, wl, config=on)
    t_off = _time(spec, wl, config=off)
    write_result("ablation_coalescing",
                 f"SpMV vl256: coalescing on {t_on / 1e3:.1f}k vs "
                 f"off {t_off / 1e3:.1f}k cycles")
    assert t_on <= t_off
    benchmark(lambda: _time(spec, wl, config=on))


def test_ablation_chaining(workloads, benchmark):
    """Chaining lets dependent ops start before producers complete."""
    spec, wl = KERNELS["fft"], workloads["fft"]
    on = SdvConfig(vpu=VpuConfig(chaining=True)).validate()
    off = SdvConfig(vpu=VpuConfig(chaining=False)).validate()
    t_on = _time(spec, wl, config=on)
    t_off = _time(spec, wl, config=off)
    write_result("ablation_chaining",
                 f"FFT vl256: chaining on {t_on / 1e3:.1f}k vs "
                 f"off {t_off / 1e3:.1f}k cycles")
    assert t_on < t_off
    benchmark(lambda: _time(spec, wl, config=on))


def test_ablation_ooo_mem_issue(workloads, benchmark):
    """OoO memory issue keeps independent loads flowing past a stalled
    gather — essential at short VL."""
    spec, wl = KERNELS["spmv"], workloads["spmv"]
    ooo = SdvConfig(vpu=VpuConfig(ooo_mem_issue=True)).validate()
    ino = SdvConfig(vpu=VpuConfig(ooo_mem_issue=False)).validate()
    t_ooo = _time(spec, wl, vl=8, config=ooo)
    t_ino = _time(spec, wl, vl=8, config=ino)
    write_result("ablation_ooo",
                 f"SpMV vl8: OoO issue {t_ooo / 1e3:.1f}k vs "
                 f"in-order {t_ino / 1e3:.1f}k cycles")
    assert t_ooo < t_ino
    benchmark(lambda: _time(spec, wl, vl=8, config=ooo))


def test_ablation_sell_compact_vs_padded(benchmark):
    """Compact (jagged) slots vs padded ELLPACK on a power-law matrix."""
    import scipy.sparse as sp
    from repro.kernels.spmv import spmv_vector
    from repro.soc import FpgaSdv
    from repro.workloads.graphs import rmat_graph

    g = rmat_graph(2 ** 11, edge_factor=8, seed=3)
    mat = sp.csr_matrix(
        (np.ones(g.indices.shape[0]), g.indices, g.indptr), shape=(g.n, g.n)
    )
    out = {}
    for compact in (True, False):
        sdv = FpgaSdv().configure(max_vl=256)
        res, report = sdv.run(
            lambda sess, m: spmv_vector(sess, m, compact=compact), mat)
        out[compact] = (report.cycles, res.meta["padding_overhead"])
    write_result(
        "ablation_sell_layout",
        "SpMV vl256 on an R-MAT matrix (power-law rows)\n"
        f"compact: {out[True][0] / 1e3:.1f}k cycles "
        f"(padding {out[True][1]:.2f}x)\n"
        f"padded : {out[False][0] / 1e3:.1f}k cycles "
        f"(padding {out[False][1]:.2f}x)",
    )
    assert out[True][0] < out[False][0]
    assert out[True][1] == pytest.approx(1.0)

    sdv = FpgaSdv().configure(max_vl=256)
    sess = sdv.session()
    spmv_vector(sess, mat)
    trace = sess.seal()
    sdv.classify(trace)
    benchmark(lambda: sdv.time(trace))


def test_ablation_fft_layout(workloads, benchmark):
    """SoA vs interleaved-AoS complex layout: segment accesses keep the
    cost of the interleaved layout near the SoA baseline."""
    from repro.kernels.fft import fft_vector, fft_vector_aos
    from repro.soc import FpgaSdv

    sig = workloads["fft"]
    _, soa = FpgaSdv().run(fft_vector, sig)
    _, aos = FpgaSdv().run(fft_vector_aos, sig)
    write_result(
        "ablation_fft_layout",
        f"FFT vl256: SoA {soa.cycles / 1e3:.1f}k vs "
        f"AoS+vlseg {aos.cycles / 1e3:.1f}k cycles "
        f"({aos.cycles / soa.cycles:.2f}x)",
    )
    assert aos.cycles < soa.cycles * 1.3

    sdv = FpgaSdv()
    sess = sdv.session()
    fft_vector_aos(sess, sig)
    trace = sess.seal()
    sdv.classify(trace)
    benchmark(lambda: sdv.time(trace))


def test_ablation_direction_optimizing_bfs(workloads, benchmark):
    """The Beamer-style bottom-up switch on top of the vectorized BFS —
    the paper's future-work direction for graph kernels."""
    from repro.kernels.bfs import bfs_vector, bfs_vector_directopt
    from repro.soc import FpgaSdv

    g = workloads["bfs"]
    dopt_out, dopt = FpgaSdv().run(bfs_vector_directopt, g)
    _, td = FpgaSdv().run(bfs_vector, g)
    write_result(
        "ablation_direction_bfs",
        f"BFS vl256: top-down {td.cycles / 1e3:.1f}k vs "
        f"direction-optimizing {dopt.cycles / 1e3:.1f}k cycles "
        f"({td.cycles / dopt.cycles:.2f}x, "
        f"{dopt_out.meta['bottom_up_steps']} bottom-up steps)",
    )
    assert dopt.cycles < td.cycles

    sdv = FpgaSdv()
    sess = sdv.session()
    bfs_vector_directopt(sess, g)
    trace = sess.seal()
    sdv.classify(trace)
    benchmark(lambda: sdv.time(trace))


def test_ablation_l1_prefetcher(workloads, benchmark):
    """A next-2-line L1 stream prefetcher on the scalar core: how much of
    the paper's scalar latency sensitivity would it mask? (The FPGA core
    measured in the paper has none — default off.)"""
    from repro.config import CoreConfig

    spec, wl = KERNELS["spmv"], workloads["spmv"]
    rows = {}
    for depth in (0, 2):
        cfg = SdvConfig(core=CoreConfig(l1_prefetch_depth=depth)).validate()
        sdv, trace = run_implementation(spec, wl, None, config=cfg,
                                        verify=False)
        base = sdv.time(trace).cycles
        sdv.configure(extra_latency=1024)
        plus = sdv.time(trace).cycles
        rows[depth] = (base, plus, plus / base)
    write_result(
        "ablation_prefetcher",
        "scalar SpMV with an L1 stream prefetcher\n"
        f"off     : base {rows[0][0] / 1e3:.1f}k, +1024 slowdown "
        f"{rows[0][2]:.2f}x\n"
        f"depth=2 : base {rows[2][0] / 1e3:.1f}k, +1024 slowdown "
        f"{rows[2][2]:.2f}x\n"
        "(a prefetcher masks stream misses but not the x-gathers, so the\n"
        " scalar core remains far more latency-sensitive than VL=256)",
    )
    assert rows[2][0] <= rows[0][0]          # base no worse
    assert rows[2][2] < rows[0][2]           # slope shallower
    # ...but still steeper than the long-vector implementation
    sdv_v, trace_v = run_implementation(spec, wl, 256, verify=False)
    v_base = sdv_v.time(trace_v).cycles
    sdv_v.configure(extra_latency=1024)
    v_slow = sdv_v.time(trace_v).cycles / v_base
    assert rows[2][2] > v_slow

    cfg = SdvConfig(core=CoreConfig(l1_prefetch_depth=2)).validate()
    sdv, trace = run_implementation(spec, wl, None, config=cfg, verify=False)
    sdv.classify(trace)
    benchmark(lambda: sdv.time(trace))


def test_ablation_spmv_formulation(workloads, benchmark):
    """CSR-vector (row at a time) vs SELL-C-sigma: why the paper's SpMV
    lineage uses sliced formats on short-row matrices."""
    from repro.kernels.spmv import spmv_vector, spmv_vector_csr
    from repro.soc import FpgaSdv

    mat = workloads["spmv"]
    _, naive = FpgaSdv().run(spmv_vector_csr, mat)
    _, sell = FpgaSdv().run(spmv_vector, mat)
    write_result(
        "ablation_spmv_formulation",
        f"SpMV vl256: CSR-vector {naive.cycles / 1e3:.1f}k vs "
        f"SELL-C-sigma {sell.cycles / 1e3:.1f}k cycles "
        f"({naive.cycles / sell.cycles:.1f}x)",
    )
    assert sell.cycles < naive.cycles

    sdv = FpgaSdv()
    sess = sdv.session()
    spmv_vector_csr(sess, mat)
    trace = sess.seal()
    sdv.classify(trace)
    benchmark(lambda: sdv.time(trace))


def test_ablation_lmul(workloads, benchmark):
    """LMUL register grouping at short max-VL: RVV's lever for longer
    strips without wider registers (the paper's VPU implements v0.7.1,
    which includes it)."""
    import numpy as np
    from repro.soc import FpgaSdv

    def stream(session, lmul, n=1 << 13):
        mem, vec = session.mem, session.vector
        a = mem.alloc("x", np.arange(n, dtype=np.float64))
        b = mem.alloc("y", n, np.float64)
        i = 0
        while i < n:
            vl = vec.vsetvl(n - i, lmul=lmul)
            vec.vse(vec.vle(a, i), b, i)
            i += vl

    times = {}
    for lmul in (1, 2, 8):
        sdv = FpgaSdv().configure(max_vl=8, extra_latency=1024)
        sess = sdv.session()
        stream(sess, lmul)
        times[lmul] = sdv.time(sess.seal()).cycles
    write_result(
        "ablation_lmul",
        "streaming copy at max VL=8, +1024 latency, by LMUL\n"
        + "\n".join(f"LMUL={k}: {v / 1e3:.1f}k cycles" for k, v in
                    times.items()),
    )
    assert times[8] < times[2] < times[1]

    sdv = FpgaSdv().configure(max_vl=8)
    sess = sdv.session()
    stream(sess, 8)
    trace = sess.seal()
    sdv.classify(trace)
    benchmark(lambda: sdv.time(trace))
