"""End-to-end sweep-orchestration bench: the sharded scheduler itself.

Not a paper figure — this regression-anchors the *orchestration layer*:
a full Figure-3 latency sweep with the event engine at ``--jobs 4``,
run twice over identical work. The baseline is the whole-implementation
fan-out (one task per (kernel, impl), every worker regenerating its own
trace, the pre-shard scheduler); the contender is the two-phase sharded
scheduler over the zero-copy shared-memory trace plane. Both must
produce bit-identical Measurement rows — the speedup is pure scheduling
and data-plane win: point-chunk granularity keeps workers busy while a
heavy implementation's tail runs, and attached traces cost a page-table
mapping instead of a regeneration.

The ratio is recorded in the ``sweep_e2e_fig3_event`` ledger series
(median+MAD detector: a drop below the noise band and more than
materially below the committed median fails perf-smoke). The hand-set
2x floor below only guards fresh clones with no committed history, and
only engages with >=4 effective workers — on fewer cores, or where
``/dev/shm`` is unavailable and the plane falls back, the bench still
runs (recording the honest ratio) but asserts only bit-identity.
"""

import os
import time

from conftest import LATENCIES, VLS, record_ledger, write_result

from repro.core.shm import plane_prefix, shm_available
from repro.core.sweeps import latency_sweep
from repro.kernels import KERNELS
from repro.obs.spans import set_tracing

#: phase-A stage spans (trace generation + classification) — the work the
#: classified shm plane exists to amortize; summed across workers, so this
#: is total work, not wall time
_PHASE_A = ("trace-gen:", "classify:")

#: the acceptance configuration: fig3, event engine, four workers
JOBS = 4
KERNEL = "spmv"

#: fresh-clone floor at >=4 effective workers (the ledger's median+MAD
#: detector is the primary bar once the series has history)
_SHARDED_FLOOR = 2.0


def _rows(result):
    return [(m.kernel, m.impl, m.extra_latency, m.bandwidth_bpc, m.cycles)
            for m in result.measurements]


def test_bench_sharded_fig3_event_e2e(workloads):
    spec = KERNELS[KERNEL]
    workload = workloads[KERNEL]
    scale_name = os.environ.get("REPRO_BENCH_SCALE", "ci")
    cpus = os.cpu_count() or 1
    effective = min(JOBS, cpus)
    plane_up = shm_available()

    # both runs traced (symmetric span overhead, a few percent); the
    # tracer is cleared between them so the phase-A sum below is the
    # sharded run's alone
    tracer = set_tracing(True)
    try:
        t0 = time.perf_counter()
        baseline = latency_sweep(spec, workload, latencies=LATENCIES,
                                 vls=VLS, verify=False, engine="event",
                                 jobs=JOBS, shm=False)
        baseline_s = time.perf_counter() - t0

        tracer.clear()
        t0 = time.perf_counter()
        sharded = latency_sweep(spec, workload, latencies=LATENCIES,
                                vls=VLS, verify=False, engine="event",
                                jobs=JOBS)
        sharded_s = time.perf_counter() - t0
        phase_a_s = sum(s.wall_s for s in tracer.spans
                        if s.name.startswith(_PHASE_A))
    finally:
        set_tracing(False)

    # the contract that makes the comparison meaningful at all
    assert _rows(baseline) == _rows(sharded)
    # and the plane's own contract: nothing left behind in /dev/shm
    try:
        leftovers = [n for n in os.listdir("/dev/shm")
                     if n.startswith(plane_prefix())]
    except OSError:
        leftovers = []
    assert not leftovers, f"leaked plane segments: {leftovers}"

    speedup = baseline_s / sharded_s
    n_rows = len(sharded.measurements)
    lines = [
        f"Figure-3 {KERNEL} end-to-end sweep, event engine, "
        f"jobs={JOBS} ({scale_name} scale, {len(LATENCIES)} points x "
        f"{n_rows // len(LATENCIES)} impls, {effective} effective "
        f"worker(s), shm={'up' if plane_up else 'unavailable'})",
        f"  whole-impl fan-out : {baseline_s:7.2f} s",
        f"  sharded + shm plane: {sharded_s:7.2f} s",
        f"  speedup            : {speedup:.2f}x",
        f"  phase-A work       : {phase_a_s:7.2f} s "
        f"(trace-gen + classify, summed across workers)",
    ]
    write_result("sweep_e2e_fig3_event", "\n".join(lines))

    v_phase = record_ledger("bench_sweep_scale", "sweep_phaseA", phase_a_s,
                            unit="s",
                            attrs={"direction": "lower", "jobs": JOBS,
                                   "engine": "event", "kernel": KERNEL,
                                   "shm": plane_up})
    if v_phase.status == "insufficient":
        # fresh clone: sanity only — phase A happened, and costs less
        # than an entire untraced baseline sweep
        assert 0.0 < phase_a_s < baseline_s
    else:
        assert not v_phase.is_regression, (
            f"phase-A (trace-gen + classify) work regressed: "
            f"{v_phase.reason}")

    verdict = record_ledger("bench_sweep_scale", "sweep_e2e_fig3_event",
                            speedup,
                            attrs={"jobs": JOBS, "cpus": cpus,
                                   "engine": "event", "kernel": KERNEL,
                                   "shm": plane_up})
    if not (plane_up and effective >= 2):
        # serial fallback territory: the ratio is ~1x by construction;
        # bit-identity above is the whole test
        return
    if verdict.status == "insufficient":
        if effective >= JOBS:
            assert speedup >= _SHARDED_FLOOR, (
                f"sharded scheduler only {speedup:.2f}x over whole-impl "
                f"fan-out at jobs={JOBS} on {cpus} CPUs (floor "
                f"{_SHARDED_FLOOR}x; ledger: {verdict.reason})")
    else:
        assert not verdict.is_regression, (
            f"sharded sweep speedup regressed: {verdict.reason}")
