"""Figure 4 — normalized-slowdown heat tables, all four kernels.

Regenerates each kernel's table (rows = extra latency, columns =
implementation, cells = slowdown vs that implementation's own 0-latency
run) and checks the paper's key observation: along every latency row, the
slowdown at the right-most column (VL=256) is the minimum, and the scalar
column dominates the long-vector columns. The timed unit is the figure
extraction itself (normalization over the full sweep grid).
"""

import pytest

from conftest import write_result
from repro.core.figures import figure4_table
from repro.core.report import render_figure4
from repro.kernels import KERNELS


@pytest.mark.parametrize("kernel", list(KERNELS))
def test_fig4(kernel, latency_sweeps, benchmark):
    result = latency_sweeps[kernel]
    write_result(f"fig4_{kernel}", render_figure4(result))

    table = figure4_table(result)
    rows = range(len(result.points))

    # every implementation's slowdown grows along the latency axis
    for impl in result.impls:
        col = table[impl]
        assert all(a <= b + 1e-9 for a, b in zip(col, col[1:])), (kernel, impl)

    # paper: "the minimum slowdown at the right-most column" — VL=256 beats
    # scalar and the mid-length vectors on every row. Ties within 3% are
    # not meaningful: the paper's own five-run measurement variation is
    # "below 3%" (Section 3.2), so we use the same noise envelope.
    for i in rows:
        assert table["vl256"][i] <= table["scalar"][i] * 1.03, (kernel, i)
        assert table["vl256"][i] <= table["vl64"][i] * 1.03, (kernel, i)
        assert table["vl256"][i] <= table["vl128"][i] * 1.03, (kernel, i)

    # scalar degrades more than the longest vectors at the largest latency.
    # The shorter-VL columns deviate for the graph/FFT kernels (their base
    # times are dispatch/occupancy- or compulsory-miss-bound, which mutes
    # or inverts the *relative* slowdown — see EXPERIMENTS.md); the claim
    # that holds at every scale is the right-most column's win.
    assert table["vl256"][-1] < table["scalar"][-1], kernel
    if kernel != "bfs":
        assert table["vl128"][-1] < table["scalar"][-1], kernel

    benchmark(figure4_table, result)
