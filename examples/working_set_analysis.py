#!/usr/bin/env python3
"""Working-set analysis: how much L2 do the paper's kernels actually need?

Uses reuse-distance (Mattson stack) analysis on the recorded traces: the
miss-ratio curve of each kernel against cache size tells an architect how
much on-chip SRAM the workload can exploit — complementary to the paper's
bandwidth question ("how much DRAM bandwidth is worth provisioning").

Run:  python examples/working_set_analysis.py
"""

from repro import KERNELS, get_scale
from repro.memory.reuse import profile_trace
from repro.soc import FpgaSdv
from repro.util.tables import TextTable
from repro.util.units import KiB, MiB, fmt_bytes


def main() -> None:
    scale = get_scale("ci")
    sizes = [32 * KiB, 128 * KiB, 512 * KiB, 1 * MiB, 4 * MiB]

    t = TextTable(["kernel", "footprint"]
                  + [f"miss@{fmt_bytes(s)}" for s in sizes]
                  + ["90%-hit working set"])
    for name, spec in KERNELS.items():
        workload = spec.prepare(scale, seed=7)
        session = FpgaSdv().session()
        spec.vector(session, workload)
        profile = profile_trace(session.seal())
        curve = profile.miss_ratio_curve(sizes)
        t.add_row(
            [name, fmt_bytes(profile.footprint_bytes)]
            + [f"{curve[s]:.2f}" for s in sizes]
            + [fmt_bytes(profile.working_set_bytes(0.90))]
        )
    print("reuse-distance analysis of the vector kernels (CI scale)\n")
    print(t.render())
    print()
    print("reading: once the cache covers a kernel's working set, the")
    print("residual misses are compulsory — at that point extra SRAM is")
    print("wasted and the levers that matter are the paper's two: latency")
    print("tolerance and bandwidth. (The simulated SDV's L2 is 1 MiB.)")


if __name__ == "__main__":
    main()
