#!/usr/bin/env python3
"""Latency-tolerance study (the paper's Section 4.1, as a user would run it).

Scenario: an architect is sizing the memory path for a future many-core
part. Adding cores (or a longer interposer route) adds load-to-use latency;
how much single-core performance does each extra hop cost, and does a
longer-vector VPU buy the head-room the paper claims?

Regenerates Figure 3 (absolute times) and Figure 4 (the green-to-red
slowdown heat table) for any kernel.

Run:  python examples/latency_tolerance_study.py [spmv|bfs|pagerank|fft]
"""

import sys

from repro import (
    DEFAULT_LATENCIES,
    KERNELS,
    get_scale,
    latency_sweep,
    render_figure3,
    render_figure4,
)
from repro.core.figures import headline_numbers
from repro.core.report import render_headline


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "spmv"
    spec = KERNELS[kernel]
    workload = spec.prepare(get_scale("ci"), seed=7)

    print(f"sweeping extra latency {list(DEFAULT_LATENCIES)} cycles over "
          f"scalar + VL 8..256 ({kernel})...\n")
    result = latency_sweep(spec, workload)

    print(render_figure3(result))
    print()
    print(render_figure4(result, color=sys.stdout.isatty()))
    print()

    if kernel == "spmv":
        print(render_headline(headline_numbers(result)))
        print()

    # the architect's readout: cycles lost per extra latency cycle
    print("marginal cost (cycles of runtime per cycle of added latency,")
    print("between +0 and +1024):")
    span = result.points[-1] - result.points[0]
    for impl in result.impls:
        s = result.series(impl)
        print(f"  {impl:>7}: {(s[-1] - s[0]) / span:8.1f}")


if __name__ == "__main__":
    main()
