#!/usr/bin/env python3
"""Co-design study: which hardware lever helps a memory-bound kernel most?

The paper's closing argument (Section 5) is that the FPGA-SDV methodology
enables a *co-design cycle*: tweak an architectural parameter, re-run real
codes, decide. This script runs that cycle in simulation for SpMV at
VL=256, varying one parameter at a time around the default build:

* VPU lanes (compute width),
* decoupled memory-queue depth (latency overlap across instructions),
* line MSHRs (sustained DRAM parallelism),
* L2 capacity.

Run:  python examples/codesign_study.py
"""

from repro import KERNELS, get_scale
from repro.core.compare import WhatIf
from repro.util.tables import TextTable


def main() -> None:
    spec = KERNELS["spmv"]
    workload = spec.prepare(get_scale("ci"), seed=7)
    study = WhatIf()

    factors = [
        ("vpu.lanes", [4, 8, 16]),
        ("vpu.mem_queue_depth", [8, 32, 128]),
        ("vpu.line_mshrs", [32, 128, 512]),
        ("l2.bank_bytes", [64 * 1024, 256 * 1024, 1024 * 1024]),
    ]

    print("SpMV @ VL=256, cage10-profile input, +512 cycles extra latency")
    print("(kilocycles; the middle value is the default build)\n")
    for field, values in factors:
        out = study.measure(field, values, spec=spec, workload=workload,
                            extra_latency=512)
        t = TextTable([field, "kcycles", "vs default"])
        default = out[values[1]]
        for v in values:
            t.add_row([v, f"{out[v] / 1e3:.1f}",
                       f"{default / out[v]:.2f}x"])
        print(t.render())
        print()

    print("reading: for this memory-bound kernel under latency pressure,")
    print("compute width (lanes) moves nothing; the memory-side levers —")
    print("the decoupled queue and above all the line-MSHR pool — are")
    print("where the cycles are. That is the 'short reason' the paper")
    print("gives for investing silicon in long vectors *and* the memory")
    print("parallelism to feed them.")


if __name__ == "__main__":
    main()
