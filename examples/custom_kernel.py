#!/usr/bin/env python3
"""Writing your own kernel against the simulated RVV machine.

The library is not limited to the paper's four codes: anything expressible
with the RVV-0.7.1 intrinsics surface can be swept the same way. This
example implements a seven-point 1-D stencil (the inner loop of many PDE
solvers) in scalar and vector form, validates both, and runs a miniature
latency sweep — the same workflow the paper applies to SpMV/BFS/PR/FFT.

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro import FpgaSdv
from repro.isa.scalar_ctx import interleave_streams

N = 1 << 14
COEFFS = (0.05, 0.1, 0.2, 0.3, 0.2, 0.1, 0.05)
RADIUS = len(COEFFS) // 2


def reference(x: np.ndarray) -> np.ndarray:
    y = np.zeros_like(x)
    for k, c in enumerate(COEFFS):
        y[RADIUS:-RADIUS] += c * x[k: k + N - 2 * RADIUS]
    return y


def stencil_scalar(session, x: np.ndarray):
    """Plain loop: 7 loads + 1 store + ~14 flops per point."""
    mem, scl = session.mem, session.scalar
    a_x = mem.alloc("x", x)
    a_y = mem.alloc("y", N, np.float64)
    i = np.arange(RADIUS, N - RADIUS, dtype=np.int64)
    loads = [a_x.addr(i + k - RADIUS) for k in range(len(COEFFS))]
    addrs = interleave_streams(*loads, a_y.addr(i))
    writes = np.zeros(addrs.shape[0], dtype=bool)
    writes[len(COEFFS):: len(COEFFS) + 1] = True
    scl.emit_block(addrs, writes, n_alu_ops=14 * i.shape[0],
                   label="stencil-scalar")
    y = reference(x)
    a_y.view[:] = y
    return y


def stencil_vector(session, x: np.ndarray):
    """Strip-mined: 7 shifted unit-stride loads per strip, fused with
    vfmacc — the textbook vectorization."""
    mem, scl, vec = session.mem, session.scalar, session.vector
    a_x = mem.alloc("x", x)
    a_y = mem.alloc("y", N, np.float64)
    i = RADIUS
    end = N - RADIUS
    while i < end:
        vl = vec.vsetvl(end - i)
        scl.emit_alu(4)
        acc = vec.vfmv(0.0)
        for k, c in enumerate(COEFFS):
            v = vec.vle(a_x, i + k - RADIUS)
            acc = vec.vfmacc(acc, v, c)
        vec.vse(acc, a_y, i)
        i += vl
    return a_y.view.copy()


def main() -> None:
    rng = np.random.default_rng(0)
    x = rng.standard_normal(N)
    ref = reference(x)

    print(f"7-point stencil over {N} points\n")
    header = f"{'impl':>8} " + " ".join(f"+{L:<7}" for L in (0, 256, 1024))
    print(header + "  (kcycles)")
    for label, builder, vl in [("scalar", stencil_scalar, None),
                               ("vl8", stencil_vector, 8),
                               ("vl64", stencil_vector, 64),
                               ("vl256", stencil_vector, 256)]:
        sdv = FpgaSdv()
        if vl:
            sdv.configure(max_vl=vl)
        session = sdv.session()
        out = builder(session, x)
        assert np.allclose(out, ref), label
        trace = session.seal()
        times = []
        for lat in (0, 256, 1024):
            sdv.configure(extra_latency=lat)
            times.append(sdv.time(trace).cycles)
        print(f"{label:>8} " + " ".join(f"{t / 1e3:8.1f}" for t in times)
              + f"   slowdown @1024: {times[-1] / times[0]:.2f}x")

    print("\nthe dense stencil shows the same structure as the paper's")
    print("non-dense kernels: longer vectors, flatter latency response.")


if __name__ == "__main__":
    main()
