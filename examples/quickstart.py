#!/usr/bin/env python3
"""Quickstart: boot the simulated FPGA-SDV, run one kernel, read the cycle
counter, and turn the paper's three knobs.

Run:  python examples/quickstart.py
"""

from repro import FpgaSdv, KERNELS, get_scale

def main() -> None:
    # The "bitstream": a default EPAC-like build — RISC-V core, 8-lane VPU
    # with 256-double registers, 2x2-mesh NoC, 4-bank shared L2, DDR.
    sdv = FpgaSdv()
    print(f"machine: max VL={sdv.max_vl} doubles, "
          f"DRAM latency={sdv.config.dram_latency:.0f} cycles, "
          f"peak bandwidth={sdv.bandwidth_bpc:.0f} B/cycle")

    # A workload: the cage10-like sparse matrix (CI-scale here).
    spec = KERNELS["spmv"]
    workload = spec.prepare(get_scale("ci"), seed=7)
    print(f"workload: SpMV, {workload.shape[0]} rows, {workload.nnz} nnz\n")

    # Run the scalar implementation and the vector one, verify both.
    reference = spec.reference(workload)
    out_s, rep_s = sdv.run(spec.scalar, workload)
    assert spec.check(out_s, reference)
    print(f"scalar CSR        : {rep_s.cycles / 1e3:9.1f} kcycles")

    out_v, rep_v = sdv.run(spec.vector, workload)
    assert spec.check(out_v, reference)
    print(f"vector SELL vl=256: {rep_v.cycles / 1e3:9.1f} kcycles "
          f"({rep_s.cycles / rep_v.cycles:.1f}x faster)\n")

    # Knob 1 — the custom max-VL CSR (Section 2.1): cripple the VPU to 8.
    sdv.configure(max_vl=8)
    _, rep8 = sdv.run(spec.vector, workload)
    print(f"vector SELL vl=8  : {rep8.cycles / 1e3:9.1f} kcycles")

    # Knob 2 — the Latency Controller (Section 2.2): +1024 cycles to DRAM.
    sdv.configure(max_vl=256, extra_latency=1024)
    _, rep_lat = sdv.run(spec.vector, workload)
    print(f"vl=256 @ +1024 lat: {rep_lat.cycles / 1e3:9.1f} kcycles "
          f"({rep_lat.cycles / rep_v.cycles:.2f}x slowdown)")

    # Knob 3 — the Bandwidth Limiter (Section 2.3): throttle to 1 B/cycle.
    sdv.configure(extra_latency=0, bandwidth_bpc=1)
    _, rep_bw = sdv.run(spec.vector, workload)
    print(f"vl=256 @ 1 B/cyc  : {rep_bw.cycles / 1e3:9.1f} kcycles "
          f"({rep_bw.cycles / rep_v.cycles:.2f}x slowdown)")


if __name__ == "__main__":
    main()
