#!/usr/bin/env python3
"""Bandwidth-provisioning study (the paper's Section 4.2, as a user would
run it).

Scenario: a system designer must decide how much memory bandwidth to
provision per core. A scalar core saturates early — extra bandwidth is
wasted silicon; the paper argues one long-vector core genuinely consumes
32-64 B/cycle. This script regenerates Figure 5 and reports, per
implementation, the bandwidth beyond which returns drop below 5%.

Run:  python examples/bandwidth_provisioning.py [spmv|bfs|pagerank|fft]
"""

import sys

from repro import (
    DEFAULT_BANDWIDTHS,
    KERNELS,
    bandwidth_sweep,
    get_scale,
    plateau_bandwidth,
    render_figure5,
)


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "spmv"
    spec = KERNELS[kernel]
    workload = spec.prepare(get_scale("ci"), seed=7)

    print(f"sweeping the Bandwidth Limiter over {list(DEFAULT_BANDWIDTHS)} "
          f"B/cycle ({kernel})...\n")
    result = bandwidth_sweep(spec, workload)
    print(render_figure5(result))
    print()

    print("provisioning guidance (bandwidth worth paying for, per core):")
    for impl in result.impls:
        plateau = plateau_bandwidth(result, impl)
        total_gain = result.series(impl)[0] / result.series(impl)[-1]
        print(f"  {impl:>7}: provision ~{plateau:>2} B/cycle "
              f"(total speedup 1 -> 64 B/cycle: {total_gain:.1f}x)")
    print()
    print("reading: a single scalar core cannot use a wide memory system;")
    print("the longest vectors keep converting bandwidth into speedup —")
    print("the paper's second 'short reason for long vectors'.")


if __name__ == "__main__":
    main()
