# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test bench bench-paper sweep-bench figures validate \
	examples clean lint lint-static lint-types sanitize

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# repro's own static verifier (always available) + ruff/mypy when the
# [lint] extra is installed; missing tools skip with a notice instead of
# failing developer machines that only carry the runtime deps.
lint:
	PYTHONPATH=src $(PYTHON) -m repro.lint --all
	$(MAKE) lint-static
	$(MAKE) lint-types

lint-static:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed (pip install -e .[lint]); skipping"; \
	fi

lint-types:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed (pip install -e .[lint]); skipping"; \
	fi

# sanitizer mode: the full test suite with runtime shadow tracking of
# every shm segment and pool batch, then the aggregated verdict (any
# R1xx finding in a per-process dump fails the lint step)
sanitize:
	rm -rf .sanitize && mkdir -p .sanitize
	REPRO_SANITIZE=1 REPRO_SANITIZE_DIR=$(CURDIR)/.sanitize \
		PYTHONPATH=src $(PYTHON) -m pytest tests/ -x -q
	PYTHONPATH=src $(PYTHON) -m repro.lint --family concurrency \
		--sanitize-report .sanitize

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

bench-paper:
	REPRO_BENCH_SCALE=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only

# end-to-end sharded-scheduler bench (fig3, event engine, jobs=4):
# records the sweep_e2e_fig3_event ledger series and the result table
sweep-bench:
	cd benchmarks && PYTHONPATH=../src $(PYTHON) -m pytest \
		bench_sweep_scale.py -q
	cat benchmarks/results/sweep_e2e_fig3_event.txt

figures:
	$(PYTHON) -m repro.cli fig3 --kernel all
	$(PYTHON) -m repro.cli fig4 --kernel all
	$(PYTHON) -m repro.cli fig5 --kernel all
	$(PYTHON) -m repro.cli headline

validate:
	$(PYTHON) -m repro.cli validate

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/latency_tolerance_study.py spmv
	$(PYTHON) examples/bandwidth_provisioning.py spmv
	$(PYTHON) examples/custom_kernel.py
	$(PYTHON) examples/codesign_study.py

clean:
	rm -rf .pytest_cache benchmarks/.benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
