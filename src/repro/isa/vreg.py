"""Vector register and mask value objects.

A :class:`VReg` is an immutable-by-convention wrapper around a NumPy array
of the instruction's active elements; a :class:`VMask` wraps a boolean
array. Ops validate element counts against the context's current ``vl`` so
strip-mining bugs surface as :class:`repro.errors.IsaError` instead of
silent broadcasting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import IsaError

_FLOAT = np.float64
_INT = np.int64


@dataclass(frozen=True)
class VReg:
    """Value of one vector register over the active elements [0, vl).

    ``src`` is the trace-record index of the producing instruction (-1 for
    values that did not come from a traced instruction); the timing engines
    use it to honor read-after-write dependencies and model chaining.
    """

    data: np.ndarray
    src: int = -1

    def __post_init__(self) -> None:
        d = self.data
        if not isinstance(d, np.ndarray) or d.ndim != 1:
            raise IsaError("VReg data must be a 1-D ndarray")
        if d.dtype not in (_FLOAT, _INT, np.uint64):
            raise IsaError(f"unsupported VReg dtype {d.dtype}")

    @property
    def vl(self) -> int:
        return int(self.data.shape[0])

    @property
    def is_float(self) -> bool:
        return self.data.dtype == _FLOAT

    def astype_int(self) -> "VReg":
        """Reinterpret-free conversion used by index arithmetic."""
        return VReg(self.data.astype(_INT), self.src)

    def astype_float(self) -> "VReg":
        return VReg(self.data.astype(_FLOAT), self.src)

    def __len__(self) -> int:
        return self.vl

    @staticmethod
    def from_scalar(value: float | int, vl: int, *, float_: bool,
                    src: int = -1) -> "VReg":
        dtype = _FLOAT if float_ else _INT
        return VReg(np.full(vl, value, dtype=dtype), src)


@dataclass(frozen=True)
class VMask:
    """Value of a mask register over the active elements [0, vl).

    ``src`` as in :class:`VReg`.
    """

    bits: np.ndarray
    src: int = -1

    def __post_init__(self) -> None:
        b = self.bits
        if not isinstance(b, np.ndarray) or b.ndim != 1 or b.dtype != bool:
            raise IsaError("VMask bits must be a 1-D bool ndarray")

    @property
    def vl(self) -> int:
        return int(self.bits.shape[0])

    @property
    def popcount(self) -> int:
        return int(self.bits.sum())

    def __len__(self) -> int:
        return self.vl
