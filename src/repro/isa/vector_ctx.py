"""Intrinsics-level RVV v0.7.1 execution context.

Each method is one vector instruction: it computes the functional result on
NumPy data and appends the corresponding :class:`VectorInstr` to the trace.
Naming follows the EPI builtins / RVV mnemonics (``vle``, ``vlse``, ``vlxe``,
``vfmacc``, ``vmseq``, ``viota``, ``vcompress``, ``vfredsum``, ...), with
the ``.vv``/``.vx``/``.vf`` operand forms folded into Python overloading
(pass a ``VReg`` or a Python scalar).

Strip-mining works exactly as on hardware: ``vsetvl(avl)`` grants
``min(avl, VLMAX)`` where VLMAX comes from the *custom max-VL CSR* the paper
introduces — lowering that CSR is how the VL sweeps of Section 4 are run.

Dependency tracking: every produced :class:`VReg`/:class:`VMask` remembers
the trace index of its producer (``src``); every emitted instruction records
the newest producer among its operands (``dep``). The timing engines use
this to model RAW hazards and chaining in the decoupled VPU without needing
architectural register numbers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IsaError
from repro.isa.csr import CsrFile
from repro.isa.vreg import VMask, VReg
from repro.memory.address_space import Allocation, MemoryImage
from repro.trace import modes
from repro.trace.events import (
    NO_ID,
    OPCLASS_ID,
    PATTERN_ID,
    TraceBuffer,
    VectorInstr,
    VMemPattern,
    VOpClass,
)

_FLOAT = np.float64
_INT = np.int64


def _dep_of(*operands: VReg | VMask | float | int | None) -> int:
    """Newest producing record among vector operands (-1 if none)."""
    dep = -1
    for op in operands:
        if isinstance(op, (VReg, VMask)) and op.src > dep:
            dep = op.src
    return dep


class VectorContext:
    """Functional + trace-recording RVV execution context."""

    def __init__(self, mem: MemoryImage, trace: TraceBuffer,
                 csr: CsrFile | None = None, *, max_vl: int = 256) -> None:
        self.mem = mem
        self.trace = trace
        self.csr = csr if csr is not None else CsrFile(max_vl)
        self.instret = 0  # vector instructions retired (functional counter)

    # ------------------------------------------------------------------ utils

    @property
    def vl(self) -> int:
        return self.csr.vl

    @property
    def max_vl(self) -> int:
        return self.csr.max_vl

    def _emit(self, op: VOpClass, vl: int, opcode: str, *,
              pattern: VMemPattern | None = None,
              addrs: np.ndarray | None = None, is_write: bool = False,
              elem_bytes: int = 8, masked: bool = False,
              active: int | None = None, dep: int = -1,
              scalar_dest: bool = False) -> int:
        """Append to the trace; returns the record index (VReg.src).

        Default path writes the buffer columns directly (no dataclass);
        with :func:`repro.trace.modes.object_emission` on, it builds the
        validated :class:`VectorInstr` instead — same record either way.
        """
        self.instret += 1
        if modes.object_emission_enabled():
            self.trace.append(VectorInstr(
                op=op, vl=vl, opcode=opcode, pattern=pattern, addrs=addrs,
                is_write=is_write, elem_bytes=elem_bytes, masked=masked,
                active=active, dep=dep, scalar_dest=scalar_dest,
            ))
            return len(self.trace) - 1
        return self.trace.emit_vector(
            OPCLASS_ID[op], vl, self.trace.intern(opcode),
            pattern_id=NO_ID if pattern is None else PATTERN_ID[pattern],
            addrs=addrs, is_write=is_write, elem_bytes=elem_bytes,
            masked=masked, active=active, dep=dep, scalar_dest=scalar_dest,
        )

    def _require_vl(self, *regs: VReg | VMask) -> int:
        vl = self.csr.vl
        if vl <= 0:
            raise IsaError("no active vl: call vsetvl first")
        for r in regs:
            if len(r) != vl:
                raise IsaError(
                    f"operand has {len(r)} elements but vl={vl}; "
                    "missing vsetvl on a strip boundary?"
                )
        return vl

    @staticmethod
    def _operand(b: VReg | float | int, like: VReg) -> np.ndarray:
        """Resolve a .vv (VReg) or .vx/.vf (scalar) second operand."""
        if isinstance(b, VReg):
            return b.data
        return np.asarray(b, dtype=like.data.dtype)

    @staticmethod
    def _mask_ops(mask: VMask | None) -> tuple[VMask, ...]:
        return (mask,) if mask is not None else ()

    # ------------------------------------------------------------- vsetvl/CSR

    def vsetvl(self, avl: int, sew: int = 64, lmul: int = 1) -> int:
        """Request ``avl`` elements; grants ``min(avl, VLMAX)``.

        ``lmul`` > 1 groups registers: strips get up to ``lmul`` times
        longer from the same physical register file — fewer instructions
        and deeper latency amortization per instruction, at the cost of
        fewer architectural registers (not modeled; see docs/isa.md).
        """
        vl = self.csr.vsetvl(avl, sew, lmul)
        self._emit(VOpClass.CSR, vl, "vsetvl",
                               scalar_dest=True)
        return vl

    def write_max_vl(self, value: int) -> None:
        """Program the custom max-VL CSR (the paper's Section 2.1 knob)."""
        self.csr.write_max_vl(value)

    def merge_tail(self, prefix: VReg, full: VReg) -> VReg:
        """Model a tail-undisturbed register write (no instruction).

        RVV v0.7.1 writes only the first ``vl`` lanes of a destination; the
        tail keeps its old contents. With value-semantic VRegs, an op run at
        a shorter vl returns only the prefix — this helper re-attaches the
        untouched tail of the architectural register (``full``). The result
        carries the prefix's producer for dependency tracking (it *is* that
        instruction's destination register).
        """
        if prefix.vl > full.vl:
            raise IsaError(
                f"prefix ({prefix.vl}) longer than full register ({full.vl})"
            )
        if prefix.data.dtype != full.data.dtype:
            raise IsaError("merge_tail dtype mismatch")
        out = full.data.copy()
        out[: prefix.vl] = prefix.data
        return VReg(out, max(prefix.src, full.src))

    def with_vl(self, reg: VReg) -> VReg:
        """Re-view a register under the *current* vl (no instruction).

        On hardware, ``vsetvl`` changes how many elements later instructions
        touch while register contents stay put — e.g. the vcompress+vpopc+
        vsetvl+vse idiom for appending a packed prefix. Our value-semantic
        VRegs carry their creation-time vl, so this helper truncates or
        zero-extends the view to the current vl. It emits nothing: it models
        vl semantics, not an operation.
        """
        vl = self.csr.vl
        if vl <= 0:
            raise IsaError("no active vl: call vsetvl first")
        if reg.vl == vl:
            return reg
        if reg.vl > vl:
            return VReg(reg.data[:vl].copy(), reg.src)
        out = np.zeros(vl, dtype=reg.data.dtype)
        out[: reg.vl] = reg.data
        return VReg(out, reg.src)

    # ----------------------------------------------------------------- loads

    def _addrs(self, alloc: Allocation, idx: np.ndarray) -> np.ndarray:
        return np.asarray(alloc.addr(idx), dtype=np.int64)

    def vle(self, alloc: Allocation, offset: int = 0,
            mask: VMask | None = None) -> VReg:
        """Unit-stride load of ``vl`` elements starting at ``offset``."""
        vl = self._require_vl(*self._mask_ops(mask))
        idx = np.arange(offset, offset + vl, dtype=np.int64)
        return self._load(alloc, idx, VMemPattern.UNIT, "vle", mask,
                          dep=_dep_of(mask))

    def vlse(self, alloc: Allocation, offset: int, stride: int,
             mask: VMask | None = None) -> VReg:
        """Strided load: elements ``offset + k*stride`` (stride in elements)."""
        if stride == 0:
            raise IsaError("vlse stride of 0 elements; use a broadcast move")
        vl = self._require_vl(*self._mask_ops(mask))
        idx = offset + stride * np.arange(vl, dtype=np.int64)
        return self._load(alloc, idx, VMemPattern.STRIDED, "vlse", mask,
                          dep=_dep_of(mask))

    def vlxe(self, alloc: Allocation, index: VReg,
             mask: VMask | None = None, *,
             after: int | None = None) -> VReg:
        """Indexed load (gather): element indices come from ``index``.

        ``after`` declares an explicit *memory-ordering* dependency: the
        trace index of an earlier store this gather must wait for (the
        machine has no inter-instruction memory disambiguation, so a
        gather reading addresses a prior scatter wrote must say so). It
        replaces the register-dataflow dep — the binding constraint is
        the in-flight store, not the long-completed index register.
        """
        self._require_vl(index, *self._mask_ops(mask))
        if index.is_float:
            raise IsaError("vlxe index register must be integer")
        dep = _dep_of(index, mask) if after is None else after
        return self._load(alloc, index.data, VMemPattern.INDEXED, "vlxe",
                          mask, dep=dep)

    def _load(self, alloc: Allocation, idx: np.ndarray, pattern: VMemPattern,
              opcode: str, mask: VMask | None, dep: int) -> VReg:
        vl = self.csr.vl
        view = alloc.view.reshape(-1)
        if mask is not None:
            active_idx = idx[mask.bits]
            data = np.zeros(vl, dtype=view.dtype)
            data[mask.bits] = view[active_idx]
            addrs = self._addrs(alloc, active_idx)
            active = int(mask.bits.sum())
        else:
            data = view[idx].copy()
            addrs = self._addrs(alloc, idx)
            active = vl
        if data.dtype not in (_FLOAT, _INT, np.uint64):
            data = data.astype(_INT)
        src = self._emit(
            VOpClass.MEM, vl, opcode, pattern=pattern,
            addrs=addrs, is_write=False, elem_bytes=alloc.itemsize,
            masked=mask is not None, active=active, dep=dep)
        return VReg(np.ascontiguousarray(data), src)

    # ---------------------------------------------------------------- stores

    def vse(self, value: VReg, alloc: Allocation, offset: int = 0,
            mask: VMask | None = None) -> int:
        """Unit-stride store of ``vl`` elements starting at ``offset``.

        Stores return their trace record index so a later access that
        must be ordered after them (see :meth:`vlxe`'s ``after``) can
        name them.
        """
        vl = self._require_vl(value, *self._mask_ops(mask))
        idx = np.arange(offset, offset + vl, dtype=np.int64)
        return self._store(value, alloc, idx, VMemPattern.UNIT, "vse", mask)

    def vsse(self, value: VReg, alloc: Allocation, offset: int, stride: int,
             mask: VMask | None = None) -> int:
        """Strided store (stride in elements)."""
        if stride == 0:
            raise IsaError("vsse stride of 0 elements")
        vl = self._require_vl(value, *self._mask_ops(mask))
        idx = offset + stride * np.arange(vl, dtype=np.int64)
        return self._store(value, alloc, idx, VMemPattern.STRIDED, "vsse",
                           mask)

    def vsxe(self, value: VReg, alloc: Allocation, index: VReg,
             mask: VMask | None = None) -> int:
        """Indexed store (scatter); returns the trace record index."""
        self._require_vl(value, index, *self._mask_ops(mask))
        if index.is_float:
            raise IsaError("vsxe index register must be integer")
        return self._store(value, alloc, index.data, VMemPattern.INDEXED,
                           "vsxe", mask, extra_dep=index)

    def _store(self, value: VReg, alloc: Allocation, idx: np.ndarray,
               pattern: VMemPattern, opcode: str, mask: VMask | None,
               extra_dep: VReg | None = None) -> int:
        vl = self.csr.vl
        view = alloc.view.reshape(-1)
        if mask is not None:
            active_idx = idx[mask.bits]
            view[active_idx] = value.data[mask.bits].astype(view.dtype)
            addrs = self._addrs(alloc, active_idx)
            active = int(mask.bits.sum())
        else:
            if pattern is VMemPattern.INDEXED:
                # scatter with duplicate indices: last write wins (program order)
                np.put(view, idx, value.data.astype(view.dtype))
            else:
                view[idx] = value.data.astype(view.dtype)
            addrs = self._addrs(alloc, idx)
            active = vl
        return self._emit(
            VOpClass.MEM, vl, opcode, pattern=pattern,
            addrs=addrs, is_write=True, elem_bytes=alloc.itemsize,
            masked=mask is not None, active=active,
            dep=_dep_of(value, mask, extra_dep))

    # ------------------------------------------------------------ moves / id

    def vmv(self, value: int) -> VReg:
        """Broadcast an integer scalar (vmv.v.x)."""
        vl = self._require_vl()
        src = self._emit(VOpClass.ARITH, vl, "vmv.v.x")
        return VReg.from_scalar(value, vl, float_=False, src=src)

    def vfmv(self, value: float) -> VReg:
        """Broadcast a float scalar (vfmv.v.f)."""
        vl = self._require_vl()
        src = self._emit(VOpClass.ARITH, vl, "vfmv.v.f")
        return VReg.from_scalar(value, vl, float_=True, src=src)

    def vid(self) -> VReg:
        """Element indices 0..vl-1 (vid.v)."""
        vl = self._require_vl()
        src = self._emit(VOpClass.ARITH, vl, "vid.v")
        return VReg(np.arange(vl, dtype=_INT), src)

    # ------------------------------------------------------------- arithmetic

    def _arith(self, opcode: str, a: VReg, b: VReg | float | int | None,
               fn, *, klass: VOpClass = VOpClass.ARITH,
               mask: VMask | None = None) -> VReg:
        vl = self._require_vl(a, *([b] if isinstance(b, VReg) else []),
                              *self._mask_ops(mask))
        rhs = self._operand(b, a) if b is not None else None
        out = fn(a.data, rhs)
        if mask is not None:
            out = np.where(mask.bits, out, a.data)
        src = self._emit(klass, vl, opcode,
                                     masked=mask is not None,
                                     active=mask.popcount if mask else vl,
                                     dep=_dep_of(a, b, mask))
        return VReg(np.ascontiguousarray(out), src)

    # float
    def vfadd(self, a: VReg, b: VReg | float, mask: VMask | None = None) -> VReg:
        return self._arith("vfadd", a, b, lambda x, y: x + y, mask=mask)

    def vfsub(self, a: VReg, b: VReg | float, mask: VMask | None = None) -> VReg:
        return self._arith("vfsub", a, b, lambda x, y: x - y, mask=mask)

    def vfrsub(self, a: VReg, b: float, mask: VMask | None = None) -> VReg:
        """Reverse subtract: b - a (vfrsub.vf)."""
        return self._arith("vfrsub", a, b, lambda x, y: y - x, mask=mask)

    def vfmul(self, a: VReg, b: VReg | float, mask: VMask | None = None) -> VReg:
        return self._arith("vfmul", a, b, lambda x, y: x * y, mask=mask)

    def vfdiv(self, a: VReg, b: VReg | float, mask: VMask | None = None) -> VReg:
        return self._arith("vfdiv", a, b, lambda x, y: x / y,
                           klass=VOpClass.ARITH_HEAVY, mask=mask)

    def vfsqrt(self, a: VReg, mask: VMask | None = None) -> VReg:
        return self._arith("vfsqrt", a, None, lambda x, _: np.sqrt(x),
                           klass=VOpClass.ARITH_HEAVY, mask=mask)

    def vfmacc(self, acc: VReg, a: VReg, b: VReg | float,
               mask: VMask | None = None) -> VReg:
        """acc + a*b (fused multiply-accumulate), one instruction."""
        vl = self._require_vl(acc, a, *([b] if isinstance(b, VReg) else []),
                              *self._mask_ops(mask))
        rhs = self._operand(b, a)
        out = acc.data + a.data * rhs
        if mask is not None:
            out = np.where(mask.bits, out, acc.data)
        src = self._emit(VOpClass.ARITH, vl, "vfmacc",
                                     masked=mask is not None,
                                     active=mask.popcount if mask else vl,
                                     dep=_dep_of(acc, a, b, mask))
        return VReg(np.ascontiguousarray(out), src)

    def vfneg(self, a: VReg) -> VReg:
        return self._arith("vfneg", a, None, lambda x, _: -x)

    def vfmax(self, a: VReg, b: VReg | float) -> VReg:
        return self._arith("vfmax", a, b, np.maximum)

    def vfmin(self, a: VReg, b: VReg | float) -> VReg:
        return self._arith("vfmin", a, b, np.minimum)

    def vfabs(self, a: VReg) -> VReg:
        return self._arith("vfabs", a, None, lambda x, _: np.abs(x))

    # integer
    def vadd(self, a: VReg, b: VReg | int, mask: VMask | None = None) -> VReg:
        return self._arith("vadd", a, b, lambda x, y: x + y, mask=mask)

    def vsub(self, a: VReg, b: VReg | int, mask: VMask | None = None) -> VReg:
        return self._arith("vsub", a, b, lambda x, y: x - y, mask=mask)

    def vmul(self, a: VReg, b: VReg | int) -> VReg:
        return self._arith("vmul", a, b, lambda x, y: x * y)

    def vand(self, a: VReg, b: VReg | int) -> VReg:
        return self._arith("vand", a, b, lambda x, y: x & y)

    def vor(self, a: VReg, b: VReg | int) -> VReg:
        return self._arith("vor", a, b, lambda x, y: x | y)

    def vxor(self, a: VReg, b: VReg | int) -> VReg:
        return self._arith("vxor", a, b, lambda x, y: x ^ y)

    def vsll(self, a: VReg, shamt: VReg | int) -> VReg:
        return self._arith("vsll", a, shamt, lambda x, y: x << y)

    def vsrl(self, a: VReg, shamt: VReg | int) -> VReg:
        return self._arith("vsrl", a, shamt, lambda x, y: x >> y)

    def vmin(self, a: VReg, b: VReg | int) -> VReg:
        return self._arith("vmin", a, b, np.minimum)

    def vmax(self, a: VReg, b: VReg | int) -> VReg:
        return self._arith("vmax", a, b, np.maximum)

    # ---------------------------------------------------------------- compares

    def _compare(self, opcode: str, a: VReg, b: VReg | float | int, fn) -> VMask:
        vl = self._require_vl(a, *([b] if isinstance(b, VReg) else []))
        rhs = self._operand(b, a)
        src = self._emit(VOpClass.MASK, vl, opcode,
                                     dep=_dep_of(a, b))
        return VMask(np.ascontiguousarray(fn(a.data, rhs)), src)

    def vmseq(self, a: VReg, b: VReg | int) -> VMask:
        return self._compare("vmseq", a, b, np.equal)

    def vmsne(self, a: VReg, b: VReg | int) -> VMask:
        return self._compare("vmsne", a, b, np.not_equal)

    def vmslt(self, a: VReg, b: VReg | int) -> VMask:
        return self._compare("vmslt", a, b, np.less)

    def vmsle(self, a: VReg, b: VReg | int) -> VMask:
        return self._compare("vmsle", a, b, np.less_equal)

    def vmsgt(self, a: VReg, b: VReg | int) -> VMask:
        return self._compare("vmsgt", a, b, np.greater)

    def vmsge(self, a: VReg, b: VReg | int) -> VMask:
        return self._compare("vmsge", a, b, np.greater_equal)

    def vmflt(self, a: VReg, b: VReg | float) -> VMask:
        return self._compare("vmflt", a, b, np.less)

    def vmfle(self, a: VReg, b: VReg | float) -> VMask:
        return self._compare("vmfle", a, b, np.less_equal)

    def vmfgt(self, a: VReg, b: VReg | float) -> VMask:
        return self._compare("vmfgt", a, b, np.greater)

    def vmfeq(self, a: VReg, b: VReg | float) -> VMask:
        return self._compare("vmfeq", a, b, np.equal)

    def vmfne(self, a: VReg, b: VReg | float) -> VMask:
        return self._compare("vmfne", a, b, np.not_equal)

    # ---------------------------------------------------------------- mask ops

    def _mask_op(self, opcode: str, a: VMask, b: VMask | None, fn) -> VMask:
        vl = self._require_vl(a, *([b] if b is not None else []))
        src = self._emit(VOpClass.MASK, vl, opcode,
                                     dep=_dep_of(a, b))
        out = fn(a.bits, b.bits if b is not None else None)
        return VMask(np.ascontiguousarray(out), src)

    def vmand(self, a: VMask, b: VMask) -> VMask:
        return self._mask_op("vmand", a, b, lambda x, y: x & y)

    def vmor(self, a: VMask, b: VMask) -> VMask:
        return self._mask_op("vmor", a, b, lambda x, y: x | y)

    def vmxor(self, a: VMask, b: VMask) -> VMask:
        return self._mask_op("vmxor", a, b, lambda x, y: x ^ y)

    def vmandnot(self, a: VMask, b: VMask) -> VMask:
        """a & ~b (vmandnot.mm)."""
        return self._mask_op("vmandnot", a, b, lambda x, y: x & ~y)

    def vmnot(self, a: VMask) -> VMask:
        return self._mask_op("vmnand", a, None, lambda x, _: ~x)

    def vpopc(self, mask: VMask) -> int:
        """Population count of a mask → scalar register (syncs the core)."""
        vl = self._require_vl(mask)
        self._emit(VOpClass.MASK, vl, "vpopc",
                               dep=_dep_of(mask), scalar_dest=True)
        return int(mask.bits.sum())

    def vfirst(self, mask: VMask) -> int:
        """Index of first set bit, or -1 (vfirst.m); scalar destination."""
        vl = self._require_vl(mask)
        self._emit(VOpClass.MASK, vl, "vfirst",
                               dep=_dep_of(mask), scalar_dest=True)
        nz = np.flatnonzero(mask.bits)
        return int(nz[0]) if nz.size else -1

    def viota(self, mask: VMask) -> VReg:
        """Exclusive prefix-count of mask bits (viota.m)."""
        vl = self._require_vl(mask)
        src = self._emit(VOpClass.MASK, vl, "viota",
                                     dep=_dep_of(mask))
        counts = np.cumsum(mask.bits) - mask.bits
        return VReg(counts.astype(_INT), src)

    # ---------------------------------------------------------------- permutes

    def vcompress(self, src_reg: VReg, mask: VMask) -> VReg:
        """Pack active elements to the front; tail zeroed (vcompress.vm).

        The returned VReg still has ``vl`` elements (hardware keeps the
        register full); use :meth:`vpopc` for the packed count.
        """
        vl = self._require_vl(src_reg, mask)
        src = self._emit(VOpClass.PERMUTE, vl,
                                     "vcompress",
                                     dep=_dep_of(src_reg, mask))
        out = np.zeros(vl, dtype=src_reg.data.dtype)
        packed = src_reg.data[mask.bits]
        out[: packed.shape[0]] = packed
        return VReg(out, src)

    def vrgather(self, src_reg: VReg, index: VReg) -> VReg:
        """Register gather: out[i] = src[index[i]] (index >= vl gives 0)."""
        vl = self._require_vl(src_reg, index)
        if index.is_float:
            raise IsaError("vrgather index must be integer")
        src = self._emit(VOpClass.PERMUTE, vl,
                                     "vrgather",
                                     dep=_dep_of(src_reg, index))
        idx = index.data
        valid = (idx >= 0) & (idx < vl)
        out = np.zeros(vl, dtype=src_reg.data.dtype)
        out[valid] = src_reg.data[idx[valid]]
        return VReg(out, src)

    def vslideup(self, src_reg: VReg, n: int, fill: VReg | None = None) -> VReg:
        """out[i] = src[i-n] for i >= n; lower elements keep ``fill`` or 0."""
        vl = self._require_vl(src_reg, *([fill] if fill else []))
        if n < 0:
            raise IsaError("slide amount must be >= 0")
        src = self._emit(VOpClass.PERMUTE, vl,
                                     "vslideup",
                                     dep=_dep_of(src_reg, fill))
        out = (fill.data.copy() if fill is not None
               else np.zeros(vl, dtype=src_reg.data.dtype))
        if n < vl:
            out[n:] = src_reg.data[: vl - n]
        return VReg(out, src)

    def vslidedown(self, src_reg: VReg, n: int) -> VReg:
        """out[i] = src[i+n] for i < vl-n; tail zeroed."""
        vl = self._require_vl(src_reg)
        if n < 0:
            raise IsaError("slide amount must be >= 0")
        src = self._emit(VOpClass.PERMUTE, vl,
                                     "vslidedown",
                                     dep=_dep_of(src_reg))
        out = np.zeros(vl, dtype=src_reg.data.dtype)
        if n < vl:
            out[: vl - n] = src_reg.data[n:]
        return VReg(out, src)

    def vmerge(self, mask: VMask, a: VReg, b: VReg | float | int) -> VReg:
        """out[i] = mask[i] ? a[i] : b[i] (vmerge.vvm)."""
        vl = self._require_vl(mask, a, *([b] if isinstance(b, VReg) else []))
        rhs = self._operand(b, a)
        src = self._emit(VOpClass.ARITH, vl, "vmerge",
                                     dep=_dep_of(mask, a, b))
        return VReg(np.ascontiguousarray(np.where(mask.bits, a.data, rhs)), src)

    # --------------------------------------------------------------- reductions

    def _reduce(self, opcode: str, src_reg: VReg, fn, init,
                mask: VMask | None = None):
        vl = self._require_vl(src_reg, *self._mask_ops(mask))
        data = src_reg.data[mask.bits] if mask is not None else src_reg.data
        self._emit(VOpClass.REDUCE, vl, opcode,
                               masked=mask is not None,
                               active=mask.popcount if mask else vl,
                               dep=_dep_of(src_reg, mask), scalar_dest=True)
        if data.size == 0:
            return init
        return fn(data, init)

    def vredsum(self, src_reg: VReg, init: int = 0,
                mask: VMask | None = None) -> int:
        return int(self._reduce("vredsum", src_reg,
                                lambda d, i: d.sum(dtype=np.int64) + i,
                                init, mask))

    def vfredsum(self, src_reg: VReg, init: float = 0.0,
                 mask: VMask | None = None) -> float:
        return float(self._reduce("vfredsum", src_reg,
                                  lambda d, i: d.sum() + i, init, mask))

    def vredmax(self, src_reg: VReg, init, mask: VMask | None = None):
        return self._reduce("vredmax", src_reg,
                            lambda d, i: max(d.max(), i), init, mask)

    def vredmin(self, src_reg: VReg, init, mask: VMask | None = None):
        return self._reduce("vredmin", src_reg,
                            lambda d, i: min(d.min(), i), init, mask)

    # ------------------------------------------------------ segment accesses

    def vlseg(self, alloc: Allocation, nfields: int, offset: int = 0
              ) -> list[VReg]:
        """Segment load (vlseg<nf>e): de-interleave AoS records.

        Loads ``vl`` records of ``nfields`` consecutive elements starting at
        record ``offset`` and returns one register per field — e.g. complex
        data stored interleaved ``re,im,re,im,...`` comes back as separate
        re/im registers in a single instruction. The memory traffic is one
        unit-stride block of ``vl*nfields`` elements.
        """
        if not 2 <= nfields <= 8:
            raise IsaError(f"segment fields must be in 2..8, got {nfields}")
        vl = self._require_vl()
        base = offset * nfields
        idx = base + np.arange(vl * nfields, dtype=np.int64)
        view = alloc.view.reshape(-1)
        data = view[idx]
        addrs = self._addrs(alloc, idx)
        src = self._emit(
            VOpClass.MEM, vl, f"vlseg{nfields}e",
            pattern=VMemPattern.UNIT, addrs=addrs, is_write=False,
            elem_bytes=alloc.itemsize, active=vl * nfields)
        fields = []
        for f in range(nfields):
            fd = np.ascontiguousarray(data[f::nfields])
            if fd.dtype not in (_FLOAT, _INT, np.uint64):
                fd = fd.astype(_INT)
            fields.append(VReg(fd, src))
        return fields

    def vsseg(self, values: list[VReg], alloc: Allocation, offset: int = 0
              ) -> None:
        """Segment store (vsseg<nf>e): interleave SoA registers into AoS."""
        nfields = len(values)
        if not 2 <= nfields <= 8:
            raise IsaError(f"segment fields must be in 2..8, got {nfields}")
        vl = self._require_vl(*values)
        base = offset * nfields
        idx = base + np.arange(vl * nfields, dtype=np.int64)
        view = alloc.view.reshape(-1)
        inter = np.empty(vl * nfields, dtype=values[0].data.dtype)
        for f, reg in enumerate(values):
            inter[f::nfields] = reg.data
        view[idx] = inter.astype(view.dtype)
        addrs = self._addrs(alloc, idx)
        self._emit(
            VOpClass.MEM, vl, f"vsseg{nfields}e",
            pattern=VMemPattern.UNIT, addrs=addrs, is_write=True,
            elem_bytes=alloc.itemsize, active=vl * nfields,
            dep=_dep_of(*values))

    # ------------------------------------------------------ fault-only-first

    def vleff(self, alloc: Allocation, offset: int = 0) -> tuple[VReg, int]:
        """Fault-only-first load (vle<sew>ff): truncate vl at a fault.

        Loads up to ``vl`` elements; if some element would fall outside the
        allocation, the load *succeeds* with ``vl`` truncated to the faulting
        element index (written back to the vl CSR), instead of trapping —
        the RVV idiom for vectorizing loops with data-dependent exits
        (strlen-style scans). Returns ``(register, granted_vl)``.
        """
        vl = self._require_vl()
        nelem = alloc.nbytes // alloc.itemsize
        avail = max(0, int(nelem) - offset)
        granted = min(vl, avail)
        if granted == 0:
            raise IsaError(
                "vleff with no accessible elements (first element faults)"
            )
        if granted < vl:
            self.csr.vsetvl(granted)  # architectural vl update, no new instr
        idx = np.arange(offset, offset + granted, dtype=np.int64)
        view = alloc.view.reshape(-1)
        data = view[idx].copy()
        if data.dtype not in (_FLOAT, _INT, np.uint64):
            data = data.astype(_INT)
        addrs = self._addrs(alloc, idx)
        src = self._emit(
            VOpClass.MEM, granted, "vleff",
            pattern=VMemPattern.UNIT, addrs=addrs, is_write=False,
            elem_bytes=alloc.itemsize, active=granted)
        return VReg(np.ascontiguousarray(data), src), granted

    # ---------------------------------------------------------- widening ops

    def vwadd(self, a: VReg, b: VReg | int) -> VReg:
        """Widening add (vwadd): int32-semantics operands to 64-bit result.

        Our registers are 64-bit throughout, so the functional effect is a
        plain add; the record is kept distinct because widening ops occupy
        two destination register groups on hardware (PERMUTE-class cost).
        """
        vl = self._require_vl(a, *([b] if isinstance(b, VReg) else []))
        rhs = self._operand(b, a)
        src = self._emit(VOpClass.PERMUTE, vl,
                                     "vwadd", dep=_dep_of(a, b))
        return VReg(np.ascontiguousarray(a.data + rhs), src)

    def vwmul(self, a: VReg, b: VReg | int) -> VReg:
        """Widening multiply (vwmul); see :meth:`vwadd`."""
        vl = self._require_vl(a, *([b] if isinstance(b, VReg) else []))
        rhs = self._operand(b, a)
        src = self._emit(VOpClass.PERMUTE, vl,
                                     "vwmul", dep=_dep_of(a, b))
        return VReg(np.ascontiguousarray(a.data * rhs), src)
