"""Scalar-side execution context.

Two styles of use, both producing :class:`repro.trace.ScalarBlock` records:

1. **Mini-interpreter** — ``load_f64``/``store_i64``/``alu`` calls mirror the
   scalar RISC-V code one instruction at a time; ``flush()`` emits the
   accumulated block. Clear, and exact in program order, but Python-loop
   speed: use it for small inputs and for validating the columnar frontends.

2. **Columnar emission** — kernels compute their full address streams with
   NumPy (e.g. all ``x[col[k]]`` addresses of an SpMV at once), interleave
   them per iteration, and emit one large block. Same trace semantics at a
   tiny fraction of the cost; this is what makes paper-scale scalar runs
   tractable (see the optimization guide: vectorize the loop, keep views).
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError
from repro.memory.address_space import Allocation, MemoryImage
from repro.trace import modes
from repro.trace.events import MLP_UNBOUNDED, Barrier, ScalarBlock, TraceBuffer

_EMPTY_ADDRS = np.empty(0, dtype=np.int64)
_EMPTY_WRITES = np.empty(0, dtype=bool)


def interleave_streams(*streams: np.ndarray) -> np.ndarray:
    """Round-robin interleave k same-length address streams.

    ``interleave_streams(a, b)`` → ``[a0, b0, a1, b1, ...]`` — the access
    order of a loop body that performs one access from each stream per
    iteration.
    """
    if not streams:
        raise TraceError("need at least one stream")
    arrays = [np.asarray(s, dtype=np.int64) for s in streams]
    n = arrays[0].shape[0]
    for a in arrays:
        if a.shape != (n,):
            raise TraceError(
                f"streams must be same-length 1-D arrays, got {a.shape} vs {n}"
            )
    return np.stack(arrays, axis=1).reshape(-1)


class ScalarContext:
    """Scalar instruction recording context (Atrevido side)."""

    def __init__(self, mem: MemoryImage, trace: TraceBuffer) -> None:
        self.mem = mem
        self.trace = trace
        self.instret = 0
        # interpreter accumulation state
        self._addrs: list[int] = []
        self._writes: list[bool] = []
        self._alu: int = 0

    # ------------------------------------------------------- columnar frontend

    def emit_block(
        self,
        addrs: np.ndarray,
        writes: np.ndarray | bool,
        n_alu_ops: int,
        *,
        label: str = "",
        mlp_hint: int = MLP_UNBOUNDED,
        mem_bytes: int = 8,
    ) -> None:
        """Emit one pre-computed scalar block."""
        addrs = np.ascontiguousarray(addrs, dtype=np.int64)
        if isinstance(writes, (bool, np.bool_)):
            writes = np.full(addrs.shape[0], bool(writes), dtype=bool)
        else:
            writes = np.ascontiguousarray(writes, dtype=bool)
        self.mem.check_addresses(addrs)
        if modes.object_emission_enabled():
            block = ScalarBlock(
                n_alu_ops=int(n_alu_ops),
                mem_addrs=addrs,
                mem_is_write=writes,
                mem_bytes=mem_bytes,
                mlp_hint=mlp_hint,
                label=label,
            )
            self.trace.append(block)
        else:
            if addrs.shape != writes.shape:
                raise TraceError(
                    f"block '{label}': addrs {addrs.shape} vs "
                    f"writes {writes.shape}"
                )
            if n_alu_ops < 0:
                raise TraceError(f"block '{label}': negative n_alu_ops")
            if mlp_hint < 1:
                raise TraceError(f"block '{label}': mlp_hint must be >= 1")
            self.trace.emit_scalar_block(
                addrs, writes, int(n_alu_ops), mem_bytes=mem_bytes,
                mlp_hint=mlp_hint, label_id=self.trace.intern(label),
            )
        self.instret += int(n_alu_ops) + addrs.shape[0]

    def emit_alu(self, n_ops: int, *, label: str = "") -> None:
        """Emit a compute-only block (loop control, address arithmetic...)."""
        if n_ops <= 0:
            return
        if modes.object_emission_enabled():
            self.emit_block(_EMPTY_ADDRS, False, n_ops, label=label)
            return
        self.trace.emit_scalar_block(
            _EMPTY_ADDRS, _EMPTY_WRITES, int(n_ops),
            label_id=self.trace.intern(label),
        )
        self.instret += int(n_ops)

    def barrier(self, label: str = "") -> None:
        """Record a synchronization point (flushes any interpreter state)."""
        self.flush()
        if modes.object_emission_enabled():
            self.trace.append(Barrier(label=label))
        else:
            self.trace.emit_barrier(self.trace.intern(label))

    # ------------------------------------------------------- mini-interpreter

    def load_f64(self, alloc: Allocation, idx: int) -> float:
        self._addrs.append(int(alloc.addr(int(idx))))
        self._writes.append(False)
        return float(alloc.view.reshape(-1)[idx])

    def load_i64(self, alloc: Allocation, idx: int) -> int:
        self._addrs.append(int(alloc.addr(int(idx))))
        self._writes.append(False)
        return int(alloc.view.reshape(-1)[idx])

    def store_f64(self, alloc: Allocation, idx: int, value: float) -> None:
        self._addrs.append(int(alloc.addr(int(idx))))
        self._writes.append(True)
        alloc.view.reshape(-1)[idx] = value

    def store_i64(self, alloc: Allocation, idx: int, value: int) -> None:
        self._addrs.append(int(alloc.addr(int(idx))))
        self._writes.append(True)
        alloc.view.reshape(-1)[idx] = value

    def alu(self, n_ops: int = 1) -> None:
        """Count scalar ALU/FPU/branch work."""
        if n_ops < 0:
            raise TraceError("negative ALU op count")
        self._alu += n_ops

    def flush(self, *, label: str = "",
              mlp_hint: int = MLP_UNBOUNDED) -> None:
        """Emit the accumulated interpreter state as one block."""
        if not self._addrs and self._alu == 0:
            return
        self.emit_block(
            np.array(self._addrs, dtype=np.int64),
            np.array(self._writes, dtype=bool),
            self._alu,
            label=label,
            mlp_hint=mlp_hint,
        )
        self._addrs.clear()
        self._writes.clear()
        self._alu = 0

    @property
    def pending_accesses(self) -> int:
        return len(self._addrs)
