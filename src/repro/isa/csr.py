"""Control and status registers of the simulated core.

The paper's key enabler is a *custom CSR holding the machine's maximum
vector length* (Section 2.1): normally VLMAX is hard-wired, but the FPGA-SDV
exposes it so experiments can lower it at runtime. ``CsrFile`` models that
CSR plus the standard ``vl``/``vtype`` and the cycle counter used for
measurements (Section 3.2).
"""

from __future__ import annotations

from repro.errors import IsaError, VectorLengthError
from repro.util.mathx import is_pow2

# CSR addresses (vl/vtype as in RVV 0.7.1; maxvl is the custom one; cycle is
# the standard counter the paper reads for measurements).
CSR_VL = 0xC20
CSR_VTYPE = 0xC21
CSR_MAXVL = 0x7C0  # custom, machine-level
CSR_CYCLE = 0xC00


class CsrFile:
    """Minimal CSR file: vl, vtype(sew/lmul), the custom max-VL CSR, cycle."""

    def __init__(self, hw_max_vl: int = 256) -> None:
        if not is_pow2(hw_max_vl):
            raise VectorLengthError(
                f"hardware max VL must be a power of two, got {hw_max_vl}"
            )
        self._hw_max_vl = hw_max_vl   # silicon limit; the CSR can't exceed it
        self._max_vl = hw_max_vl      # current programmed value
        self._vl = 0
        self._sew = 64
        self._lmul = 1
        self.cycle = 0

    # -- max VL (the custom CSR) ----------------------------------------------

    @property
    def hw_max_vl(self) -> int:
        return self._hw_max_vl

    @property
    def max_vl(self) -> int:
        return self._max_vl

    def write_max_vl(self, value: int) -> None:
        """Lower (or restore) the machine's max VL at runtime."""
        if not is_pow2(value):
            raise VectorLengthError(f"max VL must be a power of two, got {value}")
        if not 1 <= value <= self._hw_max_vl:
            raise VectorLengthError(
                f"max VL {value} outside [1, {self._hw_max_vl}]"
            )
        self._max_vl = value

    # -- vl / vtype -------------------------------------------------------------

    @property
    def vl(self) -> int:
        return self._vl

    @property
    def sew(self) -> int:
        return self._sew

    @property
    def lmul(self) -> int:
        return self._lmul

    def vsetvl(self, avl: int, sew: int = 64, lmul: int = 1) -> int:
        """RVV semantics: vl = min(avl, VLMAX); returns the granted vl.

        ``lmul`` groups registers: VLMAX scales by the group size (one
        instruction then streams through lmul register-lengths of
        elements), the RVV lever for longer strips at constant register
        width.
        """
        if sew not in (8, 16, 32, 64):
            raise IsaError(f"unsupported SEW {sew}")
        if lmul not in (1, 2, 4, 8):
            raise IsaError(f"unsupported LMUL {lmul}")
        if avl < 0:
            raise IsaError(f"negative application vector length {avl}")
        # VLMAX scales with 64/sew relative to the DP element count
        vlmax = self._max_vl * (64 // sew) * lmul
        self._sew = sew
        self._lmul = lmul
        self._vl = min(avl, vlmax)
        return self._vl

    def read(self, addr: int) -> int:
        if addr == CSR_VL:
            return self._vl
        if addr == CSR_MAXVL:
            return self._max_vl
        if addr == CSR_CYCLE:
            return self.cycle
        if addr == CSR_VTYPE:
            # low bits: sew; upper bits: lmul (packed for inspection)
            return self._sew | (self._lmul << 16)
        raise IsaError(f"unknown CSR {addr:#x}")

    def write(self, addr: int, value: int) -> None:
        if addr == CSR_MAXVL:
            self.write_max_vl(value)
            return
        raise IsaError(f"CSR {addr:#x} is read-only or unknown")
