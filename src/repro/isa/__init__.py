"""RISC-V Vector Extension (RVV v0.7.1 subset) ISA layer.

Kernels are written against :class:`VectorContext`, an intrinsics-level API
mirroring the builtins the paper's LLVM-EPI compiler exposes: ``vsetvl``
strip-mining, unit-stride/strided/indexed loads and stores, FP and integer
arithmetic, mask ops, ``viota``/``vcompress`` style permutes, and reductions.
Every intrinsic executes functionally on NumPy data *and* appends a
:class:`repro.trace.VectorInstr` to the active trace.

The scalar side uses :class:`ScalarContext`, which supports both an
instruction-level mini-interpreter (for clarity on small inputs) and
columnar block emission (for paper-scale address streams computed with
NumPy).

Deliberate simplifications (documented ISA divergences):

* vector *values* are passed around instead of the 32 architectural
  registers — the hand-vectorized kernels of the paper fit the register
  budget, so spills never occur and register allocation carries no timing
  information here;
* indexed accesses take element indices (the intrinsics' ``byte offset =
  index << log2(sew/8)`` shift is folded into address generation);
* SEW is 64 throughout (the paper measures double-precision workloads);
  integer data also uses 64-bit elements.
"""

from repro.isa.csr import CsrFile, CSR_MAXVL, CSR_VL, CSR_CYCLE
from repro.isa.vreg import VMask, VReg
from repro.isa.vector_ctx import VectorContext
from repro.isa.scalar_ctx import ScalarContext

__all__ = [
    "CsrFile",
    "CSR_MAXVL",
    "CSR_VL",
    "CSR_CYCLE",
    "VMask",
    "VReg",
    "VectorContext",
    "ScalarContext",
]
