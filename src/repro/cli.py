"""Command-line entry point: regenerate the paper's figures.

Examples::

    repro-sdv fig3 --kernel spmv --scale ci
    repro-sdv fig3 --kernel spmv --plot --color    # terminal line plot
    repro-sdv fig3 --kernel all --jobs 4 --trace-cache .traces
    repro-sdv fig4 --kernel all --scale paper --color
    repro-sdv fig5 --kernel fft
    repro-sdv headline --scale paper
    repro-sdv characterize --kernel all            # roofline placement
    repro-sdv validate                             # run every kernel check
    repro-sdv info
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.config import SdvConfig
from repro.core.analysis import characterize, roofline_bound
from repro.core.figures import headline_numbers
from repro.core.plots import plot_figure3, plot_figure5
from repro.core.report import (
    render_counters,
    render_figure3,
    render_figure4,
    render_figure5,
    render_headline,
)
from repro.core.sweeps import (
    DEFAULT_BANDWIDTHS,
    DEFAULT_LATENCIES,
    DEFAULT_SWEEP_ENGINE,
    DEFAULT_VLS,
    bandwidth_sweep,
    latency_sweep,
)
from repro.engine import ENGINES
from repro.kernels import KERNELS
from repro.obs.manifest import build_manifest, write_manifest
from repro.obs.perfetto import trace_events_from_spans, write_trace
from repro.obs.spans import get_tracer, set_tracing
from repro.workloads import get_scale


def _kernel_names(arg: str) -> list[str]:
    if arg == "all":
        return list(KERNELS)
    if arg not in KERNELS:
        raise SystemExit(
            f"unknown kernel '{arg}' (choose from {', '.join(KERNELS)}, all)"
        )
    return [arg]


def _vls(arg: str) -> tuple[int, ...]:
    if arg == "paper":
        return DEFAULT_VLS
    return tuple(int(x) for x in arg.split(","))


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--kernel", default="all",
                   help="spmv|bfs|pagerank|fft|all (default all)")
    p.add_argument("--scale", default="ci",
                   help="workload scale: paper|ci|smoke (default ci)")
    p.add_argument("--vls", default="paper",
                   help="comma list of VLs or 'paper' (8..256)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--no-verify", action="store_true",
                   help="skip functional verification against references")
    p.add_argument("--csv", action="store_true",
                   help="emit raw CSV instead of rendered tables")
    p.add_argument("--engine", default=DEFAULT_SWEEP_ENGINE,
                   choices=sorted(ENGINES),
                   help="re-timing engine for sweep points (default batch)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for trace generation "
                        "(0 = all CPUs, default 1)")
    p.add_argument("--trace-cache", default=None, metavar="DIR",
                   help="directory for the on-disk trace cache; repeated "
                        "runs skip kernel re-execution")
    p.add_argument("--no-shm", action="store_true",
                   help="disable the shared-memory trace plane (parallel "
                        "serial-engine sweeps fall back to whole-"
                        "implementation tasks; see docs/parallelism.md)")
    p.add_argument("--shard-points", type=int, default=None, metavar="N",
                   help="points per shard for parallel serial-engine "
                        "sweeps (default: records x points cost model)")
    p.add_argument("--classify", default=None, choices=("stack", "walk"),
                   help="memory classification engine: 'stack' (vectorized "
                        "stack-distance kernel, default) or 'walk' (the "
                        "sequential reference walker); bit-identical output")


def _add_emit(p: argparse.ArgumentParser) -> None:
    p.add_argument("--emit-json", default=None, metavar="PATH",
                   help="write a schema-versioned JSON export (plus a "
                        "sibling run manifest for sweep commands)")
    p.add_argument("--emit-trace", default=None, metavar="PATH",
                   help="write a Chrome/Perfetto trace_event JSON dump of "
                        "the harness spans (and engine timelines for "
                        "'profile')")
    p.add_argument("--emit-runlog", default=None, metavar="PATH",
                   help="write the structured JSONL run log (one ordered "
                        "stream merged across worker processes)")
    p.add_argument("--engine-stats", action="store_true",
                   help="collect and print engine-introspection counters "
                        "(wheel occupancy, slab recycling, cache hit rates)")


def _emit_path(path: str, kernel: str, multi: bool) -> Path:
    """Per-kernel artifact path: suffix the stem when --kernel all."""
    p = Path(path)
    if not multi:
        return p
    return p.with_name(f"{p.stem}-{kernel}{p.suffix}")


def _sweep_manifest(result, *, engine: str, scale: str, seed: int) -> dict:
    """Run manifest for a SweepResult (buckets included when attributed)."""
    runs = []
    for m in result.measurements:
        run = {"impl": m.impl, "cycles": m.cycles,
               "extra_latency": m.extra_latency,
               "bandwidth_bpc": m.bandwidth_bpc}
        if m.attribution is not None:
            run["buckets"] = dict(m.attribution.buckets)
        runs.append(run)
    return build_manifest(
        kernel=result.kernel, engine=engine,
        config=SdvConfig().validate(), runs=runs, scale=scale, seed=seed,
        axis=result.axis, points=list(result.points),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-sdv",
        description="Reproduce the SC'23 long-vector study on the simulated "
                    "FPGA-SDV",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p3 = sub.add_parser("fig3", help="execution time vs extra latency")
    _add_common(p3)
    _add_emit(p3)
    p3.add_argument("--plot", action="store_true",
                    help="terminal line plot instead of a table")
    p3.add_argument("--color", action="store_true",
                    help="paper colors: scalar blue, VLs in a red gradient")
    p4 = sub.add_parser("fig4", help="normalized slowdown heat tables")
    _add_common(p4)
    _add_emit(p4)
    p4.add_argument("--color", action="store_true",
                    help="ANSI green-to-red gradient")
    p5 = sub.add_parser("fig5", help="normalized time vs bandwidth limit")
    _add_common(p5)
    _add_emit(p5)
    p5.add_argument("--plot", action="store_true",
                    help="terminal line plot instead of a table")
    p5.add_argument("--color", action="store_true",
                    help="paper colors: scalar blue, VLs in a red gradient")
    pf = sub.add_parser("profile",
                        help="per-VL cycle attribution: where each "
                             "implementation's cycles go")
    _add_common(pf)
    _add_emit(pf)
    pf.add_argument("--fractions", action="store_true",
                    help="show bucket shares of the total instead of cycles")
    pf.add_argument("--no-scalar", action="store_true",
                    help="omit the scalar build from the table")
    ph = sub.add_parser("headline",
                        help="Section 4.1 quoted numbers, measured vs paper")
    _add_common(ph)
    pc = sub.add_parser("characterize",
                        help="roofline placement + traffic per kernel")
    _add_common(pc)
    pv = sub.add_parser("validate",
                        help="verify every implementation against references")
    _add_common(pv)
    pr = sub.add_parser("report",
                        help="run the whole study and write a Markdown report")
    _add_common(pr)
    pr.add_argument("--output", default="REPORT.md",
                    help="output path (default REPORT.md)")
    pp = sub.add_parser("probe",
                        help="STREAM/gather/latency machine characterization")
    pp.add_argument("--max-vl", type=int, default=256)
    pp.add_argument("--extra-latency", type=int, default=0)
    pp.add_argument("--bandwidth", type=int, default=None,
                    help="Bandwidth Limiter target in B/cycle")
    sub.add_parser("info", help="print the simulated machine configuration")
    pd = sub.add_parser("perf-diff",
                        help="judge the latest value of every perf-ledger "
                             "series against its trailing history "
                             "(median + MAD)")
    pd.add_argument("--ledger", default="benchmarks/results/ledger.jsonl",
                    metavar="PATH", help="ledger JSONL file "
                    "(default benchmarks/results/ledger.jsonl)")
    pd.add_argument("--strict", action="store_true",
                    help="also fail on series with insufficient history")
    pdash = sub.add_parser("dash",
                           help="self-contained HTML run dashboard from "
                                "emitted artifacts")
    pdash.add_argument("--output", default="dashboard.html",
                       help="output path (default dashboard.html)")
    pdash.add_argument("--manifest", action="append", default=[],
                       metavar="PATH", help="run manifest / sweep JSON "
                       "export to include (repeatable)")
    pdash.add_argument("--runlog", default=None, metavar="PATH",
                       help="JSONL run log to render as a timeline")
    pdash.add_argument("--ledger", default=None, metavar="PATH",
                       help="perf ledger to render as trend sparklines")
    pdash.add_argument("--title", default=None,
                       help="dashboard page title")
    pl = sub.add_parser("lint",
                        help="static verification of trace templates, "
                             "kernel emitters and sweep configs")
    from repro.lint.runner import add_lint_arguments
    add_lint_arguments(pl)

    args = parser.parse_args(argv)

    if getattr(args, "classify", None):
        # module-level default: every FpgaSdv built by this command (and,
        # via the task-tuple plumbing, by its worker processes) uses it
        from repro.memory.classify_fast import set_default_classifier
        set_default_classifier(args.classify)

    if args.command == "lint":
        from repro.lint.runner import run_lint_cli
        return run_lint_cli(args)

    if args.command == "perf-diff":
        from repro.obs.ledger import (
            load_and_validate,
            perf_diff,
            render_perf_diff,
        )
        try:
            records = load_and_validate(args.ledger)
        except ValueError as exc:
            print(f"perf-diff: {exc}", file=sys.stderr)
            return 2
        results = perf_diff(records)
        print(render_perf_diff(results))
        bad = {"regression", "insufficient"} if args.strict \
            else {"regression"}
        return 1 if any(v.status in bad for _, v in results) else 0

    if args.command == "dash":
        from repro.obs.htmlreport import build_dashboard
        try:
            path = build_dashboard(
                args.output, manifests=args.manifest, runlog=args.runlog,
                ledger=args.ledger, title=args.title,
            )
        except (OSError, ValueError) as exc:
            print(f"dash: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {path}")
        return 0

    if args.command == "report":
        from repro.core.suite import render_report, run_suite
        scale_checked = get_scale(args.scale)  # fail fast on bad name
        suite = run_suite(scale_name=args.scale, seed=args.seed,
                          vls=_vls(args.vls),
                          kernels=_kernel_names(args.kernel),
                          verify=not args.no_verify,
                          engine=args.engine, jobs=args.jobs,
                          trace_cache=args.trace_cache,
                          shm=not args.no_shm,
                          shard_points=args.shard_points)
        text = render_report(suite, seed=args.seed)
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.output} ({len(text.splitlines())} lines, "
              f"{suite.elapsed_s:.1f}s of simulation)")
        return 0

    if args.command == "probe":
        from repro.kernels.micro import characterize_machine
        from repro.soc import FpgaSdv
        sdv = FpgaSdv().configure(max_vl=args.max_vl,
                                  extra_latency=args.extra_latency,
                                  bandwidth_bpc=args.bandwidth)
        print(f"machine probe (max VL={args.max_vl}, "
              f"+{args.extra_latency} latency, "
              f"{sdv.bandwidth_bpc:.0f} B/cycle limit)")
        print(characterize_machine(sdv).render())
        return 0

    if args.command == "info":
        cfg = SdvConfig().validate()
        print("FPGA-SDV (simulated)")
        print(f"  core : {cfg.core}")
        print(f"  vpu  : {cfg.vpu}")
        print(f"  noc  : {cfg.noc}")
        print(f"  l2   : {cfg.l2}")
        print(f"  mem  : {cfg.mem}")
        print(f"  L2 hit latency  : {cfg.l2_hit_latency:.0f} cycles")
        print(f"  DRAM latency    : {cfg.dram_latency:.0f} cycles (min)")
        return 0

    scale = get_scale(args.scale)
    vls = _vls(args.vls)
    verify = not args.no_verify

    if args.command == "profile":
        from repro.obs.profile import profile_kernel
        names = _kernel_names(args.kernel)
        multi = len(names) > 1
        if args.emit_trace:
            set_tracing(True)
        if args.emit_runlog:
            from repro.obs.runlog import get_runlog, set_logging
            set_logging(True)
        for name in names:
            if args.emit_runlog:
                get_runlog().event("profile.kernel", kernel=name,
                                   engine=args.engine, scale=args.scale)
            r = profile_kernel(name, scale=args.scale, seed=args.seed,
                               vls=vls, engine=args.engine,
                               include_scalar=not args.no_scalar,
                               verify=verify, trace_cache=args.trace_cache,
                               timelines=bool(args.emit_trace),
                               engine_stats=args.engine_stats,
                               jobs=args.jobs, shm=not args.no_shm)
            print(r.render(fractions=args.fractions))
            print()
            if args.engine_stats:
                print(r.render_engine_stats())
                print()
            if args.emit_json:
                path = _emit_path(args.emit_json, name, multi)
                write_manifest(path, r.manifest())
                print(f"wrote {path}", file=sys.stderr)
            if args.emit_trace:
                path = _emit_path(args.emit_trace, name, multi)
                write_trace(path, r.trace_events(),
                            metadata={"kernel": name, "engine": args.engine,
                                      "scale": args.scale})
                print(f"wrote {path}", file=sys.stderr)
        if args.emit_runlog:
            from repro.obs.runlog import write_runlog
            path = write_runlog(args.emit_runlog, get_runlog(),
                                command="profile", kernels=names,
                                scale=args.scale, engine=args.engine)
            print(f"wrote {path}", file=sys.stderr)
        return 0

    if args.command == "headline":
        spec = KERNELS["spmv"]
        workload = spec.prepare(scale, args.seed)
        result = latency_sweep(spec, workload, vls=vls, verify=verify,
                               engine=args.engine, jobs=args.jobs,
                               trace_cache=args.trace_cache,
                               shm=not args.no_shm,
                               shard_points=args.shard_points)
        print(render_headline(headline_numbers(result)))
        # Section 3.2 counter view at the longest VL: what fraction of
        # instructions were vector, what DRAM rate was sustained, and
        # where the cycles went (the sweep above already verified it)
        from repro.core.sweeps import run_implementation
        vmax = max(vls)
        sdv, trace = run_implementation(spec, workload, vmax, verify=False)
        report = sdv.time(trace, engine=args.engine)
        report.attribution = sdv.attribute(trace, engine=args.engine)
        print()
        print(render_counters(sdv.counters, label=f"spmv/vl{vmax}"))
        return 0

    if args.command == "validate":
        from repro.core.sweeps import run_implementation
        failures = 0
        for name in _kernel_names(args.kernel):
            spec = KERNELS[name]
            workload = spec.prepare(scale, args.seed)
            for vl in (None,) + tuple(vls):
                label = "scalar" if vl is None else f"vl{vl}"
                try:
                    run_implementation(spec, workload, vl, verify=True)
                    print(f"  ok   {name}/{label}")
                except Exception as exc:  # pragma: no cover - failure path
                    failures += 1
                    print(f"  FAIL {name}/{label}: {exc}")
        print("all implementations verified" if failures == 0
              else f"{failures} failures")
        return 1 if failures else 0

    if args.command == "characterize":
        from repro.core.sweeps import run_implementation
        from repro.util.tables import TextTable
        cfg = SdvConfig().validate()
        t = TextTable(["kernel", "impl", "AI (flop/B)", "flops/cyc",
                       "roof", "DRAM B/cyc", "vec frac"])
        for name in _kernel_names(args.kernel):
            spec = KERNELS[name]
            workload = spec.prepare(scale, args.seed)
            for vl in (None, max(vls)):
                label = "scalar" if vl is None else f"vl{vl}"
                sdv, trace = run_implementation(spec, workload, vl,
                                                verify=verify)
                ct = sdv.classify(trace)
                report = sdv.time(trace)
                c = characterize(ct, report, kernel=name, impl=label)
                roof = roofline_bound(cfg, c.arithmetic_intensity,
                                      vector=vl is not None)
                t.add_row([name, label, f"{c.arithmetic_intensity:.3f}",
                           f"{c.flops_per_cycle:.3f}", f"{roof:.2f}",
                           f"{c.dram_bytes_per_cycle:.2f}",
                           f"{sdv.counters.vector_fraction * 100:.0f}%"])
        print(t.render())
        return 0

    names = _kernel_names(args.kernel)
    emit_json = getattr(args, "emit_json", None)
    emit_trace = getattr(args, "emit_trace", None)
    emit_runlog = getattr(args, "emit_runlog", None)
    engine_stats_on = bool(getattr(args, "engine_stats", False))
    if emit_trace:
        set_tracing(True)
    if emit_runlog:
        from repro.obs.runlog import get_runlog, set_logging
        set_logging(True)
    if engine_stats_on:
        from repro.obs.engine_stats import set_introspection
        set_introspection(True)
    # attribution buckets ride along in the JSON export's manifest
    attributions = bool(emit_json)
    for name in names:
        from repro.obs.lifecycle import reset_figure_state
        reset_figure_state()
        spec = KERNELS[name]
        t0 = time.time()
        workload = spec.prepare(scale, args.seed)
        if args.command == "fig3":
            result = latency_sweep(spec, workload,
                                   latencies=DEFAULT_LATENCIES, vls=vls,
                                   verify=verify, engine=args.engine,
                                   jobs=args.jobs,
                                   trace_cache=args.trace_cache,
                                   attributions=attributions,
                                   shm=not args.no_shm,
                                   shard_points=args.shard_points)
            if args.csv:
                print(result.to_csv())
            elif args.plot:
                print(plot_figure3(result, color=args.color))
            else:
                print(render_figure3(result))
        elif args.command == "fig4":
            result = latency_sweep(spec, workload,
                                   latencies=DEFAULT_LATENCIES, vls=vls,
                                   verify=verify, engine=args.engine,
                                   jobs=args.jobs,
                                   trace_cache=args.trace_cache,
                                   attributions=attributions,
                                   shm=not args.no_shm,
                                   shard_points=args.shard_points)
            print(result.to_csv() if args.csv
                  else render_figure4(result, color=args.color))
        elif args.command == "fig5":
            result = bandwidth_sweep(spec, workload,
                                     bandwidths=DEFAULT_BANDWIDTHS, vls=vls,
                                     verify=verify, engine=args.engine,
                                     jobs=args.jobs,
                                     trace_cache=args.trace_cache,
                                     attributions=attributions,
                                     shm=not args.no_shm,
                                     shard_points=args.shard_points)
            if args.csv:
                print(result.to_csv())
            elif args.plot:
                print(plot_figure5(result, color=args.color))
            else:
                print(render_figure5(result))
        if emit_json:
            manifest = _sweep_manifest(result, engine=args.engine,
                                       scale=args.scale, seed=args.seed)
            result.meta["manifest"] = manifest
            path = _emit_path(emit_json, name, len(names) > 1)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(result.to_json(), encoding="utf-8")
            sibling = write_manifest(
                path.with_name(path.stem + ".manifest.json"), manifest)
            print(f"wrote {path} and {sibling}", file=sys.stderr)
        print(f"[{name}: {time.time() - t0:.1f}s]", file=sys.stderr)
        print()
    if engine_stats_on:
        from repro.obs.engine_stats import get_engine_stats
        print(get_engine_stats().render())
        print()
    if emit_runlog:
        from repro.obs.runlog import write_runlog
        path = write_runlog(emit_runlog, get_runlog(),
                            command=args.command, kernels=names,
                            scale=args.scale, engine=args.engine)
        print(f"wrote {path}", file=sys.stderr)
    if emit_trace:
        path = write_trace(emit_trace,
                           trace_events_from_spans(get_tracer().spans),
                           metadata={"command": args.command,
                                     "kernels": names,
                                     "scale": args.scale})
        print(f"wrote {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
