"""Configuration dataclasses for the simulated FPGA-SDV.

Default values follow the system described in the paper (Section 2):

* a superscalar RISC-V core (Atrevido) with a private L1D,
* a decoupled 8-lane VPU with 16384-bit vector registers (256 doubles),
* a 2x2-mesh NoC connecting the core to 4 shared-L2/home-node banks,
* DDR4 main memory whose *minimum* observed access latency on the emulated
  system is ~50 cycles, plus the two throttle modules:
  the Latency Controller (extra pipelined cycles per DRAM access) and the
  Bandwidth Limiter (``num`` line requests per ``den``-cycle window,
  peak 64 B/cycle = 1 line/cycle).

All knobs the paper varies at runtime (max VL, extra latency, bandwidth
fraction) are runtime-configurable on :class:`repro.soc.FpgaSdv` as well;
the dataclasses here describe the *hardware* build.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.util.mathx import is_pow2
from repro.util.units import KiB, LINE_BYTES


@dataclass(frozen=True)
class CoreConfig:
    """Scalar-core (Atrevido-like) model parameters."""

    #: Maximum instructions issued per cycle.
    issue_width: int = 2
    #: Miss-status holding registers: bound on overlapping outstanding misses
    #: (the scalar core's *effective* memory-level parallelism — a modest
    #: OoO window rarely sustains more than a few independent misses).
    mshrs: int = 4
    #: L1 data cache capacity in bytes (scalar side only; the decoupled VPU
    #: bypasses L1 and talks to the shared L2 directly).
    l1d_bytes: int = 32 * KiB
    l1d_ways: int = 8
    #: Load-to-use latency for an L1 hit.
    l1_hit_cycles: int = 2
    #: Non-memory cost of one scalar ALU/FPU op once issued (CPI contribution
    #: beyond issue-width limits; 1.0 models a fully pipelined unit).
    alu_cpi: float = 1.0
    #: Next-N-line L1 stream prefetcher depth (0 = off, the default — the
    #: paper's latency study measures the raw memory path; this knob is an
    #: ablation quantifying how much a simple prefetcher would mask).
    l1_prefetch_depth: int = 0

    def validate(self) -> None:
        if self.issue_width < 1:
            raise ConfigError(f"issue_width must be >= 1, got {self.issue_width}")
        if self.mshrs < 1:
            raise ConfigError(f"mshrs must be >= 1, got {self.mshrs}")
        if self.l1d_bytes % (self.l1d_ways * LINE_BYTES) != 0:
            raise ConfigError(
                "l1d_bytes must be a multiple of ways*line "
                f"({self.l1d_ways}*{LINE_BYTES}), got {self.l1d_bytes}"
            )
        if self.l1_hit_cycles < 1:
            raise ConfigError("l1_hit_cycles must be >= 1")
        if self.alu_cpi <= 0:
            raise ConfigError("alu_cpi must be positive")
        if self.l1_prefetch_depth < 0:
            raise ConfigError("l1_prefetch_depth must be >= 0")


@dataclass(frozen=True)
class VpuConfig:
    """Vitruvius-like decoupled vector unit parameters."""

    #: Number of parallel lanes, each with a 64-bit FPU.
    lanes: int = 8
    #: Hardware maximum vector length in double-precision elements
    #: (256 doubles = 16384-bit registers in the paper).
    max_vl: int = 256
    #: Fixed startup (decode/dispatch/drain) cycles per vector instruction.
    startup_cycles: int = 3
    #: Depth of the decoupled vector-memory queue: how many vector memory
    #: instructions may be in flight simultaneously (latency overlap across
    #: instructions). Vitruvius+ provisions a large memory queue precisely
    #: so the VPU can run far ahead of returning data.
    mem_queue_depth: int = 32
    #: Element requests the address-generation unit can issue per cycle for
    #: indexed (gather/scatter) accesses.
    gather_issue_per_cycle: int = 2
    #: Line requests issued per cycle for unit-stride/strided accesses.
    stride_issue_per_cycle: int = 1
    #: Whether the memory unit coalesces same-line element requests of one
    #: indexed access into a single line request (ablation knob).
    coalesce_gathers: bool = True
    #: Whether consumers may chain on producing instructions (start as the
    #: producer's first elements arrive) instead of waiting for completion.
    chaining: bool = True
    #: Whether the memory queue issues address generation out of order: a
    #: gather waiting for its index register does not block younger,
    #: independent loads (Vitruvius+ buffers memory instructions with their
    #: operands). False = strict in-order issue (ablation).
    ooo_mem_issue: bool = True
    #: Outstanding *line* requests the vector memory unit tracks (its MSHR
    #: pool). This bounds sustained DRAM line throughput to
    #: ``line_mshrs / latency`` — the residual latency sensitivity the
    #: longest vectors still show in the paper.
    line_mshrs: int = 128

    def validate(self) -> None:
        if self.lanes < 1:
            raise ConfigError(f"lanes must be >= 1, got {self.lanes}")
        if not is_pow2(self.max_vl):
            raise ConfigError(f"max_vl must be a power of two, got {self.max_vl}")
        if self.max_vl < self.lanes:
            raise ConfigError(
                f"max_vl ({self.max_vl}) must be >= lanes ({self.lanes})"
            )
        if self.startup_cycles < 0:
            raise ConfigError("startup_cycles must be >= 0")
        if self.mem_queue_depth < 1:
            raise ConfigError("mem_queue_depth must be >= 1")
        if self.gather_issue_per_cycle < 1 or self.stride_issue_per_cycle < 1:
            raise ConfigError("issue rates must be >= 1")
        if self.line_mshrs < 1:
            raise ConfigError("line_mshrs must be >= 1")

    @property
    def register_bits(self) -> int:
        """Vector register width in bits at SEW=64."""
        return self.max_vl * 64


@dataclass(frozen=True)
class NocConfig:
    """2D-mesh network-on-chip parameters (EXTOLL-like, 2x2 in the paper)."""

    mesh_cols: int = 2
    mesh_rows: int = 2
    #: One-way latency per mesh hop (router + link).
    hop_cycles: int = 4
    #: Fixed injection/ejection overhead per message, one way.
    inject_cycles: int = 2

    def validate(self) -> None:
        if self.mesh_cols < 1 or self.mesh_rows < 1:
            raise ConfigError("mesh dimensions must be >= 1")
        if self.hop_cycles < 0 or self.inject_cycles < 0:
            raise ConfigError("NoC latencies must be >= 0")

    @property
    def nodes(self) -> int:
        return self.mesh_cols * self.mesh_rows


@dataclass(frozen=True)
class L2Config:
    """Shared L2 + home-node (L2HN) parameters: 4 banks in the paper."""

    banks: int = 4
    #: Capacity of each bank in bytes.
    bank_bytes: int = 256 * KiB
    ways: int = 16
    #: Bank access (tag+data) latency for a hit.
    access_cycles: int = 6

    def validate(self) -> None:
        if not is_pow2(self.banks):
            raise ConfigError(f"banks must be a power of two, got {self.banks}")
        if self.bank_bytes % (self.ways * LINE_BYTES) != 0:
            raise ConfigError(
                "bank_bytes must be a multiple of ways*line "
                f"({self.ways}*{LINE_BYTES}), got {self.bank_bytes}"
            )
        if self.access_cycles < 1:
            raise ConfigError("access_cycles must be >= 1")

    @property
    def total_bytes(self) -> int:
        return self.banks * self.bank_bytes


@dataclass(frozen=True)
class MemConfig:
    """DRAM + throttle-module parameters.

    ``extra_latency_cycles`` is the Latency Controller setting (Section 2.2).
    ``bw_num``/``bw_den`` is the Bandwidth Limiter fraction (Section 2.3):
    ``num`` line requests admitted per ``den``-cycle window; 1/1 is the
    64 B/cycle peak, 1/64 is 1 B/cycle.
    """

    #: DRAM service latency (controller + device) beyond the NoC+L2 path.
    #: Chosen so the total minimum load-to-use to DRAM is ~50 cycles, the
    #: figure reported for the 50 MHz emulated system.
    dram_service_cycles: int = 30
    #: Latency Controller: extra pipelined cycles added to each DRAM access.
    extra_latency_cycles: int = 0
    #: Bandwidth Limiter numerator/denominator (requests per window cycles).
    bw_num: int = 1
    bw_den: int = 1

    def validate(self) -> None:
        # 0 is allowed: the attribution ladder idealizes DRAM service away
        # to isolate the latency-stall bucket (repro.obs.attribution).
        if self.dram_service_cycles < 0:
            raise ConfigError("dram_service_cycles must be >= 0")
        if self.extra_latency_cycles < 0:
            raise ConfigError("extra_latency_cycles must be >= 0")
        if self.bw_num < 1 or self.bw_den < 1:
            raise ConfigError("bandwidth fraction terms must be >= 1")
        if self.bw_num > self.bw_den:
            raise ConfigError(
                f"bandwidth fraction {self.bw_num}/{self.bw_den} exceeds peak"
            )

    @property
    def bytes_per_cycle_limit(self) -> float:
        """Configured bandwidth ceiling in bytes/cycle (peak 64)."""
        return LINE_BYTES * self.bw_num / self.bw_den


def bw_fraction_for_bytes_per_cycle(bpc: int) -> tuple[int, int]:
    """Limiter (num, den) pair for a target of ``bpc`` bytes/cycle.

    The paper's Figure 5 sweeps 1..64 B/cycle in powers of two; with 64-byte
    lines that is one request per ``64/bpc`` cycles.

    >>> bw_fraction_for_bytes_per_cycle(64)
    (1, 1)
    >>> bw_fraction_for_bytes_per_cycle(1)
    (1, 64)
    """
    if bpc < 1 or LINE_BYTES % bpc != 0:
        raise ConfigError(
            f"bytes/cycle target must divide {LINE_BYTES}, got {bpc}"
        )
    return (1, LINE_BYTES // bpc)


@dataclass(frozen=True)
class SdvConfig:
    """Top-level FPGA-SDV build configuration."""

    core: CoreConfig = field(default_factory=CoreConfig)
    vpu: VpuConfig = field(default_factory=VpuConfig)
    noc: NocConfig = field(default_factory=NocConfig)
    l2: L2Config = field(default_factory=L2Config)
    mem: MemConfig = field(default_factory=MemConfig)
    #: Size of the simulated physical memory visible to kernels.
    memory_bytes: int = 64 * 1024 * KiB

    def validate(self) -> "SdvConfig":
        self.core.validate()
        self.vpu.validate()
        self.noc.validate()
        self.l2.validate()
        self.mem.validate()
        if self.memory_bytes < 1 * KiB:
            raise ConfigError("memory_bytes unreasonably small")
        if self.noc.nodes < self.l2.banks:
            # In the paper the 4 L2HN instances sit on the 2x2 mesh nodes.
            raise ConfigError(
                f"NoC has {self.noc.nodes} nodes but L2 has {self.l2.banks} banks"
            )
        return self

    # -- derived latencies used by both timing engines ---------------------

    @property
    def avg_noc_hops(self) -> float:
        """Average one-way hop count from the core to an L2 bank.

        The core shares node (0,0) with bank 0; XY routing to the other
        banks of the 2x2 mesh takes 1, 1 and 2 hops.
        """
        from repro.memory.noc import MeshNoc  # local import to avoid cycle

        noc = MeshNoc(self.noc)
        total = sum(noc.hops_to_bank(b, self.l2.banks) for b in range(self.l2.banks))
        return total / self.l2.banks

    @property
    def l2_hit_latency(self) -> float:
        """Average load-to-use latency of an L2 hit (round trip + access)."""
        one_way = self.noc.inject_cycles + self.avg_noc_hops * self.noc.hop_cycles
        return self.core.l1_hit_cycles + 2 * one_way + self.l2.access_cycles

    @property
    def dram_latency(self) -> float:
        """Average load-to-use latency of a DRAM access at current settings."""
        return (
            self.l2_hit_latency
            + self.mem.dram_service_cycles
            + self.mem.extra_latency_cycles
        )

    def with_extra_latency(self, cycles: int) -> "SdvConfig":
        """Copy of this config with the Latency Controller set to ``cycles``."""
        return dataclasses.replace(
            self, mem=dataclasses.replace(self.mem, extra_latency_cycles=cycles)
        ).validate()

    def with_bandwidth(self, bytes_per_cycle_target: int) -> "SdvConfig":
        """Copy with the Bandwidth Limiter set to a bytes/cycle target."""
        num, den = bw_fraction_for_bytes_per_cycle(bytes_per_cycle_target)
        return dataclasses.replace(
            self, mem=dataclasses.replace(self.mem, bw_num=num, bw_den=den)
        ).validate()

    def with_max_vl(self, max_vl: int) -> "SdvConfig":
        """Copy with the custom max-VL CSR lowered/raised to ``max_vl``."""
        return dataclasses.replace(
            self, vpu=dataclasses.replace(self.vpu, max_vl=max_vl)
        ).validate()
