"""The findings pipeline shared by every lint pass (and ``repro.obs.check``).

A finding is one diagnosed problem: a stable rule id, a severity, a
location string (``file:line`` for source rules, a symbolic path like
``template[spmv/vl8]#2`` for dynamic rules), a message, and a fix hint.
Passes return lists of findings; :class:`FindingsReport` aggregates them,
applies ignores, renders text/JSON, and maps severities to the process
exit code CI gates on: **exit 1 iff any ERROR-severity finding remains**.
"""

from __future__ import annotations

import enum
import json
from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass

#: schema tag of the JSON report (bump on incompatible layout changes).
#: v2 adds per-finding ``category`` + optional ``pid`` and a report-level
#: ``meta`` block; ``--format json-v1`` still emits the v1 layout.
REPORT_SCHEMA = "repro.lint/2"
REPORT_SCHEMA_V1 = "repro.lint/1"

#: rule-id prefix -> pass category (the v2 per-finding ``category`` key).
_CATEGORIES = {
    "T": "trace", "E": "emitter", "C": "config", "S": "cache",
    "O": "artifact", "P": "concurrency", "R": "sanitizer", "W": "hygiene",
}


def category_of(rule: str) -> str:
    """Pass category of a rule id (``'P101' -> 'concurrency'``)."""
    return _CATEGORIES.get(rule[:1], "other") if rule else "other"


class Severity(enum.IntEnum):
    """Ordered severity levels; comparisons follow the ordering."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # render as the bare name, not Severity.X
        return self.name


@dataclass(frozen=True)
class Finding:
    """One diagnosed problem, attributable to a rule and a location."""

    rule: str
    severity: Severity
    location: str
    message: str
    hint: str = ""
    pid: int = 0   # originating process (runtime-sanitizer findings)

    def render(self) -> str:
        text = f"{self.severity.name:<7} {self.rule} {self.location}: " \
               f"{self.message}"
        if self.pid:
            text += f"  [pid {self.pid}]"
        if self.hint:
            text += f"  [hint: {self.hint}]"
        return text

    def to_dict(self, *, version: int = 2) -> dict:
        d = {
            "rule": self.rule,
            "severity": self.severity.name,
            "location": self.location,
            "message": self.message,
        }
        if self.hint:
            d["hint"] = self.hint
        if version >= 2:
            d["category"] = category_of(self.rule)
            if self.pid:
                d["pid"] = self.pid
        return d


class FindingsReport:
    """An ordered collection of findings with the shared exit-code model."""

    def __init__(self, findings: Iterable[Finding] = ()) -> None:
        self.findings: list[Finding] = list(findings)
        #: run metadata surfaced in the v2 JSON report (families run,
        #: elapsed time, template count — whatever the runner records)
        self.meta: dict = {}

    # ------------------------------------------------------------ building

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def merge(self, other: "FindingsReport") -> "FindingsReport":
        self.findings.extend(other.findings)
        return self

    # ----------------------------------------------------------- filtering

    def ignoring(self, rules: Iterable[str]) -> "FindingsReport":
        """Copy of this report without findings from the given rule ids."""
        drop = set(rules)
        out = FindingsReport(f for f in self.findings
                             if f.rule not in drop)
        out.meta = dict(self.meta)
        return out

    def by_severity(self, severity: Severity) -> list[Finding]:
        return [f for f in self.findings if f.severity == severity]

    @property
    def errors(self) -> list[Finding]:
        return self.by_severity(Severity.ERROR)

    @property
    def max_severity(self) -> Severity | None:
        if not self.findings:
            return None
        return max(f.severity for f in self.findings)

    def counts(self) -> dict[str, int]:
        """``{"ERROR": n, "WARNING": m, "INFO": k}`` (zero entries kept)."""
        c = Counter(f.severity.name for f in self.findings)
        return {s.name: c.get(s.name, 0) for s in reversed(Severity)}

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)

    # ------------------------------------------------------------- output

    def exit_code(self) -> int:
        """The CI contract: 1 iff any ERROR finding, else 0."""
        return 1 if self.errors else 0

    def summary(self) -> str:
        if not self.findings:
            return "clean: no findings"
        parts = [f"{n} {name}" for name, n in self.counts().items() if n]
        return f"{len(self.findings)} findings ({', '.join(parts)})"

    def render_text(self) -> str:
        """Sorted most-severe-first, stable within a severity."""
        ordered = sorted(self.findings,
                         key=lambda f: (-int(f.severity), f.rule,
                                        f.location))
        lines = [f.render() for f in ordered]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self, *, version: int = 2) -> dict:
        d = {
            "schema": REPORT_SCHEMA if version >= 2 else REPORT_SCHEMA_V1,
            "counts": self.counts(),
            "exit_code": self.exit_code(),
            "findings": [f.to_dict(version=version)
                         for f in self.findings],
        }
        if version >= 2 and self.meta:
            d["meta"] = dict(self.meta)
        return d

    def to_json(self, indent: int | None = 2, *, version: int = 2) -> str:
        return json.dumps(self.to_dict(version=version), indent=indent)
