"""Pass family: static concurrency/resource-lifecycle typestate analysis.

The shared-memory trace plane (:mod:`repro.core.shm`) hands out segment
refs whose lifecycle is a typestate machine::

    created --publish--> published --attach--> attached
       |                     |                    |
       | transfer=True       | (owner)            | detach
       v                     v                    v
    handed off --adopt--> owned --release/unlink_all--> unlinked

Every consumer must walk that machine exactly: an attach without a
guaranteed detach pins a mapping for the life of the process (P101); a
use after release reads through a closed mapping (P102); a double
unlink relies on EAFP error swallowing (P103); a ``transfer=True``
publish whose ref nobody adopts leaks the segment outright (P104); a
pool task that itself fans out deadlocks the persistent pool (P105);
and a tracer span or runlog context that is not a ``with`` statement
never closes (P106).

This pass walks the AST of :func:`default_concurrency_paths` — the
plane/pool implementation plus every file in ``src/repro`` that touches
their APIs — and checks those shapes *syntactically*: no path-sensitive
dataflow, but precise enough that the clean tree pins at zero findings
while each seeded lifecycle mutation (dropped detach, skipped adopt,
duplicated unlink) is caught (see ``tests/lint/``).

Accepted attach shapes (P101)::

    with plane.attached_trace(ref) as trace:   # context manager
        ...
    trace = plane.attach_trace(ref)            # try/finally pairing
    try:
        ...
    finally:
        plane.detach(ref)

Suppressions reuse ``# repro-lint: disable=P101`` comments on the
flagged line; stale or unknown suppressions surface as W001/W002 via
:mod:`repro.lint.suppress`.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.findings import Finding
from repro.lint.rules import finding
from repro.lint.suppress import SuppressionIndex

#: raw attach calls that demand a paired detach (P101).
_ATTACH = {"attach_trace", "attach_bytes"}
#: the context-manager forms, safe by construction.
_ATTACH_CM = {"attached_trace", "attached_bytes"}
#: calls that end a segment's life (P102 kill set / P103 duplicates).
_RELEASE = {"release", "detach"}
_UNLINKISH = {"_raw_unlink", "unlink", "release"}
#: publish calls that can hand ownership off (P104).
_PUBLISH = {"publish_trace", "publish_bytes"}

#: source tokens that mark a file as a plane/pool consumer.
_TOKENS = ("attach_trace", "attach_bytes", "attached_trace",
           "attached_bytes", "publish_trace", "publish_bytes",
           "run_tasks", ".submit(", "plane_prefix", "adopt(")

#: transitive-closure depth when resolving a pool worker's helpers.
_CLOSURE_DEPTH = 5


def _dotted(node: ast.expr) -> str:
    """Best-effort dotted name of a call target ('plane.attach_trace')."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _leaf_recv(call: ast.Call) -> tuple[str, str]:
    """(method leaf, dotted receiver) of a call; receiver '' for bare
    names and non-name bases (``get_plane().attach_bytes`` -> '')."""
    name = _dotted(call.func)
    if "." in name:
        recv, leaf = name.rsplit(".", 1)
    else:
        recv, leaf = "", name
    if not isinstance(call.func, ast.Attribute):
        recv = ""
    return leaf, recv


def _first_arg_dump(call: ast.Call) -> str:
    return ast.dump(call.args[0]) if call.args else ""


def _head_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """The expressions evaluated *by this statement itself*, excluding
    anything belonging to its nested blocks."""
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.While, ast.If)):
        return [stmt.test]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [i.context_expr for i in stmt.items]
    if isinstance(stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return []
    return [stmt]  # simple statement: the whole node


def _head_calls(stmt: ast.stmt) -> list[ast.Call]:
    out: list[ast.Call] = []
    for e in _head_exprs(stmt):
        for n in ast.walk(e):
            if isinstance(n, ast.Call):
                out.append(n)
    return out


def _detach_args(block: list[ast.stmt]) -> set[str]:
    """First-arg dumps of every ``detach``/``release`` call in a block
    (used to decide what a ``finally`` protects)."""
    out: set[str] = set()
    for stmt in block:
        for n in ast.walk(stmt):
            if isinstance(n, ast.Call):
                leaf, _ = _leaf_recv(n)
                if leaf in _RELEASE and n.args:
                    out.add(_first_arg_dump(n))
    return out


def _child_blocks(stmt: ast.stmt) -> list[list[ast.stmt]]:
    blocks: list[list[ast.stmt]] = []
    for field in ("body", "orelse", "finalbody"):
        b = getattr(stmt, field, None)
        if isinstance(b, list) and b and isinstance(b[0], ast.stmt):
            blocks.append(b)
    for h in getattr(stmt, "handlers", []) or []:
        if h.body:
            blocks.append(h.body)
    return blocks


class _FileScan:
    """Per-file block scanner for P101/P102/P103."""

    def __init__(self, path: str, sup: SuppressionIndex) -> None:
        self.path = path
        self.sup = sup
        self.findings: list[Finding] = []

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if self.sup.suppresses(lineno, rule):
            return
        self.findings.append(
            finding(rule, f"{self.path}:{lineno}", message))

    def scan(self, block: list[ast.stmt],
             protected: frozenset[str]) -> None:
        #: variable -> attach-arg dump, for assigns seen in this block
        attached: dict[str, str] = {}
        #: variables whose segment was released/detached earlier in block
        dead: dict[str, ast.stmt] = {}
        #: (leaf, recv, argdump) -> first unlink-like stmt in this block
        unlinked: dict[tuple[str, str, str], ast.stmt] = {}

        for i, stmt in enumerate(block):
            # ---- P102: a use of an attach-bound var after its release
            for name, origin in list(dead.items()):
                if any(isinstance(n, ast.Name) and n.id == name
                       and isinstance(n.ctx, ast.Load)
                       for n in ast.walk(stmt)):
                    self._report(
                        "P102", stmt,
                        f"'{name}' (attached from the plane) is used "
                        "after its ref was released/detached at line "
                        f"{origin.lineno}")
                    del dead[name]

            head = _head_calls(stmt)
            for call in head:
                leaf, recv = _leaf_recv(call)
                arg = _first_arg_dump(call)

                # ---- P101: raw attach without a guaranteed detach
                if leaf in _ATTACH and recv not in ("self", "cls"):
                    ok = arg and arg in protected
                    if not ok and arg:
                        for later in block[i + 1:]:
                            if isinstance(later, ast.Try) and \
                                    arg in _detach_args(later.finalbody):
                                ok = True
                                break
                    if not ok:
                        self._report(
                            "P101", call,
                            f"{leaf}(...) result is not protected by a "
                            "try/finally detach or an attached_* "
                            "context manager")
                    elif isinstance(stmt, ast.Assign) and \
                            len(stmt.targets) == 1 and \
                            isinstance(stmt.targets[0], ast.Name):
                        attached[stmt.targets[0].id] = arg

                # ---- P103: literal duplicate unlink in one block
                if leaf in _UNLINKISH:
                    key = (leaf, recv, arg)
                    first = unlinked.get(key)
                    if first is not None and first is not stmt:
                        self._report(
                            "P103", call,
                            f"{leaf}({ast.unparse(call.args[0]) if call.args else ''}) "
                            "already ran in this block at line "
                            f"{first.lineno}")
                    else:
                        unlinked[key] = stmt

                # ---- P102 bookkeeping: the kill set
                if leaf in _RELEASE and arg:
                    for name, a in attached.items():
                        if a == arg and name not in dead:
                            dead[name] = stmt

            # ---- recurse
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.scan(stmt.body, frozenset())
            elif isinstance(stmt, ast.ClassDef):
                self.scan(stmt.body, frozenset())
            elif isinstance(stmt, ast.Try):
                inner = protected | _detach_args(stmt.finalbody)
                self.scan(stmt.body, frozenset(inner))
                for h in stmt.handlers:
                    self.scan(h.body, frozenset(inner))
                if stmt.orelse:
                    self.scan(stmt.orelse, frozenset(inner))
                if stmt.finalbody:
                    self.scan(stmt.finalbody, protected)
            else:
                for b in _child_blocks(stmt):
                    self.scan(b, protected)


def _scan_spans(path: str, tree: ast.AST, sup: SuppressionIndex,
                out: list[Finding]) -> None:
    """P106: tracer spans / runlog contexts must be ``with`` items."""
    as_items: set[int] = set()
    for n in ast.walk(tree):
        if isinstance(n, (ast.With, ast.AsyncWith)):
            for item in n.items:
                as_items.add(id(item.context_expr))
    for n in ast.walk(tree):
        if not isinstance(n, ast.Call) or id(n) in as_items:
            continue
        leaf, recv = _leaf_recv(n)
        recv_l = recv.lower()
        hit = (leaf == "span" and "tracer" in recv_l) or \
              (leaf == "context" and "log" in recv_l)
        if hit and not sup.suppresses(n.lineno, "P106"):
            out.append(finding(
                "P106", f"{path}:{n.lineno}",
                f"{recv}.{leaf}(...) is not the context expression of "
                "a with statement — the span/context never exits"))


def _transfer_publishes(fn: ast.AST) -> bool:
    """Does this function publish with ``transfer=True`` (or any
    non-False transfer expression)?"""
    for n in ast.walk(fn):
        if isinstance(n, ast.Call):
            leaf, _ = _leaf_recv(n)
            if leaf in _PUBLISH:
                for kw in n.keywords:
                    if kw.arg == "transfer" and not (
                            isinstance(kw.value, ast.Constant)
                            and kw.value.value is False):
                        return True
    return False


def _closure(name: str, index: dict[str, tuple[str, ast.FunctionDef]],
             seen: set[str], depth: int = 0) -> None:
    """Transitively resolve a worker function's same-set helpers."""
    if name in seen or depth > _CLOSURE_DEPTH or name not in index:
        return
    seen.add(name)
    _, fn = index[name]
    for n in ast.walk(fn):
        if isinstance(n, ast.Call) and isinstance(n.func, ast.Name):
            _closure(n.func.id, index, seen, depth + 1)


def _enclosing_chain(tree: ast.Module,
                     target: ast.Call) -> list[ast.FunctionDef]:
    """Every FunctionDef whose subtree contains ``target``, outermost
    first (empty for module-level calls)."""
    chain: list[ast.FunctionDef] = []

    def _descend(node: ast.AST) -> bool:
        found = any(n is target for n in ast.walk(node))
        if not found:
            return False
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)) and \
                    any(n is target for n in ast.walk(child)):
                chain.append(child)  # type: ignore[arg-type]
                _descend(child)
                return True
            if _descend(child):
                return True
        return True

    _descend(tree)
    return chain


def _has_adopt(fns: list[ast.FunctionDef]) -> bool:
    """A *plane* adopt call (``plane.adopt(...)`` or
    ``get_plane().adopt(...)``) — tracer/runlog span adoption shares the
    method name but transfers no segment ownership."""
    for fn in fns:
        for n in ast.walk(fn):
            if isinstance(n, ast.Call):
                leaf, recv = _leaf_recv(n)
                if leaf == "adopt" and ("plane" in recv.lower()
                                        or recv == ""):
                    return True
    return False


def _run_tasks_calls(tree: ast.AST) -> list[ast.Call]:
    out = []
    for n in ast.walk(tree):
        if isinstance(n, ast.Call):
            leaf, _ = _leaf_recv(n)
            if leaf == "run_tasks":
                out.append(n)
    return out


def default_concurrency_paths(
        root: str | Path | None = None) -> list[Path]:
    """The sources this pass covers: the plane/pool implementation plus
    every ``src/repro`` module whose text touches their APIs (the lint
    package itself is excluded — rule tables quote the tokens)."""
    if root is None:
        root = Path(__file__).resolve().parents[1]  # src/repro
    root = Path(root)
    paths = [root / "core" / "shm.py", root / "core" / "parallel.py",
             root / "core" / "sweeps.py"]
    paths = [p for p in paths if p.exists()]
    have = set(paths)
    for p in sorted(root.rglob("*.py")):
        if p in have or (root / "lint") in p.parents:
            continue
        try:
            text = p.read_text(encoding="utf-8")
        except OSError:
            continue
        if any(tok in text for tok in _TOKENS):
            paths.append(p)
    return paths


def lint_concurrency(paths: list[Path] | None = None) -> list[Finding]:
    """Run the typestate pass over ``paths`` (default: every plane/pool
    consumer under ``src/repro``)."""
    out: list[Finding] = []
    parsed: list[tuple[str, ast.Module, SuppressionIndex]] = []
    #: module-level function index across the analyzed set, for
    #: resolving pool worker functions and their helpers
    index: dict[str, tuple[str, ast.FunctionDef]] = {}

    for p in (default_concurrency_paths() if paths is None else paths):
        p = Path(p)
        posix = p.as_posix()
        try:
            text = p.read_text(encoding="utf-8")
        except OSError as exc:
            out.append(finding("P100", posix, f"unreadable: {exc}"))
            continue
        try:
            tree = ast.parse(text, filename=str(p))
        except SyntaxError as exc:
            out.append(finding("P100", f"{posix}:{exc.lineno or 0}",
                               f"unparseable source: {exc.msg}"))
            continue
        sup = SuppressionIndex(posix, text.splitlines())
        parsed.append((posix, tree, sup))
        for stmt in tree.body:
            if isinstance(stmt, ast.FunctionDef):
                index.setdefault(stmt.name, (posix, stmt))

    #: every function that runs inside a pool worker (first args of
    #: run_tasks calls, plus their same-set transitive helpers)
    worker_fns: set[str] = set()
    for posix, tree, sup in parsed:
        for call in _run_tasks_calls(tree):
            if call.args and isinstance(call.args[0], ast.Name):
                _closure(call.args[0].id, index, worker_fns)

    for posix, tree, sup in parsed:
        scanner = _FileScan(posix, sup)
        scanner.scan(tree.body, frozenset())
        out.extend(scanner.findings)
        _scan_spans(posix, tree, sup, out)

        # ---- P104: transfer-publishing fan-outs must adopt somewhere
        for call in _run_tasks_calls(tree):
            if not (call.args and isinstance(call.args[0], ast.Name)):
                continue
            closure: set[str] = set()
            _closure(call.args[0].id, index, closure)
            if not any(name in index and _transfer_publishes(index[name][1])
                       for name in closure):
                continue
            chain = _enclosing_chain(tree, call)
            if not _has_adopt(chain) and \
                    not sup.suppresses(call.lineno, "P104"):
                out.append(finding(
                    "P104", f"{posix}:{call.lineno}",
                    f"run_tasks({call.args[0].id}, ...) fans out a "
                    "transfer=True publisher but no enclosing function "
                    "ever adopts a ref — the handed-off segments leak"))

        # ---- P105: no fan-out from worker context, no raw submits
        for name, (fpath, fn) in index.items():
            if fpath != posix or name not in worker_fns:
                continue
            for n in ast.walk(fn):
                if not isinstance(n, ast.Call):
                    continue
                leaf, recv = _leaf_recv(n)
                if leaf == "run_tasks" and \
                        not sup.suppresses(n.lineno, "P105"):
                    out.append(finding(
                        "P105", f"{posix}:{n.lineno}",
                        f"pool task '{name}' calls run_tasks — nested "
                        "fan-out deadlocks the persistent pool"))
        if not posix.endswith("core/parallel.py"):
            for n in ast.walk(tree):
                if isinstance(n, ast.Call):
                    leaf, recv = _leaf_recv(n)
                    if leaf == "submit" and recv and \
                            not sup.suppresses(n.lineno, "P105"):
                        out.append(finding(
                            "P105", f"{posix}:{n.lineno}",
                            f"{recv}.submit(...) bypasses run_tasks — "
                            "executor submission belongs to "
                            "core/parallel.py"))

        out.extend(sup.audit())
    return out
