"""Lint orchestration: run pass families, aggregate one findings report.

Five families, individually selectable (``--family``), all on by
default when ``--all`` is given:

* ``template`` — run every kernel's vector emitter per VL under
  :func:`repro.trace.template.capture_replications`, analyze each
  captured replication for undeclared hazards, and validate the sealed
  trace's columnar invariants (scalar builds get the columnar check);
* ``emitter`` — AST lint over ``src/repro/kernels`` + ``src/repro/isa``;
* ``concurrency`` — typestate analysis of the shared-memory plane and
  pool consumers (see :mod:`repro.lint.concurrency_rules`);
* ``config`` — legality of the default sweep grids and the SoC build;
* ``cache`` — staleness audit of a trace-cache directory (needs
  ``--trace-cache``).

``--sanitize-report DIR`` additionally folds the runtime sanitizer's
per-process dumps (:mod:`repro.lint.sanitize`) into the same report,
so one command gates both the static and the dynamic analysis.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field

from repro.lint.concurrency_rules import lint_concurrency
from repro.lint.config_rules import check_sweep, check_trace_cache
from repro.lint.emitter_rules import lint_paths
from repro.lint.findings import Finding, FindingsReport, Severity
from repro.lint.rules import render_catalog
from repro.lint.sanitize import report_from_dir
from repro.lint.trace_rules import analyze_snapshot, check_trace_buffer

#: every pass family, in execution order.
FAMILIES = ("template", "emitter", "concurrency", "config", "cache")

#: families that run without extra inputs (cache needs a directory).
DEFAULT_FAMILIES = ("template", "emitter", "concurrency", "config")


@dataclass
class LintOptions:
    """Everything one lint run needs."""

    families: tuple[str, ...] = DEFAULT_FAMILIES
    kernels: tuple[str, ...] | None = None   # None = full registry
    vls: tuple[int, ...] = (8, 64)
    scale: str = "ci"
    seed: int = 7
    trace_cache: str | None = None
    ignore: tuple[str, ...] = ()
    paths: tuple[str, ...] | None = None     # emitter pass override
    include_scalar: bool = True
    sanitize_report: str | None = None       # sanitizer-dump directory
    meta: dict = field(default_factory=dict)  # filled by run_lint


def _lint_templates(opts: LintOptions) -> list[Finding]:
    from repro.kernels import KERNELS
    from repro.soc.sdv import FpgaSdv
    from repro.trace.template import capture_replications
    from repro.workloads import get_scale

    names = list(KERNELS) if opts.kernels is None else list(opts.kernels)
    scale = get_scale(opts.scale)
    out: list[Finding] = []
    # a strip-mined kernel replicates the same template once per strip;
    # a warning that repeats verbatim for every strip carries no extra
    # signal, so warnings dedupe on (rule, slot pair, message) per
    # kernel/VL while errors always report every instance
    seen: set[tuple] = set()

    def _add(findings: list[Finding], label: str) -> None:
        for f in findings:
            if f.severity < Severity.ERROR:
                key = (f.rule, label,
                       f.location.split("#", 1)[-1], f.message)
                if key in seen:
                    continue
                seen.add(key)
            out.append(f)

    for name in names:
        spec = KERNELS[name]
        workload = spec.prepare(scale, opts.seed)
        for vl in opts.vls:
            sdv = FpgaSdv().configure(max_vl=vl)
            session = sdv.session()
            with capture_replications() as snaps:
                spec.vector(session, workload)
            trace = session.seal()
            label = f"{name}/vl{vl}"
            for snap in snaps:
                _add(analyze_snapshot(snap, label), label)
            out.extend(check_trace_buffer(trace, label, hw_max_vl=vl))
            opts.meta["templates"] = opts.meta.get("templates", 0) \
                + len(snaps)
        if opts.include_scalar:
            session = FpgaSdv().session()
            spec.scalar(session, workload)
            out.extend(check_trace_buffer(session.seal(),
                                          f"{name}/scalar"))
    return out


def _lint_config(opts: LintOptions) -> list[Finding]:
    from repro.core.sweeps import (
        DEFAULT_BANDWIDTHS,
        DEFAULT_LATENCIES,
        DEFAULT_VLS,
    )

    out = check_sweep("latency", DEFAULT_LATENCIES, DEFAULT_VLS,
                      where="defaults")
    out.extend(check_sweep("bandwidth", DEFAULT_BANDWIDTHS, DEFAULT_VLS,
                           where="defaults"))
    # check_sweep validates the VL grid and config twice; drop repeats
    seen: set[tuple] = set()
    unique = []
    for f in out:
        key = (f.rule, f.location, f.message)
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique


def run_lint(opts: LintOptions | None = None) -> FindingsReport:
    """Run the selected pass families; returns the filtered report."""
    opts = opts if opts is not None else LintOptions()
    report = FindingsReport()
    t0 = time.perf_counter()
    for family in opts.families:
        if family == "template":
            report.extend(_lint_templates(opts))
        elif family == "emitter":
            report.extend(lint_paths(opts.paths))
        elif family == "concurrency":
            report.extend(lint_concurrency())
        elif family == "config":
            report.extend(_lint_config(opts))
        elif family == "cache":
            if opts.trace_cache is not None:
                report.extend(check_trace_cache(opts.trace_cache))
        else:
            raise ValueError(f"unknown lint family '{family}' "
                             f"(choose from {', '.join(FAMILIES)})")
    if opts.sanitize_report is not None:
        report.extend(report_from_dir(opts.sanitize_report))
        opts.meta["sanitize_report"] = opts.sanitize_report
    opts.meta["families"] = list(opts.families)
    opts.meta["elapsed_s"] = time.perf_counter() - t0
    report.meta.update(opts.meta)
    return report.ignoring(opts.ignore)


# ------------------------------------------------------------------- CLI

def add_lint_arguments(p: argparse.ArgumentParser) -> None:
    """The ``repro-sdv lint`` / ``python -m repro.lint`` options."""
    p.add_argument("--all", action="store_true",
                   help="run every pass family on every kernel")
    p.add_argument("--family", action="append", choices=FAMILIES,
                   help="pass family to run (repeatable; default: "
                        "template+emitter+config)")
    p.add_argument("--kernel", default="all",
                   help="kernel to analyze: spmv|bfs|pagerank|fft|all")
    p.add_argument("--vls", default="8,64",
                   help="comma list of VLs for the template pass")
    p.add_argument("--scale", default="ci",
                   help="workload scale for the template pass "
                        "(default ci)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--trace-cache", default=None, metavar="DIR",
                   help="trace-cache directory for the staleness audit")
    p.add_argument("--ignore", default="", metavar="RULES",
                   help="comma list of rule ids to suppress")
    p.add_argument("--sanitize-report", default=None, metavar="DIR",
                   help="fold runtime-sanitizer dumps from DIR into the "
                        "report (see REPRO_SANITIZE)")
    p.add_argument("--format", default="text",
                   choices=("text", "json", "json-v1"),
                   help="report format (json-v1 emits the legacy "
                        "repro.lint/1 schema)")
    p.add_argument("--json", action="store_true",
                   help="alias for --format json")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")


def run_lint_cli(args: argparse.Namespace) -> int:
    """Shared verb body for the CLI entry points; returns the exit code."""
    if args.list_rules:
        print(render_catalog())
        return 0
    if args.kernel == "all":
        kernels = None
    else:
        from repro.kernels import KERNELS
        if args.kernel not in KERNELS:
            print(f"unknown kernel '{args.kernel}'", file=sys.stderr)
            return 2
        kernels = (args.kernel,)
    families = tuple(args.family) if args.family else DEFAULT_FAMILIES
    if args.all:
        families = FAMILIES
    ignore = tuple(r.strip() for r in args.ignore.split(",") if r.strip())
    opts = LintOptions(
        families=families,
        kernels=kernels,
        vls=tuple(int(x) for x in args.vls.split(",")),
        scale=args.scale,
        seed=args.seed,
        trace_cache=args.trace_cache,
        ignore=ignore,
        sanitize_report=args.sanitize_report,
    )
    report = run_lint(opts)
    fmt = args.format
    if args.json and fmt == "text":
        fmt = "json"
    if fmt == "json":
        print(report.to_json())
    elif fmt == "json-v1":
        print(report.to_json(version=1))
    else:
        print(report.render_text())
        print(f"[lint: {opts.meta.get('elapsed_s', 0.0):.1f}s, "
              f"{opts.meta.get('templates', 0)} templates analyzed]",
              file=sys.stderr)
    return report.exit_code()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static verification of trace templates, kernel "
                    "emitters and sweep configs",
    )
    add_lint_arguments(parser)
    return run_lint_cli(parser.parse_args(argv))
