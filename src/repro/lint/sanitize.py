"""Runtime sanitizer: shadow-state tracking of the shm plane and pool.

``REPRO_SANITIZE=1`` installs a :class:`ShadowTracker` into thin hooks
inside :mod:`repro.core.shm` and :mod:`repro.core.parallel` (one global
load + ``None`` check when disabled — unmeasurable, see
``benchmarks/bench_obs_overhead.py``). The tracker mirrors every
segment's lifecycle — publishes, per-process attach/detach refcount
history, adoptions, releases, unlink attempts, purges — plus pool batch
submit/drain accounting, entirely independent of the plane's own
bookkeeping, so a divergence between the two is a finding:

* ``R101`` — a segment this process owned was never unlinked by exit
  (or exit cleanup reclaimed segments under this process's prefix);
* ``R102`` — more attaches than detaches on a segment that was never
  settled by a local unlink (a pinned mapping);
* ``R103`` — a second unlink attempt for a name this process already
  unlinked (the already-released fast path absorbs it; the caller is
  still buggy);
* ``R104`` — a release for a segment this process never published,
  attached or adopted;
* ``R105`` — a pool batch that completed fewer futures than it
  submitted without a broken-pool error, or was still open at exit;
* ``R106`` — a forked process submitting to its parent's pool.

Findings ride the standard :mod:`repro.lint.findings` pipeline. Each
process (the parent *and* every pool worker — forked children run
:mod:`multiprocessing.util` finalizers, not :mod:`atexit`) dumps a
``sanitize-<pid>-<nonce>.json`` payload into ``REPRO_SANITIZE_DIR`` at
exit; ``repro-sdv lint --sanitize-report <dir>`` aggregates the dumps
into one report with the usual exit-1-iff-ERROR contract. Without a
dump directory, findings print to stderr at exit.

Fork-safety: hooks compare ``os.getpid()`` against the tracker's pid on
every call, so a child inheriting the parent's tracker starts from a
clean slate instead of double-counting the parent's segments.
"""

from __future__ import annotations

import atexit
import json
import os
import sys
import uuid
from collections import Counter
from pathlib import Path
from typing import Any

from repro.lint.findings import Finding, FindingsReport, Severity
from repro.lint.rules import RULES, finding

#: schema tag of the per-process dump payload.
SANITIZE_SCHEMA = "repro.sanitize/1"

#: per-segment lifecycle-event history bound (memory, not correctness).
_EVENT_CAP = 64

#: segments listed per dump payload (counters stay exact regardless).
_SEGMENT_CAP = 256


class _Seg:
    """Shadow state of one segment, as seen by this process."""

    __slots__ = ("name", "key", "size", "transfer", "owned", "adopted",
                 "attaches", "detaches", "releases", "unlinked", "events")

    def __init__(self, name: str) -> None:
        self.name = name
        self.key = ""
        self.size = 0
        self.transfer = False
        self.owned = False
        self.adopted = False
        self.attaches = 0
        self.detaches = 0
        self.releases = 0
        self.unlinked = False
        self.events: list[str] = []

    def note(self, event: str) -> None:
        if len(self.events) < _EVENT_CAP:
            self.events.append(event)

    def summary(self) -> dict[str, Any]:
        return {
            "key": self.key, "size": self.size, "transfer": self.transfer,
            "owned": self.owned, "adopted": self.adopted,
            "attaches": self.attaches, "detaches": self.detaches,
            "releases": self.releases, "unlinked": self.unlinked,
            "events": list(self.events),
        }


class ShadowTracker:
    """The per-process shadow state behind the shm/pool hooks."""

    def __init__(self, dump_dir: str | None = None) -> None:
        self.dump_dir = dump_dir
        self._reset()

    def _reset(self) -> None:
        self.pid = os.getpid()
        self.segments: dict[str, _Seg] = {}
        self.counters: Counter[str] = Counter()
        #: findings recorded the moment the violation happened
        self.violations: list[Finding] = []
        self.open_batches: dict[int, dict[str, Any]] = {}
        self._next_batch = 0
        self.in_exit = False
        self._leak_snapshot: list[_Seg] = []
        self.exit_reclaimed: list[str] = []

    def _fork_check(self) -> None:
        # a forked child inherited this object: its records describe the
        # parent; start the child from a clean slate
        if os.getpid() != self.pid:
            self._reset()

    def _seg(self, name: str) -> _Seg:
        seg = self.segments.get(name)
        if seg is None:
            seg = self.segments[name] = _Seg(name)
        return seg

    def _violate(self, rule: str, location: str, message: str) -> None:
        r = RULES[rule]
        self.violations.append(Finding(
            rule=rule, severity=r.severity, location=location,
            message=message, hint=r.hint, pid=self.pid))
        self.counters[f"violations.{rule}"] += 1

    # ------------------------------------------------------- shm hooks

    def note_publish(self, name: str, key: str, size: int,
                     transfer: bool) -> None:
        self._fork_check()
        seg = self._seg(name)
        seg.key, seg.size, seg.transfer = key, size, transfer
        seg.owned = not transfer
        seg.note("publish[transfer]" if transfer else "publish")
        self.counters["publishes"] += 1

    def note_attach(self, name: str, size: int) -> None:
        self._fork_check()
        seg = self._seg(name)
        seg.size = seg.size or size
        seg.attaches += 1
        seg.note(f"attach->{seg.attaches - seg.detaches}")
        self.counters["attaches"] += 1

    def note_detach(self, name: str) -> None:
        self._fork_check()
        seg = self.segments.get(name)
        if seg is None:
            self.counters["spurious_detaches"] += 1
            return
        seg.detaches += 1
        seg.note(f"detach->{seg.attaches - seg.detaches}")
        self.counters["detaches"] += 1

    def note_adopt(self, name: str) -> None:
        self._fork_check()
        seg = self._seg(name)
        seg.owned = True
        seg.adopted = True
        seg.note("adopt")
        self.counters["adopts"] += 1

    def note_release(self, name: str, owned: bool) -> None:
        self._fork_check()
        seg = self.segments.get(name)
        if seg is None:
            self._violate(
                "R104", f"shm:{name}",
                "release() for a segment this process never published, "
                "attached or adopted")
            return
        seg.releases += 1
        seg.note("release[owner]" if owned else "release")
        self.counters["releases"] += 1

    def note_unlink(self, name: str, first: bool) -> None:
        self._fork_check()
        if not first:
            self._violate(
                "R103", f"shm:{name}",
                "second unlink attempt for a name this process already "
                "unlinked (absorbed by the already-released fast path)")
            return
        self.counters["unlinks"] += 1
        seg = self.segments.get(name)
        if seg is not None:
            seg.unlinked = True
            seg.note("unlink")

    def note_purge(self, name: str, ours: bool) -> None:
        self._fork_check()
        self.counters["purged"] += 1
        if self.in_exit and ours:
            # exit cleanup had to reclaim a segment under this very
            # process's prefix: something skipped its release path
            self.exit_reclaimed.append(name)

    # ------------------------------------------------------ pool hooks

    def note_batch_begin(self, jobs: int, tasks: int) -> int:
        self._fork_check()
        self._next_batch += 1
        bid = self._next_batch
        self.open_batches[bid] = {"jobs": jobs, "tasks": tasks}
        self.counters["pool_batches"] += 1
        return bid

    def note_batch_end(self, bid: int, status: str, completed: int,
                       submitted: int) -> None:
        self._fork_check()
        if self.open_batches.pop(bid, None) is None:
            return
        self.counters[f"pool_batch_{status}"] += 1
        if status == "ok" and completed < submitted:
            self._violate(
                "R105", "parallel:run_tasks",
                f"pool batch drained {completed} of {submitted} futures "
                "without a broken-pool error")

    def note_foreign_pool(self, creator_pid: int) -> None:
        self._fork_check()
        self._violate(
            "R106", "parallel:_get_pool",
            f"process {os.getpid()} found a pool created by pid "
            f"{creator_pid}; the handle was abandoned and rebuilt")

    # ------------------------------------------------------- reporting

    def begin_exit(self) -> None:
        """Enter the exit phase: snapshot what is still owned *before*
        the layered exit cleanup runs, so cleanup's own unlinks cannot
        retroactively hide a leak."""
        self._fork_check()
        self.in_exit = True
        self._leak_snapshot = [s for s in self.segments.values()
                               if s.owned and not s.unlinked]

    def findings(self) -> list[Finding]:
        out = list(self.violations)
        if not self.in_exit:
            return out
        reported: set[str] = set()
        for seg in self._leak_snapshot:
            reported.add(seg.name)
            out.append(Finding(
                rule="R101", severity=Severity.ERROR,
                location=f"shm:{seg.name}",
                message=f"owned segment (key '{seg.key}', {seg.size} B) "
                        "was still live when the process exited",
                hint=RULES["R101"].hint, pid=self.pid))
        for name in self.exit_reclaimed:
            if name in reported:
                continue
            reported.add(name)
            out.append(Finding(
                rule="R101", severity=Severity.ERROR,
                location=f"shm:{name}",
                message="exit cleanup reclaimed a segment under this "
                        "process's own prefix — a release path was "
                        "skipped",
                hint=RULES["R101"].hint, pid=self.pid))
        for seg in self.segments.values():
            if not seg.unlinked and seg.attaches > seg.detaches:
                out.append(Finding(
                    rule="R102", severity=Severity.ERROR,
                    location=f"shm:{seg.name}",
                    message=f"{seg.attaches} attaches vs {seg.detaches} "
                            "detaches with no settling unlink "
                            f"(history: {' '.join(seg.events)})",
                    hint=RULES["R102"].hint, pid=self.pid))
        for bid, b in self.open_batches.items():
            out.append(Finding(
                rule="R105", severity=Severity.ERROR,
                location="parallel:run_tasks",
                message=f"pool batch #{bid} ({b['tasks']} tasks, "
                        f"jobs={b['jobs']}) was still open at exit",
                hint=RULES["R105"].hint, pid=self.pid))
        return out

    def report(self) -> FindingsReport:
        rep = FindingsReport(self.findings())
        rep.meta = {"sanitize": dict(self.counters), "pid": self.pid}
        return rep

    def to_payload(self) -> dict[str, Any]:
        segs = dict(list(self.segments.items())[:_SEGMENT_CAP])
        return {
            "schema": SANITIZE_SCHEMA,
            "pid": self.pid,
            "counters": dict(self.counters),
            "findings": [f.to_dict() for f in self.findings()],
            "segments": {n: s.summary() for n, s in segs.items()},
            "segments_truncated": len(self.segments) - len(segs),
        }

    def dump(self, dirpath: str | None = None) -> Path | None:
        """Write this process's payload; returns the file path."""
        d = dirpath or self.dump_dir
        if not d:
            return None
        try:
            out = Path(d)
            out.mkdir(parents=True, exist_ok=True)
            path = out / f"sanitize-{self.pid}-{uuid.uuid4().hex[:8]}.json"
            path.write_text(json.dumps(self.to_payload(), indent=2),
                            encoding="utf-8")
            return path
        except OSError:
            return None


# ---------------------------------------------------------- installation

_TRACKER: ShadowTracker | None = None
_INSTALL_PID: int | None = None


def get_tracker() -> ShadowTracker | None:
    return _TRACKER


def enabled() -> bool:
    return _TRACKER is not None


def install(dump_dir: str | None = None) -> ShadowTracker:
    """Create the process tracker and wire it into the shm/pool hooks
    (idempotent). Called from :mod:`repro.core.shm` at import when
    ``REPRO_SANITIZE=1``, or explicitly by tests."""
    global _TRACKER, _INSTALL_PID
    if _TRACKER is not None:
        return _TRACKER
    tracker = ShadowTracker(dump_dir)
    _TRACKER = tracker
    _INSTALL_PID = os.getpid()

    import repro.core.parallel as parallel_mod
    import repro.core.shm as shm_mod

    shm_mod._sanitizer = tracker
    parallel_mod._sanitizer = tracker

    # exit ordering: the plane's own atexit cleanup must run *between*
    # begin_exit (leak snapshot) and the report, so take over its slot
    try:
        atexit.unregister(shm_mod._atexit_cleanup)
    except Exception:
        pass
    atexit.register(_parent_exit)
    try:
        # forked pool workers skip atexit but do run multiprocessing
        # finalizers on their way out; Process._bootstrap *clears*
        # inherited finalizers, so the worker-exit dump has to be
        # (re-)registered on the child's side of the fork
        from multiprocessing import util

        util.register_after_fork(tracker, _after_fork)
    except Exception:
        pass
    return tracker


def _after_fork(_tracker: ShadowTracker) -> None:
    """Runs in every freshly forked child: arrange the worker dump."""
    try:
        from multiprocessing import util

        util.Finalize(None, _worker_exit, exitpriority=5)
    except Exception:
        pass


def _finish(tracker: ShadowTracker) -> None:
    found = tracker.findings()
    try:
        from repro.obs.metrics import get_metrics
        from repro.obs.runlog import get_runlog

        get_metrics().counter("sanitize.findings").inc(len(found))
        get_runlog().event("sanitize.report", pid=tracker.pid,
                           findings=len(found),
                           counters=dict(tracker.counters))
    except Exception:
        pass
    if tracker.dump_dir:
        tracker.dump()
    elif found:
        print(tracker.report().render_text(), file=sys.stderr)


def _parent_exit() -> None:
    tracker = _TRACKER
    if tracker is None or os.getpid() != _INSTALL_PID:
        return
    tracker.begin_exit()
    try:
        import repro.core.shm as shm_mod

        shm_mod._atexit_cleanup()
    except Exception:
        pass
    _finish(tracker)


def _worker_exit() -> None:
    tracker = _TRACKER
    if tracker is None or os.getpid() == _INSTALL_PID:
        return
    # never run the parent's cleanup here: a worker purging the shared
    # prefix would unlink segments the parent still owns
    tracker.begin_exit()
    _finish(tracker)


# ----------------------------------------------------------- aggregation

def report_from_dir(dirpath: str) -> list[Finding]:
    """Aggregate per-process sanitizer dumps into findings (the
    ``--sanitize-report`` flag). A directory without dumps is itself a
    WARNING — the sanitized run probably never happened."""
    d = Path(dirpath)
    dumps = sorted(d.glob("sanitize-*.json")) if d.is_dir() else []
    if not dumps:
        return [finding("W003", str(dirpath),
                        "no sanitize-*.json dumps found")]
    out: list[Finding] = []
    for path in dumps:
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            out.append(finding("W003", str(path),
                               f"unreadable sanitizer dump: {exc}"))
            continue
        if doc.get("schema") != SANITIZE_SCHEMA:
            out.append(finding(
                "W003", str(path),
                f"unsupported dump schema {doc.get('schema')!r} "
                f"(expected {SANITIZE_SCHEMA})"))
            continue
        pid = int(doc.get("pid", 0))
        for f in doc.get("findings", ()):
            out.append(Finding(
                rule=str(f.get("rule", "R101")),
                severity=Severity[str(f.get("severity", "ERROR"))],
                location=str(f.get("location", str(path))),
                message=str(f.get("message", "")),
                hint=str(f.get("hint", "")),
                pid=int(f.get("pid", pid))))
    return out
