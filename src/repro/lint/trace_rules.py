"""Pass family 1: template hazard analysis + columnar trace invariants.

**Hazard analysis** (:func:`analyze_snapshot`) consumes the
:class:`repro.trace.template.TemplateSnapshot` a ``replicate()`` call
leaves behind under :func:`~repro.trace.template.capture_replications`
and proves the declared ``Dep`` edges cover every memory hazard the
replicated iterations create:

* address streams are evaluated *symbolically*: an affine slot touching
  ``base + iter_offsets[i]`` at iteration ``i`` is compared against
  another affine slot at iteration distance ``k`` through the pairwise
  base-difference set — one sorted array + two ``searchsorted`` calls
  decide "do any two intervals overlap at distance k" for **all**
  iterations at once, with no per-iteration loop;
* explicit (``flat_addrs``/``counts``) streams fall back to a bounded
  per-iteration scan over the first/last :data:`ITER_SAMPLE` iterations;
* a store/load overlap at iteration distance ``k`` is *covered* when the
  reader reaches the writer through the template's dep graph
  (``Dep.local`` edges stay in-iteration, ``Dep.prev`` edges step one
  iteration back) or a barrier slot orders the pair;
* overlaps beyond :data:`MAX_DIST` iterations are reported at WARNING
  severity ("beyond the dependence window") — ``Dep.prev`` chains that
  long do not occur in practice and a barrier is the right fix.

**Columnar invariants** (:func:`check_trace_buffer`) validate a sealed
:class:`~repro.trace.events.TraceBuffer` against the v2 schema: dtypes,
monotone arena offsets, arena bounds, enum encodings, backward-only
deps, neutral barrier rows, and ISA-legal vector lengths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lint.findings import Finding, Severity
from repro.lint.rules import finding
from repro.trace.events import (
    NO_ID,
    OPCLASS_LIST,
    PATTERN_LIST,
    REC_BARRIER,
    REC_SCALAR,
    REC_VECTOR,
    TraceBuffer,
)
from repro.trace.template import (
    _D_ABS,
    _D_LOCAL,
    _D_NONE,
    _D_PREV,
    _K_BYTES,
    _K_KIND,
    _K_WRITE,
    _V_BASE,
    _V_COUNTS,
    _V_DEP,
    _V_FLAT,
    _V_IOFF,
    _V_WRITES,
    TemplateSnapshot,
)

#: iteration distances checked exactly (0 = same iteration). ``Dep.prev``
#: chains can cover any distance in principle; beyond this window the
#: analyzer reports overlaps at WARNING severity instead of proving them.
MAX_DIST = 3

#: explicit-stream pairs are scanned over the first and last this-many
#: iterations (affine pairs are exact over all iterations).
ITER_SAMPLE = 64

#: pairwise base-difference sets larger than this fall back to sampling.
_DIFF_CAP = 1 << 22


# --------------------------------------------------------------- slot model

@dataclass
class _Slot:
    """One template record, unpacked for analysis."""

    index: int
    kind: int
    is_write: bool            # vector-level flag
    width: int                # access granularity in bytes
    dep_mode: int
    dep_slot: int
    dep_first: int
    base: np.ndarray | None   # affine: one iteration's addresses
    ioff: np.ndarray | None   # affine: per-iteration byte offsets
    flat: np.ndarray | None   # explicit: all iterations' addresses
    counts: np.ndarray | None
    writes: np.ndarray | None  # scalar blocks: per-access write flags
    name: str

    @property
    def is_mem(self) -> bool:
        return self.base is not None or self.flat is not None

    @property
    def is_vector(self) -> bool:
        return self.kind == REC_VECTOR

    @property
    def is_barrier(self) -> bool:
        return self.kind == REC_BARRIER

    @property
    def writes_memory(self) -> bool:
        if not self.is_mem:
            return False
        if self.kind == REC_SCALAR:
            return self.writes is not None and bool(self.writes.any())
        return self.is_write

    @property
    def reads_memory(self) -> bool:
        if not self.is_mem:
            return False
        if self.kind == REC_SCALAR:
            return self.writes is None or not bool(self.writes.all())
        return not self.is_write

    def iter_addrs(self, i: int, want_writes: bool) -> np.ndarray:
        """Iteration ``i``'s addresses, filtered to reads or writes."""
        if self.base is not None:
            a = self.base + int(self.ioff[i])
        else:
            off = int(self.counts[:i].sum())
            a = self.flat[off:off + int(self.counts[i])]
        if self.kind == REC_SCALAR:
            if self.writes is None:
                return a if not want_writes else a[:0]
            w = self.writes
            return a[w] if want_writes else a[~w]
        if want_writes != self.is_write:
            return a[:0]
        return a


def _unpack(snap: TemplateSnapshot) -> list[_Slot]:
    slots = []
    for t, (sc, va, name) in enumerate(zip(snap.scal, snap.var, snap.strs)):
        dep = va[_V_DEP]
        slots.append(_Slot(
            index=t,
            kind=int(sc[_K_KIND]),
            is_write=bool(sc[_K_WRITE]),
            width=max(1, int(sc[_K_BYTES])),
            dep_mode=dep.mode,
            dep_slot=dep.slot,
            dep_first=dep.first,
            base=va[_V_BASE],
            ioff=va[_V_IOFF],
            flat=va[_V_FLAT],
            counts=va[_V_COUNTS],
            writes=va[_V_WRITES],
            name=name or f"slot{t}",
        ))
    return slots


# ----------------------------------------------------------- overlap tests

def _interval_hit(sorted_a: np.ndarray, wa: int,
                  b: np.ndarray, wb: int) -> bool:
    """Any ``[a, a+wa)`` interval intersecting any ``[b, b+wb)``?"""
    if not sorted_a.shape[0] or not b.shape[0]:
        return False
    lo = np.searchsorted(sorted_a, b - wa, side="right")
    hi = np.searchsorted(sorted_a, b + wb, side="left")
    return bool((hi > lo).any())


def _overlap_at_distance(wslot: _Slot, rslot: _Slot, k: int, n: int,
                         want_writes_w: bool, want_writes_r: bool) -> bool:
    """Does slot ``wslot`` at iteration ``i`` alias ``rslot`` at ``i+k``?

    ``want_writes_*`` select the write- or read-subset of each slot's
    accesses. Affine x affine pairs are decided exactly for all
    iterations via the base-difference set; anything explicit samples
    the first/last :data:`ITER_SAMPLE` iterations.
    """
    if k >= n:
        return False
    affine = (wslot.base is not None and rslot.base is not None
              and wslot.kind != REC_SCALAR and rslot.kind != REC_SCALAR)
    if affine and (want_writes_w == wslot.is_write
                   and want_writes_r == rslot.is_write):
        a, b = wslot.base, rslot.base
        if a.shape[0] * b.shape[0] <= _DIFF_CAP and a.shape[0]:
            # interval [a+offA[i], +wa) meets [b+offB[i+k], +wb)
            # iff  d + offA[i] - offB[i+k]  in  (-wb, wa),  d = a - b
            d = np.sort((a[:, None] - b[None, :]).ravel())
            delta = (wslot.ioff[:n - k] - rslot.ioff[k:]).astype(np.int64)
            lo = np.searchsorted(d, -rslot.width - delta, side="right")
            hi = np.searchsorted(d, wslot.width - delta, side="left")
            return bool((hi > lo).any())
    iters = range(n - k) if n - k <= 2 * ITER_SAMPLE else \
        list(range(ITER_SAMPLE)) + list(range(n - k - ITER_SAMPLE, n - k))
    for i in iters:
        wa = wslot.iter_addrs(i, want_writes_w)
        ra = rslot.iter_addrs(i + k, want_writes_r)
        if _interval_hit(np.sort(wa), wslot.width, ra, rslot.width):
            return True
    return False


def _union_stream(slot: _Slot, n: int, want_writes: bool) -> np.ndarray:
    """All iterations' addresses of one slot, filtered to reads/writes."""
    if slot.base is not None:
        sub = slot.base
        if slot.kind == REC_SCALAR:
            if slot.writes is None:
                sub = sub if not want_writes else sub[:0]
            else:
                sub = sub[slot.writes] if want_writes else sub[~slot.writes]
        elif want_writes != slot.is_write:
            sub = sub[:0]
        if not sub.shape[0]:
            return sub
        return (slot.ioff[:n, None] + sub).ravel()
    if slot.kind != REC_SCALAR:
        if want_writes != slot.is_write:
            return slot.flat[:0]
        return slot.flat[:int(slot.counts[:n].sum())]
    return np.concatenate(
        [slot.iter_addrs(i, want_writes) for i in range(n)]
        or [np.empty(0, dtype=np.int64)])


def _global_overlap(wslot: _Slot, rslot: _Slot, n: int,
                    want_writes_w: bool, want_writes_r: bool) -> bool:
    """Any aliasing at *any* iteration distance (union of all streams)."""
    wa = np.sort(_union_stream(wslot, n, want_writes_w))
    ra = _union_stream(rslot, n, want_writes_r)
    return _interval_hit(wa, wslot.width, ra, rslot.width)


def _far_overlap(wslot: _Slot, rslot: _Slot, n: int,
                 want_writes_w: bool, want_writes_r: bool) -> bool:
    """Aliasing at any iteration distance *beyond* the proven window.

    A union-of-streams test would be vacuous here: a strip-mined store
    trivially unions-overlaps itself (distance 0), and a union also
    counts negative distances the hazard direction never sees. Instead
    the window distances are probed directly, sampling the head and tail
    of the distance range when it is large — consistent with the
    WARNING severity this feeds.
    """
    ks = range(MAX_DIST + 1, n)
    if len(ks) > 2 * ITER_SAMPLE:
        ks = list(range(MAX_DIST + 1, MAX_DIST + 1 + ITER_SAMPLE)) \
            + list(range(n - ITER_SAMPLE, n))
    return any(_overlap_at_distance(wslot, rslot, k, n,
                                    want_writes_w, want_writes_r)
               for k in ks)


def _materializable(slot: _Slot, n: int) -> bool:
    """Is the union-of-streams check affordable for this slot?"""
    if slot.base is not None:
        return n * slot.base.shape[0] <= _DIFF_CAP
    return slot.flat is None or slot.flat.shape[0] <= _DIFF_CAP


# ----------------------------------------------------------- dep coverage

def _dep_reaches(slots: list[_Slot], src: int, dst: int, dist: int) -> bool:
    """Is there a dep path from slot ``src`` (iter i+dist) back to slot
    ``dst`` (iter i)? ``Dep.local`` edges keep the iteration, ``Dep.prev``
    edges step one back."""
    seen = {(src, 0)}
    frontier = [(src, 0)]
    while frontier:
        t, d = frontier.pop()
        if t == dst and d == dist:
            return True
        s = slots[t]
        if s.dep_mode == _D_LOCAL:
            nxt = (s.dep_slot, d)
        elif s.dep_mode == _D_PREV:
            nxt = (s.dep_slot, d + 1)
        else:
            continue
        if nxt[1] <= dist and nxt not in seen and 0 <= nxt[0] < len(slots):
            seen.add(nxt)
            frontier.append(nxt)
    return False


def _barrier_between(slots: list[_Slot], a: int, b: int, dist: int) -> bool:
    """Does a barrier slot order (slot a, iter i) before (slot b, i+dist)?

    With ``dist >= 1`` any barrier slot sits between the two records in
    program order; within one iteration it must fall strictly between
    the slots.
    """
    barriers = [s.index for s in slots if s.is_barrier]
    if not barriers:
        return False
    if dist >= 1:
        return True
    return any(a < t < b for t in barriers)


def _ordered(slots: list[_Slot], first: int, second: int,
             dist: int) -> bool:
    """Is the (first -> second) pair ordered by a dep path or barrier?"""
    return (_dep_reaches(slots, second, first, dist)
            or _barrier_between(slots, first, second, dist))


# -------------------------------------------------------------- the passes

def _check_deps(slots: list[_Slot], snap: TemplateSnapshot,
                where: str) -> list[Finding]:
    """T004: structurally invalid dep declarations."""
    out = []
    T = len(slots)
    for s in slots:
        loc = f"{where}#slot{s.index}({s.name})"
        if s.dep_mode == _D_NONE:
            continue
        if s.dep_mode in (_D_LOCAL, _D_PREV):
            tgt = s.dep_slot
            if not 0 <= tgt < T:
                out.append(finding(
                    "T004", loc, f"dep slot {tgt} out of range 0..{T - 1}"))
                continue
            if s.dep_mode == _D_LOCAL and tgt >= s.index:
                out.append(finding(
                    "T004", loc,
                    f"local dep on slot {tgt} which is not emitted yet "
                    "in the same iteration"))
                continue
            target = slots[tgt]
            if target.is_barrier or target.kind == REC_SCALAR:
                what = "barrier" if target.is_barrier else "scalar block"
                out.append(finding(
                    "T004", loc,
                    f"dep targets a {what} (slot {tgt}), which produces "
                    "no vector value"))
            if s.dep_mode == _D_PREV and s.dep_first >= snap.start:
                out.append(finding(
                    "T004", loc,
                    f"prev-dep first={s.dep_first} is not an earlier "
                    f"record (template starts at {snap.start})"))
        elif s.dep_mode == _D_ABS:
            if not 0 <= s.dep_first < snap.start:
                out.append(finding(
                    "T004", loc,
                    f"absolute dep {s.dep_first} is not an earlier "
                    f"record (template starts at {snap.start})"))
    return out


_HAZARDS = (
    # (rule, writer-side wants writes, reader-side wants writes, name)
    ("T001", True, False, "RAW"),
    ("T002", False, True, "WAR"),
    ("T003", True, True, "WAW"),
)


def _check_hazards(slots: list[_Slot], snap: TemplateSnapshot,
                   where: str) -> list[Finding]:
    """T001/T002/T003 (+T006): address overlaps not covered by deps."""
    out = []
    n = snap.n_iters
    mem = [s for s in slots if s.is_mem]
    reported: set[tuple[int, int, str]] = set()
    for first in mem:
        for second in mem:
            if not first.is_vector and not second.is_vector:
                continue  # the scalar core is in-order: implicitly ordered
            vector_pair = first.is_vector and second.is_vector
            for rule, w_writes, r_writes, kind in _HAZARDS:
                if w_writes and not first.writes_memory:
                    continue
                if not w_writes and not first.reads_memory:
                    continue
                if r_writes and not second.writes_memory:
                    continue
                if not r_writes and not second.reads_memory:
                    continue
                for k in range(0, MAX_DIST + 1):
                    if k == 0 and second.index <= first.index:
                        continue  # same iteration: program order only
                    if not _overlap_at_distance(first, second, k, n,
                                                w_writes, r_writes):
                        continue
                    pair = (f"{where}#slot{first.index}({first.name})"
                            f"->slot{second.index}({second.name})")
                    if not vector_pair:
                        # deps cannot order the decoupled scalar pipe
                        key = (first.index, second.index, "T006")
                        if (key not in reported
                                and not _barrier_between(
                                    slots, first.index, second.index, k)):
                            reported.add(key)
                            out.append(finding(
                                "T006", pair,
                                f"{kind} aliasing between vector and "
                                f"scalar accesses at iteration distance "
                                f"{k} with no barrier"))
                        break
                    if not _ordered(slots, first.index, second.index, k):
                        at = ("same iteration" if k == 0
                              else f"iteration distance {k}")
                        out.append(finding(
                            rule, pair,
                            f"undeclared {kind} hazard: addresses "
                            f"overlap at {at}"))
                    break  # report the closest distance only
                else:
                    # No overlap within the window: check the far field.
                    # A dep chain covering every window distance contains
                    # a prev-edge cycle, so it extends to any distance —
                    # nothing to warn about then.
                    if (n > MAX_DIST + 1
                            and not _barrier_between(slots, first.index,
                                                     second.index, 1)
                            and not (vector_pair and all(
                                _dep_reaches(slots, second.index,
                                             first.index, k)
                                for k in range(1, MAX_DIST + 1)))
                            and _far_overlap(first, second, n,
                                             w_writes, r_writes)):
                        pair = (f"{where}#slot{first.index}({first.name})"
                                f"->slot{second.index}({second.name})")
                        out.append(finding(
                            rule if vector_pair else "T006", pair,
                            f"{kind} aliasing beyond the {MAX_DIST}-"
                            "iteration dependence window (no barrier in "
                            "the template)",
                            severity=Severity.WARNING))
    return out


def _check_dead_deps(slots: list[_Slot], snap: TemplateSnapshot,
                     where: str) -> list[Finding]:
    """T005: a dep on a *store* that never aliases the depending record.

    Deps on loads/arithmetic are register dataflow (the consumer reads
    the produced vector register) and cannot be judged from addresses;
    a dep on a store can only mean memory ordering, so if the store
    provably never aliases, the edge is dead weight.
    """
    out = []
    n = snap.n_iters
    for s in slots:
        if s.dep_mode not in (_D_LOCAL, _D_PREV):
            continue
        if not 0 <= s.dep_slot < len(slots):
            continue  # T004 already fired
        target = slots[s.dep_slot]
        if not (target.is_vector and target.writes_memory):
            continue
        if not s.is_mem:
            continue  # a non-mem record cannot alias anything
        k = 0 if s.dep_mode == _D_LOCAL else 1
        aliases = (
            _overlap_at_distance(target, s, k, n, True, False)
            or _overlap_at_distance(target, s, k, n, True, True)
            or (_materializable(target, n) and _materializable(s, n)
                and (_global_overlap(target, s, n, True, False)
                     or _global_overlap(target, s, n, True, True))))
        if not aliases:
            out.append(finding(
                "T005", f"{where}#slot{s.index}({s.name})",
                f"dep on store slot {s.dep_slot}({target.name}) covers "
                "no address overlap in any replicated iteration"))
    return out


def analyze_snapshot(snap: TemplateSnapshot,
                     label: str = "template") -> list[Finding]:
    """Run the full hazard analysis on one captured replication."""
    if snap.n_iters == 0 or not snap.scal:
        return []
    where = f"{label}@{snap.start}"
    slots = _unpack(snap)
    out = _check_deps(slots, snap, where)
    out.extend(_check_hazards(slots, snap, where))
    out.extend(_check_dead_deps(slots, snap, where))
    return out


# ------------------------------------------------- columnar trace invariants

#: expected dtype of every TraceColumns field (v2 schema conformance).
_SCHEMA = {
    "kind": np.uint8, "n_alu": np.int64, "mlp": np.int64,
    "mem_bytes": np.int32, "vl": np.int32, "active": np.int32,
    "opclass": np.uint8, "pattern": np.uint8, "is_write": np.uint8,
    "masked": np.uint8, "dep": np.int64, "scalar_dest": np.uint8,
    "opcode_id": np.int32, "label_id": np.int32,
}

_MEM_OPCLASS = OPCLASS_LIST.index(
    next(c for c in OPCLASS_LIST if c.value == "mem"))


def _first_bad(mask: np.ndarray) -> int:
    return int(np.flatnonzero(mask)[0])


def check_trace_buffer(trace: TraceBuffer, label: str = "trace", *,
                       hw_max_vl: int = 256) -> list[Finding]:
    """Validate a trace's columnar form against the schema invariants."""
    out: list[Finding] = []
    c = trace.cols
    n = c.n

    def loc(i: int | None = None) -> str:
        return label if i is None else f"{label}#rec{i}"

    # T103: dtypes, shapes, string table
    for name, dtype in _SCHEMA.items():
        col = getattr(c, name)
        if col.dtype != dtype:
            out.append(finding(
                "T103", loc(),
                f"column '{name}' has dtype {col.dtype}, schema v2 "
                f"requires {np.dtype(dtype)}"))
        if col.shape != (n,):
            out.append(finding(
                "T103", loc(),
                f"column '{name}' has shape {col.shape}, expected ({n},)"))
    if c.addr_off.shape != (n + 1,):
        out.append(finding(
            "T103", loc(),
            f"addr_off has shape {c.addr_off.shape}, expected ({n + 1},)"))
        return out  # arena checks below would be meaningless
    if not c.strings or c.strings[0] != "":
        out.append(finding(
            "T103", loc(), "string table must start with the empty string"))

    # T101/T102: arena offsets
    d = np.diff(c.addr_off)
    if int(c.addr_off[0]) != 0 or bool((d < 0).any()):
        i = 0 if int(c.addr_off[0]) != 0 else _first_bad(d < 0)
        out.append(finding(
            "T101", loc(i),
            "addr_off must start at 0 and be nondecreasing"))
    if int(c.addr_off[-1]) != c.addrs.shape[0]:
        out.append(finding(
            "T102", loc(),
            f"addr_off ends at {int(c.addr_off[-1])} but the arena "
            f"holds {c.addrs.shape[0]} addresses"))
    if c.writes.shape != c.addrs.shape:
        out.append(finding(
            "T102", loc(),
            f"writes arena {c.writes.shape} does not align with the "
            f"address arena {c.addrs.shape}"))
    if n == 0:
        return out

    # T104: enum encodings
    bad = ~np.isin(c.kind, (REC_SCALAR, REC_VECTOR, REC_BARRIER))
    if bad.any():
        i = _first_bad(bad)
        out.append(finding(
            "T104", loc(i), f"unknown record kind {int(c.kind[i])}"))
        return out  # kind-conditional checks below need valid kinds
    vec = c.kind == REC_VECTOR
    bad = vec & (c.opclass >= len(OPCLASS_LIST))
    if bad.any():
        i = _first_bad(bad)
        out.append(finding(
            "T104", loc(i),
            f"vector record with opclass id {int(c.opclass[i])}"))
    bad = ~vec & (c.opclass != NO_ID)
    if bad.any():
        i = _first_bad(bad)
        out.append(finding(
            "T104", loc(i), "non-vector record carries an opclass"))
    is_mem = vec & (c.opclass == _MEM_OPCLASS)
    bad = is_mem & (c.pattern >= len(PATTERN_LIST))
    if bad.any():
        i = _first_bad(bad)
        out.append(finding(
            "T104", loc(i),
            f"MEM record with pattern id {int(c.pattern[i])} "
            "(needs unit/strided/indexed)"))
    bad = ~is_mem & (c.pattern != NO_ID)
    if bad.any():
        i = _first_bad(bad)
        out.append(finding(
            "T104", loc(i), "non-MEM record carries a memory pattern"))
    bad = ~is_mem & vec & (np.diff(c.addr_off) > 0)
    if bad.any():
        i = _first_bad(bad)
        out.append(finding(
            "T104", loc(i), "non-MEM vector record owns arena addresses"))

    # T107: deps point backward
    bad = (c.dep < -1) | (c.dep >= np.arange(n))
    if bad.any():
        i = _first_bad(bad)
        out.append(finding(
            "T107", loc(i),
            f"dep {int(c.dep[i])} does not reference an earlier record"))

    # T105: active <= vl
    bad = vec & (c.active > c.vl)
    if bad.any():
        i = _first_bad(bad)
        out.append(finding(
            "T105", loc(i),
            f"active={int(c.active[i])} exceeds vl={int(c.vl[i])}"))

    # T106: barrier rows neutral
    barrier = c.kind == REC_BARRIER
    bad = barrier & ((c.vl != 0) | (c.active != 0) | (c.dep != -1)
                     | (np.diff(c.addr_off) != 0) | (c.n_alu != 0))
    if bad.any():
        i = _first_bad(bad)
        out.append(finding(
            "T106", loc(i), "barrier row carries non-neutral fields"))

    # T108: vl within what any legal vsetvl could grant
    vl_cap = hw_max_vl * 8 * 8  # SEW 8 with LMUL 8 relative to DP count
    bad = vec & (c.vl > vl_cap)
    if bad.any():
        i = _first_bad(bad)
        out.append(finding(
            "T108", loc(i),
            f"vl={int(c.vl[i])} exceeds the ISA ceiling {vl_cap} "
            f"(hw max VL {hw_max_vl} DP elements)"))
    bad = vec & (c.vl < 0)
    if bad.any():
        i = _first_bad(bad)
        out.append(finding("T108", loc(i), "negative vl"))
    return out
