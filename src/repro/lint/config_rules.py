"""Pass family 3: sweep/config grid legality + trace-cache staleness.

The sweep harness generates expensive traces *before* it times the first
knob point; an illegal grid entry (a bandwidth that does not divide the
64 B line, a non-power-of-two VL) would throw away minutes of trace
generation. :func:`check_sweep` validates the whole grid up front, and
:func:`repro.core.sweeps` calls it before any trace is generated.

:func:`check_trace_cache` audits an on-disk trace-cache directory: cache
entries name the on-disk schema version and the kernel-source
fingerprint they were recorded under, so stale entries (an older schema,
an edited emitter) are detectable without opening a single file.
"""

from __future__ import annotations

import os
import re
from collections.abc import Sequence
from pathlib import Path

from repro.config import SdvConfig
from repro.errors import ReproError
from repro.lint.findings import Finding
from repro.lint.rules import finding
from repro.util.mathx import is_pow2
from repro.util.units import LINE_BYTES

#: the paper's study envelope (beyond it is extrapolation -> C007).
PAPER_MAX_LATENCY = 1024
PAPER_MAX_BANDWIDTH = LINE_BYTES  # 64 B/cycle peak
PAPER_MAX_VL = 256


def _ints(points: Sequence, where: str, rule: str) -> list[Finding]:
    out = []
    for p in points:
        if not isinstance(p, (int,)) or isinstance(p, bool):
            out.append(finding(rule, where,
                               f"point {p!r} is not an integer"))
    return out


def check_latency_axis(points: Sequence[int],
                       where: str = "latency-axis") -> list[Finding]:
    """C001/C006/C007/C008 on a Latency Controller sweep axis."""
    out = _ints(points, where, "C001")
    if out:
        return out
    if not points:
        return [finding("C008", where, "latency axis is empty")]
    for p in points:
        if p < 0:
            out.append(finding("C001", where,
                               f"extra latency {p} is negative"))
        elif p > PAPER_MAX_LATENCY:
            out.append(finding(
                "C007", where,
                f"extra latency {p} beyond the paper's "
                f"0..{PAPER_MAX_LATENCY} study range"))
    out.extend(_tidy(points, where))
    return out


def check_bandwidth_axis(points: Sequence[int],
                         where: str = "bandwidth-axis") -> list[Finding]:
    """C002/C006/C007/C008 on a Bandwidth Limiter sweep axis."""
    out = _ints(points, where, "C002")
    if out:
        return out
    if not points:
        return [finding("C008", where, "bandwidth axis is empty")]
    for p in points:
        if p < 1 or LINE_BYTES % p != 0:
            out.append(finding(
                "C002", where,
                f"bandwidth target {p} B/cycle does not divide the "
                f"{LINE_BYTES} B line (the num/den window cannot "
                "express it)"))
        elif p > PAPER_MAX_BANDWIDTH:
            out.append(finding(
                "C007", where,
                f"bandwidth {p} B/cycle beyond the {PAPER_MAX_BANDWIDTH} "
                "B/cycle peak"))
    out.extend(_tidy(points, where))
    return out


def check_vls(vls: Sequence[int], where: str = "vl-grid") -> list[Finding]:
    """C003/C006/C007/C008 on a VL grid."""
    out = _ints(vls, where, "C003")
    if out:
        return out
    if not vls:
        return [finding("C008", where, "VL grid is empty")]
    for v in vls:
        if v < 1 or not is_pow2(v):
            out.append(finding(
                "C003", where,
                f"VL {v} is not a power of two >= 1 (the max-VL CSR "
                "rejects it)"))
        elif v > PAPER_MAX_VL:
            out.append(finding(
                "C007", where,
                f"VL {v} beyond the paper's {PAPER_MAX_VL}-element "
                "registers"))
    out.extend(_tidy(vls, where))
    return out


def _tidy(points: Sequence[int], where: str) -> list[Finding]:
    out = []
    if len(set(points)) != len(points):
        out.append(finding("C006", where, f"duplicate points in {list(points)}"))
    elif list(points) != sorted(points):
        out.append(finding("C006", where,
                           f"axis {list(points)} is not sorted ascending"))
    return out


def check_config(config: SdvConfig | None,
                 where: str = "config") -> list[Finding]:
    """C004/C005: the hardware build and the limiter window."""
    if config is None:
        config = SdvConfig()
    out: list[Finding] = []
    mem = config.mem
    if mem.bw_num < 1 or mem.bw_den < 1 or mem.bw_num > mem.bw_den:
        out.append(finding(
            "C004", where,
            f"bandwidth fraction {mem.bw_num}/{mem.bw_den} is not a "
            "legal limiter window"))
    try:
        config.validate()
    except ReproError as exc:
        out.append(finding("C005", where, str(exc)))
    return out


def check_sweep(axis: str, points: Sequence[int], vls: Sequence[int],
                config: SdvConfig | None = None,
                where: str = "sweep") -> list[Finding]:
    """Validate one sweep's whole grid before any trace is generated."""
    if axis == "latency":
        out = check_latency_axis(points, f"{where}:latency")
    elif axis == "bandwidth":
        out = check_bandwidth_axis(points, f"{where}:bandwidth")
    else:
        out = [finding("C005", where, f"unknown sweep axis '{axis}'")]
    out.extend(check_vls(vls, f"{where}:vls"))
    out.extend(check_config(config, f"{where}:config"))
    return out


# ------------------------------------------------------ trace-cache audit

#: trace_cache_path() naming scheme (see repro.core.sweeps).
_CACHE_RE = re.compile(
    r"^(?P<kernel>.+)-(?P<impl>scalar|vl\d+)-(?P<wl>[0-9a-f]{16})-"
    r"(?P<geom>[0-9a-f]{12})-t(?P<version>\d+)-"
    r"(?P<src>[0-9a-f]{12}|nosrc)\.npz$")

#: classified_sidecar_path() naming scheme: a cached trace's stem plus
#: the sidecar schema version and the cache-geometry fingerprint.
_SIDECAR_RE = re.compile(
    r"^(?P<stem>.+)\.cls(?P<version>\d+)-(?P<geom>[0-9a-f]{12})\.npz$")


def _check_sidecar(path: Path, m: "re.Match[str]") -> Finding | None:
    """S004: one classified sidecar's staleness verdict (None = fine)."""
    from repro.trace.serialize import CLASSIFIED_FORMAT_VERSION

    version = int(m.group("version"))
    if version != CLASSIFIED_FORMAT_VERSION:
        return finding(
            "S004", str(path),
            f"sidecar uses classified schema v{version}; this build "
            f"writes and reads back v{CLASSIFIED_FORMAT_VERSION}")
    companion = path.with_name(m.group("stem") + ".npz")
    if not companion.exists():
        return finding(
            "S004", str(path),
            f"orphaned sidecar: companion trace '{companion.name}' is "
            "gone")
    try:
        import numpy as np

        with np.load(path) as z:
            embedded = str(z["geometry"])
    except Exception:
        return finding("S004", str(path), "sidecar is unreadable")
    if embedded != m.group("geom"):
        return finding(
            "S004", str(path),
            f"embedded geometry fingerprint {embedded} disagrees with "
            f"the filename's {m.group('geom')}")
    return None


def check_trace_cache(cache_dir: str | os.PathLike,
                      kernels: dict | None = None) -> list[Finding]:
    """S001/S002/S003/S004: audit every entry of a trace-cache directory.

    ``kernels`` maps kernel names to :class:`KernelSpec` (defaults to the
    registry); entries for unknown kernels only get the schema check.
    """
    from repro.core.sweeps import kernel_fingerprint
    from repro.trace.serialize import FORMAT_VERSION

    if kernels is None:
        from repro.kernels import KERNELS
        kernels = KERNELS

    root = Path(cache_dir)
    out: list[Finding] = []
    if not root.is_dir():
        return [finding("S003", str(root),
                        "trace-cache path is not a directory")]
    current: dict[str, str] = {}
    for path in sorted(root.iterdir()):
        if path.is_dir():
            continue
        sm = _SIDECAR_RE.match(path.name)
        if sm is not None:
            bad = _check_sidecar(path, sm)
            if bad is not None:
                out.append(bad)
            continue
        m = _CACHE_RE.match(path.name)
        if m is None:
            out.append(finding(
                "S003", str(path),
                "file does not match the trace-cache naming scheme"))
            continue
        version = int(m.group("version"))
        if version != FORMAT_VERSION:
            out.append(finding(
                "S001", str(path),
                f"entry uses trace schema v{version}; this build writes "
                f"and reads back v{FORMAT_VERSION} keys"))
            continue
        name, src = m.group("kernel"), m.group("src")
        if src == "nosrc" or name not in kernels:
            continue
        if name not in current:
            current[name] = kernel_fingerprint(kernels[name])
        if src != current[name]:
            out.append(finding(
                "S002", str(path),
                f"entry was recorded by '{name}' emitters with "
                f"fingerprint {src}; current source fingerprints as "
                f"{current[name]}"))
    return out
