"""Static verification of trace templates, kernel emitters and sweep configs.

PR 3 made templated trace emission the default: the timing model now
trusts hand-declared :class:`repro.trace.template.Dep` edges and affine
address streams, so an undeclared address overlap or a stale emitter
silently produces wrong cycle counts — exactly the class of bug the
paper's latency/bandwidth claims cannot survive. This package is the
machine-checked safety net:

* :mod:`repro.lint.trace_rules` — the alias/hazard checker: evaluates
  affine and explicit address streams symbolically across replicated
  iterations and proves every cross-iteration RAW/WAR/WAW overlap is
  covered by a declared ``Dep`` (flagging dead declarations), plus
  columnar-invariant checks on sealed :class:`TraceBuffer` contents.
* :mod:`repro.lint.emitter_rules` — AST lint of kernel-emitter source:
  forbids nondeterminism that would poison the kernel-source cache
  fingerprint, requires columnar emission in hot paths, and checks ISA
  legality (VL values, CSR access discipline).
* :mod:`repro.lint.config_rules` — legality of latency/bandwidth knob
  grids and VL grids before any trace is generated, plus trace-cache
  staleness checks.
* :mod:`repro.lint.concurrency_rules` — typestate lint of the
  shared-memory plane and pool lifecycle (attach/detach pairing,
  transfer/adopt handoffs, unlink idempotence, nested fan-out), with a
  suppression audit (:mod:`repro.lint.suppress`).
* :mod:`repro.lint.sanitize` — the runtime counterpart: under
  ``REPRO_SANITIZE=1`` a per-process shadow tracker checks the same
  lifecycle against what actually happened and dumps verdicts that
  ``repro-sdv lint --sanitize-report DIR`` aggregates.

Every pass reports through one findings pipeline
(:mod:`repro.lint.findings`): rule id, severity, location, message and a
fix hint, rendered as text or JSON with a shared exit-code model (exit 1
iff any ERROR finding survives). Run it as ``repro-sdv lint`` or
``python -m repro.lint``; the rule catalog lives in
:mod:`repro.lint.rules` and ``docs/static-analysis.md``.
"""

from repro.lint.findings import Finding, FindingsReport, Severity
from repro.lint.rules import RULES, Rule
from repro.lint.runner import LintOptions, run_lint

__all__ = [
    "Finding",
    "FindingsReport",
    "Severity",
    "Rule",
    "RULES",
    "LintOptions",
    "run_lint",
]
