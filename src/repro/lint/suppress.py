"""Inline-suppression parsing shared by the source-level lint passes.

Both AST passes (:mod:`repro.lint.emitter_rules`,
:mod:`repro.lint.concurrency_rules`) honour the same comment syntax::

    flagged_call()  # repro-lint: disable=E001
    other_call()    # repro-lint: disable=E001,E003
    anything()      # repro-lint: disable=all

A :class:`SuppressionIndex` parses every such comment in a file up
front, answers "is this rule suppressed on this line?" during the pass,
and *remembers which suppressions actually fired*. After the pass,
:meth:`SuppressionIndex.audit` turns the leftovers into findings so
dead suppressions rot visibly instead of silently:

* ``W001`` — the comment names a rule id that is not in the catalog
  (typo'd or removed rules would otherwise suppress nothing forever);
* ``W002`` — the comment is syntactically valid but no finding on that
  line was suppressed this run (the code was fixed, the comment stayed).
"""

from __future__ import annotations

import re

from repro.lint.findings import Finding
from repro.lint.rules import RULES, finding

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+|all)")

#: sentinel spec for ``disable=all``.
_ALL = frozenset({"all"})


class SuppressionIndex:
    """All ``# repro-lint: disable=`` comments of one file, with usage
    tracking for the stale-suppression audit."""

    def __init__(self, path: str, lines: list[str]) -> None:
        self.path = path
        #: lineno -> rule-id set (or the ``all`` sentinel)
        self._by_line: dict[int, frozenset[str]] = {}
        for i, line in enumerate(lines, start=1):
            m = _SUPPRESS_RE.search(line)
            if m is None:
                continue
            spec = m.group(1).strip()
            if spec == "all":
                self._by_line[i] = _ALL
            else:
                self._by_line[i] = frozenset(
                    r.strip() for r in spec.split(",") if r.strip())
        self._used: set[int] = set()

    def suppresses(self, lineno: int, rule: str) -> bool:
        """True iff ``rule`` is disabled on ``lineno`` (and record that
        the suppression earned its keep)."""
        spec = self._by_line.get(lineno)
        if spec is None:
            return False
        if spec is _ALL or rule in spec:
            self._used.add(lineno)
            return True
        return False

    def audit(self) -> list[Finding]:
        """W001/W002 findings for the suppressions that deserve them."""
        out: list[Finding] = []
        for lineno in sorted(self._by_line):
            spec = self._by_line[lineno]
            loc = f"{self.path}:{lineno}"
            if spec is not _ALL:
                for rule in sorted(spec):
                    if rule not in RULES:
                        out.append(finding(
                            "W001", loc,
                            f"suppression names unknown rule '{rule}'"))
            if lineno not in self._used:
                out.append(finding(
                    "W002", loc,
                    "stale suppression: no finding on this line was "
                    "suppressed" if spec is _ALL else
                    "stale suppression: "
                    f"{', '.join(sorted(spec))} did not fire on this "
                    "line"))
        return out
