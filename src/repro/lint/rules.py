"""The rule catalog: one entry per diagnosable problem.

Rule ids are stable and grouped by pass family:

* ``T0xx`` — template hazard analysis (dep coverage of address overlaps);
* ``T1xx`` — columnar invariants of sealed :class:`TraceBuffer` contents;
* ``E0xx`` — AST lint of kernel-emitter source;
* ``C0xx`` — sweep/config grid legality;
* ``S0xx`` — trace-cache staleness;
* ``O0xx`` — exported-artifact validation (``repro.obs.check``);
* ``P1xx`` — static concurrency/resource-lifecycle typestate analysis
  of the shared-memory plane and pool consumers;
* ``R1xx`` — runtime sanitizer findings (``REPRO_SANITIZE=1`` shadow
  tracking of segment lifecycles and pool batches);
* ``W0xx`` — lint hygiene (suppression audit, missing sanitizer dumps).

``docs/static-analysis.md`` is the prose catalog; this module is the
machine-readable one (``repro-sdv lint --list-rules`` prints it). Each
rule carries its *default* severity — passes may not raise it, and the
``--ignore`` flag (or, for ``E``-family source rules, an inline
``# repro-lint: disable=RULE`` comment) suppresses it entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lint.findings import Finding, Severity


@dataclass(frozen=True)
class Rule:
    """Catalog entry: stable id, default severity, and what it means."""

    id: str
    severity: Severity
    title: str
    description: str = ""
    hint: str = ""

    def finding(self, location: str, message: str,
                hint: str | None = None,
                severity: Severity | None = None) -> Finding:
        """Build a finding for this rule (catalog defaults filled in)."""
        return Finding(
            rule=self.id,
            severity=self.severity if severity is None else severity,
            location=location,
            message=message,
            hint=self.hint if hint is None else hint,
        )


_E, _W, _I = Severity.ERROR, Severity.WARNING, Severity.INFO

_ALL_RULES = (
    # ---- template hazard analysis (T0xx) --------------------------------
    Rule("T001", _E, "undeclared RAW hazard",
         "a template store's addresses overlap a later load with no Dep "
         "path or barrier ordering the pair",
         "declare Dep.local/Dep.prev on the reader, or separate the "
         "records with a barrier"),
    Rule("T002", _E, "undeclared WAR hazard",
         "a template store overwrites addresses an earlier load reads, "
         "with no Dep path or barrier ordering the pair",
         "order the store after the load with a Dep, or add a barrier"),
    Rule("T003", _E, "undeclared WAW hazard",
         "two template stores touch the same addresses with no Dep path "
         "or barrier ordering the pair",
         "chain the stores with a Dep, or add a barrier"),
    Rule("T004", _E, "invalid dep declaration",
         "a Dep references a slot that cannot order anything: itself, a "
         "later slot of the same iteration, a barrier, or an "
         "out-of-range index",
         "point the Dep at an earlier value-producing record"),
    Rule("T005", _W, "dead dep declaration",
         "a Dep targets a store whose addresses never overlap the "
         "depending record across any replicated iteration — the edge "
         "serializes the pipeline for no reason",
         "drop the Dep, or fix the address stream it was meant to cover"),
    Rule("T006", _W, "unordered vector/scalar aliasing",
         "a vector store and a scalar access touch the same addresses "
         "with no barrier between them — the decoupled VPU gives no "
         "ordering across the two pipelines",
         "separate the accesses with a barrier record"),
    # ---- columnar trace invariants (T1xx) -------------------------------
    Rule("T101", _E, "address-arena offsets not monotone",
         "addr_off must be a nondecreasing prefix-sum starting at 0",
         "rebuild the trace; a custom extend_columns batch is corrupt"),
    Rule("T102", _E, "address-arena bounds mismatch",
         "addr_off's final entry must equal the arena length, and the "
         "writes arena must align with it",
         "rebuild the trace; arena and offsets disagree"),
    Rule("T103", _E, "column schema violation",
         "a trace column has the wrong dtype, shape, or the string "
         "table does not start with the empty string (v2 schema)",
         "emit through TraceBuffer, do not hand-build columns"),
    Rule("T104", _E, "invalid enum encoding",
         "kind/opclass/pattern holds a value outside its encoding, or a "
         "MEM record lacks a pattern / a non-MEM record carries one",
         "use the REC_*/OPCLASS_ID/PATTERN_ID encodings"),
    Rule("T105", _E, "active exceeds vl",
         "a vector record claims more active (unmasked) elements than "
         "its vector length",
         "active must be <= vl (and equals vl when unmasked)"),
    Rule("T106", _E, "non-neutral barrier row",
         "a barrier row must hold the neutral column values (vl 0, no "
         "addresses, no dep)",
         "emit barriers via emit_barrier/Barrier only"),
    Rule("T107", _E, "forward or self dependency",
         "dep must reference an earlier record (or -1)",
         "records can only depend on already-emitted records"),
    Rule("T108", _E, "vector length out of ISA range",
         "a record's vl exceeds what any legal vsetvl could grant "
         "(max_vl * 8 at the smallest SEW, LMUL 8)",
         "check the emitter's vsetvl arithmetic"),
    # ---- emitter AST lint (E0xx) ----------------------------------------
    Rule("E000", _E, "unparseable emitter source",
         "the file cannot be parsed as Python, so no emitter rule can "
         "be checked", ""),
    Rule("E001", _E, "wall-clock call in emitter",
         "emitters must be deterministic: wall-clock reads make the "
         "recorded trace differ run-to-run while the kernel-source "
         "cache fingerprint stays the same",
         "derive everything from the workload and the seed"),
    Rule("E002", _E, "unseeded randomness in emitter",
         "unseeded RNGs poison the trace-cache fingerprint: the source "
         "hash stays fixed while the recorded trace varies",
         "thread a seeded numpy Generator through the workload"),
    Rule("E003", _W, "object-path emission in a hot loop",
         "trace.append(...) inside a loop pays a validated dataclass "
         "round-trip per record",
         "use emit_vector/emit_scalar_block/emit_barrier or a "
         "TraceTemplate"),
    Rule("E004", _E, "illegal VL literal",
         "max-VL values must be powers of two in [1, 256] DP elements "
         "(the paper's FPGA-SDV envelope is {8..256})",
         "pick a power of two within the machine envelope"),
    Rule("E005", _E, "CSR state written outside isa/csr.py",
         "CSR state may only change through the CsrFile API so the "
         "custom max-VL CSR semantics stay in one place",
         "call vsetvl()/write_max_vl()/write() instead"),
    Rule("E006", _W, "CSR address literal outside isa/csr.py",
         "raw CSR addresses duplicated outside isa/csr.py drift when "
         "the CSR map changes",
         "import CSR_VL/CSR_VTYPE/CSR_MAXVL/CSR_CYCLE from "
         "repro.isa.csr"),
    # ---- sweep/config legality (C0xx) -----------------------------------
    Rule("C001", _E, "illegal latency point",
         "Latency Controller points must be non-negative integers",
         "the paper sweeps 0..1024 extra cycles"),
    Rule("C002", _E, "illegal bandwidth point",
         "Bandwidth Limiter points must be positive divisors of the "
         "64 B line (num/den windows admit 64/den B per cycle)",
         "use a power of two in 1..64 B/cycle"),
    Rule("C003", _E, "illegal VL grid entry",
         "VLs must be powers of two >= 1 (the machine CSR rejects "
         "anything else)",
         "the paper evaluates {8, 16, 32, 64, 128, 256}"),
    Rule("C004", _E, "invalid bandwidth fraction",
         "the limiter window needs num >= 1, den >= 1 and num <= den "
         "(peak is 1 line/cycle = 64 B/cycle)", ""),
    Rule("C005", _E, "invalid SoC configuration",
         "SdvConfig.validate() rejected the hardware build", ""),
    Rule("C006", _W, "untidy sweep axis",
         "duplicate or unsorted points make figure output misleading",
         "sort the axis ascending and deduplicate"),
    Rule("C007", _W, "point outside the paper envelope",
         "the value is legal but beyond what the paper's study covers "
         "(latency <= 1024, bandwidth <= 64 B/cycle, VL <= 256)",
         "results there are extrapolation, not reproduction"),
    Rule("C008", _E, "empty sweep grid",
         "a sweep needs at least one point and one VL", ""),
    # ---- trace-cache staleness (S0xx) -----------------------------------
    Rule("S001", _E, "stale trace-cache schema",
         "a cache entry was written by a different on-disk trace "
         "format version and will never be loaded",
         "delete the entry (or the whole cache directory)"),
    Rule("S002", _E, "stale trace-cache fingerprint",
         "a cache entry's kernel-source fingerprint no longer matches "
         "the current emitters — the trace is from edited code",
         "delete the entry; it is dead weight and a confusion hazard"),
    Rule("S003", _W, "unrecognized trace-cache entry",
         "a file in the cache directory does not match the cache "
         "naming scheme",
         "only trace_cache_path-named .npz files belong there"),
    Rule("S004", _W, "stale classified sidecar",
         "a classified sidecar is orphaned (its companion trace file is "
         "gone), from an older sidecar schema, or its embedded cache-"
         "geometry fingerprint disagrees with its name — it will never "
         "be loaded",
         "delete the sidecar; reloads fall back to reclassification"),
    # ---- exported artifacts (O0xx) --------------------------------------
    Rule("O001", _E, "unrecognized artifact",
         "the file is neither a run manifest nor a trace_event dump",
         "emit artifacts via --emit-json/--emit-trace"),
    Rule("O002", _E, "manifest schema violation",
         "the run manifest fails repro.manifest/1 validation (missing "
         "keys, bad types, or buckets not summing to cycles)", ""),
    Rule("O003", _E, "trace-event schema violation",
         "the trace_event dump fails structural validation", ""),
    Rule("O004", _E, "unreadable artifact",
         "the file cannot be read or parsed as JSON", ""),
    Rule("O005", _E, "run-log schema violation",
         "the JSONL run log fails repro.runlog/1 validation (bad header, "
         "record-count mismatch, trace-id drift, or out-of-order records)",
         "emit run logs via --emit-runlog"),
    Rule("O006", _E, "perf-ledger schema violation",
         "a ledger record fails repro.ledger/1 validation (missing keys, "
         "bad types, or an unsupported schema tag)",
         "append records via repro.obs.ledger.append_record"),
    Rule("O007", _E, "dashboard contract violation",
         "the HTML dashboard is missing its repro.dash/1 marker, is "
         "truncated, or references external resources (must be "
         "self-contained)",
         "regenerate it with repro-sdv dash"),
    # ---- static concurrency typestate analysis (P1xx) -------------------
    Rule("P100", _E, "unparseable source in concurrency pass",
         "the file cannot be parsed as Python, so no lifecycle rule can "
         "be checked", ""),
    Rule("P101", _E, "shm attach without guaranteed detach",
         "an attach_trace/attach_bytes result is not paired with a "
         "detach in a try/finally of the same block — an exception "
         "between the two pins the mapping (and its refcount) for the "
         "life of the process",
         "use plane.attached_trace/attached_bytes as a context manager, "
         "or detach in a finally block"),
    Rule("P102", _E, "use after release/detach",
         "a value attached out of a plane segment is used after the "
         "statement that released or detached its ref in the same "
         "block — the mapping behind the views may be closed",
         "move the use before the release, or re-attach"),
    Rule("P103", _E, "double unlink",
         "the same segment is unlinked (or released) twice in one "
         "block — the second call relies on EAFP error swallowing and "
         "hides real lifecycle bugs",
         "unlink once; release() and _raw_unlink() are idempotent but "
         "a literal duplicate is always a mistake"),
    Rule("P104", _E, "ownership handoff skips adopt",
         "a pool fan-out runs a worker that publishes transfer=True "
         "segments, but the dispatching function never adopts a ref — "
         "nobody ever unlinks the handed-off segments",
         "adopt each returned ref in the parent (see "
         "_sweep_sharded._adopt) before releasing it"),
    Rule("P105", _E, "pool submission from a worker context",
         "a function that runs as a pool task itself calls run_tasks "
         "or submits to an executor — nested pools deadlock the "
         "persistent-pool model (and .submit outside core/parallel.py "
         "bypasses its rebuild/fallback protocol)",
         "fan out only from the sweep parent via run_tasks"),
    Rule("P106", _W, "runlog span/context not used as a context manager",
         "a tracer.span()/runlog.context() call is not the context "
         "expression of a with statement, so its exit never runs and "
         "every later event nests under a dangling span",
         "wrap the call in a with statement"),
    # ---- runtime sanitizer (R1xx) ---------------------------------------
    Rule("R101", _E, "leaked shared-memory segment",
         "a segment this process owned (published or adopted) was never "
         "unlinked by exit time, or exit cleanup had to reclaim "
         "segments under this process's own prefix — a release path "
         "was skipped",
         "release every ref in a finally block; transfer publishes "
         "must be adopted by the parent"),
    Rule("R102", _E, "segment refcount imbalance",
         "a process attached a segment more times than it detached it "
         "(and never settled the segment by unlinking it) — the "
         "mapping is pinned and the LRU cache cannot evict it",
         "pair every attach with a detach (attached_trace/"
         "attached_bytes context managers do this)"),
    Rule("R103", _E, "double unlink attempt at runtime",
         "this process tried to unlink a segment name it had already "
         "unlinked — the first call's bookkeeping was bypassed or a "
         "cleanup path ran twice",
         "route unlinks through release()/unlink_all(); the "
         "already-released fast path absorbs the duplicate but the "
         "caller is buggy"),
    Rule("R104", _E, "release from a process that never attached",
         "release() was called for a segment this process never "
         "published, attached or adopted — the ref crossed a process "
         "boundary without its lifecycle",
         "only release refs this process obtained via publish/attach/"
         "adopt"),
    Rule("R105", _E, "dangling pool futures",
         "a pool batch finished with fewer completed futures than "
         "submitted tasks (or was still open at exit) without a broken-"
         "pool error — results were silently dropped",
         "drain every future via as_completed before returning"),
    Rule("R106", _E, "pool reused from a foreign process",
         "a forked process submitted work to a pool its parent "
         "created — the two processes race on one task queue and the "
         "child can consume the parent's results",
         "call run_tasks only from the process that owns the pool "
         "(workers must never fan out)"),
    # ---- lint hygiene (W0xx) --------------------------------------------
    Rule("W001", _W, "suppression names unknown rule",
         "a # repro-lint: disable= comment lists a rule id that is not "
         "in the catalog, so it suppresses nothing",
         "fix the typo or drop the id"),
    Rule("W002", _W, "stale suppression",
         "a # repro-lint: disable= comment suppressed nothing this "
         "run — the finding it once silenced is gone",
         "delete the comment (or re-check the rule id)"),
    Rule("W003", _W, "no sanitizer dumps found",
         "--sanitize-report pointed at a directory with no "
         "sanitize-*.json dumps — the sanitized run probably never "
         "executed (or REPRO_SANITIZE_DIR pointed elsewhere)",
         "run the workload with REPRO_SANITIZE=1 and "
         "REPRO_SANITIZE_DIR set to this directory"),
)

#: rule id -> catalog entry, in catalog order.
RULES: dict[str, Rule] = {r.id: r for r in _ALL_RULES}


def get_rule(rule_id: str) -> Rule:
    try:
        return RULES[rule_id]
    except KeyError:
        raise KeyError(f"unknown lint rule '{rule_id}'") from None


def finding(rule_id: str, location: str, message: str,
            hint: str | None = None,
            severity: Severity | None = None) -> Finding:
    """Shorthand: build a finding from a catalog rule id."""
    return get_rule(rule_id).finding(location, message, hint=hint,
                                     severity=severity)


def render_catalog() -> str:
    """The ``--list-rules`` table."""
    lines = [f"{r.id}  {r.severity.name:<7} {r.title}" for r in _ALL_RULES]
    return "\n".join(lines)
