"""Pass family 2: AST lint of kernel-emitter (and ISA-context) source.

The trace cache keys on a *source fingerprint* of the emitters
(:func:`repro.core.sweeps.kernel_fingerprint`): two runs of unchanged
source are assumed to record the same trace. Anything nondeterministic
breaks that contract silently — the fingerprint stays fixed while the
recorded trace varies — so wall-clock reads (E001) and unseeded
randomness (E002) are errors in emitter code. The remaining rules keep
the hot paths columnar (E003) and the ISA usage legal: max-VL literals
must be powers of two within the machine envelope (E004), and CSR state
may only change through the :mod:`repro.isa.csr` API (E005/E006).

Suppression: append ``# repro-lint: disable=E001`` (comma-separated rule
ids, or ``disable=all``) to the flagged line.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.findings import Finding
from repro.lint.rules import finding
from repro.lint.suppress import SuppressionIndex
from repro.util.mathx import is_pow2

#: dotted call names that read the wall clock (E001).
_WALLCLOCK = {
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "datetime.now", "datetime.utcnow",
    "datetime.datetime.now", "datetime.datetime.utcnow",
}

#: dotted call names that are nondeterministic RNG draws (E002).
_UNSEEDED = {
    "random.random", "random.randint", "random.randrange",
    "random.choice", "random.shuffle", "random.sample", "random.uniform",
    "random.gauss", "np.random.rand", "np.random.randn",
    "np.random.randint", "np.random.random", "np.random.choice",
    "np.random.permutation", "np.random.shuffle", "np.random.uniform",
    "numpy.random.rand", "numpy.random.randn", "numpy.random.randint",
    "numpy.random.random", "numpy.random.choice",
    "numpy.random.permutation", "numpy.random.shuffle",
    "numpy.random.uniform", "os.urandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.randbelow",
}

#: RNG constructors that are fine *with* a seed argument, flagged bare.
_SEEDABLE = {"np.random.default_rng", "numpy.random.default_rng",
             "np.random.RandomState", "numpy.random.RandomState",
             "random.Random"}

#: call names/kwargs whose integer literal must be a legal max-VL (E004).
_VL_CALLEES = {"CsrFile", "write_max_vl", "with_max_vl"}
_VL_KWARGS = {"max_vl", "hw_max_vl"}
_VL_RANGE = (1, 256)

#: private CSR state only isa/csr.py may assign (E005).
_CSR_STATE = {"_vl", "_max_vl", "_hw_max_vl", "_sew", "_lmul"}

#: the CSR address map (E006: these literals belong to isa/csr.py).
_CSR_ADDRS = {0xC20, 0xC21, 0x7C0, 0xC00}

def _dotted(node: ast.expr) -> str:
    """Best-effort dotted name of a call target ('np.random.rand')."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


class _EmitterVisitor(ast.NodeVisitor):
    def __init__(self, path: str, lines: list[str], *,
                 in_isa_csr: bool, hot_path_rules: bool,
                 sup: SuppressionIndex | None = None) -> None:
        self.path = path
        self.lines = lines
        self.in_isa_csr = in_isa_csr
        self.hot_path_rules = hot_path_rules
        self.sup = sup if sup is not None else SuppressionIndex(path, lines)
        self.loop_depth = 0
        self.findings: list[Finding] = []

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        if self.sup.suppresses(node.lineno, rule):
            return
        self.findings.append(
            finding(rule, f"{self.path}:{node.lineno}", message))

    # ------------------------------------------------------------- loops

    def visit_For(self, node: ast.For) -> None:
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    # ------------------------------------------------------------- calls

    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        tail2 = ".".join(name.split(".")[-2:])
        if name in _WALLCLOCK or tail2 in _WALLCLOCK:
            self._report("E001", node,
                         f"wall-clock call {name}() in emitter code")
        elif name in _UNSEEDED or tail2 in _UNSEEDED:
            self._report("E002", node,
                         f"nondeterministic RNG call {name}()")
        elif (name in _SEEDABLE or tail2 in _SEEDABLE) and not node.args \
                and not node.keywords:
            self._report("E002", node,
                         f"{name}() constructed without a seed")

        leaf = name.split(".")[-1]
        if leaf in _VL_CALLEES:
            for arg in node.args:
                self._check_vl_literal(arg)
        for kw in node.keywords:
            if kw.arg in _VL_KWARGS:
                self._check_vl_literal(kw.value)

        if (self.hot_path_rules and self.loop_depth > 0
                and leaf == "append"
                and isinstance(node.func, ast.Attribute)):
            target = _dotted(node.func.value)
            if target == "trace" or target.endswith(".trace"):
                self._report(
                    "E003", node,
                    "trace.append(...) inside a loop; use the columnar "
                    "emit_* calls or a TraceTemplate")
        self.generic_visit(node)

    def _check_vl_literal(self, node: ast.expr) -> None:
        if not (isinstance(node, ast.Constant)
                and isinstance(node.value, int)
                and not isinstance(node.value, bool)):
            return
        v = node.value
        lo, hi = _VL_RANGE
        if not (lo <= v <= hi and is_pow2(v)):
            self._report(
                "E004", node,
                f"max-VL literal {v} is not a power of two in "
                f"[{lo}, {hi}] DP elements")

    # ------------------------------------------------------- assignments

    def _check_target(self, target: ast.expr) -> None:
        if self.in_isa_csr:
            return
        if isinstance(target, ast.Attribute) and target.attr in _CSR_STATE:
            self._report(
                "E005", target,
                f"assignment to CSR state '.{target.attr}' outside "
                "isa/csr.py")

    def visit_Assign(self, node: ast.Assign) -> None:
        for t in node.targets:
            self._check_target(t)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    # ---------------------------------------------------------- literals

    def visit_Constant(self, node: ast.Constant) -> None:
        if (not self.in_isa_csr and isinstance(node.value, int)
                and not isinstance(node.value, bool)
                and node.value in _CSR_ADDRS):
            # only hex spellings: decimal coincidences (3104 = 0xC20)
            # would be far too noisy on address arithmetic
            seg = ""
            if 1 <= node.lineno <= len(self.lines):
                line = self.lines[node.lineno - 1]
                seg = line[node.col_offset:getattr(node, "end_col_offset",
                                                   len(line))]
            if seg.lower().startswith("0x"):
                self._report(
                    "E006", node,
                    f"raw CSR address {seg} duplicated outside isa/csr.py")


def lint_source(path: str | Path, text: str | None = None, *,
                hot_path_rules: bool | None = None) -> list[Finding]:
    """Lint one Python source file; returns its findings.

    ``hot_path_rules`` controls E003 (object-path emission in loops); by
    default it applies to kernel emitters only — the ISA contexts keep a
    validated object fallback path by design.
    """
    p = Path(path)
    if text is None:
        text = p.read_text(encoding="utf-8")
    posix = p.as_posix()
    if hot_path_rules is None:
        hot_path_rules = "/kernels/" in posix
    try:
        tree = ast.parse(text, filename=str(p))
    except SyntaxError as exc:
        return [finding("E000", f"{posix}:{exc.lineno or 0}",
                        f"unparseable source: {exc.msg}")]
    visitor = _EmitterVisitor(
        posix, text.splitlines(),
        in_isa_csr=posix.endswith("isa/csr.py"),
        hot_path_rules=hot_path_rules,
    )
    visitor.visit(tree)
    # unknown-rule / never-fired suppressions rot visibly (W001/W002)
    visitor.findings.extend(visitor.sup.audit())
    return visitor.findings


def default_emitter_paths(root: str | Path | None = None) -> list[Path]:
    """The sources the emitter pass covers: kernels + ISA contexts."""
    if root is None:
        root = Path(__file__).resolve().parents[1]  # src/repro
    root = Path(root)
    paths = sorted((root / "kernels").rglob("*.py"))
    paths += sorted((root / "isa").glob("*.py"))
    return paths


def lint_paths(paths=None) -> list[Finding]:
    """Run the emitter pass over ``paths`` (default: kernels + isa)."""
    out: list[Finding] = []
    for p in (default_emitter_paths() if paths is None else paths):
        out.extend(lint_source(p))
    return out
