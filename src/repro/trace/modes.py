"""Process-wide trace-generation mode toggles.

Three generation paths produce byte-identical record streams:

* **object** — ISA contexts build one validated dataclass per record and
  ``append`` it (the original reference path; slowest).
* **columnar** — ISA contexts call the buffer's validation-free fast
  emitters directly (default when templating is off).
* **templated** — strip-mined kernel loops record one iteration through
  :class:`repro.trace.template.TraceTemplate` and replicate it vectorized
  (the default).

The benchmarks and the equality-grid tests flip these switches to compare
the paths; everything else should leave them at the defaults.
"""

from __future__ import annotations

from contextlib import contextmanager

_OBJECT_EMIT = False
_TEMPLATING = True


def set_object_emission(enabled: bool) -> None:
    global _OBJECT_EMIT
    _OBJECT_EMIT = bool(enabled)


def object_emission_enabled() -> bool:
    return _OBJECT_EMIT


def set_templating(enabled: bool) -> None:
    global _TEMPLATING
    _TEMPLATING = bool(enabled)


def templating_enabled() -> bool:
    return _TEMPLATING and not _OBJECT_EMIT


@contextmanager
def object_emission(enabled: bool = True):
    prev = _OBJECT_EMIT
    set_object_emission(enabled)
    try:
        yield
    finally:
        set_object_emission(prev)


@contextmanager
def templating(enabled: bool = True):
    prev = _TEMPLATING
    set_templating(enabled)
    try:
        yield
    finally:
        set_templating(prev)
