"""Trace record types and the columnar (SoA) trace buffer.

Three kinds of record, in strict program order:

* :class:`ScalarBlock` — a straight-line run of scalar instructions,
  described by an ALU-op count plus columnar memory address/write arrays.
  Kernels emit *large* blocks (often an entire loop nest) whose address
  streams are computed vectorized with NumPy; ``mlp_hint`` tells the timing
  model how many of the block's misses are mutually independent (e.g. 1 for
  pointer chasing, "unbounded" for independent stream gathers).
* :class:`VectorInstr` — one RVV instruction: op class, element count (the
  VL it executed with), and, for memory ops, the per-element addresses.
* :class:`Barrier` — a synchronization point (e.g. between BFS levels or
  FFT stages): the VPU must drain before the next record starts.

Storage is structure-of-arrays: :class:`TraceBuffer` keeps one growable
column per record field (kind/opclass/pattern/vl/dep/...), a single pooled
address arena with per-record offsets, and an intern table for opcode/label
strings. Consumers that walk the whole trace (``memory/classify``,
``engine/lower``, serialization) read the columns zero-copy via
:attr:`TraceBuffer.cols`; the record dataclasses remain as a thin row view
(``trace[i]`` / iteration) for tests and debugging, materialized on demand.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import TraceError


class VOpClass(enum.Enum):
    """Timing class of a vector instruction."""

    ARITH = "arith"            # add/mul/fma/logic/shift, fully lane-pipelined
    ARITH_HEAVY = "heavy"      # div/sqrt: long-latency iterative unit
    MEM = "mem"                # any vector load/store (pattern field applies)
    PERMUTE = "permute"        # vrgather/vcompress/slide: cross-lane network
    REDUCE = "reduce"          # vredsum & friends: lane tree + scalar drain
    MASK = "mask"              # mask-register ops (vmseq result ops, viota...)
    CSR = "csr"                # vsetvl and CSR reads/writes


class VMemPattern(enum.Enum):
    """Address pattern of a vector memory instruction."""

    UNIT = "unit"          # vle/vse: consecutive elements
    STRIDED = "strided"    # vlse/vsse: constant stride
    INDEXED = "indexed"    # vlxe/vsxe: gather/scatter


#: mlp_hint value meaning "misses in this block are all independent";
#: the core's MSHR count becomes the only parallelism bound.
MLP_UNBOUNDED: int = 1 << 30

# ---------------------------------------------------------------- encodings

#: record-kind codes in the ``kind`` column (also the on-disk encoding)
REC_SCALAR: int = 0
REC_VECTOR: int = 1
REC_BARRIER: int = 2

OPCLASS_LIST: list[VOpClass] = list(VOpClass)
OPCLASS_ID: dict[VOpClass, int] = {c: i for i, c in enumerate(VOpClass)}
PATTERN_LIST: list[VMemPattern] = list(VMemPattern)
PATTERN_ID: dict[VMemPattern, int] = {p: i for i, p in enumerate(VMemPattern)}

#: sentinel for "no opclass/pattern" in the uint8 columns
NO_ID: int = 255


@dataclass
class ScalarBlock:
    """A run of scalar instructions with a columnar memory-access stream."""

    n_alu_ops: int
    mem_addrs: np.ndarray          # int64 byte addresses, program order
    mem_is_write: np.ndarray       # bool, aligned with mem_addrs
    mem_bytes: int = 8             # access granularity (8 = double/word64)
    mlp_hint: int = MLP_UNBOUNDED
    label: str = ""

    def __post_init__(self) -> None:
        self.mem_addrs = np.ascontiguousarray(self.mem_addrs, dtype=np.int64)
        self.mem_is_write = np.ascontiguousarray(self.mem_is_write, dtype=bool)
        if self.mem_addrs.shape != self.mem_is_write.shape:
            raise TraceError(
                f"block '{self.label}': addrs {self.mem_addrs.shape} vs "
                f"writes {self.mem_is_write.shape}"
            )
        if self.n_alu_ops < 0:
            raise TraceError(f"block '{self.label}': negative n_alu_ops")
        if self.mlp_hint < 1:
            raise TraceError(f"block '{self.label}': mlp_hint must be >= 1")

    @property
    def n_mem_ops(self) -> int:
        return int(self.mem_addrs.shape[0])

    @property
    def n_insns(self) -> int:
        """Total dynamic instruction estimate for the block."""
        return self.n_alu_ops + self.n_mem_ops


@dataclass
class VectorInstr:
    """One dynamic RVV instruction."""

    op: VOpClass
    vl: int
    opcode: str = ""                      # mnemonic, for reports/debug
    pattern: VMemPattern | None = None    # memory ops only
    addrs: np.ndarray | None = None       # element byte addresses (memory ops)
    is_write: bool = False
    elem_bytes: int = 8
    masked: bool = False
    #: number of active (unmasked) elements; defaults to vl
    active: int | None = None
    #: trace-record index of the most recent instruction this one reads a
    #: vector operand from (-1 = no vector dependency). Engines use this for
    #: RAW hazards and chaining.
    dep: int = -1
    #: True when the instruction writes a *scalar* destination (vpopc,
    #: vfirst, reductions): the scalar core must wait for it.
    scalar_dest: bool = False

    def __post_init__(self) -> None:
        if self.vl < 0:
            raise TraceError(f"{self.opcode}: negative vl")
        if self.op is VOpClass.MEM:
            if self.pattern is None or self.addrs is None:
                raise TraceError(f"{self.opcode}: MEM instr needs pattern+addrs")
            self.addrs = np.ascontiguousarray(self.addrs, dtype=np.int64)
            if self.addrs.shape[0] != (self.active if self.active is not None
                                       else self.vl):
                raise TraceError(
                    f"{self.opcode}: {self.addrs.shape[0]} addresses for "
                    f"vl={self.vl} active={self.active}"
                )
        elif self.addrs is not None:
            raise TraceError(f"{self.opcode}: non-MEM instr carries addresses")
        if self.active is None:
            self.active = self.vl

    @property
    def is_mem(self) -> bool:
        return self.op is VOpClass.MEM


@dataclass
class Barrier:
    """Full synchronization: VPU drains, scalar core waits."""

    label: str = ""


Record = ScalarBlock | VectorInstr | Barrier


@dataclass
class TraceColumns:
    """Zero-copy columnar view of a trace (one entry per record).

    ``addrs``/``writes`` are the pooled access arena; record ``i`` owns the
    arena span ``addr_off[i]:addr_off[i+1]``. ``opcode_id``/``label_id``
    index ``strings`` (id 0 is always the empty string). Vector-only
    columns hold their neutral value (``vl=0``, ``opclass=NO_ID``, ...) on
    scalar/barrier rows; ``mem_bytes`` doubles as ``elem_bytes`` on vector
    rows.
    """

    kind: np.ndarray          # uint8, REC_*
    n_alu: np.ndarray         # int64
    mlp: np.ndarray           # int64
    mem_bytes: np.ndarray     # int32
    vl: np.ndarray            # int32
    active: np.ndarray        # int32
    opclass: np.ndarray       # uint8, OPCLASS_ID or NO_ID
    pattern: np.ndarray       # uint8, PATTERN_ID or NO_ID
    is_write: np.ndarray      # uint8
    masked: np.ndarray        # uint8
    dep: np.ndarray           # int64, absolute record index or -1
    scalar_dest: np.ndarray   # uint8
    addr_off: np.ndarray      # int64, (n+1,) prefix offsets into the arena
    addrs: np.ndarray         # int64 arena
    writes: np.ndarray        # bool arena
    opcode_id: np.ndarray     # int32 into strings
    label_id: np.ndarray      # int32 into strings
    strings: list[str] = field(default_factory=list)

    @property
    def n(self) -> int:
        return int(self.kind.shape[0])


_COL_DTYPES = (
    ("kind", np.uint8), ("n_alu", np.int64), ("mlp", np.int64),
    ("mem_bytes", np.int32), ("vl", np.int32), ("active", np.int32),
    ("opclass", np.uint8), ("pattern", np.uint8), ("is_write", np.uint8),
    ("masked", np.uint8), ("dep", np.int64), ("scalar_dest", np.uint8),
    ("opcode_id", np.int32), ("label_id", np.int32), ("n_addr", np.int64),
)

_MEM_ID = OPCLASS_ID[VOpClass.MEM]


class _RecordsView:
    """Sequence view materializing record dataclasses from the columns."""

    __slots__ = ("_buf",)

    def __init__(self, buf: "TraceBuffer") -> None:
        self._buf = buf

    def __len__(self) -> int:
        return len(self._buf)

    def __getitem__(self, i):
        return self._buf[i]

    def __iter__(self):
        buf = self._buf
        for i in range(len(buf)):
            yield buf[i]


class TraceBuffer:
    """Append-only program-order trace, stored structure-of-arrays.

    Single records arrive through :meth:`append` (dataclass compat path)
    or the validation-free fast emitters (:meth:`emit_vector`,
    :meth:`emit_scalar_block`, :meth:`emit_barrier`); whole pre-expanded
    record batches arrive through :meth:`extend_columns` (the template
    engine's path). Appends go to plain Python lists and are flushed to
    NumPy chunks lazily, so both paths stay allocation-cheap.
    """

    def __init__(self) -> None:
        self._n = 0
        self._sealed = False
        self._dirty = False
        self._cols: TraceColumns | None = None
        # intern table: id 0 is the empty string
        self._strings: list[str] = [""]
        self._sid: dict[str, int] = {"": 0}
        # pending single-record appends: one int tuple per record, in
        # _COL_DTYPES order — a single list.append per emit; the flush
        # transposes the batch with one 2-D np.array call
        self._pend: list[tuple] = []
        # flushed chunks, one list of arrays per column
        self._chunks: dict[str, list[np.ndarray]] = {
            name: [] for name, _ in _COL_DTYPES
        }
        # pooled address arena, in record order (records with addresses only)
        self._addr_chunks: list[np.ndarray] = []
        self._addr_total = 0
        # scalar blocks' per-access write flags: (record index, bool array)
        self._sb_writes: list[tuple[int, np.ndarray]] = []

    # ------------------------------------------------------------- interning

    def intern(self, s: str) -> int:
        sid = self._sid.get(s)
        if sid is None:
            sid = len(self._strings)
            self._strings.append(s)
            self._sid[s] = sid
        return sid

    # ------------------------------------------------------------ fast emits

    def emit_vector(self, opclass_id: int, vl: int, opcode_id: int, *,
                    pattern_id: int = NO_ID, addrs: np.ndarray | None = None,
                    is_write: bool = False, elem_bytes: int = 8,
                    masked: bool = False, active: int | None = None,
                    dep: int = -1, scalar_dest: bool = False) -> int:
        """Append one vector instruction; returns its record index.

        No validation — the ISA contexts (and the template expander) are
        trusted to satisfy the :class:`VectorInstr` invariants. The object
        reference path (``append``) keeps full validation.
        """
        if self._sealed:
            raise TraceError("trace is sealed; create a new buffer")
        if addrs is None:
            n_addr = 0
        else:
            n_addr = addrs.shape[0]
            self._addr_chunks.append(addrs)
            self._addr_total += n_addr
        self._pend.append((
            REC_VECTOR, 0, 0, elem_bytes, vl,
            vl if active is None else active, opclass_id, pattern_id,
            1 if is_write else 0, 1 if masked else 0, dep,
            1 if scalar_dest else 0, opcode_id, 0, n_addr,
        ))
        self._dirty = True
        i = self._n
        self._n = i + 1
        return i

    def emit_scalar_block(self, addrs: np.ndarray, writes: np.ndarray,
                          n_alu: int, *, mem_bytes: int = 8,
                          mlp_hint: int = MLP_UNBOUNDED,
                          label_id: int = 0) -> int:
        """Append one scalar block (addrs int64, writes bool, both 1-D)."""
        if self._sealed:
            raise TraceError("trace is sealed; create a new buffer")
        n = addrs.shape[0]
        if n:
            self._addr_chunks.append(addrs)
            self._addr_total += n
            self._sb_writes.append((self._n, writes))
        self._pend.append((
            REC_SCALAR, n_alu, mlp_hint, mem_bytes, 0, 0, NO_ID, NO_ID,
            0, 0, -1, 0, 0, label_id, n,
        ))
        self._dirty = True
        i = self._n
        self._n = i + 1
        return i

    def emit_barrier(self, label_id: int = 0) -> int:
        if self._sealed:
            raise TraceError("trace is sealed; create a new buffer")
        self._pend.append((
            REC_BARRIER, 0, 0, 0, 0, 0, NO_ID, NO_ID,
            0, 0, -1, 0, 0, label_id, 0,
        ))
        self._dirty = True
        i = self._n
        self._n = i + 1
        return i

    # ------------------------------------------------------------ bulk path

    def extend_columns(self, cols: dict[str, np.ndarray],
                       addrs: np.ndarray,
                       sb_writes: list[tuple[int, np.ndarray]] = (),
                       ) -> int:
        """Append a pre-expanded batch of records; returns the start index.

        ``cols`` maps every column name of the single-record schema (all
        but the arena) to a length-``m`` array; ``addrs`` is the batch's
        flat arena slice (record ``j`` of the batch owns ``n_addr[j]``
        consecutive entries). ``sb_writes`` carries (batch-relative record
        index, bool array) pairs for scalar blocks whose accesses are not
        all-read. This is the template expander's emission path.
        """
        if self._sealed:
            raise TraceError("trace is sealed; create a new buffer")
        self._flush_pending()
        m = cols["kind"].shape[0]
        for name, dtype in _COL_DTYPES:
            self._chunks[name].append(
                np.ascontiguousarray(cols[name], dtype=dtype))
        if addrs.shape[0]:
            self._addr_chunks.append(
                np.ascontiguousarray(addrs, dtype=np.int64))
            self._addr_total += addrs.shape[0]
        start = self._n
        for j, w in sb_writes:
            self._sb_writes.append((start + j, w))
        self._dirty = True
        self._n = start + m
        return start

    # ----------------------------------------------------------- compat API

    def append(self, record: Record) -> None:
        """Dataclass reference path: validate via the record types."""
        if self._sealed:
            raise TraceError("trace is sealed; create a new buffer")
        if isinstance(record, VectorInstr):
            self.emit_vector(
                OPCLASS_ID[record.op], record.vl, self.intern(record.opcode),
                pattern_id=(NO_ID if record.pattern is None
                            else PATTERN_ID[record.pattern]),
                addrs=record.addrs, is_write=record.is_write,
                elem_bytes=record.elem_bytes, masked=record.masked,
                active=record.active, dep=record.dep,
                scalar_dest=record.scalar_dest,
            )
        elif isinstance(record, ScalarBlock):
            self.emit_scalar_block(
                record.mem_addrs, record.mem_is_write, record.n_alu_ops,
                mem_bytes=record.mem_bytes, mlp_hint=record.mlp_hint,
                label_id=self.intern(record.label),
            )
        elif isinstance(record, Barrier):
            self.emit_barrier(self.intern(record.label))
        else:
            raise TraceError(f"not a trace record: {type(record).__name__}")

    def seal(self) -> "TraceBuffer":
        """Freeze the buffer (engines refuse unsealed traces)."""
        self._sealed = True
        return self

    @property
    def sealed(self) -> bool:
        return self._sealed

    # ------------------------------------------------------------- finalize

    def _flush_pending(self) -> None:
        if not self._pend:
            return
        rows = np.array(self._pend, dtype=np.int64)  # (batch, 15)
        self._pend.clear()
        for j, (name, dtype) in enumerate(_COL_DTYPES):
            self._chunks[name].append(rows[:, j].astype(dtype))

    @property
    def cols(self) -> TraceColumns:
        """The finalized columns (cached; rebuilt after new appends)."""
        if self._cols is not None and not self._dirty:
            return self._cols
        self._flush_pending()

        def cat(name: str, dtype) -> np.ndarray:
            ch = self._chunks[name]
            if not ch:
                return np.empty(0, dtype=dtype)
            if len(ch) == 1:
                return ch[0]
            merged = np.concatenate(ch)
            self._chunks[name] = [merged]
            return merged

        by_name = {name: cat(name, dtype) for name, dtype in _COL_DTYPES}
        n_addr = by_name.pop("n_addr")
        addr_off = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(n_addr, out=addr_off[1:])
        if self._addr_chunks:
            if len(self._addr_chunks) > 1:
                self._addr_chunks = [np.concatenate(self._addr_chunks)]
            addrs = self._addr_chunks[0]
        else:
            addrs = np.empty(0, dtype=np.int64)
        # arena write flags: each record's span inherits its is_write bit,
        # then scalar blocks overwrite their span with the per-access flags
        writes = np.repeat(by_name["is_write"].astype(bool), n_addr)
        for i, w in self._sb_writes:
            writes[addr_off[i]:addr_off[i + 1]] = w
        self._cols = TraceColumns(addr_off=addr_off, addrs=addrs,
                                  writes=writes, strings=self._strings,
                                  **by_name)
        self._dirty = False
        return self._cols

    # ---------------------------------------------------------- construction

    @classmethod
    def from_columns(cls, cols: TraceColumns) -> "TraceBuffer":
        """Rebuild a sealed buffer around finalized columns, zero-copy.

        The deserializer's path: a v2 trace file stores the columnar form
        verbatim, so loading is adopting the arrays — no per-record loop.
        The caller hands over ownership of ``cols``.
        """
        buf = cls()
        n = cols.n
        if cols.addr_off.shape != (n + 1,):
            raise TraceError(
                f"addr_off has shape {cols.addr_off.shape}, "
                f"expected ({n + 1},)"
            )
        if not cols.strings or cols.strings[0] != "":
            raise TraceError("string table must start with the empty string")
        buf._n = n
        buf._strings = list(cols.strings)
        buf._sid = {s: i for i, s in enumerate(buf._strings)}
        buf._addr_total = int(cols.addrs.shape[0])
        buf._cols = cols
        buf._dirty = False
        buf._sealed = True
        return buf

    # ------------------------------------------------------------- row view

    @property
    def records(self) -> _RecordsView:
        return _RecordsView(self)

    def __len__(self) -> int:
        return self._n

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, i: int) -> Record:
        if i < 0:
            i += self._n
        if not 0 <= i < self._n:
            raise IndexError(i)
        c = self.cols
        kind = c.kind[i]
        lo, hi = int(c.addr_off[i]), int(c.addr_off[i + 1])
        if kind == REC_VECTOR:
            op = OPCLASS_LIST[c.opclass[i]]
            pat_id = c.pattern[i]
            return VectorInstr(
                op=op,
                vl=int(c.vl[i]),
                opcode=c.strings[c.opcode_id[i]],
                pattern=None if pat_id == NO_ID else PATTERN_LIST[pat_id],
                addrs=c.addrs[lo:hi] if op is VOpClass.MEM else None,
                is_write=bool(c.is_write[i]),
                elem_bytes=int(c.mem_bytes[i]),
                masked=bool(c.masked[i]),
                active=int(c.active[i]),
                dep=int(c.dep[i]),
                scalar_dest=bool(c.scalar_dest[i]),
            )
        if kind == REC_SCALAR:
            return ScalarBlock(
                n_alu_ops=int(c.n_alu[i]),
                mem_addrs=c.addrs[lo:hi],
                mem_is_write=c.writes[lo:hi],
                mem_bytes=int(c.mem_bytes[i]),
                mlp_hint=int(c.mlp[i]),
                label=c.strings[c.label_id[i]],
            )
        return Barrier(label=c.strings[c.label_id[i]])
