"""Trace record types.

Three kinds of record, in strict program order:

* :class:`ScalarBlock` — a straight-line run of scalar instructions,
  described by an ALU-op count plus columnar memory address/write arrays.
  Kernels emit *large* blocks (often an entire loop nest) whose address
  streams are computed vectorized with NumPy; ``mlp_hint`` tells the timing
  model how many of the block's misses are mutually independent (e.g. 1 for
  pointer chasing, "unbounded" for independent stream gathers).
* :class:`VectorInstr` — one RVV instruction: op class, element count (the
  VL it executed with), and, for memory ops, the per-element addresses.
* :class:`Barrier` — a synchronization point (e.g. between BFS levels or
  FFT stages): the VPU must drain before the next record starts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError


class VOpClass(enum.Enum):
    """Timing class of a vector instruction."""

    ARITH = "arith"            # add/mul/fma/logic/shift, fully lane-pipelined
    ARITH_HEAVY = "heavy"      # div/sqrt: long-latency iterative unit
    MEM = "mem"                # any vector load/store (pattern field applies)
    PERMUTE = "permute"        # vrgather/vcompress/slide: cross-lane network
    REDUCE = "reduce"          # vredsum & friends: lane tree + scalar drain
    MASK = "mask"              # mask-register ops (vmseq result ops, viota...)
    CSR = "csr"                # vsetvl and CSR reads/writes


class VMemPattern(enum.Enum):
    """Address pattern of a vector memory instruction."""

    UNIT = "unit"          # vle/vse: consecutive elements
    STRIDED = "strided"    # vlse/vsse: constant stride
    INDEXED = "indexed"    # vlxe/vsxe: gather/scatter


#: mlp_hint value meaning "misses in this block are all independent";
#: the core's MSHR count becomes the only parallelism bound.
MLP_UNBOUNDED: int = 1 << 30


@dataclass
class ScalarBlock:
    """A run of scalar instructions with a columnar memory-access stream."""

    n_alu_ops: int
    mem_addrs: np.ndarray          # int64 byte addresses, program order
    mem_is_write: np.ndarray       # bool, aligned with mem_addrs
    mem_bytes: int = 8             # access granularity (8 = double/word64)
    mlp_hint: int = MLP_UNBOUNDED
    label: str = ""

    def __post_init__(self) -> None:
        self.mem_addrs = np.ascontiguousarray(self.mem_addrs, dtype=np.int64)
        self.mem_is_write = np.ascontiguousarray(self.mem_is_write, dtype=bool)
        if self.mem_addrs.shape != self.mem_is_write.shape:
            raise TraceError(
                f"block '{self.label}': addrs {self.mem_addrs.shape} vs "
                f"writes {self.mem_is_write.shape}"
            )
        if self.n_alu_ops < 0:
            raise TraceError(f"block '{self.label}': negative n_alu_ops")
        if self.mlp_hint < 1:
            raise TraceError(f"block '{self.label}': mlp_hint must be >= 1")

    @property
    def n_mem_ops(self) -> int:
        return int(self.mem_addrs.shape[0])

    @property
    def n_insns(self) -> int:
        """Total dynamic instruction estimate for the block."""
        return self.n_alu_ops + self.n_mem_ops


@dataclass
class VectorInstr:
    """One dynamic RVV instruction."""

    op: VOpClass
    vl: int
    opcode: str = ""                      # mnemonic, for reports/debug
    pattern: VMemPattern | None = None    # memory ops only
    addrs: np.ndarray | None = None       # element byte addresses (memory ops)
    is_write: bool = False
    elem_bytes: int = 8
    masked: bool = False
    #: number of active (unmasked) elements; defaults to vl
    active: int | None = None
    #: trace-record index of the most recent instruction this one reads a
    #: vector operand from (-1 = no vector dependency). Engines use this for
    #: RAW hazards and chaining.
    dep: int = -1
    #: True when the instruction writes a *scalar* destination (vpopc,
    #: vfirst, reductions): the scalar core must wait for it.
    scalar_dest: bool = False

    def __post_init__(self) -> None:
        if self.vl < 0:
            raise TraceError(f"{self.opcode}: negative vl")
        if self.op is VOpClass.MEM:
            if self.pattern is None or self.addrs is None:
                raise TraceError(f"{self.opcode}: MEM instr needs pattern+addrs")
            self.addrs = np.ascontiguousarray(self.addrs, dtype=np.int64)
            if self.addrs.shape[0] != (self.active if self.active is not None
                                       else self.vl):
                raise TraceError(
                    f"{self.opcode}: {self.addrs.shape[0]} addresses for "
                    f"vl={self.vl} active={self.active}"
                )
        elif self.addrs is not None:
            raise TraceError(f"{self.opcode}: non-MEM instr carries addresses")
        if self.active is None:
            self.active = self.vl

    @property
    def is_mem(self) -> bool:
        return self.op is VOpClass.MEM


@dataclass
class Barrier:
    """Full synchronization: VPU drains, scalar core waits."""

    label: str = ""


Record = ScalarBlock | VectorInstr | Barrier


class TraceBuffer:
    """Append-only program-order sequence of trace records."""

    def __init__(self) -> None:
        self._records: list[Record] = []
        self._sealed = False

    def append(self, record: Record) -> None:
        if self._sealed:
            raise TraceError("trace is sealed; create a new buffer")
        if not isinstance(record, (ScalarBlock, VectorInstr, Barrier)):
            raise TraceError(f"not a trace record: {type(record).__name__}")
        self._records.append(record)

    def seal(self) -> "TraceBuffer":
        """Freeze the buffer (engines refuse unsealed traces)."""
        self._sealed = True
        return self

    @property
    def sealed(self) -> bool:
        return self._sealed

    @property
    def records(self) -> list[Record]:
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def __getitem__(self, i: int) -> Record:
        return self._records[i]
