"""Trace serialization: save a recorded trace to one ``.npz`` file.

Trace generation is the expensive stage of the pipeline (a paper-scale BFS
trace takes far longer to generate than to re-time). Persisting sealed
traces lets a workflow record once and re-time under many machine
configurations later, in other processes, or on other machines — the
simulator-world analogue of keeping the compiled benchmark binary around.

Format: a single compressed ``.npz`` holding columnar record metadata plus
one concatenated address pool (scalar addresses and vector element
addresses), with offsets per record. Version-tagged for forward safety.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import TraceError
from repro.trace.events import (
    Barrier,
    ScalarBlock,
    TraceBuffer,
    VectorInstr,
    VMemPattern,
    VOpClass,
)

FORMAT_VERSION = 1

_KIND = {"scalar": 0, "vector": 1, "barrier": 2}
_OPCLASS = list(VOpClass)
_OPCLASS_ID = {c: i for i, c in enumerate(VOpClass)}
_PATTERN = list(VMemPattern)
_PATTERN_ID = {p: i for i, p in enumerate(VMemPattern)}


def save_trace(trace: TraceBuffer, path: str | os.PathLike) -> None:
    """Write a sealed trace to ``path`` (.npz, compressed)."""
    if not trace.sealed:
        raise TraceError("only sealed traces can be saved")
    n = len(trace)
    kind = np.zeros(n, dtype=np.uint8)
    n_alu = np.zeros(n, dtype=np.int64)
    mlp = np.zeros(n, dtype=np.int64)
    mem_bytes = np.zeros(n, dtype=np.int32)
    vl = np.zeros(n, dtype=np.int32)
    active = np.zeros(n, dtype=np.int32)
    opclass = np.full(n, 255, dtype=np.uint8)
    pattern = np.full(n, 255, dtype=np.uint8)
    is_write = np.zeros(n, dtype=np.uint8)
    masked = np.zeros(n, dtype=np.uint8)
    dep = np.full(n, -1, dtype=np.int64)
    scalar_dest = np.zeros(n, dtype=np.uint8)
    addr_off = np.zeros(n + 1, dtype=np.int64)
    opcodes: list[str] = []
    labels: list[str] = []

    addr_chunks: list[np.ndarray] = []
    write_chunks: list[np.ndarray] = []
    total = 0
    for i, rec in enumerate(trace):
        if isinstance(rec, ScalarBlock):
            kind[i] = _KIND["scalar"]
            n_alu[i] = rec.n_alu_ops
            mlp[i] = rec.mlp_hint
            mem_bytes[i] = rec.mem_bytes
            labels.append(rec.label)
            opcodes.append("")
            addr_chunks.append(rec.mem_addrs)
            write_chunks.append(rec.mem_is_write)
            total += rec.mem_addrs.shape[0]
        elif isinstance(rec, VectorInstr):
            kind[i] = _KIND["vector"]
            vl[i] = rec.vl
            active[i] = rec.active if rec.active is not None else rec.vl
            opclass[i] = _OPCLASS_ID[rec.op]
            if rec.pattern is not None:
                pattern[i] = _PATTERN_ID[rec.pattern]
            is_write[i] = 1 if rec.is_write else 0
            masked[i] = 1 if rec.masked else 0
            dep[i] = rec.dep
            scalar_dest[i] = 1 if rec.scalar_dest else 0
            mem_bytes[i] = rec.elem_bytes
            opcodes.append(rec.opcode)
            labels.append("")
            if rec.addrs is not None:
                addr_chunks.append(rec.addrs)
                write_chunks.append(
                    np.full(rec.addrs.shape[0], rec.is_write))
                total += rec.addrs.shape[0]
        else:  # Barrier
            kind[i] = _KIND["barrier"]
            labels.append(rec.label)
            opcodes.append("")
        addr_off[i + 1] = total

    np.savez_compressed(
        path,
        version=np.int64(FORMAT_VERSION),
        kind=kind, n_alu=n_alu, mlp=mlp, mem_bytes=mem_bytes,
        vl=vl, active=active, opclass=opclass, pattern=pattern,
        is_write=is_write, masked=masked, dep=dep, scalar_dest=scalar_dest,
        addr_off=addr_off,
        addrs=(np.concatenate(addr_chunks) if addr_chunks
               else np.empty(0, dtype=np.int64)),
        writes=(np.concatenate(write_chunks) if write_chunks
                else np.empty(0, dtype=bool)),
        opcodes=np.array(opcodes, dtype=object),
        labels=np.array(labels, dtype=object),
        allow_pickle=True,
    )


def load_trace(path: str | os.PathLike) -> TraceBuffer:
    """Read a trace saved by :func:`save_trace`; returns it sealed."""
    with np.load(path, allow_pickle=True) as z:
        version = int(z["version"])
        if version != FORMAT_VERSION:
            raise TraceError(
                f"trace format version {version} unsupported "
                f"(expected {FORMAT_VERSION})"
            )
        # each z[...] access decompresses that member from scratch, so pull
        # every column out exactly once before the per-record loop
        kind = z["kind"]
        addr_off = z["addr_off"]
        addrs = z["addrs"]
        writes = z["writes"]
        opcodes = z["opcodes"]
        labels = z["labels"]
        n_alu = z["n_alu"]
        mlp = z["mlp"]
        mem_bytes = z["mem_bytes"]
        vl = z["vl"]
        active = z["active"]
        opclass = z["opclass"]
        pattern = z["pattern"]
        is_write = z["is_write"]
        masked = z["masked"]
        dep = z["dep"]
        scalar_dest = z["scalar_dest"]

    trace = TraceBuffer()
    for i in range(kind.shape[0]):
        lo, hi = int(addr_off[i]), int(addr_off[i + 1])
        if kind[i] == _KIND["scalar"]:
            trace.append(ScalarBlock(
                n_alu_ops=int(n_alu[i]),
                mem_addrs=addrs[lo:hi],
                mem_is_write=writes[lo:hi],
                mem_bytes=int(mem_bytes[i]),
                mlp_hint=int(mlp[i]),
                label=str(labels[i]),
            ))
        elif kind[i] == _KIND["vector"]:
            op = _OPCLASS[int(opclass[i])]
            pat = (None if pattern[i] == 255
                   else _PATTERN[int(pattern[i])])
            trace.append(VectorInstr(
                op=op,
                vl=int(vl[i]),
                opcode=str(opcodes[i]),
                pattern=pat,
                addrs=addrs[lo:hi] if hi > lo or op is VOpClass.MEM
                else None,
                is_write=bool(is_write[i]),
                elem_bytes=int(mem_bytes[i]),
                masked=bool(masked[i]),
                active=int(active[i]),
                dep=int(dep[i]),
                scalar_dest=bool(scalar_dest[i]),
            ))
        else:
            trace.append(Barrier(label=str(labels[i])))
    return trace.seal()
