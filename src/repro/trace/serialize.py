"""Trace serialization: save a recorded trace to one ``.npz`` file.

Trace generation is the expensive stage of the pipeline (a paper-scale BFS
trace takes far longer to generate than to re-time). Persisting sealed
traces lets a workflow record once and re-time under many machine
configurations later, in other processes, or on other machines — the
simulator-world analogue of keeping the compiled benchmark binary around.

Format v2 is the buffer's columnar (SoA) form verbatim: the record columns,
the pooled address/write arena with per-record offsets, and the interned
string table. Saving is a handful of array writes and loading is
:meth:`repro.trace.events.TraceBuffer.from_columns` — no per-record Python
loop in either direction. v1 files (one object-array entry per record
string, reconstructed through the dataclass path) still load.
"""

from __future__ import annotations

import os
import zipfile

import numpy as np

from repro.errors import TraceError
from repro.trace.events import (
    Barrier,
    ScalarBlock,
    TraceBuffer,
    TraceColumns,
    VectorInstr,
    VMemPattern,
    VOpClass,
)

#: current on-disk format; also part of the sweep trace-cache key, so stale
#: cache entries from an older schema are never picked up.
FORMAT_VERSION = 2

#: on-disk format of the classified sidecar (``<trace>.clsN-<geom>.npz``)
#: that lets ``--trace-cache`` reloads skip reclassification entirely.
CLASSIFIED_FORMAT_VERSION = 1

_V1_KIND = {"scalar": 0, "vector": 1, "barrier": 2}
_OPCLASS = list(VOpClass)
_OPCLASS_ID = {c: i for i, c in enumerate(VOpClass)}
_PATTERN = list(VMemPattern)
_PATTERN_ID = {p: i for i, p in enumerate(VMemPattern)}

#: the fixed-width columns of a v2 file, in schema order
_V2_COLUMNS = (
    "kind", "n_alu", "mlp", "mem_bytes", "vl", "active", "opclass",
    "pattern", "is_write", "masked", "dep", "scalar_dest",
    "opcode_id", "label_id",
)


def save_trace(trace: TraceBuffer, path: str | os.PathLike) -> None:
    """Write a sealed trace to ``path`` (.npz, compressed, format v2)."""
    if not trace.sealed:
        raise TraceError("only sealed traces can be saved")
    c = trace.cols
    # '\0' never occurs in opcodes/labels, so the intern table packs into
    # one flat string (no pickled object arrays in v2 files)
    for s in c.strings:
        if "\0" in s:
            raise TraceError(f"string table entry contains NUL: {s!r}")
    np.savez_compressed(
        path,
        version=np.int64(FORMAT_VERSION),
        addr_off=c.addr_off, addrs=c.addrs, writes=c.writes,
        strings=np.frombuffer(
            "\0".join(c.strings).encode("utf-8"), dtype=np.uint8),
        **{name: getattr(c, name) for name in _V2_COLUMNS},
    )


def load_trace(path: str | os.PathLike) -> TraceBuffer:
    """Read a trace saved by :func:`save_trace`; returns it sealed."""
    with np.load(path, allow_pickle=True) as z:
        version = int(z["version"])
        if version == 2:
            return _load_v2(z)
        if version == 1:
            return _load_v1(z)
    raise TraceError(
        f"trace format version {version} unsupported "
        f"(this build reads versions 1..{FORMAT_VERSION})"
    )


def _load_v2(z) -> TraceBuffer:
    strings = bytes(z["strings"]).decode("utf-8").split("\0")
    cols = TraceColumns(
        addr_off=z["addr_off"], addrs=z["addrs"], writes=z["writes"],
        strings=strings,
        **{name: z[name] for name in _V2_COLUMNS},
    )
    return TraceBuffer.from_columns(cols)


# ------------------------------------------------------- classified sidecar

def save_classified(ct, path: str | os.PathLike, *,
                    geometry_fp: str) -> None:
    """Persist a trace's knob-independent classification next to its
    cached trace file.

    ``ct`` is a :class:`repro.memory.classify.ClassifiedTrace`;
    ``geometry_fp`` is the cache-geometry fingerprint
    (:meth:`repro.soc.sdv.FpgaSdv.geometry_fingerprint`) the
    classification was computed under — embedded so a loader never
    trusts the filename alone. The ragged ``levels`` list is stored in
    the same ``(lens, flat)`` wire format the shm classified plane uses.
    """
    from repro.memory.classify_fast import pack_levels

    lens, flat = pack_levels(ct.levels)
    np.savez_compressed(
        path,
        version=np.int64(CLASSIFIED_FORMAT_VERSION),
        geometry=np.asarray(geometry_fp),
        rows=np.ascontiguousarray(ct.rows),
        lens=lens, flat=flat,
    )


def load_classified(path: str | os.PathLike, trace: TraceBuffer, config, *,
                    geometry_fp: str):
    """Load a classified sidecar saved by :func:`save_classified`.

    Returns a :class:`~repro.memory.classify.ClassifiedTrace` bound to
    ``trace``/``config``, or ``None`` when the sidecar is unreadable,
    from a different format version, recorded under a different cache
    geometry, or misaligned with the trace — any of which just means
    "reclassify" to the caller, never an error.
    """
    from repro.memory.classify import ClassifiedTrace
    from repro.memory.classify_fast import unpack_levels

    try:
        with np.load(path) as z:
            if int(z["version"]) != CLASSIFIED_FORMAT_VERSION:
                return None
            if str(z["geometry"]) != geometry_fp:
                return None
            rows = z["rows"]
            lens = z["lens"]
            flat = z["flat"]
    except (OSError, ValueError, KeyError, zipfile.BadZipFile):
        return None
    if rows.shape[0] != len(trace) or lens.shape[0] != len(trace):
        return None
    return ClassifiedTrace(rows=rows, levels=unpack_levels(lens, flat),
                           trace=trace, config=config)


# --------------------------------------------------------------- v1 support

def _save_v1(trace: TraceBuffer, path: str | os.PathLike) -> None:
    """Legacy record-loop writer, kept so tests can pin v1 loading."""
    if not trace.sealed:
        raise TraceError("only sealed traces can be saved")
    n = len(trace)
    kind = np.zeros(n, dtype=np.uint8)
    n_alu = np.zeros(n, dtype=np.int64)
    mlp = np.zeros(n, dtype=np.int64)
    mem_bytes = np.zeros(n, dtype=np.int32)
    vl = np.zeros(n, dtype=np.int32)
    active = np.zeros(n, dtype=np.int32)
    opclass = np.full(n, 255, dtype=np.uint8)
    pattern = np.full(n, 255, dtype=np.uint8)
    is_write = np.zeros(n, dtype=np.uint8)
    masked = np.zeros(n, dtype=np.uint8)
    dep = np.full(n, -1, dtype=np.int64)
    scalar_dest = np.zeros(n, dtype=np.uint8)
    addr_off = np.zeros(n + 1, dtype=np.int64)
    opcodes: list[str] = []
    labels: list[str] = []

    addr_chunks: list[np.ndarray] = []
    write_chunks: list[np.ndarray] = []
    total = 0
    for i, rec in enumerate(trace):
        if isinstance(rec, ScalarBlock):
            kind[i] = _V1_KIND["scalar"]
            n_alu[i] = rec.n_alu_ops
            mlp[i] = rec.mlp_hint
            mem_bytes[i] = rec.mem_bytes
            labels.append(rec.label)
            opcodes.append("")
            addr_chunks.append(rec.mem_addrs)
            write_chunks.append(rec.mem_is_write)
            total += rec.mem_addrs.shape[0]
        elif isinstance(rec, VectorInstr):
            kind[i] = _V1_KIND["vector"]
            vl[i] = rec.vl
            active[i] = rec.active if rec.active is not None else rec.vl
            opclass[i] = _OPCLASS_ID[rec.op]
            if rec.pattern is not None:
                pattern[i] = _PATTERN_ID[rec.pattern]
            is_write[i] = 1 if rec.is_write else 0
            masked[i] = 1 if rec.masked else 0
            dep[i] = rec.dep
            scalar_dest[i] = 1 if rec.scalar_dest else 0
            mem_bytes[i] = rec.elem_bytes
            opcodes.append(rec.opcode)
            labels.append("")
            if rec.addrs is not None:
                addr_chunks.append(rec.addrs)
                write_chunks.append(
                    np.full(rec.addrs.shape[0], rec.is_write))
                total += rec.addrs.shape[0]
        else:  # Barrier
            kind[i] = _V1_KIND["barrier"]
            labels.append(rec.label)
            opcodes.append("")
        addr_off[i + 1] = total

    np.savez_compressed(
        path,
        version=np.int64(1),
        kind=kind, n_alu=n_alu, mlp=mlp, mem_bytes=mem_bytes,
        vl=vl, active=active, opclass=opclass, pattern=pattern,
        is_write=is_write, masked=masked, dep=dep, scalar_dest=scalar_dest,
        addr_off=addr_off,
        addrs=(np.concatenate(addr_chunks) if addr_chunks
               else np.empty(0, dtype=np.int64)),
        writes=(np.concatenate(write_chunks) if write_chunks
                else np.empty(0, dtype=bool)),
        opcodes=np.array(opcodes, dtype=object),
        labels=np.array(labels, dtype=object),
        allow_pickle=True,
    )


def _load_v1(z) -> TraceBuffer:
    # each z[...] access decompresses that member from scratch, so pull
    # every column out exactly once before the per-record loop
    kind = z["kind"]
    addr_off = z["addr_off"]
    addrs = z["addrs"]
    writes = z["writes"]
    opcodes = z["opcodes"]
    labels = z["labels"]
    n_alu = z["n_alu"]
    mlp = z["mlp"]
    mem_bytes = z["mem_bytes"]
    vl = z["vl"]
    active = z["active"]
    opclass = z["opclass"]
    pattern = z["pattern"]
    is_write = z["is_write"]
    masked = z["masked"]
    dep = z["dep"]
    scalar_dest = z["scalar_dest"]

    trace = TraceBuffer()
    for i in range(kind.shape[0]):
        lo, hi = int(addr_off[i]), int(addr_off[i + 1])
        if kind[i] == _V1_KIND["scalar"]:
            trace.append(ScalarBlock(
                n_alu_ops=int(n_alu[i]),
                mem_addrs=addrs[lo:hi],
                mem_is_write=writes[lo:hi],
                mem_bytes=int(mem_bytes[i]),
                mlp_hint=int(mlp[i]),
                label=str(labels[i]),
            ))
        elif kind[i] == _V1_KIND["vector"]:
            op = _OPCLASS[int(opclass[i])]
            pat = (None if pattern[i] == 255
                   else _PATTERN[int(pattern[i])])
            trace.append(VectorInstr(
                op=op,
                vl=int(vl[i]),
                opcode=str(opcodes[i]),
                pattern=pat,
                addrs=addrs[lo:hi] if hi > lo or op is VOpClass.MEM
                else None,
                is_write=bool(is_write[i]),
                elem_bytes=int(mem_bytes[i]),
                masked=bool(masked[i]),
                active=int(active[i]),
                dep=int(dep[i]),
                scalar_dest=bool(scalar_dest[i]),
            ))
        else:
            trace.append(Barrier(label=str(labels[i])))
    return trace.seal()
