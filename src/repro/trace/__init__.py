"""Instruction/memory trace infrastructure.

Kernels execute *functionally* (NumPy) while recording a trace of what the
real machine would do: scalar instruction blocks with their memory address
streams, and vector instructions with their per-element addresses. The trace
is the interface between the ISA layer and the timing engines — generate the
trace once, classify its memory behaviour once, then time it under many
(latency, bandwidth) settings. That split is what makes whole-paper sweeps
tractable in pure Python.
"""

from repro.trace.events import (
    Barrier,
    Record,
    ScalarBlock,
    TraceBuffer,
    VectorInstr,
    VMemPattern,
    VOpClass,
)
from repro.trace.stats import TraceStats, summarize_trace
from repro.trace.serialize import load_trace, save_trace

__all__ = [
    "Barrier",
    "Record",
    "ScalarBlock",
    "TraceBuffer",
    "VectorInstr",
    "VMemPattern",
    "VOpClass",
    "TraceStats",
    "summarize_trace",
    "load_trace",
    "save_trace",
]
