"""Strip-mine loop templating: record one iteration, replicate vectorized.

A strip-mined kernel loop stamps the same short instruction sequence
thousands of times with shifted addresses. Emitting it record by record
costs a Python round-trip per instruction; this module records the loop
body *symbolically* — addresses as ``base + offset[i]`` expressions, dep
edges relative to the iteration — and expands all iterations at once with
NumPy arithmetic, handing the buffer one pre-built column batch via
:meth:`repro.trace.events.TraceBuffer.extend_columns`.

Per template record, three address modes:

* none — arithmetic/CSR/barrier records;
* affine — ``base_addrs`` (one iteration's addresses) plus
  ``iter_offsets`` (one byte offset per iteration): iteration ``i``
  touches ``base_addrs + iter_offsets[i]``;
* explicit — ``flat_addrs``/``counts``: iteration ``i`` owns the next
  ``counts[i]`` entries of the flat array (data-dependent gathers,
  masked scatters, varying VL).

Scalar fields (``vl``, ``active``, ``n_alu``) accept a constant or a
per-iteration array. Dependencies are one of ``None`` (no dep), a local
index into the current iteration, :meth:`Dep.prev` (same slot chain into
the previous iteration, software-pipelined loads), or :meth:`Dep.at` (an
absolute record index, e.g. an accumulator initialized before the loop).

Expansion is bit-exact: ``replicate(n)`` appends exactly the records the
equivalent per-iteration emission loop would have appended, in the same
order with the same fields — the property tests in
``tests/trace/test_template.py`` pin this against the object path.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.trace.events import (
    _COL_DTYPES,
    MLP_UNBOUNDED,
    NO_ID,
    OPCLASS_ID,
    PATTERN_ID,
    REC_BARRIER,
    REC_SCALAR,
    REC_VECTOR,
    TraceBuffer,
    VMemPattern,
    VOpClass,
)

_D_NONE, _D_LOCAL, _D_PREV, _D_ABS = 0, 1, 2, 3


@dataclass(frozen=True)
class Dep:
    """A dependency spec for a template record."""

    mode: int
    slot: int = -1      # local index within an iteration (_D_LOCAL/_D_PREV)
    first: int = -1     # absolute dep of iteration 0 (_D_PREV) or the
                        # absolute record index (_D_ABS)

    @classmethod
    def local(cls, slot: int) -> "Dep":
        """Depend on record ``slot`` of the *same* iteration."""
        return cls(_D_LOCAL, slot=slot)

    @classmethod
    def prev(cls, slot: int, first: int = -1) -> "Dep":
        """Depend on record ``slot`` of the *previous* iteration.

        Iteration 0 depends on ``first`` (an absolute record index, e.g.
        the pipeline-priming load emitted before the loop; -1 for none).
        """
        return cls(_D_PREV, slot=slot, first=first)

    @classmethod
    def at(cls, index: int) -> "Dep":
        """Depend on absolute record ``index`` in every iteration."""
        return cls(_D_ABS, first=index)


def _normalize_dep(dep) -> Dep:
    if dep is None:
        return _DEP_NONE
    if isinstance(dep, Dep):
        return dep
    return Dep.local(int(dep))


_DEP_NONE = Dep(_D_NONE)


@dataclass(frozen=True)
class TemplateSnapshot:
    """One ``replicate()`` call, frozen for offline analysis.

    ``scal``/``var``/``strs`` are the template's recorded per-slot tuples
    (see the ``_K_*``/``_V_*`` column layouts below); ``n_iters`` is the
    replication count and ``start`` the absolute index of the first
    emitted record. The static analyzer (:mod:`repro.lint.trace_rules`)
    consumes these to re-derive every iteration's address streams
    symbolically and prove the declared deps cover the hazards.
    """

    scal: tuple[tuple, ...]
    var: tuple[tuple, ...]
    strs: tuple[str, ...]
    n_iters: int
    start: int


#: when not None, every replicate() appends its TemplateSnapshot here.
_CAPTURE: list[TemplateSnapshot] | None = None


@contextmanager
def capture_replications():
    """Record every template replication in the ``with`` body.

    Yields the list the snapshots accumulate into. Nesting restores the
    previous capture list on exit; the costs when no capture is active
    are a single ``is not None`` test per replicate call.
    """
    global _CAPTURE
    prev = _CAPTURE
    log: list[TemplateSnapshot] = []
    _CAPTURE = log
    try:
        yield log
    finally:
        _CAPTURE = prev


def _per_iter(value, n: int, name: str) -> tuple[bool, object]:
    """Classify a const-or-per-iteration field; returns (varying, value)."""
    if isinstance(value, np.ndarray):
        if value.shape != (n,):
            raise TraceError(
                f"template field {name}: per-iteration array has shape "
                f"{value.shape}, expected ({n},)"
            )
        return True, value
    return False, value


def _c64(a: np.ndarray | None) -> np.ndarray | None:
    return None if a is None else np.ascontiguousarray(a, dtype=np.int64)


# Column order of the per-slot constant-field tuples in ``_scal``:
# (kind, mlp, mem_bytes, opclass, pattern, is_write, masked, scalar_dest).
# One int tuple per slot keeps recording cheap and lets replicate()
# materialize all constant columns with a single np.array call. The
# per-slot string (opcode or label) lives in ``_strs`` and is interned
# lazily at replicate() time, so a recorded-but-never-replicated body
# leaves the buffer's string table exactly as the object path would.
_K_KIND, _K_MLP, _K_BYTES, _K_OPCLASS, _K_PATTERN = 0, 1, 2, 3, 4
_K_WRITE, _K_MASKED, _K_SDEST = 5, 6, 7

# Column order of the per-slot varying/object tuples in ``_var``:
# (vl, active, n_alu, dep, base_addrs, iter_offsets, flat_addrs, counts,
#  writes).
_V_VL, _V_ACTIVE, _V_NALU, _V_DEP = 0, 1, 2, 3
_V_BASE, _V_IOFF, _V_FLAT, _V_COUNTS, _V_WRITES = 4, 5, 6, 7, 8

# Column offsets of the expansion's (m, 15) row matrix — _COL_DTYPES order.
(_O_KIND, _O_NALU, _O_MLP, _O_BYTES, _O_VL, _O_ACTIVE, _O_OPCLASS,
 _O_PATTERN, _O_WRITE, _O_MASKED, _O_DEP, _O_SDEST, _O_OPCODE, _O_LABEL,
 _O_NADDR) = range(15)
assert len(_COL_DTYPES) == 15


class TraceTemplate:
    """Record one loop iteration symbolically; replicate it vectorized."""

    def __init__(self, trace: TraceBuffer) -> None:
        self.trace = trace
        self._scal: list[tuple] = []   # constant int fields, see _K_*
        self._var: list[tuple] = []    # varying/address fields, see _V_*
        self._strs: list[str] = []     # per-slot opcode or label

    def __len__(self) -> int:
        return len(self._scal)

    # ------------------------------------------------------------ recording

    def vector(self, op: VOpClass, vl, opcode: str, *,
               pattern: VMemPattern | None = None,
               base_addrs: np.ndarray | None = None,
               iter_offsets: np.ndarray | None = None,
               flat_addrs: np.ndarray | None = None,
               counts: np.ndarray | None = None,
               is_write: bool = False, elem_bytes: int = 8,
               masked: bool = False, active=None, dep=None,
               scalar_dest: bool = False) -> int:
        """Add one vector instruction to the body; returns its local index."""
        if op is VOpClass.MEM:
            if (base_addrs is None) == (flat_addrs is None):
                raise TraceError(
                    f"{opcode}: MEM template record needs exactly one of "
                    "base_addrs (affine) or flat_addrs (explicit)"
                )
            if base_addrs is not None and iter_offsets is None:
                raise TraceError(f"{opcode}: affine addresses need "
                                 "iter_offsets")
            if flat_addrs is not None and counts is None:
                raise TraceError(f"{opcode}: explicit addresses need counts")
        elif base_addrs is not None or flat_addrs is not None:
            raise TraceError(f"{opcode}: non-MEM template record carries "
                             "addresses")
        self._scal.append((
            REC_VECTOR, 0, elem_bytes, OPCLASS_ID[op],
            NO_ID if pattern is None else PATTERN_ID[pattern],
            1 if is_write else 0, 1 if masked else 0,
            1 if scalar_dest else 0,
        ))
        self._strs.append(opcode)
        self._var.append((
            vl, active, 0, _normalize_dep(dep),
            _c64(base_addrs), _c64(iter_offsets),
            _c64(flat_addrs), _c64(counts), None,
        ))
        return len(self._scal) - 1

    def scalar_block(self, n_alu, *,
                     base_addrs: np.ndarray | None = None,
                     iter_offsets: np.ndarray | None = None,
                     flat_addrs: np.ndarray | None = None,
                     counts: np.ndarray | None = None,
                     writes: np.ndarray | bool = False,
                     mem_bytes: int = 8, mlp_hint: int = MLP_UNBOUNDED,
                     label: str = "") -> int:
        """Add one scalar block; address spec as in :meth:`vector`.

        ``writes`` is a constant flag or one iteration's per-access bool
        array (every iteration of a templated block shares the pattern).
        """
        if base_addrs is not None and iter_offsets is None:
            raise TraceError("affine scalar block needs iter_offsets")
        if flat_addrs is not None and counts is None:
            raise TraceError("explicit scalar block needs counts")
        w = None
        if isinstance(writes, np.ndarray):
            w = np.ascontiguousarray(writes, dtype=bool)
        elif writes:
            raise TraceError("writes=True is ambiguous; pass the bool array")
        self._scal.append((
            REC_SCALAR, mlp_hint, mem_bytes, NO_ID, NO_ID, 0, 0, 0,
        ))
        self._strs.append(label)
        self._var.append((
            0, None, n_alu, _DEP_NONE,
            _c64(base_addrs), _c64(iter_offsets),
            _c64(flat_addrs), _c64(counts), w,
        ))
        return len(self._scal) - 1

    def barrier(self, label: str = "") -> int:
        self._scal.append((
            REC_BARRIER, 0, 0, NO_ID, NO_ID, 0, 0, 0,
        ))
        self._strs.append(label)
        self._var.append((0, None, 0, _DEP_NONE,
                          None, None, None, None, None))
        return len(self._scal) - 1

    # ------------------------------------------------------------ expansion

    def replicate(self, n_iters: int) -> int:
        """Append ``n_iters`` expansions of the body; returns start index.

        The template stays recorded — callers may replicate again (with
        fresh per-iteration arrays swapped in via re-recording instead).
        """
        n = int(n_iters)
        if n < 0:
            raise TraceError("negative iteration count")
        T = len(self._scal)
        if n == 0 or T == 0:
            return len(self.trace)
        m = n * T
        start = len(self.trace)
        var = self._var
        if _CAPTURE is not None:
            _CAPTURE.append(TemplateSnapshot(
                tuple(self._scal), tuple(self._var), tuple(self._strs),
                n, start))

        # pass 1: one (T, 15) prototype row block in _COL_DTYPES order,
        # tiled whole — a single np.tile covers every per-slot-constant
        # column at once. Record (i, t) lands at position i*T + t, so
        # per-iteration arrays (vl/active/n_alu/counts) and the dep shifts
        # patch their slot's stride in the tiled matrix afterwards.
        scal = np.array(self._scal, dtype=np.int64)  # (T, 8)
        # intern in slot order — the exact order the object path's first
        # iteration would have interned
        sid = np.array([self.trace.intern(s) for s in self._strs],
                       dtype=np.int64)
        is_vec = scal[:, _K_KIND] == REC_VECTOR
        proto = np.zeros((T, 15), dtype=np.int64)
        proto[:, _O_KIND] = scal[:, _K_KIND]
        proto[:, _O_MLP] = scal[:, _K_MLP]
        proto[:, _O_BYTES] = scal[:, _K_BYTES]
        proto[:, _O_OPCLASS] = scal[:, _K_OPCLASS]
        proto[:, _O_PATTERN] = scal[:, _K_PATTERN]
        proto[:, _O_WRITE] = scal[:, _K_WRITE]
        proto[:, _O_MASKED] = scal[:, _K_MASKED]
        proto[:, _O_SDEST] = scal[:, _K_SDEST]
        proto[:, _O_OPCODE] = np.where(is_vec, sid, 0)
        proto[:, _O_LABEL] = np.where(is_vec, 0, sid)

        fixups: list[tuple[int, int, np.ndarray]] = []

        def _fill(col, values, name):
            for t, value in enumerate(values):
                if isinstance(value, np.ndarray):
                    _per_iter(value, n, name)  # shape check
                    fixups.append((t, col, value))
                else:
                    proto[t, col] = value

        _fill(_O_VL, (v[_V_VL] for v in var), "vl")
        _fill(_O_NALU, (v[_V_NALU] for v in var), "n_alu")
        _fill(_O_ACTIVE, (v[_V_VL] if v[_V_ACTIVE] is None else v[_V_ACTIVE]
                          for v in var), "active")

        for t, v in enumerate(var):
            base_addrs = v[_V_BASE]
            if base_addrs is not None:
                if v[_V_IOFF].shape != (n,):
                    raise TraceError(
                        f"slot {t}: iter_offsets has shape "
                        f"{v[_V_IOFF].shape}, expected ({n},)"
                    )
                proto[t, _O_NADDR] = base_addrs.shape[0]
            elif v[_V_FLAT] is not None:
                counts = v[_V_COUNTS]
                if counts.shape != (n,):
                    raise TraceError(
                        f"slot {t}: counts has shape {counts.shape}, "
                        f"expected ({n},)"
                    )
                if int(counts.sum()) != v[_V_FLAT].shape[0]:
                    raise TraceError(
                        f"slot {t}: counts sum to {int(counts.sum())} but "
                        f"{v[_V_FLAT].shape[0]} flat addresses given"
                    )
                fixups.append((t, _O_NADDR, counts))

        # deps: local/prev slots are (absolute base) + i*T; abs/none are
        # per-slot constants.
        shifts = np.zeros(T, dtype=np.int64)
        prev_first: list[tuple[int, int]] = []
        for t, v in enumerate(var):
            d = v[_V_DEP]
            if d.mode == _D_LOCAL:
                if not 0 <= d.slot < T:
                    raise TraceError(f"slot {t}: local dep {d.slot} out of "
                                     "range")
                proto[t, _O_DEP] = start + d.slot
                shifts[t] = 1
            elif d.mode == _D_PREV:
                if not 0 <= d.slot < T:
                    raise TraceError(f"slot {t}: prev dep {d.slot} out of "
                                     "range")
                proto[t, _O_DEP] = start + d.slot - T
                shifts[t] = 1
                prev_first.append((t, d.first))
            elif d.mode == _D_ABS:
                proto[t, _O_DEP] = d.first
            else:
                proto[t, _O_DEP] = -1

        big = np.tile(proto, (n, 1))  # (m, 15)
        for t, col, arr in fixups:
            big[t::T, col] = arr
        if shifts.any():
            big[:, _O_DEP] += (np.repeat(np.arange(n, dtype=np.int64) * T, T)
                               * np.tile(shifts, n))
        for t, first in prev_first:
            big[t, _O_DEP] = first
        n_addr = big[:, _O_NADDR]

        # pass 2: the address arena ----------------------------------------
        off = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(n_addr, out=off[1:])
        total = int(off[m])
        addrs = np.empty(total, dtype=np.int64)
        sb_writes: list[tuple[int, np.ndarray]] = []
        for t, v in enumerate(var):
            base_addrs = v[_V_BASE]
            flat_addrs = v[_V_FLAT]
            if base_addrs is not None:
                P = base_addrs.shape[0]
                if P:
                    dst = (off[t:m:T, None]
                           + np.arange(P, dtype=np.int64)).ravel()
                    addrs[dst] = (v[_V_IOFF][:, None] + base_addrs).ravel()
            elif flat_addrs is not None and flat_addrs.shape[0]:
                starts = off[t:m:T]
                c = v[_V_COUNTS]
                pos = np.repeat(starts, c)
                intra = (np.arange(flat_addrs.shape[0], dtype=np.int64)
                         - np.repeat(np.cumsum(c) - c, c))
                addrs[pos + intra] = flat_addrs
            w = v[_V_WRITES]
            if w is not None and self._scal[t][_K_KIND] == REC_SCALAR:
                if base_addrs is not None and w.shape[0] != base_addrs.shape[0]:
                    raise TraceError(f"slot {t}: writes shape mismatch")
                for i in range(n):
                    sb_writes.append((i * T + t, w))

        # extend_columns converts each strided column view to its
        # contiguous dtype array
        self.trace.extend_columns(
            {name: big[:, j] for j, (name, _) in enumerate(_COL_DTYPES)},
            addrs, sb_writes,
        )
        return start
