"""Summary statistics over a trace (pre-timing, architecture-independent)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.events import Barrier, ScalarBlock, TraceBuffer, VectorInstr, VOpClass


@dataclass
class TraceStats:
    """Dynamic-instruction and memory-traffic summary of one trace."""

    scalar_blocks: int = 0
    scalar_alu_ops: int = 0
    scalar_mem_ops: int = 0
    scalar_mem_bytes: int = 0

    vector_instrs: int = 0
    vector_mem_instrs: int = 0
    vector_elems: int = 0            # total elements processed by vector instrs
    vector_mem_elems: int = 0
    vector_mem_bytes: int = 0
    barriers: int = 0
    by_opclass: dict[str, int] = field(default_factory=dict)

    @property
    def total_dynamic_insns(self) -> int:
        return self.scalar_alu_ops + self.scalar_mem_ops + self.vector_instrs

    @property
    def avg_vl(self) -> float:
        """Average VL across vector instructions (0 for scalar-only traces)."""
        return self.vector_elems / self.vector_instrs if self.vector_instrs else 0.0

    @property
    def total_mem_bytes(self) -> int:
        return self.scalar_mem_bytes + self.vector_mem_bytes


def summarize_trace(trace: TraceBuffer) -> TraceStats:
    """Single pass over a trace computing :class:`TraceStats`."""
    s = TraceStats()
    for rec in trace:
        if isinstance(rec, ScalarBlock):
            s.scalar_blocks += 1
            s.scalar_alu_ops += rec.n_alu_ops
            s.scalar_mem_ops += rec.n_mem_ops
            s.scalar_mem_bytes += rec.n_mem_ops * rec.mem_bytes
        elif isinstance(rec, VectorInstr):
            s.vector_instrs += 1
            s.vector_elems += rec.vl
            key = rec.op.value
            s.by_opclass[key] = s.by_opclass.get(key, 0) + 1
            if rec.op is VOpClass.MEM:
                s.vector_mem_instrs += 1
                n_active = rec.active if rec.active is not None else rec.vl
                s.vector_mem_elems += n_active
                s.vector_mem_bytes += n_active * rec.elem_bytes
        elif isinstance(rec, Barrier):
            s.barriers += 1
    return s
