"""Breadth-first search kernel (level-synchronous, scalar + long-vector)."""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelOutput, KernelSpec
from repro.kernels.bfs.reference import bfs_reference, default_source
from repro.kernels.bfs.direction import bfs_vector_directopt
from repro.kernels.bfs.scalar import bfs_scalar
from repro.kernels.bfs.vector import bfs_vector
from repro.workloads.graphs import rmat_graph
from repro.workloads.scales import Scale


def _prepare(scale: Scale, seed: int):
    return rmat_graph(scale.graph_nodes, edge_factor=scale.graph_edge_factor,
                      seed=seed)


def _reference(g):
    return bfs_reference(g)


def _check(out: KernelOutput, ref) -> bool:
    return bool(np.array_equal(out.value, ref))


BFS_SPEC = KernelSpec(
    name="bfs",
    prepare=_prepare,
    scalar=bfs_scalar,
    vector=bfs_vector,
    reference=_reference,
    check=_check,
    description="Level-synchronous BFS on an R-MAT graph "
                "(scalar queue vs vectorized frontier expansion)",
)

__all__ = ["BFS_SPEC", "bfs_scalar", "bfs_vector", "bfs_vector_directopt",
           "bfs_reference", "default_source"]
