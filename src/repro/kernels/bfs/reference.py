"""Reference BFS (plain NumPy level-synchronous sweep).

Used as ground truth for both implementations and, in tests, cross-checked
against ``networkx.single_source_shortest_path_length``.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.graphs import CsrGraph


def default_source(g: CsrGraph) -> int:
    """Deterministic non-isolated source: the max-out-degree node.

    R-MAT graphs leave many low ids isolated; benchmarks (Graph500) always
    search from a connected source.
    """
    return int(np.argmax(g.out_degrees))


def bfs_reference(g: CsrGraph, source: int | None = None) -> np.ndarray:
    """Levels array: levels[v] = hop distance from ``source``, -1 unreached."""
    if source is None:
        source = default_source(g)
    levels = np.full(g.n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        # gather all out-neighbors of the frontier
        starts = g.indptr[frontier]
        ends = g.indptr[frontier + 1]
        total = int((ends - starts).sum())
        if total == 0:
            break
        nbrs = np.concatenate(
            [g.indices[s:e] for s, e in zip(starts, ends)]
        ) if frontier.size else np.empty(0, dtype=np.int64)
        new = np.unique(nbrs[levels[nbrs] == -1])
        levels[new] = level + 1
        frontier = new
        level += 1
    return levels


def frontier_schedule(g: CsrGraph, source: int | None = None
                      ) -> list[np.ndarray]:
    """Per-level frontiers (the traversal schedule both variants follow)."""
    levels = bfs_reference(g, source)
    out = []
    lvl = 0
    while True:
        f = np.flatnonzero(levels == lvl).astype(np.int64)
        if f.size == 0:
            break
        out.append(f)
        lvl += 1
    return out
