"""Vectorized level-synchronous BFS (long-vector frontier expansion).

Per level, three phases (the structure of the graph-algorithms thesis the
paper cites):

1. **Degree bucketing** (scalar): the frontier is reordered into descending
   degree-class buckets so that rows sharing a vector strip have similar
   lengths — the SELL-sigma idea applied to frontiers; without it one hub
   node would pad every lane of its strip to the hub's degree.
2. **Expansion** (vector): for each strip of the bucketed frontier, gather
   row bounds, then sweep edge slots ``j`` under the mask ``deg > j``:
   gather neighbor ids, gather their levels, and scatter ``level+1`` to the
   unvisited ones. The neighbor gather is software-pipelined one slot ahead
   so the in-order memory pipe never waits for an index register.
3. **Frontier rebuild** (vector): scan the levels array, ``vmseq`` against
   ``level+1``, ``vcompress`` the node ids, ``vpopc`` + ``vse`` to append —
   the canonical RVV stream-compaction idiom.

Barriers separate phases (scatters must drain before dependent gathers; the
machine has no inter-instruction memory disambiguation).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelOutput
from repro.kernels.bfs.reference import default_source
from repro.soc.sdv import Session
from repro.workloads.graphs import CsrGraph

#: scalar ops per frontier node during bucketing (load, classify, store)
ALU_PER_BUCKETED_NODE = 6
ALU_PER_STRIP = 6
ALU_PER_SLOT = 2


def _bucket_by_degree(frontier: np.ndarray, degs: np.ndarray) -> np.ndarray:
    """Stable reorder into descending log2-degree buckets."""
    klass = np.zeros(frontier.shape[0], dtype=np.int64)
    nz = degs > 0
    klass[nz] = np.int64(np.floor(np.log2(degs[nz]))) + 1
    order = np.argsort(-klass, kind="stable")
    return frontier[order]


def bfs_vector(session: Session, g: CsrGraph,
               source: int | None = None) -> KernelOutput:
    """Run vectorized BFS on the SDV session; returns the levels array."""
    if source is None:
        source = default_source(g)
    mem, scl, vec = session.mem, session.scalar, session.vector

    a_indptr = mem.alloc("bfs.indptr", g.indptr)
    a_indices = mem.alloc("bfs.indices", g.indices)
    a_levels = mem.alloc("bfs.levels", np.full(g.n, -1, dtype=np.int64))
    a_q0 = mem.alloc("bfs.q0", g.n, np.int64)
    a_q1 = mem.alloc("bfs.q1", g.n, np.int64)

    a_levels.view[source] = 0
    a_q0.view[0] = source
    q_cur, q_next = a_q0, a_q1

    frontier = np.array([source], dtype=np.int64)
    level = 0
    n_levels = 0
    while frontier.size:
        n_levels += 1
        nf = frontier.shape[0]
        degs = (g.indptr[frontier + 1] - g.indptr[frontier]).astype(np.int64)

        # --- phase 1: scalar degree bucketing --------------------------
        bucketed = _bucket_by_degree(frontier, degs)
        bucketed_degs = (g.indptr[bucketed + 1] - g.indptr[bucketed]
                         ).astype(np.int64)
        idx = np.arange(nf)
        addrs = np.empty(4 * nf, dtype=np.int64)
        writes = np.zeros(4 * nf, dtype=bool)
        addrs[0::4] = q_cur.addr(idx)
        addrs[1::4] = a_indptr.addr(frontier)
        addrs[2::4] = a_indptr.addr(frontier + 1)
        addrs[3::4] = q_cur.addr(idx)  # write back in bucket order
        writes[3::4] = True
        scl.emit_block(addrs, writes,
                       n_alu_ops=ALU_PER_BUCKETED_NODE * nf,
                       label=f"bfs-bucket-l{level}")
        q_cur.view[:nf] = bucketed
        scl.barrier(f"bfs-bucket-end-l{level}")

        # --- phase 2: vector expansion ----------------------------------
        off = 0
        while off < nf:
            vl = vec.vsetvl(nf - off)
            scl.emit_alu(ALU_PER_STRIP, label="bfs-strip")
            f = vec.vle(q_cur, off)
            rb = vec.vlxe(a_indptr, f)
            f1 = vec.vadd(f, 1)
            re = vec.vlxe(a_indptr, f1)
            ln = vec.vsub(re, rb)
            # The strip's slot count is known scalar-side from the bucketing
            # pass (it classified every degree already), so no vredmax sync
            # is needed here.
            maxd = int(bucketed_degs[off: off + vl].max(initial=0))
            lvlval = vec.vmv(level + 1)

            nbr_next = None
            if maxd > 0:
                m0 = vec.vmsgt(ln, 0)
                nbr_next = vec.vlxe(a_indices, rb, mask=m0)
            for j in range(maxd):
                scl.emit_alu(ALU_PER_SLOT)
                m = vec.vmsgt(ln, j)
                nbr = nbr_next
                if j + 1 < maxd:
                    m_next = vec.vmsgt(ln, j + 1)
                    eidx_next = vec.vadd(rb, j + 1)
                    nbr_next = vec.vlxe(a_indices, eidx_next, mask=m_next)
                cur = vec.vlxe(a_levels, nbr, mask=m)
                unv = vec.vmseq(cur, -1)
                mm = vec.vmand(m, unv)
                vec.vsxe(lvlval, a_levels, nbr, mask=mm)
            off += vl
        scl.barrier(f"bfs-expand-end-l{level}")

        # --- phase 3: vector frontier rebuild ---------------------------
        # Software-pipelined: strip k+1's levels load issues before strip
        # k's vpopc synchronizes the scalar core, so the scan streams at
        # memory speed instead of one round trip per strip. Full strips run
        # at max VL; the tail strip is handled after the loop.
        next_pos = 0
        maxvl = vec.max_vl
        n_full = (g.n // maxvl) * maxvl

        def _scan_strip(lv, off_):
            m = vec.vmseq(lv, level + 1)
            ids = vec.vadd(vec.vid(), off_)
            packed = vec.vcompress(ids, m)
            return m, packed

        off = 0
        if n_full:
            vec.vsetvl(maxvl)
            lv_next = vec.vle(a_levels, 0)
            while off < n_full:
                scl.emit_alu(3, label="bfs-scan")
                lv = lv_next
                m, packed = _scan_strip(lv, off)
                if off + maxvl < n_full:
                    lv_next = vec.vle(a_levels, off + maxvl)
                cnt = vec.vpopc(m)
                if cnt:
                    vec.vsetvl(cnt)
                    vec.vse(vec.with_vl(packed), q_next, next_pos)
                    next_pos += cnt
                    vec.vsetvl(maxvl)
                off += maxvl
        if off < g.n:
            vec.vsetvl(g.n - off)
            scl.emit_alu(3, label="bfs-scan-tail")
            lv = vec.vle(a_levels, off)
            m, packed = _scan_strip(lv, off)
            cnt = vec.vpopc(m)
            if cnt:
                vec.vsetvl(cnt)
                vec.vse(vec.with_vl(packed), q_next, next_pos)
                next_pos += cnt
        scl.barrier(f"bfs-scan-end-l{level}")

        frontier = q_next.view[:next_pos].copy()
        q_cur, q_next = q_next, q_cur
        level += 1

    levels = a_levels.view.copy()
    return KernelOutput(
        value=levels,
        meta={"levels": n_levels, "n": g.n, "m": g.m},
    )
