"""Vectorized level-synchronous BFS (long-vector frontier expansion).

Per level, three phases (the structure of the graph-algorithms thesis the
paper cites):

1. **Degree bucketing** (scalar): the frontier is reordered into descending
   degree-class buckets so that rows sharing a vector strip have similar
   lengths — the SELL-sigma idea applied to frontiers; without it one hub
   node would pad every lane of its strip to the hub's degree.
2. **Expansion** (vector): for each strip of the bucketed frontier, gather
   row bounds, then sweep edge slots ``j`` under the mask ``deg > j``:
   gather neighbor ids, gather their levels, and scatter ``level+1`` to the
   unvisited ones. The neighbor gather is software-pipelined one slot ahead
   so the in-order memory pipe never waits for an index register.
3. **Frontier rebuild** (vector): scan the levels array, ``vmseq`` against
   ``level+1``, ``vcompress`` the node ids, ``vpopc`` + ``vse`` to append —
   the canonical RVV stream-compaction idiom.

Barriers separate phases (scatters must drain before dependent gathers; the
machine has no inter-instruction memory disambiguation).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelOutput
from repro.kernels.bfs.reference import default_source
from repro.memory.address_space import Allocation
from repro.soc.sdv import Session
from repro.trace import modes
from repro.trace.events import (
    OPCLASS_ID,
    PATTERN_ID,
    TraceBuffer,
    VMemPattern,
    VOpClass,
)
from repro.trace.template import Dep, TraceTemplate
from repro.workloads.graphs import CsrGraph

#: scalar ops per frontier node during bucketing (load, classify, store)
ALU_PER_BUCKETED_NODE = 6
ALU_PER_STRIP = 6
ALU_PER_SLOT = 2

_C_CSR = OPCLASS_ID[VOpClass.CSR]
_C_MEM = OPCLASS_ID[VOpClass.MEM]
_C_ARITH = OPCLASS_ID[VOpClass.ARITH]
_C_MASK = OPCLASS_ID[VOpClass.MASK]
_C_PERM = OPCLASS_ID[VOpClass.PERMUTE]
_P_UNIT = PATTERN_ID[VMemPattern.UNIT]
_P_IDX = PATTERN_ID[VMemPattern.INDEXED]
_EMPTY_A = np.empty(0, dtype=np.int64)
_EMPTY_W = np.empty(0, dtype=bool)


def _bucket_by_degree(frontier: np.ndarray, degs: np.ndarray) -> np.ndarray:
    """Stable reorder into descending log2-degree buckets."""
    klass = np.zeros(frontier.shape[0], dtype=np.int64)
    nz = degs > 0
    klass[nz] = np.int64(np.floor(np.log2(degs[nz]))) + 1
    order = np.argsort(-klass, kind="stable")
    return frontier[order]


def _expand_templated(trace: TraceBuffer, maxvl: int,
                      a_indptr: Allocation, a_indices: Allocation,
                      a_levels: Allocation, q_cur: Allocation,
                      nf: int, level: int) -> None:
    """Phase-2 frontier expansion on the templated fast path.

    The slot loop's *trace structure* is uniform (every full slot stamps the
    same 9 records), so it replicates as a template; its *functional* side
    cannot be batched — slot ``j``'s scatters mark nodes visited before slot
    ``j+1`` gathers their levels — so level updates walk the slots
    sequentially while every address stream that only depends on graph
    structure (the pipelined neighbor gathers) is precomputed vectorized.
    """
    it = trace.intern
    op_vsetvl = it("vsetvl")
    op_vle = it("vle")
    op_vlxe = it("vlxe")
    op_vadd = it("vadd")
    op_vsub = it("vsub")
    op_vmv = it("vmv.v.x")
    op_vmsgt = it("vmsgt")
    op_vmseq = it("vmseq")
    op_vmand = it("vmand")
    op_vsxe = it("vsxe")
    lbl_strip = it("bfs-strip")
    qv = q_cur.view.reshape(-1)
    ipv = a_indptr.view.reshape(-1)
    idv = a_indices.view.reshape(-1)
    lvv = a_levels.view.reshape(-1)
    lvl1 = level + 1
    # unit-stride frontier loads are affine in the strip offset: one addr
    # pass over the whole frontier, sliced per strip below
    q_addrs = q_cur.addr(np.arange(nf, dtype=np.int64))
    # per-node scratch for the first-occurrence scatter below (values are
    # only read at indices freshly written within the same strip)
    pos = np.empty(lvv.shape[0], dtype=np.int64)

    # the most recent levels scatter: slot j+1's levels gather must be
    # ordered after slot j's scatter (no memory disambiguation in the
    # machine), so it threads through the slot walk and across strips
    prev_store = -1
    off = 0
    while off < nf:
        vl = min(nf - off, maxvl)
        f = qv[off: off + vl]
        rb = ipv[f]
        ln = ipv[f + 1] - rb
        maxd = int(ln.max(initial=0))

        trace.emit_vector(_C_CSR, vl, op_vsetvl, scalar_dest=True)
        trace.emit_scalar_block(_EMPTY_A, _EMPTY_W, ALU_PER_STRIP,
                                label_id=lbl_strip)
        i_f = trace.emit_vector(
            _C_MEM, vl, op_vle, pattern_id=_P_UNIT,
            addrs=q_addrs[off: off + vl])
        ipa_f = a_indptr.addr(f)
        i_rb = trace.emit_vector(_C_MEM, vl, op_vlxe, pattern_id=_P_IDX,
                                 addrs=ipa_f, dep=i_f)
        i_f1 = trace.emit_vector(_C_ARITH, vl, op_vadd, dep=i_f)
        # addr(f + 1) is addr(f) shifted one element; f + 1 <= n is always
        # a valid indptr index so the bounds check on f covers it
        trace.emit_vector(_C_MEM, vl, op_vlxe, pattern_id=_P_IDX,
                          addrs=ipa_f + a_indptr.itemsize, dep=i_f1)
        i_ln = trace.emit_vector(_C_ARITH, vl, op_vsub, dep=i_f1 + 1)
        trace.emit_vector(_C_ARITH, vl, op_vmv)
        if maxd == 0:
            off += vl
            continue

        # all (slot, lane) edge indices, slot-major, lanes ascending: the
        # concatenated per-slot index streams of the pipelined gathers
        total = int(ln.sum())
        lanes = np.repeat(np.arange(vl, dtype=np.int64), ln)
        slots = (np.arange(total, dtype=np.int64)
                 - np.repeat(np.cumsum(ln) - ln, ln))
        order = np.argsort(slots, kind="stable")
        eidx = (rb[lanes] + slots)[order]
        c_slot = np.bincount(slots, minlength=maxd)
        c_off = np.zeros(maxd + 1, dtype=np.int64)
        np.cumsum(c_slot, out=c_off[1:])
        nbr_flat = idv[eidx]

        c0 = int(c_slot[0])
        i_m0 = trace.emit_vector(_C_MASK, vl, op_vmsgt, dep=i_ln)
        trace.emit_vector(_C_MEM, vl, op_vlxe, pattern_id=_P_IDX,
                          addrs=a_indices.addr(eidx[:c0]),
                          masked=True, active=c0, dep=i_m0)

        # scatter targets of the sequential slot walk, computed at once: an
        # occurrence scatters iff its node was unvisited at strip start AND
        # no *earlier slot* of this strip already hit it (slot j's stores
        # are seen by slot j+1's gathers; duplicates within one slot all
        # scatter, the walk tests the mask before storing). A stable sort
        # by node groups occurrences with their slot-major first hit.
        so_flat = slots[order]
        iu = lvv[nbr_flat] == -1
        # first-occurrence index per node via reverse scatter: assignments
        # apply in order, so writing descending indices leaves the minimum
        pos[nbr_flat[::-1]] = np.arange(total - 1, -1, -1, dtype=np.int64)
        sel = iu & (so_flat == so_flat[pos[nbr_flat]])
        tgt_all = nbr_flat[sel]
        lvv[tgt_all] = lvl1
        cs = np.zeros(total + 1, dtype=np.int64)
        np.cumsum(sel, out=cs[1:])
        c_sc = cs[c_off[1:]] - cs[c_off[:-1]]
        sc_off = cs[c_off]
        sc_addrs = a_levels.addr(tgt_all)

        n_full = maxd - 1
        if n_full > 0:
            t = TraceTemplate(trace)
            t.scalar_block(ALU_PER_SLOT)
            t.vector(VOpClass.MASK, vl, "vmsgt", dep=Dep.at(i_ln))
            t.vector(VOpClass.MASK, vl, "vmsgt", dep=Dep.at(i_ln))
            t.vector(VOpClass.ARITH, vl, "vadd", dep=Dep.at(i_rb))
            t.vector(VOpClass.MEM, vl, "vlxe", pattern=VMemPattern.INDEXED,
                     flat_addrs=a_indices.addr(eidx[c0:]),
                     counts=c_slot[1:], masked=True, active=c_slot[1:],
                     dep=Dep.local(3))
            t.vector(VOpClass.MEM, vl, "vlxe", pattern=VMemPattern.INDEXED,
                     flat_addrs=a_levels.addr(nbr_flat[: int(c_off[n_full])]),
                     counts=c_slot[:n_full], masked=True,
                     active=c_slot[:n_full], dep=Dep.prev(8, prev_store))
            t.vector(VOpClass.MASK, vl, "vmseq", dep=Dep.local(5))
            t.vector(VOpClass.MASK, vl, "vmand", dep=Dep.local(6))
            t.vector(VOpClass.MEM, vl, "vsxe", pattern=VMemPattern.INDEXED,
                     flat_addrs=sc_addrs[: int(sc_off[n_full])],
                     counts=c_sc[:n_full], is_write=True, masked=True,
                     active=c_sc[:n_full], dep=Dep.local(7))
            t_start = t.replicate(n_full)
            prev_store = t_start + (n_full - 1) * len(t) + 8

        # last slot: no pipelined next-neighbor load
        trace.emit_scalar_block(_EMPTY_A, _EMPTY_W, ALU_PER_SLOT)
        trace.emit_vector(_C_MASK, vl, op_vmsgt, dep=i_ln)
        cl = int(c_slot[n_full])
        i_cur = trace.emit_vector(
            _C_MEM, vl, op_vlxe, pattern_id=_P_IDX,
            addrs=a_levels.addr(nbr_flat[c_off[n_full]:]),
            masked=True, active=cl, dep=prev_store)
        i_unv = trace.emit_vector(_C_MASK, vl, op_vmseq, dep=i_cur)
        i_mm = trace.emit_vector(_C_MASK, vl, op_vmand, dep=i_unv)
        prev_store = trace.emit_vector(
            _C_MEM, vl, op_vsxe, pattern_id=_P_IDX,
            addrs=sc_addrs[sc_off[n_full]:], is_write=True,
            masked=True, active=int(c_sc[n_full]), dep=i_mm)
        off += vl


def _scan_templated(trace: TraceBuffer, maxvl: int, a_levels: Allocation,
                    q_next: Allocation, n: int, level: int) -> int:
    """Phase-3 frontier rebuild on the fast-emit path; returns |frontier|.

    Record structure is data-dependent per strip (the append triple only
    exists when the strip matched something; the pipelined load drops out
    on the final full strip), so strips emit through the validation-free
    buffer calls directly rather than a template; the functional side is
    one vectorized scan.
    """
    it = trace.intern
    op_vsetvl = it("vsetvl")
    op_vle = it("vle")
    op_vse = it("vse")
    op_vmseq = it("vmseq")
    op_vid = it("vid.v")
    op_vadd = it("vadd")
    op_vcompress = it("vcompress")
    op_vpopc = it("vpopc")
    lbl_scan = it("bfs-scan")
    lbl_tail = it("bfs-scan-tail")
    lvv = a_levels.view.reshape(-1)
    lvl1 = level + 1
    n_full = (n // maxvl) * maxvl

    hits = np.flatnonzero(lvv == lvl1)
    q_next.view.reshape(-1)[: hits.shape[0]] = hits
    cnts = np.bincount(hits // maxvl, minlength=(n + maxvl - 1) // maxvl)

    # both address streams are affine in the strip offset: one addr pass
    # over each array, sliced per strip below
    lv_addrs = a_levels.addr(np.arange(n, dtype=np.int64))
    qn_addrs = q_next.addr(np.arange(n, dtype=np.int64))

    next_pos = 0
    off = 0
    if n_full:
        trace.emit_vector(_C_CSR, maxvl, op_vsetvl, scalar_dest=True)
        i_lv = trace.emit_vector(
            _C_MEM, maxvl, op_vle, pattern_id=_P_UNIT,
            addrs=lv_addrs[0: maxvl])
        while off < n_full:
            trace.emit_scalar_block(_EMPTY_A, _EMPTY_W, 3, label_id=lbl_scan)
            i_m = trace.emit_vector(_C_MASK, maxvl, op_vmseq, dep=i_lv)
            i_id = trace.emit_vector(_C_ARITH, maxvl, op_vid)
            i_ids = trace.emit_vector(_C_ARITH, maxvl, op_vadd, dep=i_id)
            i_packed = trace.emit_vector(_C_PERM, maxvl, op_vcompress,
                                         dep=i_ids)
            if off + maxvl < n_full:
                i_lv = trace.emit_vector(
                    _C_MEM, maxvl, op_vle, pattern_id=_P_UNIT,
                    addrs=lv_addrs[off + maxvl: off + 2 * maxvl])
            trace.emit_vector(_C_MASK, maxvl, op_vpopc, dep=i_m,
                              scalar_dest=True)
            cnt = int(cnts[off // maxvl])
            if cnt:
                trace.emit_vector(_C_CSR, cnt, op_vsetvl, scalar_dest=True)
                trace.emit_vector(
                    _C_MEM, cnt, op_vse, pattern_id=_P_UNIT,
                    addrs=qn_addrs[next_pos: next_pos + cnt],
                    is_write=True, dep=i_packed)
                next_pos += cnt
                trace.emit_vector(_C_CSR, maxvl, op_vsetvl, scalar_dest=True)
            off += maxvl
    if off < n:
        tvl = n - off
        trace.emit_vector(_C_CSR, tvl, op_vsetvl, scalar_dest=True)
        trace.emit_scalar_block(_EMPTY_A, _EMPTY_W, 3, label_id=lbl_tail)
        i_lv = trace.emit_vector(
            _C_MEM, tvl, op_vle, pattern_id=_P_UNIT,
            addrs=lv_addrs[off: n])
        i_m = trace.emit_vector(_C_MASK, tvl, op_vmseq, dep=i_lv)
        i_id = trace.emit_vector(_C_ARITH, tvl, op_vid)
        i_ids = trace.emit_vector(_C_ARITH, tvl, op_vadd, dep=i_id)
        i_packed = trace.emit_vector(_C_PERM, tvl, op_vcompress, dep=i_ids)
        trace.emit_vector(_C_MASK, tvl, op_vpopc, dep=i_m, scalar_dest=True)
        cnt = int(cnts[off // maxvl])
        if cnt:
            trace.emit_vector(_C_CSR, cnt, op_vsetvl, scalar_dest=True)
            trace.emit_vector(
                _C_MEM, cnt, op_vse, pattern_id=_P_UNIT,
                addrs=qn_addrs[next_pos: next_pos + cnt],
                is_write=True, dep=i_packed)
            next_pos += cnt
    return next_pos


def bfs_vector(session: Session, g: CsrGraph,
               source: int | None = None) -> KernelOutput:
    """Run vectorized BFS on the SDV session; returns the levels array."""
    if source is None:
        source = default_source(g)
    mem, scl, vec = session.mem, session.scalar, session.vector

    a_indptr = mem.alloc("bfs.indptr", g.indptr)
    a_indices = mem.alloc("bfs.indices", g.indices)
    a_levels = mem.alloc("bfs.levels", np.full(g.n, -1, dtype=np.int64))
    a_q0 = mem.alloc("bfs.q0", g.n, np.int64)
    a_q1 = mem.alloc("bfs.q1", g.n, np.int64)

    a_levels.view[source] = 0
    a_q0.view[0] = source
    q_cur, q_next = a_q0, a_q1

    frontier = np.array([source], dtype=np.int64)
    level = 0
    n_levels = 0
    while frontier.size:
        n_levels += 1
        nf = frontier.shape[0]
        degs = (g.indptr[frontier + 1] - g.indptr[frontier]).astype(np.int64)

        # --- phase 1: scalar degree bucketing --------------------------
        bucketed = _bucket_by_degree(frontier, degs)
        bucketed_degs = (g.indptr[bucketed + 1] - g.indptr[bucketed]
                         ).astype(np.int64)
        idx = np.arange(nf)
        addrs = np.empty(4 * nf, dtype=np.int64)
        writes = np.zeros(4 * nf, dtype=bool)
        addrs[0::4] = q_cur.addr(idx)
        addrs[1::4] = a_indptr.addr(frontier)
        addrs[2::4] = a_indptr.addr(frontier + 1)
        addrs[3::4] = q_cur.addr(idx)  # write back in bucket order
        writes[3::4] = True
        scl.emit_block(addrs, writes,
                       n_alu_ops=ALU_PER_BUCKETED_NODE * nf,
                       label=f"bfs-bucket-l{level}")
        q_cur.view[:nf] = bucketed
        scl.barrier(f"bfs-bucket-end-l{level}")

        if modes.templating_enabled():
            _expand_templated(session.trace, vec.max_vl, a_indptr, a_indices,
                              a_levels, q_cur, nf, level)
            scl.barrier(f"bfs-expand-end-l{level}")
            next_pos = _scan_templated(session.trace, vec.max_vl, a_levels,
                                       q_next, g.n, level)
            scl.barrier(f"bfs-scan-end-l{level}")
            frontier = q_next.view[:next_pos].copy()
            q_cur, q_next = q_next, q_cur
            level += 1
            continue

        # --- phase 2: vector expansion ----------------------------------
        # most recent levels scatter (see _expand_templated): slot j+1's
        # levels gather is ordered after slot j's scatter
        prev_store = -1
        off = 0
        while off < nf:
            vl = vec.vsetvl(nf - off)
            scl.emit_alu(ALU_PER_STRIP, label="bfs-strip")
            f = vec.vle(q_cur, off)
            rb = vec.vlxe(a_indptr, f)
            f1 = vec.vadd(f, 1)
            re = vec.vlxe(a_indptr, f1)
            ln = vec.vsub(re, rb)
            # The strip's slot count is known scalar-side from the bucketing
            # pass (it classified every degree already), so no vredmax sync
            # is needed here.
            maxd = int(bucketed_degs[off: off + vl].max(initial=0))
            lvlval = vec.vmv(level + 1)

            nbr_next = None
            if maxd > 0:
                m0 = vec.vmsgt(ln, 0)
                nbr_next = vec.vlxe(a_indices, rb, mask=m0)
            for j in range(maxd):
                scl.emit_alu(ALU_PER_SLOT)
                m = vec.vmsgt(ln, j)
                nbr = nbr_next
                if j + 1 < maxd:
                    m_next = vec.vmsgt(ln, j + 1)
                    eidx_next = vec.vadd(rb, j + 1)
                    nbr_next = vec.vlxe(a_indices, eidx_next, mask=m_next)
                cur = vec.vlxe(a_levels, nbr, mask=m, after=prev_store)
                unv = vec.vmseq(cur, -1)
                mm = vec.vmand(m, unv)
                prev_store = vec.vsxe(lvlval, a_levels, nbr, mask=mm)
            off += vl
        scl.barrier(f"bfs-expand-end-l{level}")

        # --- phase 3: vector frontier rebuild ---------------------------
        # Software-pipelined: strip k+1's levels load issues before strip
        # k's vpopc synchronizes the scalar core, so the scan streams at
        # memory speed instead of one round trip per strip. Full strips run
        # at max VL; the tail strip is handled after the loop.
        next_pos = 0
        maxvl = vec.max_vl
        n_full = (g.n // maxvl) * maxvl

        def _scan_strip(lv, off_):
            m = vec.vmseq(lv, level + 1)
            ids = vec.vadd(vec.vid(), off_)
            packed = vec.vcompress(ids, m)
            return m, packed

        off = 0
        if n_full:
            vec.vsetvl(maxvl)
            lv_next = vec.vle(a_levels, 0)
            while off < n_full:
                scl.emit_alu(3, label="bfs-scan")
                lv = lv_next
                m, packed = _scan_strip(lv, off)
                if off + maxvl < n_full:
                    lv_next = vec.vle(a_levels, off + maxvl)
                cnt = vec.vpopc(m)
                if cnt:
                    vec.vsetvl(cnt)
                    vec.vse(vec.with_vl(packed), q_next, next_pos)
                    next_pos += cnt
                    vec.vsetvl(maxvl)
                off += maxvl
        if off < g.n:
            vec.vsetvl(g.n - off)
            scl.emit_alu(3, label="bfs-scan-tail")
            lv = vec.vle(a_levels, off)
            m, packed = _scan_strip(lv, off)
            cnt = vec.vpopc(m)
            if cnt:
                vec.vsetvl(cnt)
                vec.vse(vec.with_vl(packed), q_next, next_pos)
                next_pos += cnt
        scl.barrier(f"bfs-scan-end-l{level}")

        frontier = q_next.view[:next_pos].copy()
        q_cur, q_next = q_next, q_cur
        level += 1

    levels = a_levels.view.copy()
    return KernelOutput(
        value=levels,
        meta={"levels": n_levels, "n": g.n, "m": g.m},
    )
