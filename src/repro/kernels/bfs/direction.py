"""Direction-optimizing BFS (Beamer-style top-down/bottom-up switching),
vectorized for long vectors.

An extension beyond the paper's evaluation: when the frontier is a large
fraction of the graph, scanning the *unvisited* nodes for any parent in the
frontier ("bottom-up") touches far fewer edges than expanding the frontier
("top-down"). The bottom-up inner loop vectorizes with a per-lane early
exit — a ``done`` mask accumulates lanes that found a parent, and the edge
slots of finished lanes are masked off, so work per node tracks the
*position of the first frontier parent*, exactly as in the scalar
formulation.

The heuristic follows Beamer et al.: switch down when the frontier's
outgoing edge count exceeds ``edges(unvisited)/alpha``, switch back up when
the frontier shrinks below ``n/beta``.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelOutput
from repro.kernels.bfs.reference import default_source
from repro.kernels.bfs.vector import _bucket_by_degree, ALU_PER_BUCKETED_NODE
from repro.soc.sdv import Session
from repro.workloads.graphs import CsrGraph

ALPHA = 14
BETA = 24
ALU_PER_STRIP = 6
ALU_PER_SLOT = 2


def bfs_vector_directopt(session: Session, g: CsrGraph,
                         source: int | None = None, *,
                         alpha: int = ALPHA, beta: int = BETA
                         ) -> KernelOutput:
    """Run direction-optimizing vectorized BFS; returns the levels array.

    Requires a symmetric graph (bottom-up scans out-adjacency as
    in-adjacency); the R-MAT workloads of the study are symmetric.
    """
    if source is None:
        source = default_source(g)
    mem, scl, vec = session.mem, session.scalar, session.vector

    a_indptr = mem.alloc("bfs.indptr", g.indptr)
    a_indices = mem.alloc("bfs.indices", g.indices)
    a_levels = mem.alloc("bfs.levels", np.full(g.n, -1, dtype=np.int64))
    a_q0 = mem.alloc("bfs.q0", g.n, np.int64)
    a_q1 = mem.alloc("bfs.q1", g.n, np.int64)
    a_u0 = mem.alloc("bfs.u0", g.n, np.int64)
    a_u1 = mem.alloc("bfs.u1", g.n, np.int64)

    a_levels.view[source] = 0
    a_q0.view[0] = source
    q_cur, q_next = a_q0, a_q1
    u_cur, u_next = a_u0, a_u1

    frontier = np.array([source], dtype=np.int64)
    unvisited = np.setdiff1d(np.arange(g.n, dtype=np.int64), frontier)
    u_cur.view[: unvisited.shape[0]] = unvisited
    level = 0
    steps: list[str] = []

    degs_all = g.out_degrees

    while frontier.size:
        frontier_edges = int(degs_all[frontier].sum())
        unvisited_edges = int(degs_all[unvisited].sum())
        bottom_up = (frontier_edges * alpha > unvisited_edges
                     and frontier.size > g.n // beta)
        steps.append("bottom-up" if bottom_up else "top-down")

        if bottom_up:
            new_nodes = _bottom_up_step(
                session, g, a_indptr, a_indices, a_levels,
                u_cur, u_next, unvisited, level)
        else:
            new_nodes = _top_down_step(
                session, g, a_indptr, a_indices, a_levels,
                q_cur, frontier, level)
            # keep the unvisited list in sync (host mirror; the simulated
            # update happens lazily on the next bottom-up pass)
        unvisited = unvisited[a_levels.view[unvisited] == -1]

        # functional queue update + next-frontier store
        q_next.view[: new_nodes.shape[0]] = new_nodes
        frontier = new_nodes
        q_cur, q_next = q_next, q_cur
        u_cur, u_next = u_next, u_cur
        u_cur.view[: unvisited.shape[0]] = unvisited
        level += 1

    return KernelOutput(
        value=a_levels.view.copy(),
        meta={"levels": level, "n": g.n, "m": g.m, "steps": steps,
              "bottom_up_steps": steps.count("bottom-up")},
    )


def _top_down_step(session, g, a_indptr, a_indices, a_levels, q_cur,
                   frontier, level) -> np.ndarray:
    """One classic expansion step (same structure as bfs_vector's phase 2),
    building the next frontier from the newly discovered scatter targets."""
    mem, scl, vec = session.mem, session.scalar, session.vector
    nf = frontier.shape[0]
    degs = (g.indptr[frontier + 1] - g.indptr[frontier]).astype(np.int64)
    bucketed = _bucket_by_degree(frontier, degs)
    q_cur.view[:nf] = bucketed
    bucketed_degs = (g.indptr[bucketed + 1] - g.indptr[bucketed]
                     ).astype(np.int64)
    scl.emit_alu(ALU_PER_BUCKETED_NODE * nf, label="dopt-bucket")
    scl.barrier(f"dopt-bucket-{level}")

    off = 0
    while off < nf:
        vl = vec.vsetvl(nf - off)
        scl.emit_alu(ALU_PER_STRIP, label="dopt-strip")
        f = vec.vle(q_cur, off)
        rb = vec.vlxe(a_indptr, f)
        f1 = vec.vadd(f, 1)
        re = vec.vlxe(a_indptr, f1)
        ln = vec.vsub(re, rb)
        maxd = int(bucketed_degs[off: off + vl].max(initial=0))
        lvlval = vec.vmv(level + 1)
        nbr_next = None
        if maxd > 0:
            m0 = vec.vmsgt(ln, 0)
            nbr_next = vec.vlxe(a_indices, rb, mask=m0)
        for j in range(maxd):
            scl.emit_alu(ALU_PER_SLOT)
            m = vec.vmsgt(ln, j)
            nbr = nbr_next
            if j + 1 < maxd:
                m_next = vec.vmsgt(ln, j + 1)
                eidx_next = vec.vadd(rb, j + 1)
                nbr_next = vec.vlxe(a_indices, eidx_next, mask=m_next)
            cur = vec.vlxe(a_levels, nbr, mask=m)
            unv = vec.vmseq(cur, -1)
            mm = vec.vmand(m, unv)
            vec.vsxe(lvlval, a_levels, nbr, mask=mm)
        off += vl
    scl.barrier(f"dopt-expand-{level}")
    return np.flatnonzero(a_levels.view == level + 1).astype(np.int64)


def _bottom_up_step(session, g, a_indptr, a_indices, a_levels,
                    u_cur, u_next, unvisited, level) -> np.ndarray:
    """One bottom-up step: every unvisited node searches its neighbor list
    for a frontier parent, stopping (per lane) at the first hit."""
    mem, scl, vec = session.mem, session.scalar, session.vector
    nu = unvisited.shape[0]
    degs = (g.indptr[unvisited + 1] - g.indptr[unvisited]).astype(np.int64)
    bucketed = _bucket_by_degree(unvisited, degs)
    u_cur.view[:nu] = bucketed
    bucketed_degs = (g.indptr[bucketed + 1] - g.indptr[bucketed]
                     ).astype(np.int64)
    scl.emit_alu(ALU_PER_BUCKETED_NODE * nu, label="dopt-bucket-bu")
    scl.barrier(f"dopt-bucket-bu-{level}")

    next_u_pos = 0
    off = 0
    while off < nu:
        vl = vec.vsetvl(nu - off)
        scl.emit_alu(ALU_PER_STRIP, label="dopt-bu-strip")
        f = vec.vle(u_cur, off)
        rb = vec.vlxe(a_indptr, f)
        f1 = vec.vadd(f, 1)
        re = vec.vlxe(a_indptr, f1)
        ln = vec.vsub(re, rb)
        maxd = int(bucketed_degs[off: off + vl].max(initial=0))
        lvlval = vec.vmv(level + 1)

        # done[i] = lane already found a frontier parent (early exit)
        zero = vec.vmv(0)
        done = vec.vmsne(zero, 0)  # all-false mask
        for j in range(maxd):
            scl.emit_alu(ALU_PER_SLOT)
            alive = vec.vmand(vec.vmsgt(ln, j), vec.vmnot(done))
            eidx = vec.vadd(rb, j)
            nbr = vec.vlxe(a_indices, eidx, mask=alive)
            lv = vec.vlxe(a_levels, nbr, mask=alive)
            parent = vec.vmseq(lv, level)
            newly = vec.vmand(alive, parent)
            vec.vsxe(lvlval, a_levels, f, mask=newly)
            done = vec.vmor(done, newly)
        # still-unvisited lanes go to the next unvisited list
        not_done = vec.vmnot(done)
        # lanes whose node really remains unvisited (mask out padding rows
        # with zero degree that were already visited — cannot happen since
        # only unvisited ids are in the list)
        packed = vec.vcompress(f, not_done)
        cnt = vec.vpopc(not_done)
        if cnt:
            vec.vsetvl(cnt)
            vec.vse(vec.with_vl(packed), u_next, next_u_pos)
            next_u_pos += cnt
        off += vl
    scl.barrier(f"dopt-bu-{level}")
    return np.flatnonzero(a_levels.view == level + 1).astype(np.int64)
