"""Scalar level-synchronous BFS.

Textbook queue BFS::

    levels[source] = 0; q = [source]
    for level = 0, 1, ...:
        next = []
        for u in q:                      # load q[i], indptr[u], indptr[u+1]
            for k in indptr[u]..indptr[u+1]:
                v = indices[k]           # load
                if levels[v] == -1:      # load (the random gather)
                    levels[v] = level+1  # store
                    next.append(v)       # store
        q = next

The functional traversal comes from the NumPy reference; the trace is the
loop's access stream, assembled per level with vectorized position
arithmetic (discovery edges contribute two extra stores).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelOutput
from repro.kernels.bfs.reference import bfs_reference, default_source
from repro.soc.sdv import Session
from repro.workloads.graphs import CsrGraph

ALU_PER_EDGE = 4
ALU_PER_NODE = 5


def bfs_scalar(session: Session, g: CsrGraph,
               source: int | None = None) -> KernelOutput:
    """Run scalar BFS on the SDV session; returns the levels array."""
    if source is None:
        source = default_source(g)
    mem, scl = session.mem, session.scalar

    a_indptr = mem.alloc("bfs.indptr", g.indptr)
    a_indices = mem.alloc("bfs.indices", g.indices)
    a_levels = mem.alloc("bfs.levels", np.full(g.n, -1, dtype=np.int64))
    a_q0 = mem.alloc("bfs.q0", g.n, np.int64)
    a_q1 = mem.alloc("bfs.q1", g.n, np.int64)

    ref_levels = bfs_reference(g, source)
    a_levels.view[source] = 0
    a_q0.view[0] = source

    q_cur, q_next = a_q0, a_q1
    frontier = np.array([source], dtype=np.int64)
    level = 0
    n_levels = 0
    while frontier.size:
        n_levels += 1
        nf = frontier.shape[0]
        starts = g.indptr[frontier]
        degs = g.indptr[frontier + 1] - starts
        n_edges = int(degs.sum())
        if n_edges == 0:
            break

        nbrs = np.concatenate(
            [g.indices[s: s + d] for s, d in zip(starts, degs)]
        )
        k_global = np.concatenate(
            [np.arange(s, s + d) for s, d in zip(starts, degs)]
        )
        edge_node = np.repeat(np.arange(nf, dtype=np.int64), degs)

        # discovery = first in-level occurrence of a next-level node
        is_new_node = ref_levels[nbrs] == level + 1
        _, first_idx = np.unique(nbrs, return_index=True)
        disc = np.zeros(n_edges, dtype=bool)
        disc[first_idx] = True
        disc &= is_new_node
        new_nodes = nbrs[disc]

        # --- stream assembly ------------------------------------------
        # per node: 3 header loads (q[i], indptr[u], indptr[u+1]);
        # per edge: 2 loads (+ 2 stores when it discovers a node)
        edge_w = 2 + 2 * disc.astype(np.int64)
        node_w = np.bincount(edge_node, weights=edge_w, minlength=nf
                             ).astype(np.int64)
        node_base = 3 * np.arange(nf, dtype=np.int64)
        node_base[1:] += np.cumsum(node_w)[:-1]
        excl = np.cumsum(edge_w) - edge_w
        node_first_excl = np.zeros(nf, dtype=np.int64)
        first_edge_of_node = np.searchsorted(edge_node, np.arange(nf))
        has_edges = degs > 0
        node_first_excl[has_edges] = excl[first_edge_of_node[has_edges]]
        edge_base = node_base[edge_node] + 3 + (excl - node_first_excl[edge_node])

        stream_len = 3 * nf + int(edge_w.sum())
        addrs = np.empty(stream_len, dtype=np.int64)
        writes = np.zeros(stream_len, dtype=bool)

        addrs[node_base] = q_cur.addr(np.arange(nf))
        addrs[node_base + 1] = a_indptr.addr(frontier)
        addrs[node_base + 2] = a_indptr.addr(frontier + 1)
        addrs[edge_base] = a_indices.addr(k_global)
        addrs[edge_base + 1] = a_levels.addr(nbrs)
        de = edge_base[disc]
        addrs[de + 2] = a_levels.addr(nbrs[disc])
        writes[de + 2] = True
        addrs[de + 3] = q_next.addr(np.arange(new_nodes.shape[0]))
        writes[de + 3] = True

        scl.emit_block(
            addrs, writes,
            n_alu_ops=ALU_PER_EDGE * n_edges + ALU_PER_NODE * nf,
            label=f"bfs-scalar-l{level}",
        )
        # functional update: the next frontier is the queue in discovery order
        a_levels.view[new_nodes] = level + 1
        q_next.view[: new_nodes.shape[0]] = new_nodes
        q_cur, q_next = q_next, q_cur
        frontier = new_nodes
        level += 1

    scl.barrier("bfs-scalar-end")
    return KernelOutput(
        value=a_levels.view.copy(),
        meta={"levels": n_levels, "n": g.n, "m": g.m},
    )
