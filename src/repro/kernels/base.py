"""Kernel protocol shared by the study harness.

A :class:`KernelSpec` bundles everything the sweeps need to treat a kernel
uniformly:

* ``prepare(scale, seed)`` — build the workload object (matrix, graph,
  signal) at a given :class:`repro.workloads.Scale`;
* ``scalar(session, workload)`` / ``vector(session, workload)`` — execute
  the implementation against a :class:`repro.soc.Session` (functional result
  + trace) and return a :class:`KernelOutput`;
* ``reference(workload)`` — the ground-truth result (scipy/networkx/numpy);
* ``check(output, reference)`` — correctness predicate used by tests and by
  the harness's ``--verify`` mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.soc.sdv import Session
from repro.workloads.scales import Scale


@dataclass
class KernelOutput:
    """Functional result of one kernel execution."""

    value: Any
    meta: dict = field(default_factory=dict)


@dataclass(frozen=True)
class KernelSpec:
    """Everything the harness needs to run one of the paper's kernels."""

    name: str
    prepare: Callable[[Scale, int], Any]
    scalar: Callable[[Session, Any], KernelOutput]
    vector: Callable[[Session, Any], KernelOutput]
    reference: Callable[[Any], Any]
    check: Callable[[KernelOutput, Any], bool]
    description: str = ""

    def build(self, variant: str) -> Callable[[Session, Any], KernelOutput]:
        """The builder for 'scalar' or 'vector'."""
        if variant == "scalar":
            return self.scalar
        if variant == "vector":
            return self.vector
        raise ValueError(f"unknown variant '{variant}'")
