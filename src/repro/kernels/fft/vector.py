"""Vectorized Stockham FFT (long-vector formulation).

Late stages (``m >= VL``) vectorize the contiguous butterfly runs directly:
unit-stride loads/stores and a *scalar* twiddle per group (``.vf`` operand
forms). Early stages (``m < VL``) batch ``VL/m`` twiddle groups into one
strip: the input block stays unit-stride (a (j,k) block of the Stockham
layout is contiguous), the per-lane twiddles are gathered from the stage
table, and the interleaved outputs become an index-arithmetic scatter whose
positions are computed *in vector registers* (vid/vsrl/vand/vsll/vadd) —
the gather/scatter-heavy access pattern the paper calls out as FFT's
challenge for vector architectures.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelOutput
from repro.kernels.fft.plan import make_plan
from repro.soc.sdv import Session

ALU_PER_STRIP = 4
ALU_PER_GROUP = 3


def fft_vector(session: Session, signal: tuple[np.ndarray, np.ndarray]
               ) -> KernelOutput:
    """Run the vectorized Stockham FFT; returns the complex spectrum."""
    re_in, im_in = signal
    n = re_in.shape[0]
    plan = make_plan(n)
    mem, scl, vec = session.mem, session.scalar, session.vector

    a_xre = mem.alloc("fft.x_re", np.asarray(re_in, dtype=np.float64))
    a_xim = mem.alloc("fft.x_im", np.asarray(im_in, dtype=np.float64))
    a_yre = mem.alloc("fft.y_re", n, np.float64)
    a_yim = mem.alloc("fft.y_im", n, np.float64)
    tw_re = [mem.alloc(f"fft.tw_re{s}", t) for s, t in enumerate(plan.twiddle_re)]
    tw_im = [mem.alloc(f"fft.tw_im{s}", t) for s, t in enumerate(plan.twiddle_im)]

    cur = (a_xre, a_xim)
    nxt = (a_yre, a_yim)
    maxvl = vec.max_vl

    for st in plan.stages:
        l, m, lm = st.l, st.m, st.half_offset
        xre, xim = cur
        yre, yim = nxt
        a_twr, a_twi = tw_re[st.index], tw_im[st.index]

        if m >= maxvl:
            # ---- late stages: unit stride, scalar twiddle per group ------
            for j in range(l):
                wr = scl.load_f64(a_twr, j)
                wi = scl.load_f64(a_twi, j)
                scl.alu(ALU_PER_GROUP)
                scl.flush(label=f"fft-twiddle-s{st.index}")
                base = j * m
                out0 = 2 * j * m
                k = 0
                while k < m:
                    vl = vec.vsetvl(m - k)
                    scl.emit_alu(ALU_PER_STRIP, label="fft-strip")
                    ar = vec.vle(xre, base + k)
                    ai = vec.vle(xim, base + k)
                    br = vec.vle(xre, base + lm + k)
                    bi = vec.vle(xim, base + lm + k)
                    y0r = vec.vfadd(ar, br)
                    y0i = vec.vfadd(ai, bi)
                    tr = vec.vfsub(ar, br)
                    ti = vec.vfsub(ai, bi)
                    y1r = vec.vfmul(tr, wr)
                    y1r = vec.vfmacc(y1r, ti, -wi)
                    y1i = vec.vfmul(tr, wi)
                    y1i = vec.vfmacc(y1i, ti, wr)
                    vec.vse(y0r, yre, out0 + k)
                    vec.vse(y0i, yim, out0 + k)
                    vec.vse(y1r, yre, out0 + m + k)
                    vec.vse(y1i, yim, out0 + m + k)
                    k += vl
        else:
            # ---- early stages: batch VL/m groups, gather twiddles,
            # ---- index-arithmetic scatter --------------------------------
            groups_per_strip = maxvl // m
            log2m = st.log2_m
            j0 = 0
            while j0 < l:
                gcount = min(groups_per_strip, l - j0)
                vec.vsetvl(gcount * m)
                scl.emit_alu(ALU_PER_STRIP, label="fft-strip-batched")
                base = j0 * m
                ar = vec.vle(xre, base)
                ai = vec.vle(xim, base)
                br = vec.vle(xre, base + lm)
                bi = vec.vle(xim, base + lm)
                idx = vec.vid()
                jvec = vec.vadd(vec.vsrl(idx, log2m), j0)
                wr = vec.vlxe(a_twr, jvec)
                wi = vec.vlxe(a_twi, jvec)
                y0r = vec.vfadd(ar, br)
                y0i = vec.vfadd(ai, bi)
                tr = vec.vfsub(ar, br)
                ti = vec.vfsub(ai, bi)
                y1r = vec.vfmul(tr, wr)
                negwi = vec.vfneg(wi)
                y1r = vec.vfmacc(y1r, ti, negwi)
                y1i = vec.vfmul(tr, wi)
                y1i = vec.vfmacc(y1i, ti, wr)
                kpart = vec.vand(idx, m - 1)
                pos0 = vec.vadd(vec.vsll(jvec, log2m + 1), kpart)
                pos1 = vec.vadd(pos0, m)
                vec.vsxe(y0r, yre, pos0)
                vec.vsxe(y0i, yim, pos0)
                vec.vsxe(y1r, yre, pos1)
                vec.vsxe(y1i, yim, pos1)
                j0 += gcount

        scl.barrier(f"fft-stage-{st.index}")
        cur, nxt = nxt, cur

    out = cur[0].view + 1j * cur[1].view
    return KernelOutput(value=out.copy(), meta={"n": n,
                                                "stages": plan.n_stages,
                                                "maxvl": maxvl})
