"""Vectorized Stockham FFT (long-vector formulation).

Late stages (``m >= VL``) vectorize the contiguous butterfly runs directly:
unit-stride loads/stores and a *scalar* twiddle per group (``.vf`` operand
forms). Early stages (``m < VL``) batch ``VL/m`` twiddle groups into one
strip: the input block stays unit-stride (a (j,k) block of the Stockham
layout is contiguous), the per-lane twiddles are gathered from the stage
table, and the interleaved outputs become an index-arithmetic scatter whose
positions are computed *in vector registers* (vid/vsrl/vand/vsll/vadd) —
the gather/scatter-heavy access pattern the paper calls out as FFT's
challenge for vector architectures.

Two emission paths produce the identical trace:

* the **interpreter path** drives :class:`repro.isa.VectorContext` one
  instruction at a time — the readable reference, selected when templating
  is off (:mod:`repro.trace.modes`);
* the **templated path** records each stage's strip body once symbolically
  (:class:`repro.trace.template.TraceTemplate`) and replicates it across
  all twiddle groups with NumPy, while the butterfly math runs whole-stage
  vectorized. ``tests/kernels/test_trace_equality.py`` pins the two paths
  to bit-identical traces and spectra.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelOutput
from repro.kernels.fft.plan import make_plan
from repro.soc.sdv import Session
from repro.trace import modes
from repro.trace.events import VMemPattern, VOpClass
from repro.trace.template import Dep, TraceTemplate

ALU_PER_STRIP = 4
ALU_PER_GROUP = 3

_I64 = np.int64


def _stage_math(xre, xim, yre, yim, twr, twi, l: int, m: int) -> None:
    """Whole-stage butterfly, elementwise-identical to the ISA path.

    Every operation below is the same double-precision elementwise op the
    per-strip vector instructions perform (vfmacc is modeled as separate
    multiply and add), so broadcasting over all (j, k) at once is bit-exact.
    """
    lm = l * m
    ar = xre[:lm].reshape(l, m)
    ai = xim[:lm].reshape(l, m)
    br = xre[lm:2 * lm].reshape(l, m)
    bi = xim[lm:2 * lm].reshape(l, m)
    wr = twr[:l][:, None]
    wi = twi[:l][:, None]
    tr = ar - br
    ti = ai - bi
    y = yre[:2 * lm].reshape(l, 2, m)
    y[:, 0, :] = ar + br
    y[:, 1, :] = (tr * wr) + ti * (-wi)
    y = yim[:2 * lm].reshape(l, 2, m)
    y[:, 0, :] = ai + bi
    y[:, 1, :] = (tr * wi) + ti * wr


def _strips(m: int, maxvl: int) -> list[tuple[int, int]]:
    """(start, vl) of each strip of an m-element run at a given max VL."""
    out = []
    k = 0
    while k < m:
        vl = min(maxvl, m - k)
        out.append((k, vl))
        k += vl
    return out


def _emit_late_templated(trace, st, xre, xim, yre, yim, a_twr, a_twi,
                         maxvl: int) -> None:
    """One template per late stage: [twiddle block + all strips] × l groups."""
    l, m, lm = st.l, st.m, st.half_offset
    tpl = TraceTemplate(trace)
    j = np.arange(l, dtype=_I64)
    off_tw = j * 8
    off_ld = j * (m * 8)
    off_st = j * (2 * m * 8)
    tpl.scalar_block(
        ALU_PER_GROUP,
        base_addrs=np.array([a_twr.addr(0), a_twi.addr(0)], dtype=_I64),
        iter_offsets=off_tw, label=f"fft-twiddle-s{st.index}")
    # addr() is affine, so one bounds-checked call per stage covers every
    # strip; strips slice into these instead of re-deriving per strip.
    lane_all = np.arange(m, dtype=_I64)
    ad_ar = xre.addr(lane_all)
    ad_ai = xim.addr(lane_all)
    ad_br = xre.addr(lm + lane_all)
    ad_bi = xim.addr(lm + lane_all)
    ad_y0r = yre.addr(lane_all)
    ad_y0i = yim.addr(lane_all)
    ad_y1r = yre.addr(m + lane_all)
    ad_y1i = yim.addr(m + lane_all)
    for k, vl in _strips(m, maxvl):
        tpl.vector(VOpClass.CSR, vl, "vsetvl", scalar_dest=True)
        tpl.scalar_block(ALU_PER_STRIP, label="fft-strip")
        sl = slice(k, k + vl)

        def vle(addrs):
            return tpl.vector(VOpClass.MEM, vl, "vle",
                              pattern=VMemPattern.UNIT,
                              base_addrs=addrs,
                              iter_offsets=off_ld)

        s_ar = vle(ad_ar[sl])
        s_ai = vle(ad_ai[sl])
        s_br = vle(ad_br[sl])
        s_bi = vle(ad_bi[sl])
        s_y0r = tpl.vector(VOpClass.ARITH, vl, "vfadd", dep=Dep.local(s_br))
        s_y0i = tpl.vector(VOpClass.ARITH, vl, "vfadd", dep=Dep.local(s_bi))
        s_tr = tpl.vector(VOpClass.ARITH, vl, "vfsub", dep=Dep.local(s_br))
        s_ti = tpl.vector(VOpClass.ARITH, vl, "vfsub", dep=Dep.local(s_bi))
        s_y1r = tpl.vector(VOpClass.ARITH, vl, "vfmul", dep=Dep.local(s_tr))
        s_y1r = tpl.vector(VOpClass.ARITH, vl, "vfmacc",
                           dep=Dep.local(s_y1r))
        s_y1i = tpl.vector(VOpClass.ARITH, vl, "vfmul", dep=Dep.local(s_tr))
        s_y1i = tpl.vector(VOpClass.ARITH, vl, "vfmacc",
                           dep=Dep.local(s_y1i))

        def vse(slot, addrs):
            tpl.vector(VOpClass.MEM, vl, "vse", pattern=VMemPattern.UNIT,
                       base_addrs=addrs, iter_offsets=off_st,
                       is_write=True, dep=Dep.local(slot))

        vse(s_y0r, ad_y0r[sl])
        vse(s_y0i, ad_y0i[sl])
        vse(s_y1r, ad_y1r[sl])
        vse(s_y1i, ad_y1i[sl])
    tpl.replicate(l)


def _emit_early_templated(trace, st, xre, xim, yre, yim, a_twr, a_twi,
                          maxvl: int) -> int:
    """Template the full batched strips of an early stage.

    Returns the first unprocessed group ``j0`` — the final partial strip
    (``l % groups_per_strip`` groups), if any, goes through the interpreter
    path so gcount/vl stay constant per template iteration.
    """
    l, m, lm = st.l, st.m, st.half_offset
    log2m = st.log2_m
    gps = maxvl // m
    n_full = l // gps
    if n_full == 0:
        return 0
    vl = gps * m
    tpl = TraceTemplate(trace)
    it = np.arange(n_full, dtype=_I64)
    off_ld = it * (vl * 8)
    off_tw = it * (gps * 8)
    off_st = it * (gps * 2 * m * 8)
    lane = np.arange(vl, dtype=_I64)
    jpart = lane >> log2m
    pos0 = (jpart << (log2m + 1)) + (lane & (m - 1))

    tpl.vector(VOpClass.CSR, vl, "vsetvl", scalar_dest=True)
    tpl.scalar_block(ALU_PER_STRIP, label="fft-strip-batched")

    def vle(alloc, idx):
        return tpl.vector(VOpClass.MEM, vl, "vle", pattern=VMemPattern.UNIT,
                          base_addrs=alloc.addr(idx), iter_offsets=off_ld)

    s_ar = vle(xre, lane)
    s_ai = vle(xim, lane)
    s_br = vle(xre, lm + lane)
    s_bi = vle(xim, lm + lane)
    s_vid = tpl.vector(VOpClass.ARITH, vl, "vid.v")
    s_srl = tpl.vector(VOpClass.ARITH, vl, "vsrl", dep=Dep.local(s_vid))
    s_jv = tpl.vector(VOpClass.ARITH, vl, "vadd", dep=Dep.local(s_srl))
    s_wr = tpl.vector(VOpClass.MEM, vl, "vlxe", pattern=VMemPattern.INDEXED,
                      base_addrs=a_twr.addr(jpart), iter_offsets=off_tw,
                      dep=Dep.local(s_jv))
    s_wi = tpl.vector(VOpClass.MEM, vl, "vlxe", pattern=VMemPattern.INDEXED,
                      base_addrs=a_twi.addr(jpart), iter_offsets=off_tw,
                      dep=Dep.local(s_jv))
    s_y0r = tpl.vector(VOpClass.ARITH, vl, "vfadd", dep=Dep.local(s_br))
    s_y0i = tpl.vector(VOpClass.ARITH, vl, "vfadd", dep=Dep.local(s_bi))
    s_tr = tpl.vector(VOpClass.ARITH, vl, "vfsub", dep=Dep.local(s_br))
    s_ti = tpl.vector(VOpClass.ARITH, vl, "vfsub", dep=Dep.local(s_bi))
    s_y1r = tpl.vector(VOpClass.ARITH, vl, "vfmul", dep=Dep.local(s_tr))
    s_neg = tpl.vector(VOpClass.ARITH, vl, "vfneg", dep=Dep.local(s_wi))
    s_y1r = tpl.vector(VOpClass.ARITH, vl, "vfmacc", dep=Dep.local(s_neg))
    s_y1i = tpl.vector(VOpClass.ARITH, vl, "vfmul", dep=Dep.local(s_tr))
    s_y1i = tpl.vector(VOpClass.ARITH, vl, "vfmacc", dep=Dep.local(s_y1i))
    s_kp = tpl.vector(VOpClass.ARITH, vl, "vand", dep=Dep.local(s_vid))
    s_sll = tpl.vector(VOpClass.ARITH, vl, "vsll", dep=Dep.local(s_jv))
    s_p0 = tpl.vector(VOpClass.ARITH, vl, "vadd", dep=Dep.local(s_sll))
    s_p1 = tpl.vector(VOpClass.ARITH, vl, "vadd", dep=Dep.local(s_p0))

    def vsxe(val_slot, alloc, idx, pos_slot):
        tpl.vector(VOpClass.MEM, vl, "vsxe", pattern=VMemPattern.INDEXED,
                   base_addrs=alloc.addr(idx), iter_offsets=off_st,
                   is_write=True, dep=Dep.local(pos_slot))

    vsxe(s_y0r, yre, pos0, s_p0)
    vsxe(s_y0i, yim, pos0, s_p0)
    vsxe(s_y1r, yre, pos0 + m, s_p1)
    vsxe(s_y1i, yim, pos0 + m, s_p1)
    tpl.replicate(n_full)
    return n_full * gps


def _early_strip_ctx(scl, vec, st, xre, xim, yre, yim, a_twr, a_twi,
                     j0: int, gcount: int) -> None:
    """One batched early-stage strip through the interpreter path."""
    l, m, lm = st.l, st.m, st.half_offset
    log2m = st.log2_m
    vec.vsetvl(gcount * m)
    scl.emit_alu(ALU_PER_STRIP, label="fft-strip-batched")
    base = j0 * m
    ar = vec.vle(xre, base)
    ai = vec.vle(xim, base)
    br = vec.vle(xre, base + lm)
    bi = vec.vle(xim, base + lm)
    idx = vec.vid()
    jvec = vec.vadd(vec.vsrl(idx, log2m), j0)
    wr = vec.vlxe(a_twr, jvec)
    wi = vec.vlxe(a_twi, jvec)
    y0r = vec.vfadd(ar, br)
    y0i = vec.vfadd(ai, bi)
    tr = vec.vfsub(ar, br)
    ti = vec.vfsub(ai, bi)
    y1r = vec.vfmul(tr, wr)
    negwi = vec.vfneg(wi)
    y1r = vec.vfmacc(y1r, ti, negwi)
    y1i = vec.vfmul(tr, wi)
    y1i = vec.vfmacc(y1i, ti, wr)
    kpart = vec.vand(idx, m - 1)
    pos0 = vec.vadd(vec.vsll(jvec, log2m + 1), kpart)
    pos1 = vec.vadd(pos0, m)
    vec.vsxe(y0r, yre, pos0)
    vec.vsxe(y0i, yim, pos0)
    vec.vsxe(y1r, yre, pos1)
    vec.vsxe(y1i, yim, pos1)


def fft_vector(session: Session, signal: tuple[np.ndarray, np.ndarray]
               ) -> KernelOutput:
    """Run the vectorized Stockham FFT; returns the complex spectrum."""
    re_in, im_in = signal
    n = re_in.shape[0]
    plan = make_plan(n)
    mem, scl, vec = session.mem, session.scalar, session.vector

    a_xre = mem.alloc("fft.x_re", np.asarray(re_in, dtype=np.float64))
    a_xim = mem.alloc("fft.x_im", np.asarray(im_in, dtype=np.float64))
    a_yre = mem.alloc("fft.y_re", n, np.float64)
    a_yim = mem.alloc("fft.y_im", n, np.float64)
    tw_re = [mem.alloc(f"fft.tw_re{s}", t) for s, t in enumerate(plan.twiddle_re)]
    tw_im = [mem.alloc(f"fft.tw_im{s}", t) for s, t in enumerate(plan.twiddle_im)]

    cur = (a_xre, a_xim)
    nxt = (a_yre, a_yim)
    maxvl = vec.max_vl
    templated = modes.templating_enabled()

    for st in plan.stages:
        l, m, lm = st.l, st.m, st.half_offset
        xre, xim = cur
        yre, yim = nxt
        a_twr, a_twi = tw_re[st.index], tw_im[st.index]

        if templated:
            _stage_math(xre.view, xim.view, yre.view, yim.view,
                        a_twr.view, a_twi.view, l, m)
            if m >= maxvl:
                _emit_late_templated(session.trace, st, xre, xim, yre, yim,
                                     a_twr, a_twi, maxvl)
            else:
                j0 = _emit_early_templated(session.trace, st, xre, xim,
                                           yre, yim, a_twr, a_twi, maxvl)
                if j0 < l:
                    _early_strip_ctx(scl, vec, st, xre, xim, yre, yim,
                                     a_twr, a_twi, j0, l - j0)
        elif m >= maxvl:
            # ---- late stages: unit stride, scalar twiddle per group ------
            for j in range(l):
                wr = scl.load_f64(a_twr, j)
                wi = scl.load_f64(a_twi, j)
                scl.alu(ALU_PER_GROUP)
                scl.flush(label=f"fft-twiddle-s{st.index}")
                base = j * m
                out0 = 2 * j * m
                k = 0
                while k < m:
                    vl = vec.vsetvl(m - k)
                    scl.emit_alu(ALU_PER_STRIP, label="fft-strip")
                    ar = vec.vle(xre, base + k)
                    ai = vec.vle(xim, base + k)
                    br = vec.vle(xre, base + lm + k)
                    bi = vec.vle(xim, base + lm + k)
                    y0r = vec.vfadd(ar, br)
                    y0i = vec.vfadd(ai, bi)
                    tr = vec.vfsub(ar, br)
                    ti = vec.vfsub(ai, bi)
                    y1r = vec.vfmul(tr, wr)
                    y1r = vec.vfmacc(y1r, ti, -wi)
                    y1i = vec.vfmul(tr, wi)
                    y1i = vec.vfmacc(y1i, ti, wr)
                    vec.vse(y0r, yre, out0 + k)
                    vec.vse(y0i, yim, out0 + k)
                    vec.vse(y1r, yre, out0 + m + k)
                    vec.vse(y1i, yim, out0 + m + k)
                    k += vl
        else:
            # ---- early stages: batch VL/m groups, gather twiddles,
            # ---- index-arithmetic scatter --------------------------------
            groups_per_strip = maxvl // m
            j0 = 0
            while j0 < l:
                gcount = min(groups_per_strip, l - j0)
                _early_strip_ctx(scl, vec, st, xre, xim, yre, yim,
                                 a_twr, a_twi, j0, gcount)
                j0 += gcount

        scl.barrier(f"fft-stage-{st.index}")
        cur, nxt = nxt, cur

    out = cur[0].view + 1j * cur[1].view
    return KernelOutput(value=out.copy(), meta={"n": n,
                                                "stages": plan.n_stages,
                                                "maxvl": maxvl})
