"""FFT plan: stage geometry and twiddle tables for the Stockham radix-2
transform.

The Stockham autosort formulation is the long-vector FFT of choice (the
paper's FFT reference targets NEC SX-Aurora and RVV with it): no bit-reversal
pass, and every stage reads two contiguous half-arrays. At stage ``s`` with
``l = n/2^{s+1}`` twiddle groups of run length ``m = 2^s``::

    for j in 0..l-1:                       # twiddle index
        w = exp(-2*pi*i * j / (2l))
        for k in 0..m-1:                   # contiguous run
            a = x[j*m + k]; b = x[j*m + l*m + k]
            y[2*j*m + k]     = a + b
            y[2*j*m + m + k] = (a - b) * w

When ``m >= VL`` the inner run is vectorized directly (twiddle is a scalar).
When ``m < VL``, ``VL/m`` consecutive ``j`` groups are batched into one
strip: loads stay unit-stride (the (j,k) block is contiguous!), twiddles are
gathered per lane from the stage table, and the interleaved stores become an
index-arithmetic scatter computed in vector registers — exactly the
"complex memory access pattern" the paper highlights for FFT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import KernelError
from repro.util.mathx import is_pow2, log2_int


@dataclass(frozen=True)
class FftStage:
    """Geometry of one Stockham stage."""

    index: int
    l: int           # number of twiddle groups
    m: int           # contiguous run length per group
    log2_m: int

    @property
    def half_offset(self) -> int:
        """Element distance between the a and b input halves (l*m = n/2)."""
        return self.l * self.m


@dataclass(frozen=True)
class FftPlan:
    """All stages plus per-stage twiddle tables (host-precomputed)."""

    n: int
    stages: tuple[FftStage, ...]
    twiddle_re: tuple[np.ndarray, ...]   # stage -> float64[l]
    twiddle_im: tuple[np.ndarray, ...]

    @property
    def n_stages(self) -> int:
        return len(self.stages)


def make_plan(n: int) -> FftPlan:
    """Build the Stockham plan for a power-of-two ``n``."""
    if not is_pow2(n) or n < 2:
        raise KernelError(f"FFT size must be a power of two >= 2, got {n}")
    t = log2_int(n)
    stages = []
    tw_re = []
    tw_im = []
    l, m = n // 2, 1
    for s in range(t):
        stages.append(FftStage(index=s, l=l, m=m, log2_m=log2_int(m)))
        j = np.arange(l, dtype=np.float64)
        w = np.exp(-2j * np.pi * j / (2 * l))
        tw_re.append(np.ascontiguousarray(w.real))
        tw_im.append(np.ascontiguousarray(w.imag))
        l //= 2
        m *= 2
    return FftPlan(n=n, stages=tuple(stages), twiddle_re=tuple(tw_re),
                   twiddle_im=tuple(tw_im))
