"""Vectorized Stockham FFT over *interleaved* complex data (AoS layout).

The main vector FFT uses a structure-of-arrays layout (separate re/im
buffers). Real signal-processing pipelines often hand the FFT interleaved
``re,im,re,im,...`` buffers (the C ``double complex`` layout); RVV's
segment loads/stores (``vlseg2e``/``vsseg2e``) de-interleave such records
in one instruction, so the kernel body stays identical to the SoA one.

Included as an extension study: the ablation bench compares SoA vs AoS to
quantify what the segment unit buys over the two-pass alternative
(strided loads would halve effective bandwidth; an explicit transpose
would double the traffic).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelOutput
from repro.kernels.fft.plan import make_plan
from repro.soc.sdv import Session

ALU_PER_STRIP = 4
ALU_PER_GROUP = 3


def fft_vector_aos(session: Session, signal: tuple[np.ndarray, np.ndarray]
                   ) -> KernelOutput:
    """Stockham FFT with interleaved complex buffers via segment accesses."""
    re_in, im_in = signal
    n = re_in.shape[0]
    plan = make_plan(n)
    mem, scl, vec = session.mem, session.scalar, session.vector

    inter = np.empty(2 * n)
    inter[0::2] = np.asarray(re_in, dtype=np.float64)
    inter[1::2] = np.asarray(im_in, dtype=np.float64)
    a_x = mem.alloc("fft.x_aos", inter)
    a_y = mem.alloc("fft.y_aos", 2 * n, np.float64)
    tw_re = [mem.alloc(f"fft.tw_re{s}", t) for s, t in enumerate(plan.twiddle_re)]
    tw_im = [mem.alloc(f"fft.tw_im{s}", t) for s, t in enumerate(plan.twiddle_im)]

    cur, nxt = a_x, a_y
    maxvl = vec.max_vl

    for st in plan.stages:
        l, m, lm = st.l, st.m, st.half_offset
        a_twr, a_twi = tw_re[st.index], tw_im[st.index]

        if m >= maxvl:
            # late stages: segment loads replace the two unit loads per half
            for j in range(l):
                wr = scl.load_f64(a_twr, j)
                wi = scl.load_f64(a_twi, j)
                scl.alu(ALU_PER_GROUP)
                scl.flush(label=f"fft-aos-twiddle-s{st.index}")
                base = j * m
                out0 = 2 * j * m
                k = 0
                while k < m:
                    vl = vec.vsetvl(m - k)
                    scl.emit_alu(ALU_PER_STRIP, label="fft-aos-strip")
                    ar, ai = vec.vlseg(cur, 2, offset=base + k)
                    br, bi = vec.vlseg(cur, 2, offset=base + lm + k)
                    y0r = vec.vfadd(ar, br)
                    y0i = vec.vfadd(ai, bi)
                    tr = vec.vfsub(ar, br)
                    ti = vec.vfsub(ai, bi)
                    y1r = vec.vfmul(tr, wr)
                    y1r = vec.vfmacc(y1r, ti, -wi)
                    y1i = vec.vfmul(tr, wi)
                    y1i = vec.vfmacc(y1i, ti, wr)
                    vec.vsseg([y0r, y0i], nxt, offset=out0 + k)
                    vec.vsseg([y1r, y1i], nxt, offset=out0 + m + k)
                    k += vl
        else:
            # early stages: the (j,k) block is contiguous in *records*, so
            # segment loads still apply; outputs scatter via interleaved
            # element positions (2*pos for re, 2*pos+1 for im)
            groups_per_strip = maxvl // m
            log2m = st.log2_m
            j0 = 0
            while j0 < l:
                gcount = min(groups_per_strip, l - j0)
                vec.vsetvl(gcount * m)
                scl.emit_alu(ALU_PER_STRIP, label="fft-aos-strip-batched")
                base = j0 * m
                ar, ai = vec.vlseg(cur, 2, offset=base)
                br, bi = vec.vlseg(cur, 2, offset=base + lm)
                idx = vec.vid()
                jvec = vec.vadd(vec.vsrl(idx, log2m), j0)
                wr = vec.vlxe(a_twr, jvec)
                wi = vec.vlxe(a_twi, jvec)
                y0r = vec.vfadd(ar, br)
                y0i = vec.vfadd(ai, bi)
                tr = vec.vfsub(ar, br)
                ti = vec.vfsub(ai, bi)
                y1r = vec.vfmul(tr, wr)
                negwi = vec.vfneg(wi)
                y1r = vec.vfmacc(y1r, ti, negwi)
                y1i = vec.vfmul(tr, wi)
                y1i = vec.vfmacc(y1i, ti, wr)
                kpart = vec.vand(idx, m - 1)
                pos0 = vec.vadd(vec.vsll(jvec, log2m + 1), kpart)
                pos0r = vec.vsll(pos0, 1)            # interleaved re slot
                pos0i = vec.vadd(pos0r, 1)
                pos1r = vec.vadd(pos0r, 2 * m)
                pos1i = vec.vadd(pos1r, 1)
                vec.vsxe(y0r, nxt, pos0r)
                vec.vsxe(y0i, nxt, pos0i)
                vec.vsxe(y1r, nxt, pos1r)
                vec.vsxe(y1i, nxt, pos1i)
                j0 += gcount

        scl.barrier(f"fft-aos-stage-{st.index}")
        cur, nxt = nxt, cur

    out = cur.view[0::2] + 1j * cur.view[1::2]
    return KernelOutput(value=out.copy(), meta={"n": n, "layout": "aos",
                                                "stages": plan.n_stages})
