"""Radix-2 Stockham FFT kernel (scalar + long-vector), 2048 points in the
paper's evaluation."""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelOutput, KernelSpec
from repro.kernels.fft.plan import FftPlan, FftStage, make_plan
from repro.kernels.fft.scalar import fft_scalar
from repro.kernels.fft.vector import fft_vector
from repro.kernels.fft.vector_aos import fft_vector_aos
from repro.workloads.scales import Scale
from repro.workloads.signals import make_signal


def _prepare(scale: Scale, seed: int):
    return make_signal(scale.fft_n, kind="tones", seed=seed)


def _reference(signal):
    re, im = signal
    return np.fft.fft(re + 1j * im)


def _check(out: KernelOutput, ref) -> bool:
    return bool(np.allclose(out.value, ref, rtol=1e-9, atol=1e-9))


FFT_SPEC = KernelSpec(
    name="fft",
    prepare=_prepare,
    scalar=fft_scalar,
    vector=fft_vector,
    reference=_reference,
    check=_check,
    description="Radix-2 Stockham FFT, 2048 points "
                "(scalar loops vs unit-stride/gather-scatter long-vector)",
)

__all__ = ["FFT_SPEC", "fft_scalar", "fft_vector", "fft_vector_aos",
           "make_plan", "FftPlan", "FftStage"]
