"""Scalar Stockham FFT.

Same stage geometry as the vector variant (apples-to-apples). Per butterfly:
4 loads (a.re, a.im, b.re, b.im), ~10 FP/int ops, 4 stores; the per-group
twiddle pair is loaded once per group. Address streams are assembled with
NumPy per stage.

Consecutive butterflies within a run are independent, so ``mlp_hint`` stays
unbounded — but FFT's strided store pattern defeats much of the L1's
spatial locality in early stages, which is what makes it latency-sensitive.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelOutput
from repro.kernels.fft.plan import make_plan
from repro.soc.sdv import Session

ALU_PER_BUTTERFLY = 10
ALU_PER_GROUP = 4


def fft_scalar(session: Session, signal: tuple[np.ndarray, np.ndarray]
               ) -> KernelOutput:
    """Run the scalar Stockham FFT; returns the complex spectrum."""
    re_in, im_in = signal
    n = re_in.shape[0]
    plan = make_plan(n)
    mem, scl = session.mem, session.scalar

    a_xre = mem.alloc("fft.x_re", np.asarray(re_in, dtype=np.float64))
    a_xim = mem.alloc("fft.x_im", np.asarray(im_in, dtype=np.float64))
    a_yre = mem.alloc("fft.y_re", n, np.float64)
    a_yim = mem.alloc("fft.y_im", n, np.float64)
    tw_re = [mem.alloc(f"fft.tw_re{s}", t) for s, t in enumerate(plan.twiddle_re)]
    tw_im = [mem.alloc(f"fft.tw_im{s}", t) for s, t in enumerate(plan.twiddle_im)]

    cur = (a_xre, a_xim)
    nxt = (a_yre, a_yim)
    for st in plan.stages:
        l, m = st.l, st.m
        j = np.repeat(np.arange(l, dtype=np.int64), m)
        k = np.tile(np.arange(m, dtype=np.int64), l)
        src_a = j * m + k
        src_b = src_a + st.half_offset
        dst0 = 2 * j * m + k
        dst1 = dst0 + m

        xre, xim = cur
        yre, yim = nxt
        # stream per butterfly: [a.re, a.im, b.re, b.im, y0.re, y0.im,
        #                        y1.re, y1.im]; one [w.re, w.im] per group
        nb = n // 2
        per_bf = 8
        bf_addrs = np.stack([
            xre.addr(src_a), xim.addr(src_a),
            xre.addr(src_b), xim.addr(src_b),
            yre.addr(dst0), yim.addr(dst0),
            yre.addr(dst1), yim.addr(dst1),
        ], axis=1)
        bf_writes = np.zeros((nb, per_bf), dtype=bool)
        bf_writes[:, 4:] = True

        # inject the twiddle loads at each group boundary
        grp_pos = np.arange(l, dtype=np.int64) * (m * per_bf + 2)
        stream_len = nb * per_bf + 2 * l
        addrs = np.empty(stream_len, dtype=np.int64)
        writes = np.zeros(stream_len, dtype=bool)
        addrs[grp_pos] = tw_re[st.index].addr(np.arange(l))
        addrs[grp_pos + 1] = tw_im[st.index].addr(np.arange(l))
        bf_base = (grp_pos[j] + 2
                   + per_bf * (np.arange(nb, dtype=np.int64) - j * m))
        for col in range(per_bf):
            addrs[bf_base + col] = bf_addrs[:, col]
            writes[bf_base + col] = bf_writes[:, col]

        scl.emit_block(addrs, writes,
                       ALU_PER_BUTTERFLY * nb + ALU_PER_GROUP * l,
                       label=f"fft-scalar-s{st.index}")
        scl.barrier(f"fft-stage-{st.index}")

        # functional stage (the loop's semantics, vectorized)
        a_r = xre.view[src_a]
        a_i = xim.view[src_a]
        b_r = xre.view[src_b]
        b_i = xim.view[src_b]
        w_r = plan.twiddle_re[st.index][j]
        w_i = plan.twiddle_im[st.index][j]
        yre.view[dst0] = a_r + b_r
        yim.view[dst0] = a_i + b_i
        tr = a_r - b_r
        ti = a_i - b_i
        yre.view[dst1] = tr * w_r - ti * w_i
        yim.view[dst1] = tr * w_i + ti * w_r
        cur, nxt = nxt, cur

    out = cur[0].view + 1j * cur[1].view
    return KernelOutput(value=out.copy(), meta={"n": n,
                                                "stages": plan.n_stages})
