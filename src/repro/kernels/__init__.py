"""The four evaluated kernels (Section 3.1), scalar + vector each.

* :mod:`spmv` — sparse matrix-vector product: scalar CSR vs. the
  SELL-C-sigma long-vector formulation (the lineage of the paper's SpMV
  reference [Gomez et al. 2020]);
* :mod:`bfs` — level-synchronous breadth-first search with a vectorized
  frontier expansion + levels-scan frontier rebuild;
* :mod:`pagerank` — pull-style PageRank over the transpose adjacency,
  vectorized like a pattern-only SELL SpMV;
* :mod:`fft` — radix-2 Stockham FFT (autosorting, structure-of-arrays),
  unit-stride in late stages and index-arithmetic gather/scatter in early
  stages, following the long-vector FFT formulation of [Vizcaino et al.].

Every kernel is exposed through a :class:`repro.kernels.base.KernelSpec`
(workload preparation, scalar builder, vector builder, reference check) so
the study harness can sweep them uniformly. ``KERNELS`` maps the paper's
kernel names to their specs.
"""

from repro.kernels import micro
from repro.kernels.base import KernelSpec, KernelOutput
from repro.kernels.spmv import SPMV_SPEC
from repro.kernels.bfs import BFS_SPEC
from repro.kernels.pagerank import PAGERANK_SPEC
from repro.kernels.fft import FFT_SPEC

#: kernel name -> spec, in the paper's presentation order
KERNELS: dict[str, KernelSpec] = {
    "spmv": SPMV_SPEC,
    "bfs": BFS_SPEC,
    "pagerank": PAGERANK_SPEC,
    "fft": FFT_SPEC,
}

__all__ = ["KernelSpec", "KernelOutput", "KERNELS", "micro",
           "SPMV_SPEC", "BFS_SPEC", "PAGERANK_SPEC", "FFT_SPEC"]
