"""Machine-characterization microkernels (STREAM-style).

The paper's group characterizes its prototypes with micro-level probes
before running applications; this module provides the same for the
simulated FPGA-SDV:

* STREAM **copy / scale / add / triad** — peak streaming bandwidth,
* **gather / scatter** — indexed-access throughput,
* **pointer chase** (scalar) — raw load-to-use latency, the quantity the
  Latency Controller adds to,
* **reduction** — lane-tree + sync cost.

`characterize_machine` runs the probe set and reports achieved B/cycle and
latency, which the test suite checks against the configured hardware
numbers — a self-consistency proof that the timing engines realize the
machine the config describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.base import KernelOutput
from repro.soc.sdv import FpgaSdv, Session
from repro.util.prng import make_rng

#: default working-set size (elements) — large enough to stream from DRAM
DEFAULT_N = 1 << 15


def stream_copy(session: Session, n: int = DEFAULT_N) -> KernelOutput:
    """b[i] = a[i] — pure bandwidth, no FP."""
    mem, vec = session.mem, session.vector
    a = mem.alloc("micro.a", np.arange(n, dtype=np.float64))
    b = mem.alloc("micro.b", n, np.float64)
    i = 0
    while i < n:
        vl = vec.vsetvl(n - i)
        vec.vse(vec.vle(a, i), b, i)
        i += vl
    return KernelOutput(value=b.view.copy(), meta={"bytes": 16 * n})


def stream_scale(session: Session, n: int = DEFAULT_N,
                 q: float = 3.0) -> KernelOutput:
    """b[i] = q * a[i]."""
    mem, vec = session.mem, session.vector
    a = mem.alloc("micro.a", np.arange(n, dtype=np.float64))
    b = mem.alloc("micro.b", n, np.float64)
    i = 0
    while i < n:
        vl = vec.vsetvl(n - i)
        vec.vse(vec.vfmul(vec.vle(a, i), q), b, i)
        i += vl
    return KernelOutput(value=b.view.copy(), meta={"bytes": 16 * n})


def stream_add(session: Session, n: int = DEFAULT_N) -> KernelOutput:
    """c[i] = a[i] + b[i]."""
    mem, vec = session.mem, session.vector
    a = mem.alloc("micro.a", np.arange(n, dtype=np.float64))
    b = mem.alloc("micro.b", np.arange(n, dtype=np.float64))
    c = mem.alloc("micro.c", n, np.float64)
    i = 0
    while i < n:
        vl = vec.vsetvl(n - i)
        vec.vse(vec.vfadd(vec.vle(a, i), vec.vle(b, i)), c, i)
        i += vl
    return KernelOutput(value=c.view.copy(), meta={"bytes": 24 * n})


def stream_triad(session: Session, n: int = DEFAULT_N,
                 q: float = 3.0) -> KernelOutput:
    """c[i] = a[i] + q * b[i] — the canonical STREAM kernel."""
    mem, vec = session.mem, session.vector
    a = mem.alloc("micro.a", np.arange(n, dtype=np.float64))
    b = mem.alloc("micro.b", np.arange(n, dtype=np.float64))
    c = mem.alloc("micro.c", n, np.float64)
    i = 0
    while i < n:
        vl = vec.vsetvl(n - i)
        av = vec.vle(a, i)
        bv = vec.vle(b, i)
        vec.vse(vec.vfmacc(av, bv, q), c, i)
        i += vl
    return KernelOutput(value=c.view.copy(), meta={"bytes": 24 * n})


def gather_probe(session: Session, n: int = DEFAULT_N,
                 seed: int = 5) -> KernelOutput:
    """b[i] = a[idx[i]] with uniform-random indices."""
    mem, vec = session.mem, session.vector
    rng = make_rng(seed, "gather")
    a = mem.alloc("micro.a", rng.random(n))
    idx = mem.alloc("micro.idx", rng.integers(0, n, n))
    b = mem.alloc("micro.b", n, np.float64)
    i = 0
    while i < n:
        vl = vec.vsetvl(n - i)
        iv = vec.vle(idx, i)
        vec.vse(vec.vlxe(a, iv), b, i)
        i += vl
    return KernelOutput(value=b.view.copy(), meta={"bytes": 24 * n})


def scatter_probe(session: Session, n: int = DEFAULT_N,
                  seed: int = 5) -> KernelOutput:
    """b[perm[i]] = a[i] with a random permutation (no collisions)."""
    mem, vec = session.mem, session.vector
    rng = make_rng(seed, "scatter")
    perm = rng.permutation(n).astype(np.int64)
    a = mem.alloc("micro.a", rng.random(n))
    p = mem.alloc("micro.perm", perm)
    b = mem.alloc("micro.b", n, np.float64)
    i = 0
    while i < n:
        vl = vec.vsetvl(n - i)
        pv = vec.vle(p, i)
        av = vec.vle(a, i)
        vec.vsxe(av, b, pv)
        i += vl
    return KernelOutput(value=b.view.copy(), meta={"bytes": 24 * n})


def pointer_chase(session: Session, n: int = 1 << 14,
                  hops: int = 2048, seed: int = 5) -> KernelOutput:
    """Scalar linked-list walk: the load-to-use latency probe.

    Every load depends on the previous one (``mlp_hint=1``), so the
    measured cycles/hop approximate the configured memory latency once the
    ring exceeds the caches.
    """
    mem, scl = session.mem, session.scalar
    rng = make_rng(seed, "chase")
    # one node per cache line (stride 8 doubles), randomly linked into a
    # ring, so every hop is a fresh line and reads pure latency
    stride = 8
    order = rng.permutation(n).astype(np.int64)
    nxt = np.zeros(n * stride, dtype=np.int64)
    nxt[order[:-1] * stride] = order[1:]
    nxt[order[-1] * stride] = order[0]
    ring = mem.alloc("micro.ring", nxt)

    node = int(order[0])
    addrs = np.empty(hops, dtype=np.int64)
    for h in range(hops):
        addrs[h] = ring.addr(node * stride)
        node = int(ring.view[node * stride])
    scl.emit_block(addrs, False, hops, mlp_hint=1, label="pointer-chase")
    return KernelOutput(value=node, meta={"hops": hops})


@dataclass(frozen=True)
class MachineProbe:
    """Measured characteristics of the simulated machine."""

    triad_bytes_per_cycle: float
    copy_bytes_per_cycle: float
    gather_bytes_per_cycle: float
    chase_cycles_per_hop: float

    def render(self) -> str:
        return (
            f"copy   : {self.copy_bytes_per_cycle:6.2f} B/cycle\n"
            f"triad  : {self.triad_bytes_per_cycle:6.2f} B/cycle\n"
            f"gather : {self.gather_bytes_per_cycle:6.2f} B/cycle\n"
            f"latency: {self.chase_cycles_per_hop:6.1f} cycles/hop "
            "(pointer chase)"
        )


def characterize_machine(sdv: FpgaSdv, *, n: int = DEFAULT_N
                         ) -> MachineProbe:
    """Run the probe set on ``sdv`` at its current knob settings."""
    def run(builder, **kwargs):
        session = sdv.session()
        out = builder(session, **kwargs)
        report = sdv.time(session.seal())
        return out, report

    out_c, rep_c = run(stream_copy, n=n)
    out_t, rep_t = run(stream_triad, n=n)
    out_g, rep_g = run(gather_probe, n=n)
    out_p, rep_p = run(pointer_chase)

    return MachineProbe(
        triad_bytes_per_cycle=out_t.meta["bytes"] / rep_t.cycles,
        copy_bytes_per_cycle=out_c.meta["bytes"] / rep_c.cycles,
        gather_bytes_per_cycle=out_g.meta["bytes"] / rep_g.cycles,
        chase_cycles_per_hop=rep_p.cycles / out_p.meta["hops"],
    )


def transpose_probe(session: Session, side: int = 64) -> KernelOutput:
    """b = a.T for a side x side matrix: the strided-access probe.

    Column-major (``vlse``) reads against row-major stores exercise the
    STRIDED pattern: each strided access touches ``vl`` distinct lines, so
    the probe reads the machine's line-request throughput the way a bad
    layout would.
    """
    mem, vec = session.mem, session.vector
    a = mem.alloc("micro.mat_a",
                  np.arange(side * side, dtype=np.float64))
    b = mem.alloc("micro.mat_b", side * side, np.float64)
    for col in range(side):
        i = 0
        while i < side:
            vl = vec.vsetvl(side - i)
            v = vec.vlse(a, col + i * side, side)   # walk down column `col`
            vec.vse(v, b, col * side + i)           # contiguous row of b
            i += vl
    expected = a.view.reshape(side, side).T.copy().ravel()
    return KernelOutput(value=b.view.copy(),
                        meta={"bytes": 16 * side * side,
                              "expected": expected})
