"""PageRank kernel (pull-style, scalar + long-vector).

Both variants compute the same fixed number of damped power iterations
(``iters``) in the *pull* formulation over the transpose adjacency::

    rnorm[j] = r[j] / outdeg[j]                  # normalize pass
    y[i]     = sum over in-neighbors j of rnorm[j]   # accumulate pass
    r[i]     = (1-d)/n + d * y[i]                # damping pass (+ |delta|)

The accumulate pass is structurally an SpMV with unit values, so the vector
variant reuses the SELL-C-sigma machinery with a pattern-only chunk layout.
The paper reports PR as "slightly more computational intensity" than BFS —
the normalize/damping passes add streaming FP work per node.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelOutput, KernelSpec
from repro.kernels.pagerank.reference import pagerank_reference
from repro.kernels.pagerank.scalar import pagerank_scalar
from repro.kernels.pagerank.vector import pagerank_vector
from repro.workloads.graphs import rmat_graph
from repro.workloads.scales import Scale

DAMPING = 0.85


def _prepare(scale: Scale, seed: int):
    g = rmat_graph(scale.graph_nodes, edge_factor=scale.graph_edge_factor,
                   seed=seed)
    return {"graph": g, "iters": scale.pagerank_iters}


def _reference(wl):
    return pagerank_reference(wl["graph"], iters=wl["iters"], damping=DAMPING)


def _check(out: KernelOutput, ref) -> bool:
    return bool(np.allclose(out.value, ref, rtol=1e-10, atol=1e-13))


def _scalar(session, wl):
    return pagerank_scalar(session, wl["graph"], iters=wl["iters"],
                           damping=DAMPING)


def _vector(session, wl):
    return pagerank_vector(session, wl["graph"], iters=wl["iters"],
                           damping=DAMPING)


PAGERANK_SPEC = KernelSpec(
    name="pagerank",
    prepare=_prepare,
    scalar=_scalar,
    vector=_vector,
    reference=_reference,
    check=_check,
    description="Pull-style damped PageRank on an R-MAT graph "
                "(scalar CSR-T loop vs SELL pattern-only accumulate)",
)

__all__ = ["PAGERANK_SPEC", "pagerank_scalar", "pagerank_vector",
           "pagerank_reference", "DAMPING"]
