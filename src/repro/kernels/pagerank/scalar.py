"""Scalar pull-style PageRank.

Per iteration, three loops::

    # normalize: rnorm[j] = r[j]/outdeg[j]; dsum += r[j] if dangling
    # accumulate: y[i] = sum_k rnorm[t_indices[k]]   (the gather loop)
    # damping:   r[i] = (1-d)/n + d*(y[i] + dsum/n)

The accumulate loop is the memory-bound heart (same structure as scalar
SpMV without a values stream); normalize/damping are unit-stride streaming
passes that give PR its higher arithmetic intensity compared to BFS.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelOutput
from repro.kernels.pagerank.reference import pagerank_reference
from repro.soc.sdv import Session
from repro.workloads.graphs import CsrGraph

ALU_PER_EDGE = 3
ALU_PER_ROW = 4
ALU_PER_NORM = 5     # div + dangling branch + loop
ALU_PER_DAMP = 5     # fma + loop


def pagerank_scalar(session: Session, g: CsrGraph, *, iters: int,
                    damping: float = 0.85) -> KernelOutput:
    """Run ``iters`` scalar PR iterations; returns the rank vector."""
    n = g.n
    mem, scl = session.mem, session.scalar

    outdeg = g.out_degrees.astype(np.float64)
    a_tptr = mem.alloc("pr.t_indptr", g.t_indptr)
    a_tidx = mem.alloc("pr.t_indices", g.t_indices)
    a_deg = mem.alloc("pr.outdeg", outdeg)
    a_r = mem.alloc("pr.r", np.full(n, 1.0 / n))
    a_rnorm = mem.alloc("pr.rnorm", n, np.float64)
    a_y = mem.alloc("pr.y", n, np.float64)

    m = g.t_indices.shape[0]
    rows = np.arange(n, dtype=np.int64)
    dst_counts = np.diff(g.t_indptr)
    k = np.arange(m, dtype=np.int64)
    row_of_k = np.repeat(rows, dst_counts)

    for _ in range(iters):
        # --- normalize pass (unit streams: r, outdeg, rnorm) -------------
        norm_addrs = np.stack(
            [a_r.addr(rows), a_deg.addr(rows), a_rnorm.addr(rows)], axis=1
        ).reshape(-1)
        norm_writes = np.zeros(3 * n, dtype=bool)
        norm_writes[2::3] = True
        scl.emit_block(norm_addrs, norm_writes, ALU_PER_NORM * n,
                       label="pr-normalize")

        # --- accumulate pass (header + [t_indices, rnorm gather] pairs) --
        stream_len = 2 * m + 2 * n
        addrs = np.empty(stream_len, dtype=np.int64)
        writes = np.zeros(stream_len, dtype=bool)
        row_off = 2 * g.t_indptr[:-1] + 2 * rows
        addrs[row_off] = a_tptr.addr(rows + 1)
        y_pos = row_off + 1 + 2 * dst_counts
        addrs[y_pos] = a_y.addr(rows)
        writes[y_pos] = True
        base_k = row_off[row_of_k] + 1 + 2 * (k - g.t_indptr[row_of_k])
        addrs[base_k] = a_tidx.addr(k)
        addrs[base_k + 1] = a_rnorm.addr(g.t_indices)
        scl.emit_block(addrs, writes, ALU_PER_EDGE * m + ALU_PER_ROW * n,
                       label="pr-accumulate")

        # --- damping pass (unit streams: y, r) ----------------------------
        damp_addrs = np.stack([a_y.addr(rows), a_r.addr(rows)],
                              axis=1).reshape(-1)
        damp_writes = np.zeros(2 * n, dtype=bool)
        damp_writes[1::2] = True
        scl.emit_block(damp_addrs, damp_writes, ALU_PER_DAMP * n,
                       label="pr-damping")
        scl.barrier("pr-iter-end")

    r = pagerank_reference(g, iters=iters, damping=damping)
    a_r.view[:] = r
    return KernelOutput(value=r, meta={"iters": iters, "n": n, "m": m})
