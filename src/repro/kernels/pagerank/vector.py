"""Vectorized pull-style PageRank (SELL pattern-only accumulate).

Per iteration:

1. **normalize** (streaming): ``rnorm = r / safe_deg`` with the dangling
   mass accumulated in a vector register (``vfmacc`` against a 0/1
   dangling-indicator stream) and reduced once per iteration — no per-strip
   scalar syncs;
2. **accumulate**: compact SELL-C-sigma sweep over the transpose adjacency
   — unit loads of the column slots (compact jagged layout: R-MAT in-degree
   skew would make padded slots explode), gathers of ``rnorm``,
   tail-undisturbed ``vfadd`` accumulation (values are implicitly 1, so no
   vals stream at all), scatter to ``y`` through the row permutation; column
   loads are software-pipelined one slot ahead, as in SpMV;
3. **damping** (streaming): ``r = (1-d)/n + d*(y + dmass)``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.kernels.base import KernelOutput
from repro.kernels.spmv.formats import build_sell
from repro.soc.sdv import Session
from repro.trace import modes
from repro.trace.events import OPCLASS_ID, PATTERN_ID, VMemPattern, VOpClass
from repro.trace.template import Dep, TraceTemplate
from repro.workloads.graphs import CsrGraph

ALU_PER_CHUNK = 6
ALU_PER_SLOT = 2
ALU_PER_STRIP = 3

#: sigma window for the SELL conversion of the transpose adjacency
SIGMA = 4096

_I64 = np.int64
_EMPTY_A = np.empty(0, dtype=np.int64)
_EMPTY_W = np.empty(0, dtype=bool)


def _pr_iteration_templated(session: Session, sell, allocs, n: int,
                            damping: float) -> None:
    """One templated PR iteration: identical trace + memory effects.

    Each pass's strip/slot body is recorded once and replicated; the
    functional math runs on whole arrays with the same elementwise
    operation sequence as the interpreter path (division, multiply-then-add
    for vfmacc, per-slot accumulate order), so results are bit-identical.
    """
    trace = session.trace
    scl = session.scalar
    a_cols, a_slot_off, a_perm, a_safedeg, a_dang, a_r, a_rnorm, a_y = allocs
    maxvl = session.vector.max_vl
    chunk = maxvl

    csr_id = OPCLASS_ID[VOpClass.CSR]
    arith_id = OPCLASS_ID[VOpClass.ARITH]
    heavy_id = OPCLASS_ID[VOpClass.ARITH_HEAVY]
    reduce_id = OPCLASS_ID[VOpClass.REDUCE]
    mem_id = OPCLASS_ID[VOpClass.MEM]
    unit_id = PATTERN_ID[VMemPattern.UNIT]
    idx_id = PATTERN_ID[VMemPattern.INDEXED]
    op_vsetvl = trace.intern("vsetvl")
    op_vfmv = trace.intern("vfmv.v.f")
    op_vle = trace.intern("vle")
    op_vse = trace.intern("vse")
    op_vlxe = trace.intern("vlxe")
    op_vsxe = trace.intern("vsxe")
    op_vfdiv = trace.intern("vfdiv")
    op_vfmul = trace.intern("vfmul")
    op_vfadd = trace.intern("vfadd")
    op_vfmacc = trace.intern("vfmacc")
    op_vfredsum = trace.intern("vfredsum")
    lbl_tail = trace.intern("pr-norm-tail")
    lbl_chunk = trace.intern("pr-chunk")
    lbl_ptrs = trace.intern("pr-slot-ptrs")
    lbl_damp = trace.intern("pr-damp")

    rv = a_r.view
    rnv = a_rnorm.view
    yv = a_y.view
    dgv = a_safedeg.view
    ddv = a_dang.view

    # --- normalize pass ---------------------------------------------------
    np.divide(rv, dgv, out=rnv)
    dmass_parts: list[float] = []
    n_full = (n // maxvl) * maxvl
    n_strips = n // maxvl
    if n_full:
        trace.emit_vector(csr_id, maxvl, op_vsetvl, scalar_dest=True)
        trace.emit_vector(arith_id, maxvl, op_vfmv)
        lane8 = np.arange(maxvl, dtype=_I64)
        offs = np.arange(n_strips, dtype=_I64) * (maxvl * 8)
        tpl = TraceTemplate(trace)
        tpl.scalar_block(ALU_PER_STRIP, label="pr-norm")
        s_r = tpl.vector(VOpClass.MEM, maxvl, "vle",
                         pattern=VMemPattern.UNIT,
                         base_addrs=a_r.addr(lane8), iter_offsets=offs)
        s_dg = tpl.vector(VOpClass.MEM, maxvl, "vle",
                          pattern=VMemPattern.UNIT,
                          base_addrs=a_safedeg.addr(lane8),
                          iter_offsets=offs)
        s_rn = tpl.vector(VOpClass.ARITH_HEAVY, maxvl, "vfdiv",
                          dep=Dep.local(s_dg))
        tpl.vector(VOpClass.MEM, maxvl, "vse", pattern=VMemPattern.UNIT,
                   base_addrs=a_rnorm.addr(lane8), iter_offsets=offs,
                   is_write=True, dep=Dep.local(s_rn))
        s_dd = tpl.vector(VOpClass.MEM, maxvl, "vle",
                          pattern=VMemPattern.UNIT,
                          base_addrs=a_dang.addr(lane8), iter_offsets=offs)
        s_acc = tpl.vector(VOpClass.ARITH, maxvl, "vfmacc",
                           dep=Dep.local(s_dd))
        tstart = tpl.replicate(n_strips)
        trace.emit_vector(reduce_id, maxvl, op_vfredsum,
                          dep=tstart + (n_strips - 1) * 7 + s_acc,
                          scalar_dest=True)
        # the strip-order lane accumulate: every product is >= +0.0 (ranks
        # and the 0/1 dangling stream are non-negative), so strips with no
        # dangling node add exactly +0.0 — an identity on the non-negative
        # accumulator — and only the (few) strips containing dangling nodes
        # need to join the sequential per-lane vfmacc chain
        prods = (rv[:n_full] * ddv[:n_full]).reshape(n_strips, maxvl)
        dacc = np.zeros(maxvl, dtype=np.float64)
        for s in np.flatnonzero(
                ddv[:n_full].reshape(n_strips, maxvl).any(axis=1)).tolist():
            dacc += prods[s]
        dmass_parts.append(float(dacc.sum() + 0.0))
    if n_full < n:
        vl_t = n - n_full
        lane_t = np.arange(n_full, n, dtype=_I64)
        trace.emit_vector(csr_id, vl_t, op_vsetvl, scalar_dest=True)
        trace.emit_scalar_block(_EMPTY_A, _EMPTY_W, ALU_PER_STRIP,
                                label_id=lbl_tail)
        r_idx = trace.emit_vector(mem_id, vl_t, op_vle, pattern_id=unit_id,
                                  addrs=a_r.addr(lane_t))
        dg_idx = trace.emit_vector(mem_id, vl_t, op_vle, pattern_id=unit_id,
                                   addrs=a_safedeg.addr(lane_t))
        rn_idx = trace.emit_vector(heavy_id, vl_t, op_vfdiv, dep=dg_idx)
        trace.emit_vector(mem_id, vl_t, op_vse, pattern_id=unit_id,
                          addrs=a_rnorm.addr(lane_t), is_write=True,
                          dep=rn_idx)
        dd_idx = trace.emit_vector(mem_id, vl_t, op_vle, pattern_id=unit_id,
                                   addrs=a_dang.addr(lane_t))
        mul_idx = trace.emit_vector(arith_id, vl_t, op_vfmul, dep=dd_idx)
        trace.emit_vector(reduce_id, vl_t, op_vfredsum, dep=mul_idx,
                          scalar_dest=True)
        dmass_parts.append(float((rv[n_full:] * ddv[n_full:]).sum() + 0.0))
    dmass = sum(dmass_parts) / n
    scl.barrier("pr-normalize-end")

    # --- accumulate pass (pattern-only compact SELL sweep) ----------------
    slot_off = sell.slot_off
    for c in range(sell.n_chunks):
        base_row = c * chunk
        rows_here = min(chunk, n - base_row)
        bs = int(sell.chunk_slot[c])
        width = int(sell.widths[c])
        sl0 = int(slot_off[bs])
        sl_end = int(slot_off[bs + width])
        cnts = np.diff(slot_off[bs:bs + width + 1])
        seg = rnv[sell.cols[sl0:sl_end]]
        acc = np.zeros(rows_here, dtype=np.float64)
        o = 0
        for j in range(width):
            cnt = int(cnts[j])
            acc[:cnt] += seg[o:o + cnt]
            o += cnt
        pi = sell.perm[base_row:base_row + rows_here]
        yv[pi] = acc

        trace.emit_vector(csr_id, rows_here, op_vsetvl, scalar_dest=True)
        trace.emit_scalar_block(_EMPTY_A, _EMPTY_W, ALU_PER_CHUNK,
                                label_id=lbl_chunk)
        trace.emit_vector(arith_id, rows_here, op_vfmv)
        if width > 0:
            trace.emit_scalar_block(
                a_slot_off.addr(np.arange(bs, bs + width + 1, dtype=_I64)),
                np.zeros(width + 1, dtype=bool), 2 * width,
                label_id=lbl_ptrs)
            cnt0 = int(cnts[0])
            trace.emit_vector(csr_id, cnt0, op_vsetvl, scalar_dest=True)
            cols_idx = trace.emit_vector(
                mem_id, cnt0, op_vle, pattern_id=unit_id,
                addrs=a_cols.addr(np.arange(sl0, sl0 + cnt0, dtype=_I64)))
        if width >= 2:
            nxt_cnts = cnts[1:].astype(np.int32)
            cur_cnts = cnts[:-1].astype(np.int32)
            cur_hi = int(slot_off[bs + width - 1])
            tpl = TraceTemplate(trace)
            tpl.scalar_block(ALU_PER_SLOT)
            tpl.vector(VOpClass.CSR, nxt_cnts, "vsetvl", scalar_dest=True)
            s_cols = tpl.vector(
                VOpClass.MEM, nxt_cnts, "vle", pattern=VMemPattern.UNIT,
                flat_addrs=a_cols.addr(
                    np.arange(int(slot_off[bs + 1]), sl_end, dtype=_I64)),
                counts=nxt_cnts)
            tpl.vector(VOpClass.CSR, cur_cnts, "vsetvl", scalar_dest=True)
            s_g = tpl.vector(VOpClass.MEM, cur_cnts, "vlxe",
                             pattern=VMemPattern.INDEXED,
                             flat_addrs=a_rnorm.addr(
                                 sell.cols[sl0:cur_hi]),
                             counts=cur_cnts,
                             dep=Dep.prev(s_cols, first=cols_idx))
            tpl.vector(VOpClass.ARITH, cur_cnts, "vfadd", dep=Dep.local(s_g))
            tstart = tpl.replicate(width - 1)
            last_cols_idx = tstart + (width - 2) * 6 + s_cols
        elif width == 1:
            last_cols_idx = cols_idx
        if width > 0:
            cnt_l = int(cnts[-1])
            lo = int(slot_off[bs + width - 1])
            trace.emit_scalar_block(_EMPTY_A, _EMPTY_W, ALU_PER_SLOT)
            trace.emit_vector(csr_id, cnt_l, op_vsetvl, scalar_dest=True)
            g_idx = trace.emit_vector(
                mem_id, cnt_l, op_vlxe, pattern_id=idx_id,
                addrs=a_rnorm.addr(sell.cols[lo:lo + cnt_l]),
                dep=last_cols_idx)
            trace.emit_vector(arith_id, cnt_l, op_vfadd, dep=g_idx)
        trace.emit_vector(csr_id, rows_here, op_vsetvl, scalar_dest=True)
        pi_idx = trace.emit_vector(
            mem_id, rows_here, op_vle, pattern_id=unit_id,
            addrs=a_perm.addr(
                np.arange(base_row, base_row + rows_here, dtype=_I64)))
        trace.emit_vector(mem_id, rows_here, op_vsxe, pattern_id=idx_id,
                          addrs=a_y.addr(pi), is_write=True, dep=pi_idx)
    scl.barrier("pr-accumulate-end")

    # --- damping pass -----------------------------------------------------
    base = (1.0 - damping) / n
    t = (yv + dmass) * damping
    np.add(t, base, out=rv)
    if n_strips:
        lane8 = np.arange(maxvl, dtype=_I64)
        offs = np.arange(n_strips, dtype=_I64) * (maxvl * 8)
        tpl = TraceTemplate(trace)
        tpl.vector(VOpClass.CSR, maxvl, "vsetvl", scalar_dest=True)
        tpl.scalar_block(ALU_PER_STRIP, label="pr-damp")
        s_y = tpl.vector(VOpClass.MEM, maxvl, "vle",
                         pattern=VMemPattern.UNIT,
                         base_addrs=a_y.addr(lane8), iter_offsets=offs)
        s_t = tpl.vector(VOpClass.ARITH, maxvl, "vfadd", dep=Dep.local(s_y))
        s_t = tpl.vector(VOpClass.ARITH, maxvl, "vfmul", dep=Dep.local(s_t))
        s_t = tpl.vector(VOpClass.ARITH, maxvl, "vfadd", dep=Dep.local(s_t))
        tpl.vector(VOpClass.MEM, maxvl, "vse", pattern=VMemPattern.UNIT,
                   base_addrs=a_r.addr(lane8), iter_offsets=offs,
                   is_write=True, dep=Dep.local(s_t))
        tpl.replicate(n_strips)
    if n_full < n:
        vl_t = n - n_full
        lane_t = np.arange(n_full, n, dtype=_I64)
        trace.emit_vector(csr_id, vl_t, op_vsetvl, scalar_dest=True)
        trace.emit_scalar_block(_EMPTY_A, _EMPTY_W, ALU_PER_STRIP,
                                label_id=lbl_damp)
        y_idx = trace.emit_vector(mem_id, vl_t, op_vle, pattern_id=unit_id,
                                  addrs=a_y.addr(lane_t))
        t_idx = trace.emit_vector(arith_id, vl_t, op_vfadd, dep=y_idx)
        t_idx = trace.emit_vector(arith_id, vl_t, op_vfmul, dep=t_idx)
        t_idx = trace.emit_vector(arith_id, vl_t, op_vfadd, dep=t_idx)
        trace.emit_vector(mem_id, vl_t, op_vse, pattern_id=unit_id,
                          addrs=a_r.addr(lane_t), is_write=True, dep=t_idx)
    scl.barrier("pr-iter-end")


def pagerank_vector(session: Session, g: CsrGraph, *, iters: int,
                    damping: float = 0.85) -> KernelOutput:
    """Run ``iters`` vectorized PR iterations; returns the rank vector."""
    n = g.n
    mem, scl, vec = session.mem, session.scalar, session.vector
    chunk = vec.max_vl

    # host-side data preparation (one-time, untimed — same for both variants)
    pattern = sp.csr_matrix(
        (np.ones(g.t_indices.shape[0]), g.t_indices, g.t_indptr), shape=(n, n)
    )
    sell = build_sell(pattern, chunk=chunk, sigma=min(SIGMA, n))
    outdeg = g.out_degrees.astype(np.float64)
    dangling = (outdeg == 0).astype(np.float64)
    safe_deg = np.where(outdeg == 0, 1.0, outdeg)

    a_cols = mem.alloc("pr.cols_sell", sell.cols)
    a_slot_off = mem.alloc("pr.slot_off", sell.slot_off)
    a_perm = mem.alloc("pr.perm", sell.perm)
    a_safedeg = mem.alloc("pr.safe_deg", safe_deg)
    a_dang = mem.alloc("pr.dangling", dangling)
    a_r = mem.alloc("pr.r", np.full(n, 1.0 / n))
    a_rnorm = mem.alloc("pr.rnorm", n, np.float64)
    a_y = mem.alloc("pr.y", n, np.float64)

    if modes.templating_enabled():
        allocs = (a_cols, a_slot_off, a_perm, a_safedeg, a_dang,
                  a_r, a_rnorm, a_y)
        for _ in range(iters):
            _pr_iteration_templated(session, sell, allocs, n, damping)
        return KernelOutput(
            value=a_r.view.copy(),
            meta={"iters": iters, "n": n, "m": int(g.t_indices.shape[0]),
                  "padding_overhead": sell.padding_overhead},
        )

    for _ in range(iters):
        # --- normalize pass ----------------------------------------------
        dmass_parts: list[float] = []
        off = 0
        maxvl = vec.max_vl
        n_full = (n // maxvl) * maxvl
        if n_full:
            vec.vsetvl(maxvl)
            dacc = vec.vfmv(0.0)
            while off < n_full:
                scl.emit_alu(ALU_PER_STRIP, label="pr-norm")
                r_v = vec.vle(a_r, off)
                dg = vec.vle(a_safedeg, off)
                rn = vec.vfdiv(r_v, dg)
                vec.vse(rn, a_rnorm, off)
                dd = vec.vle(a_dang, off)
                dacc = vec.vfmacc(dacc, r_v, dd)
                off += maxvl
            dmass_parts.append(vec.vfredsum(dacc))
        if off < n:
            vec.vsetvl(n - off)
            scl.emit_alu(ALU_PER_STRIP, label="pr-norm-tail")
            r_v = vec.vle(a_r, off)
            dg = vec.vle(a_safedeg, off)
            rn = vec.vfdiv(r_v, dg)
            vec.vse(rn, a_rnorm, off)
            dd = vec.vle(a_dang, off)
            prod = vec.vfmul(r_v, dd)
            dmass_parts.append(vec.vfredsum(prod))
        dmass = sum(dmass_parts) / n
        scl.barrier("pr-normalize-end")

        # --- accumulate pass (pattern-only compact SELL sweep) -------------
        for c in range(sell.n_chunks):
            base_row = c * chunk
            rows_here = min(chunk, n - base_row)
            vec.vsetvl(rows_here)
            scl.emit_alu(ALU_PER_CHUNK, label="pr-chunk")
            acc = vec.vfmv(0.0)
            base_slot = int(sell.chunk_slot[c])
            width = int(sell.widths[c])
            if width > 0:
                scl.emit_block(
                    a_slot_off.addr(
                        np.arange(base_slot, base_slot + width + 1)),
                    False, 2 * width, label="pr-slot-ptrs",
                )

            def slot_load(j: int):
                start = int(sell.slot_off[base_slot + j])
                cnt = sell.slot_count(c, j)
                vec.vsetvl(cnt)
                return vec.vle(a_cols, start), cnt

            if width > 0:
                cols_next, cnt_next = slot_load(0)
            for j in range(width):
                scl.emit_alu(ALU_PER_SLOT)
                cols, cnt = cols_next, cnt_next
                if j + 1 < width:
                    cols_next, cnt_next = slot_load(j + 1)
                # restore this slot's vl for the compute below — the second
                # vsetvl per slot is the (real) price of software pipelining
                # across slots of different counts
                vec.vsetvl(cnt)
                gath = vec.vlxe(a_rnorm, cols)
                accp = vec.with_vl(acc)
                accp = vec.vfadd(accp, gath)
                acc = vec.merge_tail(accp, acc)
            vec.vsetvl(rows_here)
            acc = vec.with_vl(acc)
            pi = vec.vle(a_perm, base_row)
            vec.vsxe(acc, a_y, pi)
        scl.barrier("pr-accumulate-end")

        # --- damping pass --------------------------------------------------
        base = (1.0 - damping) / n
        off = 0
        while off < n:
            vl = vec.vsetvl(n - off)
            scl.emit_alu(ALU_PER_STRIP, label="pr-damp")
            y_v = vec.vle(a_y, off)
            t = vec.vfadd(y_v, dmass)
            t = vec.vfmul(t, damping)
            t = vec.vfadd(t, base)
            vec.vse(t, a_r, off)
            off += vl
        scl.barrier("pr-iter-end")

    # the rank vector was computed *through* the vector ISA; tests compare
    # it against pagerank_reference
    return KernelOutput(
        value=a_r.view.copy(),
        meta={"iters": iters, "n": n, "m": int(g.t_indices.shape[0]),
              "padding_overhead": sell.padding_overhead},
    )
