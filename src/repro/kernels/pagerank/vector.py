"""Vectorized pull-style PageRank (SELL pattern-only accumulate).

Per iteration:

1. **normalize** (streaming): ``rnorm = r / safe_deg`` with the dangling
   mass accumulated in a vector register (``vfmacc`` against a 0/1
   dangling-indicator stream) and reduced once per iteration — no per-strip
   scalar syncs;
2. **accumulate**: compact SELL-C-sigma sweep over the transpose adjacency
   — unit loads of the column slots (compact jagged layout: R-MAT in-degree
   skew would make padded slots explode), gathers of ``rnorm``,
   tail-undisturbed ``vfadd`` accumulation (values are implicitly 1, so no
   vals stream at all), scatter to ``y`` through the row permutation; column
   loads are software-pipelined one slot ahead, as in SpMV;
3. **damping** (streaming): ``r = (1-d)/n + d*(y + dmass)``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.kernels.base import KernelOutput
from repro.kernels.spmv.formats import build_sell
from repro.soc.sdv import Session
from repro.workloads.graphs import CsrGraph

ALU_PER_CHUNK = 6
ALU_PER_SLOT = 2
ALU_PER_STRIP = 3

#: sigma window for the SELL conversion of the transpose adjacency
SIGMA = 4096


def pagerank_vector(session: Session, g: CsrGraph, *, iters: int,
                    damping: float = 0.85) -> KernelOutput:
    """Run ``iters`` vectorized PR iterations; returns the rank vector."""
    n = g.n
    mem, scl, vec = session.mem, session.scalar, session.vector
    chunk = vec.max_vl

    # host-side data preparation (one-time, untimed — same for both variants)
    pattern = sp.csr_matrix(
        (np.ones(g.t_indices.shape[0]), g.t_indices, g.t_indptr), shape=(n, n)
    )
    sell = build_sell(pattern, chunk=chunk, sigma=min(SIGMA, n))
    outdeg = g.out_degrees.astype(np.float64)
    dangling = (outdeg == 0).astype(np.float64)
    safe_deg = np.where(outdeg == 0, 1.0, outdeg)

    a_cols = mem.alloc("pr.cols_sell", sell.cols)
    a_slot_off = mem.alloc("pr.slot_off", sell.slot_off)
    a_perm = mem.alloc("pr.perm", sell.perm)
    a_safedeg = mem.alloc("pr.safe_deg", safe_deg)
    a_dang = mem.alloc("pr.dangling", dangling)
    a_r = mem.alloc("pr.r", np.full(n, 1.0 / n))
    a_rnorm = mem.alloc("pr.rnorm", n, np.float64)
    a_y = mem.alloc("pr.y", n, np.float64)

    for _ in range(iters):
        # --- normalize pass ----------------------------------------------
        dmass_parts: list[float] = []
        off = 0
        maxvl = vec.max_vl
        n_full = (n // maxvl) * maxvl
        if n_full:
            vec.vsetvl(maxvl)
            dacc = vec.vfmv(0.0)
            while off < n_full:
                scl.emit_alu(ALU_PER_STRIP, label="pr-norm")
                r_v = vec.vle(a_r, off)
                dg = vec.vle(a_safedeg, off)
                rn = vec.vfdiv(r_v, dg)
                vec.vse(rn, a_rnorm, off)
                dd = vec.vle(a_dang, off)
                dacc = vec.vfmacc(dacc, r_v, dd)
                off += maxvl
            dmass_parts.append(vec.vfredsum(dacc))
        if off < n:
            vec.vsetvl(n - off)
            scl.emit_alu(ALU_PER_STRIP, label="pr-norm-tail")
            r_v = vec.vle(a_r, off)
            dg = vec.vle(a_safedeg, off)
            rn = vec.vfdiv(r_v, dg)
            vec.vse(rn, a_rnorm, off)
            dd = vec.vle(a_dang, off)
            prod = vec.vfmul(r_v, dd)
            dmass_parts.append(vec.vfredsum(prod))
        dmass = sum(dmass_parts) / n
        scl.barrier("pr-normalize-end")

        # --- accumulate pass (pattern-only compact SELL sweep) -------------
        for c in range(sell.n_chunks):
            base_row = c * chunk
            rows_here = min(chunk, n - base_row)
            vec.vsetvl(rows_here)
            scl.emit_alu(ALU_PER_CHUNK, label="pr-chunk")
            acc = vec.vfmv(0.0)
            base_slot = int(sell.chunk_slot[c])
            width = int(sell.widths[c])
            if width > 0:
                scl.emit_block(
                    a_slot_off.addr(
                        np.arange(base_slot, base_slot + width + 1)),
                    False, 2 * width, label="pr-slot-ptrs",
                )

            def slot_load(j: int):
                start = int(sell.slot_off[base_slot + j])
                cnt = sell.slot_count(c, j)
                vec.vsetvl(cnt)
                return vec.vle(a_cols, start), cnt

            if width > 0:
                cols_next, cnt_next = slot_load(0)
            for j in range(width):
                scl.emit_alu(ALU_PER_SLOT)
                cols, cnt = cols_next, cnt_next
                if j + 1 < width:
                    cols_next, cnt_next = slot_load(j + 1)
                # restore this slot's vl for the compute below — the second
                # vsetvl per slot is the (real) price of software pipelining
                # across slots of different counts
                vec.vsetvl(cnt)
                gath = vec.vlxe(a_rnorm, cols)
                accp = vec.with_vl(acc)
                accp = vec.vfadd(accp, gath)
                acc = vec.merge_tail(accp, acc)
            vec.vsetvl(rows_here)
            acc = vec.with_vl(acc)
            pi = vec.vle(a_perm, base_row)
            vec.vsxe(acc, a_y, pi)
        scl.barrier("pr-accumulate-end")

        # --- damping pass --------------------------------------------------
        base = (1.0 - damping) / n
        off = 0
        while off < n:
            vl = vec.vsetvl(n - off)
            scl.emit_alu(ALU_PER_STRIP, label="pr-damp")
            y_v = vec.vle(a_y, off)
            t = vec.vfadd(y_v, dmass)
            t = vec.vfmul(t, damping)
            t = vec.vfadd(t, base)
            vec.vse(t, a_r, off)
            off += vl
        scl.barrier("pr-iter-end")

    # the rank vector was computed *through* the vector ISA; tests compare
    # it against pagerank_reference
    return KernelOutput(
        value=a_r.view.copy(),
        meta={"iters": iters, "n": n, "m": int(g.t_indices.shape[0]),
              "padding_overhead": sell.padding_overhead},
    )
