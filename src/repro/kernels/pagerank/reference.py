"""Reference PageRank (plain NumPy, pull formulation).

Dangling nodes (zero out-degree) follow the standard redistribution: their
mass spreads uniformly. Tests cross-check the stationary behaviour against
``networkx.pagerank``.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.graphs import CsrGraph


def pagerank_reference(g: CsrGraph, *, iters: int, damping: float = 0.85
                       ) -> np.ndarray:
    """``iters`` damped power iterations from the uniform start vector."""
    n = g.n
    r = np.full(n, 1.0 / n)
    outdeg = g.out_degrees.astype(np.float64)
    dangling = outdeg == 0
    safe_deg = np.where(dangling, 1.0, outdeg)
    src_of_edge = g.t_indices  # in-edge sources, grouped by destination
    dst_counts = np.diff(g.t_indptr)
    dst_of_edge = np.repeat(np.arange(n), dst_counts)

    for _ in range(iters):
        rnorm = r / safe_deg
        y = np.zeros(n)
        np.add.at(y, dst_of_edge, rnorm[src_of_edge])
        dangling_mass = r[dangling].sum() / n
        r = (1.0 - damping) / n + damping * (y + dangling_mass)
    return r
