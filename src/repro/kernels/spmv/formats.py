"""Sparse-matrix storage formats for the SpMV kernel.

The scalar implementation uses plain CSR. The vector implementation uses
**SELL-C-sigma** (sliced ELLPACK with row sorting), the format family the
paper's SpMV reference [Gomez et al. 2020, NEC SX-Aurora] builds on:

* rows are sorted by descending length within windows of ``sigma`` rows
  (bounded permutation keeps x-access locality);
* consecutive ``C`` rows form a *chunk* stored column-major: slot ``j``
  holds element ``j`` of each of the chunk's rows. A unit-stride vector
  load of a slot feeds one lane per row — exactly what a long-vector unit
  wants.

Two slot layouts are supported:

* ``compact=True`` (default) — jagged-diagonal style: because rows within a
  chunk are sorted by descending length, the rows active at slot ``j`` are
  a *prefix* of the chunk; each slot stores exactly that prefix, back to
  back, with a ``slot_off`` pointer array. Zero padding, zero masks: the
  kernel just ``vsetvl``\\ s to the slot's count and relies on RVV's
  tail-undisturbed accumulator semantics. This is what keeps power-law
  inputs (PageRank's transpose graph) from drowning in padded lanes.
* ``compact=False`` — classic padded ELLPACK slots of ``C`` entries,
  retained as an ablation (the padding-overhead benchmark measures what
  compaction buys).

``C`` is chosen equal to the machine's max VL, so a single ``vle`` fills a
whole register with one slot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import KernelError


@dataclass(frozen=True)
class SellMatrix:
    """SELL-C-sigma storage derived from a CSR matrix."""

    n: int
    nnz: int                # original nonzeros (excluding padding)
    chunk: int              # C
    sigma: int
    compact: bool
    perm: np.ndarray        # perm[r] = original row stored at sorted slot r
    rowlen: np.ndarray      # int64[n], lengths in sorted order
    chunk_ptr: np.ndarray   # int64[n_chunks+1], element offsets into vals/cols
    widths: np.ndarray      # int64[n_chunks], max row length per chunk
    vals: np.ndarray        # float64, column-major per chunk
    cols: np.ndarray        # int64, column-major per chunk
    #: compact layout only: index of chunk c's first slot in slot_off
    chunk_slot: np.ndarray  # int64[n_chunks+1]
    #: compact layout only: element offset of each slot (len total_slots+1);
    #: slot k holds elements [slot_off[k], slot_off[k+1])
    slot_off: np.ndarray    # int64

    @property
    def n_chunks(self) -> int:
        return int(self.widths.shape[0])

    @property
    def total_slots(self) -> int:
        return int(self.widths.sum())

    @property
    def padded_nnz(self) -> int:
        return int(self.vals.shape[0])

    @property
    def padding_overhead(self) -> float:
        """Stored/true nonzero ratio (1.0 = no waste; compact is always 1)."""
        return self.padded_nnz / self.nnz if self.nnz else 1.0

    def slot_count(self, chunk_index: int, j: int) -> int:
        """Active lanes of slot ``j`` of chunk ``chunk_index`` (compact)."""
        k = int(self.chunk_slot[chunk_index]) + j
        return int(self.slot_off[k + 1] - self.slot_off[k])


def build_sell(mat: sp.csr_matrix, chunk: int, sigma: int | None = None,
               *, compact: bool = True) -> SellMatrix:
    """Convert CSR to SELL-C-sigma. ``sigma=None`` sorts globally."""
    if mat.shape[0] != mat.shape[1]:
        raise KernelError(f"SpMV expects a square matrix, got {mat.shape}")
    if chunk < 1:
        raise KernelError(f"chunk must be >= 1, got {chunk}")
    n = mat.shape[0]
    sigma = n if sigma is None else max(chunk, sigma)
    indptr = np.asarray(mat.indptr, dtype=np.int64)
    lens = np.diff(indptr)

    # sigma-window descending sort (stable, so ties keep original order)
    perm = np.empty(n, dtype=np.int64)
    for w0 in range(0, n, sigma):
        w1 = min(n, w0 + sigma)
        order = np.argsort(-lens[w0:w1], kind="stable")
        perm[w0:w1] = w0 + order

    rowlen = lens[perm]
    n_chunks = -(-n // chunk)
    padded = np.zeros(n_chunks * chunk, dtype=np.int64)
    padded[:n] = rowlen
    widths = padded.reshape(n_chunks, chunk).max(axis=1)

    data = np.asarray(mat.data, dtype=np.float64)
    indices = np.asarray(mat.indices, dtype=np.int64)

    chunk_slot = np.zeros(n_chunks + 1, dtype=np.int64)
    np.cumsum(widths, out=chunk_slot[1:])

    if compact:
        total_slots = int(widths.sum())
        # per-slot active counts via a difference array: each row adds one
        # lane to slots [chunk_slot[c], chunk_slot[c] + rowlen) of its
        # chunk; rowlen <= width keeps every run inside its chunk, so one
        # global cumsum recovers all counts at once
        row_start = chunk_slot[np.arange(n, dtype=np.int64) // chunk]
        delta = np.zeros(total_slots + 1, dtype=np.int64)
        np.add.at(delta, row_start, 1)
        np.add.at(delta, row_start + rowlen, -1)
        slot_off = np.zeros(total_slots + 1, dtype=np.int64)
        np.cumsum(np.cumsum(delta[:-1]), out=slot_off[1:])
        chunk_ptr = slot_off[chunk_slot]
        vals = np.zeros(slot_off[-1], dtype=np.float64)
        cols = np.zeros(slot_off[-1], dtype=np.int64)
        # scatter row elements into their slot prefixes, all rows at once:
        # element j of row r is the (r % chunk)-th entry of slot
        # chunk_slot[r // chunk] + j — rows are sorted descending inside a
        # chunk, so active lanes form a prefix and the chunk lane is the
        # slot lane
        nnz_total = int(rowlen.sum())
        if nnz_total:
            rows_rep = np.repeat(np.arange(n, dtype=np.int64), rowlen)
            elem_start = np.zeros(n, dtype=np.int64)
            np.cumsum(rowlen[:-1], out=elem_start[1:])
            j_idx = np.arange(nnz_total, dtype=np.int64) \
                - np.repeat(elem_start, rowlen)
            dst = slot_off[row_start[rows_rep] + j_idx] + rows_rep % chunk
            src = np.repeat(indptr[perm], rowlen) + j_idx
            vals[dst] = data[src]
            cols[dst] = indices[src]
    else:
        chunk_ptr = np.zeros(n_chunks + 1, dtype=np.int64)
        np.cumsum(widths * chunk, out=chunk_ptr[1:])
        vals = np.zeros(chunk_ptr[-1], dtype=np.float64)
        cols = np.zeros(chunk_ptr[-1], dtype=np.int64)
        slot_off = np.zeros(int(widths.sum()) + 1, dtype=np.int64)
        k = 0
        for c in range(n_chunks):
            base = chunk_ptr[c]
            for j in range(int(widths[c])):
                slot_off[k + 1] = slot_off[k] + chunk
                k += 1
            for lane in range(chunk):
                r = c * chunk + lane
                if r >= n:
                    break
                src0 = indptr[perm[r]]
                ln = rowlen[r]
                dst = base + lane + chunk * np.arange(ln)
                vals[dst] = data[src0: src0 + ln]
                cols[dst] = indices[src0: src0 + ln]

    return SellMatrix(
        n=n, nnz=int(mat.nnz), chunk=chunk, sigma=sigma, compact=compact,
        perm=perm, rowlen=rowlen, chunk_ptr=chunk_ptr, widths=widths,
        vals=vals, cols=cols, chunk_slot=chunk_slot, slot_off=slot_off,
    )


def sell_to_dense(sell: SellMatrix) -> np.ndarray:
    """Reconstruct the dense matrix (tests only; O(n^2) memory)."""
    out = np.zeros((sell.n, sell.n))
    for c in range(sell.n_chunks):
        base_slot = int(sell.chunk_slot[c])
        for j in range(int(sell.widths[c])):
            k = base_slot + j
            start = int(sell.slot_off[k])
            cnt = int(sell.slot_off[k + 1] - start)
            for lane in range(cnt if sell.compact else sell.chunk):
                r = c * sell.chunk + lane
                if r >= sell.n or sell.rowlen[r] <= j:
                    continue
                pos = start + lane
                out[sell.perm[r], sell.cols[pos]] += sell.vals[pos]
    return out
