"""Vectorized SELL-C-sigma SpMV (long-vector formulation).

Per chunk of ``C = max VL`` rows (one lane per row), with *compact* slots
(see :mod:`repro.kernels.spmv.formats`)::

    vsetvl(rows_in_chunk)
    acc = vfmv(0.0)
    for j in 0 .. chunk_width-1:
        vsetvl(slot_count[j])                 # active-prefix length
        cols = vle(cols_sell, slot_off[j])    # unit stride! (column-major)
        vals = vle(vals_sell, slot_off[j])
        xg   = vlxe(x, cols)                  # the gather
        acc[0:vl] = vfmacc(acc, vals, xg)     # tail-undisturbed accumulate
    vsetvl(rows_in_chunk)
    pi = vle(perm, chunk_base)
    vsxe(acc, y, pi)                          # scatter to original row order

The sigma-sort makes the active rows of every slot a chunk prefix, so the
compact layout needs no masks and no padded lanes; all streaming accesses
are unit stride and the only gathers are the irregular ``x`` reads — the
same structure as the NEC SX-Aurora SpMV the paper's reference describes.
Column/value loads are software-pipelined one slot ahead so the indexed
load never stalls the in-order memory pipe waiting for its index register.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.kernels.base import KernelOutput
from repro.kernels.spmv.formats import build_sell
from repro.soc.sdv import Session

#: scalar loop-control ops per chunk and per slot (pointer bumps, branches)
ALU_PER_CHUNK = 6
ALU_PER_SLOT = 2

#: default sigma window (rows) for the SELL conversion
DEFAULT_SIGMA = 4096


def spmv_vector(session: Session, mat: sp.csr_matrix,
                x_in: np.ndarray | None = None,
                sigma: int = DEFAULT_SIGMA, *,
                compact: bool = True) -> KernelOutput:
    """Run SELL-C-sigma SpMV with C = the session's max VL; returns y.

    ``compact=False`` selects the padded-slot layout (ablation).
    """
    n = mat.shape[0]
    mem, scl, vec = session.mem, session.scalar, session.vector
    chunk = vec.max_vl
    sell = build_sell(mat, chunk=chunk, sigma=min(sigma, n), compact=compact)

    x = (np.asarray(x_in, dtype=np.float64) if x_in is not None
         else np.linspace(0.5, 1.5, n))

    a_vals = mem.alloc("spmv.vals_sell", sell.vals)
    a_cols = mem.alloc("spmv.cols_sell", sell.cols)
    a_slot_off = mem.alloc("spmv.slot_off", sell.slot_off)
    a_rowlen = mem.alloc("spmv.rowlen", sell.rowlen)
    a_perm = mem.alloc("spmv.perm", sell.perm)
    a_x = mem.alloc("spmv.x", x)
    a_y = mem.alloc("spmv.y", n, np.float64)

    for c in range(sell.n_chunks):
        base_row = c * chunk
        rows_here = min(chunk, n - base_row)
        vec.vsetvl(rows_here)
        scl.emit_alu(ALU_PER_CHUNK, label="spmv-chunk")

        acc = vec.vfmv(0.0)
        base_slot = int(sell.chunk_slot[c])
        width = int(sell.widths[c])
        # the scalar core walks the slot-offset table (sequential loads)
        if width > 0:
            scl.emit_block(
                a_slot_off.addr(np.arange(base_slot, base_slot + width + 1)),
                False, 2 * width, label="spmv-slot-ptrs",
            )
        lens = None
        if not compact:
            lens = vec.vle(a_rowlen, base_row)

        def slot_loads(j: int):
            start = int(sell.slot_off[base_slot + j])
            cnt = sell.slot_count(c, j)
            vl_here = cnt if compact else rows_here
            vec.vsetvl(vl_here)
            return (vec.vle(a_cols, start), vec.vle(a_vals, start), vl_here)

        # Software pipelining: fetch slot j+1's column indices while slot
        # j's gather executes, so the indexed load never blocks the
        # in-order memory pipe waiting for its index register (the standard
        # hand-optimization in long-vector SpMV kernels).
        if width > 0:
            cols_next, vals_next, vl_next = slot_loads(0)
        for j in range(width):
            scl.emit_alu(ALU_PER_SLOT)
            cols, vals, vl_here = cols_next, vals_next, vl_next
            if j + 1 < width:
                cols_next, vals_next, vl_next = slot_loads(j + 1)
            # restore this slot's vl for the compute below — the second
            # vsetvl per slot is the (real) price of software pipelining
            # across slots of different counts
            vec.vsetvl(vl_here)
            if compact:
                xg = vec.vlxe(a_x, cols)
                accp = vec.with_vl(acc)
                accp = vec.vfmacc(accp, vals, xg)
                acc = vec.merge_tail(accp, acc)
            else:
                m = vec.vmsgt(lens, j)
                xg = vec.vlxe(a_x, cols, mask=m)
                acc = vec.vfmacc(acc, vals, xg, mask=m)

        vec.vsetvl(rows_here)
        acc = vec.with_vl(acc)
        pi = vec.vle(a_perm, base_row)
        vec.vsxe(acc, a_y, pi)

    scl.barrier("spmv-vector-end")
    y = a_y.view.copy()
    return KernelOutput(
        value=y,
        meta={
            "nnz": sell.nnz,
            "n": n,
            "chunk": chunk,
            "sigma": sell.sigma,
            "padding_overhead": sell.padding_overhead,
        },
    )
