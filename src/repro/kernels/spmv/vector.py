"""Vectorized SELL-C-sigma SpMV (long-vector formulation).

Per chunk of ``C = max VL`` rows (one lane per row), with *compact* slots
(see :mod:`repro.kernels.spmv.formats`)::

    vsetvl(rows_in_chunk)
    acc = vfmv(0.0)
    for j in 0 .. chunk_width-1:
        vsetvl(slot_count[j])                 # active-prefix length
        cols = vle(cols_sell, slot_off[j])    # unit stride! (column-major)
        vals = vle(vals_sell, slot_off[j])
        xg   = vlxe(x, cols)                  # the gather
        acc[0:vl] = vfmacc(acc, vals, xg)     # tail-undisturbed accumulate
    vsetvl(rows_in_chunk)
    pi = vle(perm, chunk_base)
    vsxe(acc, y, pi)                          # scatter to original row order

The sigma-sort makes the active rows of every slot a chunk prefix, so the
compact layout needs no masks and no padded lanes; all streaming accesses
are unit stride and the only gathers are the irregular ``x`` reads — the
same structure as the NEC SX-Aurora SpMV the paper's reference describes.
Column/value loads are software-pipelined one slot ahead so the indexed
load never stalls the in-order memory pipe waiting for its index register.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.kernels.base import KernelOutput
from repro.kernels.spmv.formats import build_sell
from repro.soc.sdv import Session
from repro.trace import modes
from repro.trace.events import OPCLASS_ID, PATTERN_ID, VMemPattern, VOpClass
from repro.trace.template import Dep, TraceTemplate

#: scalar loop-control ops per chunk and per slot (pointer bumps, branches)
ALU_PER_CHUNK = 6
ALU_PER_SLOT = 2

#: default sigma window (rows) for the SELL conversion
DEFAULT_SIGMA = 4096

_I64 = np.int64
_EMPTY_A = np.empty(0, dtype=np.int64)
_EMPTY_W = np.empty(0, dtype=bool)


def _spmv_templated(session: Session, sell, a, n: int) -> None:
    """Templated emission + whole-chunk functional math (compact layout).

    Per chunk, the software-pipelined slot loop body (7 records) is
    recorded once and replicated over slots 0..width-2; the prologue, the
    non-pipelined last slot and the scatter epilogue are emitted directly
    into the columnar buffer. The accumulator math runs per-slot on NumPy
    slices — the same elementwise multiply/add sequence the interpreter
    path performs, so traces and y are bit-identical.
    """
    trace = session.trace
    a_vals, a_cols, a_slot_off, a_perm, a_x, a_y = a
    xv = a_x.view
    yv = a_y.view
    chunk = session.vector.max_vl

    csr_id = OPCLASS_ID[VOpClass.CSR]
    arith_id = OPCLASS_ID[VOpClass.ARITH]
    mem_id = OPCLASS_ID[VOpClass.MEM]
    unit_id = PATTERN_ID[VMemPattern.UNIT]
    idx_id = PATTERN_ID[VMemPattern.INDEXED]
    op_vsetvl = trace.intern("vsetvl")
    op_vfmv = trace.intern("vfmv.v.f")
    op_vle = trace.intern("vle")
    op_vlxe = trace.intern("vlxe")
    op_vfmacc = trace.intern("vfmacc")
    op_vsxe = trace.intern("vsxe")
    lbl_chunk = trace.intern("spmv-chunk")
    lbl_ptrs = trace.intern("spmv-slot-ptrs")

    slot_off = sell.slot_off
    for c in range(sell.n_chunks):
        base_row = c * chunk
        rows_here = min(chunk, n - base_row)
        bs = int(sell.chunk_slot[c])
        width = int(sell.widths[c])

        # ---- functional: the whole chunk's accumulate + scatter ----------
        sl0 = int(slot_off[bs])
        cnts = np.diff(slot_off[bs:bs + width + 1])
        seg_cols = sell.cols[sl0:int(slot_off[bs + width])]
        prod = sell.vals[sl0:int(slot_off[bs + width])] * xv[seg_cols]
        acc = np.zeros(rows_here, dtype=np.float64)
        o = 0
        for j in range(width):
            cnt = int(cnts[j])
            acc[:cnt] += prod[o:o + cnt]
            o += cnt
        pi = sell.perm[base_row:base_row + rows_here]
        yv[pi] = acc

        # ---- trace: prologue ---------------------------------------------
        trace.emit_vector(csr_id, rows_here, op_vsetvl, scalar_dest=True)
        trace.emit_scalar_block(_EMPTY_A, _EMPTY_W, ALU_PER_CHUNK,
                                label_id=lbl_chunk)
        trace.emit_vector(arith_id, rows_here, op_vfmv)
        if width > 0:
            trace.emit_scalar_block(
                a_slot_off.addr(np.arange(bs, bs + width + 1, dtype=_I64)),
                np.zeros(width + 1, dtype=bool), 2 * width,
                label_id=lbl_ptrs)
            cnt0 = int(cnts[0])
            trace.emit_vector(csr_id, cnt0, op_vsetvl, scalar_dest=True)
            cols_idx = trace.emit_vector(
                mem_id, cnt0, op_vle, pattern_id=unit_id,
                addrs=a_cols.addr(np.arange(sl0, sl0 + cnt0, dtype=_I64)))
            trace.emit_vector(
                mem_id, cnt0, op_vle, pattern_id=unit_id,
                addrs=a_vals.addr(np.arange(sl0, sl0 + cnt0, dtype=_I64)))

        # ---- trace: pipelined slot loop (slots 0..width-2) ---------------
        if width >= 2:
            nxt_cnts = cnts[1:].astype(np.int32)
            cur_cnts = cnts[:-1].astype(np.int32)
            nxt_lo = int(slot_off[bs + 1])
            nxt_hi = int(slot_off[bs + width])
            nxt_rng = np.arange(nxt_lo, nxt_hi, dtype=_I64)
            cur_hi = int(slot_off[bs + width - 1])
            tpl = TraceTemplate(trace)
            tpl.scalar_block(ALU_PER_SLOT)
            tpl.vector(VOpClass.CSR, nxt_cnts, "vsetvl", scalar_dest=True)
            s_cols = tpl.vector(VOpClass.MEM, nxt_cnts, "vle",
                                pattern=VMemPattern.UNIT,
                                flat_addrs=a_cols.addr(nxt_rng),
                                counts=nxt_cnts)
            tpl.vector(VOpClass.MEM, nxt_cnts, "vle",
                       pattern=VMemPattern.UNIT,
                       flat_addrs=a_vals.addr(nxt_rng), counts=nxt_cnts)
            tpl.vector(VOpClass.CSR, cur_cnts, "vsetvl", scalar_dest=True)
            s_xg = tpl.vector(VOpClass.MEM, cur_cnts, "vlxe",
                              pattern=VMemPattern.INDEXED,
                              flat_addrs=a_x.addr(
                                  sell.cols[sl0:cur_hi]),
                              counts=cur_cnts,
                              dep=Dep.prev(s_cols, first=cols_idx))
            tpl.vector(VOpClass.ARITH, cur_cnts, "vfmacc",
                       dep=Dep.local(s_xg))
            tstart = tpl.replicate(width - 1)
            last_cols_idx = tstart + (width - 2) * 7 + s_cols
        elif width == 1:
            last_cols_idx = cols_idx

        # ---- trace: last slot (nothing left to prefetch) -----------------
        if width > 0:
            cnt_l = int(cnts[-1])
            lo = int(slot_off[bs + width - 1])
            trace.emit_scalar_block(_EMPTY_A, _EMPTY_W, ALU_PER_SLOT)
            trace.emit_vector(csr_id, cnt_l, op_vsetvl, scalar_dest=True)
            xg_idx = trace.emit_vector(
                mem_id, cnt_l, op_vlxe, pattern_id=idx_id,
                addrs=a_x.addr(sell.cols[lo:lo + cnt_l]),
                dep=last_cols_idx)
            trace.emit_vector(arith_id, cnt_l, op_vfmacc, dep=xg_idx)

        # ---- trace: scatter epilogue -------------------------------------
        trace.emit_vector(csr_id, rows_here, op_vsetvl, scalar_dest=True)
        pi_idx = trace.emit_vector(
            mem_id, rows_here, op_vle, pattern_id=unit_id,
            addrs=a_perm.addr(
                np.arange(base_row, base_row + rows_here, dtype=_I64)))
        trace.emit_vector(mem_id, rows_here, op_vsxe, pattern_id=idx_id,
                          addrs=a_y.addr(pi), is_write=True, dep=pi_idx)


def spmv_vector(session: Session, mat: sp.csr_matrix,
                x_in: np.ndarray | None = None,
                sigma: int = DEFAULT_SIGMA, *,
                compact: bool = True) -> KernelOutput:
    """Run SELL-C-sigma SpMV with C = the session's max VL; returns y.

    ``compact=False`` selects the padded-slot layout (ablation).
    """
    n = mat.shape[0]
    mem, scl, vec = session.mem, session.scalar, session.vector
    chunk = vec.max_vl
    sell = build_sell(mat, chunk=chunk, sigma=min(sigma, n), compact=compact)

    x = (np.asarray(x_in, dtype=np.float64) if x_in is not None
         else np.linspace(0.5, 1.5, n))

    a_vals = mem.alloc("spmv.vals_sell", sell.vals)
    a_cols = mem.alloc("spmv.cols_sell", sell.cols)
    a_slot_off = mem.alloc("spmv.slot_off", sell.slot_off)
    a_rowlen = mem.alloc("spmv.rowlen", sell.rowlen)
    a_perm = mem.alloc("spmv.perm", sell.perm)
    a_x = mem.alloc("spmv.x", x)
    a_y = mem.alloc("spmv.y", n, np.float64)

    if compact and modes.templating_enabled():
        _spmv_templated(session, sell,
                        (a_vals, a_cols, a_slot_off, a_perm, a_x, a_y), n)
        scl.barrier("spmv-vector-end")
        return KernelOutput(
            value=a_y.view.copy(),
            meta={
                "nnz": sell.nnz,
                "n": n,
                "chunk": chunk,
                "sigma": sell.sigma,
                "padding_overhead": sell.padding_overhead,
            },
        )

    for c in range(sell.n_chunks):
        base_row = c * chunk
        rows_here = min(chunk, n - base_row)
        vec.vsetvl(rows_here)
        scl.emit_alu(ALU_PER_CHUNK, label="spmv-chunk")

        acc = vec.vfmv(0.0)
        base_slot = int(sell.chunk_slot[c])
        width = int(sell.widths[c])
        # the scalar core walks the slot-offset table (sequential loads)
        if width > 0:
            scl.emit_block(
                a_slot_off.addr(np.arange(base_slot, base_slot + width + 1)),
                False, 2 * width, label="spmv-slot-ptrs",
            )
        lens = None
        if not compact:
            lens = vec.vle(a_rowlen, base_row)

        def slot_loads(j: int):
            start = int(sell.slot_off[base_slot + j])
            cnt = sell.slot_count(c, j)
            vl_here = cnt if compact else rows_here
            vec.vsetvl(vl_here)
            return (vec.vle(a_cols, start), vec.vle(a_vals, start), vl_here)

        # Software pipelining: fetch slot j+1's column indices while slot
        # j's gather executes, so the indexed load never blocks the
        # in-order memory pipe waiting for its index register (the standard
        # hand-optimization in long-vector SpMV kernels).
        if width > 0:
            cols_next, vals_next, vl_next = slot_loads(0)
        for j in range(width):
            scl.emit_alu(ALU_PER_SLOT)
            cols, vals, vl_here = cols_next, vals_next, vl_next
            if j + 1 < width:
                cols_next, vals_next, vl_next = slot_loads(j + 1)
            # restore this slot's vl for the compute below — the second
            # vsetvl per slot is the (real) price of software pipelining
            # across slots of different counts
            vec.vsetvl(vl_here)
            if compact:
                xg = vec.vlxe(a_x, cols)
                accp = vec.with_vl(acc)
                accp = vec.vfmacc(accp, vals, xg)
                acc = vec.merge_tail(accp, acc)
            else:
                m = vec.vmsgt(lens, j)
                xg = vec.vlxe(a_x, cols, mask=m)
                acc = vec.vfmacc(acc, vals, xg, mask=m)

        vec.vsetvl(rows_here)
        acc = vec.with_vl(acc)
        pi = vec.vle(a_perm, base_row)
        vec.vsxe(acc, a_y, pi)

    scl.barrier("spmv-vector-end")
    y = a_y.view.copy()
    return KernelOutput(
        value=y,
        meta={
            "nnz": sell.nnz,
            "n": n,
            "chunk": chunk,
            "sigma": sell.sigma,
            "padding_overhead": sell.padding_overhead,
        },
    )
