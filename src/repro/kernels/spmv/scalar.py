"""Scalar CSR SpMV.

The classic double loop::

    for i in rows:
        acc = 0
        for k in indptr[i] .. indptr[i+1]:
            acc += vals[k] * x[cols[k]]
        y[i] = acc

Functional result comes from the CSR arrays directly; the trace is the
loop's exact access stream, built columnar: per nonzero the triple
``cols[k]``, ``vals[k]``, ``x[cols[k]]`` in that order, with the row's
``indptr`` load before its nonzeros and the ``y`` store after — assembled
with vectorized position arithmetic instead of a Python loop (see the
scalar-context docs).

``mlp_hint`` stays unbounded: consecutive ``x[cols[k]]`` gathers are
independent, so the core's MSHRs are the only MLP limit — SpMV is the
best case for scalar latency overlap, and the paper still measures a steep
latency slope for it.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.kernels.base import KernelOutput
from repro.soc.sdv import Session

#: scalar ALU/branch ops per inner-loop iteration (fma counts 2: mul+add on
#: a single-FPU core, plus index increment and loop branch)
ALU_PER_NNZ = 4
#: per-row overhead ops (pointer compare, accumulator reset, store setup)
ALU_PER_ROW = 4


def spmv_scalar(session: Session, mat: sp.csr_matrix,
                x_in: np.ndarray | None = None) -> KernelOutput:
    """Run scalar CSR SpMV on the SDV session; returns y."""
    n = mat.shape[0]
    nnz = int(mat.nnz)
    mem, scl = session.mem, session.scalar

    indptr = np.asarray(mat.indptr, dtype=np.int64)
    indices = np.asarray(mat.indices, dtype=np.int64)
    data = np.asarray(mat.data, dtype=np.float64)
    x = (np.asarray(x_in, dtype=np.float64) if x_in is not None
         else np.linspace(0.5, 1.5, n))

    a_indptr = mem.alloc("spmv.indptr", indptr)
    a_indices = mem.alloc("spmv.indices", indices)
    a_vals = mem.alloc("spmv.vals", data)
    a_x = mem.alloc("spmv.x", x)
    a_y = mem.alloc("spmv.y", n, np.float64)

    # functional result (the semantics of the loop above)
    y = np.zeros(n)
    np.add.at(y, np.repeat(np.arange(n), np.diff(indptr)), data * x[indices])
    a_y.view[:] = y

    # --- columnar trace assembly -----------------------------------------
    rowlens = np.diff(indptr)
    k = np.arange(nnz, dtype=np.int64)
    row_of_k = np.repeat(np.arange(n, dtype=np.int64), rowlens)

    stream_len = 3 * nnz + 2 * n
    addrs = np.empty(stream_len, dtype=np.int64)
    writes = np.zeros(stream_len, dtype=bool)

    # position of each row's header (indptr[i+1] load) in the stream
    row_off = 3 * indptr[:-1] + 2 * np.arange(n, dtype=np.int64)
    addrs[row_off] = a_indptr.addr(np.arange(1, n + 1))
    # y[i] store closes each row
    y_pos = row_off + 1 + 3 * rowlens
    addrs[y_pos] = a_y.addr(np.arange(n))
    writes[y_pos] = True
    # per-nonzero triple: cols[k], vals[k], x[cols[k]]
    base_k = row_off[row_of_k] + 1 + 3 * (k - indptr[row_of_k])
    addrs[base_k] = a_indices.addr(k)
    addrs[base_k + 1] = a_vals.addr(k)
    addrs[base_k + 2] = a_x.addr(indices)

    scl.emit_block(
        addrs, writes,
        n_alu_ops=ALU_PER_NNZ * nnz + ALU_PER_ROW * n,
        label="spmv-scalar-csr",
    )
    scl.barrier("spmv-scalar-end")
    return KernelOutput(value=y, meta={"nnz": nnz, "n": n})
