"""Sparse matrix-vector multiplication (SpMV) kernel.

Scalar CSR vs. vectorized SELL-C-sigma; input defaults to a cage10-like
matrix (the paper's Section 3.1 input).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelOutput, KernelSpec
from repro.kernels.spmv.formats import SellMatrix, build_sell, sell_to_dense
from repro.kernels.spmv.scalar import spmv_scalar
from repro.kernels.spmv.vector import spmv_vector
from repro.kernels.spmv.vector_csr import spmv_vector_csr
from repro.workloads.cage import cage10_like, scaled_cage_like
from repro.workloads.scales import Scale


def _prepare(scale: Scale, seed: int):
    if scale.spmv_n is None:
        return cage10_like(seed=seed)
    return scaled_cage_like(scale.spmv_n, seed=seed)


def _reference(mat):
    n = mat.shape[0]
    x = np.linspace(0.5, 1.5, n)
    return mat @ x


def _check(out: KernelOutput, ref) -> bool:
    return bool(np.allclose(out.value, ref, rtol=1e-10, atol=1e-12))


SPMV_SPEC = KernelSpec(
    name="spmv",
    prepare=_prepare,
    scalar=spmv_scalar,
    vector=spmv_vector,
    reference=_reference,
    check=_check,
    description="Sparse matrix-vector product, cage10-like input "
                "(scalar CSR vs SELL-C-sigma long-vector)",
)

__all__ = ["SPMV_SPEC", "spmv_scalar", "spmv_vector", "spmv_vector_csr",
           "SellMatrix", "build_sell", "sell_to_dense"]
