"""CSR-vector SpMV: the naive long-vector formulation (one row at a time).

Each row's nonzeros are strip-mined directly from CSR::

    for i in rows:
        acc = vfmv(0)
        for strips of row i:
            vsetvl(row_nnz remaining)
            cols = vle(indices, k);  vals = vle(vals, k)
            acc += vfmacc(vals, gather x[cols])
        y[i] = vfredsum(acc)            # scalar-destination sync per row!

This is what one writes first — and what the SELL-C-sigma formulation
(:mod:`repro.kernels.spmv.vector`) exists to beat: with cage10's ~13
nonzeros per row, a 256-lane machine runs at ~5% lane occupancy and pays a
reduction + scalar sync per row. Kept as an ablation variant so the
benchmark suite can show *why* the paper's SpMV lineage uses sliced
formats.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.kernels.base import KernelOutput
from repro.soc.sdv import Session

ALU_PER_ROW = 6
ALU_PER_STRIP = 2


def spmv_vector_csr(session: Session, mat: sp.csr_matrix,
                    x_in: np.ndarray | None = None) -> KernelOutput:
    """Run row-at-a-time CSR-vector SpMV; returns y."""
    n = mat.shape[0]
    mem, scl, vec = session.mem, session.scalar, session.vector

    indptr = np.asarray(mat.indptr, dtype=np.int64)
    indices = np.asarray(mat.indices, dtype=np.int64)
    data = np.asarray(mat.data, dtype=np.float64)
    x = (np.asarray(x_in, dtype=np.float64) if x_in is not None
         else np.linspace(0.5, 1.5, n))

    a_indptr = mem.alloc("spmv.indptr", indptr)
    a_indices = mem.alloc("spmv.indices", indices)
    a_vals = mem.alloc("spmv.vals", data)
    a_x = mem.alloc("spmv.x", x)
    a_y = mem.alloc("spmv.y", n, np.float64)

    y_host = np.zeros(n)
    rows = np.arange(n, dtype=np.int64)
    # the row-pointer walk is a scalar unit stream
    scl.emit_block(a_indptr.addr(rows), False, ALU_PER_ROW * n,
                   label="spmv-csrv-rowptrs")

    for i in range(n):
        lo, hi = int(indptr[i]), int(indptr[i + 1])
        acc_sum = 0.0
        k = lo
        while k < hi:
            vl = vec.vsetvl(hi - k)
            scl.emit_alu(ALU_PER_STRIP)
            cols = vec.vle(a_indices, k)
            vals = vec.vle(a_vals, k)
            xg = vec.vlxe(a_x, cols)
            prod = vec.vfmul(vals, xg)
            acc_sum += vec.vfredsum(prod)   # scalar sync every strip
            k += vl
        y_host[i] = acc_sum
        scl.store_f64(a_y, i, acc_sum)
        scl.flush(label="spmv-csrv-store")

    scl.barrier("spmv-csrv-end")
    return KernelOutput(
        value=a_y.view.copy(),
        meta={"nnz": int(mat.nnz), "n": n, "formulation": "csr-vector"},
    )
