"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An SoC / engine / sweep configuration is invalid or inconsistent."""


class MemoryError_(ReproError):
    """A simulated-memory violation (OOB access, misalignment, exhaustion).

    Named with a trailing underscore to avoid shadowing the builtin
    ``MemoryError`` while staying recognizable at call sites.
    """


class AllocationError(MemoryError_):
    """The simulated address space cannot satisfy an allocation request."""


class AccessError(MemoryError_):
    """A simulated load/store touches memory outside any allocation."""


class IsaError(ReproError):
    """Illegal use of the simulated RISC-V vector ISA (bad VL/SEW, masks...)."""


class VectorLengthError(IsaError):
    """A requested vector length is outside what the machine supports."""


class TraceError(ReproError):
    """The instruction/memory trace is malformed or used inconsistently."""


class EngineError(ReproError):
    """A timing engine was driven with inconsistent state."""


class KernelError(ReproError):
    """A kernel was given unusable input or produced an invalid result."""


class WorkloadError(ReproError):
    """A workload generator/loader was given invalid parameters or data."""
