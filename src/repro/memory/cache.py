"""Set-associative LRU cache model.

Used for both the core's private L1D and each shared-L2 bank. The model is
*behavioural*: it answers hit/miss (and writeback) questions for a stream of
line addresses in program order; timing is applied later by the engines.

Performance notes (this is the hottest loop of the whole simulator):

* state per set is a plain Python list of tags ordered MRU-first — sets are
  small (8/16 ways) so ``list.remove`` + ``insert(0, ...)`` beats any
  fancier structure at these sizes;
* batch entry points (:meth:`access_lines`) precompute set indices and tags
  with NumPy and only loop over the irreducibly-sequential LRU update;
* consecutive accesses to the same line are pre-coalesced by the caller
  (see :mod:`repro.memory.classify`), which removes ~8x of the stream for
  unit-stride traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.util.mathx import is_pow2, log2_int
from repro.util.units import LINE_BYTES


@dataclass
class CacheStats:
    """Hit/miss/writeback counters for one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    #: per-call breakdown, useful in tests
    write_accesses: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            writebacks=self.writebacks + other.writebacks,
            write_accesses=self.write_accesses + other.write_accesses,
        )


@dataclass
class _Set:
    tags: list[int] = field(default_factory=list)   # MRU first
    dirty: set[int] = field(default_factory=set)


class SetAssocCache:
    """Write-back, write-allocate, true-LRU set-associative cache."""

    def __init__(self, size_bytes: int, ways: int, *, line_bytes: int = LINE_BYTES,
                 name: str = "cache") -> None:
        if ways < 1:
            raise ConfigError(f"ways must be >= 1, got {ways}")
        if not is_pow2(line_bytes):
            raise ConfigError(f"line size must be a power of two, got {line_bytes}")
        if size_bytes % (ways * line_bytes) != 0:
            raise ConfigError(
                f"{name}: size {size_bytes} not a multiple of ways*line"
            )
        n_sets = size_bytes // (ways * line_bytes)
        if not is_pow2(n_sets):
            raise ConfigError(
                f"{name}: derived set count {n_sets} is not a power of two"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.line_shift = log2_int(line_bytes)
        self.n_sets = n_sets
        self.set_mask = n_sets - 1
        self.stats = CacheStats()
        self._sets: list[_Set] = [_Set() for _ in range(n_sets)]

    # -- single access (reference semantics, used by the event engine) ------

    def access(self, addr: int, *, write: bool = False
               ) -> tuple[bool, int | None, bool]:
        """Access one byte address.

        Returns ``(hit, victim_line, victim_dirty)``: ``victim_line`` is the
        line evicted by this access (or ``None``), and ``victim_dirty`` says
        whether it must be written back to the next level.
        """
        line = addr >> self.line_shift
        return self.access_line(line, write=write)

    def access_line(self, line: int, *, write: bool = False
                    ) -> tuple[bool, int | None, bool]:
        """Access one line number; see :meth:`access`."""
        s = self._sets[line & self.set_mask]
        tag = line  # full line number doubles as tag (set bits redundant)
        self.stats.accesses += 1
        if write:
            self.stats.write_accesses += 1
        tags = s.tags
        if tag in tags:
            self.stats.hits += 1
            if tags[0] != tag:
                tags.remove(tag)
                tags.insert(0, tag)
            if write:
                s.dirty.add(tag)
            return True, None, False

        self.stats.misses += 1
        tags.insert(0, tag)
        if write:
            s.dirty.add(tag)
        if len(tags) > self.ways:
            victim = tags.pop()
            if victim in s.dirty:
                s.dirty.discard(victim)
                self.stats.writebacks += 1
                return False, victim, True
            return False, victim, False
        return False, None, False

    def install_line(self, line: int, *, dirty: bool = False
                     ) -> tuple[int | None, bool]:
        """Install a line without counting an access (writeback allocation).

        Used when a lower-level writeback lands in this cache: the full line
        arrives so no fill from below is needed. Returns
        ``(victim_line, victim_dirty)``.
        """
        s = self._sets[line & self.set_mask]
        tags = s.tags
        if line in tags:
            if tags[0] != line:
                tags.remove(line)
                tags.insert(0, line)
            if dirty:
                s.dirty.add(line)
            return None, False
        tags.insert(0, line)
        if dirty:
            s.dirty.add(line)
        if len(tags) > self.ways:
            victim = tags.pop()
            if victim in s.dirty:
                s.dirty.discard(victim)
                self.stats.writebacks += 1
                return victim, True
            return victim, False
        return None, False

    # -- batched access (used by trace classification) ----------------------

    #: below this stream length the scalar loop beats the per-set kernel's
    #: fixed setup (state load/dump + round scheduling)
    _BATCH_MIN = 64

    def access_lines(self, lines: np.ndarray, writes: np.ndarray | None = None
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Access a stream of line numbers in order.

        Returns boolean arrays ``(hits, writebacks)`` aligned with ``lines``
        (``writebacks[i]`` is True when access ``i`` evicted a dirty line).
        ``writes`` may be None (all reads) or a scalar-broadcastable bool
        array.

        Long streams run through the same per-set stack-distance kernel
        as the fast trace classifier (:class:`repro.memory.classify_fast.
        LockstepLru`): the stream is partitioned by set, each touched
        set's list/dict state is loaded into the kernel's matrix, the
        whole stream replays in vectorized rounds, and the final state is
        written back — bit-identical to looping :meth:`access_line`,
        which stays as the scalar reference (and the short-stream path).
        """
        lines = np.asarray(lines, dtype=np.int64)
        n = lines.shape[0]
        if writes is None:
            writes_arr = np.zeros(n, dtype=bool)
        else:
            writes_arr = np.broadcast_to(np.asarray(writes, dtype=bool), (n,))
        if n < self._BATCH_MIN:
            hits = np.empty(n, dtype=bool)
            wbs = np.zeros(n, dtype=bool)
            access_line = self.access_line  # bind for loop speed
            for i in range(n):
                h, _victim, dirty = access_line(int(lines[i]),
                                                write=bool(writes_arr[i]))
                hits[i] = h
                wbs[i] = dirty
            return hits, wbs

        # local import: classify_fast pulls in classify, which uses this
        # module's semantics as its spec
        from repro.memory.classify_fast import LockstepLru

        set_idx = lines & self.set_mask
        touched = np.unique(set_idx)
        rows = np.searchsorted(touched, set_idx)
        lru = LockstepLru(touched.shape[0], self.ways)
        sets = self._sets
        for row, s_i in enumerate(touched.tolist()):
            s = sets[s_i]
            if s.tags:
                lru.load_row(row, s.tags, s.dirty)
        hits, _hd, wbs, _vt = lru.run(rows, lines, writes_arr)
        for row, s_i in enumerate(touched.tolist()):
            tags, dirty = lru.dump_row(row)
            s = sets[s_i]
            s.tags = tags
            s.dirty = dirty
        self.stats.accesses += n
        self.stats.write_accesses += int(writes_arr.sum())
        nh = int(hits.sum())
        self.stats.hits += nh
        self.stats.misses += n - nh
        self.stats.writebacks += int(wbs.sum())
        return hits, wbs

    # -- maintenance ---------------------------------------------------------

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty lines dropped."""
        dirty = sum(len(s.dirty) for s in self._sets)
        for s in self._sets:
            s.tags.clear()
            s.dirty.clear()
        return dirty

    def contains_line(self, line: int) -> bool:
        return line in self._sets[line & self.set_mask].tags

    def invalidate_line(self, line: int) -> bool:
        """Remove a line (coherence recall). Returns True if it was dirty."""
        s = self._sets[line & self.set_mask]
        if line not in s.tags:
            return False
        s.tags.remove(line)
        if line in s.dirty:
            s.dirty.discard(line)
            return True
        return False

    @property
    def resident_lines(self) -> int:
        return sum(len(s.tags) for s in self._sets)
