"""Trace-order memory classification.

Walks a sealed trace once through the cache hierarchy (private L1D for the
scalar side, banked shared L2HN for everything) and labels every memory
reference with the level that served it. The result — a
:class:`ClassifiedTrace` — is **independent of the latency and bandwidth
knobs**, so one classification pass serves an entire Figure-3/Figure-5
sweep; only the (cheap) timing stage reruns per sweep point.

Hierarchy rules (single core+VPU agent):

* scalar loads/stores: L1D → L2 → DRAM; write-allocate, write-back.
  A dirty L1 victim is written back into L2 (full line, no DRAM fill);
  a dirty L2 victim becomes one DRAM write transaction.
* vector loads/stores bypass L1 and access the L2HN directly (the decoupled
  VPU has its own memory path in Vitruvius). Element addresses of one
  instruction are coalesced into line requests (configurable for gathers).
* unit-stride vector stores that cover whole lines allocate without a DRAM
  fill (streaming-store behaviour); gather/scatter and strided store misses
  fetch the line first.
* lines resident in L1 that the VPU touches are recalled (home-node
  coherence): invalidated in L1 and, if dirty, written back into L2 first.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.config import SdvConfig
from repro.errors import TraceError
from repro.memory.cache import SetAssocCache
from repro.memory.l2hn import L2HomeNode
from repro.trace.events import (
    Barrier,
    ScalarBlock,
    TraceBuffer,
    VMemPattern,
    VOpClass,
)
from repro.util.mathx import log2_int
from repro.util.units import LINE_BYTES

LINE_SHIFT = log2_int(LINE_BYTES)


class AccessLevel(enum.IntEnum):
    """Which level served a memory reference."""

    L1 = 0
    L2 = 1
    DRAM = 2


# Row dtype of the columnar classified trace consumed by the fast engine.
ROW_DTYPE = np.dtype(
    [
        ("kind", np.uint8),        # 0 scalar block, 1 vector arith, 2 vector mem,
                                   # 3 barrier
        ("n_alu", np.int64),       # scalar block ALU ops
        ("n_mem", np.int64),       # scalar block memory ops
        ("l1_hits", np.int64),
        ("l2_hits", np.int64),
        ("dram_reads", np.int64),
        ("dram_writes", np.int64),  # writebacks + store traffic to DRAM
        ("vl", np.int32),
        ("active", np.int32),
        ("opclass", np.uint8),      # VOpClass ordinal (255 for scalar rows)
        ("pattern", np.uint8),      # VMemPattern ordinal (255 if N/A)
        ("n_line_reqs", np.int64),  # vector mem: line requests after coalescing
        ("mlp_hint", np.int64),
        ("is_write", np.uint8),
        ("dep", np.int64),          # producing record index (-1 none)
        ("scalar_dest", np.uint8),  # instruction writes a scalar register
        ("pf_dram_reads", np.int64),  # prefetcher-issued DRAM fills (non-
                                      # blocking: bandwidth, not stall)
    ]
)

KIND_SCALAR, KIND_VARITH, KIND_VMEM, KIND_BARRIER = 0, 1, 2, 3

_OPCLASS_ID = {c: i for i, c in enumerate(VOpClass)}
_PATTERN_ID = {p: i for i, p in enumerate(VMemPattern)}


@dataclass
class ClassifiedTrace:
    """Per-record classified view of a trace.

    ``rows`` is a structured array with one row per trace record (columnar,
    for the fast engine); ``levels`` holds, per record, the
    :class:`AccessLevel` of each line/element request in order (for the
    event engine). ``trace`` is the original buffer.
    """

    rows: np.ndarray
    levels: list[np.ndarray | None]
    trace: TraceBuffer
    config: SdvConfig

    # aggregate convenience
    totals: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.levels) != self.rows.shape[0]:
            raise TraceError("levels list misaligned with rows")
        if not self.totals:
            r = self.rows
            self.totals = {
                "l1_hits": int(r["l1_hits"].sum()),
                "l2_hits": int(r["l2_hits"].sum()),
                "dram_reads": int(r["dram_reads"].sum()),
                "dram_writes": int(r["dram_writes"].sum()),
                "scalar_mem_ops": int(r["n_mem"].sum()),
                "vector_line_reqs": int(r["n_line_reqs"].sum()),
                "pf_dram_reads": int(r["pf_dram_reads"].sum()),
            }

    @property
    def dram_transactions(self) -> int:
        return (self.totals["dram_reads"] + self.totals["dram_writes"]
                + self.totals.get("pf_dram_reads", 0))

    @property
    def dram_bytes(self) -> int:
        return self.dram_transactions * LINE_BYTES


def _coalesce_lines(addrs: np.ndarray, pattern: VMemPattern,
                    coalesce_gathers: bool) -> np.ndarray:
    """Element byte addresses of one vector instruction → line requests.

    Unit-stride/strided accesses always coalesce adjacent same-line elements
    (the memory unit buffers a line's worth). Indexed accesses coalesce only
    when the hardware supports it (``coalesce_gathers``), and then only
    duplicate lines anywhere in the instruction (CAM over the open requests),
    preserving first-touch order.
    """
    lines = addrs >> LINE_SHIFT
    if lines.size == 0:
        return lines
    if pattern is VMemPattern.INDEXED and not coalesce_gathers:
        return lines
    if pattern is VMemPattern.INDEXED:
        # unique, stable order of first occurrence
        _, first_idx = np.unique(lines, return_index=True)
        return lines[np.sort(first_idx)]
    # unit/strided: drop consecutive duplicates
    keep = np.empty(lines.shape[0], dtype=bool)
    keep[0] = True
    np.not_equal(lines[1:], lines[:-1], out=keep[1:])
    return lines[keep]


def classify_trace(trace: TraceBuffer, config: SdvConfig) -> ClassifiedTrace:
    """Classify every memory reference of ``trace`` against fresh caches."""
    if not trace.sealed:
        raise TraceError("classify_trace requires a sealed trace")
    config.validate()

    l1 = SetAssocCache(config.core.l1d_bytes, config.core.l1d_ways, name="l1d")
    l2 = L2HomeNode(config.l2)
    prefetch_depth = config.core.l1_prefetch_depth

    n = len(trace)
    rows = np.zeros(n, dtype=ROW_DTYPE)
    rows["opclass"] = 255
    rows["pattern"] = 255
    rows["dep"] = -1
    levels_per_record: list[np.ndarray | None] = [None] * n

    l1_access = l1.access_line
    l2_access = l2.access_line

    for i, rec in enumerate(trace):
        row = rows[i]
        if isinstance(rec, Barrier):
            row["kind"] = KIND_BARRIER
            continue

        if isinstance(rec, ScalarBlock):
            row["kind"] = KIND_SCALAR
            row["n_alu"] = rec.n_alu_ops
            row["n_mem"] = rec.n_mem_ops
            row["mlp_hint"] = rec.mlp_hint
            if rec.n_mem_ops == 0:
                continue
            lines = rec.mem_addrs >> LINE_SHIFT
            writes = rec.mem_is_write
            lv = np.empty(rec.n_mem_ops, dtype=np.uint8)
            dram_writes = 0
            dram_reads = 0
            pf_dram_reads = 0
            l1_hits = 0
            l2_hits = 0
            for j in range(rec.n_mem_ops):
                line = int(lines[j])
                hit, victim, victim_dirty = l1_access(
                    line, write=bool(writes[j])
                )
                if victim_dirty:
                    if l2.writeback_line(victim) is not None:
                        dram_writes += 1
                if hit:
                    lv[j] = AccessLevel.L1
                    l1_hits += 1
                    continue
                hit2, victim2 = l2_access(line, write=False)
                if victim2 is not None:
                    dram_writes += 1
                if hit2:
                    lv[j] = AccessLevel.L2
                    l2_hits += 1
                else:
                    lv[j] = AccessLevel.DRAM
                    dram_reads += 1
                # next-N-line stream prefetch: fill L1 (and L2 on the way)
                # with the following lines; prefetch fills consume DRAM
                # bandwidth but, being non-blocking, add no demand stall
                for p_ in range(1, prefetch_depth + 1):
                    pline = line + p_
                    if l1.contains_line(pline):
                        continue
                    _h2, victim_p = l2_access(pline, write=False)
                    if victim_p is not None:
                        dram_writes += 1
                    if not _h2:
                        pf_dram_reads += 1
                    _hit_p, victim_l1, victim_l1_dirty = l1_access(
                        pline, write=False)
                    if victim_l1_dirty:
                        if l2.writeback_line(victim_l1) is not None:
                            dram_writes += 1
            row["l1_hits"] = l1_hits
            row["l2_hits"] = l2_hits
            row["dram_reads"] = dram_reads
            row["dram_writes"] = dram_writes
            row["pf_dram_reads"] = pf_dram_reads
            levels_per_record[i] = lv
            continue

        # VectorInstr
        if rec.op is not VOpClass.MEM:
            row["kind"] = KIND_VARITH
            row["vl"] = rec.vl
            row["active"] = rec.active
            row["opclass"] = _OPCLASS_ID[rec.op]
            row["dep"] = rec.dep
            row["scalar_dest"] = 1 if rec.scalar_dest else 0
            continue

        row["kind"] = KIND_VMEM
        row["vl"] = rec.vl
        row["active"] = rec.active
        row["opclass"] = _OPCLASS_ID[rec.op]
        row["pattern"] = _PATTERN_ID[rec.pattern]
        row["is_write"] = 1 if rec.is_write else 0
        row["dep"] = rec.dep
        row["scalar_dest"] = 1 if rec.scalar_dest else 0
        lines = _coalesce_lines(
            rec.addrs, rec.pattern, config.vpu.coalesce_gathers
        )
        row["n_line_reqs"] = lines.shape[0]
        lv = np.empty(lines.shape[0], dtype=np.uint8)
        dram_writes = 0
        dram_reads = 0
        l2_hits = 0
        # unit-stride stores allocate whole lines without fetching
        fill_on_store_miss = rec.pattern is not VMemPattern.UNIT
        for j in range(lines.shape[0]):
            line = int(lines[j])
            # home-node recall of lines the scalar side holds
            if l1.contains_line(line):
                if l1.invalidate_line(line):
                    if l2.writeback_line(line) is not None:
                        dram_writes += 1
            hit, victim = l2_access(line, write=rec.is_write)
            if victim is not None:
                dram_writes += 1
            if hit:
                lv[j] = AccessLevel.L2
                l2_hits += 1
            elif rec.is_write and not fill_on_store_miss:
                lv[j] = AccessLevel.L2  # allocated without fill
                l2_hits += 1
            else:
                lv[j] = AccessLevel.DRAM
                dram_reads += 1
        row["l2_hits"] = l2_hits
        row["dram_reads"] = dram_reads
        row["dram_writes"] = dram_writes
        levels_per_record[i] = lv

    return ClassifiedTrace(rows=rows, levels=levels_per_record, trace=trace,
                           config=config)
